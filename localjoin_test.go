package spatialjoin

import (
	"fmt"
	"sort"
	"testing"
)

func TestDirectionOfFacade(t *testing.T) {
	nw := DirectionOf(DirNorthwest)
	if nw.Name() != "northwest_of" {
		t.Fatalf("name = %q", nw.Name())
	}
	a := NewRect(0, 8, 2, 10)
	b := NewRect(5, 0, 7, 2)
	if !nw.Eval(a, b) {
		t.Fatal("NW eval wrong")
	}
	if !DirectionOf(DirSoutheast).Eval(b, a) {
		t.Fatal("SE eval wrong")
	}
	if DirectionOf(DirNortheast).Eval(a, b) {
		t.Fatal("NE should not match")
	}
	if DirectionOf(DirSouthwest).Eval(a, b) {
		t.Fatal("SW should not match")
	}
}

func TestLocalJoinIndexMatchesScanSelfJoin(t *testing.T) {
	db := openT(t)
	c, _ := db.CreateCollection("sites")
	loadRandomRects(t, c, 21, 250)
	op := Overlaps()
	want, _, err := db.Join(c, c, op, ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	for level := 0; level <= c.IndexHeight()+1; level++ {
		lji, err := db.BuildLocalJoinIndex(c, op, level)
		if err != nil {
			t.Fatal(err)
		}
		if lji.Level() != level {
			t.Fatalf("level = %d", lji.Level())
		}
		got, _, err := lji.SelfJoin()
		if err != nil {
			t.Fatal(err)
		}
		key := func(ms []Match) string {
			sort.Slice(ms, func(i, j int) bool {
				if ms[i].R != ms[j].R {
					return ms[i].R < ms[j].R
				}
				return ms[i].S < ms[j].S
			})
			return fmt.Sprint(ms)
		}
		if key(got) != key(want) {
			t.Fatalf("λ=%d: local-index self-join disagrees with scan (%d vs %d pairs)",
				level, len(got), len(want))
		}
	}
}

func TestLocalJoinIndexMixtureExtremes(t *testing.T) {
	db := openT(t)
	c, _ := db.CreateCollection("sites")
	loadRandomRects(t, c, 22, 120)
	op := Overlaps()

	global, err := db.BuildLocalJoinIndex(c, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	if global.Anchors() != 1 {
		t.Fatalf("λ=0 anchors = %d", global.Anchors())
	}
	_, gStats, err := global.SelfJoin()
	if err != nil {
		t.Fatal(err)
	}
	if gStats.FilterEvals+gStats.ExactEvals != 0 {
		t.Fatal("λ=0 must answer without live evaluation")
	}

	pure, err := db.BuildLocalJoinIndex(c, op, c.IndexHeight()+2)
	if err != nil {
		t.Fatal(err)
	}
	if pure.StoredPairs() != 0 {
		t.Fatal("λ beyond leaves must store nothing")
	}
	_, pStats, err := pure.SelfJoin()
	if err != nil {
		t.Fatal(err)
	}
	if pStats.IndexReads != 0 {
		t.Fatal("pure tree join must read no index pages")
	}
}

func TestBuildLocalJoinIndexValidation(t *testing.T) {
	db := openT(t)
	c, _ := db.CreateCollection("sites")
	if _, err := db.BuildLocalJoinIndex(nil, Overlaps(), 1); err == nil {
		t.Fatal("nil collection must fail")
	}
	if _, err := db.BuildLocalJoinIndex(c, nil, 1); err == nil {
		t.Fatal("nil operator must fail")
	}
	if _, err := db.BuildLocalJoinIndex(c, Overlaps(), -1); err == nil {
		t.Fatal("negative level must fail")
	}
}
