package spatialjoin

import (
	"context"
	"encoding/binary"
	"fmt"

	"spatialjoin/internal/core"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/join"
	"spatialjoin/internal/joinindex"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wal"
)

// Strategy selects how a selection or join is computed, matching the
// paper's strategies I–III.
type Strategy uint8

const (
	// TreeStrategy (II) uses the hierarchical SELECT/JOIN algorithms over
	// the collections' R-tree generalization trees. The default.
	TreeStrategy Strategy = iota
	// ScanStrategy (I) is the nested-loop / exhaustive-scan baseline.
	ScanStrategy
	// IndexStrategy (III) answers from a precomputed join index; it
	// requires a prior BuildJoinIndex for the same collections and
	// operator.
	IndexStrategy
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case TreeStrategy:
		return "tree"
	case ScanStrategy:
		return "scan"
	case IndexStrategy:
		return "joinindex"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Stats is the measured work of one query, in the cost model's units.
type Stats = join.Stats

// Select returns the IDs of objects a in c with o θ a, along with the
// measured work. IndexStrategy is not supported for ad-hoc selectors (a
// join index relates stored tuples only — the paper's point that a generic
// search range "is defined ad hoc by the user" and cannot be precomputed);
// use SelectStored for a stored selector.
func (db *Database) Select(c *Collection, o Spatial, op Operator, strategy Strategy) ([]int, Stats, error) {
	return db.SelectContext(context.Background(), c, o, op, strategy)
}

// SelectContext is Select bounded by a context (composed with
// Config.QueryTimeout when set). Before a tree-strategy selection the
// collection's backing index file is scrubbed — read and checksum-verified,
// charged to Stats.IndexReads — and a permanent storage fault on the index
// degrades the query to the exhaustive scan, recorded in Stats.Downgrades,
// still returning the correct result.
func (db *Database) SelectContext(ctx context.Context, c *Collection, o Spatial, op Operator, strategy Strategy) ([]int, Stats, error) {
	if c == nil || o == nil || op == nil {
		return nil, Stats{}, fmt.Errorf("spatialjoin: nil select argument")
	}
	if err := db.checkUsable(); err != nil {
		return nil, Stats{}, err
	}
	ctx, cancel := db.queryCtx(ctx)
	defer cancel()
	ctx, q := db.beginQuery(ctx, "select", strategy)
	ids, stats, err := db.selectOnce(ctx, c, o, op, strategy)
	if err == nil || strategy != TreeStrategy || !fault.IsPermanent(err) || ctx.Err() != nil {
		q.end(stats, err)
		return ids, stats, err
	}
	q.downgrade(err)
	ids, scanStats, err2 := db.selectOnce(ctx, c, o, op, ScanStrategy)
	if err2 != nil {
		total := stats.Add(scanStats)
		err = fmt.Errorf("spatialjoin: scan fallback after %v failure (%v): %w", strategy, err, err2)
		q.end(total, err)
		return nil, total, err
	}
	total := stats.Add(scanStats)
	total.Downgrades++
	q.end(total, nil)
	return ids, total, nil
}

// selectOnce runs one strategy attempt without degradation.
func (db *Database) selectOnce(ctx context.Context, c *Collection, o Spatial, op Operator, strategy Strategy) ([]int, Stats, error) {
	switch strategy {
	case ScanStrategy:
		return join.ExhaustiveSelectCtx(ctx, c.table, o, op)
	case TreeStrategy:
		scrubbed, err := db.scrubFiles(ctx, c.indexFile.File())
		if err != nil {
			return nil, Stats{IndexReads: scrubbed}, err
		}
		ids, stats, err := join.TreeSelectCtx(ctx, c.index.Generalization(), c.table, o, op, core.BreadthFirst)
		stats.IndexReads += scrubbed
		return ids, stats, err
	case IndexStrategy:
		return nil, Stats{}, fmt.Errorf("spatialjoin: join indices cannot answer ad-hoc selections; use SelectStored")
	default:
		return nil, Stats{}, fmt.Errorf("spatialjoin: unknown strategy %d", strategy)
	}
}

// SelectStored answers the selection whose selector is the stored object
// rID of collection r, against collection s, from the precomputed join
// index for (r, s, op).
func (db *Database) SelectStored(r *Collection, rID int, s *Collection, op Operator) ([]int, Stats, error) {
	if err := db.checkUsable(); err != nil {
		return nil, Stats{}, err
	}
	ix, ok := db.joinIndexFor(r, s, op)
	if !ok {
		return nil, Stats{}, fmt.Errorf("spatialjoin: no join index for %s ⋈ %s on %s",
			r.name, s.name, op.Name())
	}
	return join.IndexSelect(ix.ix, rID, s.table)
}

// Join computes r ⋈θ s and returns the matching ID pairs with measured
// work. The operator is applied with r-objects as the left operand.
// Execution uses Config.Workers goroutines; whatever the worker count or
// strategy, the returned matches are canonically sorted by (R, S), so the
// outputs of all strategies are byte-comparable.
func (db *Database) Join(r, s *Collection, op Operator, strategy Strategy) ([]Match, Stats, error) {
	return db.JoinContext(context.Background(), r, s, op, strategy)
}

// JoinContext is Join bounded by a context (composed with
// Config.QueryTimeout when set). Before a tree- or index-strategy join the
// backing index files are scrubbed — read and checksum-verified, charged to
// Stats.IndexReads — and a permanent storage fault on an index structure
// degrades the query to the nested-loop scan over the base heap files,
// recorded in Stats.Downgrades, still returning the byte-identical correct
// match set. Faults on the heap files themselves are not recoverable and
// surface as typed errors.
func (db *Database) JoinContext(ctx context.Context, r, s *Collection, op Operator, strategy Strategy) ([]Match, Stats, error) {
	if r == nil || s == nil || op == nil {
		return nil, Stats{}, fmt.Errorf("spatialjoin: nil join argument")
	}
	if err := db.checkUsable(); err != nil {
		return nil, Stats{}, err
	}
	ctx, cancel := db.queryCtx(ctx)
	defer cancel()
	ctx, q := db.beginQuery(ctx, "join", strategy)
	ms, stats, err := db.joinOnce(ctx, r, s, op, strategy)
	if err == nil || strategy == ScanStrategy || !fault.IsPermanent(err) || ctx.Err() != nil {
		q.end(stats, err)
		return ms, stats, err
	}
	q.downgrade(err)
	ms, scanStats, err2 := db.joinOnce(ctx, r, s, op, ScanStrategy)
	if err2 != nil {
		total := stats.Add(scanStats)
		err = fmt.Errorf("spatialjoin: scan fallback after %v failure (%v): %w", strategy, err, err2)
		q.end(total, err)
		return nil, total, err
	}
	total := stats.Add(scanStats)
	total.Downgrades++
	q.end(total, nil)
	return ms, total, nil
}

// joinOnce runs one strategy attempt without degradation.
func (db *Database) joinOnce(ctx context.Context, r, s *Collection, op Operator, strategy Strategy) ([]Match, Stats, error) {
	switch strategy {
	case ScanStrategy:
		return join.NestedLoopCtx(ctx, r.table, s.table, op, db.cfg.Workers)
	case TreeStrategy:
		scrubbed, err := db.scrubFiles(ctx, r.indexFile.File(), s.indexFile.File())
		if err != nil {
			return nil, Stats{IndexReads: scrubbed}, err
		}
		ms, stats, err := join.TreeJoinCtx(ctx, r.index.Generalization(), r.table,
			s.index.Generalization(), s.table, op, db.cfg.Workers)
		stats.IndexReads += scrubbed
		return ms, stats, err
	case IndexStrategy:
		ix, ok := db.joinIndexFor(r, s, op)
		if !ok {
			return nil, Stats{}, fmt.Errorf("spatialjoin: no join index for %s ⋈ %s on %s; call BuildJoinIndex first",
				r.name, s.name, op.Name())
		}
		scrubbed, err := db.scrubFiles(ctx, ix.file.File())
		if err != nil {
			return nil, Stats{IndexReads: scrubbed}, err
		}
		ms, stats, err := join.IndexJoinCtx(ctx, ix.ix, r.table, s.table, db.cfg.Workers)
		stats.IndexReads += scrubbed
		return ms, stats, err
	default:
		return nil, Stats{}, fmt.Errorf("spatialjoin: unknown strategy %d", strategy)
	}
}

// queryCtx composes the caller's context with Config.QueryTimeout.
func (db *Database) queryCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if db.cfg.QueryTimeout > 0 {
		return context.WithTimeout(ctx, db.cfg.QueryTimeout)
	}
	return ctx, func() {}
}

// scrubFiles fetches every page of the given files through the buffer pool,
// whose end-to-end verification rejects lost or corrupted pages before the
// strategy trusts the index structures the files back. The returned count
// is the physical reads the scrub caused (the executor charges them as
// index I/O); it is returned even alongside an error so partial scrub work
// stays visible in the statistics.
func (db *Database) scrubFiles(ctx context.Context, files ...storage.FileID) (int64, error) {
	trace := obs.TraceFrom(ctx)
	span := trace.Begin(obs.SpanFromContext(ctx), "scrub")
	before := db.pool.Stats().Misses
	endScrub := func(err error) {
		if trace == nil {
			return
		}
		if err != nil {
			trace.Event(span, "error", obs.Str("error", err.Error()))
		}
		trace.End(span,
			obs.Int("files", int64(len(files))),
			obs.Int("reads", db.pool.Stats().Misses-before),
		)
	}
	device := db.pool.Disk()
	for _, f := range files {
		n := device.NumPages(f)
		for p := 0; p < n; p++ {
			if err := ctx.Err(); err != nil {
				endScrub(err)
				return db.pool.Stats().Misses - before, err
			}
			if _, err := db.pool.Fetch(storage.PageID{File: f, Page: int32(p)}); err != nil {
				err = fmt.Errorf("spatialjoin: index scrub of file %d: %w", f, err)
				endScrub(err)
				return db.pool.Stats().Misses - before, err
			}
		}
	}
	endScrub(nil)
	return db.pool.Stats().Misses - before, nil
}

// JoinIndex is a precomputed Valduriez join index between two collections
// for one operator. It is maintained automatically on inserts into either
// collection — the expensive path the paper's update model prices. The
// B+-tree lives in memory; every pair is also persisted to a backing file
// on the simulated disk, which index-strategy joins scrub before trusting
// the index (see JoinContext).
type JoinIndex struct {
	r, s *Collection
	op   Operator
	ix   *joinindex.Index
	file *storage.HeapFile
	// lastLSN is the commit LSN of the newest transaction that touched the
	// pair file; checkpoints record it in the manifest. Guarded by db.mu.
	lastLSN wal.LSN
}

// Pairs returns the number of precomputed matching pairs |J|.
func (ji *JoinIndex) Pairs() int { return ji.ix.Len() }

// FileID returns the disk file backing the join index's persisted pairs —
// the pages an index-strategy join scrubs. Chaos tests target these pages
// to simulate join-index loss.
func (ji *JoinIndex) FileID() storage.FileID { return ji.file.File() }

// appendPair persists one (rid, sid) pair to the index's backing file.
func (ji *JoinIndex) appendPair(rid, sid int) error {
	var rec [16]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(rid))
	binary.LittleEndian.PutUint64(rec[8:], uint64(sid))
	_, err := ji.file.Append(rec[:])
	return err
}

// decodePair parses one persisted (rid, sid) pair record.
func decodePair(rec []byte) (rid, sid int, err error) {
	if len(rec) != 16 {
		return 0, 0, fmt.Errorf("spatialjoin: pair record of %d bytes, want 16", len(rec))
	}
	return int(binary.LittleEndian.Uint64(rec[0:])), int(binary.LittleEndian.Uint64(rec[8:])), nil
}

// joinIndexKey identifies an index by collections and operator.
func joinIndexKey(r, s *Collection, op Operator) string {
	return r.name + "\x00" + s.name + "\x00" + op.Name()
}

func (db *Database) joinIndexFor(r, s *Collection, op Operator) (*JoinIndex, bool) {
	ji, ok := db.joinIndices[joinIndexKey(r, s, op)]
	return ji, ok
}

// HasJoinIndex reports whether a join index for r ⋈θ s is registered —
// e.g. because it rode in with a recovered log or a seeded snapshot.
func (db *Database) HasJoinIndex(r, s *Collection, op Operator) bool {
	if r == nil || s == nil || op == nil {
		return false
	}
	_, ok := db.joinIndexFor(r, s, op)
	return ok
}

// BuildJoinIndex precomputes the join index for r ⋈θ s (strategy III's
// setup step) and registers it for IndexStrategy joins and incremental
// maintenance. The returned stats show the exhaustive build cost.
func (db *Database) BuildJoinIndex(r, s *Collection, op Operator) (*JoinIndex, Stats, error) {
	if r == nil || s == nil || op == nil {
		return nil, Stats{}, fmt.Errorf("spatialjoin: nil join-index argument")
	}
	key := joinIndexKey(r, s, op)
	if _, dup := db.joinIndices[key]; dup {
		return nil, Stats{}, fmt.Errorf("spatialjoin: join index for %s ⋈ %s on %s already exists",
			r.name, s.name, op.Name())
	}
	ix, stats, err := join.BuildIndex(r.table, s.table, op, db.cfg.JoinIndexOrder)
	if err != nil {
		return nil, stats, err
	}
	var ji *JoinIndex
	lsn, err := db.runTxn(func(txn uint64) error {
		file, err := storage.NewHeapFile(db.pool, db.cfg.FillFactor)
		if err != nil {
			return err
		}
		ji = &JoinIndex{r: r, s: s, op: op, ix: ix, file: file}
		var werr error
		ix.AllPairs(func(rid, sid int) bool {
			werr = ji.appendPair(rid, sid)
			return werr == nil
		})
		if werr != nil {
			return werr
		}
		if db.wal != nil {
			_, err = db.wal.AppendCatalog(txn, wal.RecNewJoinIndex,
				wal.EncodeNewJoinIndex(wal.NewJoinIndex{
					R: r.name, S: s.name, Operator: op.Name(), PairFile: file.File(),
				}))
			return err
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	db.mu.Lock()
	ji.lastLSN = lsn
	db.joinIndices[key] = ji
	db.mu.Unlock()
	return ji, stats, nil
}

// maintainJoinIndices updates every registered join index after an insert
// into collection c: the new object is checked against the entire other
// collection (the paper's U_III cost).
func (db *Database) maintainJoinIndices(c *Collection, id int, shape Spatial) error {
	for _, ji := range db.joinIndices {
		// Both branches run for a self-join index (ji.r == ji.s == c); the
		// index de-duplicates pairs.
		if ji.r == c {
			_, err := ji.ix.MaintainInsertR(id, ji.s.rel.Len(), func(sid int) (bool, error) {
				other, _, err := ji.s.Get(sid)
				if err != nil {
					return false, err
				}
				if !ji.op.Eval(shape, other) {
					return false, nil
				}
				return true, ji.appendPair(id, sid)
			})
			if err != nil {
				return err
			}
		}
		if ji.s == c {
			_, err := ji.ix.MaintainInsertS(id, ji.r.rel.Len(), func(rid int) (bool, error) {
				other, _, err := ji.r.Get(rid)
				if err != nil {
					return false, err
				}
				if !ji.op.Eval(other, shape) {
					return false, nil
				}
				return true, ji.appendPair(rid, id)
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}
