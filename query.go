package spatialjoin

import (
	"fmt"

	"spatialjoin/internal/core"
	"spatialjoin/internal/join"
	"spatialjoin/internal/joinindex"
)

// Strategy selects how a selection or join is computed, matching the
// paper's strategies I–III.
type Strategy uint8

const (
	// TreeStrategy (II) uses the hierarchical SELECT/JOIN algorithms over
	// the collections' R-tree generalization trees. The default.
	TreeStrategy Strategy = iota
	// ScanStrategy (I) is the nested-loop / exhaustive-scan baseline.
	ScanStrategy
	// IndexStrategy (III) answers from a precomputed join index; it
	// requires a prior BuildJoinIndex for the same collections and
	// operator.
	IndexStrategy
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case TreeStrategy:
		return "tree"
	case ScanStrategy:
		return "scan"
	case IndexStrategy:
		return "joinindex"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Stats is the measured work of one query, in the cost model's units.
type Stats = join.Stats

// Select returns the IDs of objects a in c with o θ a, along with the
// measured work. IndexStrategy is not supported for ad-hoc selectors (a
// join index relates stored tuples only — the paper's point that a generic
// search range "is defined ad hoc by the user" and cannot be precomputed);
// use SelectStored for a stored selector.
func (db *Database) Select(c *Collection, o Spatial, op Operator, strategy Strategy) ([]int, Stats, error) {
	if c == nil || o == nil || op == nil {
		return nil, Stats{}, fmt.Errorf("spatialjoin: nil select argument")
	}
	switch strategy {
	case ScanStrategy:
		return join.ExhaustiveSelect(c.table, o, op)
	case TreeStrategy:
		return join.TreeSelect(c.index.Generalization(), c.table, o, op, core.BreadthFirst)
	case IndexStrategy:
		return nil, Stats{}, fmt.Errorf("spatialjoin: join indices cannot answer ad-hoc selections; use SelectStored")
	default:
		return nil, Stats{}, fmt.Errorf("spatialjoin: unknown strategy %d", strategy)
	}
}

// SelectStored answers the selection whose selector is the stored object
// rID of collection r, against collection s, from the precomputed join
// index for (r, s, op).
func (db *Database) SelectStored(r *Collection, rID int, s *Collection, op Operator) ([]int, Stats, error) {
	ix, ok := db.joinIndexFor(r, s, op)
	if !ok {
		return nil, Stats{}, fmt.Errorf("spatialjoin: no join index for %s ⋈ %s on %s",
			r.name, s.name, op.Name())
	}
	return join.IndexSelect(ix.ix, rID, s.table)
}

// Join computes r ⋈θ s and returns the matching ID pairs with measured
// work. The operator is applied with r-objects as the left operand.
// Execution uses Config.Workers goroutines; whatever the worker count or
// strategy, the returned matches are canonically sorted by (R, S), so the
// outputs of all strategies are byte-comparable.
func (db *Database) Join(r, s *Collection, op Operator, strategy Strategy) ([]Match, Stats, error) {
	if r == nil || s == nil || op == nil {
		return nil, Stats{}, fmt.Errorf("spatialjoin: nil join argument")
	}
	switch strategy {
	case ScanStrategy:
		return join.NestedLoopWorkers(r.table, s.table, op, db.cfg.Workers)
	case TreeStrategy:
		return join.TreeJoinWorkers(r.index.Generalization(), r.table,
			s.index.Generalization(), s.table, op, db.cfg.Workers)
	case IndexStrategy:
		ix, ok := db.joinIndexFor(r, s, op)
		if !ok {
			return nil, Stats{}, fmt.Errorf("spatialjoin: no join index for %s ⋈ %s on %s; call BuildJoinIndex first",
				r.name, s.name, op.Name())
		}
		return join.IndexJoinWorkers(ix.ix, r.table, s.table, db.cfg.Workers)
	default:
		return nil, Stats{}, fmt.Errorf("spatialjoin: unknown strategy %d", strategy)
	}
}

// JoinIndex is a precomputed Valduriez join index between two collections
// for one operator. It is maintained automatically on inserts into either
// collection — the expensive path the paper's update model prices.
type JoinIndex struct {
	r, s *Collection
	op   Operator
	ix   *joinindex.Index
}

// Pairs returns the number of precomputed matching pairs |J|.
func (ji *JoinIndex) Pairs() int { return ji.ix.Len() }

// joinIndexKey identifies an index by collections and operator.
func joinIndexKey(r, s *Collection, op Operator) string {
	return r.name + "\x00" + s.name + "\x00" + op.Name()
}

func (db *Database) joinIndexFor(r, s *Collection, op Operator) (*JoinIndex, bool) {
	ji, ok := db.joinIndices[joinIndexKey(r, s, op)]
	return ji, ok
}

// BuildJoinIndex precomputes the join index for r ⋈θ s (strategy III's
// setup step) and registers it for IndexStrategy joins and incremental
// maintenance. The returned stats show the exhaustive build cost.
func (db *Database) BuildJoinIndex(r, s *Collection, op Operator) (*JoinIndex, Stats, error) {
	if r == nil || s == nil || op == nil {
		return nil, Stats{}, fmt.Errorf("spatialjoin: nil join-index argument")
	}
	key := joinIndexKey(r, s, op)
	if _, dup := db.joinIndices[key]; dup {
		return nil, Stats{}, fmt.Errorf("spatialjoin: join index for %s ⋈ %s on %s already exists",
			r.name, s.name, op.Name())
	}
	ix, stats, err := join.BuildIndex(r.table, s.table, op, db.cfg.JoinIndexOrder)
	if err != nil {
		return nil, stats, err
	}
	ji := &JoinIndex{r: r, s: s, op: op, ix: ix}
	db.joinIndices[key] = ji
	return ji, stats, nil
}

// maintainJoinIndices updates every registered join index after an insert
// into collection c: the new object is checked against the entire other
// collection (the paper's U_III cost).
func (db *Database) maintainJoinIndices(c *Collection, id int, shape Spatial) error {
	for _, ji := range db.joinIndices {
		// Both branches run for a self-join index (ji.r == ji.s == c); the
		// index de-duplicates pairs.
		if ji.r == c {
			_, err := ji.ix.MaintainInsertR(id, ji.s.rel.Len(), func(sid int) (bool, error) {
				other, _, err := ji.s.Get(sid)
				if err != nil {
					return false, err
				}
				return ji.op.Eval(shape, other), nil
			})
			if err != nil {
				return err
			}
		}
		if ji.s == c {
			_, err := ji.ix.MaintainInsertS(id, ji.r.rel.Len(), func(rid int) (bool, error) {
				other, _, err := ji.r.Get(rid)
				if err != nil {
					return false, err
				}
				return ji.op.Eval(other, shape), nil
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}
