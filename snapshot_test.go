package spatialjoin

// Snapshot-shipping tests: a replica seeded from an exported stream answers
// the equivalence query set byte-identically to the source, keeps accepting
// writes, and a torn, corrupted, or mislabeled stream is rejected loudly
// instead of seeding a silent prefix.

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"strings"
	"testing"
	"time"
)

// exportWorkload runs the full crash workload and exports a snapshot,
// returning the source database, the stream, and the final model.
func exportWorkload(t *testing.T, cfg Config) (*Database, []byte, crashModel) {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := runSteps(t, db, crashSteps())
	var buf bytes.Buffer
	info, err := db.ExportSnapshot(&buf)
	if err != nil {
		t.Fatalf("ExportSnapshot: %v", err)
	}
	if info.CheckpointLSN == 0 || info.Pages == 0 {
		t.Fatalf("implausible snapshot info: %+v", info)
	}
	return db, buf.Bytes(), final
}

func TestSnapshotSeedEquivalence(t *testing.T) {
	cfg := crashConfig(1, 1)
	src, stream, final := exportWorkload(t, cfg)
	replica, info, err := SeedFromSnapshot(cfg, bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("SeedFromSnapshot: %v", err)
	}
	if info.Pages == 0 {
		t.Errorf("seeded replica reports zero pages: %+v", info)
	}
	mustMatch(t, src, final, "source after export")
	mustMatch(t, replica, final, "seeded replica")

	// The source's concurrent writes after the export must not appear on
	// the replica, and the replica must accept its own.
	rs, _ := src.Collection("r")
	if _, err := rs.Insert(crashRect(10), "r10-src"); err != nil {
		t.Fatalf("source insert after export: %v", err)
	}
	rr, _ := replica.Collection("r")
	if rr.Len() != len(final.rectsR) {
		t.Errorf("replica saw the source's post-export insert: %d rects", rr.Len())
	}
	if _, err := rr.Insert(crashRect(11), "r11-replica"); err != nil {
		t.Fatalf("replica insert: %v", err)
	}
	if rr.Len() != len(final.rectsR)+1 {
		t.Errorf("replica insert not visible: %d rects", rr.Len())
	}
}

// TestSnapshotSeededReplicaRecovers crashes nothing but closes the loop:
// a replica seeded from a snapshot can itself be reopened through ordinary
// recovery, and a snapshot of the replica seeds a third equivalent copy.
func TestSnapshotSeededReplicaRecovers(t *testing.T) {
	cfg := crashConfig(1, 1)
	_, stream, final := exportWorkload(t, cfg)
	replica, _, err := SeedFromSnapshot(cfg, bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("SeedFromSnapshot: %v", err)
	}
	rdb, _, err := Reopen(cfg, replica.Device())
	if err != nil {
		t.Fatalf("Reopen of seeded replica: %v", err)
	}
	mustMatch(t, rdb, final, "reopened replica")

	var second bytes.Buffer
	if _, err := rdb.ExportSnapshot(&second); err != nil {
		t.Fatalf("re-export: %v", err)
	}
	third, _, err := SeedFromSnapshot(cfg, &second)
	if err != nil {
		t.Fatalf("second-generation seed: %v", err)
	}
	mustMatch(t, third, final, "second-generation replica")
}

func TestSnapshotRejectsCorruptStreams(t *testing.T) {
	cfg := crashConfig(1, 1)
	_, stream, _ := exportWorkload(t, cfg)

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "not a snapshot"},
		{"bad magic", append([]byte("NOTSNAP\n"), stream[8:]...), "not a snapshot"},
		{"truncated header", stream[:12], "truncated snapshot header"},
		{"bad version", func() []byte {
			s := append([]byte(nil), stream...)
			s[8] = 99
			return s
		}(), "snapshot version"},
		{"torn tail", stream[:len(stream)-64], ""},
		{"flipped image byte", func() []byte {
			s := append([]byte(nil), stream...)
			s[len(s)/2] ^= 0xFF
			return s
		}(), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := SeedFromSnapshot(cfg, bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt stream seeded a replica")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSeedFailuresReleaseResources sweeps every rejection branch of
// SeedFromSnapshot — including the deepest one, where a whole database
// opens through recovery before the checkpoint cross-check fails — and
// verifies each failure releases what it built: no half-seeded *Database
// escapes, no goroutines survive, and the very same config immediately
// seeds cleanly afterwards, so a failed seed cannot wedge a retry loop.
func TestSeedFailuresReleaseResources(t *testing.T) {
	cfg := crashConfig(1, 1)
	_, stream, final := exportWorkload(t, cfg)
	baseline := settledTestGoroutines()

	// The header's checkpoint LSN lives at bytes 12..20 of the stream
	// (after the 8-byte magic and 4-byte version). Pointing it somewhere
	// recovery will not confirm takes the only branch where the database
	// has fully opened — its pool and log must be torn down again.
	mismatched := append([]byte(nil), stream...)
	binary.LittleEndian.PutUint64(mismatched[12:],
		binary.LittleEndian.Uint64(stream[12:])+12345)

	badPageSize := cfg
	badPageSize.PageSize = cfg.PageSize * 2

	cases := []struct {
		name string
		cfg  Config
		data []byte
		want string
	}{
		{"bad magic", cfg, append([]byte("NOTSNAP\n"), stream[8:]...), "not a snapshot"},
		{"truncated header", cfg, stream[:12], "truncated snapshot header"},
		{"bad version", cfg, func() []byte {
			s := append([]byte(nil), stream...)
			s[8] = 99
			return s
		}(), "snapshot version"},
		{"torn image", cfg, stream[:len(stream)-64], ""},
		{"page size mismatch", badPageSize, stream, "snapshot page size"},
		{"checkpoint mismatch", cfg, mismatched, "names checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, _, err := SeedFromSnapshot(tc.cfg, bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("rejection branch seeded a replica")
			}
			if db != nil {
				t.Error("failed seed leaked a non-nil database")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	if after := settledTestGoroutines(); after > baseline {
		t.Errorf("goroutines settled at %d after the failure sweep, started at %d — leak", after, baseline)
	}
	replica, _, err := SeedFromSnapshot(cfg, bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("clean seed after the failure sweep: %v", err)
	}
	mustMatch(t, replica, final, "replica seeded after failures")
}

// settledTestGoroutines samples the goroutine count until it stops
// shrinking.
func settledTestGoroutines() int {
	best := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(2 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= best && i > 5 {
			return best
		}
		if n < best {
			best = n
		}
	}
	return best
}
