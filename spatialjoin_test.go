package spatialjoin

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func openT(t *testing.T) *Database {
	t.Helper()
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// loadRandomRects fills a collection with n random rectangles and returns
// them by ID.
func loadRandomRects(t *testing.T, c *Collection, seed int64, n int) []Rect {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]Rect, n)
	for i := range out {
		x, y := rng.Float64()*900, rng.Float64()*900
		out[i] = NewRect(x, y, x+rng.Float64()*60, y+rng.Float64()*60)
		id, err := c.Insert(out[i], fmt.Sprintf("obj-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	return out
}

func TestOpenValidation(t *testing.T) {
	bad := []Config{
		{PageSize: 0, BufferPages: 8, FillFactor: 0.5, JoinIndexOrder: 10},
		{PageSize: 2000, BufferPages: 0, FillFactor: 0.5, JoinIndexOrder: 10},
		{PageSize: 2000, BufferPages: 8, FillFactor: 0, JoinIndexOrder: 10},
		{PageSize: 2000, BufferPages: 8, FillFactor: 0.5, JoinIndexOrder: 1},
	}
	for i, cfg := range bad {
		cfg.IndexOptions = DefaultConfig().IndexOptions
		if _, err := Open(cfg); err == nil {
			t.Errorf("config %d must be rejected", i)
		}
	}
}

func TestCreateCollection(t *testing.T) {
	db := openT(t)
	c, err := db.CreateCollection("lakes")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "lakes" || c.Len() != 0 {
		t.Fatalf("fresh collection: %s / %d", c.Name(), c.Len())
	}
	if _, err := db.CreateCollection("lakes"); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if _, err := db.CreateCollection(""); err == nil {
		t.Fatal("empty name must fail")
	}
	got, ok := db.Collection("lakes")
	if !ok || got != c {
		t.Fatal("lookup failed")
	}
	if _, ok := db.Collection("rivers"); ok {
		t.Fatal("phantom collection")
	}
}

func TestInsertGetRoundTrip(t *testing.T) {
	db := openT(t)
	c, _ := db.CreateCollection("objs")
	shapes := []Spatial{
		Pt(1, 2),
		NewRect(0, 0, 5, 5),
		RegularPolygon(Pt(10, 10), 3, 6),
	}
	for i, s := range shapes {
		id, err := c.Insert(s, fmt.Sprintf("p%d", i))
		if err != nil {
			t.Fatal(err)
		}
		shape, payload, err := c.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if payload != fmt.Sprintf("p%d", i) {
			t.Fatalf("payload = %q", payload)
		}
		if shape.Bounds() != s.Bounds() {
			t.Fatalf("shape bounds = %v, want %v", shape.Bounds(), s.Bounds())
		}
	}
	if _, err := c.Insert(nil, "x"); err == nil {
		t.Fatal("nil shape must fail")
	}
	if _, _, err := c.Get(99); err == nil {
		t.Fatal("bad id must fail")
	}
	if c.Pages() == 0 {
		t.Fatal("collection must occupy pages")
	}
}

func TestSelectStrategiesAgree(t *testing.T) {
	db := openT(t)
	c, _ := db.CreateCollection("objs")
	loadRandomRects(t, c, 1, 300)
	q := NewRect(200, 200, 500, 520)
	scan, scanStats, err := db.Select(c, q, Overlaps(), ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	tree, treeStats, err := db.Select(c, q, Overlaps(), TreeStrategy)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(scan)
	sort.Ints(tree)
	if len(scan) != len(tree) {
		t.Fatalf("scan %d vs tree %d", len(scan), len(tree))
	}
	for i := range scan {
		if scan[i] != tree[i] {
			t.Fatal("selection mismatch")
		}
	}
	if len(scan) == 0 {
		t.Fatal("query should match something")
	}
	// The tree strategy must do fewer exact evaluations than the scan.
	if treeStats.ExactEvals >= scanStats.ExactEvals {
		t.Fatalf("tree evals %d ≥ scan evals %d — filter not pruning",
			treeStats.ExactEvals, scanStats.ExactEvals)
	}
}

func TestSelectErrors(t *testing.T) {
	db := openT(t)
	c, _ := db.CreateCollection("objs")
	if _, _, err := db.Select(nil, NewRect(0, 0, 1, 1), Overlaps(), TreeStrategy); err == nil {
		t.Fatal("nil collection must fail")
	}
	if _, _, err := db.Select(c, nil, Overlaps(), TreeStrategy); err == nil {
		t.Fatal("nil selector must fail")
	}
	if _, _, err := db.Select(c, NewRect(0, 0, 1, 1), nil, TreeStrategy); err == nil {
		t.Fatal("nil operator must fail")
	}
	if _, _, err := db.Select(c, NewRect(0, 0, 1, 1), Overlaps(), IndexStrategy); err == nil {
		t.Fatal("ad-hoc index selection must fail")
	}
	if _, _, err := db.Select(c, NewRect(0, 0, 1, 1), Overlaps(), Strategy(9)); err == nil {
		t.Fatal("unknown strategy must fail")
	}
}

func TestJoinStrategiesAgree(t *testing.T) {
	db := openT(t)
	r, _ := db.CreateCollection("r")
	s, _ := db.CreateCollection("s")
	loadRandomRects(t, r, 2, 150)
	loadRandomRects(t, s, 3, 150)
	for _, op := range []Operator{Overlaps(), WithinDistance(100), NorthwestOf()} {
		scan, _, err := db.Join(r, s, op, ScanStrategy)
		if err != nil {
			t.Fatal(err)
		}
		tree, _, err := db.Join(r, s, op, TreeStrategy)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := db.Join(r, s, op, IndexStrategy); err == nil {
			t.Fatal("index join without index must fail")
		}
		if _, _, err := db.BuildJoinIndex(r, s, op); err != nil {
			t.Fatal(err)
		}
		idx, idxStats, err := db.Join(r, s, op, IndexStrategy)
		if err != nil {
			t.Fatal(err)
		}
		key := func(ms []Match) string {
			sort.Slice(ms, func(i, j int) bool {
				if ms[i].R != ms[j].R {
					return ms[i].R < ms[j].R
				}
				return ms[i].S < ms[j].S
			})
			return fmt.Sprint(ms)
		}
		if key(scan) != key(tree) || key(scan) != key(idx) {
			t.Fatalf("%s: strategies disagree (%d/%d/%d pairs)",
				op.Name(), len(scan), len(tree), len(idx))
		}
		if idxStats.ExactEvals != 0 {
			t.Fatal("index join must not evaluate")
		}
	}
}

func TestJoinErrors(t *testing.T) {
	db := openT(t)
	r, _ := db.CreateCollection("r")
	if _, _, err := db.Join(nil, r, Overlaps(), TreeStrategy); err == nil {
		t.Fatal("nil collection must fail")
	}
	if _, _, err := db.Join(r, r, nil, TreeStrategy); err == nil {
		t.Fatal("nil operator must fail")
	}
	if _, _, err := db.Join(r, r, Overlaps(), Strategy(9)); err == nil {
		t.Fatal("unknown strategy must fail")
	}
	if _, _, err := db.BuildJoinIndex(nil, r, Overlaps()); err == nil {
		t.Fatal("nil build must fail")
	}
}

func TestJoinIndexMaintainedOnInsert(t *testing.T) {
	db := openT(t)
	houses, _ := db.CreateCollection("houses")
	lakes, _ := db.CreateCollection("lakes")
	lakes.Insert(NewRect(0, 0, 10, 10), "lake-a")
	houses.Insert(Pt(12, 5), "house-0") // 2 from lake-a
	op := ReachableWithin(5, 1)         // radius 5
	ji, _, err := db.BuildJoinIndex(houses, lakes, op)
	if err != nil {
		t.Fatal(err)
	}
	if ji.Pairs() != 1 {
		t.Fatalf("initial pairs = %d, want 1", ji.Pairs())
	}
	// Insert a matching house: the index must pick it up.
	houses.Insert(Pt(11, 2), "house-1")
	if ji.Pairs() != 2 {
		t.Fatalf("pairs after house insert = %d, want 2", ji.Pairs())
	}
	// Insert a second lake near both houses: maintained from the S side.
	lakes.Insert(NewRect(12, 0, 20, 8), "lake-b")
	if ji.Pairs() != 4 {
		t.Fatalf("pairs after lake insert = %d, want 4", ji.Pairs())
	}
	// The index join answer now reflects all of it.
	pairs, _, err := db.Join(houses, lakes, op, IndexStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 {
		t.Fatalf("index join pairs = %d", len(pairs))
	}
	// Duplicate build must fail.
	if _, _, err := db.BuildJoinIndex(houses, lakes, op); err == nil {
		t.Fatal("duplicate join index must fail")
	}
}

func TestSelectStoredUsesJoinIndex(t *testing.T) {
	db := openT(t)
	r, _ := db.CreateCollection("r")
	s, _ := db.CreateCollection("s")
	loadRandomRects(t, r, 4, 60)
	loadRandomRects(t, s, 5, 60)
	op := Overlaps()
	if _, _, err := db.SelectStored(r, 0, s, op); err == nil {
		t.Fatal("SelectStored without index must fail")
	}
	if _, _, err := db.BuildJoinIndex(r, s, op); err != nil {
		t.Fatal(err)
	}
	for rid := 0; rid < 60; rid += 13 {
		shape, _, err := r.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := db.Select(s, shape, op, ScanStrategy)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := db.SelectStored(r, rid, s, op)
		if err != nil {
			t.Fatal(err)
		}
		sort.Ints(want)
		sort.Ints(got)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("rid %d: stored select mismatch", rid)
		}
	}
}

func TestSelfJoinIndexMaintenance(t *testing.T) {
	db := openT(t)
	c, _ := db.CreateCollection("c")
	c.Insert(NewRect(0, 0, 10, 10), "a")
	ji, _, err := db.BuildJoinIndex(c, c, Overlaps())
	if err != nil {
		t.Fatal(err)
	}
	if ji.Pairs() != 1 { // (0,0)
		t.Fatalf("self pairs = %d", ji.Pairs())
	}
	c.Insert(NewRect(5, 5, 15, 15), "b")
	// New pairs: (1,1), (0,1), (1,0).
	if ji.Pairs() != 4 {
		t.Fatalf("self pairs after insert = %d, want 4", ji.Pairs())
	}
}

func TestIOStatsAndCache(t *testing.T) {
	db := openT(t)
	c, _ := db.CreateCollection("objs")
	loadRandomRects(t, c, 6, 200)
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	db.ResetIOStats()
	_, stats, err := db.Select(c, NewRect(0, 0, 1000, 1000), Overlaps(), ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PageReads == 0 {
		t.Fatal("cold scan must read pages")
	}
	if db.IOStats().Misses == 0 {
		t.Fatal("pool stats must reflect the scan")
	}
	// Warm re-run: everything resident (collection is small).
	_, warm, err := db.Select(c, NewRect(0, 0, 1000, 1000), Overlaps(), ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if warm.PageReads != 0 {
		t.Fatalf("warm scan read %d pages", warm.PageReads)
	}
}

func TestStrategyString(t *testing.T) {
	if TreeStrategy.String() != "tree" || ScanStrategy.String() != "scan" || IndexStrategy.String() != "joinindex" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Fatal("unknown strategy string wrong")
	}
}

func TestZOverlapJoinFacade(t *testing.T) {
	rs := []Rect{NewRect(0, 0, 10, 10), NewRect(50, 50, 60, 60)}
	ss := []Rect{NewRect(5, 5, 15, 15), NewRect(90, 90, 95, 95)}
	pairs, err := ZOverlapJoin(rs, ss, NewRect(0, 0, 100, 100), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != (Match{R: 0, S: 0}) {
		t.Fatalf("pairs = %v", pairs)
	}
	if _, err := ZOverlapJoin(rs, ss, Rect{}, 6); err == nil {
		t.Fatal("bad world must fail")
	}
}

func TestCostModelFacade(t *testing.T) {
	prm := PaperParams()
	m, err := NewCostModel(prm, DistUniform, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sc := m.SelectCosts(6)
	if sc.CIIb >= sc.CIIa {
		t.Fatal("clustered must beat unclustered at p=0.01 UNIFORM")
	}
	ps, err := LogSpace(1e-6, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ss, err := SelectFigure(prm, DistNoLoc, ps, 6); err != nil || len(ss) == 0 {
		t.Fatalf("SelectFigure: %v", err)
	}
	if js, err := JoinFigure(prm, DistHiLoc, ps); err != nil || len(js) != 4 {
		t.Fatalf("JoinFigure: %v", err)
	}
}
