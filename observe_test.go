package spatialjoin

// Observability tests: the trace a query emits must agree exactly with the
// Stats it returns (the per-level read deltas telescope to PageReads), and
// failed or degraded queries must still emit complete traces — the
// asymmetry the scan-fallback path used to have.

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/storage"
)

// traceDB opens a healthy database and loads the chaos workload (reused
// here for its known non-empty match set).
func traceDB(t *testing.T, cfg Config) (*Database, *Collection, *Collection) {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, ss, _ := chaosRects()
	r := loadRects(t, db, "r", rs)
	s := loadRects(t, db, "s", ss)
	return db, r, s
}

// sumIntAttr sums the named integer attribute over the spans.
func sumIntAttr(spans []obs.Span, key string) int64 {
	var n int64
	for _, sp := range spans {
		if v, ok := sp.IntAttr(key); ok {
			n += v
		}
	}
	return n
}

// TestTraceReadSumMatchesStats is the acceptance check for the tracer's
// I/O accounting: on a cold tree join, the per-level "reads" recorded in
// the trace sum exactly to the query's Stats.PageReads, and the scrub
// spans' reads sum exactly to Stats.IndexReads.
func TestTraceReadSumMatchesStats(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		db, r, s := traceDB(t, cfg)
		if err := db.DropCache(); err != nil {
			t.Fatal(err)
		}
		ctx, trace := WithTrace(context.Background())
		ms, stats, err := db.JoinContext(ctx, r, s, Overlaps(), TreeStrategy)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 || stats.PageReads == 0 {
			t.Fatalf("workers=%d: workload too small to exercise tracing (matches=%d reads=%d)",
				workers, len(ms), stats.PageReads)
		}
		levels := trace.SpansNamed("level")
		if len(levels) < 2 {
			t.Fatalf("workers=%d: only %d level spans", workers, len(levels))
		}
		if got := sumIntAttr(levels, "reads"); got != stats.PageReads {
			t.Errorf("workers=%d: level reads sum %d, Stats.PageReads %d", workers, got, stats.PageReads)
		}
		if got := sumIntAttr(trace.SpansNamed("scrub"), "reads"); got != stats.IndexReads {
			t.Errorf("workers=%d: scrub reads sum %d, Stats.IndexReads %d", workers, got, stats.IndexReads)
		}
		// The executor and query spans carry the same totals.
		for _, name := range []string{"treejoin", "join"} {
			spans := trace.SpansNamed(name)
			if len(spans) != 1 {
				t.Fatalf("workers=%d: %d %q spans", workers, len(spans), name)
			}
			if got, _ := spans[0].IntAttr("page_reads"); got != stats.PageReads {
				t.Errorf("workers=%d: %s page_reads %d, Stats %d", workers, name, got, stats.PageReads)
			}
		}
		// Per-level filter evaluations must telescope the same way.
		if got := sumIntAttr(levels, "filter_evals"); got != stats.FilterEvals {
			t.Errorf("workers=%d: level filter_evals sum %d, Stats %d", workers, got, stats.FilterEvals)
		}
	}
}

// TestTraceSelectReadSum is the selection-side counterpart.
func TestTraceSelectReadSum(t *testing.T) {
	db, r, _ := traceDB(t, DefaultConfig())
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	_, ss, _ := chaosRects()
	ctx, trace := WithTrace(context.Background())
	_, stats, err := db.SelectContext(ctx, r, ss[0], Overlaps(), TreeStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumIntAttr(trace.SpansNamed("level"), "reads"); got != stats.PageReads {
		t.Errorf("level reads sum %d, Stats.PageReads %d", got, stats.PageReads)
	}
	spans := trace.SpansNamed("select")
	if len(spans) != 1 {
		t.Fatalf("%d select spans", len(spans))
	}
	if outcome, _ := spans[0].StrAttr("outcome"); outcome != "ok" {
		t.Errorf("outcome = %q, want ok", outcome)
	}
}

// TestDegradedQueryTraceComplete kills the index backing pages and asserts
// a degraded query still emits a complete trace: a "downgrade" event, an
// "error" event on the failed attempt, every span closed, and the final
// Downgrades count on the query span.
func TestDegradedQueryTraceComplete(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = &fault.Options{Seed: 7007}
	db, r, s := traceDB(t, cfg)
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	db.FaultDisk().LosePage(storage.PageID{File: r.IndexFileID(), Page: 0})

	ctx, trace := WithTrace(context.Background())
	_, stats, err := db.JoinContext(ctx, r, s, Overlaps(), TreeStrategy)
	if err != nil {
		t.Fatalf("degradation failed: %v", err)
	}
	if stats.Downgrades != 1 {
		t.Fatalf("Downgrades = %d, want 1", stats.Downgrades)
	}
	var sawDowngrade bool
	for _, e := range trace.Events() {
		if e.Name == "downgrade" {
			sawDowngrade = true
		}
	}
	if !sawDowngrade {
		t.Error("trace missing downgrade event")
	}
	q := trace.SpansNamed("join")
	if len(q) != 1 {
		t.Fatalf("%d join spans", len(q))
	}
	if outcome, _ := q[0].StrAttr("outcome"); outcome != "degraded" {
		t.Errorf("outcome = %q, want degraded", outcome)
	}
	if d, _ := q[0].IntAttr("downgrades"); d != 1 {
		t.Errorf("downgrades attr = %d, want 1", d)
	}
	// The failed attempt's spans are closed, with the failure recorded.
	for _, sp := range trace.Spans() {
		if sp.End == 0 {
			t.Errorf("span %q left open on a degraded query", sp.Name)
		}
	}
	// The fallback ran: a nestedloop executor span exists alongside the
	// aborted scrub/treejoin spans.
	if len(trace.SpansNamed("nestedloop")) != 1 {
		t.Error("trace missing the fallback nestedloop span")
	}
	var tree bytes.Buffer
	if err := trace.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.String(), "! downgrade") {
		t.Errorf("rendered tree missing downgrade event:\n%s", tree.String())
	}
}

// TestTimedOutQueryTrace asserts an expired deadline still ends the query
// span, with the timeout outcome.
func TestTimedOutQueryTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryTimeout = time.Nanosecond
	db, r, s := traceDB(t, cfg)
	ctx, trace := WithTrace(context.Background())
	_, _, err := db.JoinContext(ctx, r, s, Overlaps(), TreeStrategy)
	if err == nil {
		t.Fatal("expected a deadline error")
	}
	q := trace.SpansNamed("join")
	if len(q) != 1 || q[0].End == 0 {
		t.Fatalf("query span missing or open: %+v", q)
	}
	if outcome, _ := q[0].StrAttr("outcome"); outcome != "timeout" {
		t.Errorf("outcome = %q, want timeout", outcome)
	}
}

// TestDatabaseMetricsFed opens a database with a registry and checks the
// scrape carries every advertised family with live values.
func TestDatabaseMetricsFed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WAL = true
	cfg.Metrics = obs.NewRegistry()
	db, r, s := traceDB(t, cfg)
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Join(r, s, Overlaps(), TreeStrategy); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Join(r, s, Overlaps(), ScanStrategy); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, family := range []string{
		"spatialjoin_pool_misses_total",
		"spatialjoin_pool_logical_reads_total",
		"spatialjoin_pool_hit_ratio",
		"spatialjoin_disk_reads_total",
		"spatialjoin_wal_commits_total",
		"spatialjoin_wal_commit_batch_size_bucket",
		"spatialjoin_parallel_tasks_total",
		"spatialjoin_queries_total",
		"spatialjoin_query_seconds_bucket",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("scrape missing %s", family)
		}
	}
	if got := cfg.Metrics.Counter("spatialjoin_queries_total", "Queries executed, by kind, strategy, and outcome.",
		obs.L("kind", "join"), obs.L("strategy", "tree"), obs.L("outcome", "ok")).Value(); got != 1 {
		t.Errorf("queries_total{join,tree,ok} = %d, want 1", got)
	}
	if db.Metrics() != cfg.Metrics {
		t.Error("Metrics() accessor lost the registry")
	}
}
