package carto

import (
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
)

func world(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(Feature{
		Name: "world", Kind: KindWorld,
		Shape: geom.NewRect(0, 0, 100, 100), TupleID: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindWorld: "world", KindCountry: "country", KindState: "state", KindCity: "city"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(Feature{Shape: geom.NewRect(0, 0, 1, 1)}); err == nil {
		t.Error("nameless root must fail")
	}
	if _, err := NewHierarchy(Feature{Name: "x"}); err == nil {
		t.Error("shapeless root must fail")
	}
}

func TestAddEnforcesInvariants(t *testing.T) {
	h := world(t)
	ok := Feature{Name: "a", Kind: KindCountry, Shape: geom.NewRect(0, 0, 50, 50), TupleID: 1}
	if err := h.Add("world", ok); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		parent string
		f      Feature
	}{
		{"world", Feature{Name: "", Shape: geom.NewRect(0, 0, 1, 1)}},  // nameless
		{"world", Feature{Name: "b"}},                                  // shapeless
		{"world", Feature{Name: "a", Shape: geom.NewRect(0, 0, 1, 1)}}, // duplicate
		{"mars", Feature{Name: "c", Shape: geom.NewRect(0, 0, 1, 1)}},  // unknown parent
		{"a", Feature{Name: "d", Shape: geom.NewRect(40, 40, 60, 60)}}, // escapes parent
	}
	for i, c := range cases {
		if err := h.Add(c.parent, c.f); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d after failed adds", h.Len())
	}
}

func TestLookups(t *testing.T) {
	h := world(t)
	h.Add("world", Feature{Name: "nation", Kind: KindCountry, Shape: geom.NewRect(10, 10, 40, 40), TupleID: 7})
	f, ok := h.Feature("nation")
	if !ok || f.Kind != KindCountry || f.TupleID != 7 {
		t.Fatalf("Feature lookup = %+v, %t", f, ok)
	}
	if _, ok := h.Feature("atlantis"); ok {
		t.Fatal("phantom feature found")
	}
	f, ok = h.FeatureByTuple(7)
	if !ok || f.Name != "nation" {
		t.Fatalf("FeatureByTuple = %+v, %t", f, ok)
	}
	if _, ok := h.FeatureByTuple(99); ok {
		t.Fatal("phantom tuple found")
	}
}

func TestWalkLevels(t *testing.T) {
	h := world(t)
	h.Add("world", Feature{Name: "c1", Kind: KindCountry, Shape: geom.NewRect(0, 0, 50, 100), TupleID: 1})
	h.Add("c1", Feature{Name: "s1", Kind: KindState, Shape: geom.NewRect(0, 0, 25, 50), TupleID: 2})
	h.Add("s1", Feature{Name: "city1", Kind: KindCity, Shape: geom.NewRect(1, 1, 5, 5), TupleID: 3})
	levels := map[string]int{}
	h.Walk(func(f Feature, level int) bool {
		levels[f.Name] = level
		return true
	})
	want := map[string]int{"world": 0, "c1": 1, "s1": 2, "city1": 3}
	for name, lvl := range want {
		if levels[name] != lvl {
			t.Fatalf("level of %s = %d, want %d", name, levels[name], lvl)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchySelectInteriorNodesQualify(t *testing.T) {
	// The defining property of application hierarchies: a SELECT can return
	// countries and states, not just leaf cities.
	h := world(t)
	h.Add("world", Feature{Name: "c1", Kind: KindCountry, Shape: geom.NewRect(0, 0, 60, 60), TupleID: 1})
	h.Add("c1", Feature{Name: "s1", Kind: KindState, Shape: geom.NewRect(5, 5, 30, 30), TupleID: 2})
	h.Add("s1", Feature{Name: "city1", Kind: KindCity, Shape: geom.NewRect(6, 6, 8, 8), TupleID: 3})
	h.Add("c1", Feature{Name: "s2", Kind: KindState, Shape: geom.NewRect(35, 35, 55, 55), TupleID: 4})

	res, err := core.Select(h.Tree(), geom.NewRect(6.5, 6.5, 7, 7), pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, id := range res.Tuples {
		got[id] = true
	}
	// The query box sits inside city1, so world, c1, s1 and city1 all
	// overlap it; s2 does not.
	for _, want := range []int{0, 1, 2, 3} {
		if !got[want] {
			t.Fatalf("tuple %d missing from %v", want, res.Tuples)
		}
	}
	if got[4] {
		t.Fatal("s2 must not match")
	}
}

func TestHierarchyJoinWithItself(t *testing.T) {
	h := world(t)
	h.Add("world", Feature{Name: "c1", Kind: KindCountry, Shape: geom.NewRect(0, 0, 45, 45), TupleID: 1})
	h.Add("world", Feature{Name: "c2", Kind: KindCountry, Shape: geom.NewRect(50, 50, 95, 95), TupleID: 2})
	h.Add("c1", Feature{Name: "s1", Kind: KindState, Shape: geom.NewRect(0, 0, 20, 20), TupleID: 3})
	h.Add("c2", Feature{Name: "s2", Kind: KindState, Shape: geom.NewRect(60, 60, 80, 80), TupleID: 4})

	res, err := core.Join(h.Tree(), h.Tree(), pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[core.Match]bool{}
	for _, m := range res.Pairs {
		pairs[m] = true
	}
	// c1 and c2 are disjoint; both overlap the world; states overlap their
	// own countries.
	mustHave := []core.Match{{R: 0, S: 0}, {R: 1, S: 0}, {R: 3, S: 1}, {R: 4, S: 2}}
	for _, m := range mustHave {
		if !pairs[m] {
			t.Fatalf("missing pair %+v", m)
		}
	}
	if pairs[(core.Match{R: 1, S: 2})] {
		t.Fatal("disjoint countries must not pair")
	}
}
