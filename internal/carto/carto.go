// Package carto implements application-defined generalization trees for
// cartographic PART-OF hierarchies, the paper's second family of
// generalization trees (Figure 3): a map divided into countries, which
// divide into states, which divide into cities. Unlike abstract indices
// such as R-trees, every node here is an application object that is
// "relevant to the user" and may qualify for query results — including
// interior nodes.
package carto

import (
	"fmt"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
)

// Kind classifies a cartographic feature by its hierarchy level.
type Kind uint8

// Feature kinds, from coarse to fine.
const (
	KindWorld Kind = iota
	KindCountry
	KindState
	KindCity
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindWorld:
		return "world"
	case KindCountry:
		return "country"
	case KindState:
		return "state"
	case KindCity:
		return "city"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Feature is one named cartographic object.
type Feature struct {
	// Name is the feature's unique name within its hierarchy.
	Name string
	// Kind is the hierarchy level.
	Kind Kind
	// Shape is the feature's geometry.
	Shape geom.Spatial
	// TupleID is the tuple holding the feature's attributes, or negative
	// when the feature is not materialized in a relation.
	TupleID int
}

// Hierarchy is a cartographic generalization tree built from features with
// explicit parent-child (PART-OF) links. Children must be spatially
// contained in their parents.
type Hierarchy struct {
	tree   *core.BasicTree
	byName map[string]*core.BasicNode
	feats  map[*core.BasicNode]Feature
}

// NewHierarchy creates a hierarchy rooted at the given feature (typically
// the whole map).
func NewHierarchy(root Feature) (*Hierarchy, error) {
	if root.Name == "" {
		return nil, fmt.Errorf("carto: root feature needs a name")
	}
	if root.Shape == nil {
		return nil, fmt.Errorf("carto: root feature %q needs a shape", root.Name)
	}
	rn := core.NewBasicNode(root.Shape, root.TupleID)
	h := &Hierarchy{
		tree:   core.NewBasicTree(rn),
		byName: map[string]*core.BasicNode{root.Name: rn},
		feats:  map[*core.BasicNode]Feature{rn: root},
	}
	return h, nil
}

// Add attaches feature as a child of the named parent. The feature's MBR
// must be contained in the parent's MBR (the generalization-tree
// invariant); names must be unique.
func (h *Hierarchy) Add(parentName string, f Feature) error {
	if f.Name == "" {
		return fmt.Errorf("carto: feature needs a name")
	}
	if f.Shape == nil {
		return fmt.Errorf("carto: feature %q needs a shape", f.Name)
	}
	if _, dup := h.byName[f.Name]; dup {
		return fmt.Errorf("carto: duplicate feature name %q", f.Name)
	}
	parent, ok := h.byName[parentName]
	if !ok {
		return fmt.Errorf("carto: unknown parent %q", parentName)
	}
	if !parent.Bounds().ContainsRect(f.Shape.Bounds()) {
		return fmt.Errorf("carto: %q (%v) is not contained in %q (%v)",
			f.Name, f.Shape.Bounds(), parentName, parent.Bounds())
	}
	n := core.NewBasicNode(f.Shape, f.TupleID)
	parent.AddChild(n)
	h.byName[f.Name] = n
	h.feats[n] = f
	return nil
}

// Tree returns the hierarchy as a core.Tree for SELECT/JOIN.
func (h *Hierarchy) Tree() core.Tree { return h.tree }

// Len returns the number of features.
func (h *Hierarchy) Len() int { return len(h.byName) }

// Feature returns the named feature.
func (h *Hierarchy) Feature(name string) (Feature, bool) {
	n, ok := h.byName[name]
	if !ok {
		return Feature{}, false
	}
	return h.feats[n], true
}

// FeatureByTuple returns the feature with the given tuple ID.
func (h *Hierarchy) FeatureByTuple(id int) (Feature, bool) {
	for _, f := range h.feats {
		if f.TupleID == id {
			return f, true
		}
	}
	return Feature{}, false
}

// Walk visits every feature with its hierarchy level in breadth-first
// order.
func (h *Hierarchy) Walk(f func(feat Feature, level int) bool) {
	core.Walk(h.tree, func(n core.Node, level int) bool {
		bn, ok := n.(*core.BasicNode)
		if !ok {
			return true
		}
		return f(h.feats[bn], level)
	})
}

// Validate checks the containment invariant over the whole hierarchy.
func (h *Hierarchy) Validate() error { return h.tree.Validate() }
