package localindex

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
)

// bruteSelfJoin enumerates all matching pairs of tuple-bearing nodes.
func bruteSelfJoin(tree core.Tree, op pred.Operator) []core.Match {
	var nodes []core.Node
	core.Walk(tree, func(n core.Node, _ int) bool {
		if _, ok := n.Tuple(); ok {
			nodes = append(nodes, n)
		}
		return true
	})
	var out []core.Match
	for _, a := range nodes {
		for _, b := range nodes {
			if op.Eval(a.Object(), b.Object()) {
				ra, _ := a.Tuple()
				sb, _ := b.Tuple()
				out = append(out, core.Match{R: ra, S: sb})
			}
		}
	}
	sortMatches(out)
	return out
}

func sortMatches(ms []core.Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].R != ms[j].R {
			return ms[i].R < ms[j].R
		}
		return ms[i].S < ms[j].S
	})
}

func modelTree(t *testing.T, seed int64, k, height int) core.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree, _ := datagen.ModelTree(rng, geom.NewRect(0, 0, 500, 500), k, height)
	return tree
}

func TestBuildValidation(t *testing.T) {
	tree := modelTree(t, 1, 2, 2)
	if _, _, err := Build(nil, pred.Overlaps{}, 1, 10); err == nil {
		t.Error("nil tree must fail")
	}
	if _, _, err := Build(tree, nil, 1, 10); err == nil {
		t.Error("nil operator must fail")
	}
	if _, _, err := Build(tree, pred.Overlaps{}, -1, 10); err == nil {
		t.Error("negative level must fail")
	}
	if _, _, err := Build(tree, pred.Overlaps{}, 1, 1); err == nil {
		t.Error("bad order must fail")
	}
}

func TestSelfJoinMatchesBruteForceAllLevels(t *testing.T) {
	ops := []pred.Operator{pred.Overlaps{}, pred.WithinDistance{D: 80}, pred.NorthwestOf{}}
	for _, seed := range []int64{1, 2, 3} {
		tree := modelTree(t, seed, 3, 3)
		for _, op := range ops {
			want := bruteSelfJoin(tree, op)
			for level := 0; level <= 4; level++ {
				ix, _, err := Build(tree, op, level, 25)
				if err != nil {
					t.Fatal(err)
				}
				if err := ix.Validate(); err != nil {
					t.Fatal(err)
				}
				got, _, err := ix.SelfJoin()
				if err != nil {
					t.Fatal(err)
				}
				sortMatches(got)
				if len(got) != len(want) {
					t.Fatalf("seed %d, %s, λ=%d: %d pairs, brute force %d",
						seed, op.Name(), level, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d, %s, λ=%d: pair %d mismatch", seed, op.Name(), level, i)
					}
				}
			}
		}
	}
}

func TestNoDuplicatePairs(t *testing.T) {
	tree := modelTree(t, 4, 3, 3)
	for level := 0; level <= 3; level++ {
		ix, _, err := Build(tree, pred.Overlaps{}, level, 25)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ix.SelfJoin()
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[core.Match]bool, len(got))
		for _, m := range got {
			if seen[m] {
				t.Fatalf("λ=%d: duplicate pair %+v", level, m)
			}
			seen[m] = true
		}
	}
}

func TestLambdaZeroIsGlobalIndex(t *testing.T) {
	// λ = 0 anchors one index at the root: the whole join precomputed, and
	// the live part does nothing.
	tree := modelTree(t, 5, 3, 2)
	ix, _, err := Build(tree, pred.Overlaps{}, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Anchors() != 1 {
		t.Fatalf("anchors = %d, want 1", ix.Anchors())
	}
	got, stats, err := ix.SelfJoin()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilterEvals != 0 || stats.ExactEvals != 0 {
		t.Fatalf("λ=0 must answer without live evaluation: %+v", stats)
	}
	if len(got) != ix.Pairs() {
		t.Fatalf("result %d != stored %d", len(got), ix.Pairs())
	}
}

func TestLambdaBeyondHeightIsPureTree(t *testing.T) {
	tree := modelTree(t, 6, 3, 2)
	ix, _, err := Build(tree, pred.Overlaps{}, 5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Anchors() != 0 || ix.Pairs() != 0 {
		t.Fatalf("λ beyond height must store nothing: %d anchors, %d pairs",
			ix.Anchors(), ix.Pairs())
	}
	got, stats, err := ix.SelfJoin()
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexReads != 0 {
		t.Fatal("pure tree join must not read index pages")
	}
	want := bruteSelfJoin(tree, pred.Overlaps{})
	if len(got) != len(want) {
		t.Fatalf("pure-tree fallback wrong: %d vs %d", len(got), len(want))
	}
}

func TestLiveEvaluationsShrinkAsLambdaDecreases(t *testing.T) {
	// The mixture property: moving λ toward the root shifts work from live
	// evaluation (II) to index lookup (III).
	tree := modelTree(t, 7, 4, 3)
	var prevEvals int64 = -1
	for level := 3; level >= 0; level-- {
		ix, _, err := Build(tree, pred.Overlaps{}, level, 25)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := ix.SelfJoin()
		if err != nil {
			t.Fatal(err)
		}
		evals := stats.FilterEvals + stats.ExactEvals
		if prevEvals >= 0 && evals > prevEvals {
			t.Fatalf("λ=%d: live evals grew (%d > %d)", level, evals, prevEvals)
		}
		prevEvals = evals
	}
}

func TestMaintainInsertCheaperThanGlobalScan(t *testing.T) {
	// Insert a new leaf under one anchor; maintenance must evaluate only
	// that subtree, not the whole relation — the paper's motivation for
	// local indices.
	rng := rand.New(rand.NewSource(8))
	basic, n := datagen.ModelTree(rng, geom.NewRect(0, 0, 500, 500), 4, 3)
	op := pred.Overlaps{}
	ix, _, err := Build(basic, op, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	before := bruteSelfJoin(basic, op)

	// Attach a new object under the first level-1 node.
	parent := basic.RootBasic().Kids[0]
	obj := subRectOf(rng, parent.Bounds())
	newID := n
	parent.AddChild(core.NewBasicNode(obj, newID))

	anchorIdx, ok := ix.AnchorFor(obj.Bounds())
	if !ok {
		t.Fatal("new object must land in an anchor")
	}
	evals, err := ix.MaintainInsert(anchorIdx, newID, obj)
	if err != nil {
		t.Fatal(err)
	}
	if evals >= 2*n {
		t.Fatalf("maintenance cost %d should be far below a full scan (2N = %d)", evals, 2*n)
	}
	// The self-join must now be exact again.
	got, _, err := ix.SelfJoin()
	if err != nil {
		t.Fatal(err)
	}
	want := bruteSelfJoin(basic, op)
	if len(want) <= len(before) {
		t.Fatal("test setup: the insert should add pairs")
	}
	sortMatches(got)
	if len(got) != len(want) {
		t.Fatalf("after maintenance: %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("after maintenance: pair %d mismatch", i)
		}
	}
}

func subRectOf(rng *rand.Rand, parent geom.Rect) geom.Rect {
	w, h := parent.Width(), parent.Height()
	x1 := parent.MinX + rng.Float64()*w
	x2 := parent.MinX + rng.Float64()*w
	y1 := parent.MinY + rng.Float64()*h
	y2 := parent.MinY + rng.Float64()*h
	return geom.NewRect(x1, y1, x2, y2)
}

func TestMaintainInsertValidation(t *testing.T) {
	tree := modelTree(t, 9, 2, 2)
	ix, _, err := Build(tree, pred.Overlaps{}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.MaintainInsert(-1, 0, geom.NewRect(0, 0, 1, 1)); err == nil {
		t.Error("negative anchor must fail")
	}
	if _, err := ix.MaintainInsert(99, 0, geom.NewRect(0, 0, 1, 1)); err == nil {
		t.Error("out-of-range anchor must fail")
	}
}

func TestAnchorFor(t *testing.T) {
	tree := modelTree(t, 10, 3, 2)
	ix, _, err := Build(tree, pred.Overlaps{}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Anchors() != 3 {
		t.Fatalf("anchors = %d", ix.Anchors())
	}
	// A rect escaping all anchors.
	if _, ok := ix.AnchorFor(geom.NewRect(-100, -100, -99, -99)); ok {
		t.Fatal("outside rect must not anchor")
	}
	// The first anchor's own bounds anchor to it.
	a0 := ix.anchors[0].node.Bounds()
	if i, ok := ix.AnchorFor(a0); !ok || i != 0 {
		t.Fatalf("AnchorFor(anchor 0 bounds) = %d, %t", i, ok)
	}
}

func TestStatsCost(t *testing.T) {
	s := Stats{FilterEvals: 3, ExactEvals: 2, IndexReads: 4}
	if got := s.Cost(1, 1000); got != 5+4000 {
		t.Fatalf("Cost = %g", got)
	}
}

func TestCostTradeoffAcrossLambda(t *testing.T) {
	// End-to-end sanity on the paper's conjecture: some intermediate λ
	// should be no worse than both extremes in combined query cost when
	// index reads are cheap relative to evaluation... at least, the
	// weighted costs must vary monotonically in their components.
	tree := modelTree(t, 11, 4, 3)
	op := pred.Overlaps{}
	type point struct {
		level  int
		evals  int64
		stored int
	}
	var pts []point
	for level := 0; level <= 4; level++ {
		ix, _, err := Build(tree, op, level, 100)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := ix.SelfJoin()
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{level, stats.FilterEvals + stats.ExactEvals, ix.Pairs()})
	}
	// Precomputed pairs decrease as λ rises (less is stored); live evals
	// increase (more is computed at query time). Page counts are not
	// monotone because each non-empty anchor pays a ⌈pairs/z⌉ ≥ 1 rounding.
	for i := 1; i < len(pts); i++ {
		if pts[i].stored > pts[i-1].stored {
			t.Fatalf("stored pairs must shrink with λ: %+v", pts)
		}
		if pts[i].evals < pts[i-1].evals {
			t.Fatalf("live evals must grow with λ: %+v", pts)
		}
	}
	// The extremes really are the pure strategies.
	if pts[0].evals != 0 {
		t.Fatal("λ=0 must not evaluate live")
	}
	if pts[len(pts)-1].stored != 0 {
		t.Fatal("λ beyond height must store nothing")
	}
}

func TestLevelAndSubtreeHeightAccessors(t *testing.T) {
	tree := modelTree(t, 12, 2, 2)
	ix, _, err := Build(tree, pred.Overlaps{}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Level() != 1 {
		t.Fatalf("Level = %d", ix.Level())
	}
	if (subtree{tree.Root()}).Height() != 0 {
		t.Fatal("subtree wrapper height must be 0 (unused)")
	}
}
