// Package localindex implements the extension Günther sketches in his
// conclusions (§5): local join indices — precomputed join results "between
// objects that are indexed by the same generalization tree and have some
// ancestor in common. This extension can be viewed as a mixture between the
// pure generalization trees (strategy II) and pure join indices (strategy
// III)".
//
// An Index anchors one small join index at every node of a chosen level λ
// of the tree: the anchor at node v precomputes all matching pairs whose
// members both lie in v's subtree (equivalently, whose lowest common
// ancestor is at level ≥ λ). A self-join then answers intra-subtree pairs
// by index lookup and computes only the subtree-spanning pairs (lca above
// λ) with the hierarchical JOIN descent. Updates touch a single anchor —
// one subtree's worth of evaluations instead of strategy III's full
// relation scan.
//
// λ interpolates between the pure strategies: λ = 0 is one global join
// index (III); λ > height(tree) stores nothing and degenerates to the pure
// tree join (II).
package localindex

import (
	"fmt"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/joinindex"
	"spatialjoin/internal/pred"
)

// Stats describes the work of building, querying or maintaining a local
// index, in the cost model's units.
type Stats struct {
	// FilterEvals and ExactEvals count Θ and θ evaluations of the live
	// (tree-descent) part.
	FilterEvals int64
	ExactEvals  int64
	// IndexReads counts join-index pages touched (⌈pairs/z⌉ per anchor
	// consulted).
	IndexReads int64
}

// Cost collapses the stats into time units.
func (s Stats) Cost(cTheta, cIO float64) float64 {
	return cTheta*float64(s.FilterEvals+s.ExactEvals) + cIO*float64(s.IndexReads)
}

// anchor is one level-λ node with its precomputed intra-subtree pairs.
// path is the node's child-index path from the root ("2.0.3"), the identity
// key the self-join descent uses — interface values are never compared, so
// nodes carrying slice-backed geometries are safe.
type anchor struct {
	node core.Node
	path string
	ix   *joinindex.Index
}

// Index is a set of local join indices anchored at level λ of one
// generalization tree, for one θ-operator and a self-join of the indexed
// relation.
type Index struct {
	tree    core.Tree
	op      pred.Operator
	level   int
	order   int
	anchors []anchor
}

// subtree adapts a node as a core.Tree rooted at it.
type subtree struct{ root core.Node }

// Root implements core.Tree.
func (s subtree) Root() core.Node { return s.root }

// Height implements core.Tree; algorithm JOIN terminates on empty
// worklists, so an upper bound is unnecessary and 0 is fine.
func (s subtree) Height() int { return 0 }

// Build constructs the local indices: one per level-λ node, each filled by
// a hierarchical self-join of that node's subtree. order is the B+-tree
// order z of each local index.
func Build(tree core.Tree, op pred.Operator, level, order int) (*Index, Stats, error) {
	var stats Stats
	if tree == nil || op == nil {
		return nil, stats, fmt.Errorf("localindex: nil tree or operator")
	}
	if level < 0 {
		return nil, stats, fmt.Errorf("localindex: negative anchor level %d", level)
	}
	idx := &Index{tree: tree, op: op, level: level, order: order}
	type entry struct {
		node core.Node
		path string
	}
	var nodes []entry
	var collect func(n core.Node, depth int, path string)
	collect = func(n core.Node, depth int, path string) {
		if depth == level {
			nodes = append(nodes, entry{node: n, path: path})
			return
		}
		for i, c := range n.Children() {
			collect(c, depth+1, childPath(path, i))
		}
	}
	if root := tree.Root(); root != nil {
		collect(root, 0, "")
	}
	for _, v := range nodes {
		res, err := core.Join(subtree{v.node}, subtree{v.node}, op, nil)
		if err != nil {
			return nil, stats, err
		}
		stats.FilterEvals += res.Stats.FilterEvals
		stats.ExactEvals += res.Stats.ExactEvals
		ji, err := joinindex.New(order)
		if err != nil {
			return nil, stats, err
		}
		for _, m := range res.Pairs {
			if _, err := ji.Add(m.R, m.S); err != nil {
				return nil, stats, err
			}
		}
		idx.anchors = append(idx.anchors, anchor{node: v.node, path: v.path, ix: ji})
	}
	return idx, stats, nil
}

// childPath extends a child-index path by one step.
func childPath(path string, i int) string {
	if path == "" {
		return fmt.Sprint(i)
	}
	return path + "." + fmt.Sprint(i)
}

// Level returns the anchor level λ.
func (ix *Index) Level() int { return ix.level }

// Anchors returns the number of local indices.
func (ix *Index) Anchors() int { return len(ix.anchors) }

// Pairs returns the total number of precomputed pairs across all anchors.
func (ix *Index) Pairs() int {
	total := 0
	for _, a := range ix.anchors {
		total += a.ix.Len()
	}
	return total
}

// SelfJoin computes the full self-join R ⋈θ R: spanning pairs (lowest
// common ancestor above λ) by hierarchical descent, intra-subtree pairs by
// local-index lookup.
func (ix *Index) SelfJoin() ([]core.Match, Stats, error) {
	var stats Stats
	var out []core.Match

	byPath := make(map[string]*joinindex.Index, len(ix.anchors))
	for _, a := range ix.anchors {
		byPath[a.path] = a.ix
	}

	root := ix.tree.Root()
	if root == nil {
		return out, stats, nil
	}
	// same marks identity pairs (both members the same node), tracked
	// structurally so interface values are never compared; path is the
	// identity pair's child-index path, the anchor lookup key.
	type pair struct {
		a, b core.Node
		same bool
		path string
	}
	qual := []pair{{a: root, b: root, same: true, path: ""}}
	depth := 0
	for len(qual) > 0 {
		var next []pair
		for _, p := range qual {
			a, b := p.a, p.b
			// Identity pair at the anchor level: answer from the local
			// index; prune the descent entirely.
			if depth == ix.level && p.same {
				ji, ok := byPath[p.path]
				if !ok {
					return nil, stats, fmt.Errorf("localindex: missing anchor at level %d", depth)
				}
				ji.AllPairs(func(r, s int) bool {
					out = append(out, core.Match{R: r, S: s})
					return true
				})
				stats.IndexReads += indexPages(ji, ix.order)
				continue
			}
			stats.FilterEvals++
			if !ix.op.Filter(a.Bounds(), b.Bounds()) {
				continue
			}
			if ra, okA := a.Tuple(); okA {
				if sb, okB := b.Tuple(); okB {
					stats.ExactEvals++
					if ix.op.Eval(a.Object(), b.Object()) {
						out = append(out, core.Match{R: ra, S: sb})
					}
				}
			}
			aKids, bKids := a.Children(), b.Children()
			// Side SELECTs: a against b's subtrees, b against a's — except
			// when a == b, where both passes would report the symmetric
			// pairs of the identity descent twice; a single pass plus
			// mirrored emission handles it (the mirror is exactly the
			// other pass by symmetry of the descent, not of θ — both
			// orientations are evaluated explicitly).
			bQual := make([]bool, len(bKids))
			for i, b2 := range bKids {
				ok, err := ix.sideSelect(a, b2, rightSide, &stats, &out)
				if err != nil {
					return nil, stats, err
				}
				bQual[i] = ok
			}
			aQual := make([]bool, len(aKids))
			for i, a2 := range aKids {
				ok, err := ix.sideSelect(b, a2, leftSide, &stats, &out)
				if err != nil {
					return nil, stats, err
				}
				aQual[i] = ok
			}
			for i, a2 := range aKids {
				if !aQual[i] {
					continue
				}
				for j, b2 := range bKids {
					if !bQual[j] {
						continue
					}
					np := pair{a: a2, b: b2}
					if p.same && i == j {
						np.same = true
						np.path = childPath(p.path, i)
					}
					next = append(next, np)
				}
			}
		}
		qual = next
		depth++
	}
	return out, stats, nil
}

type side uint8

const (
	rightSide side = iota
	leftSide
)

// sideSelect is the JOIN4 SELECT pass of the spanning descent; identical in
// structure to core's, but accumulating into the local Stats.
func (ix *Index) sideSelect(fixed, n core.Node, s side, stats *Stats, out *[]core.Match) (bool, error) {
	stats.FilterEvals++
	var pass bool
	if s == rightSide {
		pass = ix.op.Filter(fixed.Bounds(), n.Bounds())
	} else {
		pass = ix.op.Filter(n.Bounds(), fixed.Bounds())
	}
	if !pass {
		return false, nil
	}
	if fid, okF := fixed.Tuple(); okF {
		if nid, okN := n.Tuple(); okN {
			stats.ExactEvals++
			if s == rightSide {
				if ix.op.Eval(fixed.Object(), n.Object()) {
					*out = append(*out, core.Match{R: fid, S: nid})
				}
			} else {
				if ix.op.Eval(n.Object(), fixed.Object()) {
					*out = append(*out, core.Match{R: nid, S: fid})
				}
			}
		}
	}
	for _, c := range n.Children() {
		if _, err := ix.sideSelect(fixed, c, s, stats, out); err != nil {
			return false, err
		}
	}
	return true, nil
}

// AnchorFor returns the index of the anchor whose subtree region contains
// r, or ok = false when r escapes every anchor (it then only participates
// in spanning pairs computed live).
func (ix *Index) AnchorFor(r geom.Rect) (int, bool) {
	for i, a := range ix.anchors {
		if a.node.Bounds().ContainsRect(r) {
			return i, true
		}
	}
	return 0, false
}

// MaintainInsert updates the given anchor after a tuple-bearing node for
// (id, obj) was attached somewhere in that anchor's subtree: the new object
// is evaluated against every tuple in the subtree — including itself — in
// both operand orders. It returns the number of evaluations, the quantity
// to compare against strategy III's full-relation scan.
func (ix *Index) MaintainInsert(anchorIdx, id int, obj geom.Spatial) (int, error) {
	if anchorIdx < 0 || anchorIdx >= len(ix.anchors) {
		return 0, fmt.Errorf("localindex: anchor %d out of range", anchorIdx)
	}
	a := ix.anchors[anchorIdx]
	evals := 0
	var ferr error
	core.Walk(subtree{a.node}, func(n core.Node, _ int) bool {
		nid, ok := n.Tuple()
		if !ok {
			return true
		}
		if nid == id {
			evals++
			if ix.op.Eval(obj, obj) {
				if _, err := a.ix.Add(id, id); err != nil {
					ferr = err
					return false
				}
			}
			return true
		}
		evals += 2
		if ix.op.Eval(obj, n.Object()) {
			if _, err := a.ix.Add(id, nid); err != nil {
				ferr = err
				return false
			}
		}
		if ix.op.Eval(n.Object(), obj) {
			if _, err := a.ix.Add(nid, id); err != nil {
				ferr = err
				return false
			}
		}
		return true
	})
	return evals, ferr
}

// Validate cross-checks every anchor's index structure.
func (ix *Index) Validate() error {
	for i, a := range ix.anchors {
		if err := a.ix.Validate(); err != nil {
			return fmt.Errorf("localindex anchor %d: %w", i, err)
		}
	}
	return nil
}

// indexPages is the strategy-III paging charge for one anchor: ⌈pairs/z⌉.
func indexPages(ji *joinindex.Index, order int) int64 {
	n := ji.Len()
	if n == 0 {
		return 0
	}
	return int64((n + order - 1) / order)
}
