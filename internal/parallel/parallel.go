// Package parallel is the bounded worker-pool execution layer shared by
// every parallel join strategy. It follows the partition-based design of
// Tsitsigkos & Mamoulis (Parallel In-Memory Evaluation of Spatial Joins):
// the caller splits its input into independent partitions (tiles, chunks,
// QualPairs slices) and this package schedules them over a fixed number of
// goroutines, so the degree of parallelism is a single tunable knob
// (Config.Workers at the database layer) rather than an emergent property
// of the data.
//
// Workers accumulate into worker-local state and the caller merges the
// partial results in partition order, which keeps result ordering and
// per-strategy statistics deterministic for a fixed worker count.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// maxTrackedWorkers bounds the per-worker busy-time array. Worker ids are
// folded modulo this, so pools wider than the array still account all
// their busy time (slots just aggregate several workers).
const maxTrackedWorkers = 64

// poolMetrics is the process-wide activity accounting for every pool run,
// behind an atomic gate so the default path pays one atomic load per Run.
var poolMetrics struct {
	enabled    atomic.Bool
	runs       atomic.Int64
	tasks      atomic.Int64
	busyNanos  atomic.Int64
	workerBusy [maxTrackedWorkers]atomic.Int64
}

// EnableMetrics turns on pool activity accounting (runs, tasks, per-worker
// busy time). It is process-wide and cannot be turned off: the exposition
// layer samples Stats at scrape time.
func EnableMetrics() { poolMetrics.enabled.Store(true) }

// PoolStats is a snapshot of pool activity since EnableMetrics.
type PoolStats struct {
	Runs      int64 // Run/RunCtx invocations that started at least one task
	Tasks     int64 // tasks completed
	BusyNanos int64 // total time spent inside tasks, all workers
	// WorkerBusyNanos is per-worker-slot busy time (worker ids folded
	// modulo the slot count). Only slots that ever ran are meaningful.
	WorkerBusyNanos [maxTrackedWorkers]int64
}

// Stats returns the pool activity snapshot (zeros before EnableMetrics).
func Stats() PoolStats {
	var s PoolStats
	s.Runs = poolMetrics.runs.Load()
	s.Tasks = poolMetrics.tasks.Load()
	s.BusyNanos = poolMetrics.busyNanos.Load()
	for i := range s.WorkerBusyNanos {
		s.WorkerBusyNanos[i] = poolMetrics.workerBusy[i].Load()
	}
	return s
}

// runTask executes one task, accounting busy time to the worker slot when
// metrics are enabled (the caller has already checked the gate).
func runTask(worker int, task func(i int) error, i int) error {
	start := time.Now()
	err := task(i)
	d := time.Since(start).Nanoseconds()
	poolMetrics.tasks.Add(1)
	poolMetrics.busyNanos.Add(d)
	poolMetrics.workerBusy[worker%maxTrackedWorkers].Add(d)
	return err
}

// Workers resolves a configured worker count: n itself when positive,
// otherwise runtime.GOMAXPROCS(0) — the default degree of parallelism.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes task(0..n-1) on at most `workers` goroutines (resolved via
// Workers) and returns the first error any task produced. Tasks are handed
// out through an atomic cursor, so long tasks do not stall the queue behind
// them. With one worker (or one task) everything runs on the calling
// goroutine, making the serial path allocation- and goroutine-free.
//
// After a task fails no *new* tasks are started, but tasks already running
// are not interrupted; Run returns once all started tasks finish.
func Run(workers, n int, task func(i int) error) error {
	return RunCtx(context.Background(), workers, n, task)
}

// RunCtx is Run with cancellation: the context is checked before each task
// is handed out, so a cancelled or expired context stops the pool between
// tasks and RunCtx returns ctx.Err(). An already-cancelled context returns
// promptly, starting no tasks and leaving no goroutines behind. Tasks
// already running when the context fires are not interrupted — long tasks
// that want finer-grained cancellation must check the context themselves.
func RunCtx(ctx context.Context, workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	metered := poolMetrics.enabled.Load()
	if metered {
		poolMetrics.runs.Add(1)
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			var err error
			if metered {
				err = runTask(0, task, i)
			} else {
				err = task(i)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor  atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstE  error
		wg      sync.WaitGroup
	)
	worker := func(w int) {
		defer wg.Done()
		for !failed.Load() {
			if done != nil {
				select {
				case <-done:
					errOnce.Do(func() { firstE = ctx.Err() })
					failed.Store(true)
					return
				default:
				}
			}
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			var err error
			if metered {
				err = runTask(w, task, i)
			} else {
				err = task(i)
			}
			if err != nil {
				errOnce.Do(func() { firstE = err })
				failed.Store(true)
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker(w)
	}
	wg.Wait()
	return firstE
}

// Chunk is a half-open index interval [Lo, Hi).
type Chunk struct {
	Lo, Hi int
}

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// Chunks splits [0, n) into at most `parts` contiguous near-equal chunks
// (never empty ones). Merging per-chunk results in slice order reproduces
// the sequential iteration order.
func Chunks(n, parts int) []Chunk {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Chunk, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		if hi > lo {
			out = append(out, Chunk{Lo: lo, Hi: hi})
		}
	}
	return out
}

// RunChunks splits [0, n) into roughly perChunkFactor×workers chunks and
// runs body once per chunk on the pool. body receives the chunk index and
// bounds; per-chunk outputs should be written to chunk-indexed slots and
// merged in order by the caller. It returns the chunk list actually used.
func RunChunks(workers, n int, body func(chunk int, lo, hi int) error) ([]Chunk, error) {
	return RunChunksCtx(context.Background(), workers, n, body)
}

// RunChunksCtx is RunChunks with cancellation, with RunCtx's semantics: the
// context is checked between chunks, and a cancelled context returns
// ctx.Err() alongside the chunk list.
func RunChunksCtx(ctx context.Context, workers, n int, body func(chunk int, lo, hi int) error) ([]Chunk, error) {
	workers = Workers(workers)
	// Oversplit relative to the worker count so uneven partitions (skewed
	// tiles, ragged tree levels) still load-balance.
	chunks := Chunks(n, workers*chunkOversplit)
	err := RunCtx(ctx, workers, len(chunks), func(i int) error {
		return body(i, chunks[i].Lo, chunks[i].Hi)
	})
	return chunks, err
}

// chunkOversplit is the number of chunks handed to each worker on average.
const chunkOversplit = 4
