package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestRunCoversAllTasksOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 500
		var hits [n]atomic.Int32
		if err := Run(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunReturnsFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Run(4, 100, func(i int) error {
		ran.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Error propagation is best-effort prompt: not all 100 tasks may run,
	// but the call must return the failure.
	if ran.Load() == 0 {
		t.Fatal("no task ran")
	}
}

func TestRunSerialStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := Run(1, 100, func(i int) error {
		ran++
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || ran != 6 {
		t.Fatalf("serial run: err=%v ran=%d", err, ran)
	}
}

func TestChunksPartition(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100, 7}, {3, 100}, {10, 1}, {10, 0},
	} {
		chunks := Chunks(tc.n, tc.parts)
		next := 0
		for _, c := range chunks {
			if c.Lo != next || c.Hi <= c.Lo {
				t.Fatalf("Chunks(%d,%d): bad chunk %+v (next=%d)", tc.n, tc.parts, c, next)
			}
			next = c.Hi
		}
		if next != tc.n {
			t.Fatalf("Chunks(%d,%d) covers [0,%d)", tc.n, tc.parts, next)
		}
		if tc.parts >= 1 && len(chunks) > tc.parts {
			t.Fatalf("Chunks(%d,%d) produced %d chunks", tc.n, tc.parts, len(chunks))
		}
	}
}

func TestRunChunksMergeOrder(t *testing.T) {
	const n = 1000
	chunks, err := RunChunks(8, n, func(chunk, lo, hi int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the identity permutation from chunk order.
	var all []int
	for _, c := range chunks {
		for i := c.Lo; i < c.Hi; i++ {
			all = append(all, i)
		}
	}
	if len(all) != n {
		t.Fatalf("chunks cover %d of %d", len(all), n)
	}
	for i, v := range all {
		if i != v {
			t.Fatalf("chunk-order merge breaks sequential order at %d (got %d)", i, v)
		}
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		var ran atomic.Int32
		err := RunCtx(ctx, workers, 1000, func(int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d tasks ran on a pre-cancelled context", workers, ran.Load())
		}
	}
	if _, err := RunChunksCtx(ctx, 8, 1000, func(int, int, int) error {
		t.Error("chunk body ran on a pre-cancelled context")
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunChunksCtx: err = %v, want context.Canceled", err)
	}
}

func TestRunCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := RunCtx(ctx, workers, 10_000, func(int) error {
			if ran.Add(1) == 50 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The pool stops handing out tasks promptly: already-started tasks
		// finish, so at most one extra task per worker may slip through.
		if n := ran.Load(); n >= 10_000 {
			t.Fatalf("workers=%d: cancellation did not stop the pool (%d tasks ran)", workers, n)
		}
	}
}

func TestRunCtxLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		//sjlint:ignore ctxpool outcome races with cancel; this test only counts leftover goroutines
		_ = RunCtx(ctx, 8, 1000, func(int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	// RunCtx waits for its workers before returning, so the goroutine count
	// must settle back; allow the runtime a few scheduling rounds.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestRunCtxErrorBeatsLateCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx := context.Background()
	err := RunCtx(ctx, 4, 100, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want task error %v", err, boom)
	}
}
