package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// TxnAtomic enforces the WAL's transaction-closure discipline
// flow-sensitively: every wal.Log.Begin must reach a Commit or an Abort of
// the same transaction on every path out of the function — error returns,
// early breaks, and panics included. A begin record with no durable close
// is classified as a discarded transaction by recovery, so a leaked begin
// silently turns every mutation it covered into work a crash throws away;
// worse, an active-transaction table holding a never-finished transaction
// pins the checkpoint redo floor forever and stops log truncation dead.
var TxnAtomic = &Analyzer{
	Name: "txnatomic",
	Doc:  "every wal.Log.Begin must reach Commit or Abort on all paths",
	Run:  runTxnAtomic,
}

func runTxnAtomic(pass *Pass) {
	spec := &PairSpec{
		Acquires: func(pass *Pass, stmt ast.Stmt) []AcqOp {
			call, _ := stmtCall(stmt)
			if call == nil {
				return nil
			}
			fn := calleeFunc(pass, call)
			if !isMethodOf(fn, walPkgPath, "Log", "Begin") || len(call.Args) != 1 {
				return nil
			}
			recv := callRecv(call)
			if recv == nil {
				return nil
			}
			return []AcqOp{{
				Key:  ResKey{Text: exprText(recv) + "|" + exprText(call.Args[0])},
				Pos:  call.Pos(),
				Desc: fmt.Sprintf("%s.Begin(%s)", exprText(recv), exprText(call.Args[0])),
			}}
		},
		Releases: func(pass *Pass, n ast.Node) []RelOp {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return nil
			}
			fn := calleeFunc(pass, call)
			if fn == nil || len(call.Args) != 1 {
				return nil
			}
			if !isMethodOf(fn, walPkgPath, "Log", "Commit") &&
				!isMethodOf(fn, walPkgPath, "Log", "Abort") {
				return nil
			}
			recv := callRecv(call)
			if recv == nil {
				return nil
			}
			return []RelOp{{
				Key: ResKey{Text: exprText(recv) + "|" + exprText(call.Args[0])},
				Pos: call.Pos(),
			}}
		},
		Leakf: func(a AcqOp, kind EdgeKind, exit token.Position) string {
			return fmt.Sprintf("%s is not closed by Commit or Abort on the path %s at %s",
				a.Desc, exitPhrase(kind), shortPos(exit))
		},
	}
	runPaired(pass, spec)
}
