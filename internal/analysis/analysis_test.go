package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	got, err := ByName("floateq, rawdisk")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(got) != 2 || got[0].Name != "floateq" || got[1].Name != "rawdisk" {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

func TestAllAnalyzersAreNamedAndDocumented(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely defined", a)
		}
		if strings.ToLower(a.Name) != a.Name || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q is not lower-case and space-free", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 5 {
		t.Fatalf("suite has %d analyzers, want at least 5", len(seen))
	}
}

func TestLoaderResolvesModule(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "spatialjoin" {
		t.Fatalf("module path = %q, want spatialjoin", l.ModulePath)
	}
	pkg, err := l.LoadDir(".")
	if err != nil {
		t.Fatalf("LoadDir(.): %v", err)
	}
	if pkg.Path != "spatialjoin/internal/analysis" {
		t.Fatalf("package path = %q", pkg.Path)
	}
	if pkg.Types == nil || len(pkg.Files) == 0 {
		t.Fatal("package loaded without types or files")
	}
	// Test files must not be loaded: sjlint checks production code.
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader picked up test file %s", name)
		}
	}
}

func TestIgnoreDirectiveParsing(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/src/floateq")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	ig := collectIgnores(pkg)
	if len(ig.at) == 0 {
		t.Fatal("no ignore directives collected from fixture")
	}
	found := false
	for key, set := range ig.at {
		if set["floateq"] {
			found = true
			// The directive must suppress on its own line and the next.
			d := Diagnostic{Analyzer: "floateq", Pos: token.Position{Filename: key.file, Line: key.line}}
			if !ig.suppresses(d) {
				t.Errorf("directive at %s:%d does not suppress same-line diagnostic", key.file, key.line)
			}
			d.Pos.Line = key.line + 1
			if !ig.suppresses(d) {
				t.Errorf("directive at %s:%d does not suppress next-line diagnostic", key.file, key.line)
			}
			d.Analyzer = "rawdisk"
			if ig.suppresses(d) {
				t.Errorf("directive at %s:%d suppresses an analyzer it does not name", key.file, key.line)
			}
		}
	}
	if !found {
		t.Fatal("fixture's floateq ignore directive was not parsed")
	}
}
