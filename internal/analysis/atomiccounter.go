package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicCounter enforces atomic-only access to counter fields, the
// concurrency contract storage.BufferPool and storage.Disk document for
// their statistics: counters are read by concurrent snapshotters without
// taking the frame lock, so a single plain read or write anywhere is a
// data race even if every other access is atomic.
//
// Two field classes are covered:
//
//  1. Fields typed from sync/atomic (atomic.Int64 and friends) may only be
//     used as the receiver of a method call (Load, Store, Add, Swap, ...).
//     Copying, assigning, or aliasing the field is flagged.
//  2. Plain integer fields whose declaration carries an `sjlint:atomic`
//     marker comment may only appear as &x.f arguments to sync/atomic
//     package functions (atomic.AddInt64(&x.f, ...) etc.). Marked fields
//     declared in other packages are unexported and out of reach, so the
//     rule is enforced where the field is declared.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "flag plain (non-atomic) access to fields documented as atomic; mixed atomic/plain access is a data race",
	Run:  runAtomicCounter,
}

func runAtomicCounter(pass *Pass) {
	marked := markedAtomicFields(pass)

	// Sanctioned selector nodes: uses of atomic-class fields that occur in
	// an approved position. Everything else is a plain access.
	sanctioned := make(map[ast.Node]bool)
	inspectAll(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Receiver position of a method call on a sync/atomic type:
		// bp.misses.Add(1) sanctions the bp.misses selector.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && isAtomicTypedField(pass, recv) {
				sanctioned[recv] = true
			}
		}
		// &x.f argument to a sync/atomic function sanctions marked plain
		// fields: atomic.AddInt64(&d.reads, 1).
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == atomicPkgPath {
			for _, arg := range call.Args {
				if amp, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && amp.Op.String() == "&" {
					if sel, ok := ast.Unparen(amp.X).(*ast.SelectorExpr); ok {
						if obj := fieldObject(pass, sel); obj != nil && marked[obj] {
							sanctioned[sel] = true
						}
					}
				}
			}
		}
		return true
	})

	inspectAll(pass, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		if isAtomicTypedField(pass, sel) {
			pass.Reportf(sel.Pos(),
				"plain use of atomic field %s: access it only through its atomic methods (Load/Store/Add/...)",
				sel.Sel.Name)
			return true
		}
		if obj := fieldObject(pass, sel); obj != nil && marked[obj] {
			pass.Reportf(sel.Pos(),
				"plain access to field %s documented as atomic (sjlint:atomic): use sync/atomic functions on &%s",
				sel.Sel.Name, sel.Sel.Name)
		}
		return true
	})
}

// markedAtomicFields collects the field objects of this package whose
// struct declaration carries an sjlint:atomic marker in the field's doc or
// line comment.
func markedAtomicFields(pass *Pass) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	// Scan raw comment text: CommentGroup.Text() strips //word:-style
	// directive comments, which is exactly the marker's shape.
	note := func(cg *ast.CommentGroup) bool {
		if cg == nil {
			return false
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "sjlint:atomic") {
				return true
			}
		}
		return false
	}
	inspectAll(pass, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			if !note(field.Doc) && !note(field.Comment) {
				continue
			}
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					marked[obj] = true
				}
			}
		}
		return true
	})
	return marked
}

// fieldObject returns the struct-field object selected by sel, nil when
// sel is not a field selection.
func fieldObject(pass *Pass, sel *ast.SelectorExpr) types.Object {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj()
}

// isAtomicTypedField reports whether sel selects a struct field whose type
// is defined in sync/atomic.
func isAtomicTypedField(pass *Pass, sel *ast.SelectorExpr) bool {
	obj := fieldObject(pass, sel)
	if obj == nil {
		return false
	}
	named := namedOf(obj.Type())
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == atomicPkgPath
}
