package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes type-checked packages (including the stdlib and
// the storage/parallel/geom dependencies the fixtures import) across the
// whole test run.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantRe matches the trailing `// want "substring" ...` annotation of a
// fixture line; quoted substrings are extracted by quotedRe.
var (
	wantRe   = regexp.MustCompile(`// want (.+)$`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

// fixtureWants parses the expected-diagnostic annotations of every file in
// the fixture package: map from file base name and line to the expected
// message substrings on that line.
func fixtureWants(t *testing.T, pkg *Package) map[string]map[int][]string {
	t.Helper()
	wants := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		path := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture %s: %v", path, err)
		}
		base := filepath.Base(path)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			var subs []string
			for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
				subs = append(subs, q[1])
			}
			if len(subs) == 0 {
				t.Fatalf("%s:%d: want annotation without quoted substring", base, i+1)
			}
			if wants[base] == nil {
				wants[base] = make(map[int][]string)
			}
			wants[base][i+1] = subs
		}
	}
	return wants
}

// runGolden loads the fixture named after the analyzer, runs just that
// analyzer, and requires an exact correspondence between diagnostics and
// want annotations.
func runGolden(t *testing.T, a *Analyzer) {
	t.Helper()
	pkg := loadFixture(t, a.Name)
	wants := fixtureWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want annotations", a.Name)
	}
	diags := Run(pkg, []*Analyzer{a})
	if len(diags) == 0 {
		t.Fatalf("analyzer %s reported nothing on its fixture", a.Name)
	}
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		subs := wants[base][d.Pos.Line]
		matched := -1
		for i, sub := range subs {
			if strings.Contains(d.Message, sub) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic %s", d)
			continue
		}
		// Consume the matched expectation so duplicates are caught.
		wants[base][d.Pos.Line] = append(subs[:matched], subs[matched+1:]...)
	}
	for base, lines := range wants {
		for line, subs := range lines {
			for _, sub := range subs {
				t.Errorf("%s:%d: expected diagnostic containing %q was not reported", base, line, sub)
			}
		}
	}
}

func TestRawDiskGolden(t *testing.T)       { runGolden(t, RawDisk) }
func TestAtomicCounterGolden(t *testing.T) { runGolden(t, AtomicCounter) }
func TestFloatEqGolden(t *testing.T)       { runGolden(t, FloatEq) }
func TestErrDropGolden(t *testing.T)       { runGolden(t, ErrDrop) }
func TestCtxPoolGolden(t *testing.T)       { runGolden(t, CtxPool) }
func TestStatsResetGolden(t *testing.T)    { runGolden(t, StatsReset) }
func TestThetaPairGolden(t *testing.T)     { runGolden(t, ThetaPair) }
func TestJoinAllocGolden(t *testing.T)     { runGolden(t, JoinAlloc) }
func TestPinUnpinGolden(t *testing.T)      { runGolden(t, PinUnpin) }
func TestLockBalanceGolden(t *testing.T)   { runGolden(t, LockBalance) }
func TestSpanCloseGolden(t *testing.T)     { runGolden(t, SpanClose) }
func TestSemReleaseGolden(t *testing.T)    { runGolden(t, SemRelease) }
func TestTxnAtomicGolden(t *testing.T)     { runGolden(t, TxnAtomic) }
func TestStreamCloseGolden(t *testing.T)   { runGolden(t, StreamClose) }

// TestRepoIsClean is the self-hosting gate: the entire module must pass
// every analyzer with zero findings, so a regression anywhere in the tree
// fails `go test` as well as CI's explicit sjlint step.
func TestRepoIsClean(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, All()) {
			t.Errorf("%s", d)
		}
	}
}

// TestRepoIsCleanWithTests extends the self-hosting gate to test code: with
// IncludeTests set the loader augments every package with its _test.go
// files (and surfaces external _test packages), and the suite must still
// come back clean — every real finding in test code is fixed or carries a
// justified suppression.
func TestRepoIsCleanWithTests(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.IncludeTests = true
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module with tests: %v", err)
	}
	sawTestFile := false
	for _, pkg := range pkgs {
		res := RunAll(pkg, All())
		for _, d := range res.Diagnostics {
			t.Errorf("%s", d)
		}
		for _, pos := range res.BareDirectives {
			t.Errorf("%s:%d: ignore directive without a justification", pos.Filename, pos.Line)
		}
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				sawTestFile = true
			}
		}
	}
	if !sawTestFile {
		t.Fatal("IncludeTests loaded no test files; the gate is vacuous")
	}
}

// TestFixturesAreDirty guards the acceptance contract from the other side:
// running the full suite over the fixture tree must produce findings, so a
// silently broken loader or analyzer cannot fake a clean repo.
func TestFixturesAreDirty(t *testing.T) {
	total := 0
	for _, a := range All() {
		pkg := loadFixture(t, a.Name)
		total += len(Run(pkg, All()))
	}
	if total == 0 {
		t.Fatal("analyzer suite found nothing in the deliberately dirty fixtures")
	}
}
