package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PinUnpin enforces the buffer pool's pin discipline flow-sensitively:
// every successful BufferPool.Pin must reach a matching Unpin on every
// path out of the function — error returns, early breaks, and panics
// included. The WAL's no-steal rule and eviction both trust exact pin
// counts, so a leaked pin permanently wedges a frame in memory and can
// starve the pool into "all frames pinned" failures. A pin whose page
// handle is returned transfers ownership to the caller; a pin checked via
// `if err != nil` is only considered held on the success path.
var PinUnpin = &Analyzer{
	Name: "pinunpin",
	Doc:  "every successful BufferPool.Pin must reach Unpin on all paths",
	Run:  runPinUnpin,
}

func runPinUnpin(pass *Pass) {
	spec := &PairSpec{
		Reentrant: true, // pins count; nested pin/unpin of one page is legal
		Acquires: func(pass *Pass, stmt ast.Stmt) []AcqOp {
			call, lhs := stmtCall(stmt)
			if call == nil {
				return nil
			}
			fn := calleeFunc(pass, call)
			if !isMethodOf(fn, storagePkgPath, "BufferPool", "Pin") || len(call.Args) != 1 {
				return nil
			}
			recv := callRecv(call)
			if recv == nil {
				return nil
			}
			a := AcqOp{
				Key:  ResKey{Text: exprText(recv) + "|" + exprText(call.Args[0])},
				Pos:  call.Pos(),
				Desc: fmt.Sprintf("%s.Pin(%s)", exprText(recv), exprText(call.Args[0])),
			}
			if len(lhs) == 2 {
				a.ValueObj = identObj(pass, lhs[0])
				a.ErrObj = identObj(pass, lhs[1])
			}
			return []AcqOp{a}
		},
		Releases: func(pass *Pass, n ast.Node) []RelOp {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return nil
			}
			fn := calleeFunc(pass, call)
			if !isMethodOf(fn, storagePkgPath, "BufferPool", "Unpin") || len(call.Args) != 1 {
				return nil
			}
			recv := callRecv(call)
			if recv == nil {
				return nil
			}
			return []RelOp{{
				Key: ResKey{Text: exprText(recv) + "|" + exprText(call.Args[0])},
				Pos: call.Pos(),
			}}
		},
		ValueEscapes: func(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
			if enclosedByFreeLit(stack) {
				return true
			}
			if len(stack) == 0 {
				return true
			}
			switch p := stack[len(stack)-1].(type) {
			case *ast.SelectorExpr, *ast.BinaryExpr, *ast.ParenExpr, *ast.StarExpr:
				// Method calls, field reads, and comparisons on the page
				// handle do not move ownership.
				return false
			case *ast.AssignStmt:
				// `_ = p` keeps ownership; a real assignment aliases it away.
				for _, l := range p.Lhs {
					if !isBlank(l) {
						return true
					}
				}
				return false
			case *ast.ReturnStmt:
				// Handled path-sensitively: returning the handle transfers
				// the pin to the caller on that exit only.
				return false
			}
			return true
		},
		Leakf: func(a AcqOp, kind EdgeKind, exit token.Position) string {
			return fmt.Sprintf("%s is not matched by Unpin on the path %s at %s",
				a.Desc, exitPhrase(kind), shortPos(exit))
		},
	}
	runPaired(pass, spec)
}

// stmtCall extracts the single call of an expression or assignment
// statement, with the assignment's left-hand sides when present.
func stmtCall(stmt ast.Stmt) (*ast.CallExpr, []ast.Expr) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ := ast.Unparen(s.X).(*ast.CallExpr)
		return call, nil
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return nil, nil
		}
		call, _ := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		return call, s.Lhs
	}
	return nil, nil
}

// identObj resolves an assignment target identifier to its object; blank
// and non-identifier targets yield nil.
func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// callRecv returns the receiver expression of a selector call.
func callRecv(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// isMethodOf reports whether fn is the named method on the named type
// (through any pointers) of the given package.
func isMethodOf(fn *types.Func, pkgPath, typeName, method string) bool {
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == typeName
}

// exprText renders an expression to its canonical source-ish text, the
// textual identity the paired analyzers key resources by.
func exprText(e ast.Expr) string {
	return types.ExprString(e)
}
