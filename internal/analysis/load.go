package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only the
// standard library: module-internal imports are resolved recursively from
// source, standard-library imports through go/importer's source importer.
// By default test files (*_test.go) are not loaded — sjlint checks
// production code; setting IncludeTests extends Load and LoadDir to test
// code as well.
//
// A Loader memoizes every package it loads, so shared dependencies are
// type-checked once. It is not safe for concurrent use.
type Loader struct {
	ModuleRoot string // absolute path of the directory containing go.mod
	ModulePath string // module path declared in go.mod

	// IncludeTests makes Load and LoadDir type-check each package's
	// in-package _test.go files alongside its sources, and Load surface a
	// directory's external test package (package foo_test) as an extra
	// Package whose Path carries the `_test` suffix. Dependency resolution
	// through Import always loads production sources only, so an analyzed
	// package never sees another package's test code.
	IncludeTests bool

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
	// tested memoizes each directory's test-inclusive view: the augmented
	// package plus, when present, the external _test package.
	tested map[string][]*Package
}

// NewLoader locates the enclosing module of dir (walking up to the go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("sjlint: no go.mod found in or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		tested:     make(map[string][]*Package),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("sjlint: no module declaration in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves each pattern — a directory, an import path inside the
// module, or either followed by /... — and returns the matched packages in
// deterministic (import-path) order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSeen := make(map[string]bool)
	var dirs []string
	addDir := func(dir string) {
		if !dirSeen[dir] {
			dirSeen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		dir, err := l.patternDir(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			addDir(dir)
			continue
		}
		walked, err := goDirs(dir)
		if err != nil {
			return nil, err
		}
		for _, d := range walked {
			addDir(d)
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		if l.IncludeTests {
			tested, err := l.loadTestedDir(dir)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, tested...)
			continue
		}
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// patternDir maps one non-recursive pattern to an absolute directory.
func (l *Loader) patternDir(pat string) (string, error) {
	switch {
	case pat == "" || pat == ".":
		return l.ModuleRoot, nil
	case pat == l.ModulePath:
		return l.ModuleRoot, nil
	case strings.HasPrefix(pat, l.ModulePath+"/"):
		return filepath.Join(l.ModuleRoot, strings.TrimPrefix(pat, l.ModulePath+"/")), nil
	case filepath.IsAbs(pat):
		return filepath.Clean(pat), nil
	default:
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./"))), nil
	}
}

// goDirs returns root and every subdirectory containing at least one
// non-test .go file, skipping testdata, vendor, hidden, and underscore
// directories.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// sourceFiles lists the non-test .go files of dir in sorted order.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// LoadDir parses and type-checks the package in the given directory. With
// IncludeTests set, the returned package also carries the directory's
// in-package test files (external _test packages surface through Load).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, abs, err := l.dirPath(dir)
	if err != nil {
		return nil, err
	}
	if l.IncludeTests {
		tested, err := l.loadTested(path, abs)
		if err != nil {
			return nil, err
		}
		return tested[0], nil
	}
	return l.loadPath(path, abs)
}

// dirPath resolves a directory to its absolute form and module import path.
func (l *Loader) dirPath(dir string) (path, abs string, err error) {
	abs, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", "", fmt.Errorf("sjlint: %s is outside module %s", dir, l.ModuleRoot)
	}
	path = l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return path, abs, nil
}

// loadTestedDir is loadTested keyed by directory.
func (l *Loader) loadTestedDir(dir string) ([]*Package, error) {
	path, abs, err := l.dirPath(dir)
	if err != nil {
		return nil, err
	}
	return l.loadTested(path, abs)
}

// loadTested returns the directory's test-inclusive package list: the
// production package augmented with its in-package _test.go files, plus the
// external `package foo_test` package (Path suffixed `_test`) when one
// exists. The production package itself is loaded — and memoized — first,
// so imports of this path from elsewhere keep resolving to clean production
// sources.
func (l *Loader) loadTested(path, dir string) ([]*Package, error) {
	if pkgs, ok := l.tested[path]; ok {
		return pkgs, nil
	}
	prod, err := l.loadPath(path, dir)
	if err != nil {
		return nil, err
	}
	testFiles, err := testGoFiles(dir)
	if err != nil {
		return nil, err
	}
	var inPkg, external []*ast.File
	for _, f := range testFiles {
		file, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(file.Name.Name, "_test") {
			external = append(external, file)
		} else {
			inPkg = append(inPkg, file)
		}
	}
	pkgs := []*Package{prod}
	if len(inPkg) > 0 {
		// Re-check production and in-package test files together: the test
		// files see unexported identifiers, and analyzers see both. The
		// production ASTs are shared; type information is rebuilt into a
		// fresh Info so the clean package's view is untouched.
		aug, err := l.check(path, dir, append(append([]*ast.File{}, prod.Files...), inPkg...))
		if err != nil {
			return nil, err
		}
		pkgs[0] = aug
	}
	if len(external) > 0 {
		ext, err := l.check(path+"_test", dir, external)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ext)
	}
	l.tested[path] = pkgs
	return pkgs, nil
}

// testGoFiles lists the _test.go files of dir in sorted order.
func testGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// loadPath loads the package with the given import path from dir,
// memoizing the result.
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("sjlint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("sjlint: no Go source files in %s", dir)
	}
	var parsed []*ast.File
	for _, f := range files {
		file, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, file)
	}
	pkg, err := l.check(path, dir, parsed)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check type-checks a parsed file set as the package at the given import
// path and wraps the result.
func (l *Loader) check(path, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, parsed, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("sjlint: type errors in %s:\n\t%s", path, joinErrs(typeErrs))
	}
	if err != nil {
		return nil, fmt.Errorf("sjlint: checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}, nil
}

// joinErrs renders a short, newline-separated error list.
func joinErrs(errs []error) string {
	var b strings.Builder
	for i, e := range errs {
		if i > 0 {
			b.WriteString("\n\t")
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Import implements types.Importer: module-internal paths load from source
// through the loader itself, everything else defers to the standard
// library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
