package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// StatsReset enforces counter-reset discipline in experiment code (package
// main): a snapshot of the I/O statistics — PoolStats, DiskStats, or the
// database-level aggregates — is only meaningful after the measurement
// window was opened with a Flush/DropAll/DropCache or a counter reset.
// A snapshot with no preceding reset in the same function silently folds
// warm-up I/O, index builds, and unflushed write-backs into the reported
// figures, corrupting every experiment built on them.
var StatsReset = &Analyzer{
	Name: "statsreset",
	Doc:  "in package main, flag I/O statistics snapshots with no preceding Flush/DropAll/DropCache/Reset call in the same function",
	Run:  runStatsReset,
}

// statsSnapshotMethods read the counters; statsResetMethods open a
// measurement window (flushing pending write-backs or zeroing counters).
var (
	statsSnapshotMethods = map[string]bool{
		"Stats": true, "IOStats": true, "DiskStats": true,
	}
	statsResetMethods = map[string]bool{
		"Flush": true, "DropAll": true, "ResetStats": true,
		"DropCache": true, "ResetIOStats": true,
	}
)

func runStatsReset(pass *Pass) {
	if pass.Pkg.Name() != "main" {
		return // the discipline binds experiment binaries, not the library
	}
	// measured reports whether fn is a method of one of the instrumented
	// layers: the storage substrate, the fault device, or the database API.
	measured := func(fn *types.Func) bool {
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case storagePkgPath, faultPkgPath, rootPkgPath:
		default:
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() != nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkStatsResetFunc(pass, fd, measured)
			}
		}
	}
}

// checkStatsResetFunc flags every snapshot call in fd's body that no reset
// call precedes (by source position, including calls inside function
// literals — a reset in a helper closure defined earlier still opens the
// window for code that runs it).
func checkStatsResetFunc(pass *Pass, fd *ast.FuncDecl, measured func(*types.Func) bool) {
	type site struct {
		pos      token.Pos
		name     string
		snapshot bool
	}
	var sites []site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if !measured(fn) {
			return true
		}
		switch {
		case statsSnapshotMethods[fn.Name()]:
			sites = append(sites, site{call.Pos(), fn.Name(), true})
		case statsResetMethods[fn.Name()]:
			sites = append(sites, site{call.Pos(), fn.Name(), false})
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	windowOpen := false
	for _, s := range sites {
		if !s.snapshot {
			windowOpen = true
			continue
		}
		if !windowOpen {
			pass.Reportf(s.pos,
				"%s() snapshot without a preceding Flush/DropAll/DropCache/Reset call in this function; the counters include I/O from before the measured work",
				s.name)
		}
	}
}
