package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// This file is the reusable paired-resource dataflow solver built on the
// CFG of cfg.go: "an acquire on an entry edge implies a release on every
// exit edge". Analyzers describe one discipline with a PairSpec — how to
// recognize acquires (optionally guarded by an error result, so the
// resource is only held on the success path) and releases — and the solver
// runs a forward fixpoint over each function's CFG:
//
//   - state is the set of held resources plus the set of registered defer
//     statements; defers are interpreted as exit-edge actions, running on
//     both return and panic edges;
//   - branch conditions refine error-guarded acquires: on the edge where
//     `err != nil` holds the acquisition failed and the resource is
//     dropped, on the opposite edge it is definitely held;
//   - at merge points held-sets join (held on either path counts as held),
//     so a resource released on only one arm is still reported at exit;
//   - a resource whose handle escapes the function (returned, stored, or
//     captured by a closure the solver cannot see run) stops being
//     tracked: ownership moved somewhere an intra-procedural analysis
//     cannot follow.
//
// After the fixpoint converges a single deterministic reporting pass
// replays every reachable block and emits the first unbalanced path per
// acquire site: the acquire position plus the return/panic that leaks it.

// ResKey identifies one resource within a function: a canonical expression
// text (mutex receivers, semaphore channels, pool/page pairs) or a
// handle's types.Object (span IDs), whichever the spec binds.
type ResKey struct {
	Text string
	Obj  types.Object
}

// AcqOp is one acquisition a spec recognized in a statement.
type AcqOp struct {
	Key  ResKey
	Pos  token.Pos
	Desc string // human phrasing for diagnostics, e.g. `BufferPool.Pin(id)`
	// ErrObj, when non-nil, is the error variable guarding the acquire:
	// the resource is held only where this error is nil.
	ErrObj types.Object
	// ValueObj, when non-nil, is the local the acquired handle is bound
	// to; returning it transfers ownership, and other escapes stop
	// tracking (see PairSpec.ValueEscapes).
	ValueObj types.Object
}

// RelOp is one release a spec recognized at a node.
type RelOp struct {
	Key ResKey
	Pos token.Pos
}

// PairSpec describes one acquire/release discipline for the solver.
type PairSpec struct {
	// Acquires returns the acquisitions performed directly by stmt (not
	// inside nested function literals).
	Acquires func(pass *Pass, stmt ast.Stmt) []AcqOp
	// Releases returns the releases performed by a single expression-level
	// node. The solver applies it to every node of straight-line
	// statements, to deferred calls when an exit edge is taken, and — with
	// GoReleases — to the bodies of spawned goroutines.
	Releases func(pass *Pass, n ast.Node) []RelOp
	// ValueEscapes, for acquires carrying a ValueObj, reports whether the
	// given use of the handle moves ownership beyond this function's view.
	// A nil callback disables escape analysis.
	ValueEscapes func(pass *Pass, id *ast.Ident, stack []ast.Node) bool

	// Reentrant counts nested acquires of one key (pin counts) instead of
	// flagging them.
	Reentrant bool
	// ReportDoubleAcquire flags an acquire of an already-held key
	// (double-lock self-deadlock) on non-reentrant specs.
	ReportDoubleAcquire bool
	// ReportUnmatchedRelease flags a release of a key held on no path.
	ReportUnmatchedRelease bool
	// GoReleases treats a `go func(){...}()` whose body releases a held
	// key as transferring the resource to the goroutine. With
	// GoReleaseMustDefer, a transfer whose release is not under a defer is
	// additionally reported: a panic in the goroutine leaks the resource.
	GoReleases         bool
	GoReleaseMustDefer bool

	// Leakf formats the exit report; exit is the resolved position of the
	// leaking return/panic edge.
	Leakf func(a AcqOp, kind EdgeKind, exit token.Position) string
	// Doublef formats the double-acquire report (optional).
	Doublef func(a AcqOp) string
	// Unmatchedf formats the unmatched-release report (optional).
	Unmatchedf func(r RelOp) string
	// GoNoDeferf formats the non-deferred-goroutine-release report
	// (optional).
	GoNoDeferf func(r RelOp) string
}

// heldCountCap bounds the per-key count so the state lattice stays finite
// (an acquire loop converges instead of counting forever).
const heldCountCap = 8

// heldInfo is the tracked state of one held resource.
type heldInfo struct {
	acq    AcqOp
	count  int
	errObj types.Object // non-nil while success is still unknown
}

// pairState is the dataflow fact: held resources and registered defers.
type pairState struct {
	held   map[ResKey]heldInfo
	defers map[ast.Stmt]bool
}

func newPairState() *pairState {
	return &pairState{held: map[ResKey]heldInfo{}, defers: map[ast.Stmt]bool{}}
}

func (s *pairState) clone() *pairState {
	c := newPairState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for d := range s.defers {
		c.defers[d] = true
	}
	return c
}

func (s *pairState) equal(o *pairState) bool {
	if len(s.held) != len(o.held) || len(s.defers) != len(o.defers) {
		return false
	}
	for k, v := range s.held {
		w, ok := o.held[k]
		if !ok || v != w {
			return false
		}
	}
	for d := range s.defers {
		if !o.defers[d] {
			return false
		}
	}
	return true
}

// join merges o into s (in place): held on either path counts as held, the
// earliest acquire position wins, and conditionality survives only when
// both sides agree on the guard.
func (s *pairState) join(o *pairState) {
	for k, w := range o.held {
		v, ok := s.held[k]
		if !ok {
			s.held[k] = w
			continue
		}
		if w.count > v.count {
			v.count = w.count
		}
		if w.acq.Pos < v.acq.Pos {
			v.acq = w.acq
		}
		if v.errObj != w.errObj {
			v.errObj = nil
		}
		s.held[k] = v
	}
	for d := range o.defers {
		s.defers[d] = true
	}
}

// solver runs one PairSpec over one function body.
type solver struct {
	pass      *Pass
	spec      *PairSpec
	cfg       *CFG
	untracked map[token.Pos]bool // acquire sites disabled by escape analysis
	reported  map[token.Pos]bool // dedupe: one report per site
}

// runPaired applies the spec to every function body of the package.
func runPaired(pass *Pass, spec *PairSpec) {
	for _, file := range pass.Files {
		for _, fb := range funcBodies(file) {
			(&solver{pass: pass, spec: spec}).solve(fb)
		}
	}
}

func (sv *solver) solve(fb funcBody) {
	sv.cfg = BuildCFG(fb.body)
	sv.untracked = map[token.Pos]bool{}
	sv.reported = map[token.Pos]bool{}
	sv.scanEscapes(fb.body)

	// Forward fixpoint over the reachable blocks.
	in := map[*Block]*pairState{sv.cfg.Blocks[0]: newPairState()}
	work := []*Block{sv.cfg.Blocks[0]}
	steps, maxSteps := 0, 64*len(sv.cfg.Blocks)+256
	for len(work) > 0 {
		if steps++; steps > maxSteps {
			return // pathological shape: stay silent rather than wrong
		}
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := sv.transfer(b, in[b].clone(), false)
		for _, e := range b.Succs {
			if e.To == sv.cfg.Exit {
				continue
			}
			next := sv.applyEdge(out.clone(), e)
			if prev, ok := in[e.To]; !ok {
				in[e.To] = next
				work = append(work, e.To)
			} else {
				merged := prev.clone()
				merged.join(next)
				if !merged.equal(prev) {
					in[e.To] = merged
					work = append(work, e.To)
				}
			}
		}
	}

	// Deterministic reporting pass over the converged states, block order.
	blocks := make([]*Block, 0, len(in))
	for b := range in {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	for _, b := range blocks {
		out := sv.transfer(b, in[b].clone(), true)
		for _, e := range b.Succs {
			if e.To != sv.cfg.Exit {
				continue
			}
			sv.checkExit(out.clone(), e)
		}
	}
}

// scanEscapes disables tracking of acquire sites whose handle object the
// spec judges to escape. The defining identifier itself is not a use.
func (sv *solver) scanEscapes(body *ast.BlockStmt) {
	if sv.spec.ValueEscapes == nil {
		return
	}
	// Handle object → acquire positions bound to it.
	objSites := map[types.Object][]token.Pos{}
	for _, b := range sv.cfg.Blocks {
		for _, st := range b.Stmts {
			for _, a := range sv.spec.Acquires(sv.pass, st) {
				if a.ValueObj != nil {
					objSites[a.ValueObj] = append(objSites[a.ValueObj], a.Pos)
				}
			}
		}
	}
	if len(objSites) == 0 {
		return
	}
	walkWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := sv.pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		sites, tracked := objSites[obj]
		if !tracked {
			return true
		}
		if sv.spec.ValueEscapes(sv.pass, id, stack) {
			for _, pos := range sites {
				sv.untracked[pos] = true
			}
		}
		return true
	})
}

// transfer interprets one block's statements over state. With report set
// (the post-fixpoint pass) it emits double-acquire, unmatched-release, and
// goroutine-release diagnostics.
func (sv *solver) transfer(b *Block, st *pairState, report bool) *pairState {
	for _, stmt := range b.Stmts {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			st.defers[s] = true
			continue
		case *ast.GoStmt:
			if sv.spec.GoReleases {
				sv.goStmt(s, st, report)
				continue
			}
		case *ast.ReturnStmt:
			// Returning the handle transfers ownership to the caller.
			for _, res := range s.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := sv.pass.Info.Uses[id]; obj != nil {
						for k, v := range st.held {
							if v.acq.ValueObj == obj {
								delete(st.held, k)
							}
						}
					}
				}
			}
		case *ast.AssignStmt:
			// Overwriting a guard error decouples it from its acquire:
			// treat the resource as unconditionally held from here on.
			sv.promoteReassignedGuards(s, st)
		}

		// Releases anywhere in the statement's expressions.
		scanStmtNodes(stmt, func(n ast.Node) {
			for _, r := range sv.spec.Releases(sv.pass, n) {
				sv.release(r, st, report)
			}
		})
		// Acquires recognized at statement level.
		for _, a := range sv.spec.Acquires(sv.pass, stmt) {
			if sv.untracked[a.Pos] {
				continue
			}
			sv.acquire(a, st, report)
		}
	}
	return st
}

// acquire folds one acquisition into the state.
func (sv *solver) acquire(a AcqOp, st *pairState, report bool) {
	v, ok := st.held[a.Key]
	if !ok {
		st.held[a.Key] = heldInfo{acq: a, count: 1, errObj: a.ErrObj}
		return
	}
	if !sv.spec.Reentrant {
		if report && sv.spec.ReportDoubleAcquire && sv.spec.Doublef != nil && !sv.reported[a.Pos] {
			sv.reported[a.Pos] = true
			sv.pass.Reportf(a.Pos, "%s", sv.spec.Doublef(a))
		}
		return
	}
	if a.ErrObj != nil {
		// A second, error-guarded acquire of an already-held key cannot be
		// tracked precisely (the state carries one guard per key): leave
		// the count alone rather than risk counting a failed acquire.
		return
	}
	if v.count < heldCountCap {
		v.count++
	}
	st.held[a.Key] = v
}

// release folds one release into the state.
func (sv *solver) release(r RelOp, st *pairState, report bool) {
	v, ok := st.held[r.Key]
	if !ok {
		if report && sv.spec.ReportUnmatchedRelease && sv.spec.Unmatchedf != nil && !sv.reported[r.Pos] {
			sv.reported[r.Pos] = true
			sv.pass.Reportf(r.Pos, "%s", sv.spec.Unmatchedf(r))
		}
		return
	}
	if v.count--; v.count <= 0 {
		delete(st.held, r.Key)
	} else {
		st.held[r.Key] = v
	}
}

// goStmt hands held resources to a spawned goroutine that releases them.
// The release must sit under a defer to survive a panic in the goroutine.
func (sv *solver) goStmt(g *ast.GoStmt, st *pairState, report bool) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	walkWithStack(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		for _, r := range sv.spec.Releases(sv.pass, n) {
			if _, held := st.held[r.Key]; !held {
				continue
			}
			deferred := false
			for _, anc := range stack {
				if _, ok := anc.(*ast.DeferStmt); ok {
					deferred = true
					break
				}
			}
			if !deferred && sv.spec.GoReleaseMustDefer && sv.spec.GoNoDeferf != nil &&
				report && !sv.reported[r.Pos] {
				sv.reported[r.Pos] = true
				sv.pass.Reportf(r.Pos, "%s", sv.spec.GoNoDeferf(r))
			}
			sv.release(r, st, false)
		}
		return true
	})
}

// promoteReassignedGuards clears the error guard of held resources whose
// guard variable this statement overwrites with something else.
func (sv *solver) promoteReassignedGuards(s *ast.AssignStmt, st *pairState) {
	// The acquiring statement itself installs the guard after this hook
	// runs, so only later reassignments are seen here.
	for _, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := sv.pass.Info.Uses[id]
		if obj == nil {
			obj = sv.pass.Info.Defs[id]
		}
		if obj == nil {
			continue
		}
		for k, v := range st.held {
			if v.errObj == obj {
				v.errObj = nil
				st.held[k] = v
			}
		}
	}
}

// applyEdge refines error-guarded resources along a conditional edge.
func (sv *solver) applyEdge(st *pairState, e *Edge) *pairState {
	if e.Cond == nil {
		return st
	}
	for k, v := range st.held {
		if v.errObj == nil {
			continue
		}
		switch errVerdict(sv.pass, e.Cond, e.Negate, v.errObj) {
		case errFailed:
			delete(st.held, k)
		case errSucceeded:
			v.errObj = nil
			st.held[k] = v
		}
	}
	return st
}

// checkExit applies the registered defers and reports what stays held.
func (sv *solver) checkExit(st *pairState, e *Edge) {
	// Deferred actions run on both return and panic edges. A deferred
	// release retires its key entirely (set semantics: a defer registered
	// in a loop still runs for each registration).
	defers := make([]ast.Stmt, 0, len(st.defers))
	for d := range st.defers {
		defers = append(defers, d)
	}
	sort.Slice(defers, func(i, j int) bool { return defers[i].Pos() < defers[j].Pos() })
	for _, d := range defers {
		ds := d.(*ast.DeferStmt)
		walkInvoked(ds.Call, func(n ast.Node) {
			for _, r := range sv.spec.Releases(sv.pass, n) {
				delete(st.held, r.Key)
			}
		})
	}
	if len(st.held) == 0 {
		return
	}
	keys := make([]ResKey, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return st.held[keys[i]].acq.Pos < st.held[keys[j]].acq.Pos })
	exit := sv.pass.Fset.Position(e.Pos)
	exit.Filename = filepath.Base(exit.Filename)
	for _, k := range keys {
		v := st.held[k]
		if sv.reported[v.acq.Pos] {
			continue
		}
		sv.reported[v.acq.Pos] = true
		sv.pass.Reportf(v.acq.Pos, "%s", sv.spec.Leakf(v.acq, e.Kind, exit))
	}
}

// --- condition interpretation -------------------------------------------

type errOutcome uint8

const (
	errUnknown errOutcome = iota
	errFailed             // the guard error is definitely non-nil here
	errSucceeded
)

// errVerdict interprets cond (taken when it evaluates to !negate) for the
// guard variable errObj: definitely failed, definitely succeeded, or
// unknown. Handles err ==/!= nil directly and through &&/|| conjuncts
// whose truth the edge pins down.
func errVerdict(pass *Pass, cond ast.Expr, negate bool, errObj types.Object) errOutcome {
	cond = ast.Unparen(cond)
	if bin, ok := cond.(*ast.BinaryExpr); ok {
		switch bin.Op {
		case token.NEQ, token.EQL:
			id, hasNil := nilComparison(pass, bin)
			if id == nil || pass.Info.Uses[id] != errObj || !hasNil {
				return errUnknown
			}
			// truth of `err != nil` on this edge:
			nonNil := (bin.Op == token.NEQ) != negate
			if nonNil {
				return errFailed
			}
			return errSucceeded
		case token.LAND:
			if !negate { // whole conjunction true → each conjunct true
				if v := errVerdict(pass, bin.X, false, errObj); v != errUnknown {
					return v
				}
				return errVerdict(pass, bin.Y, false, errObj)
			}
		case token.LOR:
			if negate { // whole disjunction false → each disjunct false
				if v := errVerdict(pass, bin.X, true, errObj); v != errUnknown {
					return v
				}
				return errVerdict(pass, bin.Y, true, errObj)
			}
		}
	}
	return errUnknown
}

// nilComparison extracts the identifier compared against nil, if any.
func nilComparison(pass *Pass, bin *ast.BinaryExpr) (*ast.Ident, bool) {
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(y) {
		id, _ := x.(*ast.Ident)
		return id, true
	}
	if isNilIdent(x) {
		id, _ := y.(*ast.Ident)
		return id, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// --- AST walking helpers -------------------------------------------------

// scanStmtNodes visits the expression-level nodes of one block statement,
// skipping function-literal bodies (they are separate functions) and, for
// the range statement anchoring a loop head, visiting only its
// key/value/operand expressions.
func scanStmtNodes(s ast.Stmt, f func(ast.Node)) {
	switch s := s.(type) {
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value, s.X} {
			if e != nil {
				walkShallow(e, f)
			}
		}
	case *ast.DeferStmt, *ast.GoStmt:
		// Interpreted by the solver itself.
	default:
		walkShallow(s, f)
	}
}

// walkShallow visits n and its children without entering function-literal
// bodies.
func walkShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		f(n)
		return true
	})
}

// walkInvoked visits n and its children, entering a function literal's
// body only where the literal demonstrably runs: called directly,
// deferred, or spawned. Used to interpret deferred calls, whose nested
// defers also run when the outer deferred function does.
func walkInvoked(n ast.Node, f func(ast.Node)) {
	var walk func(ast.Node)
	invoked := map[*ast.FuncLit]bool{}
	markInvoked := func(fun ast.Expr) {
		if lit, ok := ast.Unparen(fun).(*ast.FuncLit); ok {
			invoked[lit] = true
		}
	}
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return true
			}
			switch m := m.(type) {
			case *ast.CallExpr:
				markInvoked(m.Fun)
			case *ast.DeferStmt:
				markInvoked(m.Call.Fun)
			case *ast.GoStmt:
				markInvoked(m.Call.Fun)
			case *ast.FuncLit:
				if !invoked[m] {
					return false
				}
			}
			f(m)
			return true
		})
	}
	walk(n)
}

// walkWithStack walks root maintaining the ancestor stack (root first,
// parent of n last). Returning false prunes the subtree.
func walkWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// enclosedByFreeLit reports whether the node whose ancestor stack is given
// sits inside a function literal that is not directly deferred, spawned,
// or immediately called — a closure the solver cannot see run.
func enclosedByFreeLit(stack []ast.Node) bool {
	for i, n := range stack {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			continue
		}
		run := false
		if i > 0 {
			switch p := stack[i-1].(type) {
			case *ast.CallExpr:
				run = ast.Unparen(p.Fun) == lit
			case *ast.DeferStmt:
				run = ast.Unparen(p.Call.Fun) == lit
			case *ast.GoStmt:
				run = ast.Unparen(p.Call.Fun) == lit
			}
		}
		if !run {
			return true
		}
	}
	return false
}

// exitPhrase renders an edge kind for diagnostics.
func exitPhrase(kind EdgeKind) string {
	if kind == EdgePanic {
		return "panicking"
	}
	return "returning"
}

// shortPos renders a resolved position as base-filename:line.
func shortPos(p token.Position) string {
	return filepath.Base(p.Filename) + ":" + itoa(p.Line)
}

// itoa avoids importing strconv for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
