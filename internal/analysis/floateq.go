package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// approvedFloatEqHelpers are the geom functions allowed to use raw float
// equality: they are the single audited place where comparison semantics
// (tolerance or documented-exact) live. Everything else must call them.
var approvedFloatEqHelpers = map[string]bool{
	"ApproxEqual": true,
	"ApproxZero":  true,
	"SameCoord":   true,
	"SamePoint":   true,
	"SameRect":    true,
}

// FloatEq flags == and != between floating-point values (including structs
// built from them, such as geom.Point) outside the approved epsilon
// helpers in internal/geom. Geometry coordinates are float64; raw equality
// on derived quantities silently depends on rounding, so every comparison
// must go through a helper that makes the intended semantics — tolerant or
// deliberately exact — explicit.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on float64 geometry values outside geom's approved comparison helpers",
	Run:  runFloatEq,
	// Tests assert exact golden values all the time — tolerant comparison
	// there would weaken them, not strengthen them.
	SkipTests: true,
}

func runFloatEq(pass *Pass) {
	// Inside geom itself, the bodies of the approved helpers may compare
	// raw floats.
	var exempt []ast.Node
	if pass.Pkg.Path() == geomPkgPath {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && approvedFloatEqHelpers[fd.Name.Name] {
					exempt = append(exempt, fd)
				}
			}
		}
	}
	inExempt := func(pos token.Pos) bool {
		for _, n := range exempt {
			if n.Pos() <= pos && pos <= n.End() {
				return true
			}
		}
		return false
	}

	inspectAll(pass, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		tx, ty := pass.TypeOf(bin.X), pass.TypeOf(bin.Y)
		if tx == nil || ty == nil || (!containsFloat(tx) && !containsFloat(ty)) {
			return true
		}
		// Comparisons fully decided at compile time carry no rounding
		// hazard.
		if isConst(pass, bin.X) && isConst(pass, bin.Y) {
			return true
		}
		if inExempt(bin.Pos()) {
			return true
		}
		pass.Reportf(bin.Pos(),
			"raw float equality (%s): use geom.ApproxEqual/ApproxZero for tolerant or geom.SameCoord/SamePoint/SameRect for deliberate exact comparison",
			bin.Op)
		return true
	})
}

// isConst reports whether e has a compile-time constant value.
func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// containsFloat reports whether a value of type t holds floating-point
// state that == would compare: floats and complexes themselves, and
// structs/arrays containing them.
func containsFloat(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsFloat(u.Elem())
	}
	return false
}
