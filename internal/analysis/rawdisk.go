package analysis

import (
	"go/ast"
	"go/types"
)

// RawDisk forbids direct physical I/O outside the storage layer. Every page
// transfer must be mediated by storage.BufferPool so the cost model's
// page-access counters (the paper's C_IO charge per physical access) see
// it; a single call path that calls Disk.ReadPage or Disk.WritePage
// directly silently corrupts every reported I/O figure.
var RawDisk = &Analyzer{
	Name: "rawdisk",
	Doc:  "forbid Disk.ReadPage/WritePage calls outside internal/storage so all I/O is counted by the buffer pool",
	Run:  runRawDisk,
}

func runRawDisk(pass *Pass) {
	if pass.Pkg.Path() == storagePkgPath {
		return // the storage layer itself implements the mediation
	}
	inspectAll(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != storagePkgPath {
			return true
		}
		if fn.Name() != "ReadPage" && fn.Name() != "WritePage" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		recv := sig.Recv()
		if recv == nil {
			return true
		}
		named := namedOf(recv.Type())
		if named == nil || named.Obj().Name() != "Disk" {
			return true
		}
		pass.Reportf(call.Pos(),
			"raw storage.Disk.%s bypasses BufferPool I/O accounting; fetch pages through a storage.BufferPool instead",
			fn.Name())
		return true
	})
}
