package analysis

import (
	"go/ast"
	"go/types"
)

// RawDisk forbids direct physical I/O outside the storage layer. Every page
// transfer must be mediated by storage.BufferPool so the cost model's
// page-access counters (the paper's C_IO charge per physical access) see
// it; a single call path that calls ReadPage or WritePage directly —
// whether on the concrete Disk, through the Device interface, or on the
// fault-injecting wrapper — silently corrupts every reported I/O figure
// and skips the pool's checksum verification and retry policy.
var RawDisk = &Analyzer{
	Name: "rawdisk",
	Doc:  "forbid ReadPage/WritePage calls on Disk, Device, or fault.Disk outside the storage/fault layers so all I/O is counted by the buffer pool",
	Run:  runRawDisk,
}

// rawDiskReceivers names the types whose ReadPage/WritePage methods are the
// raw physical surface, per defining package.
var rawDiskReceivers = map[string]map[string]bool{
	storagePkgPath: {"Disk": true, "Device": true},
	faultPkgPath:   {"Disk": true},
}

func runRawDisk(pass *Pass) {
	switch pass.Pkg.Path() {
	case storagePkgPath, faultPkgPath:
		return // the storage layer mediates; the fault layer wraps the device
	case walPkgPath:
		// The write-ahead log owns its device region: its appends bypass the
		// pool by design (log pages are written once and never cached), and
		// recovery replays images onto the raw device before any pool exists.
		// Its transfers still land in DiskStats via the device itself.
		return
	}
	inspectAll(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		receivers, ok := rawDiskReceivers[fn.Pkg().Path()]
		if !ok {
			return true
		}
		if fn.Name() != "ReadPage" && fn.Name() != "WritePage" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		recv := sig.Recv()
		if recv == nil {
			return true
		}
		named := namedOf(recv.Type())
		if named == nil || !receivers[named.Obj().Name()] {
			return true
		}
		pass.Reportf(call.Pos(),
			"raw %s.%s.%s bypasses BufferPool I/O accounting; fetch pages through a storage.BufferPool instead",
			fn.Pkg().Name(), named.Obj().Name(), fn.Name())
		return true
	})
}
