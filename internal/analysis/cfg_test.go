package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses src (the body of `package p`) and lowers the function
// named f. The builder is purely syntactic, so the snippets never need to
// type-check.
func buildTestCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parsing snippet: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" && fd.Body != nil {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("snippet declares no function f")
	return nil
}

// TestBuildCFG pins the exact block/edge structure the builder produces for
// each control shape the paired-resource solver depends on. The golden form
// is DebugString: one line per block in creation order, successors in edge
// order, /T and /F marking condition polarity, /return and /panic marking
// exit kinds.
func TestBuildCFG(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "straight line",
			src: `func f() int {
	x := 1
	x++
	return x
}`,
			want: `
b0[3]: exit/return
exit[0]:`,
		},
		{
			name: "if else join",
			src: `func f(v int) int {
	if v > 0 {
		v--
	} else {
		v++
	}
	return v
}`,
			want: `
b0[0]: b1/T b3/F
b1[1]: b2
b2[1]: exit/return
b3[1]: b2
exit[0]:`,
		},
		{
			name: "nested range loops",
			src: `func f(xs [][]int) int {
	s := 0
	for _, row := range xs {
		for _, v := range row {
			s += v
		}
	}
	return s
}`,
			want: `
b0[1]: b1
b1[1]: b3 b2
b2[1]: exit/return
b3[0]: b4
b4[1]: b6 b5
b5[0]: b1
b6[1]: b4
exit[0]:`,
		},
		{
			name: "labeled break from inner loop",
			src: `func f(xs []int) {
outer:
	for _, x := range xs {
		for _, y := range xs {
			if x == y {
				break outer
			}
		}
	}
}`,
			want: `
b0[0]: b1
b1[0]: b2
b2[1]: b4 b3
b3[0]: exit/return
b4[0]: b5
b5[1]: b7 b6
b6[0]: b2
b7[0]: b8/T b9/F
b8[0]: b3
b9[0]: b5
exit[0]:`,
		},
		{
			name: "three clause for with break and continue",
			src: `func f(xs []int) int {
	s := 0
	for i := 0; i < len(xs); i++ {
		if xs[i] < 0 {
			continue
		}
		if xs[i] == 0 {
			break
		}
		s += xs[i]
	}
	return s
}`,
			want: `
b0[2]: b1
b1[0]: b3/T b2/F
b2[1]: exit/return
b3[0]: b5/T b6/F
b4[1]: b1
b5[0]: b4
b6[0]: b7/T b8/F
b7[0]: b2
b8[1]: b4
exit[0]:`,
		},
		{
			name: "defer in loop stays in its block",
			src: `func f(n int) {
	for i := 0; i < n; i++ {
		defer done(i)
	}
}`,
			want: `
b0[1]: b1
b1[0]: b3/T b2/F
b2[0]: exit/return
b3[1]: b4
b4[1]: b1
exit[0]:`,
		},
		{
			name: "panic only exits",
			src: `func f(v int) {
	if v < 0 {
		panic("negative")
	}
	panic("always")
}`,
			want: `
b0[0]: b1/T b2/F
b1[1]: exit/panic
b2[1]: exit/panic
exit[0]:`,
		},
		{
			name: "fatalf terminates like return",
			src: `func f(ok bool, tt reporter) {
	if !ok {
		tt.Fatalf("nope")
	}
	tt.Log("fine")
}`,
			want: `
b0[0]: b1/T b2/F
b1[1]: exit/return
b2[1]: exit/return
exit[0]:`,
		},
		{
			name: "switch with fallthrough and no default",
			src: `func f(n int) {
	switch n {
	case 0:
		n++
		fallthrough
	case 1:
		n--
	}
}`,
			want: `
b0[1]: b2 b3 b1
b1[0]: exit/return
b2[1]: b3
b3[1]: b1
exit[0]:`,
		},
		{
			name: "select with default has a non-blocking path",
			src: `func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return -1
	}
}`,
			want: `
b0[0]: b2 b3
b1[0]: exit/return
b2[2]: exit/return
b3[1]: exit/return
exit[0]:`,
		},
		{
			name: "select without default blocks until a case fires",
			src: `func f(ch chan int, done chan struct{}) {
	select {
	case ch <- 1:
	case <-done:
	}
}`,
			want: `
b0[0]: b2 b3
b1[0]: exit/return
b2[1]: b1
b3[1]: b1
exit[0]:`,
		},
		{
			name: "goto back edge",
			src: `func f(n int) {
again:
	n--
	if n > 0 {
		goto again
	}
}`,
			want: `
b0[0]: b1
b1[1]: b2/T b3/F
b2[0]: b1
b3[0]: exit/return
exit[0]:`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := buildTestCFG(t, tc.src)
			got := strings.TrimSpace(cfg.DebugString())
			want := strings.TrimSpace(tc.want)
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCFGEveryExitReachesExitBlock asserts the structural invariant the
// solver relies on: every terminal edge targets the synthetic exit block
// and carries a non-flow kind.
func TestCFGEveryExitReachesExitBlock(t *testing.T) {
	cfg := buildTestCFG(t, `func f(v int) int {
	if v < 0 {
		panic("no")
	}
	for v > 10 {
		v /= 2
	}
	return v
}`)
	terminal := 0
	for _, blk := range cfg.Blocks {
		for _, e := range blk.Succs {
			if e.Kind != EdgeFlow {
				terminal++
				if e.To != cfg.Exit {
					t.Errorf("%s edge from b%d does not target the exit block", e.Kind, blk.Index)
				}
			}
			if e.To == cfg.Exit && e.Kind == EdgeFlow {
				t.Errorf("flow edge from b%d targets the exit block", blk.Index)
			}
		}
	}
	if terminal != 2 {
		t.Errorf("expected 2 terminal edges (one panic, one return), found %d", terminal)
	}
	if cfg.Exit.Index != len(cfg.Blocks)-1 || cfg.Blocks[cfg.Exit.Index] != cfg.Exit {
		t.Error("exit block is not the last block")
	}
}
