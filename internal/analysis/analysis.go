// Package analysis is sjlint's in-repo static-analysis framework: a small,
// stdlib-only (go/parser, go/ast, go/types) analogue of
// golang.org/x/tools/go/analysis hosting the domain-specific analyzers that
// mechanically enforce this repository's invariants — pool-mediated disk
// I/O, atomic-only counter access, epsilon-safe float comparison, and
// checked errors on storage and parallel-execution operations.
//
// Each Analyzer inspects one type-checked package and reports diagnostics
// at token positions. The driver (cmd/sjlint) loads packages with Loader,
// runs every analyzer concurrently per package, filters diagnostics through
// //sjlint:ignore suppression comments, and exits non-zero when findings
// remain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sjlint:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is a one-line description shown by `sjlint -list`.
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Reportf. It must not retain pass after returning.
	Run func(pass *Pass)
	// SkipTests drops this analyzer's findings in _test.go files when a
	// package is loaded with tests: the invariant it enforces is a
	// production-code discipline that test code legitimately violates
	// (raw device I/O in storage tests, exact float goldens, ...).
	SkipTests bool
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	mu    *sync.Mutex
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos. It is safe for concurrent use by
// the analyzers sharing one package run.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
	p.mu.Lock()
	*p.diags = append(*p.diags, d)
	p.mu.Unlock()
}

// TypeOf returns the static type of expression e, or nil when untracked.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding: an analyzer name, a resolved file position,
// and a message.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RawDisk,
		AtomicCounter,
		FloatEq,
		ErrDrop,
		CtxPool,
		StatsReset,
		ThetaPair,
		JoinAlloc,
		PinUnpin,
		LockBalance,
		SpanClose,
		SemRelease,
		TxnAtomic,
		StreamClose,
	}
}

// ByName resolves a comma-separated analyzer name list against All,
// returning an error naming any unknown entry.
func ByName(names string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunResult is the full outcome of analyzing one package: the surviving
// diagnostics plus the suppression accounting the driver exposes.
type RunResult struct {
	// Diagnostics are the findings that survived //sjlint:ignore
	// filtering, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed counts the findings each analyzer produced that an
	// ignore directive swallowed.
	Suppressed map[string]int
	// BareDirectives locate //sjlint:ignore comments carrying no written
	// justification after the analyzer list — a driver warning.
	BareDirectives []token.Position
}

// Run executes the given analyzers over one loaded package concurrently and
// returns the surviving diagnostics sorted by position. Findings suppressed
// by an //sjlint:ignore comment on the same or the preceding line are
// dropped.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunAll(pkg, analyzers).Diagnostics
}

// RunAll is Run with the suppression accounting: surviving diagnostics,
// per-analyzer suppressed counts, and the positions of justification-less
// ignore directives.
func RunAll(pkg *Package, analyzers []*Analyzer) RunResult {
	var (
		mu    sync.Mutex
		diags []Diagnostic
		wg    sync.WaitGroup
	)
	for _, a := range analyzers {
		wg.Add(1)
		go func(a *Analyzer) {
			defer wg.Done()
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				mu:       &mu,
				diags:    &diags,
			})
		}(a)
	}
	wg.Wait()

	skipTests := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		skipTests[a.Name] = a.SkipTests
	}
	ig := collectIgnores(pkg)
	res := RunResult{Suppressed: make(map[string]int)}
	kept := diags[:0]
	for _, d := range diags {
		if skipTests[d.Analyzer] && strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		if ig.suppresses(d) {
			res.Suppressed[d.Analyzer]++
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	res.Diagnostics = kept
	res.BareDirectives = ig.bare
	return res
}

// ignoreKey locates one //sjlint:ignore directive.
type ignoreKey struct {
	file string
	line int
}

// ignores maps directive locations to the analyzer names they suppress,
// and records directives missing their written justification.
type ignores struct {
	at   map[ignoreKey]map[string]bool
	bare []token.Position
}

// collectIgnores scans every comment in the package for
// //sjlint:ignore name[,name...] reason... directives. A directive
// suppresses matching diagnostics on its own line and on the line directly
// below it (so it can sit at end-of-line or on its own line above the
// finding). The free-form justification after the analyzer list is
// required: a bare directive still suppresses — silencing a finding must
// never depend on prose — but is reported for the driver to warn about.
func collectIgnores(pkg *Package) ignores {
	const prefix = "//sjlint:ignore"
	ig := ignores{at: make(map[ignoreKey]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, prefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				// First field is the analyzer list; anything after it is a
				// free-form justification.
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) == 1 {
					ig.bare = append(ig.bare, pos)
				}
				key := ignoreKey{file: pos.Filename, line: pos.Line}
				set := ig.at[key]
				if set == nil {
					set = make(map[string]bool)
					ig.at[key] = set
				}
				for _, name := range strings.Split(fields[0], ",") {
					set[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	sort.Slice(ig.bare, func(i, j int) bool {
		a, b := ig.bare[i], ig.bare[j]
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return ig
}

// suppresses reports whether d is covered by a directive on its line or the
// line above.
func (ig ignores) suppresses(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if set, ok := ig.at[ignoreKey{file: d.Pos.Filename, line: line}]; ok && set[d.Analyzer] {
			return true
		}
	}
	return false
}

// inspectAll applies f to every node of every file in the pass.
func inspectAll(pass *Pass, f func(ast.Node) bool) {
	for _, file := range pass.Files {
		ast.Inspect(file, f)
	}
}
