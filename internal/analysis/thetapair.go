package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ThetaPair enforces the Table 1 pairing discipline in the pred package:
// every θ-operator (a type with an Eval predicate) must carry its Θ-filter
// (a Filter predicate over MBRs) and a stable Name, and every complete
// operator must be registered in a package-level registry returning
// []Operator (Table1/Extended). A θ without a Θ is unusable by the
// tree-based strategies; an unregistered operator silently escapes the
// soundness property tests (θ(a,b) ⇒ Θ(mbr(a),mbr(b))) and the ParseName
// round-trip that recovery depends on to reattach persisted join indices.
var ThetaPair = &Analyzer{
	Name: "thetapair",
	Doc:  "in package pred, require every θ-operator (Eval) to pair with a Θ-filter (Filter) and Name, and to be registered in a []Operator registry",
	Run:  runThetaPair,
}

func runThetaPair(pass *Pass) {
	if pass.Pkg.Name() != "pred" {
		return // the pairing contract binds the operator package only
	}

	// Collect every non-interface named type declaring operator-shaped
	// methods.
	type opInfo struct {
		pos                         token.Pos
		hasEval, hasFilter, hasName bool
	}
	scope := pass.Pkg.Scope()
	ops := make(map[string]*opInfo)
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Interface); ok {
			continue
		}
		info := &opInfo{pos: tn.Pos()}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			sig, ok := m.Type().(*types.Signature)
			if !ok {
				continue
			}
			switch m.Name() {
			case "Eval":
				info.hasEval = info.hasEval || isBinaryPredicate(sig)
			case "Filter":
				info.hasFilter = info.hasFilter || isBinaryPredicate(sig)
			case "Name":
				info.hasName = info.hasName || isNullaryString(sig)
			}
		}
		if info.hasEval || info.hasFilter {
			ops[name] = info
		}
	}
	if len(ops) == 0 {
		return
	}

	// A registry is a package-level function returning []Operator; every
	// operator composite literal inside one counts as registered.
	registered := make(map[string]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil || !returnsOperatorSlice(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if named := namedOf(pass.TypeOf(cl)); named != nil &&
					named.Obj().Pkg() == pass.Pkg {
					registered[named.Obj().Name()] = true
				}
				return true
			})
		}
	}

	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		info := ops[name]
		switch {
		case info.hasEval && !info.hasFilter:
			pass.Reportf(info.pos,
				"θ-operator %s declares Eval but no Θ-filter Filter(a, b Rect) bool; tree-based join strategies cannot prune with it (Table 1 pairing)",
				name)
		case info.hasFilter && !info.hasEval:
			pass.Reportf(info.pos,
				"type %s declares a Θ-filter Filter but no θ-operator Eval; a filter without an exact predicate admits false positives into join results",
				name)
		default:
			if !info.hasName {
				pass.Reportf(info.pos,
					"operator %s declares no Name() string; join-index persistence and ParseName recovery need a stable identifier",
					name)
			}
			if !registered[name] {
				pass.Reportf(info.pos,
					"operator %s is not registered in any package-level registry returning []Operator (Table1/Extended); soundness and ParseName round-trip tests will not cover it",
					name)
			}
		}
	}
}

// isBinaryPredicate matches func(a, b T) bool — the shape shared by Eval
// (over geometries) and Filter (over MBRs).
func isBinaryPredicate(sig *types.Signature) bool {
	return sig.Params().Len() == 2 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// isNullaryString matches func() string.
func isNullaryString(sig *types.Signature) bool {
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.String])
}

// returnsOperatorSlice reports whether fd's results include a slice of the
// package's own Operator type.
func returnsOperatorSlice(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		sl, ok := pass.TypeOf(res.Type).(*types.Slice)
		if !ok {
			continue
		}
		named := namedOf(sl.Elem())
		if named != nil && named.Obj().Pkg() == pass.Pkg && named.Obj().Name() == "Operator" {
			return true
		}
	}
	return false
}
