package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Import paths of the packages whose contracts the analyzers enforce.
const (
	rootPkgPath     = "spatialjoin"
	storagePkgPath  = "spatialjoin/internal/storage"
	faultPkgPath    = "spatialjoin/internal/fault"
	walPkgPath      = "spatialjoin/internal/wal"
	parallelPkgPath = "spatialjoin/internal/parallel"
	geomPkgPath     = "spatialjoin/internal/geom"
	obsPkgPath      = "spatialjoin/internal/obs"
	replPkgPath     = "spatialjoin/internal/repl"
	atomicPkgPath   = "sync/atomic"
)

// calleeFunc resolves the statically-called function or method of call,
// or nil for indirect calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// namedOf unwraps pointers and aliases down to the defined type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errorResults returns the indices of signature results typed error.
func errorResults(sig *types.Signature) []int {
	var out []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

// checkDiscardedErrors reports every call to a function matched by `match`
// whose error result is silently dropped: the call stands alone as a
// statement (including go/defer), or an error result is assigned to the
// blank identifier.
func checkDiscardedErrors(pass *Pass, match func(fn *types.Func) bool,
	report func(pos token.Pos, fn *types.Func)) {

	// matchedCall resolves a candidate expression to a matched callee with
	// at least one error result.
	matchedCall := func(e ast.Expr) (*ast.CallExpr, *types.Func, []int) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, nil, nil
		}
		fn := calleeFunc(pass, call)
		if fn == nil || !match(fn) {
			return nil, nil, nil
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return nil, nil, nil
		}
		errs := errorResults(sig)
		if len(errs) == 0 {
			return nil, nil, nil
		}
		return call, fn, errs
	}

	inspectAll(pass, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, fn, _ := matchedCall(stmt.X); call != nil {
				report(call.Pos(), fn)
			}
		case *ast.GoStmt:
			if call, fn, _ := matchedCall(stmt.Call); call != nil {
				report(call.Pos(), fn)
			}
		case *ast.DeferStmt:
			if call, fn, _ := matchedCall(stmt.Call); call != nil {
				report(call.Pos(), fn)
			}
		case *ast.AssignStmt:
			// Multi-value form: lhs... := f(). The error positions of the
			// call line up with the assignment targets.
			if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
				call, fn, errs := matchedCall(stmt.Rhs[0])
				if call == nil {
					return true
				}
				for _, i := range errs {
					if i < len(stmt.Lhs) && isBlank(stmt.Lhs[i]) {
						report(call.Pos(), fn)
						return true
					}
				}
				return true
			}
			// Parallel form: a, b = f(), g() — single results only.
			for i, rhs := range stmt.Rhs {
				if i >= len(stmt.Lhs) || !isBlank(stmt.Lhs[i]) {
					continue
				}
				if call, fn, _ := matchedCall(rhs); call != nil {
					report(call.Pos(), fn)
				}
			}
		}
		return true
	})
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
