package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// StreamClose enforces the replication source's stream contract
// flow-sensitively: every stream opened with (*repl.Source).OpenTail or
// OpenSnap must reach Close on every outcome — success, error return, and
// panic alike. A leaked TailStream wedges the source's stream gauge high;
// a leaked SnapStream additionally strands the snapshot-encoding goroutine
// blocked on its pipe forever, pinning the checkpointed device image in
// memory. A stream bound to a local is tracked through branches; one that
// is returned transfers the closing obligation to the caller on that path,
// and one handed to another function or captured by a free closure is left
// to that owner. An open whose handle is discarded can never be closed and
// is reported at every exit.
var StreamClose = &Analyzer{
	Name: "streamclose",
	Doc:  "every opened replication stream must reach Close on all outcomes",
	Run:  runStreamClose,
}

func runStreamClose(pass *Pass) {
	// streamKind names the stream type an open call produces, or "".
	streamKind := func(fn *types.Func) string {
		switch {
		case isMethodOf(fn, replPkgPath, "Source", "OpenTail"):
			return "TailStream"
		case isMethodOf(fn, replPkgPath, "Source", "OpenSnap"):
			return "SnapStream"
		}
		return ""
	}
	spec := &PairSpec{
		Acquires: func(pass *Pass, stmt ast.Stmt) []AcqOp {
			call, lhs := stmtCall(stmt)
			if call == nil {
				return nil
			}
			fn := calleeFunc(pass, call)
			kind := streamKind(fn)
			if kind == "" || len(call.Args) != 1 {
				return nil
			}
			a := AcqOp{
				Pos:  call.Pos(),
				Desc: fmt.Sprintf("%s opened by %s", kind, fn.Name()),
			}
			if len(lhs) == 2 {
				a.ErrObj = identObj(pass, lhs[1])
				if obj := identObj(pass, lhs[0]); obj != nil {
					// Stream bound to a variable: key by object identity so
					// its Close pairs precisely, held only where err is nil.
					a.Key = ResKey{Obj: obj}
					a.ValueObj = obj
					return []AcqOp{a}
				}
				if !isBlank(lhs[0]) {
					// Field or index target (f.tail = ...): lifetime is
					// object-bound, beyond an intra-procedural view.
					return nil
				}
			}
			// Handle discarded (`_, err :=` or a bare call statement): no
			// Close can ever reference it — an unreleasable key that leaks
			// at every exit the open succeeds on.
			a.Key = ResKey{Text: fmt.Sprintf("stream@%d", call.Pos())}
			a.Desc += " (handle discarded)"
			return []AcqOp{a}
		},
		Releases: func(pass *Pass, n ast.Node) []RelOp {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return nil
			}
			fn := calleeFunc(pass, call)
			if !isMethodOf(fn, replPkgPath, "TailStream", "Close") &&
				!isMethodOf(fn, replPkgPath, "SnapStream", "Close") {
				return nil
			}
			id, ok := ast.Unparen(callRecv(call)).(*ast.Ident)
			if !ok {
				return nil
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return nil
			}
			return []RelOp{{Key: ResKey{Obj: obj}, Pos: call.Pos()}}
		},
		ValueEscapes: func(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
			if enclosedByFreeLit(stack) {
				// Captured by a closure whose execution the solver cannot
				// place (stored, returned): that owner must close it.
				return true
			}
			if len(stack) == 0 {
				return true
			}
			switch p := stack[len(stack)-1].(type) {
			case *ast.SelectorExpr, *ast.BinaryExpr, *ast.ParenExpr, *ast.StarExpr:
				// Method calls (Next/Close), field reads (Full), and nil
				// comparisons on the handle move nothing.
				return false
			case *ast.AssignStmt:
				// `_ = t` keeps ownership; a real assignment aliases it away.
				for _, l := range p.Lhs {
					if !isBlank(l) {
						return true
					}
				}
				return false
			case *ast.ReturnStmt:
				return false // path-sensitive transfer to the caller
			}
			return true
		},
		Leakf: func(a AcqOp, kind EdgeKind, exit token.Position) string {
			return fmt.Sprintf("%s is not closed on the path %s at %s",
				a.Desc, exitPhrase(kind), shortPos(exit))
		},
	}
	runPaired(pass, spec)
}
