package analysis

import (
	"go/token"
	"go/types"
)

// ErrDrop flags unchecked errors from storage-layer operations. A dropped
// error from Fetch, WritePage, Flush, or Unpin is not just a lost failure:
// the pool's pin counts and the disk's I/O accounting are updated on the
// success path, so ignoring the error desynchronizes the caller's view of
// the pool from its true state and corrupts the measured cost figures.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag unchecked errors from storage and buffer-pool operations",
	Run:  runErrDrop,
	// Tests drop storage errors deliberately when priming state for the
	// scenario under test; the flow-sensitive analyzers cover what matters
	// there (pin balance, lock balance).
	SkipTests: true,
}

func runErrDrop(pass *Pass) {
	checkDiscardedErrors(pass,
		func(fn *types.Func) bool {
			return fn.Pkg() != nil && fn.Pkg().Path() == storagePkgPath
		},
		func(pos token.Pos, fn *types.Func) {
			pass.Reportf(pos, "unchecked error from storage operation %s", fn.Name())
		})
}
