package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file is the control-flow layer of the analysis framework: an
// intra-procedural CFG builder over go/ast used by the flow-sensitive
// paired-resource analyzers (pinunpin, lockbalance, spanclose, semrelease).
//
// The CFG is statement-granular. Compound statements never appear inside a
// block: if/for/range/switch/type-switch/select are lowered to blocks and
// edges (conditions ride on the edges so a solver can refine state per
// branch), while break/continue — labeled or not — goto, fallthrough,
// return, and panic-shaped calls terminate blocks with explicit transfer
// edges. defer and go statements stay in their blocks as ordinary
// statements; the dataflow solver interprets defers as exit-edge actions
// (they run when a return or panic edge is taken) rather than at their
// syntactic position.

// EdgeKind classifies how control leaves a block.
type EdgeKind uint8

const (
	// EdgeFlow is an ordinary intra-function transfer.
	EdgeFlow EdgeKind = iota
	// EdgeReturn leaves the function normally: an explicit return, falling
	// off the end of the body, or a call that terminates the goroutine in
	// a defer-running way (runtime.Goexit, testing's Fatal/Skip family) or
	// the process (os.Exit, log.Fatal).
	EdgeReturn
	// EdgePanic leaves the function by panicking: an explicit panic(...)
	// call. Deferred calls still run on this edge.
	EdgePanic
)

// String names the kind for CFG dumps and diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeReturn:
		return "return"
	case EdgePanic:
		return "panic"
	default:
		return "flow"
	}
}

// Edge is one directed control transfer. On a conditional branch Cond is
// the controlling expression: the edge is taken when Cond evaluates to
// !Negate. Unconditional edges (including the unknowable outcomes of
// range/select/switch dispatch) carry a nil Cond.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
	Cond     ast.Expr
	Negate   bool
	// Pos anchors the transfer for diagnostics: the return statement, the
	// panic call, the branch keyword, or the body's closing brace for the
	// implicit return.
	Pos token.Pos
}

// Block is a maximal straight-line statement sequence. Only simple
// statements appear in Stmts (assignments, expression statements, send,
// inc/dec, decl, defer, go, return, and — as a scanning anchor for its
// key/value/operand expressions — the range statement heading a loop).
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Edge
}

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry; Exit is a synthetic statement-less block every EdgeReturn and
// EdgePanic edge targets. Blocks with no inbound edges (other than entry)
// are syntactically unreachable code.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator, so
	// trailing unreachable statements land in a fresh, edgeless block.
	cur *Block
	// frames is the innermost-last stack of enclosing breakable
	// constructs (loops, switches, selects).
	frames []*cfgFrame
	// labels maps a pending label to the statement it annotates, so the
	// frame of a labeled loop/switch/select can claim it.
	pendingLabel string
	// gotoTargets maps label names to their target blocks; gotosWaiting
	// holds forward gotos to resolve once the label is built.
	gotoTargets  map[string]*Block
	gotosWaiting map[string][]*Edge
}

// cfgFrame is one enclosing break/continue scope.
type cfgFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

// BuildCFG lowers one function body to its control-flow graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:          &CFG{Exit: &Block{Index: -1}},
		gotoTargets:  make(map[string]*Block),
		gotosWaiting: make(map[string][]*Edge),
	}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.edge(b.cur, b.cfg.Exit, EdgeReturn, nil, false, body.Rbrace)
	// Unresolved gotos (labels in dead code) fall to the exit so the graph
	// stays well formed.
	for _, edges := range b.gotosWaiting {
		for _, e := range edges {
			e.To = b.cfg.Exit
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// newBlock appends a fresh block to the graph.
func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge links from → to. A nil from (terminated path) is a no-op.
func (b *cfgBuilder) edge(from, to *Block, kind EdgeKind, cond ast.Expr, negate bool, pos token.Pos) *Edge {
	if from == nil {
		return nil
	}
	e := &Edge{From: from, To: to, Kind: kind, Cond: cond, Negate: negate, Pos: pos}
	from.Succs = append(from.Succs, e)
	return e
}

// current returns the block under construction, opening an unreachable
// block when the previous statement terminated the path.
func (b *cfgBuilder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// stmtList lowers a statement sequence.
func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findFrame resolves a break/continue target: the innermost frame, or the
// frame carrying the label. needContinue restricts the search to loops.
func (b *cfgBuilder) findFrame(label string, needContinue bool) *cfgFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// stmt lowers one statement.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// A label is a join point (goto target) ahead of its statement;
		// the immediately-following loop/switch/select claims the label
		// for labeled break/continue.
		target := b.newBlock()
		b.edge(b.cur, target, EdgeFlow, nil, false, s.Pos())
		b.cur = target
		b.gotoTargets[s.Label.Name] = target
		for _, e := range b.gotosWaiting[s.Label.Name] {
			e.To = target
		}
		delete(b.gotosWaiting, s.Label.Name)
		prev := b.pendingLabel
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = prev

	case *ast.ReturnStmt:
		cur := b.current()
		cur.Stmts = append(cur.Stmts, s)
		b.edge(cur, b.cfg.Exit, EdgeReturn, nil, false, s.Pos())
		b.cur = nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(label, false); f != nil {
				b.edge(b.current(), f.breakTo, EdgeFlow, nil, false, s.Pos())
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.findFrame(label, true); f != nil {
				b.edge(b.current(), f.continueTo, EdgeFlow, nil, false, s.Pos())
			}
			b.cur = nil
		case token.GOTO:
			e := b.edge(b.current(), b.cfg.Exit, EdgeFlow, nil, false, s.Pos())
			if target, ok := b.gotoTargets[label]; ok {
				e.To = target
			} else {
				b.gotosWaiting[label] = append(b.gotosWaiting[label], e)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch lowering, which links the case body to
			// its successor; nothing to do at the statement itself.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.current()
		thenB := b.newBlock()
		b.edge(head, thenB, EdgeFlow, s.Cond, false, s.Cond.Pos())
		join := b.newBlock()
		b.cur = thenB
		b.stmt(s.Body)
		b.edge(b.cur, join, EdgeFlow, nil, false, s.Body.End())
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB, EdgeFlow, s.Cond, true, s.Cond.Pos())
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, join, EdgeFlow, nil, false, s.Else.End())
		} else {
			b.edge(head, join, EdgeFlow, s.Cond, true, s.Cond.Pos())
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head, EdgeFlow, nil, false, s.Pos())
		join := b.newBlock()
		body := b.newBlock()
		if s.Cond != nil {
			b.edge(head, body, EdgeFlow, s.Cond, false, s.Cond.Pos())
			b.edge(head, join, EdgeFlow, s.Cond, true, s.Cond.Pos())
		} else {
			b.edge(head, body, EdgeFlow, nil, false, s.Pos())
		}
		// continue targets the post statement's block when there is one.
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			contTo = post
		}
		b.pushFrame(&cfgFrame{label: b.takeLabel(), breakTo: join, continueTo: contTo})
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		if post != nil {
			b.edge(b.cur, post, EdgeFlow, nil, false, s.Body.End())
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head, EdgeFlow, nil, false, s.Body.End())
		} else {
			b.edge(b.cur, head, EdgeFlow, nil, false, s.Body.End())
		}
		b.cur = join

	case *ast.RangeStmt:
		head := b.newBlock()
		// The range statement itself anchors the head so solvers can scan
		// its X/Key/Value expressions; its body is lowered separately.
		head.Stmts = append(head.Stmts, s)
		b.edge(b.cur, head, EdgeFlow, nil, false, s.Pos())
		join := b.newBlock()
		body := b.newBlock()
		b.edge(head, body, EdgeFlow, nil, false, s.Pos())
		b.edge(head, join, EdgeFlow, nil, false, s.Pos())
		b.pushFrame(&cfgFrame{label: b.takeLabel(), breakTo: join, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		b.edge(b.cur, head, EdgeFlow, nil, false, s.Body.End())
		b.cur = join

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			cur := b.current()
			cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Tag})
		}
		b.switchClauses(s.Body.List, s.End(), false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Assign != nil {
			b.stmt(s.Assign)
		}
		b.switchClauses(s.Body.List, s.End(), false)

	case *ast.SelectStmt:
		b.selectClauses(s)

	case *ast.ExprStmt:
		cur := b.current()
		cur.Stmts = append(cur.Stmts, s)
		if kind, ok := noReturnCall(s.X); ok {
			b.edge(cur, b.cfg.Exit, kind, nil, false, s.Pos())
			b.cur = nil
		}

	default:
		// Simple statements: assignments, declarations, send, inc/dec,
		// defer, go, empty.
		cur := b.current()
		if _, ok := s.(*ast.EmptyStmt); !ok {
			cur.Stmts = append(cur.Stmts, s)
		}
	}
}

// switchClauses lowers the case list of a (type) switch: dispatch fans out
// from the current block to every case, fallthrough chains case bodies,
// and a missing default adds a skip edge to the join.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, end token.Pos, _ bool) {
	head := b.current()
	join := b.newBlock()
	b.pushFrame(&cfgFrame{label: b.takeLabel(), breakTo: join})

	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		bodies[i] = b.newBlock()
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, bodies[i], EdgeFlow, nil, false, cc.Pos())
	}
	if !hasDefault {
		b.edge(head, join, EdgeFlow, nil, false, end)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.edge(b.cur, bodies[i+1], EdgeFlow, nil, false, cc.End())
		} else {
			b.edge(b.cur, join, EdgeFlow, nil, false, cc.End())
		}
	}
	b.popFrame()
	b.cur = join
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// selectClauses lowers a select: each comm clause becomes a branch whose
// first statement is the communication itself (so a solver sees the
// acquire performed by `case ch <- tok:`). A select without a default has
// no skip edge — control blocks until some case fires.
func (b *cfgBuilder) selectClauses(s *ast.SelectStmt) {
	head := b.current()
	join := b.newBlock()
	b.pushFrame(&cfgFrame{label: b.takeLabel(), breakTo: join})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		body := b.newBlock()
		b.edge(head, body, EdgeFlow, nil, false, cc.Pos())
		b.cur = body
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, join, EdgeFlow, nil, false, cc.End())
	}
	b.popFrame()
	b.cur = join
}

// pushFrame/popFrame maintain the break/continue scope stack.
func (b *cfgBuilder) pushFrame(f *cfgFrame) { b.frames = append(b.frames, f) }
func (b *cfgBuilder) popFrame()             { b.frames = b.frames[:len(b.frames)-1] }

// takeLabel consumes the pending label of a labeled statement, so the
// construct being built claims it for labeled break/continue.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// noReturnCall classifies calls that never return to the following
// statement. Resolution is name-based so the CFG builder works without
// type information: the builtin panic (EdgePanic — defers run, callers
// may recover), and the defer-running or process-ending terminators
// runtime.Goexit, os.Exit, log.Fatal*, and testing's Fatal/FailNow/Skip
// family (EdgeReturn).
func noReturnCall(e ast.Expr) (EdgeKind, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			return EdgePanic, true
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		switch {
		case name == "Goexit", name == "FailNow", name == "SkipNow", name == "Skip", name == "Skipf":
			return EdgeReturn, true
		case strings.HasPrefix(name, "Fatal"):
			return EdgeReturn, true
		case name == "Exit":
			if x, ok := fun.X.(*ast.Ident); ok && x.Name == "os" {
				return EdgeReturn, true
			}
		}
	}
	return 0, false
}

// DebugString renders the graph for tests and debugging: one line per
// block, `b<i>[n stmts]: -> b<j>(kind/cond)`; the exit block prints as
// `exit`. Successors are listed in edge order.
func (c *CFG) DebugString() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		name := fmt.Sprintf("b%d", blk.Index)
		if blk == c.Exit {
			name = "exit"
		}
		fmt.Fprintf(&sb, "%s[%d]:", name, len(blk.Stmts))
		for _, e := range blk.Succs {
			to := fmt.Sprintf("b%d", e.To.Index)
			if e.To == c.Exit {
				to = "exit"
			}
			ann := ""
			switch {
			case e.Kind == EdgeReturn:
				ann = "/return"
			case e.Kind == EdgePanic:
				ann = "/panic"
			case e.Cond != nil && e.Negate:
				ann = "/F"
			case e.Cond != nil:
				ann = "/T"
			}
			fmt.Fprintf(&sb, " %s%s", to, ann)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// funcBodies yields every function body of the file in source order: each
// declared function or method, and each function literal. Literal bodies
// are analyzed as functions in their own right and are therefore skipped
// when scanning their enclosing body.
func funcBodies(file *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, funcBody{name: n.Name.Name, body: n.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{name: "func literal", body: n.Body})
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].body.Pos() < out[j].body.Pos() })
	return out
}

// funcBody is one analyzable function: a name for diagnostics and the body.
type funcBody struct {
	name string
	body *ast.BlockStmt
}
