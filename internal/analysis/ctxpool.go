package analysis

import (
	"go/token"
	"go/types"
)

// CtxPool flags parallel worker-pool launches whose error result is
// discarded. parallel.Run and parallel.RunChunks stop handing out tasks
// after the first failure, so a discarded error means the caller treats a
// partially-executed join as complete — the exact silent-wrong-answer
// failure mode the cross-strategy equivalence harness exists to prevent.
var CtxPool = &Analyzer{
	Name: "ctxpool",
	Doc:  "flag parallel.Run/RunChunks launches whose error result is discarded",
	Run:  runCtxPool,
}

func runCtxPool(pass *Pass) {
	checkDiscardedErrors(pass,
		func(fn *types.Func) bool {
			return fn.Pkg() != nil && fn.Pkg().Path() == parallelPkgPath
		},
		func(pos token.Pos, fn *types.Func) {
			pass.Reportf(pos, "discarded error from parallel.%s: a failed pool run leaves partial results", fn.Name())
		})
}
