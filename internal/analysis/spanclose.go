package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
)

// SpanClose enforces the tracer's documented contract flow-sensitively:
// every span started with (*obs.Trace).Begin must be ended with End on
// every outcome — success, error return, and panic alike — because an
// abandoned span never acquires an end time and poisons the per-level
// read-sum identity the EXPLAIN path asserts. The analyzer tracks spans
// bound to local variables; a span that is returned transfers the closing
// obligation to the caller on that path, and a span handed to another
// function or captured by a closure the analyzer cannot see run is left
// to that owner. A Begin whose result is discarded outright can never be
// ended and is reported at every exit.
var SpanClose = &Analyzer{
	Name: "spanclose",
	Doc:  "every started obs span must be ended on all outcomes",
	Run:  runSpanClose,
}

func runSpanClose(pass *Pass) {
	spec := &PairSpec{
		Acquires: func(pass *Pass, stmt ast.Stmt) []AcqOp {
			call, lhs := stmtCall(stmt)
			if call == nil {
				return nil
			}
			fn := calleeFunc(pass, call)
			if !isMethodOf(fn, obsPkgPath, "Trace", "Begin") || len(call.Args) != 2 {
				return nil
			}
			desc := "span"
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if name, err := strconv.Unquote(lit.Value); err == nil {
					desc = fmt.Sprintf("span %q", name)
				}
			}
			a := AcqOp{Pos: call.Pos(), Desc: desc}
			if len(lhs) == 1 {
				if obj := identObj(pass, lhs[0]); obj != nil {
					// Span bound to a local (or package) variable: key by
					// object identity so End(span) pairs precisely.
					a.Key = ResKey{Obj: obj}
					a.ValueObj = obj
					return []AcqOp{a}
				}
				if id, ok := ast.Unparen(lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					// Unresolvable target — stay silent.
					return nil
				}
				if _, ok := ast.Unparen(lhs[0]).(*ast.Ident); !ok {
					// Field or index target (q.span = ...): lifetime is
					// object-bound, beyond an intra-procedural view.
					return nil
				}
			}
			// Discarded result (`trace.Begin(...)` / `_ = ...`): no End
			// can ever reference it — an unreleasable key leaks at every
			// exit.
			a.Key = ResKey{Text: fmt.Sprintf("span@%d", call.Pos())}
			a.Desc += " (result discarded)"
			return []AcqOp{a}
		},
		Releases: func(pass *Pass, n ast.Node) []RelOp {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return nil
			}
			fn := calleeFunc(pass, call)
			if !isMethodOf(fn, obsPkgPath, "Trace", "End") {
				return nil
			}
			id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return nil
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return nil
			}
			return []RelOp{{Key: ResKey{Obj: obj}, Pos: call.Pos()}}
		},
		ValueEscapes: func(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
			if enclosedByFreeLit(stack) {
				// Captured by a closure whose execution the solver cannot
				// place (stored, returned): that owner must End it.
				return true
			}
			if len(stack) == 0 {
				return true
			}
			switch p := stack[len(stack)-1].(type) {
			case *ast.BinaryExpr, *ast.ParenExpr:
				return false // comparisons (span != 0) move nothing
			case *ast.ReturnStmt:
				return false // path-sensitive transfer to the caller
			case *ast.CallExpr:
				// Passing the span within the obs API — as End/Event/
				// Annotate target, as the parent of a nested Begin, or
				// into ContextWithSpan — keeps the obligation local.
				// Any other callee takes over the obligation.
				fn := calleeFunc(pass, p)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				return fn.Pkg().Path() != obsPkgPath
			}
			return true
		},
		Leakf: func(a AcqOp, kind EdgeKind, exit token.Position) string {
			return fmt.Sprintf("%s started here is not ended on the path %s at %s",
				a.Desc, exitPhrase(kind), shortPos(exit))
		},
	}
	runPaired(pass, spec)
}
