package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// JoinAlloc enforces the allocation discipline of the join executors: in
// the packages that run the synchronized descent and the tuple-at-a-time
// inner loops (core, join, zorder), code nested two or more loops deep
// must neither allocate geometry (a fresh slice, heap escape, or append
// of geom-package values per candidate pair multiplies into O(n·m)
// garbage) nor call into the observability layer (tracing, metrics, and
// flight-recorder emission belong at level and block boundaries, where
// their cost amortizes over a whole frontier — that is what keeps the
// nil-trace path free and the recorder ring from flooding).
// Function literals reset the nesting count: a worker body handed to the
// parallel pool starts its own loop structure.
var JoinAlloc = &Analyzer{
	Name: "joinalloc",
	Doc:  "in the join-executor packages (core, join, zorder), forbid geometry allocation and observability calls inside inner (nested) loops",
	Run:  runJoinAlloc,
}

// joinAllocPkgs names the executor packages the discipline binds.
var joinAllocPkgs = map[string]bool{"core": true, "join": true, "zorder": true}

// innerLoopDepth is the nesting level at which the checks arm: the body
// of a loop inside a loop.
const innerLoopDepth = 2

func runJoinAlloc(pass *Pass) {
	if !joinAllocPkgs[pass.Pkg.Name()] {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walkAllocDepth(pass, fd.Body, 0)
			}
		}
	}
}

// walkAllocDepth traverses n tracking loop-nesting depth. Loop subtrees
// (header and body alike — a header expression re-evaluates per
// iteration) recurse one level deeper; function literals restart at zero.
func walkAllocDepth(pass *Pass, root ast.Node, depth int) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == root {
			return true
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			walkAllocDepth(pass, v.Body, 0)
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			walkAllocDepth(pass, v, depth+1)
			return false
		}
		if depth >= innerLoopDepth {
			checkAllocNode(pass, n)
		}
		return true
	})
}

// checkAllocNode reports the forbidden shapes at one inner-loop node:
// geometry-backed make/new/append, address-taken or slice-kinded geometry
// composite literals, and any call into the obs package.
func checkAllocNode(pass *Pass, n ast.Node) {
	switch v := n.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "new":
					if len(v.Args) == 1 && geomBacked(pass.TypeOf(v.Args[0])) {
						reportGeomAlloc(pass, v.Pos(), "new of geometry")
					}
				case "make":
					if geomBacked(pass.TypeOf(v)) {
						reportGeomAlloc(pass, v.Pos(), "make of geometry storage")
					}
				case "append":
					if geomBacked(pass.TypeOf(v)) {
						reportGeomAlloc(pass, v.Pos(), "append of geometry values")
					}
				}
				return
			}
		}
		if fn := calleeFunc(pass, v); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == obsPkgPath {
			// The flight recorder gets its own message: Record is wait-free,
			// which tempts per-pair emission — but a per-pair event floods
			// the fixed-size ring and evicts the sparse events (checkpoint
			// marks, state transitions, sheds) a post-incident dump needs.
			if fn.Name() == "Record" {
				pass.Reportf(v.Pos(),
					"flight-recorder emission %s.%s inside a join inner loop; a per-pair event floods the ring — emit at level or block boundaries",
					fn.Pkg().Name(), fn.Name())
				return
			}
			pass.Reportf(v.Pos(),
				"observability call %s.%s inside a join inner loop; hoist tracing and metrics to the level or block boundary so the per-pair path stays free",
				fn.Pkg().Name(), fn.Name())
		}
	case *ast.UnaryExpr:
		if v.Op != token.AND {
			return
		}
		if cl, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok && geomBacked(pass.TypeOf(cl)) {
			reportGeomAlloc(pass, v.Pos(), "heap-escaping geometry literal")
		}
	case *ast.CompositeLit:
		// A value-typed geometry literal is a stack value and stays
		// legal; slice- and map-kinded literals allocate backing storage.
		t := pass.TypeOf(v)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			if geomBacked(t) {
				reportGeomAlloc(pass, v.Pos(), "geometry slice literal")
			}
		}
	}
}

func reportGeomAlloc(pass *Pass, pos token.Pos, what string) {
	pass.Reportf(pos,
		"geometry allocation (%s) inside a join inner loop; hoist the buffer out of the per-pair path or reuse a scratch value",
		what)
}

// geomBacked reports whether t is declared in the geom package, or is a
// slice, array, map, or pointer whose elements ultimately are.
func geomBacked(t types.Type) bool {
	for t != nil {
		if named := namedOf(t); named != nil {
			if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == geomPkgPath {
				return true
			}
			t = named.Underlying()
			continue
		}
		switch u := t.(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Pointer:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}
