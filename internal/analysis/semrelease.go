package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SemRelease enforces the server's admission-control discipline
// flow-sensitively: a token acquired by sending on an admission semaphore
// (a channel field or variable named `admit`, as in internal/server) must
// be released — received back — on every path, or shedding deadlocks
// under load as slots leak. Acquires inside select cases count only on
// the branch that fired. A token handed to a spawned query goroutine is
// released there, but only a receive under a defer survives a panic in
// the goroutine; a bare receive is reported as panic-unsafe.
var SemRelease = &Analyzer{
	Name: "semrelease",
	Doc:  "admission-semaphore tokens must be released on every path, panics included",
	Run:  runSemRelease,
}

// admissionChan matches an expression naming an admission semaphore: a
// channel-typed identifier or field whose name is `admit`.
func admissionChan(pass *Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	var name string
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return "", false
	}
	if name != "admit" {
		return "", false
	}
	t := pass.TypeOf(e)
	if t == nil {
		return "", false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return "", false
	}
	return exprText(e), true
}

func runSemRelease(pass *Pass) {
	spec := &PairSpec{
		Reentrant:          true, // a session may hold several tokens
		GoReleases:         true,
		GoReleaseMustDefer: true,
		Acquires: func(pass *Pass, stmt ast.Stmt) []AcqOp {
			send, ok := stmt.(*ast.SendStmt)
			if !ok {
				return nil
			}
			key, ok := admissionChan(pass, send.Chan)
			if !ok {
				return nil
			}
			return []AcqOp{{
				Key:  ResKey{Text: key},
				Pos:  send.Pos(),
				Desc: fmt.Sprintf("admission token (%s <- ...)", key),
			}}
		},
		Releases: func(pass *Pass, n ast.Node) []RelOp {
			un, ok := n.(*ast.UnaryExpr)
			if !ok || un.Op != token.ARROW {
				return nil
			}
			key, ok := admissionChan(pass, un.X)
			if !ok {
				return nil
			}
			return []RelOp{{Key: ResKey{Text: key}, Pos: un.Pos()}}
		},
		Leakf: func(a AcqOp, kind EdgeKind, exit token.Position) string {
			return fmt.Sprintf("%s is not released on the path %s at %s",
				a.Desc, exitPhrase(kind), shortPos(exit))
		},
		GoNoDeferf: func(r RelOp) string {
			return fmt.Sprintf("admission token received from %s outside a defer: a panic in this goroutine leaks the slot",
				r.Key.Text)
		},
	}
	runPaired(pass, spec)
}
