// Package ctxpool is a golden fixture for the ctxpool analyzer: a
// parallel.Run / RunChunks launch whose error is discarded treats a
// partially-executed join as complete.
package ctxpool

import "spatialjoin/internal/parallel"

func launchAndForget(n int) {
	parallel.Run(0, n, func(int) error { return nil }) // want "discarded error from parallel.Run"
}

func chunksBlankError(n int) {
	_, _ = parallel.RunChunks(0, n, func(int, int, int) error { return nil }) // want "discarded error from parallel.RunChunks"
}

// checked is the approved pattern.
func checked(n int) error {
	return parallel.Run(0, n, func(int) error { return nil })
}

// chunksChecked keeps both results.
func chunksChecked(n int) ([]parallel.Chunk, error) {
	return parallel.RunChunks(0, n, func(int, int, int) error { return nil })
}

func suppressed(n int) {
	//sjlint:ignore ctxpool fire-and-forget demo workload
	parallel.Run(0, n, func(int) error { return nil })
}
