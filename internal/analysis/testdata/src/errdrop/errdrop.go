// Package errdrop is a golden fixture for the errdrop analyzer: errors
// from storage and buffer-pool operations must be checked, since the
// success path mutates pin counts and I/O counters.
package errdrop

import "spatialjoin/internal/storage"

func dropStatement(bp *storage.BufferPool, id storage.PageID) {
	bp.Unpin(id) // want "unchecked error from storage operation Unpin"
}

func dropDeferred(bp *storage.BufferPool) {
	defer bp.Flush() // want "unchecked error from storage operation Flush"
}

func dropBlankAssign(bp *storage.BufferPool, id storage.PageID) *storage.Page {
	p, _ := bp.Fetch(id) // want "unchecked error from storage operation Fetch"
	return p
}

// checked is the approved pattern.
func checked(bp *storage.BufferPool, id storage.PageID) error {
	if _, err := bp.Fetch(id); err != nil {
		return err
	}
	return bp.Flush()
}

func suppressed(bp *storage.BufferPool, id storage.PageID) {
	//sjlint:ignore errdrop best-effort unpin on a teardown path
	bp.Unpin(id)
}
