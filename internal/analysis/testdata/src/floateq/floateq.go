// Package floateq is a golden fixture for the floateq analyzer: raw
// ==/!= on float values (and on structs of floats, like geom.Point) must
// go through geom's approved comparison helpers.
package floateq

import "spatialjoin/internal/geom"

func rawFloatEq(a, b float64) bool {
	return a == b // want "raw float equality"
}

func rawPointNeq(p, q geom.Point) bool {
	return p != q // want "raw float equality"
}

func rawRectEq(a, b geom.Rect) bool {
	return a == b // want "raw float equality"
}

// viaHelpers is the approved pattern: semantics are named at the call site.
func viaHelpers(a, b float64, p, q geom.Point) bool {
	return geom.ApproxEqual(a, b) || geom.SamePoint(p, q) || geom.SameCoord(a, 0)
}

// intEq is fine: integer equality is exact.
func intEq(a, b int) bool { return a == b }

// constFold is fine: fully constant comparisons carry no rounding hazard.
func constFold() bool { return 1.5 == 3.0/2 }

func suppressed(x float64) bool {
	return x == 0 //sjlint:ignore floateq documented sentinel check
}
