// Package join is a golden fixture for the joinalloc analyzer: geometry
// allocations and observability calls inside nested join loops multiply
// per candidate pair, so they must live at loop or level boundaries.
package join

import (
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
)

// nestedAppend grows a geometry buffer once per candidate pair.
func nestedAppend(rs, ss []geom.Rect) []geom.Rect {
	var hits []geom.Rect
	for _, r := range rs {
		for _, s := range ss {
			if r.Intersects(s) {
				hits = append(hits, s) // want "append of geometry values"
			}
		}
	}
	return hits
}

// nestedMakeAndEscape allocates scratch geometry per pair, twice over.
func nestedMakeAndEscape(rs, ss []geom.Rect, sink func(*geom.Rect, []geom.Point)) {
	for range rs {
		for _, s := range ss {
			pts := make([]geom.Point, 0, 4)     // want "make of geometry storage"
			sink(&geom.Rect{MinX: s.MinX}, pts) // want "heap-escaping geometry literal"
		}
	}
}

// nestedLiterals exercises the slice-literal and new shapes.
func nestedLiterals(rs, ss []geom.Rect, sink func(geom.Polygon, *geom.Point)) {
	for range rs {
		for range ss {
			pg := geom.Polygon{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}} // want "geometry slice literal"
			sink(pg, new(geom.Point))                                    // want "new of geometry"
		}
	}
}

// nestedTracing calls the observability layer per pair: the nil-trace
// fast path is only free when the hooks sit at level boundaries.
func nestedTracing(tr *obs.Trace, sp obs.SpanID, rs, ss []geom.Rect) {
	for _, r := range rs {
		for _, s := range ss {
			if r.Intersects(s) {
				tr.Annotate(sp, obs.Int("pair", 1)) // want "observability call obs.Annotate" "observability call obs.Int"
			}
		}
	}
}

// nestedRecorder emits a flight-recorder event per candidate pair: the
// ring is wait-free, but a per-pair event floods its fixed capacity and
// evicts the sparse events a post-incident dump actually needs.
func nestedRecorder(rec *obs.Recorder, rs, ss []geom.Rect) {
	for _, r := range rs {
		for _, s := range ss {
			if r.Intersects(s) {
				obs.Record(obs.RecFaultRetry, obs.RecCodeRead, 0, 0, 0) // want "flight-recorder emission obs.Record"
				rec.Record(obs.RecFaultRetry, obs.RecCodeRead, 0, 0, 0) // want "flight-recorder emission obs.Record"
			}
		}
	}
}

// levelRecorder is the approved recorder pattern: one event per level,
// at loop depth one where its cost amortizes over the whole frontier.
func levelRecorder(rs, ss []geom.Rect) {
	for range rs {
		obs.Record(obs.RecQueryStart, obs.RecCodeJoin, 0, 0, 0)
		for range ss {
		}
	}
}

// outerLoopBuffer is the approved pattern: the buffer grows at loop depth
// one, and a value-typed geometry literal is a stack value at any depth.
func outerLoopBuffer(rs, ss []geom.Rect) []geom.Rect {
	out := make([]geom.Rect, 0, len(rs))
	for _, r := range rs {
		out = append(out, geom.Rect{MinX: r.MinX})
		for _, s := range ss {
			_ = geom.Rect{MinX: r.MinX, MaxX: s.MaxX}
		}
	}
	return out
}

// workerReset shows a function literal restarting the nesting count: the
// pool worker's own single loop is an outer loop again.
func workerReset(rs []geom.Rect, spawn func(func() []geom.Rect)) {
	for range rs {
		for range rs {
			spawn(func() []geom.Rect {
				var local []geom.Rect
				for _, r := range rs {
					local = append(local, r)
				}
				return local
			})
		}
	}
}

// suppressed documents the escape hatch for a justified inner-loop copy.
func suppressed(rs, ss []geom.Rect) []geom.Rect {
	var hits []geom.Rect
	for range rs {
		for _, s := range ss {
			//sjlint:ignore joinalloc result buffer, amortized by growth policy
			hits = append(hits, s)
		}
	}
	return hits
}
