// Package semrelease is the golden fixture for the semrelease analyzer:
// admission tokens leaked on early returns after a select acquire are
// flagged, as is a goroutine that releases its token outside a defer;
// branch-balanced releases, shed-on-timeout selects, and defer-released
// goroutine handoffs stay silent.
package semrelease

type server struct {
	admit chan struct{}
}

func work() {}

// leakPlain takes a token and returns without releasing on one path.
func (s *server) leakPlain(n int) {
	s.admit <- struct{}{} // want "is not released on the path"
	if n > 0 {
		return
	}
	<-s.admit
}

// leakOnShed acquires in a select case, then forgets the release on the
// rejection path.
func (s *server) leakOnShed(ok bool) {
	select {
	case s.admit <- struct{}{}: // want "is not released on the path"
	default:
		return
	}
	if !ok {
		return
	}
	<-s.admit
}

// unsafeHandoff releases in the spawned goroutine, but not under a defer:
// a panic in work leaks the slot.
func (s *server) unsafeHandoff() {
	s.admit <- struct{}{}
	go func() {
		work()
		<-s.admit // want "outside a defer"
	}()
}

// cleanBalanced releases the token on both outcomes.
func (s *server) cleanBalanced(ok bool) {
	select {
	case s.admit <- struct{}{}:
	default:
		return
	}
	if !ok {
		<-s.admit
		return
	}
	<-s.admit
}

// cleanShedOnTimeout only owes a release on the branch that acquired.
func (s *server) cleanShedOnTimeout(timeout <-chan struct{}) bool {
	select {
	case s.admit <- struct{}{}:
	case <-timeout:
		return false
	}
	<-s.admit
	return true
}

// cleanHandoff hands the token to the query goroutine, which releases it
// under a defer — panic-safe.
func (s *server) cleanHandoff() {
	s.admit <- struct{}{}
	go func() {
		defer func() { <-s.admit }()
		work()
	}()
}

// suppressed documents a deliberate long-held token with a justification.
func (s *server) suppressed() {
	//sjlint:ignore semrelease slot is pinned for the session lifetime, released on Close
	s.admit <- struct{}{}
}
