// Package atomiccounter is a golden fixture for the atomiccounter
// analyzer: fields documented as atomic must never be read or written
// plainly, because mixing atomic and plain access is a data race.
package atomiccounter

import "sync/atomic"

type counters struct {
	hits atomic.Int64
	raw  int64 //sjlint:atomic updated concurrently via sync/atomic only
}

// allAtomic is the approved access pattern for both field classes.
func allAtomic(c *counters) int64 {
	c.hits.Add(1)
	atomic.AddInt64(&c.raw, 1)
	return c.hits.Load() + atomic.LoadInt64(&c.raw)
}

func copyAtomicField(c *counters) int64 {
	v := c.hits // want "plain use of atomic field hits"
	return v.Load()
}

func aliasAtomicField(c *counters) *atomic.Int64 {
	return &c.hits // want "plain use of atomic field hits"
}

func plainReadMarked(c *counters) int64 {
	return c.raw // want "plain access to field raw documented as atomic"
}

func plainWriteMarked(c *counters) {
	c.raw = 0 // want "plain access to field raw documented as atomic"
}
