// Package txnatomic is the golden fixture for the txnatomic analyzer:
// transactions begun but not committed or aborted on some path are
// flagged; branch-balanced commit/abort forms and abort-on-error shapes
// stay silent.
package txnatomic

import "spatialjoin/internal/wal"

// leakOnEarlyReturn forgets to close the transaction on the shortcut path.
func leakOnEarlyReturn(lg *wal.Log, txn uint64, shortcut bool) error {
	lg.Begin(txn) // want "is not closed by Commit or Abort"
	if shortcut {
		return nil
	}
	_, err := lg.Commit(txn)
	return err
}

// leakOnError begins, then bails on the mutation error without aborting —
// the begin record dangles and recovery discards the transaction silently.
func leakOnError(lg *wal.Log, txn uint64, mutate func() error) error {
	lg.Begin(txn) // want "is not closed by Commit or Abort"
	if err := mutate(); err != nil {
		return err
	}
	_, err := lg.Commit(txn)
	return err
}

// leakOnBreak exits the batch loop with the current transaction open.
func leakOnBreak(lg *wal.Log, txns []uint64, stop func(uint64) bool) error {
	for _, txn := range txns {
		lg.Begin(txn) // want "is not closed by Commit or Abort"
		if stop(txn) {
			break
		}
		if _, err := lg.Commit(txn); err != nil {
			return err
		}
	}
	return nil
}

// leakOnPanic holds the open transaction across a statement that can only
// panic out.
func leakOnPanic(lg *wal.Log, txn uint64, n int) {
	lg.Begin(txn) // want "is not closed by Commit or Abort"
	if n < 0 {
		panic("negative batch size")
	}
	_, _ = lg.Commit(txn)
}

// leakWrongTxn closes a different transaction than it began.
func leakWrongTxn(lg *wal.Log, txn, other uint64) {
	lg.Begin(txn) // want "is not closed by Commit or Abort"
	_, _ = lg.Commit(other)
}

// cleanCommitOrAbort is the approved shape: every outcome closes the
// transaction — abort on the mutation error, commit on success.
func cleanCommitOrAbort(lg *wal.Log, txn uint64, mutate func() error) error {
	lg.Begin(txn)
	if err := mutate(); err != nil {
		lg.Abort(txn)
		return err
	}
	_, err := lg.Commit(txn)
	return err
}

// cleanBranches closes the transaction manually on every branch.
func cleanBranches(lg *wal.Log, txn uint64, fast bool) error {
	lg.Begin(txn)
	if fast {
		lg.Abort(txn)
		return nil
	}
	_, err := lg.Commit(txn)
	return err
}

// cleanLoop commits every iteration's transaction before the next begin.
func cleanLoop(lg *wal.Log, txns []uint64) error {
	for _, txn := range txns {
		lg.Begin(txn)
		if _, err := lg.Commit(txn); err != nil {
			return err
		}
	}
	return nil
}

// suppressed documents a deliberately dangling begin with the required
// justification.
func suppressed(lg *wal.Log, txn uint64) {
	//sjlint:ignore txnatomic recovery-harness fixture leaves the txn open to exercise discard counting
	lg.Begin(txn)
}
