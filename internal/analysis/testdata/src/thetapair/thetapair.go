// Package pred is the thetapair fixture: a miniature operator package with
// deliberately broken Table 1 pairings. The analyzer gates on the package
// name, so this fixture is named pred like the real operator package.
package pred

// Spatial and Rect stand in for the geom types; the pairing check keys on
// method shapes, not on the concrete geometry package.
type Spatial interface{ Bounds() Rect }

type Rect struct{ MinX, MinY, MaxX, MaxY float64 }

// Operator mirrors the real package's interface.
type Operator interface {
	Name() string
	Eval(a, b Spatial) bool
	Filter(a, b Rect) bool
}

// Good is a complete, registered operator: no findings.
type Good struct{}

func (Good) Name() string           { return "good" }
func (Good) Eval(a, b Spatial) bool { return true }
func (Good) Filter(a, b Rect) bool  { return true }

// MissingFilter declares the exact predicate but no MBR filter.
type MissingFilter struct{} // want "declares Eval but no Θ-filter"

func (MissingFilter) Name() string           { return "missing_filter" }
func (MissingFilter) Eval(a, b Spatial) bool { return true }

// OrphanFilter declares an MBR filter with no exact predicate behind it.
type OrphanFilter struct{} // want "no θ-operator Eval"

func (OrphanFilter) Name() string          { return "orphan_filter" }
func (OrphanFilter) Filter(a, b Rect) bool { return true }

// NoName is a complete pair without a stable identifier; it also cannot be
// registered, since it does not satisfy Operator.
type NoName struct{} // want "declares no Name" "not registered"

func (NoName) Eval(a, b Spatial) bool { return true }
func (NoName) Filter(a, b Rect) bool  { return true }

// Unregistered is a complete operator that no registry returns.
type Unregistered struct{} // want "not registered in any package-level registry"

func (Unregistered) Name() string           { return "unregistered" }
func (Unregistered) Eval(a, b Spatial) bool { return true }
func (Unregistered) Filter(a, b Rect) bool  { return true }

// Table1 is the registry; only Good is registered.
func Table1() []Operator {
	return []Operator{Good{}}
}
