// Package pinunpin is the golden fixture for the pinunpin analyzer: pins
// leaked on error returns, breaks, and panics are flagged; defer-based and
// branch-balanced forms, returned handles, and nested pin counting stay
// silent.
package pinunpin

import "spatialjoin/internal/storage"

// leakOnEarlyReturn forgets the unpin on the shortcut path.
func leakOnEarlyReturn(bp *storage.BufferPool, id storage.PageID, shortcut bool) error {
	p, err := bp.Pin(id) // want "is not matched by Unpin"
	if err != nil {
		return err
	}
	if shortcut {
		return nil
	}
	_ = p.Bytes()
	return bp.Unpin(id)
}

// leakOnBreak exits the scan loop with the current page still pinned.
func leakOnBreak(bp *storage.BufferPool, ids []storage.PageID) error {
	for _, id := range ids {
		p, err := bp.Pin(id) // want "is not matched by Unpin"
		if err != nil {
			return err
		}
		if p.Bytes()[0] == 0 {
			break
		}
		if err := bp.Unpin(id); err != nil {
			return err
		}
	}
	return nil
}

// leakOnPanic holds the pin across a statement that can only panic out.
func leakOnPanic(bp *storage.BufferPool, id storage.PageID, n int) {
	p, err := bp.Pin(id) // want "is not matched by Unpin"
	if err != nil {
		return
	}
	if n < 0 {
		panic("negative fanout")
	}
	_ = p
	_ = bp.Unpin(id)
}

// leakDoubled pins twice but unpins once: the count must drain to zero.
func leakDoubled(bp *storage.BufferPool, id storage.PageID) {
	bp.Pin(id) // want "is not matched by Unpin"
	bp.Pin(id)
	_ = bp.Unpin(id)
}

// cleanDefer is the approved shape: unpin registered before any branching.
func cleanDefer(bp *storage.BufferPool, id storage.PageID) (byte, error) {
	p, err := bp.Pin(id)
	if err != nil {
		return 0, err
	}
	defer func() { _ = bp.Unpin(id) }()
	return p.Bytes()[0], nil
}

// cleanBranches unpins manually on every outcome.
func cleanBranches(bp *storage.BufferPool, id storage.PageID, fast bool) error {
	p, err := bp.Pin(id)
	if err != nil {
		return err
	}
	if fast {
		_ = p
		return bp.Unpin(id)
	}
	_ = p.Bytes()
	return bp.Unpin(id)
}

// cleanTransfer hands the pinned page to the caller, who owns the unpin.
func cleanTransfer(bp *storage.BufferPool, id storage.PageID) (*storage.Page, error) {
	p, err := bp.Pin(id)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// cleanDoubled drains a double pin with a matching pair of unpins.
func cleanDoubled(bp *storage.BufferPool, id storage.PageID) {
	bp.Pin(id)
	bp.Pin(id)
	_ = bp.Unpin(id)
	_ = bp.Unpin(id)
}

// suppressed documents a deliberate wedge with the required justification.
func suppressed(bp *storage.BufferPool, id storage.PageID) error {
	//sjlint:ignore pinunpin pin is held on purpose to wedge the frame for eviction coverage
	_, err := bp.Pin(id)
	return err
}
