// Package rawdisk is a golden fixture for the rawdisk analyzer: physical
// page I/O is only legal inside internal/storage, where the BufferPool
// counts it.
package rawdisk

import "spatialjoin/internal/storage"

func readRaw(d *storage.Disk, id storage.PageID) ([]byte, error) {
	return d.ReadPage(id) // want "raw storage.Disk.ReadPage bypasses BufferPool"
}

func writeRaw(d *storage.Disk, id storage.PageID, buf []byte) error {
	return d.WritePage(id, buf) // want "raw storage.Disk.WritePage bypasses BufferPool"
}

// mediated is the approved path: every access goes through the pool.
func mediated(bp *storage.BufferPool, id storage.PageID) error {
	_, err := bp.Fetch(id)
	return err
}

// allocOnly is fine: allocation is not a counted transfer.
func allocOnly(d *storage.Disk, f storage.FileID) (storage.PageID, error) {
	return d.AllocPage(f)
}

func suppressed(d *storage.Disk, id storage.PageID) ([]byte, error) {
	//sjlint:ignore rawdisk fixture demonstrates suppression syntax
	return d.ReadPage(id)
}
