// Package rawdisk is a golden fixture for the rawdisk analyzer: physical
// page I/O is only legal inside internal/storage, where the BufferPool
// counts it.
package rawdisk

import (
	"spatialjoin/internal/fault"
	"spatialjoin/internal/storage"
)

func readRaw(d *storage.Disk, id storage.PageID) ([]byte, error) {
	return d.ReadPage(id) // want "raw storage.Disk.ReadPage bypasses BufferPool"
}

func writeRaw(d *storage.Disk, id storage.PageID, buf []byte) error {
	return d.WritePage(id, buf) // want "raw storage.Disk.WritePage bypasses BufferPool"
}

// mediated is the approved path: every access goes through the pool.
func mediated(bp *storage.BufferPool, id storage.PageID) error {
	_, err := bp.Fetch(id)
	return err
}

// allocOnly is fine: allocation is not a counted transfer.
func allocOnly(d *storage.Disk, f storage.FileID) (storage.PageID, error) {
	return d.AllocPage(f)
}

func suppressed(d *storage.Disk, id storage.PageID) ([]byte, error) {
	//sjlint:ignore rawdisk fixture demonstrates suppression syntax
	return d.ReadPage(id)
}

// readThroughInterface is just as raw: hiding the device behind the Device
// interface must not defeat the accounting invariant.
func readThroughInterface(dev storage.Device, id storage.PageID) ([]byte, error) {
	return dev.ReadPage(id) // want "raw storage.Device.ReadPage bypasses BufferPool"
}

// writeFaultDisk hits the fault-injecting wrapper directly, skipping the
// pool's retry policy and checksum verification along with the counters.
func writeFaultDisk(d *fault.Disk, id storage.PageID, buf []byte) error {
	return d.WritePage(id, buf) // want "raw fault.Disk.WritePage bypasses BufferPool"
}

// interfaceAccounting is fine: Stats and NumPages transfer no pages.
func interfaceAccounting(dev storage.Device, f storage.FileID) (int, storage.DiskStats) {
	return dev.NumPages(f), dev.Stats()
}
