// Package streamclose is the golden fixture for the streamclose analyzer:
// replication streams abandoned on error returns, merges, and panics are
// flagged, as is an open whose handle is discarded; defer-closed streams,
// error-guarded opens, branch-balanced closes, returned streams, and
// streams delegated to helpers stay silent.
package streamclose

import (
	"errors"

	"spatialjoin/internal/repl"
	"spatialjoin/internal/wal"
	"spatialjoin/internal/wire"
)

var errBudget = errors.New("chunk budget exhausted")

// leakOnError forgets to close the tail stream on the budget error path.
func leakOnError(src *repl.Source, from wal.LSN, budget int) error {
	t, err := src.OpenTail(from) // want "is not closed on the path"
	if err != nil {
		return err
	}
	if budget == 0 {
		return errBudget
	}
	_, err = t.Next(budget)
	t.Close()
	return err
}

// leakOnPanic abandons the snapshot stream — and its encoding goroutine —
// when the size check panics.
func leakOnPanic(src *repl.Source, since wal.LSN, max int) {
	st, err := src.OpenSnap(since) // want "is not closed on the path"
	if err != nil {
		return
	}
	if max <= 0 {
		panic(errBudget)
	}
	st.Close()
}

// leakBranch closes the stream on only one arm of the merge.
func leakBranch(src *repl.Source, from wal.LSN, done bool) {
	t, err := src.OpenTail(from) // want "is not closed on the path"
	if err != nil {
		return
	}
	if done {
		t.Close()
	}
}

// leakDiscarded drops the handle outright: no Close can ever reach it.
func leakDiscarded(src *repl.Source, since wal.LSN) error {
	_, err := src.OpenSnap(since) // want "handle discarded"
	return err
}

// cleanDefer closes the stream on every outcome.
func cleanDefer(src *repl.Source, from wal.LSN) (wire.WALChunk, error) {
	t, err := src.OpenTail(from)
	if err != nil {
		return wire.WALChunk{}, err
	}
	defer t.Close()
	return t.Next(1 << 16)
}

// cleanBranches closes the stream manually on each outcome.
func cleanBranches(src *repl.Source, since wal.LSN) (bool, error) {
	st, err := src.OpenSnap(since)
	if err != nil {
		return false, err
	}
	if _, err := st.Next(1 << 16); err != nil {
		st.Close()
		return st.Full, err
	}
	st.Close()
	return st.Full, nil
}

// cleanTransfer returns the open stream: the caller owns closing it.
func cleanTransfer(src *repl.Source, from wal.LSN) (*repl.TailStream, error) {
	t, err := src.OpenTail(from)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// cleanDelegated hands the stream to a helper that owns closing it.
func cleanDelegated(src *repl.Source, since wal.LSN) error {
	st, err := src.OpenSnap(since)
	if err != nil {
		return err
	}
	return drain(st)
}

func drain(st *repl.SnapStream) error {
	defer st.Close()
	for {
		if _, err := st.Next(1 << 16); err != nil {
			return err
		}
	}
}
