// Command statsreset is a golden fixture for the statsreset analyzer:
// experiment code (package main) must open a measurement window — flush
// pending write-backs and/or zero the counters — before snapshotting I/O
// statistics, or the figures include work from before the measurement.
package main

import (
	"fmt"

	"spatialjoin/internal/storage"
)

func main() {}

// badWarmCounters snapshots whatever accumulated since startup: index
// builds, warm-up scans, everything.
func badWarmCounters(bp *storage.BufferPool) {
	fmt.Println(bp.Stats()) // want "Stats() snapshot without a preceding"
}

// badOrder resets only after reading — the snapshot still covers the
// unmeasured past.
func badOrder(bp *storage.BufferPool) storage.PoolStats {
	s := bp.Stats() // want "Stats() snapshot without a preceding"
	bp.ResetStats()
	return s
}

// badDeviceCounters has the same bug one layer down.
func badDeviceCounters(d *storage.Disk) storage.DiskStats {
	return d.Stats() // want "Stats() snapshot without a preceding"
}

// goodColdMeasurement is the approved shape: drop the cache (which flushes),
// zero the counters, run the measured work, then snapshot.
func goodColdMeasurement(bp *storage.BufferPool, id storage.PageID) (storage.PoolStats, error) {
	if err := bp.DropAll(); err != nil {
		return storage.PoolStats{}, err
	}
	bp.ResetStats()
	if _, err := bp.Fetch(id); err != nil {
		return storage.PoolStats{}, err
	}
	return bp.Stats(), nil
}

// goodFlushFirst covers the write-back variant: a Flush before the snapshot
// is enough to open the window.
func goodFlushFirst(bp *storage.BufferPool, d *storage.Disk) (storage.PoolStats, storage.DiskStats, error) {
	if err := bp.Flush(); err != nil {
		return storage.PoolStats{}, storage.DiskStats{}, err
	}
	return bp.Stats(), d.Stats(), nil
}

// suppressedWarmSnapshot shows the escape hatch for intentional warm-cache
// measurements.
func suppressedWarmSnapshot(bp *storage.BufferPool) storage.PoolStats {
	//sjlint:ignore statsreset warm-cache hit ratio is the measurement here
	return bp.Stats()
}
