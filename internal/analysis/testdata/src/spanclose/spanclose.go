// Package spanclose is the golden fixture for the spanclose analyzer:
// spans abandoned on error returns, merges, and panics are flagged, as is
// a Begin whose result is discarded; defer-closed spans, branch-balanced
// ends, returned spans, and spans delegated to helpers stay silent.
package spanclose

import (
	"errors"
	"spatialjoin/internal/obs"
)

var errTooDeep = errors.New("too deep")

// leakOnError forgets to end the span on the error path.
func leakOnError(tr *obs.Trace, parent obs.SpanID, fail bool) error {
	span := tr.Begin(parent, "probe") // want "is not ended on the path"
	if fail {
		return errTooDeep
	}
	tr.End(span)
	return nil
}

// leakOnPanic abandons the span when the depth check panics.
func leakOnPanic(tr *obs.Trace, parent obs.SpanID, depth int) {
	span := tr.Begin(parent, "descend") // want "is not ended on the path"
	if depth > 64 {
		panic(errTooDeep)
	}
	tr.End(span)
}

// leakNested ends the inner span on only one side of the branch.
func leakNested(tr *obs.Trace, parent obs.SpanID, ok bool) {
	outer := tr.Begin(parent, "outer")
	inner := tr.Begin(outer, "inner") // want "is not ended on the path"
	if ok {
		tr.End(inner)
	}
	tr.End(outer)
}

// leakDiscarded drops the span id outright: no End can ever reach it.
func leakDiscarded(tr *obs.Trace, parent obs.SpanID) {
	tr.Begin(parent, "orphan") // want "result discarded"
}

// cleanDefer ends the span in a deferred closure on every outcome.
func cleanDefer(tr *obs.Trace, parent obs.SpanID, work func() error) error {
	span := tr.Begin(parent, "step")
	defer func() { tr.End(span) }()
	return work()
}

// cleanBranches ends the span manually on each outcome with attributes.
func cleanBranches(tr *obs.Trace, parent obs.SpanID, n int) int {
	span := tr.Begin(parent, "clamp")
	if n < 0 {
		tr.End(span, obs.Str("outcome", "clamped"))
		return 0
	}
	tr.End(span, obs.Int("n", int64(n)))
	return n
}

// cleanTransfer returns the open span: the caller owns ending it.
func cleanTransfer(tr *obs.Trace, parent obs.SpanID) obs.SpanID {
	span := tr.Begin(parent, "handed")
	return span
}

// cleanDelegated hands the span to a helper that owns ending it.
func cleanDelegated(tr *obs.Trace, parent obs.SpanID) {
	span := tr.Begin(parent, "delegated")
	finish(tr, span)
}

func finish(tr *obs.Trace, span obs.SpanID) { tr.End(span) }

// suppressed documents a span deliberately left open with a justification.
func suppressed(tr *obs.Trace, parent obs.SpanID) {
	//sjlint:ignore spanclose root span stays open for the process lifetime by design
	tr.Begin(parent, "root")
}
