// Package lockbalance is the golden fixture for the lockbalance analyzer:
// locks leaked on early returns and labeled breaks, double-locks, and
// unlocks of an unlocked mutex are flagged; deferred and branch-balanced
// manual forms stay silent, and read locks pair independently of write
// locks on the same RWMutex.
package lockbalance

import (
	"errors"
	"sync"
)

// leakOnEarlyReturn forgets the unlock on the error path.
func leakOnEarlyReturn(mu *sync.Mutex, bad bool) error {
	mu.Lock() // want "is not released on the path"
	if bad {
		return errors.New("bad")
	}
	mu.Unlock()
	return nil
}

// leakOnLabeledBreak jumps two loops out with the lock still held.
func leakOnLabeledBreak(mu *sync.Mutex, xs []int) {
outer:
	for _, x := range xs {
		for _, y := range xs {
			mu.Lock() // want "is not released on the path"
			if x == y {
				break outer
			}
			mu.Unlock()
		}
	}
}

// doubleLock re-locks a mutex already held on the same path.
func doubleLock(mu *sync.Mutex) {
	mu.Lock()
	mu.Lock() // want "self-deadlock"
	mu.Unlock()
}

// leakReadLock loses the read lock on the early return.
func leakReadLock(mu *sync.RWMutex, bad bool) int {
	mu.RLock() // want "is not released on the path"
	if bad {
		return 0
	}
	mu.RUnlock()
	return 1
}

// unlockWithoutLock releases a mutex no path ever locked.
func unlockWithoutLock(mu *sync.Mutex, ready bool) {
	if ready {
		mu.Unlock() // want "without a matching Lock"
	}
}

// cleanDefer is the canonical form.
func cleanDefer(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// cleanManual balances the fast path and the slow path by hand.
func cleanManual(mu *sync.Mutex, fast bool) {
	mu.Lock()
	if fast {
		mu.Unlock()
		return
	}
	mu.Unlock()
}

// cleanLoop locks and unlocks within each iteration.
func cleanLoop(mu *sync.Mutex, n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		mu.Unlock()
	}
}

// cleanRW pairs the read lock and the write lock independently.
func cleanRW(mu *sync.RWMutex) {
	mu.RLock()
	mu.RUnlock()
	mu.Lock()
	mu.Unlock()
}

// suppressed documents a deliberate lock handoff with its justification.
func suppressed(mu *sync.Mutex) {
	//sjlint:ignore lockbalance lock is handed to the caller and released by its cleanup hook
	mu.Lock()
}
