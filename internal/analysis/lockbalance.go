package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// LockBalance checks manual sync.Mutex / sync.RWMutex usage where the
// `defer mu.Unlock()` idiom is not used: every Lock (RLock) must reach its
// Unlock (RUnlock) on every path out of the function, a second Lock of a
// mutex already held on the path is a self-deadlock, and an Unlock on a
// path that never locked is an unlock-of-unlocked panic waiting for its
// schedule. Deferred unlocks are modeled as exit-edge actions, so the
// mixed form — manual unlock on the fast path, defer for the rest — is
// analyzed faithfully rather than exempted.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "manual Lock/Unlock must balance on every path; no double-lock",
	Run:  runLockBalance,
}

// lockKey builds the resource key of one mutex operation: the receiver's
// canonical text, with a read-lock marker so RLock/RUnlock pair
// independently of Lock/Unlock on the same RWMutex.
func lockKey(recv ast.Expr, read bool) ResKey {
	k := exprText(recv)
	if read {
		k += "|R"
	}
	return ResKey{Text: k}
}

// mutexCall matches a call to one of sync's lock-discipline methods and
// classifies it.
func mutexCall(pass *Pass, n ast.Node) (recv ast.Expr, name string, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return nil, "", false
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	if !isMethodOf(fn, "sync", "Mutex", fn.Name()) && !isMethodOf(fn, "sync", "RWMutex", fn.Name()) {
		return nil, "", false
	}
	recv = callRecv(call)
	if recv == nil {
		return nil, "", false
	}
	return recv, fn.Name(), true
}

func runLockBalance(pass *Pass) {
	spec := &PairSpec{
		ReportDoubleAcquire:    true,
		ReportUnmatchedRelease: true,
		Acquires: func(pass *Pass, stmt ast.Stmt) []AcqOp {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				return nil
			}
			recv, name, ok := mutexCall(pass, ast.Unparen(es.X))
			if !ok || !strings.HasSuffix(name, "Lock") || strings.Contains(name, "Unlock") {
				return nil
			}
			return []AcqOp{{
				Key:  lockKey(recv, name == "RLock"),
				Pos:  es.Pos(),
				Desc: fmt.Sprintf("%s.%s()", exprText(recv), name),
			}}
		},
		Releases: func(pass *Pass, n ast.Node) []RelOp {
			recv, name, ok := mutexCall(pass, n)
			if !ok || !strings.Contains(name, "Unlock") {
				return nil
			}
			return []RelOp{{Key: lockKey(recv, name == "RUnlock"), Pos: n.Pos()}}
		},
		Leakf: func(a AcqOp, kind EdgeKind, exit token.Position) string {
			return fmt.Sprintf("%s is not released on the path %s at %s",
				a.Desc, exitPhrase(kind), shortPos(exit))
		},
		Doublef: func(a AcqOp) string {
			return fmt.Sprintf("%s while the mutex is already held on this path (self-deadlock)", a.Desc)
		},
		Unmatchedf: func(r RelOp) string {
			txt, unlock, lock := r.Key.Text, "Unlock", "Lock"
			if rest, ok := strings.CutSuffix(txt, "|R"); ok {
				txt, unlock, lock = rest, "RUnlock", "RLock"
			}
			return fmt.Sprintf("%s.%s() without a matching %s on any path through this function",
				txt, unlock, lock)
		},
	}
	runPaired(pass, spec)
}
