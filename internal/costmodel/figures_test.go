package costmodel

import (
	"math"
	"testing"
)

func TestLogSpace(t *testing.T) {
	ps, err := LogSpace(1e-4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1e-4, 1e-3, 1e-2, 1e-1, 1}
	for i := range want {
		if math.Abs(ps[i]-want[i])/want[i] > 1e-9 {
			t.Fatalf("LogSpace[%d] = %g, want %g", i, ps[i], want[i])
		}
	}
	if _, err := LogSpace(0, 1, 5); err == nil {
		t.Error("lo=0 must fail")
	}
	if _, err := LogSpace(1, 1, 5); err == nil {
		t.Error("lo=hi must fail")
	}
	if _, err := LogSpace(1, 2, 1); err == nil {
		t.Error("n=1 must fail")
	}
}

func TestSelectFigureSeries(t *testing.T) {
	ps, _ := LogSpace(1e-4, 1, 9)
	series, err := SelectFigure(PaperParams(), Uniform, ps, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"C_I", "C_IIa", "C_IIb", "C_III", "U_IIa", "U_IIb", "U_III"}
	if len(series) != len(wantNames) {
		t.Fatalf("series count = %d", len(series))
	}
	for i, name := range wantNames {
		if series[i].Name != name {
			t.Fatalf("series %d = %q, want %q", i, series[i].Name, name)
		}
		if len(series[i].X) != 9 || len(series[i].Y) != 9 {
			t.Fatalf("series %q wrong length", name)
		}
		for _, y := range series[i].Y {
			if y < 0 || math.IsNaN(y) || math.IsInf(y, 0) {
				t.Fatalf("series %q has bad value %g", name, y)
			}
		}
	}
	// Update-cost series are flat.
	for _, name := range []string{"U_IIa", "U_IIb", "U_III"} {
		s, _ := SeriesByName(series, name)
		for _, y := range s.Y {
			if y != s.Y[0] {
				t.Fatalf("%s must be flat in p", name)
			}
		}
	}
}

func TestJoinFigureSeries(t *testing.T) {
	ps, _ := LogSpace(1e-10, 1e-2, 9)
	for _, d := range Distributions() {
		series, err := JoinFigure(PaperParams(), d, ps)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != 4 {
			t.Fatalf("%v: series count = %d", d, len(series))
		}
		di, _ := SeriesByName(series, "D_I")
		for _, y := range di.Y {
			if y != di.Y[0] {
				t.Fatalf("%v: D_I must be flat", d)
			}
		}
	}
}

func TestFig7Profiles(t *testing.T) {
	prm := PaperParams()
	prm.Nlevels = 3
	prm.K = 4
	prm.H = 3
	for _, d := range Distributions() {
		series, err := Fig7(prm, d, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != 4 { // levels 0..3
			t.Fatalf("%v: %d level series", d, len(series))
		}
		// Level 0 has a single node (the root).
		if len(series[0].X) != 1 {
			t.Fatalf("%v: root level has %d entries", d, len(series[0].X))
		}
		// Leaf level has k^n = 64 nodes.
		if len(series[3].X) != 64 {
			t.Fatalf("%v: leaf level has %d entries", d, len(series[3].X))
		}
		for _, s := range series {
			for _, y := range s.Y {
				if y < 0 || y > 1 {
					t.Fatalf("%v: ρ = %g out of [0,1]", d, y)
				}
			}
		}
	}
	// HI-LOC is the only distribution where ρ varies within a level
	// (locality): the profile for the leaf level must be non-constant.
	series, _ := Fig7(prm, HiLoc, 0.5)
	leaf := series[3]
	varies := false
	for _, y := range leaf.Y {
		if y != leaf.Y[0] {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("HI-LOC leaf profile must vary with distance from the leftmost leaf")
	}
	// And it must be non-increasing left to right in blocks: the very first
	// entry (the leftmost leaf itself) has ρ = 1, the last has the minimum.
	if leaf.Y[0] != 1 {
		t.Fatalf("ρ(o1, o1) = %g, want 1", leaf.Y[0])
	}
	if leaf.Y[len(leaf.Y)-1] >= leaf.Y[0] {
		t.Fatal("distant leaf must have lower ρ than the leftmost leaf itself")
	}
}

func TestFig7CapsHugeLevels(t *testing.T) {
	series, err := Fig7(PaperParams(), Uniform, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The paper tree's leaf level has 10^6 nodes; the sweep must be capped.
	last := series[len(series)-1]
	if len(last.X) > 1000 {
		t.Fatalf("leaf sweep not capped: %d entries", len(last.X))
	}
}

func TestCrossoverDetector(t *testing.T) {
	a := Series{Name: "a", X: []float64{1, 2, 3, 4}, Y: []float64{10, 10, 10, 10}}
	b := Series{Name: "b", X: []float64{1, 2, 3, 4}, Y: []float64{1, 5, 20, 40}}
	x, ok := Crossover(a, b)
	if !ok || x != 3 {
		t.Fatalf("crossover = %g, %t; want 3", x, ok)
	}
	c := Series{Name: "c", X: []float64{1, 2}, Y: []float64{1, 1}}
	d := Series{Name: "d", X: []float64{1, 2}, Y: []float64{2, 2}}
	if _, ok := Crossover(c, d); ok {
		t.Fatal("parallel curves must not cross")
	}
	if _, ok := Crossover(a, Series{X: []float64{1}, Y: []float64{1}}); ok {
		t.Fatal("mismatched series must not cross")
	}
}

func TestSeriesByName(t *testing.T) {
	ss := []Series{{Name: "x"}, {Name: "y"}}
	if _, ok := SeriesByName(ss, "y"); !ok {
		t.Fatal("existing series not found")
	}
	if _, ok := SeriesByName(ss, "z"); ok {
		t.Fatal("phantom series found")
	}
}
