package costmodel

import (
	"math"
	"math/rand"
	"testing"
)

func TestParamsDerived(t *testing.T) {
	prm := PaperParams()
	if err := prm.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 3's derived variables.
	if n := prm.N(); n != 1111111 {
		t.Fatalf("N = %g, want 1111111", n)
	}
	if m := prm.Mtuples(); m != 5 {
		t.Fatalf("m = %g, want 5", m)
	}
	if d := prm.D(); d != 4 {
		t.Fatalf("d = %g, want 4", d)
	}
	if p := prm.RelationPages(); p != 222223 {
		t.Fatalf("pages = %g, want 222223", p)
	}
	if c := prm.LevelCount(3); c != 1000 {
		t.Fatalf("k^3 = %g", c)
	}
}

func TestParamsValidateRejectsBadValues(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Nlevels = 0 },
		func(p *Params) { p.K = 1 },
		func(p *Params) { p.V = 0 },
		func(p *Params) { p.L = 1.5 },
		func(p *Params) { p.H = 99 },
		func(p *Params) { p.Z = 1 },
		func(p *Params) { p.M = 5 },
		func(p *Params) { p.CIO = -1 },
		func(p *Params) { p.V = 1e9 }, // m < 1
	}
	for i, mut := range mutations {
		prm := PaperParams()
		mut(&prm)
		if err := prm.Validate(); err == nil {
			t.Errorf("mutation %d must fail validation", i)
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	prm := PaperParams()
	if _, err := NewModel(prm, Uniform, -0.1); err == nil {
		t.Error("negative p must fail")
	}
	if _, err := NewModel(prm, Uniform, 1.1); err == nil {
		t.Error("p > 1 must fail")
	}
	if _, err := NewModel(prm, DistKind(9), 0.5); err == nil {
		t.Error("unknown distribution must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustModel must panic on bad input")
		}
	}()
	MustModel(prm, Uniform, 2)
}

func TestDistKindString(t *testing.T) {
	if Uniform.String() != "UNIFORM" || NoLoc.String() != "NO-LOC" || HiLoc.String() != "HI-LOC" {
		t.Fatal("distribution names wrong")
	}
	if DistKind(9).String() != "DistKind(9)" {
		t.Fatal("unknown kind string wrong")
	}
	if len(Distributions()) != 3 {
		t.Fatal("Distributions must list all three")
	}
}

func TestUniformPi(t *testing.T) {
	m := MustModel(PaperParams(), Uniform, 0.37)
	for i := 0; i <= 6; i++ {
		for j := 0; j <= 6; j++ {
			if m.Pi(i, j) != 0.37 {
				t.Fatalf("UNIFORM π_%d%d = %g", i, j, m.Pi(i, j))
			}
		}
		if m.Sigma(i) != 0.37 {
			t.Fatalf("UNIFORM σ_%d = %g", i, m.Sigma(i))
		}
	}
}

func TestNoLocPi(t *testing.T) {
	p := 0.5
	m := MustModel(PaperParams(), NoLoc, p)
	// π_ij = p^max(min(i,j),1).
	if got := m.Pi(0, 0); got != p {
		t.Fatalf("π_00 = %g, want p", got)
	}
	if got := m.Pi(0, 6); got != p {
		t.Fatalf("π_06 = %g, want p", got)
	}
	if got := m.Pi(3, 5); got != math.Pow(p, 3) {
		t.Fatalf("π_35 = %g, want p³", got)
	}
	if got := m.Sigma(0); got != p {
		t.Fatalf("σ_0 = %g", got)
	}
	if got := m.Sigma(4); got != math.Pow(p, 4) {
		t.Fatalf("σ_4 = %g", got)
	}
	// Larger objects (lower levels) are more likely to match.
	if m.Pi(1, 1) < m.Pi(5, 5) {
		t.Fatal("NO-LOC must favour low levels")
	}
}

func TestHiLocSigmaIsP(t *testing.T) {
	// The paper states σ_i = p for HI-LOC.
	m := MustModel(PaperParams(), HiLoc, 0.23)
	for i := 0; i <= 6; i++ {
		if got := m.Sigma(i); got != 0.23 {
			t.Fatalf("HI-LOC σ_%d = %g, want p", i, got)
		}
	}
}

func TestHiLocPiAgainstMonteCarlo(t *testing.T) {
	// Verify the closed-form π_ij against direct simulation of random node
	// pairs in a k-ary tree.
	prm := PaperParams()
	prm.Nlevels = 4
	prm.K = 3
	prm.H = 4
	p := 0.4
	m := MustModel(prm, HiLoc, p)
	rng := rand.New(rand.NewSource(42))
	const samples = 200000
	for _, lv := range [][2]int{{2, 2}, {1, 3}, {4, 4}, {0, 4}, {3, 2}} {
		i, j := lv[0], lv[1]
		sum := 0.0
		for s := 0; s < samples; s++ {
			// Random paths of length i and j; LCA level = common prefix.
			l := 0
			for l < minInt(i, j) && rng.Intn(prm.K) == 0 {
				// A shared next step happens with probability 1/k when the
				// prefix so far is shared.
				l++
			}
			// The loop above models P(extend shared prefix) = 1/k per step.
			d1, d2 := i-l, j-l
			sum += math.Pow(p, float64(minInt(d1, d2)))
		}
		got := m.Pi(i, j)
		mc := sum / samples
		if math.Abs(got-mc) > 0.01 {
			t.Fatalf("π_%d%d = %g, Monte Carlo %g", i, j, got, mc)
		}
	}
}

func TestHiLocAncestorCertainty(t *testing.T) {
	// ρ = 1 whenever one node is an ancestor of the other; with j = 0 the
	// second node is the root, an ancestor of everything: π_i0 = 1.
	m := MustModel(PaperParams(), HiLoc, 0.1)
	for i := 0; i <= 6; i++ {
		if got := m.Pi(i, 0); got != 1 {
			t.Fatalf("HI-LOC π_%d0 = %g, want 1 (root is everyone's ancestor)", i, got)
		}
	}
}

func TestPiTechnicalConvention(t *testing.T) {
	// π_{0,-1} = π_{-1,0} = 1 per the paper's footnote.
	for _, d := range Distributions() {
		m := MustModel(PaperParams(), d, 0.3)
		if m.Pi(0, -1) != 1 || m.Pi(-1, 0) != 1 {
			t.Fatalf("%v: negative-level convention broken", d)
		}
	}
}

func TestPiInUnitInterval(t *testing.T) {
	for _, d := range Distributions() {
		for _, p := range []float64{0, 1e-9, 0.01, 0.5, 1} {
			m := MustModel(PaperParams(), d, p)
			for i := 0; i <= 6; i++ {
				for j := 0; j <= 6; j++ {
					v := m.Pi(i, j)
					if v < 0 || v > 1 {
						t.Fatalf("%v p=%g: π_%d%d = %g out of [0,1]", d, p, i, j, v)
					}
				}
			}
		}
	}
}

func TestPiMonotoneInP(t *testing.T) {
	// More selectivity (larger p) can never lower a match probability.
	for _, d := range Distributions() {
		lo := MustModel(PaperParams(), d, 0.1)
		hi := MustModel(PaperParams(), d, 0.5)
		for i := 0; i <= 6; i++ {
			for j := 0; j <= 6; j++ {
				if lo.Pi(i, j) > hi.Pi(i, j)+1e-12 {
					t.Fatalf("%v: π_%d%d not monotone in p", d, i, j)
				}
			}
		}
	}
}

func TestRhoLeftmostLeafFig7(t *testing.T) {
	prm := PaperParams()
	prm.Nlevels = 3
	prm.K = 2
	prm.H = 3
	p := 0.5

	// UNIFORM: flat at p.
	mu := MustModel(prm, Uniform, p)
	if mu.RhoLeftmostLeaf(3, 5) != p || mu.RhoLeftmostLeaf(0, 0) != p {
		t.Fatal("UNIFORM ρ must be flat")
	}
	// NO-LOC: depends only on the level.
	mn := MustModel(prm, NoLoc, p)
	if mn.RhoLeftmostLeaf(2, 0) != mn.RhoLeftmostLeaf(2, 3) {
		t.Fatal("NO-LOC ρ must not depend on the index")
	}
	if mn.RhoLeftmostLeaf(1, 0) <= mn.RhoLeftmostLeaf(3, 0) {
		t.Fatal("NO-LOC ρ must shrink with level")
	}
	// HI-LOC: the leftmost leaf matches its own ancestors with certainty
	// and nearby leaves more than distant ones.
	mh := MustModel(prm, HiLoc, p)
	for level := 0; level <= 3; level++ {
		if got := mh.RhoLeftmostLeaf(level, 0); got != 1 {
			t.Fatalf("HI-LOC ρ(leftmost ancestor at level %d) = %g, want 1", level, got)
		}
	}
	// Leaf 1 shares the level-2 parent: min(d1,d2)=1 → p. Leaf 7 (the
	// rightmost) only shares the root: min = 3 → p³.
	if got := mh.RhoLeftmostLeaf(3, 1); got != p {
		t.Fatalf("HI-LOC ρ(sibling leaf) = %g, want p", got)
	}
	if got := mh.RhoLeftmostLeaf(3, 7); got != math.Pow(p, 3) {
		t.Fatalf("HI-LOC ρ(far leaf) = %g, want p³", got)
	}
}
