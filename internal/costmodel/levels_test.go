package costmodel

import (
	"math"
	"testing"
)

// TestSelectLevelTermsSum checks the per-level decomposition reassembles
// SelectCosts exactly: Σ IOa·C_IO = C_IIa − C_II^Θ, likewise for b, for
// every selector level and distribution.
func TestSelectLevelTermsSum(t *testing.T) {
	prm := PaperParams()
	for _, dist := range Distributions() {
		m := MustModel(prm, dist, 1e-12)
		for h := 0; h <= prm.Nlevels; h++ {
			sc := m.SelectCosts(h)
			var ioA, ioB, nodes float64
			for _, lt := range m.SelectLevelTerms(h) {
				ioA += lt.IOa
				ioB += lt.IOb
				nodes += lt.Nodes
			}
			if got, want := sc.CIITheta+prm.CIO*ioA, sc.CIIa; !close(got, want) {
				t.Errorf("%v h=%d: level IOa sum %g, CIIa %g", dist, h, got, want)
			}
			if got, want := sc.CIITheta+prm.CIO*ioB, sc.CIIb; !close(got, want) {
				t.Errorf("%v h=%d: level IOb sum %g, CIIb %g", dist, h, got, want)
			}
			// The computation component counts the same expected nodes
			// (plus the root): C_II^Θ = C_Θ(1 + Σ Nodes).
			if got, want := prm.CTheta*(1+nodes), sc.CIITheta; !close(got, want) {
				t.Errorf("%v h=%d: level nodes sum gives %g, CIITheta %g", dist, h, got, want)
			}
		}
	}
}

// TestJoinLevelTermsSum checks D_IIa = D_II^Θ + C_IO·Σ(passes·ScanA+LoadA)
// and the b-variant for every distribution.
func TestJoinLevelTermsSum(t *testing.T) {
	prm := PaperParams()
	for _, dist := range Distributions() {
		m := MustModel(prm, dist, 1e-12)
		jc := m.JoinCosts()
		terms, passes := m.JoinLevelTerms()
		if len(terms) != prm.Nlevels {
			t.Fatalf("%v: %d terms, want %d", dist, len(terms), prm.Nlevels)
		}
		var scanA, loadA, scanB, loadB float64
		for _, lt := range terms {
			scanA += lt.ScanA
			loadA += lt.LoadA
			scanB += lt.ScanB
			loadB += lt.LoadB
		}
		if got, want := jc.DIITheta+prm.CIO*(passes*scanA+loadA), jc.DIIa; !close(got, want) {
			t.Errorf("%v: level sum %g, DIIa %g", dist, got, want)
		}
		if got, want := jc.DIITheta+prm.CIO*(passes*scanB+loadB), jc.DIIb; !close(got, want) {
			t.Errorf("%v: level sum %g, DIIb %g", dist, got, want)
		}
	}
}

// close compares within a relative tolerance fit for re-associated sums.
func close(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
