package costmodel

import (
	"fmt"
	"math"
)

// Series is one labelled curve of a figure: Y[i] is the cost at selectivity
// X[i].
type Series struct {
	Name string
	X, Y []float64
}

// LogSpace returns n points logarithmically spaced over [lo, hi]; lo and hi
// must be positive with lo < hi and n ≥ 2.
func LogSpace(lo, hi float64, n int) ([]float64, error) {
	if lo <= 0 || hi <= lo || n < 2 {
		return nil, fmt.Errorf("costmodel: bad log space [%g, %g] x %d", lo, hi, n)
	}
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := range out {
		out[i] = math.Pow(10, llo+(lhi-llo)*float64(i)/float64(n-1))
	}
	return out, nil
}

// SelectFigure computes the curves of Figures 8–10: selection cost against
// selectivity p for strategies I, IIa, IIb and III under the given
// distribution, with the selector at level h (the paper uses h = n). The
// flat update-cost lines U_IIa, U_IIb and U_III discussed alongside the
// figures are included as additional series.
func SelectFigure(prm Params, dist DistKind, ps []float64, h int) ([]Series, error) {
	names := []string{"C_I", "C_IIa", "C_IIb", "C_III", "U_IIa", "U_IIb", "U_III"}
	out := make([]Series, len(names))
	for i, name := range names {
		out[i] = Series{Name: name, X: append([]float64(nil), ps...), Y: make([]float64, len(ps))}
	}
	for i, p := range ps {
		m, err := NewModel(prm, dist, p)
		if err != nil {
			return nil, err
		}
		sc := m.SelectCosts(h)
		uc := m.UpdateCosts()
		out[0].Y[i] = sc.CI
		out[1].Y[i] = sc.CIIa
		out[2].Y[i] = sc.CIIb
		out[3].Y[i] = sc.CIII
		out[4].Y[i] = uc.UIIa
		out[5].Y[i] = uc.UIIb
		out[6].Y[i] = uc.UIII
	}
	return out, nil
}

// JoinFigure computes the curves of Figures 11–13: general-join cost against
// selectivity p for strategies I, IIa, IIb and III under the given
// distribution.
func JoinFigure(prm Params, dist DistKind, ps []float64) ([]Series, error) {
	names := []string{"D_I", "D_IIa", "D_IIb", "D_III"}
	out := make([]Series, len(names))
	for i, name := range names {
		out[i] = Series{Name: name, X: append([]float64(nil), ps...), Y: make([]float64, len(ps))}
	}
	for i, p := range ps {
		m, err := NewModel(prm, dist, p)
		if err != nil {
			return nil, err
		}
		jc := m.JoinCosts()
		out[0].Y[i] = jc.DI
		out[1].Y[i] = jc.DIIa
		out[2].Y[i] = jc.DIIb
		out[3].Y[i] = jc.DIII
	}
	return out, nil
}

// Fig7 computes the ρ(o₁, o₂) profile of Figure 7: o₁ is the leftmost leaf
// and o₂ sweeps the nodes of each level in left-to-right order. One series
// per level is returned, X being the node index within the level.
func Fig7(prm Params, dist DistKind, p float64) ([]Series, error) {
	m, err := NewModel(prm, dist, p)
	if err != nil {
		return nil, err
	}
	var out []Series
	for level := 0; level <= prm.Nlevels; level++ {
		count := int(prm.LevelCount(level))
		// Cap the per-level sweep so the full figure stays printable for
		// the paper's k=10, n=6 tree.
		if count > 1000 {
			count = 1000
		}
		s := Series{Name: fmt.Sprintf("level_%d", level)}
		for idx := 0; idx < count; idx++ {
			s.X = append(s.X, float64(idx))
			s.Y = append(s.Y, m.RhoLeftmostLeaf(level, idx))
		}
		out = append(out, s)
	}
	return out, nil
}

// Crossover finds the smallest x at which curve a stops being at least as
// expensive as curve b (i.e. where b overtakes a, scanning from large to
// small x). Both series must share X. It returns the X value of the sign
// change and ok=false when the curves never cross.
func Crossover(a, b Series) (x float64, ok bool) {
	if len(a.X) != len(b.X) || len(a.X) == 0 {
		return 0, false
	}
	for i := len(a.X) - 1; i > 0; i-- {
		hereAWins := a.Y[i] <= b.Y[i]
		prevAWins := a.Y[i-1] <= b.Y[i-1]
		if hereAWins != prevAWins {
			return a.X[i], true
		}
	}
	return 0, false
}

// SeriesByName returns the series with the given name.
func SeriesByName(ss []Series, name string) (Series, bool) {
	for _, s := range ss {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}
