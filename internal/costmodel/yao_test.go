package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// yaoExact evaluates the Yao product literally, for cross-checking the
// log-gamma implementation at small arguments.
func yaoExact(x, y, z float64) float64 {
	if x <= 0 {
		return 0
	}
	prod := 1.0
	for i := 1.0; i <= x; i++ {
		prod *= (z - z/y - i + 1) / (z - i + 1)
	}
	if prod < 0 {
		prod = 0
	}
	return y * (1 - prod)
}

func TestYaoMatchesLiteralProduct(t *testing.T) {
	cases := []struct{ x, y, z float64 }{
		{1, 10, 100}, {5, 10, 100}, {50, 10, 100}, {99, 10, 100},
		{3, 7, 21}, {10, 2, 20}, {1, 1000, 5000}, {500, 1000, 5000},
	}
	for _, c := range cases {
		got := Yao(c.x, c.y, c.z)
		want := yaoExact(c.x, c.y, c.z)
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("Yao(%g,%g,%g) = %g, literal product %g", c.x, c.y, c.z, got, want)
		}
	}
}

func TestYaoBoundaries(t *testing.T) {
	if Yao(0, 10, 100) != 0 {
		t.Error("x=0 must cost nothing")
	}
	if Yao(5, 0, 100) != 0 || Yao(5, 10, 0) != 0 {
		t.Error("degenerate y/z must be 0")
	}
	if Yao(100, 10, 100) != 10 {
		t.Error("x=z must touch every page")
	}
	if Yao(200, 10, 100) != 10 {
		t.Error("x>z must clamp to every page")
	}
	if Yao(3, 1, 100) != 1 {
		t.Error("a single page costs exactly 1")
	}
}

func TestYaoBounds(t *testing.T) {
	// 0 ≤ Y ≤ min(x, y): you cannot touch more pages than records accessed
	// or than exist.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		z := float64(1 + rng.Intn(100000))
		y := float64(1 + rng.Intn(int(z)))
		x := float64(rng.Intn(int(z) + 1))
		got := Yao(x, y, z)
		if got < -1e-9 {
			t.Fatalf("Yao(%g,%g,%g) = %g < 0", x, y, z, got)
		}
		if got > y+1e-9 {
			t.Fatalf("Yao(%g,%g,%g) = %g > y", x, y, z, got)
		}
		if got > x+1e-9 && x >= 1 {
			t.Fatalf("Yao(%g,%g,%g) = %g > x", x, y, z, got)
		}
	}
}

func TestYaoMonotoneInX(t *testing.T) {
	f := func(a, b uint16, zz uint16) bool {
		z := float64(zz%5000) + 100
		y := math.Ceil(z / 5)
		x1 := float64(a) * z / 65536
		x2 := float64(b) * z / 65536
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return Yao(x1, y, z) <= Yao(x2, y, z)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYaoApproachesAllPages(t *testing.T) {
	// Drawing nearly all records touches nearly all pages.
	y := Yao(1e6, 222223, 1111111)
	if y < 0.9999*222223 {
		t.Fatalf("Yao(1e6 of 1.1e6) = %g, want ≈ all 222223 pages", y)
	}
}

func TestYaoLargeArgumentsFastAndFinite(t *testing.T) {
	// The paper-scale arguments must be finite (and fast, via lgamma).
	for _, x := range []float64{1, 10, 1e3, 1e5, 1e6} {
		v := Yao(x, 222223, 1111111)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Yao(%g, ...) = %g", x, v)
		}
	}
}

func TestYaoFractionalXInterpolates(t *testing.T) {
	// Fractional x (expected values) must land between the integer
	// neighbours.
	lo := Yao(3, 100, 1000)
	mid := Yao(3.5, 100, 1000)
	hi := Yao(4, 100, 1000)
	if !(lo <= mid && mid <= hi) {
		t.Fatalf("no interpolation: %g, %g, %g", lo, mid, hi)
	}
}
