package costmodel

import "math"

// UpdateCosts holds the §4.2 insertion costs per strategy.
type UpdateCosts struct {
	// UI is U_I: nested loop maintains nothing.
	UI float64
	// UIIa / UIIb are the unclustered / clustered generalization-tree
	// insertion costs.
	UIIa, UIIb float64
	// UIII is U_III(T): join-index maintenance across all T spatially
	// indexed tuples.
	UIII float64
}

// expectedInsertDepthFactor returns (1/N)·Σ_{i=1..n} i·k^i: the expected
// storage level of a new object when the probability of landing at level i
// is proportional to the number of objects already there.
func (m Model) expectedInsertDepthFactor() float64 {
	sum := 0.0
	for i := 1; i <= m.Prm.Nlevels; i++ {
		sum += float64(i) * m.Prm.LevelCount(i)
	}
	return sum / m.Prm.N()
}

// UpdateCosts evaluates U_I, U_IIa, U_IIb and U_III(T). Update costs do not
// depend on the distribution or p.
func (m Model) UpdateCosts() UpdateCosts {
	prm := m.Prm
	k := float64(prm.K)
	mt := prm.Mtuples()
	depth := m.expectedInsertDepthFactor()

	perLevelCPU := k / 2 * prm.CU
	uIIa := (perLevelCPU + Yao(math.Ceil(k/2), prm.RelationPages(), prm.N())*prm.CIO) * depth
	uIIb := (perLevelCPU + k/(2*mt)*prm.CIO) * depth
	uIII := prm.T * (prm.CU + prm.CIO/mt)

	return UpdateCosts{UI: 0, UIIa: uIIa, UIIb: uIIb, UIII: uIII}
}

// SelectCosts holds the §4.3 spatial-selection costs per strategy.
type SelectCosts struct {
	// CI is C_I: exhaustive scan.
	CI float64
	// CIITheta is C_II^Θ(h): the computation component shared by IIa/IIb.
	CIITheta float64
	// CIIa / CIIb are total costs with unclustered / clustered storage.
	CIIa, CIIb float64
	// CIII is C_III(h): the join-index lookup cost.
	CIII float64
}

// SelectCosts evaluates the selection cost formulas for a selector object at
// level h of its own generalization tree.
func (m Model) SelectCosts(h int) SelectCosts {
	prm := m.Prm
	n := prm.Nlevels
	k := float64(prm.K)
	mt := prm.Mtuples()
	pages := prm.RelationPages()
	N := prm.N()

	var sc SelectCosts
	sc.CI = N * (prm.CTheta + prm.CIO/mt)

	// C_II^Θ(h) = C_Θ(1 + Σ_{i=0}^{n-1} π_{h,i} k^{i+1}).
	comp := 1.0
	for i := 0; i < n; i++ {
		comp += m.Pi(h, i) * math.Pow(k, float64(i+1))
	}
	sc.CIITheta = prm.CTheta * comp

	// I/O, unclustered: each examined node is fetched individually.
	ioA := 0.0
	for i := 0; i < n; i++ {
		x := math.Ceil(m.Pi(h, i) * math.Pow(k, float64(i+1)))
		ioA += Yao(x, pages, N)
	}
	sc.CIIa = sc.CIITheta + prm.CIO*ioA

	// I/O, clustered: each matching level-i node pulls one k-child record.
	ioB := 0.0
	for i := 0; i < n; i++ {
		x := math.Ceil(m.Pi(h, i) * math.Pow(k, float64(i)))
		recPages := math.Ceil(math.Pow(k, float64(i+1)) / mt)
		ioB += Yao(x, recPages, math.Pow(k, float64(i)))
	}
	sc.CIIb = sc.CIITheta + prm.CIO*ioB

	// Join index: page in the relevant index entries (root pinned) plus the
	// qualifying tuples.
	entries := 0.0
	for i := 0; i <= n; i++ {
		entries += m.Pi(h, i) * math.Pow(k, float64(i))
	}
	sc.CIII = prm.CIO * (prm.D() + math.Ceil(entries/prm.Z) +
		Yao(math.Ceil(entries), pages, N))
	return sc
}

// JoinCosts holds the §4.4 general-spatial-join costs per strategy.
type JoinCosts struct {
	// DI is D_I: blocked nested loop.
	DI float64
	// DIITheta is D_II^Θ: the computation component shared by IIa/IIb.
	DIITheta float64
	// DIIa / DIIb are total generalization-tree join costs.
	DIIa, DIIb float64
	// DIII is D_III: the join-index strategy.
	DIII float64
	// Cardinality is the expected join result size Σ_i Σ_j π_ij k^i k^j.
	Cardinality float64
}

// JoinCosts evaluates the join cost formulas for R ⋈θ S with both relations
// shaped per the parameters.
func (m Model) JoinCosts() JoinCosts {
	prm := m.Prm
	n := prm.Nlevels
	k := float64(prm.K)
	mt := prm.Mtuples()
	pages := prm.RelationPages()
	N := prm.N()
	blockTuples := mt * (prm.M - 10)

	var jc JoinCosts

	// D_I = N²·C_Θ + (⌈N/(m(M−10))⌉ + 1)·⌈N/m⌉·C_IO.
	passes := math.Ceil(N / blockTuples)
	jc.DI = N*N*prm.CTheta + (passes+1)*pages*prm.CIO

	// D_II^Θ: for each QualPairs match at level i (π_{i,i−1}·k^{2i} of
	// them), two SELECT passes over the partner subtrees.
	comp := 0.0
	for i := 0; i <= n; i++ {
		pairMatch := m.Pi(i, i-1) * math.Pow(k, float64(2*i))
		inner := 1.0
		for j := i; j < n; j++ {
			inner += (m.Pi(i, j) + m.Pi(j, i)) * math.Pow(k, float64(j-i+1))
		}
		comp += pairMatch * inner
	}
	jc.DIITheta = prm.CTheta * comp

	// Participating nodes per tree: 1 + Σ_{i=0}^{n-1} π_{0,i} k^{i+1}
	// (children of nodes that match the partner root).
	partS := 1.0
	partR := 1.0
	for i := 0; i < n; i++ {
		partS += m.Pi(0, i) * math.Pow(k, float64(i+1))
		partR += m.Pi(i, 0) * math.Pow(k, float64(i+1))
	}
	treePasses := math.Ceil(partR / blockTuples)

	// Per-pass scan I/O of GT_S,B and one-time page-in of GT_R,A.
	scanA, scanB := 0.0, 0.0
	loadA, loadB := 0.0, 0.0
	for i := 0; i < n; i++ {
		xS := math.Ceil(m.Pi(0, i) * math.Pow(k, float64(i+1)))
		xR := math.Ceil(m.Pi(i, 0) * math.Pow(k, float64(i+1)))
		scanA += Yao(xS, pages, N)
		loadA += Yao(xR, pages, N)

		xSc := math.Ceil(m.Pi(0, i) * math.Pow(k, float64(i)))
		xRc := math.Ceil(m.Pi(i, 0) * math.Pow(k, float64(i)))
		recPages := math.Ceil(math.Pow(k, float64(i+1)) / mt)
		recs := math.Pow(k, float64(i))
		scanB += Yao(xSc, recPages, recs)
		loadB += Yao(xRc, recPages, recs)
	}
	jc.DIIa = jc.DIITheta + prm.CIO*(treePasses*scanA+loadA)
	jc.DIIb = jc.DIITheta + prm.CIO*(treePasses*scanB+loadB)

	// D_III: read the join index and the qualifying tuples. |J| is the
	// expected join cardinality.
	cardinality := 0.0
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			cardinality += m.Pi(i, j) * math.Pow(k, float64(i)) * math.Pow(k, float64(j))
		}
	}
	jc.Cardinality = cardinality

	// Participating R tuples Σ_i π_{i,0} k^i drive the blocked retrieval.
	rPart := 0.0
	for i := 0; i <= n; i++ {
		rPart += m.Pi(i, 0) * math.Pow(k, float64(i))
	}
	jiPasses := math.Ceil(rPart / blockTuples)
	// Probability an S tuple matches anything currently in memory.
	q := cardinality / (N * N)
	if q > 1 {
		q = 1
	}
	pMatch := 1 - math.Pow(1-q, blockTuples)
	jc.DIII = prm.CIO * (math.Ceil(cardinality/prm.Z) +
		Yao(math.Ceil(rPart), pages, N) +
		jiPasses*Yao(math.Ceil(pMatch*N), pages, N))
	return jc
}
