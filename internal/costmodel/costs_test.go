package costmodel

import (
	"math"
	"testing"
)

// The tests in this file encode the qualitative claims of §4.5 — the
// structure of Figures 8–13 — so a regression in any formula that changes
// "who wins where" fails loudly.

func selectAt(t *testing.T, dist DistKind, p float64) SelectCosts {
	t.Helper()
	return MustModel(PaperParams(), dist, p).SelectCosts(6)
}

func joinAt(t *testing.T, dist DistKind, p float64) JoinCosts {
	t.Helper()
	return MustModel(PaperParams(), dist, p).JoinCosts()
}

func TestUpdateCostsOrdering(t *testing.T) {
	// §4.2 / §4.5: U_I = 0; clustered trees update cheaper than unclustered
	// (in-place neighbours); join indices are "almost prohibitively high" —
	// orders of magnitude above both.
	uc := MustModel(PaperParams(), Uniform, 0.5).UpdateCosts()
	if uc.UI != 0 {
		t.Fatalf("U_I = %g, want 0", uc.UI)
	}
	if !(uc.UIIb < uc.UIIa) {
		t.Fatalf("U_IIb (%g) must be below U_IIa (%g)", uc.UIIb, uc.UIIa)
	}
	if uc.UIII < 1000*uc.UIIa {
		t.Fatalf("U_III (%g) must be orders of magnitude above U_IIa (%g)", uc.UIII, uc.UIIa)
	}
	// U_III(T) with the paper's numbers: T·(C_U + C_IO/m) = 1111111·201.
	want := 1111111.0 * 201
	if math.Abs(uc.UIII-want) > 1 {
		t.Fatalf("U_III = %g, want %g", uc.UIII, want)
	}
}

func TestUpdateCostsIndependentOfDistribution(t *testing.T) {
	a := MustModel(PaperParams(), Uniform, 0.9).UpdateCosts()
	b := MustModel(PaperParams(), HiLoc, 0.001).UpdateCosts()
	if a != b {
		t.Fatalf("update costs must not depend on distribution or p: %+v vs %+v", a, b)
	}
}

func TestSelectCIExhaustive(t *testing.T) {
	// C_I = N(C_Θ + C_IO/m) = 1111111·201, independent of p and dist.
	want := 1111111.0 * 201
	for _, d := range Distributions() {
		for _, p := range []float64{1e-6, 0.5} {
			if got := selectAt(t, d, p).CI; math.Abs(got-want) > 1 {
				t.Fatalf("%v p=%g: C_I = %g, want %g", d, p, got, want)
			}
		}
	}
}

func TestFig8SelectUniformClaims(t *testing.T) {
	// "The search performance of the join index (C_III) is almost identical
	// to the unclustered generalization tree (C_IIa)."
	for _, p := range []float64{0.3, 0.08, 0.01, 1e-3} {
		sc := selectAt(t, Uniform, p)
		ratio := sc.CIII / sc.CIIa
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("p=%g: C_III/C_IIa = %g, want ≈ 1", p, ratio)
		}
		// "If a clustered generalization tree is available, search costs may
		// be cut by up to an order of magnitude" — and IIb is always best.
		if !(sc.CIIb < sc.CIIa && sc.CIIb < sc.CIII && sc.CIIb < sc.CI) {
			t.Fatalf("p=%g: clustered tree must win: %+v", p, sc)
		}
	}
	// The order-of-magnitude gap is reached somewhere.
	best := 0.0
	for _, p := range []float64{0.3, 0.1, 0.03, 0.01} {
		sc := selectAt(t, Uniform, p)
		if r := sc.CIIa / sc.CIIb; r > best {
			best = r
		}
	}
	if best < 8 {
		t.Fatalf("max C_IIa/C_IIb = %g, want ≈ an order of magnitude", best)
	}
}

func TestFig8NestedLoopNeverCompetitive(t *testing.T) {
	for _, d := range Distributions() {
		for _, p := range []float64{0.3, 0.01, 1e-4} {
			sc := selectAt(t, d, p)
			if sc.CI < sc.CIIb {
				t.Fatalf("%v p=%g: exhaustive scan beat the clustered tree", d, p)
			}
		}
	}
}

func TestFig9SelectNoLocClaims(t *testing.T) {
	// "For higher join selectivities the performance of the join index is
	// somewhere between the unclustered and the clustered tree."
	for _, p := range []float64{0.3, 0.15} {
		sc := selectAt(t, NoLoc, p)
		if !(sc.CIIb < sc.CIII && sc.CIII < sc.CIIa) {
			t.Fatalf("p=%g: want C_IIb < C_III < C_IIa, got %+v", p, sc)
		}
	}
	// "Once p drops below about 0.08 ... the join index loses its edge over
	// the unclustered tree, and the difference between the clustered and
	// unclustered version becomes marginal." In our reconstruction the
	// three curves converge to the same fixed floor.
	scLow := selectAt(t, NoLoc, 0.005)
	if r := scLow.CIIa / scLow.CIIb; r < 0.5 || r > 2 {
		t.Fatalf("low-p IIa/IIb = %g, want marginal difference", r)
	}
	if r := scLow.CIII / scLow.CIIa; r < 0.5 || r > 2 {
		t.Fatalf("low-p III/IIa = %g, want convergence", r)
	}
	// And the join index's big advantage at p=0.3 (≈3×) must be gone.
	hi := selectAt(t, NoLoc, 0.3)
	gainHigh := hi.CIIa / hi.CIII
	gainLow := scLow.CIIa / scLow.CIII
	if gainHigh < 2 {
		t.Fatalf("p=0.3: join index should clearly beat IIa (gain %g)", gainHigh)
	}
	if gainLow > 1.5 {
		t.Fatalf("p=0.005: join-index advantage should have vanished (gain %g)", gainLow)
	}
}

func TestFig10SelectHiLocClaims(t *testing.T) {
	// "The performance of the join index is consistently between the
	// unclustered and the clustered generalization tree."
	for _, p := range []float64{0.3, 0.08, 0.01, 1e-4} {
		sc := selectAt(t, HiLoc, p)
		if !(sc.CIIb <= sc.CIII && sc.CIII <= sc.CIIa) {
			t.Fatalf("p=%g: want C_IIb ≤ C_III ≤ C_IIa, got IIb=%g III=%g IIa=%g",
				p, sc.CIIb, sc.CIII, sc.CIIa)
		}
	}
}

func TestFig11JoinUniformCrossover(t *testing.T) {
	// "Join indices provide the best join performance if the join
	// selectivity is sufficiently small ... the crossover point is at a join
	// selectivity of about 1e-9."
	high := joinAt(t, Uniform, 1e-7)
	if high.DIII < high.DIIa {
		t.Fatalf("p=1e-7: tree should still win (DIII=%g, DIIa=%g)", high.DIII, high.DIIa)
	}
	low := joinAt(t, Uniform, 1e-11)
	if low.DIII > low.DIIa || low.DIII > low.DIIb {
		t.Fatalf("p=1e-11: join index should win (DIII=%g, DIIa=%g)", low.DIII, low.DIIa)
	}
	// Locate the crossover; it must land within an order of magnitude or so
	// of the paper's 1e-9.
	ps, err := LogSpace(1e-12, 1e-6, 61)
	if err != nil {
		t.Fatal(err)
	}
	series, err := JoinFigure(PaperParams(), Uniform, ps)
	if err != nil {
		t.Fatal(err)
	}
	dIIa, _ := SeriesByName(series, "D_IIa")
	dIII, _ := SeriesByName(series, "D_III")
	x, ok := Crossover(dIIa, dIII)
	if !ok {
		t.Fatal("no UNIFORM join crossover found")
	}
	if x < 1e-11 || x > 1e-8 {
		t.Fatalf("UNIFORM crossover at %g, want within ~an order of 1e-9..1e-10", x)
	}
}

func TestFig12JoinNoLocCrossover(t *testing.T) {
	// NO-LOC: same structure; the join index wins below a (small) crossover.
	// The paper reads ≈1e-8 off its plot; our reconstruction of the
	// corrupted D_III formula lands the crossover a few orders higher —
	// the *shape* (who wins on each side) is asserted strictly, the
	// position loosely.
	high := joinAt(t, NoLoc, 1e-2)
	if high.DIII < high.DIIb {
		t.Fatalf("p=1e-2: tree should win (DIII=%g, DIIb=%g)", high.DIII, high.DIIb)
	}
	low := joinAt(t, NoLoc, 1e-8)
	if low.DIII > low.DIIa || low.DIII > low.DIIb {
		t.Fatalf("p=1e-8: join index should win (DIII=%g, DIIa=%g, DIIb=%g)",
			low.DIII, low.DIIa, low.DIIb)
	}
	ps, _ := LogSpace(1e-12, 1e-1, 67)
	series, err := JoinFigure(PaperParams(), NoLoc, ps)
	if err != nil {
		t.Fatal(err)
	}
	dIIb, _ := SeriesByName(series, "D_IIb")
	dIII, _ := SeriesByName(series, "D_III")
	if _, ok := Crossover(dIIb, dIII); !ok {
		t.Fatal("no NO-LOC join crossover found")
	}
}

func TestFig13JoinHiLocTie(t *testing.T) {
	// "For HI-LOC there is a tie between all three strategies for any
	// reasonable join selectivity" — IIa, IIb and III stay within a small
	// constant factor while nested loop is far worse.
	for _, p := range []float64{1e-2, 1e-5, 1e-9} {
		jc := joinAt(t, HiLoc, p)
		lo := math.Min(jc.DIIa, math.Min(jc.DIIb, jc.DIII))
		hi := math.Max(jc.DIIa, math.Max(jc.DIIb, jc.DIII))
		if hi/lo > 5 {
			t.Fatalf("p=%g: HI-LOC spread %g, want a near-tie", p, hi/lo)
		}
		if jc.DI < 10*hi {
			t.Fatalf("p=%g: nested loop must be far worse (DI=%g, hi=%g)", p, jc.DI, hi)
		}
	}
}

func TestJoinNestedLoopConstant(t *testing.T) {
	// D_I depends on neither p nor the distribution.
	a := joinAt(t, Uniform, 1e-9).DI
	b := joinAt(t, HiLoc, 0.9).DI
	if a != b {
		t.Fatalf("D_I varies: %g vs %g", a, b)
	}
	// D_I = N²·C_Θ + (⌈N/(m·3990)⌉+1)·⌈N/m⌉·C_IO.
	want := 1111111.0*1111111.0 + (56.0+1)*222223*1000
	if math.Abs(a-want)/want > 1e-9 {
		t.Fatalf("D_I = %g, want %g", a, want)
	}
}

func TestJoinCardinalityScalesWithP(t *testing.T) {
	// UNIFORM: |J| = p·N².
	jc := joinAt(t, Uniform, 1e-6)
	want := 1e-6 * 1111111 * 1111111
	if math.Abs(jc.Cardinality-want)/want > 1e-9 {
		t.Fatalf("|J| = %g, want %g", jc.Cardinality, want)
	}
	// HI-LOC cardinality never drops below the ancestor-pair floor.
	floor := joinAt(t, HiLoc, 0).Cardinality
	if floor <= 0 {
		t.Fatal("HI-LOC ancestor pairs must survive p=0")
	}
	if joinAt(t, HiLoc, 0.5).Cardinality < floor {
		t.Fatal("HI-LOC cardinality must grow with p")
	}
}

func TestSelectCostsMonotoneInP(t *testing.T) {
	// All strategy costs are non-decreasing in p (more matches, more work).
	for _, d := range Distributions() {
		prev := selectAt(t, d, 1e-6)
		for _, p := range []float64{1e-4, 1e-2, 0.1, 0.5, 1} {
			cur := selectAt(t, d, p)
			if cur.CIIa < prev.CIIa-1e-6 || cur.CIIb < prev.CIIb-1e-6 || cur.CIII < prev.CIII-1e-6 {
				t.Fatalf("%v: costs decreased from p to %g", d, p)
			}
			prev = cur
		}
	}
}

func TestJoinCostsMonotoneInP(t *testing.T) {
	for _, d := range Distributions() {
		prev := joinAt(t, d, 1e-10)
		for _, p := range []float64{1e-8, 1e-6, 1e-4, 1e-2, 1} {
			cur := joinAt(t, d, p)
			if cur.DIIa < prev.DIIa-1e-6 || cur.DIIb < prev.DIIb-1e-6 || cur.DIII < prev.DIII-1e-6 {
				t.Fatalf("%v: join costs decreased at p=%g", d, p)
			}
			prev = cur
		}
	}
}

func TestSelectLowerSelectorLevelIsCheaper(t *testing.T) {
	// With NO-LOC, a selector higher up the tree (lower h... larger object)
	// matches more, so a leaf selector (h=n) is the cheap end.
	leaf := MustModel(PaperParams(), NoLoc, 0.3).SelectCosts(6)
	root := MustModel(PaperParams(), NoLoc, 0.3).SelectCosts(0)
	if root.CIIa < leaf.CIIa {
		t.Fatalf("root selector should cost at least as much: root=%g leaf=%g",
			root.CIIa, leaf.CIIa)
	}
}
