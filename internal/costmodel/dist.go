package costmodel

import (
	"fmt"
	"math"
)

// DistKind identifies one of the paper's three match-probability
// distributions (§4.1).
type DistKind uint8

const (
	// Uniform: ρ(o₁, o₂) = p for all pairs; models operators with no
	// spatial locality at all (e.g. "to the Northwest of").
	Uniform DistKind = iota
	// NoLoc: ρ = p^max(min(i₁,i₂),1); still no locality, but matches
	// between large objects (low levels) are more likely — e.g. "between
	// 50 and 100 kilometers from".
	NoLoc
	// HiLoc: matches are driven by tree proximity: ρ = p^min(d₁,d₂) where
	// d₁, d₂ are the level distances of the two objects to their lowest
	// common ancestor. Ancestor/descendant pairs match with certainty and
	// siblings with probability p (σ_i = p), the two properties the paper
	// states. Only meaningful when both objects are in the same tree
	// (self-joins, or selection with the selector stored in the relation).
	HiLoc
)

// String implements fmt.Stringer.
func (d DistKind) String() string {
	switch d {
	case Uniform:
		return "UNIFORM"
	case NoLoc:
		return "NO-LOC"
	case HiLoc:
		return "HI-LOC"
	default:
		return fmt.Sprintf("DistKind(%d)", uint8(d))
	}
}

// Distributions lists all three kinds, for sweeps and tests.
func Distributions() []DistKind { return []DistKind{Uniform, NoLoc, HiLoc} }

// Model binds parameters, a distribution and a join selectivity p; all cost
// formulas hang off it.
type Model struct {
	// Prm are the model parameters (Table 2/3).
	Prm Params
	// Dist is the match-probability distribution.
	Dist DistKind
	// P is the join selectivity parameter p ∈ [0, 1].
	P float64
}

// NewModel validates and returns a model.
func NewModel(prm Params, dist DistKind, p float64) (Model, error) {
	if err := prm.Validate(); err != nil {
		return Model{}, err
	}
	if p < 0 || p > 1 {
		return Model{}, fmt.Errorf("costmodel: selectivity p = %g out of [0,1]", p)
	}
	if dist != Uniform && dist != NoLoc && dist != HiLoc {
		return Model{}, fmt.Errorf("costmodel: unknown distribution %d", dist)
	}
	return Model{Prm: prm, Dist: dist, P: p}, nil
}

// MustModel is NewModel that panics on error.
func MustModel(prm Params, dist DistKind, p float64) Model {
	m, err := NewModel(prm, dist, p)
	if err != nil {
		panic(err)
	}
	return m
}

// Pi returns π_ij: the probability that two objects at levels i and j (in
// their respective trees) Θ-match. Levels outside [0, n] are treated via
// the paper's technical convention π_{0,−1} = π_{−1,0} = 1.
func (m Model) Pi(i, j int) float64 {
	if i < 0 || j < 0 {
		return 1
	}
	switch m.Dist {
	case Uniform:
		return m.P
	case NoLoc:
		e := minInt(i, j)
		if e < 1 {
			e = 1
		}
		return math.Pow(m.P, float64(e))
	case HiLoc:
		return m.piHiLoc(i, j)
	default:
		return m.P
	}
}

// piHiLoc averages ρ = p^{min(d₁,d₂)} over a uniformly random node pair at
// levels i and j of one k-ary tree. With ℓ the level of the lowest common
// ancestor, min(d₁, d₂) = min(i, j) − ℓ and
//
//	P(ℓ) = k^{−ℓ} − k^{−(ℓ+1)}  for ℓ < min(i, j),
//	P(min(i, j)) = k^{−min(i,j)}  (covers ancestor/descendant and identity),
//
// so π_ij = Σ_ℓ P(ℓ)·p^{min(i,j)−ℓ}. This reconstructs the corrupted
// formula in the source text from its stated invariants (see DESIGN.md).
func (m Model) piHiLoc(i, j int) float64 {
	mn := minInt(i, j)
	k := float64(m.Prm.K)
	total := 0.0
	for l := 0; l <= mn; l++ {
		var prob float64
		if l < mn {
			prob = math.Pow(k, -float64(l)) - math.Pow(k, -float64(l+1))
		} else {
			prob = math.Pow(k, -float64(mn))
		}
		total += prob * math.Pow(m.P, float64(mn-l))
	}
	return total
}

// Sigma returns σ_i: the probability that two sibling nodes at level i
// Θ-match.
func (m Model) Sigma(i int) float64 {
	switch m.Dist {
	case Uniform:
		return m.P
	case NoLoc:
		e := i
		if e < 1 {
			e = 1
		}
		return math.Pow(m.P, float64(e))
	case HiLoc:
		// Siblings have their parent as LCA: min(d₁,d₂) = 1.
		return m.P
	default:
		return m.P
	}
}

// RhoLeftmostLeaf returns ρ(o₁, o₂) with o₁ the leftmost leaf and o₂ the
// node with the given index (0-based, left to right) at the given level —
// the quantity plotted in Figure 7 for each distribution.
func (m Model) RhoLeftmostLeaf(level, index int) float64 {
	n := m.Prm.Nlevels
	switch m.Dist {
	case Uniform:
		return m.P
	case NoLoc:
		e := minInt(n, level)
		if e < 1 {
			e = 1
		}
		return math.Pow(m.P, float64(e))
	case HiLoc:
		// The leftmost leaf's path is all zeros; the LCA level is the
		// number of leading zero digits of index in base k.
		l := 0
		digits := digitsBaseK(index, m.Prm.K, level)
		for _, d := range digits {
			if d != 0 {
				break
			}
			l++
		}
		d1 := n - l
		d2 := level - l
		return math.Pow(m.P, float64(minInt(d1, d2)))
	default:
		return m.P
	}
}

// digitsBaseK returns the width-digit base-k representation of v, most
// significant digit first.
func digitsBaseK(v, k, width int) []int {
	out := make([]int, width)
	for i := width - 1; i >= 0; i-- {
		out[i] = v % k
		v /= k
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
