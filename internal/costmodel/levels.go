package costmodel

import "math"

// SelectLevelTerm is one tree level's contribution to the strategy-II
// selection cost C_IIa/C_IIb: the expected node examinations the descent
// performs entering that level and the Yao-paged I/O charged for them
// under unclustered (IIa) and clustered (IIb) storage. The EXPLAIN surface
// prints these next to a traced descent's measured per-level reads.
type SelectLevelTerm struct {
	// Level indexes the descent: level 0 expands the root's children.
	Level int
	// Nodes is the expected examinations π_{h,i}·k^{i+1} at this level.
	Nodes float64
	// IOa / IOb are the level's page-read terms of C_IIa / C_IIb.
	IOa, IOb float64
}

// SelectLevelTerms decomposes the I/O components of SelectCosts(h) level
// by level; the terms sum exactly to the ioA/ioB aggregates inside
// SelectCosts, so Σ IOa·C_IO = C_IIa − C_II^Θ (and likewise for b).
func (m Model) SelectLevelTerms(h int) []SelectLevelTerm {
	prm := m.Prm
	n := prm.Nlevels
	k := float64(prm.K)
	mt := prm.Mtuples()
	pages := prm.RelationPages()
	N := prm.N()

	terms := make([]SelectLevelTerm, 0, n)
	for i := 0; i < n; i++ {
		nodes := m.Pi(h, i) * math.Pow(k, float64(i+1))
		x := math.Ceil(nodes)
		xc := math.Ceil(m.Pi(h, i) * math.Pow(k, float64(i)))
		recPages := math.Ceil(math.Pow(k, float64(i+1)) / mt)
		terms = append(terms, SelectLevelTerm{
			Level: i,
			Nodes: nodes,
			IOa:   Yao(x, pages, N),
			IOb:   Yao(xc, recPages, math.Pow(k, float64(i))),
		})
	}
	return terms
}

// JoinLevelTerm is one level's I/O contribution to the strategy-II join
// cost D_IIa/D_IIb: the per-pass scan of the partner (S) tree and the
// one-time load of the blocked (R) tree, under both storage layouts.
type JoinLevelTerm struct {
	Level        int
	ScanA, LoadA float64
	ScanB, LoadB float64
}

// JoinLevelTerms decomposes the I/O components of JoinCosts level by
// level, together with the number of blocked passes the model charges:
// D_IIa = D_II^Θ + C_IO·Σ(passes·ScanA + LoadA), likewise for b.
func (m Model) JoinLevelTerms() (terms []JoinLevelTerm, passes float64) {
	prm := m.Prm
	n := prm.Nlevels
	k := float64(prm.K)
	mt := prm.Mtuples()
	pages := prm.RelationPages()
	N := prm.N()
	blockTuples := mt * (prm.M - 10)

	partR := 1.0
	for i := 0; i < n; i++ {
		partR += m.Pi(i, 0) * math.Pow(k, float64(i+1))
	}
	passes = math.Ceil(partR / blockTuples)

	terms = make([]JoinLevelTerm, 0, n)
	for i := 0; i < n; i++ {
		xS := math.Ceil(m.Pi(0, i) * math.Pow(k, float64(i+1)))
		xR := math.Ceil(m.Pi(i, 0) * math.Pow(k, float64(i+1)))
		xSc := math.Ceil(m.Pi(0, i) * math.Pow(k, float64(i)))
		xRc := math.Ceil(m.Pi(i, 0) * math.Pow(k, float64(i)))
		recPages := math.Ceil(math.Pow(k, float64(i+1)) / mt)
		recs := math.Pow(k, float64(i))
		terms = append(terms, JoinLevelTerm{
			Level: i,
			ScanA: Yao(xS, pages, N),
			LoadA: Yao(xR, pages, N),
			ScanB: Yao(xSc, recPages, recs),
			LoadB: Yao(xRc, recPages, recs),
		})
	}
	return terms, passes
}
