package costmodel

import (
	"math"

	"spatialjoin/internal/geom"
)

// Yao returns Yao's estimate [Yao77] of the expected number of disk pages
// touched when accessing x records chosen at random from z records stored on
// y pages:
//
//	Y(x, y, z) = y · [1 − Π_{i=1..x} (z − z/y − i + 1)/(z − i + 1)]
//
// The product is evaluated in closed form with log-gamma functions so large
// arguments (the paper's N ≈ 10⁶) stay cheap and stable. Arguments are
// clamped to their meaningful ranges: x ≤ z, y ≥ 1, and x ≥ z − z/y makes
// every page qualify.
func Yao(x, y, z float64) float64 {
	if x <= 0 || y <= 0 || z <= 0 {
		return 0
	}
	if geom.SameCoord(y, 1) {
		return 1
	}
	if x >= z {
		return y
	}
	// w = z − z/y: records not on one particular page.
	w := z - z/y
	if x > w {
		// More records requested than can avoid any page: all pages hit.
		return y
	}
	// Π_{i=1..x} (w − i + 1)/(z − i + 1) = B(w+1, w−x+1) / B(z+1, z−x+1)
	// in falling-factorial form, computed via lgamma.
	lw1, _ := math.Lgamma(w + 1)
	lwx, _ := math.Lgamma(w - x + 1)
	lz1, _ := math.Lgamma(z + 1)
	lzx, _ := math.Lgamma(z - x + 1)
	prod := math.Exp((lw1 - lwx) - (lz1 - lzx))
	if prod < 0 {
		prod = 0
	}
	if prod > 1 {
		prod = 1
	}
	return y * (1 - prod)
}
