// Package costmodel implements the paper's analytical cost model (§4): the
// Yao function, the UNIFORM / NO-LOC / HI-LOC match-probability
// distributions, and the cost formulas for updates (U_I, U_IIa, U_IIb,
// U_III), spatial selections (C_I, C_IIa, C_IIb, C_III) and general spatial
// joins (D_I, D_IIa, D_IIb, D_III), together with the sweep generators that
// regenerate Figures 7–13.
//
// Notation follows Table 2. Levels count from the root: the root is level 0
// and leaves are level n (the paper calls this "height"). Costs are unitless
// time units with C_Θ = 1 per Θ evaluation, C_IO = 1000 per page access and
// C_U = 1 per update computation in the paper's configuration (Table 3).
package costmodel

import (
	"fmt"
	"math"
)

// Params are the database- and system-dependent model parameters of
// Table 2.
type Params struct {
	// N_ is unused; N is derived. (kept unexported via method N)

	// Nlevels is n: the height of the generalization trees (root at 0).
	Nlevels int
	// K is k: the tree fanout.
	K int
	// V is v: the tuple size in bytes.
	V float64
	// L is l: the average space utilization of disk pages.
	L float64
	// H is h: the level of the selector object in its tree (the paper's
	// evaluation uses h = n, a leaf).
	H int
	// T is the total number of tuples with spatial attributes in the
	// database, used by the all-relations update cost U_III(T).
	T float64
	// S is s: the disk page size in bytes.
	S float64
	// Z is z: the number of join-index entries per B+-tree page.
	Z float64
	// M is the number of main-memory buffer pages.
	M float64
	// CTheta is C_Θ: the cost of one Θ evaluation.
	CTheta float64
	// CIO is C_IO: the cost of one page access.
	CIO float64
	// CU is C_U: the computation cost of one update step.
	CU float64
}

// PaperParams returns the exact configuration of Table 3.
func PaperParams() Params {
	return Params{
		Nlevels: 6,
		K:       10,
		V:       300,
		L:       0.75,
		H:       6,
		T:       1111111,
		S:       2000,
		Z:       100,
		M:       4000,
		CTheta:  1,
		CIO:     1000,
		CU:      1,
	}
}

// Validate checks that the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Nlevels < 1:
		return fmt.Errorf("costmodel: n = %d < 1", p.Nlevels)
	case p.K < 2:
		return fmt.Errorf("costmodel: k = %d < 2", p.K)
	case p.V <= 0 || p.S <= 0:
		return fmt.Errorf("costmodel: tuple size %g / page size %g must be positive", p.V, p.S)
	case p.L <= 0 || p.L > 1:
		return fmt.Errorf("costmodel: utilization l = %g out of (0,1]", p.L)
	case p.H < 0 || p.H > p.Nlevels:
		return fmt.Errorf("costmodel: selector level h = %d out of [0,%d]", p.H, p.Nlevels)
	case p.Z < 2:
		return fmt.Errorf("costmodel: z = %g < 2", p.Z)
	case p.M <= 11:
		return fmt.Errorf("costmodel: M = %g too small for the M-10 blocking technique", p.M)
	case p.CTheta < 0 || p.CIO < 0 || p.CU < 0:
		return fmt.Errorf("costmodel: negative cost weights")
	case p.Mtuples() < 1:
		return fmt.Errorf("costmodel: fewer than one tuple per page (m = %g)", p.Mtuples())
	}
	return nil
}

// N returns the derived relation cardinality: a full k-ary tree with levels
// 0..n has N = (k^{n+1} − 1)/(k − 1) nodes, each a tuple (assumption S2).
// Table 3: 1,111,111.
func (p Params) N() float64 {
	k := float64(p.K)
	return (math.Pow(k, float64(p.Nlevels+1)) - 1) / (k - 1)
}

// Mtuples returns the derived m: tuples per disk page, s·l/v (Table 3: 5).
func (p Params) Mtuples() float64 {
	return p.S * p.L / p.V
}

// D returns the derived d: the number of pages on a root-to-leaf path of the
// join index's B+-tree, ⌈log_z N⌉ (Table 3: 4).
func (p Params) D() float64 {
	return math.Ceil(math.Log(p.N()) / math.Log(p.Z))
}

// LevelCount returns k^i, the number of nodes at level i.
func (p Params) LevelCount(i int) float64 {
	return math.Pow(float64(p.K), float64(i))
}

// RelationPages returns ⌈N/m⌉, the pages the relation occupies.
func (p Params) RelationPages() float64 {
	return math.Ceil(p.N() / p.Mtuples())
}
