package core

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

// buildUniformTree builds a k-ary generalization tree of the given height
// whose node rectangles nest properly: each child occupies a random
// subrectangle of its parent. Tuple IDs are assigned in BFS order starting
// at firstID; technicalInterior makes interior nodes tuple-less (R-tree
// style).
func buildUniformTree(rng *rand.Rand, root geom.Rect, k, height int,
	firstID int, technicalInterior bool) (*BasicTree, int) {

	nextID := firstID
	rootNode := NewBasicNode(root, -1)
	tree := NewBasicTree(rootNode)
	// Assign IDs level by level (BFS) so BFS order == tuple ID order.
	level := []*BasicNode{rootNode}
	for depth := 0; depth <= height; depth++ {
		var next []*BasicNode
		for _, n := range level {
			isLeaf := depth == height
			if !technicalInterior || isLeaf {
				n.TupleID = nextID
				nextID++
			}
			if !isLeaf {
				for c := 0; c < k; c++ {
					n.AddChild(NewBasicNode(subRect(rng, n.Bounds()), -1))
				}
				next = append(next, n.Kids...)
			}
		}
		level = next
	}
	return tree, nextID - firstID
}

// subRect returns a random rectangle strictly inside parent.
func subRect(rng *rand.Rand, parent geom.Rect) geom.Rect {
	w, h := parent.Width(), parent.Height()
	x1 := parent.MinX + rng.Float64()*w
	x2 := parent.MinX + rng.Float64()*w
	y1 := parent.MinY + rng.Float64()*h
	y2 := parent.MinY + rng.Float64()*h
	return geom.NewRect(x1, y1, x2, y2)
}

func TestBasicNodeAccessors(t *testing.T) {
	n := NewBasicNode(geom.NewRect(0, 0, 2, 2), 7)
	if n.Bounds() != geom.NewRect(0, 0, 2, 2) {
		t.Fatalf("bounds = %v", n.Bounds())
	}
	if id, ok := n.Tuple(); !ok || id != 7 {
		t.Fatalf("tuple = %d, %t", id, ok)
	}
	tech := NewBasicNode(geom.NewRect(0, 0, 1, 1), -1)
	if _, ok := tech.Tuple(); ok {
		t.Fatal("negative id must mean technical node")
	}
	if n.Children() != nil {
		t.Fatal("leaf children should be nil")
	}
	c := n.AddChild(NewBasicNode(geom.NewRect(0, 0, 1, 1), 8))
	if len(n.Children()) != 1 || n.Children()[0] != Node(c) {
		t.Fatal("AddChild wiring broken")
	}
}

func TestBasicTreeHeight(t *testing.T) {
	if h := NewBasicTree(nil).Height(); h != 0 {
		t.Fatalf("empty tree height = %d", h)
	}
	root := NewBasicNode(geom.NewRect(0, 0, 10, 10), 0)
	tr := NewBasicTree(root)
	if tr.Height() != 0 {
		t.Fatalf("root-only height = %d", tr.Height())
	}
	c := root.AddChild(NewBasicNode(geom.NewRect(0, 0, 5, 5), 1))
	c.AddChild(NewBasicNode(geom.NewRect(0, 0, 2, 2), 2))
	root.AddChild(NewBasicNode(geom.NewRect(5, 5, 9, 9), 3))
	if tr.Height() != 2 {
		t.Fatalf("ragged tree height = %d, want 2", tr.Height())
	}
}

func TestBasicTreeValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 3, 3, 0, false)
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated tree should validate: %v", err)
	}
	bad := NewBasicNode(geom.NewRect(0, 0, 1, 1), 0)
	bad.AddChild(NewBasicNode(geom.NewRect(0, 0, 5, 5), 1)) // escapes parent
	if err := NewBasicTree(bad).Validate(); err == nil {
		t.Fatal("escaping child must fail validation")
	}
	if err := NewBasicTree(nil).Validate(); err != nil {
		t.Fatalf("empty tree validates: %v", err)
	}
}

func TestWalkBFSOrderAndEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, n := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 2, 3, 0, false)
	var levels []int
	var ids []int
	Walk(tr, func(node Node, level int) bool {
		levels = append(levels, level)
		if id, ok := node.Tuple(); ok {
			ids = append(ids, id)
		}
		return true
	})
	// Levels must be non-decreasing in a BFS walk.
	for i := 1; i < len(levels); i++ {
		if levels[i] < levels[i-1] {
			t.Fatalf("walk not breadth-first at step %d", i)
		}
	}
	// Tuple IDs were assigned in BFS order, so they must come out sorted.
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("BFS ids out of order at %d: %v", i, ids[i-1:i+1])
		}
	}
	if len(ids) != n {
		t.Fatalf("visited %d tuples, want %d", len(ids), n)
	}
	count := 0
	Walk(tr, func(Node, int) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestCountNodesAndBFSOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 3, 2, 0, false)
	// Full 3-ary tree of height 2: 1 + 3 + 9 = 13 nodes.
	if n := CountNodes(tr); n != 13 {
		t.Fatalf("CountNodes = %d, want 13", n)
	}
	order := BFSOrder(tr)
	if len(order) != 13 {
		t.Fatalf("BFSOrder length = %d", len(order))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("BFSOrder[%d] = %d", i, id)
		}
	}
	// With technical interiors only leaves carry tuples: 9 of them.
	tr2, n2 := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 3, 2, 0, true)
	if n2 != 9 || len(BFSOrder(tr2)) != 9 {
		t.Fatalf("technical tree tuples = %d / %d, want 9", n2, len(BFSOrder(tr2)))
	}
	if CountNodes(tr2) != 13 {
		t.Fatalf("technical tree still has 13 nodes")
	}
}

func TestWalkEmptyTree(t *testing.T) {
	called := false
	Walk(NewBasicTree(nil), func(Node, int) bool { called = true; return true })
	if called {
		t.Fatal("walk of empty tree must not call f")
	}
	if CountNodes(NewBasicTree(nil)) != 0 {
		t.Fatal("empty tree has 0 nodes")
	}
}
