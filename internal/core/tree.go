// Package core implements the paper's primary contribution: generalization
// trees and the hierarchical spatial-selection and spatial-join algorithms
// SELECT and JOIN (§3 of Günther, "Efficient Computation of Spatial Joins",
// ICDE 1993).
//
// A generalization tree is any tree of spatial objects in which every
// non-root object is completely contained in its parent's object. Objects at
// the same level may overlap, dead space is allowed, and — unlike most index
// structures — interior nodes may correspond to application objects that can
// themselves qualify for query results. Both abstract indices (R-trees,
// package rtree) and application hierarchies (package carto) satisfy the
// Tree interface and can be handed to Select and Join unchanged.
package core

import (
	"fmt"

	"spatialjoin/internal/geom"
)

// Node is one node of a generalization tree.
type Node interface {
	// Bounds returns the node's spatial object as an MBR; Θ filters are
	// evaluated on this rectangle.
	Bounds() geom.Rect

	// Object returns the node's exact geometry for θ evaluation. Index
	// nodes whose object is the MBR itself simply return Bounds().
	Object() geom.Spatial

	// Tuple returns the ID of the relation tuple this node corresponds to.
	// ok is false for purely technical index nodes (e.g. R-tree interior
	// nodes), which participate in filtering but never in results.
	Tuple() (id int, ok bool)

	// Children returns the node's direct descendants, nil for leaves.
	Children() []Node
}

// Tree is a generalization tree used as a secondary index on one spatial
// column of one relation.
type Tree interface {
	// Root returns the root node, or nil for an empty tree.
	Root() Node

	// Height returns the number of levels below the root (a root-only tree
	// has height 0), i.e. the paper's n with the root at height 0.
	Height() int
}

// BasicNode is a straightforward materialized Node for building
// application-defined generalization trees (cartographic hierarchies,
// synthetic model trees, tests).
type BasicNode struct {
	// Obj is the node's spatial object.
	Obj geom.Spatial
	// TupleID is the corresponding tuple, or a negative value when the node
	// is technical.
	TupleID int
	// Kids are the direct descendants.
	Kids []*BasicNode
}

// NewBasicNode returns a node for obj and tuple id (negative id = technical
// node).
func NewBasicNode(obj geom.Spatial, id int) *BasicNode {
	return &BasicNode{Obj: obj, TupleID: id}
}

// AddChild appends c to the node's children and returns c.
func (n *BasicNode) AddChild(c *BasicNode) *BasicNode {
	n.Kids = append(n.Kids, c)
	return c
}

// Bounds implements Node.
func (n *BasicNode) Bounds() geom.Rect { return n.Obj.Bounds() }

// Object implements Node.
func (n *BasicNode) Object() geom.Spatial { return n.Obj }

// Tuple implements Node.
func (n *BasicNode) Tuple() (int, bool) { return n.TupleID, n.TupleID >= 0 }

// Children implements Node.
func (n *BasicNode) Children() []Node {
	if len(n.Kids) == 0 {
		return nil
	}
	out := make([]Node, len(n.Kids))
	for i, k := range n.Kids {
		out[i] = k
	}
	return out
}

// BasicTree wraps a BasicNode root as a Tree.
type BasicTree struct {
	root *BasicNode
}

// NewBasicTree returns a tree rooted at root (which may be nil for an empty
// tree).
func NewBasicTree(root *BasicNode) *BasicTree { return &BasicTree{root: root} }

// Root implements Tree.
func (t *BasicTree) Root() Node {
	if t.root == nil {
		return nil
	}
	return t.root
}

// RootBasic returns the root as a *BasicNode for construction-time use.
func (t *BasicTree) RootBasic() *BasicNode { return t.root }

// Height implements Tree.
func (t *BasicTree) Height() int {
	var h func(n *BasicNode) int
	h = func(n *BasicNode) int {
		best := 0
		for _, k := range n.Kids {
			if d := 1 + h(k); d > best {
				best = d
			}
		}
		return best
	}
	if t.root == nil {
		return 0
	}
	return h(t.root)
}

// Validate checks the generalization-tree invariant: every child's MBR is
// completely contained in its parent's MBR.
func (t *BasicTree) Validate() error {
	var walk func(n *BasicNode) error
	walk = func(n *BasicNode) error {
		pb := n.Bounds()
		for i, k := range n.Kids {
			if !pb.ContainsRect(k.Bounds()) {
				return fmt.Errorf("core: child %d (%v) escapes parent (%v)", i, k.Bounds(), pb)
			}
			if err := walk(k); err != nil {
				return err
			}
		}
		return nil
	}
	if t.root == nil {
		return nil
	}
	return walk(t.root)
}

// Walk visits every node of tree in breadth-first order, calling f with the
// node and its level. Returning false stops the walk.
func Walk(tree Tree, f func(n Node, level int) bool) {
	root := tree.Root()
	if root == nil {
		return
	}
	type entry struct {
		n     Node
		level int
	}
	queue := []entry{{root, 0}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if !f(e.n, e.level) {
			return
		}
		for _, c := range e.n.Children() {
			queue = append(queue, entry{c, e.level + 1})
		}
	}
}

// CountNodes returns the number of nodes in tree.
func CountNodes(tree Tree) int {
	n := 0
	Walk(tree, func(Node, int) bool { n++; return true })
	return n
}

// BFSOrder returns the tuple IDs of all tuple-bearing nodes in breadth-first
// order. Loading a relation in this order produces the paper's clustered
// layout (strategy IIb).
func BFSOrder(tree Tree) []int {
	var ids []int
	Walk(tree, func(n Node, _ int) bool {
		if id, ok := n.Tuple(); ok {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}
