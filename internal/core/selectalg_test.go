package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
)

// bruteSelect computes the reference answer by exhaustively testing every
// tuple-bearing node.
func bruteSelect(tree Tree, o geom.Spatial, op pred.Operator) []int {
	var out []int
	Walk(tree, func(n Node, _ int) bool {
		if id, ok := n.Tuple(); ok && op.Eval(o, n.Object()) {
			out = append(out, id)
		}
		return true
	})
	sort.Ints(out)
	return out
}

func sorted(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectMatchesBruteForceAllOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ops := []pred.Operator{
		pred.Overlaps{},
		pred.WithinDistance{D: 20},
		pred.Includes{},
		pred.ContainedIn{},
		pred.NorthwestOf{},
		pred.ReachableWithin{Minutes: 5, Speed: 3},
	}
	for trial := 0; trial < 10; trial++ {
		tree, _ := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 3, 3, 0, false)
		o := subRect(rng, geom.NewRect(0, 0, 120, 120))
		for _, op := range ops {
			want := bruteSelect(tree, o, op)
			got, err := Select(tree, o, op, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(sorted(got.Tuples), want) {
				t.Fatalf("trial %d, %s: Select found %d tuples, brute force %d",
					trial, op.Name(), len(got.Tuples), len(want))
			}
		}
	}
}

func TestSelectBFSEqualsDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		tree, _ := buildUniformTree(rng, geom.NewRect(0, 0, 80, 80), 4, 3, 0, false)
		o := subRect(rng, geom.NewRect(0, 0, 80, 80))
		op := pred.Overlaps{}
		bfs, err := Select(tree, o, op, &SelectOptions{Traversal: BreadthFirst})
		if err != nil {
			t.Fatal(err)
		}
		dfs, err := Select(tree, o, op, &SelectOptions{Traversal: DepthFirst})
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(sorted(bfs.Tuples), sorted(dfs.Tuples)) {
			t.Fatalf("trial %d: BFS and DFS disagree", trial)
		}
		// They do identical pruning, so the work counters must agree too.
		if bfs.Stats.FilterEvals != dfs.Stats.FilterEvals ||
			bfs.Stats.ExactEvals != dfs.Stats.ExactEvals ||
			bfs.Stats.NodesExamined != dfs.Stats.NodesExamined {
			t.Fatalf("trial %d: BFS stats %+v != DFS stats %+v", trial, bfs.Stats, dfs.Stats)
		}
	}
}

func TestSelectNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tree, _ := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 3, 3, 0, false)
	got, err := Select(tree, geom.NewRect(0, 0, 100, 100), pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, id := range got.Tuples {
		if seen[id] {
			t.Fatalf("tuple %d reported twice", id)
		}
		seen[id] = true
	}
}

func TestSelectEmptyTree(t *testing.T) {
	got, err := Select(NewBasicTree(nil), geom.NewRect(0, 0, 1, 1), pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 0 || got.Stats.NodesExamined != 0 {
		t.Fatalf("empty tree produced %+v", got)
	}
}

func TestSelectPrunesDisjointSubtrees(t *testing.T) {
	// Two well-separated subtrees; a selector hitting only the left one
	// must never examine nodes of the right one (beyond its root).
	root := NewBasicNode(geom.NewRect(0, 0, 100, 10), 0)
	left := root.AddChild(NewBasicNode(geom.NewRect(0, 0, 10, 10), 1))
	right := root.AddChild(NewBasicNode(geom.NewRect(90, 0, 100, 10), 2))
	for i := 0; i < 5; i++ {
		left.AddChild(NewBasicNode(geom.NewRect(float64(i), 0, float64(i+1), 5), 10+i))
		right.AddChild(NewBasicNode(geom.NewRect(float64(90+i), 0, float64(91+i), 5), 20+i))
	}
	tree := NewBasicTree(root)
	sel := geom.NewRect(2, 2, 3, 3)
	got, err := Select(tree, sel, pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes examined: root + its 2 children + left's 5 children = 8. The
	// right subtree's children must be pruned.
	if got.Stats.NodesExamined != 8 {
		t.Fatalf("examined %d nodes, want 8 (pruning broken)", got.Stats.NodesExamined)
	}
	// Matches: root (contains sel region), left, and leaves 11..13 — leaf x
	// ranges [1,2], [2,3], [3,4] all touch or overlap sel's [2,3] (boundary
	// contact counts as overlap).
	want := []int{0, 1, 11, 12, 13}
	if !equalInts(sorted(got.Tuples), want) {
		t.Fatalf("tuples = %v, want %v", sorted(got.Tuples), want)
	}
}

func TestSelectInteriorNodesCanQualify(t *testing.T) {
	// The paper explicitly allows interior nodes to be application objects
	// that qualify for the result (§3.2).
	root := NewBasicNode(geom.NewRect(0, 0, 10, 10), 0)
	root.AddChild(NewBasicNode(geom.NewRect(1, 1, 2, 2), 1))
	got, err := Select(NewBasicTree(root), geom.NewRect(4, 4, 6, 6), pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(sorted(got.Tuples), []int{0}) {
		t.Fatalf("interior root should qualify alone, got %v", got.Tuples)
	}
}

func TestSelectTechnicalNodesNeverQualify(t *testing.T) {
	root := NewBasicNode(geom.NewRect(0, 0, 10, 10), -1)
	root.AddChild(NewBasicNode(geom.NewRect(1, 1, 2, 2), 5))
	got, err := Select(NewBasicTree(root), geom.NewRect(0, 0, 10, 10), pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got.Tuples, []int{5}) {
		t.Fatalf("tuples = %v, want [5]", got.Tuples)
	}
	// Technical root: filter evaluated but no exact eval for it.
	if got.Stats.ExactEvals != 1 {
		t.Fatalf("exact evals = %d, want 1", got.Stats.ExactEvals)
	}
}

func TestSelectTouchCalledOncePerExaminedNode(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tree, _ := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 3, 2, 0, false)
	touches := 0
	res, err := Select(tree, geom.NewRect(0, 0, 100, 100), pred.Overlaps{},
		&SelectOptions{Touch: func(Node) error { touches++; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if int64(touches) != res.Stats.NodesExamined {
		t.Fatalf("touches = %d, examined = %d", touches, res.Stats.NodesExamined)
	}
	if touches != CountNodes(tree) {
		t.Fatalf("an everything-overlaps query must touch all %d nodes, got %d",
			CountNodes(tree), touches)
	}
}

func TestSelectTouchErrorAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tree, _ := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 3, 2, 0, false)
	boom := errors.New("io failure")
	for _, trav := range []Traversal{BreadthFirst, DepthFirst} {
		n := 0
		_, err := Select(tree, geom.NewRect(0, 0, 100, 100), pred.Overlaps{},
			&SelectOptions{Traversal: trav, Touch: func(Node) error {
				n++
				if n == 3 {
					return boom
				}
				return nil
			}})
		if !errors.Is(err, boom) {
			t.Fatalf("traversal %d: err = %v, want io failure", trav, err)
		}
	}
}

func TestSelectAsymmetricOperatorDirection(t *testing.T) {
	// Selection criterion is "o θ R.A": with NorthwestOf, we must return
	// tuples a such that o is northwest of a — not the converse.
	root := NewBasicNode(geom.NewRect(0, 0, 100, 100), -1)
	se := root.AddChild(NewBasicNode(geom.NewRect(80, 0, 90, 10), 1))  // far southeast
	nw := root.AddChild(NewBasicNode(geom.NewRect(0, 90, 10, 100), 2)) // far northwest
	_, _ = se, nw
	tree := NewBasicTree(root)
	o := geom.NewRect(40, 40, 60, 60) // center (50,50)
	got, err := Select(tree, o, pred.NorthwestOf{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// o (center 50,50) is NW of se (center 85,5) but not of nw (center 5,95).
	if !equalInts(sorted(got.Tuples), []int{1}) {
		t.Fatalf("tuples = %v, want [1]", got.Tuples)
	}
}

func TestSelectStatsMaxQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tree, _ := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 4, 2, 0, false)
	res, err := Select(tree, geom.NewRect(0, 0, 100, 100), pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Everything qualifies: the last BFS level holds 16 nodes.
	if res.Stats.MaxQueue != 16 {
		t.Fatalf("MaxQueue = %d, want 16", res.Stats.MaxQueue)
	}
}
