package core

import "context"

// ctxStride is how many node examinations pass between context checks
// during a descent. Checking every node would put a synchronized load on
// the hottest loop of every strategy; every ctxStride nodes bounds the
// cancellation latency to a few dozen filter evaluations while keeping the
// common case free.
const ctxStride = 64

// ctxStep returns the context's error on every ctxStride-th node
// examination. nodes is the caller's running examination count; ctx may be
// nil (never cancelled).
func ctxStep(ctx context.Context, nodes int64) error {
	if ctx == nil || nodes%ctxStride != 0 {
		return nil
	}
	return ctx.Err()
}

// ctxOr returns ctx, or context.Background() when ctx is nil, for APIs
// that require a non-nil context.
func ctxOr(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
