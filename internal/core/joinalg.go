package core

import (
	"context"
	"sort"

	"spatialjoin/internal/obs"
	"spatialjoin/internal/parallel"
	"spatialjoin/internal/pred"
)

// Match is one result pair of a spatial join: tuple IDs from the R-side and
// S-side relations.
type Match struct {
	R, S int
}

// SortMatches orders matches canonically by (R, S) ascending. Every
// strategy sorts its result this way before returning, so the outputs of
// different strategies — and of serial and parallel runs of the same
// strategy — are byte-comparable.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].R != ms[j].R {
			return ms[i].R < ms[j].R
		}
		return ms[i].S < ms[j].S
	})
}

// JoinOptions tunes algorithm JOIN.
type JoinOptions struct {
	// TouchR / TouchS are invoked once per examined node of the respective
	// tree, before its filter is evaluated; executors charge page I/O here.
	// With Workers > 1 they are called from multiple goroutines and must be
	// safe for concurrent use.
	TouchR func(Node) error
	TouchS func(Node) error
	// Workers is the number of goroutines expanding each QualPairs level
	// concurrently; values ≤ 1 keep the paper's sequential descent. The
	// result is identical either way: each level's pair list is split into
	// contiguous chunks, every worker accumulates into its own JoinResult,
	// and the partial results are merged back in chunk order.
	Workers int
	// Ctx, when non-nil, bounds the descent: it is checked between levels,
	// between worker chunks, and every ctxStride node examinations inside a
	// chunk, and its error aborts the join mid-descent.
	Ctx context.Context
	// Trace, when non-nil, records the synchronized descent: one span named
	// "level" per QualPairs level, nested under TraceParent, carrying the
	// level index, its QualPairs cardinality, and the filter/exact/node
	// deltas accrued expanding it. A level aborted by an error still ends
	// its span (with an "error" event), so failed queries keep a complete
	// trace.
	Trace       *obs.Trace
	TraceParent obs.SpanID
	// TraceReads, when non-nil, is sampled at the sequential level
	// boundaries; each level span carries the delta as its "reads"
	// attribute. Levels are expanded one at a time (the worker fan-out is
	// per level, with a barrier), so the per-level deltas telescope: they
	// sum exactly to the sampler's total movement across the descent.
	TraceReads func() int64
}

// JoinResult is the output of algorithm JOIN.
type JoinResult struct {
	// Pairs are the matching tuple pairs in discovery order. Each matching
	// pair appears exactly once.
	Pairs []Match
	// Stats is the work performed across both trees.
	Stats Stats
}

// Join implements algorithm JOIN (§3.3): the general spatial join R ⋈θ S of
// two relations indexed by generalization trees tr and ts. Levels are
// processed via QualPairs lists exactly as in the paper: a pair (a, b) whose
// Θ filter passes (JOIN2) contributes its own tuples if a θ b (JOIN3), and
// then two SELECT passes find all matches between a and strict descendants
// of b and between strict descendants of a and b, while the direct
// descendants that passed their Θ checks are crossed into QualPairs[j+1]
// (JOIN4).
//
// The operand order is fixed: R-side values are always the left operand of
// Eval and Filter, so asymmetric operators (northwest_of, includes) join in
// the expected direction. Unlike the paper's pseudocode, iteration continues
// until QualPairs empties rather than to min(height, height), which also
// handles ragged (non-balanced) generalization trees.
func Join(tr, ts Tree, op pred.Operator, opts *JoinOptions) (*JoinResult, error) {
	var options JoinOptions
	if opts != nil {
		options = *opts
	}
	res := &JoinResult{}
	rootR, rootS := tr.Root(), ts.Root()
	if rootR == nil || rootS == nil {
		return res, nil
	}

	qual := []qualPair{{rootR, rootS}}
	for level := 0; len(qual) > 0; level++ {
		if options.Ctx != nil {
			if err := options.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		if len(qual) > res.Stats.MaxQueue {
			res.Stats.MaxQueue = len(qual)
		}
		if options.Trace == nil {
			next, err := expandLevel(qual, op, &options, res)
			if err != nil {
				return nil, err
			}
			qual = next
			continue
		}
		span := options.Trace.Begin(options.TraceParent, "level")
		before := res.Stats
		var readsBefore int64
		if options.TraceReads != nil {
			readsBefore = options.TraceReads()
		}
		next, err := expandLevel(qual, op, &options, res)
		attrs := []obs.Attr{
			obs.Int("level", int64(level)),
			obs.Int("qualpairs", int64(len(qual))),
			obs.Int("filter_evals", res.Stats.FilterEvals-before.FilterEvals),
			obs.Int("exact_evals", res.Stats.ExactEvals-before.ExactEvals),
			obs.Int("nodes", res.Stats.NodesExamined-before.NodesExamined),
		}
		if options.TraceReads != nil {
			attrs = append(attrs, obs.Int("reads", options.TraceReads()-readsBefore))
		}
		if err != nil {
			options.Trace.Event(span, "error", obs.Str("error", err.Error()))
			options.Trace.End(span, attrs...)
			return nil, err
		}
		options.Trace.End(span, attrs...)
		qual = next
	}
	return res, nil
}

// qualPair is one entry of a QualPairs level: a node of each tree whose
// parents' Θ filters both passed.
type qualPair struct{ a, b Node }

// expandLevel processes one QualPairs level and returns the next. With
// options.Workers > 1 the level is split into contiguous chunks fanned out
// over a worker pool; per-worker results merge back in chunk order, so
// pair discovery order and statistics match the sequential descent.
func expandLevel(qual []qualPair, op pred.Operator, options *JoinOptions,
	res *JoinResult) ([]qualPair, error) {

	workers := options.Workers
	if workers <= 1 || len(qual) < 2 {
		return expandChunk(qual, op, options, res)
	}
	chunks := parallel.Chunks(len(qual), workers*4)
	locals := make([]JoinResult, len(chunks))
	nexts := make([][]qualPair, len(chunks))
	err := parallel.RunCtx(ctxOr(options.Ctx), workers, len(chunks), func(ci int) error {
		nx, err := expandChunk(qual[chunks[ci].Lo:chunks[ci].Hi], op, options, &locals[ci])
		nexts[ci] = nx
		return err
	})
	if err != nil {
		return nil, err
	}
	var next []qualPair
	for ci := range chunks {
		res.Pairs = append(res.Pairs, locals[ci].Pairs...)
		res.Stats.add(locals[ci].Stats)
		next = append(next, nexts[ci]...)
	}
	return next, nil
}

// expandChunk runs JOIN2–JOIN4 for a contiguous run of a QualPairs level,
// accumulating matches and stats into res and returning the qualifying
// child pairs for the next level.
func expandChunk(qual []qualPair, op pred.Operator, options *JoinOptions,
	res *JoinResult) ([]qualPair, error) {

	var next []qualPair
	for _, p := range qual {
		a, b := p.a, p.b
		// JOIN2: Θ check for the pair.
		if err := touch2(a, b, options, res); err != nil {
			return nil, err
		}
		res.Stats.FilterEvals++
		if !op.Filter(a.Bounds(), b.Bounds()) {
			continue
		}
		// JOIN3: exact match of the pair itself.
		if ra, okA := a.Tuple(); okA {
			if sb, okB := b.Tuple(); okB {
				res.Stats.ExactEvals++
				if op.Eval(a.Object(), b.Object()) {
					res.Pairs = append(res.Pairs, Match{R: ra, S: sb})
				}
			}
		}
		// JOIN4: SELECT a against b's subtrees, and b against a's.
		aKids, bKids := a.Children(), b.Children()
		bQual := make([]bool, len(bKids))
		for i, b2 := range bKids {
			ok, err := joinSelect(a, b2, op, rightSide, options, res)
			if err != nil {
				return nil, err
			}
			bQual[i] = ok
		}
		aQual := make([]bool, len(aKids))
		for i, a2 := range aKids {
			ok, err := joinSelect(b, a2, op, leftSide, options, res)
			if err != nil {
				return nil, err
			}
			aQual[i] = ok
		}
		for i, a2 := range aKids {
			if !aQual[i] {
				continue
			}
			for j, b2 := range bKids {
				if bQual[j] {
					next = append(next, qualPair{a2, b2})
				}
			}
		}
	}
	return next, nil
}

// side distinguishes which tree the moving node of a join-side SELECT pass
// belongs to, so operands stay in R-before-S order.
type side uint8

const (
	rightSide side = iota // fixed node is from R, moving subtree from S
	leftSide              // fixed node is from S, moving subtree from R
)

// joinSelect runs a SELECT pass of JOIN4: fixed is compared against the
// subtree rooted at n. It reports whether the Θ filter passed at n itself
// (the qualification JOIN4 uses to build QualPairs[j+1]).
func joinSelect(fixed, n Node, op pred.Operator, s side,
	opts *JoinOptions, res *JoinResult) (bool, error) {

	if err := touch1(n, s, opts, res); err != nil {
		return false, err
	}
	res.Stats.FilterEvals++
	var pass bool
	if s == rightSide {
		pass = op.Filter(fixed.Bounds(), n.Bounds())
	} else {
		pass = op.Filter(n.Bounds(), fixed.Bounds())
	}
	if !pass {
		return false, nil
	}
	if fid, okF := fixed.Tuple(); okF {
		if nid, okN := n.Tuple(); okN {
			res.Stats.ExactEvals++
			if s == rightSide {
				if op.Eval(fixed.Object(), n.Object()) {
					res.Pairs = append(res.Pairs, Match{R: fid, S: nid})
				}
			} else {
				if op.Eval(n.Object(), fixed.Object()) {
					res.Pairs = append(res.Pairs, Match{R: nid, S: fid})
				}
			}
		}
	}
	for _, c := range n.Children() {
		if _, err := joinSelect(fixed, c, op, s, opts, res); err != nil {
			return false, err
		}
	}
	return true, nil
}

// touch2 charges node examinations for both members of a QualPairs pair.
func touch2(a, b Node, opts *JoinOptions, res *JoinResult) error {
	res.Stats.NodesExamined += 2
	if err := ctxStep(opts.Ctx, res.Stats.NodesExamined); err != nil {
		return err
	}
	if opts.TouchR != nil {
		if err := opts.TouchR(a); err != nil {
			return err
		}
	}
	if opts.TouchS != nil {
		if err := opts.TouchS(b); err != nil {
			return err
		}
	}
	return nil
}

// touch1 charges a node examination on the moving side of a SELECT pass.
func touch1(n Node, s side, opts *JoinOptions, res *JoinResult) error {
	res.Stats.NodesExamined++
	if err := ctxStep(opts.Ctx, res.Stats.NodesExamined); err != nil {
		return err
	}
	if s == rightSide {
		if opts.TouchS != nil {
			return opts.TouchS(n)
		}
		return nil
	}
	if opts.TouchR != nil {
		return opts.TouchR(n)
	}
	return nil
}
