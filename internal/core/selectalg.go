package core

import (
	"context"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/pred"
)

// Stats counts the work an algorithm performed, in the units of the paper's
// cost model: Θ filter evaluations (charged C_Θ each), exact θ evaluations,
// and node examinations (each of which the executor layer may turn into a
// page access).
type Stats struct {
	// FilterEvals is the number of Θ evaluations.
	FilterEvals int64
	// ExactEvals is the number of θ evaluations.
	ExactEvals int64
	// NodesExamined is the number of node visits (Touch calls).
	NodesExamined int64
	// MaxQueue is the peak size of the traversal worklist, a memory proxy.
	MaxQueue int
}

// add accumulates other into s.
func (s *Stats) add(other Stats) {
	s.FilterEvals += other.FilterEvals
	s.ExactEvals += other.ExactEvals
	s.NodesExamined += other.NodesExamined
	if other.MaxQueue > s.MaxQueue {
		s.MaxQueue = other.MaxQueue
	}
}

// Traversal selects the tree-search order of algorithm SELECT. The paper
// formulates SELECT breadth-first and notes a depth-first variant is equally
// possible, with the better choice depending on the physical clustering of
// the tree (§3.2).
type Traversal uint8

const (
	// BreadthFirst is the paper's QualNodes-per-level formulation.
	BreadthFirst Traversal = iota
	// DepthFirst recurses into each qualifying subtree immediately.
	DepthFirst
)

// SelectOptions tunes algorithm SELECT.
type SelectOptions struct {
	// Traversal is the search order; the zero value is BreadthFirst.
	Traversal Traversal
	// Touch, when non-nil, is invoked once per examined node, before its Θ
	// filter is evaluated. Executors use it to charge page I/O for reading
	// the node's tuple.
	Touch func(Node) error
	// Ctx, when non-nil, bounds the traversal: it is checked between
	// breadth-first levels and every ctxStride node examinations, and its
	// error aborts the selection.
	Ctx context.Context
	// Trace, when non-nil, records the traversal under TraceParent: one
	// "level" span per QualNodes level breadth-first (with the level index,
	// cardinality, and work deltas), or a single "dfs" span for the
	// depth-first variant. An aborted traversal still ends its open span
	// with an "error" event, keeping failed queries' traces complete.
	Trace       *obs.Trace
	TraceParent obs.SpanID
	// TraceReads, when non-nil, is sampled at level boundaries; each span
	// carries its delta as the "reads" attribute (see JoinOptions).
	TraceReads func() int64
}

// SelectResult is the output of algorithm SELECT.
type SelectResult struct {
	// Tuples are the IDs of matching tuples, in discovery order.
	Tuples []int
	// Stats is the work performed.
	Stats Stats
}

// Select implements algorithm SELECT (§3.2): given a selector object o and a
// relation indexed by the generalization tree tree, it returns the tuples a
// with o θ a. The Θ filter of op prunes subtrees that cannot contain
// matches; interior nodes that carry tuples may themselves qualify.
//
// The operand order follows the paper's selection criterion "o θ R.A": o is
// always the left operand of both Eval and Filter.
func Select(tree Tree, o geom.Spatial, op pred.Operator, opts *SelectOptions) (*SelectResult, error) {
	var options SelectOptions
	if opts != nil {
		options = *opts
	}
	res := &SelectResult{}
	root := tree.Root()
	if root == nil {
		return res, nil
	}
	ob := o.Bounds()
	if options.Traversal == DepthFirst {
		end := traceLevel(&options, res, "dfs", -1, 1)
		err := selectDFS(root, o, ob, op, &options, res)
		end(err)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	// Breadth-first: QualNodes[j] is the worklist for the current level.
	qual := []Node{root}
	for level := 0; len(qual) > 0; level++ {
		if options.Ctx != nil {
			if err := options.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		if len(qual) > res.Stats.MaxQueue {
			res.Stats.MaxQueue = len(qual)
		}
		end := traceLevel(&options, res, "level", level, len(qual))
		var next []Node
		var lvlErr error
		for _, a := range qual {
			ok, err := examine(a, o, ob, op, &options, res)
			if err != nil {
				lvlErr = err
				break
			}
			if ok {
				next = append(next, a.Children()...)
			}
		}
		end(lvlErr)
		if lvlErr != nil {
			return nil, lvlErr
		}
		qual = next
	}
	return res, nil
}

// traceLevel opens one traversal span (a breadth-first level or the whole
// depth-first descent) and returns the closure that ends it with the work
// deltas — and an "error" event when the traversal aborted. With tracing
// off it returns a no-op without touching the clock.
func traceLevel(options *SelectOptions, res *SelectResult, name string, level, width int) func(error) {
	if options.Trace == nil {
		return func(error) {}
	}
	span := options.Trace.Begin(options.TraceParent, name)
	before := res.Stats
	var readsBefore int64
	if options.TraceReads != nil {
		readsBefore = options.TraceReads()
	}
	return func(err error) {
		attrs := make([]obs.Attr, 0, 6)
		if level >= 0 {
			attrs = append(attrs, obs.Int("level", int64(level)))
		}
		attrs = append(attrs,
			obs.Int("qualnodes", int64(width)),
			obs.Int("filter_evals", res.Stats.FilterEvals-before.FilterEvals),
			obs.Int("exact_evals", res.Stats.ExactEvals-before.ExactEvals),
			obs.Int("nodes", res.Stats.NodesExamined-before.NodesExamined),
		)
		if options.TraceReads != nil {
			attrs = append(attrs, obs.Int("reads", options.TraceReads()-readsBefore))
		}
		if err != nil {
			options.Trace.Event(span, "error", obs.Str("error", err.Error()))
		}
		options.Trace.End(span, attrs...)
	}
}

// selectDFS is the depth-first variant of SELECT.
func selectDFS(n Node, o geom.Spatial, ob geom.Rect, op pred.Operator,
	opts *SelectOptions, res *SelectResult) error {

	ok, err := examine(n, o, ob, op, opts, res)
	if err != nil || !ok {
		return err
	}
	for _, c := range n.Children() {
		if err := selectDFS(c, o, ob, op, opts, res); err != nil {
			return err
		}
	}
	return nil
}

// examine performs the per-node work of SELECT2: touch the node, evaluate
// the Θ filter and — if it passes — the exact θ predicate, recording a
// match for tuple-bearing nodes. It reports whether the node's children
// should be searched.
func examine(a Node, o geom.Spatial, ob geom.Rect, op pred.Operator,
	opts *SelectOptions, res *SelectResult) (descend bool, err error) {

	res.Stats.NodesExamined++
	if err := ctxStep(opts.Ctx, res.Stats.NodesExamined); err != nil {
		return false, err
	}
	if opts.Touch != nil {
		if err := opts.Touch(a); err != nil {
			return false, err
		}
	}
	res.Stats.FilterEvals++
	if !op.Filter(ob, a.Bounds()) {
		return false, nil
	}
	if _, hasTuple := a.Tuple(); hasTuple {
		res.Stats.ExactEvals++
		if op.Eval(o, a.Object()) {
			id, _ := a.Tuple()
			res.Tuples = append(res.Tuples, id)
		}
	}
	return true, nil
}
