package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
)

// bruteJoin computes the reference join result by nested loop over all
// tuple-bearing nodes of both trees.
func bruteJoin(tr, ts Tree, op pred.Operator) []Match {
	var left, right []Node
	Walk(tr, func(n Node, _ int) bool {
		if _, ok := n.Tuple(); ok {
			left = append(left, n)
		}
		return true
	})
	Walk(ts, func(n Node, _ int) bool {
		if _, ok := n.Tuple(); ok {
			right = append(right, n)
		}
		return true
	})
	var out []Match
	for _, a := range left {
		for _, b := range right {
			if op.Eval(a.Object(), b.Object()) {
				ra, _ := a.Tuple()
				sb, _ := b.Tuple()
				out = append(out, Match{R: ra, S: sb})
			}
		}
	}
	sortMatches(out)
	return out
}

func sortMatches(m []Match) {
	sort.Slice(m, func(i, j int) bool {
		if m[i].R != m[j].R {
			return m[i].R < m[j].R
		}
		return m[i].S < m[j].S
	})
}

func equalMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestJoinMatchesBruteForceAllOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ops := []pred.Operator{
		pred.Overlaps{},
		pred.WithinDistance{D: 15},
		pred.Includes{},
		pred.ContainedIn{},
		pred.NorthwestOf{},
		pred.ReachableWithin{Minutes: 4, Speed: 2},
	}
	for trial := 0; trial < 6; trial++ {
		tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 3, 2, 0, false)
		ts, _ := buildUniformTree(rng, geom.NewRect(20, 20, 120, 120), 3, 2, 0, false)
		for _, op := range ops {
			want := bruteJoin(tr, ts, op)
			got, err := Join(tr, ts, op, nil)
			if err != nil {
				t.Fatal(err)
			}
			gotPairs := append([]Match(nil), got.Pairs...)
			sortMatches(gotPairs)
			if !equalMatches(gotPairs, want) {
				t.Fatalf("trial %d, %s: Join found %d pairs, brute force %d",
					trial, op.Name(), len(gotPairs), len(want))
			}
		}
	}
}

func TestJoinReportsEachPairExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 8; trial++ {
		tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 60, 60), 3, 3, 0, false)
		ts, _ := buildUniformTree(rng, geom.NewRect(10, 10, 70, 70), 3, 3, 0, false)
		got, err := Join(tr, ts, pred.Overlaps{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[Match]bool, len(got.Pairs))
		for _, m := range got.Pairs {
			if seen[m] {
				t.Fatalf("trial %d: pair %+v reported twice", trial, m)
			}
			seen[m] = true
		}
	}
}

func TestJoinTechnicalInteriorTrees(t *testing.T) {
	// R-tree style: only leaves carry tuples. Heights deliberately unequal
	// to exercise the uneven-descent path.
	rng := rand.New(rand.NewSource(121))
	tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 3, 2, 0, true)
	ts, _ := buildUniformTree(rng, geom.NewRect(0, 0, 100, 100), 2, 4, 0, true)
	for _, op := range []pred.Operator{pred.Overlaps{}, pred.WithinDistance{D: 25}} {
		want := bruteJoin(tr, ts, op)
		got, err := Join(tr, ts, op, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotPairs := append([]Match(nil), got.Pairs...)
		sortMatches(gotPairs)
		if !equalMatches(gotPairs, want) {
			t.Fatalf("%s: %d pairs vs brute force %d", op.Name(), len(gotPairs), len(want))
		}
	}
}

func TestJoinRaggedTrees(t *testing.T) {
	// Hand-built ragged trees (leaves at different depths), as in
	// cartographic hierarchies.
	mk := func(base float64) *BasicTree {
		root := NewBasicNode(geom.NewRect(base, 0, base+40, 40), 0)
		a := root.AddChild(NewBasicNode(geom.NewRect(base, 0, base+20, 20), 1))
		root.AddChild(NewBasicNode(geom.NewRect(base+20, 20, base+40, 40), 2)) // leaf at depth 1
		aa := a.AddChild(NewBasicNode(geom.NewRect(base, 0, base+10, 10), 3))
		aa.AddChild(NewBasicNode(geom.NewRect(base+1, 1, base+5, 5), 4)) // leaf at depth 3
		return NewBasicTree(root)
	}
	tr := mk(0)
	ts := mk(5) // shifted copy so plenty of cross matches exist
	want := bruteJoin(tr, ts, pred.Overlaps{})
	got, err := Join(tr, ts, pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotPairs := append([]Match(nil), got.Pairs...)
	sortMatches(gotPairs)
	if !equalMatches(gotPairs, want) {
		t.Fatalf("ragged join: got %v want %v", gotPairs, want)
	}
}

func TestJoinSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 3, 2, 0, false)
	want := bruteJoin(tr, tr, pred.Overlaps{})
	got, err := Join(tr, tr, pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotPairs := append([]Match(nil), got.Pairs...)
	sortMatches(gotPairs)
	if !equalMatches(gotPairs, want) {
		t.Fatalf("self join: %d pairs vs %d", len(gotPairs), len(want))
	}
	// Reflexive pairs (i,i) must be present for overlaps.
	found := false
	for _, m := range gotPairs {
		if m.R == m.S {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("self join must contain reflexive overlap pairs")
	}
}

func TestJoinEmptyTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 2, 2, 0, false)
	empty := NewBasicTree(nil)
	for _, pair := range [][2]Tree{{empty, tr}, {tr, empty}, {empty, empty}} {
		got, err := Join(pair[0], pair[1], pred.Overlaps{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Pairs) != 0 {
			t.Fatalf("empty-tree join produced %d pairs", len(got.Pairs))
		}
	}
}

func TestJoinAsymmetricOperatorDirection(t *testing.T) {
	// R ⋈(northwest_of) S must return (r, s) with center(r) NW of center(s).
	r := NewBasicTree(NewBasicNode(geom.NewRect(0, 90, 10, 100), 0)) // NW corner
	s := NewBasicTree(NewBasicNode(geom.NewRect(90, 0, 100, 10), 0)) // SE corner
	got, err := Join(r, s, pred.NorthwestOf{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pairs) != 1 {
		t.Fatalf("expected one pair, got %d", len(got.Pairs))
	}
	// Reversed direction must be empty.
	rev, err := Join(s, r, pred.NorthwestOf{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rev.Pairs) != 0 {
		t.Fatalf("reverse NW join must be empty, got %d", len(rev.Pairs))
	}
}

func TestJoinPruningSkipsDisjointSubtrees(t *testing.T) {
	// Two trees in disjoint halves of space: the join must stop after one
	// root-pair filter evaluation.
	rng := rand.New(rand.NewSource(151))
	tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 40, 40), 3, 3, 0, false)
	ts, _ := buildUniformTree(rng, geom.NewRect(100, 100, 140, 140), 3, 3, 0, false)
	got, err := Join(tr, ts, pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pairs) != 0 {
		t.Fatal("disjoint trees cannot produce overlap pairs")
	}
	if got.Stats.FilterEvals != 1 {
		t.Fatalf("filter evals = %d, want 1 (root pair only)", got.Stats.FilterEvals)
	}
}

func TestJoinTouchHooksSeeRightTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	tr, nR := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 2, 2, 0, false)
	ts, nS := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 2, 2, 100, false)
	_ = nR
	_ = nS
	var touchedR, touchedS int
	_, err := Join(tr, ts, pred.Overlaps{}, &JoinOptions{
		TouchR: func(n Node) error {
			if id, ok := n.Tuple(); ok && id >= 100 {
				return fmt.Errorf("S node %d leaked into TouchR", id)
			}
			touchedR++
			return nil
		},
		TouchS: func(n Node) error {
			if id, ok := n.Tuple(); ok && id < 100 {
				return fmt.Errorf("R node %d leaked into TouchS", id)
			}
			touchedS++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if touchedR == 0 || touchedS == 0 {
		t.Fatalf("touch hooks not called: R=%d S=%d", touchedR, touchedS)
	}
}

func TestJoinTouchErrorAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 2, 2, 0, false)
	ts, _ := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 2, 2, 0, false)
	boom := errors.New("disk died")
	_, err := Join(tr, ts, pred.Overlaps{}, &JoinOptions{
		TouchS: func(Node) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want disk died", err)
	}
}

func TestJoinStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	tr, _ := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 3, 2, 0, false)
	ts, _ := buildUniformTree(rng, geom.NewRect(0, 0, 50, 50), 3, 2, 0, false)
	got, err := Join(tr, ts, pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.FilterEvals == 0 || got.Stats.ExactEvals == 0 || got.Stats.NodesExamined == 0 {
		t.Fatalf("stats look unpopulated: %+v", got.Stats)
	}
	// Exact evaluations can never exceed filter evaluations (θ is only
	// checked behind a passing Θ).
	if got.Stats.ExactEvals > got.Stats.FilterEvals {
		t.Fatalf("exact evals %d > filter evals %d", got.Stats.ExactEvals, got.Stats.FilterEvals)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{FilterEvals: 1, ExactEvals: 2, NodesExamined: 3, MaxQueue: 4}
	b := Stats{FilterEvals: 10, ExactEvals: 20, NodesExamined: 30, MaxQueue: 2}
	a.add(b)
	if a.FilterEvals != 11 || a.ExactEvals != 22 || a.NodesExamined != 33 || a.MaxQueue != 4 {
		t.Fatalf("add result = %+v", a)
	}
}
