package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
)

func TestAdapterEmptyTree(t *testing.T) {
	tr := MustNew(DefaultOptions())
	gt := tr.Generalization()
	if gt.Root() != nil {
		t.Fatal("empty R-tree must adapt to nil root")
	}
	if gt.Height() != 0 {
		t.Fatalf("empty height = %d", gt.Height())
	}
}

func TestAdapterStructure(t *testing.T) {
	tr := MustNew(Options{MinEntries: 2, MaxEntries: 4})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		tr.Insert(randRect(rng, 100), i)
	}
	gt := tr.Generalization()
	if gt.Height() != tr.Height()+1 {
		t.Fatalf("adapter height %d, rtree height %d", gt.Height(), tr.Height())
	}
	// Interior nodes are technical; leaves carry the 100 tuples exactly once.
	tuples := make(map[int]int)
	interior := 0
	core.Walk(gt, func(n core.Node, _ int) bool {
		if id, ok := n.Tuple(); ok {
			tuples[id]++
			if n.Children() != nil {
				t.Fatal("item nodes must be leaves")
			}
		} else {
			interior++
		}
		return true
	})
	if len(tuples) != 100 {
		t.Fatalf("adapter exposes %d tuples, want 100", len(tuples))
	}
	for id, c := range tuples {
		if c != 1 {
			t.Fatalf("tuple %d appears %d times", id, c)
		}
	}
	if interior == 0 {
		t.Fatal("no technical nodes found")
	}
}

func TestAdapterContainmentInvariant(t *testing.T) {
	// The adapter must be a valid generalization tree: children inside
	// parents.
	tr := MustNew(Options{MinEntries: 2, MaxEntries: 4, Split: LinearSplit})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		tr.Insert(randRect(rng, 500), i)
	}
	var check func(n core.Node) bool
	check = func(n core.Node) bool {
		for _, c := range n.Children() {
			if !n.Bounds().ContainsRect(c.Bounds()) {
				t.Fatalf("child %v escapes parent %v", c.Bounds(), n.Bounds())
			}
			if !check(c) {
				return false
			}
		}
		return true
	}
	check(tr.Generalization().Root())
}

func TestSelectOverRTree(t *testing.T) {
	tr := MustNew(Options{MinEntries: 2, MaxEntries: 6})
	rng := rand.New(rand.NewSource(12))
	var rects []geom.Rect
	for i := 0; i < 300; i++ {
		r := randRect(rng, 400)
		rects = append(rects, r)
		tr.Insert(r, i)
	}
	query := geom.NewRect(100, 100, 180, 180)
	res, err := core.Select(tr.Generalization(), query, pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i, r := range rects {
		if r.Intersects(query) {
			want = append(want, i)
		}
	}
	got := append([]int(nil), res.Tuples...)
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("core.Select over R-tree: %d hits, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("hit set mismatch")
		}
	}
	// Pruning must make the hierarchical select cheaper than exhaustive.
	if res.Stats.NodesExamined >= int64(core.CountNodes(tr.Generalization())) {
		t.Fatalf("select examined all %d nodes — no pruning", res.Stats.NodesExamined)
	}
}

func TestJoinOverTwoRTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	trA := MustNew(Options{MinEntries: 2, MaxEntries: 5})
	trB := MustNew(Options{MinEntries: 2, MaxEntries: 5, Split: LinearSplit})
	var as, bs []geom.Rect
	for i := 0; i < 120; i++ {
		a := randRect(rng, 200)
		b := randRect(rng, 200)
		as = append(as, a)
		bs = append(bs, b)
		trA.Insert(a, i)
		trB.Insert(b, i)
	}
	res, err := core.Join(trA.Generalization(), trB.Generalization(), pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, a := range as {
		for _, b := range bs {
			if a.Intersects(b) {
				want++
			}
		}
	}
	if len(res.Pairs) != want {
		t.Fatalf("join found %d pairs, brute force %d", len(res.Pairs), want)
	}
	seen := make(map[core.Match]bool)
	for _, m := range res.Pairs {
		if seen[m] {
			t.Fatalf("duplicate pair %+v", m)
		}
		seen[m] = true
	}
}

func TestAdapterIsLiveView(t *testing.T) {
	tr := MustNew(DefaultOptions())
	gt := tr.Generalization()
	tr.Insert(geom.NewRect(0, 0, 1, 1), 0)
	if gt.Root() == nil {
		t.Fatal("adapter must see the insert")
	}
	res, err := core.Select(gt, geom.NewRect(0, 0, 2, 2), pred.Overlaps{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("live view select found %d", len(res.Tuples))
	}
}
