package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/geom"
)

func randRect(rng *rand.Rand, world float64) geom.Rect {
	x := rng.Float64() * world
	y := rng.Float64() * world
	return geom.NewRect(x, y, x+rng.Float64()*world/20, y+rng.Float64()*world/20)
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{MinEntries: 1, MaxEntries: 1}); err == nil {
		t.Error("MaxEntries < 2 must fail")
	}
	if _, err := New(Options{MinEntries: 0, MaxEntries: 8}); err == nil {
		t.Error("MinEntries < 1 must fail")
	}
	if _, err := New(Options{MinEntries: 5, MaxEntries: 8}); err == nil {
		t.Error("MinEntries > MaxEntries/2 must fail")
	}
	if _, err := New(Options{MinEntries: 2, MaxEntries: 8, Split: SplitStrategy(9)}); err == nil {
		t.Error("unknown split must fail")
	}
	if _, err := New(DefaultOptions()); err != nil {
		t.Errorf("default options must validate: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on invalid options")
		}
	}()
	MustNew(Options{MinEntries: 9, MaxEntries: 2})
}

func TestSplitStrategyString(t *testing.T) {
	if QuadraticSplit.String() != "quadratic" || LinearSplit.String() != "linear" {
		t.Fatal("split strategy names wrong")
	}
	if SplitStrategy(7).String() != "SplitStrategy(7)" {
		t.Fatal("unknown strategy string wrong")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := MustNew(DefaultOptions())
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Bounds(); ok {
		t.Fatal("empty tree has no bounds")
	}
	if v := tr.Search(geom.NewRect(0, 0, 1, 1), func(Item) bool { return true }); v != 0 {
		t.Fatalf("empty search visited %d nodes", v)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGrowsAndValidates(t *testing.T) {
	for _, split := range []SplitStrategy{QuadraticSplit, LinearSplit} {
		tr := MustNew(Options{MinEntries: 2, MaxEntries: 4, Split: split})
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 500; i++ {
			tr.Insert(randRect(rng, 1000), i)
			if i%50 == 0 {
				if err := tr.Validate(); err != nil {
					t.Fatalf("%v split, after %d inserts: %v", split, i+1, err)
				}
			}
		}
		if tr.Len() != 500 {
			t.Fatalf("len = %d", tr.Len())
		}
		if tr.Height() < 3 {
			t.Fatalf("500 items in M=4 tree should be at least 3 levels, got %d", tr.Height())
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	for _, split := range []SplitStrategy{QuadraticSplit, LinearSplit} {
		tr := MustNew(Options{MinEntries: 2, MaxEntries: 6, Split: split})
		rng := rand.New(rand.NewSource(2))
		var all []geom.Rect
		for i := 0; i < 400; i++ {
			r := randRect(rng, 500)
			all = append(all, r)
			tr.Insert(r, i)
		}
		for q := 0; q < 50; q++ {
			query := randRect(rng, 500).Expand(rng.Float64() * 30)
			var want []int
			for i, r := range all {
				if r.Intersects(query) {
					want = append(want, i)
				}
			}
			var got []int
			tr.Search(query, func(it Item) bool {
				got = append(got, it.ID)
				return true
			})
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("%v split, query %d: got %d hits, want %d", split, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v split, query %d: hit mismatch", split, q)
				}
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := MustNew(DefaultOptions())
	for i := 0; i < 100; i++ {
		tr.Insert(geom.NewRect(0, 0, 1, 1), i)
	}
	count := 0
	tr.Search(geom.NewRect(0, 0, 1, 1), func(Item) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d items", count)
	}
}

func TestSearchPrunes(t *testing.T) {
	// Clustered data far from the query: the search should visit only the
	// root, not every node.
	tr := MustNew(Options{MinEntries: 2, MaxEntries: 4})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		tr.Insert(randRect(rng, 100), i)
	}
	visited := tr.Search(geom.NewRect(10000, 10000, 10001, 10001), func(Item) bool { return true })
	if visited != 1 {
		t.Fatalf("disjoint query visited %d nodes, want 1 (root)", visited)
	}
}

func TestAllVisitsEverything(t *testing.T) {
	tr := MustNew(DefaultOptions())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 150; i++ {
		tr.Insert(randRect(rng, 100), i)
	}
	seen := make(map[int]bool)
	tr.All(func(it Item) bool {
		seen[it.ID] = true
		return true
	})
	if len(seen) != 150 {
		t.Fatalf("All saw %d items", len(seen))
	}
	n := 0
	tr.All(func(Item) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("All early stop visited %d", n)
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := MustNew(Options{MinEntries: 2, MaxEntries: 4})
	rects := []geom.Rect{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		r := randRect(rng, 200)
		rects = append(rects, r)
		tr.Insert(r, i)
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("delete of item %d failed", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("len after deletes = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleted items are gone; surviving items remain findable.
	for i := 0; i < 100; i++ {
		found := false
		tr.Search(rects[i], func(it Item) bool {
			if it.ID == i {
				found = true
				return false
			}
			return true
		})
		if i%2 == 0 && found {
			t.Fatalf("deleted item %d still found", i)
		}
		if i%2 == 1 && !found {
			t.Fatalf("surviving item %d lost", i)
		}
	}
}

func TestDeleteMissingReturnsFalse(t *testing.T) {
	tr := MustNew(DefaultOptions())
	tr.Insert(geom.NewRect(0, 0, 1, 1), 1)
	if tr.Delete(geom.NewRect(5, 5, 6, 6), 1) {
		t.Fatal("delete with wrong rect must fail")
	}
	if tr.Delete(geom.NewRect(0, 0, 1, 1), 2) {
		t.Fatal("delete with wrong id must fail")
	}
	if !tr.Delete(geom.NewRect(0, 0, 1, 1), 1) {
		t.Fatal("delete of present item must succeed")
	}
	if tr.Delete(geom.NewRect(0, 0, 1, 1), 1) {
		t.Fatal("double delete must fail")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr := MustNew(Options{MinEntries: 2, MaxEntries: 4})
	rng := rand.New(rand.NewSource(6))
	var rects []geom.Rect
	for i := 0; i < 60; i++ {
		r := randRect(rng, 50)
		rects = append(rects, r)
		tr.Insert(r, i)
	}
	for i := 59; i >= 0; i-- {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("delete %d failed", i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after deleting %d: %v", i, err)
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("emptied tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	// The tree must be fully reusable.
	tr.Insert(geom.NewRect(0, 0, 1, 1), 7)
	if tr.Len() != 1 {
		t.Fatal("reuse after emptying failed")
	}
}

func TestRandomInsertDeleteInvariants(t *testing.T) {
	// Property test: under a random interleaving of inserts and deletes,
	// every Validate() invariant holds and search agrees with a model map.
	for _, split := range []SplitStrategy{QuadraticSplit, LinearSplit} {
		tr := MustNew(Options{MinEntries: 2, MaxEntries: 5, Split: split})
		rng := rand.New(rand.NewSource(7))
		live := make(map[int]geom.Rect)
		nextID := 0
		for step := 0; step < 2000; step++ {
			if len(live) == 0 || rng.Float64() < 0.6 {
				r := randRect(rng, 300)
				tr.Insert(r, nextID)
				live[nextID] = r
				nextID++
			} else {
				// Delete a random live item.
				var id int
				for id = range live {
					break
				}
				if !tr.Delete(live[id], id) {
					t.Fatalf("%v: delete of live item %d failed at step %d", split, id, step)
				}
				delete(live, id)
			}
			if step%200 == 0 {
				if err := tr.Validate(); err != nil {
					t.Fatalf("%v: step %d: %v", split, step, err)
				}
				if tr.Len() != len(live) {
					t.Fatalf("%v: step %d: len %d != model %d", split, step, tr.Len(), len(live))
				}
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		// Final full comparison.
		got := 0
		tr.All(func(it Item) bool {
			if _, ok := live[it.ID]; !ok {
				t.Fatalf("%v: ghost item %d", split, it.ID)
			}
			got++
			return true
		})
		if got != len(live) {
			t.Fatalf("%v: tree has %d items, model %d", split, got, len(live))
		}
	}
}

func TestBoundsTracksContent(t *testing.T) {
	tr := MustNew(DefaultOptions())
	tr.Insert(geom.NewRect(0, 0, 1, 1), 0)
	tr.Insert(geom.NewRect(9, 9, 10, 10), 1)
	b, ok := tr.Bounds()
	if !ok || b != geom.NewRect(0, 0, 10, 10) {
		t.Fatalf("bounds = %v, %t", b, ok)
	}
	tr.Delete(geom.NewRect(9, 9, 10, 10), 1)
	b, _ = tr.Bounds()
	if b != geom.NewRect(0, 0, 1, 1) {
		t.Fatalf("bounds after delete = %v", b)
	}
}

func TestPolygonItemsRoundTrip(t *testing.T) {
	tr := MustNew(DefaultOptions())
	pg := geom.RegularPolygon(geom.Pt(5, 5), 2, 6)
	tr.Insert(pg, 42)
	var got Item
	tr.Search(pg.Bounds(), func(it Item) bool { got = it; return false })
	if got.ID != 42 {
		t.Fatalf("item id = %d", got.ID)
	}
	if _, ok := got.Obj.(geom.Polygon); !ok {
		t.Fatalf("exact geometry lost: %T", got.Obj)
	}
}

func TestIdenticalRectanglesSplit(t *testing.T) {
	// Degenerate input: many identical rectangles must still split without
	// violating invariants (exercises the linear-seed fallback).
	for _, split := range []SplitStrategy{QuadraticSplit, LinearSplit} {
		tr := MustNew(Options{MinEntries: 2, MaxEntries: 4, Split: split})
		for i := 0; i < 64; i++ {
			tr.Insert(geom.NewRect(1, 1, 2, 2), i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", split, err)
		}
		n := 0
		tr.Search(geom.NewRect(1, 1, 2, 2), func(Item) bool { n++; return true })
		if n != 64 {
			t.Fatalf("%v: found %d of 64 identical items", split, n)
		}
	}
}
