package rtree

import (
	"math"
	"sort"
)

// BulkLoad builds an R-tree from all items at once with the Sort-Tile-
// Recursive (STR) packing algorithm: items are sorted by center X, cut into
// √(nodes) vertical slices, each slice sorted by center Y and packed into
// nodes; the resulting level is packed recursively the same way until a
// single root remains.
//
// Compared to one-at-a-time insertion, a bulk-loaded tree has nearly full
// nodes and far less directory overlap — the BenchmarkAblationBulkLoad
// ablation quantifies the difference. The options' split strategy is not
// used during loading but applies to later Insert calls; all occupancy
// invariants (MinEntries/MaxEntries) hold on the result.
func BulkLoad(opts Options, items []Item) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: it.Obj.Bounds(), item: it}
	}
	level := packSTR(entries, opts.MaxEntries, true)
	height := 0
	for len(level) > 1 {
		parents := make([]entry, len(level))
		for i, n := range level {
			parents[i] = entry{rect: n.mbr(), child: n}
		}
		level = packSTR(parents, opts.MaxEntries, false)
		height++
	}
	t.root = level[0]
	t.height = height
	t.size = len(items)
	fixParents(t.root)
	return t, nil
}

// packSTR groups entries into nodes of at most max entries using STR
// tiling. Within each slice the entries are distributed evenly over
// ⌈len/max⌉ nodes, so no node falls below ⌊max/2⌋ ≥ MinEntries except when
// the whole input fits in a single (root) node.
func packSTR(entries []entry, max int, leaf bool) []*node {
	n := len(entries)
	nodeCount := (n + max - 1) / max
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))

	sort.Slice(entries, func(i, j int) bool {
		return entries[i].rect.Center().X < entries[j].rect.Center().X
	})
	// Distribute entries evenly over the slices (rather than filling slices
	// to sliceCount·max and leaving a tiny remainder slice), so every slice
	// — and therefore every node — stays above the minimum occupancy.
	sliceBase := n / sliceCount
	sliceExtra := n % sliceCount
	var out []*node
	start := 0
	for sl := 0; sl < sliceCount && start < n; sl++ {
		size := sliceBase
		if sl < sliceExtra {
			size++
		}
		end := start + size
		slice := entries[start:end]
		start = end
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].rect.Center().Y < slice[j].rect.Center().Y
		})
		groups := (len(slice) + max - 1) / max
		base := len(slice) / groups
		extra := len(slice) % groups // the first `extra` groups get base+1
		pos := 0
		for g := 0; g < groups; g++ {
			size := base
			if g < extra {
				size++
			}
			out = append(out, &node{
				leaf:    leaf,
				entries: append([]entry(nil), slice[pos:pos+size]...),
			})
			pos += size
		}
	}
	return out
}

// fixParents rebuilds parent pointers after packing.
func fixParents(n *node) {
	if n.leaf {
		return
	}
	for _, e := range n.entries {
		e.child.parent = n
		fixParents(e.child)
	}
}
