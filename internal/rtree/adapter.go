package rtree

import (
	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
)

// Generalization adapts the R-tree to the core.Tree interface so the
// hierarchical SELECT and JOIN algorithms can run over it. Interior R-tree
// nodes appear as technical nodes (no tuple); each stored item appears as a
// leaf node carrying its tuple ID and exact geometry.
//
// The adapter is a live view: it reflects subsequent inserts and deletes.
// Nodes are materialized lazily per Children() call.
func (t *Tree) Generalization() core.Tree { return adapterTree{t: t} }

type adapterTree struct{ t *Tree }

// Root implements core.Tree.
func (a adapterTree) Root() core.Node {
	if a.t.size == 0 {
		return nil
	}
	return nodeView{n: a.t.root}
}

// Height implements core.Tree: R-tree levels plus the item level.
func (a adapterTree) Height() int {
	if a.t.size == 0 {
		return 0
	}
	return a.t.height + 1
}

// nodeView adapts an R-tree node (always a technical entity).
type nodeView struct{ n *node }

// Bounds implements core.Node.
func (v nodeView) Bounds() geom.Rect { return v.n.mbr() }

// Object implements core.Node; the node's object is its MBR.
func (v nodeView) Object() geom.Spatial { return v.n.mbr() }

// Tuple implements core.Node: R-tree nodes never carry tuples.
func (v nodeView) Tuple() (int, bool) { return 0, false }

// Children implements core.Node.
func (v nodeView) Children() []core.Node {
	out := make([]core.Node, len(v.n.entries))
	for i, e := range v.n.entries {
		if v.n.leaf {
			out[i] = itemView{e: e}
		} else {
			out[i] = nodeView{n: e.child}
		}
	}
	return out
}

// itemView adapts one stored item as a tuple-bearing leaf.
type itemView struct{ e entry }

// Bounds implements core.Node.
func (v itemView) Bounds() geom.Rect { return v.e.rect }

// Object implements core.Node: the exact geometry for θ evaluation.
func (v itemView) Object() geom.Spatial { return v.e.item.Obj }

// Tuple implements core.Node.
func (v itemView) Tuple() (int, bool) { return v.e.item.ID, true }

// Children implements core.Node.
func (v itemView) Children() []core.Node { return nil }
