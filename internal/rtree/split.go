package rtree

import (
	"math"

	"spatialjoin/internal/geom"
)

// splitNode divides an overfull node in place: n keeps one group and the
// returned sibling receives the other. Child parent pointers are fixed up.
func (t *Tree) splitNode(n *node) *node {
	var g1, g2 []entry
	switch t.opts.Split {
	case LinearSplit:
		g1, g2 = t.linearSplit(n.entries)
	default:
		g1, g2 = t.quadraticSplit(n.entries)
	}
	sibling := &node{leaf: n.leaf, entries: g2}
	n.entries = g1
	if !n.leaf {
		for _, e := range n.entries {
			e.child.parent = n
		}
		for _, e := range sibling.entries {
			e.child.parent = sibling
		}
	}
	return sibling
}

// quadraticSplit implements Guttman's quadratic algorithm: PickSeeds by
// maximal dead area, then PickNext by maximal preference difference, with
// the usual min-fill short-circuit.
func (t *Tree) quadraticSplit(entries []entry) (g1, g2 []entry) {
	s1, s2 := pickSeedsQuadratic(entries)
	g1 = append(g1, entries[s1])
	g2 = append(g2, entries[s2])
	r1, r2 := entries[s1].rect, entries[s2].rect

	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// QS2: if one group needs every remaining entry to reach m, give
		// them all to it.
		if len(g1)+len(rest) == t.opts.MinEntries {
			g1 = append(g1, rest...)
			return g1, g2
		}
		if len(g2)+len(rest) == t.opts.MinEntries {
			g2 = append(g2, rest...)
			return g1, g2
		}
		// PickNext: the entry with the greatest |d1 − d2|.
		best, bestDiff := 0, -1.0
		var bestD1, bestD2 float64
		for i, e := range rest {
			d1 := r1.Enlargement(e.rect)
			d2 := r2.Enlargement(e.rect)
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				best, bestDiff, bestD1, bestD2 = i, diff, d1, d2
			}
		}
		e := rest[best]
		rest = append(rest[:best], rest[best+1:]...)
		// Resolve by smaller enlargement, then smaller area, then fewer
		// entries (Guttman's tie-breaking chain).
		toFirst := false
		switch {
		case bestD1 < bestD2:
			toFirst = true
		case bestD2 < bestD1:
			toFirst = false
		case !geom.SameCoord(r1.Area(), r2.Area()):
			toFirst = r1.Area() < r2.Area()
		default:
			toFirst = len(g1) <= len(g2)
		}
		if toFirst {
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
		} else {
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
		}
	}
	return g1, g2
}

// pickSeedsQuadratic returns the indices of the entry pair that would waste
// the most area if placed together.
func pickSeedsQuadratic(entries []entry) (int, int) {
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.Union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if d > worst {
				s1, s2, worst = i, j, d
			}
		}
	}
	return s1, s2
}

// linearSplit implements Guttman's linear algorithm: seeds by greatest
// normalized separation across dimensions, remaining entries assigned by
// least enlargement with the min-fill short-circuit.
func (t *Tree) linearSplit(entries []entry) (g1, g2 []entry) {
	s1, s2 := pickSeedsLinear(entries)
	g1 = append(g1, entries[s1])
	g2 = append(g2, entries[s2])
	r1, r2 := entries[s1].rect, entries[s2].rect

	unassigned := len(entries) - 2 // entries still to place, incl. current
	for i, e := range entries {
		if i == s1 || i == s2 {
			continue
		}
		switch {
		// LS2 / min-fill: a group that needs every remaining entry to
		// reach m gets them unconditionally; likewise a full group pushes
		// entries to the other.
		case len(g1)+unassigned == t.opts.MinEntries || len(g2) >= t.opts.MaxEntries:
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
		case len(g2)+unassigned == t.opts.MinEntries || len(g1) >= t.opts.MaxEntries:
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
		case r1.Enlargement(e.rect) < r2.Enlargement(e.rect):
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
		case r2.Enlargement(e.rect) < r1.Enlargement(e.rect):
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
		case len(g1) <= len(g2):
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
		default:
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
		}
		unassigned--
	}
	return g1, g2
}

// pickSeedsLinear returns the pair with the greatest normalized separation
// along either dimension (Guttman's LPS1–LPS3).
func pickSeedsLinear(entries []entry) (int, int) {
	type extreme struct {
		highLow, lowHigh int // index of highest low side, lowest high side
		min, max         float64
	}
	dims := [2]extreme{}
	for d := 0; d < 2; d++ {
		dims[d].min = math.Inf(1)
		dims[d].max = math.Inf(-1)
		bestLow, bestHigh := math.Inf(-1), math.Inf(1)
		for i, e := range entries {
			lo, hi := side(e.rect, d)
			if lo > bestLow {
				bestLow = lo
				dims[d].highLow = i
			}
			if hi < bestHigh {
				bestHigh = hi
				dims[d].lowHigh = i
			}
			if lo < dims[d].min {
				dims[d].min = lo
			}
			if hi > dims[d].max {
				dims[d].max = hi
			}
		}
	}
	bestDim, bestSep := 0, math.Inf(-1)
	for d := 0; d < 2; d++ {
		width := dims[d].max - dims[d].min
		if width <= 0 {
			continue
		}
		lo1, _ := side(entries[dims[d].highLow].rect, d)
		_, hi2 := side(entries[dims[d].lowHigh].rect, d)
		sep := (lo1 - hi2) / width
		if sep > bestSep {
			bestDim, bestSep = d, sep
		}
	}
	s1, s2 := dims[bestDim].highLow, dims[bestDim].lowHigh
	if s1 == s2 {
		// Degenerate data (all rectangles identical): fall back to the
		// first two entries.
		s1, s2 = 0, 1
	}
	return s1, s2
}

// side returns the low and high coordinates of r along dimension d.
func side(r geom.Rect, d int) (lo, hi float64) {
	if d == 0 {
		return r.MinX, r.MaxX
	}
	return r.MinY, r.MaxY
}
