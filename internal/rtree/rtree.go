// Package rtree implements Guttman's R-tree (SIGMOD 1984), the canonical
// abstract-index instance of the paper's generalization trees (Figure 2): a
// height-balanced hierarchy of nested rectangles with configurable node
// capacity and either the quadratic or the linear split heuristic.
//
// The tree stores (rectangle, exact geometry, tuple ID) entries. Interior
// nodes are "technical entities of no interest to the user" (§3.1): when the
// tree is adapted to core.Tree (see Adapter), interior nodes expose no
// tuple, so the hierarchical SELECT/JOIN algorithms use them purely for
// Θ-filter pruning.
package rtree

import (
	"fmt"

	"spatialjoin/internal/geom"
)

// SplitStrategy selects the node-split heuristic.
type SplitStrategy uint8

const (
	// QuadraticSplit is Guttman's quadratic-cost algorithm: pick the pair
	// of entries that would waste the most area together as seeds, then
	// assign entries by maximal preference difference.
	QuadraticSplit SplitStrategy = iota
	// LinearSplit is Guttman's linear-cost algorithm: pick seeds with the
	// greatest normalized separation, then assign entries greedily.
	LinearSplit
)

// String implements fmt.Stringer.
func (s SplitStrategy) String() string {
	switch s {
	case QuadraticSplit:
		return "quadratic"
	case LinearSplit:
		return "linear"
	default:
		return fmt.Sprintf("SplitStrategy(%d)", uint8(s))
	}
}

// Options configures a Tree.
type Options struct {
	// MinEntries is Guttman's m: the minimum number of entries per node
	// (except the root). Must satisfy 1 ≤ m ≤ MaxEntries/2.
	MinEntries int
	// MaxEntries is Guttman's M: the node capacity.
	MaxEntries int
	// Split selects the split heuristic; the zero value is QuadraticSplit.
	Split SplitStrategy
}

// DefaultOptions returns the configuration used throughout the benchmarks:
// m=2, M=8, quadratic split.
func DefaultOptions() Options {
	return Options{MinEntries: 2, MaxEntries: 8, Split: QuadraticSplit}
}

func (o Options) validate() error {
	if o.MaxEntries < 2 {
		return fmt.Errorf("rtree: MaxEntries %d < 2", o.MaxEntries)
	}
	if o.MinEntries < 1 || o.MinEntries > o.MaxEntries/2 {
		return fmt.Errorf("rtree: MinEntries %d out of [1, MaxEntries/2=%d]",
			o.MinEntries, o.MaxEntries/2)
	}
	if o.Split != QuadraticSplit && o.Split != LinearSplit {
		return fmt.Errorf("rtree: unknown split strategy %d", o.Split)
	}
	return nil
}

// Item is one indexed object.
type Item struct {
	// Obj is the exact geometry (used for θ evaluation by the join layer).
	Obj geom.Spatial
	// ID is the tuple ID the object belongs to.
	ID int
}

// entry is a slot in a node: either a child pointer (interior) or an item
// (leaf).
type entry struct {
	rect  geom.Rect
	child *node
	item  Item
}

// node is one R-tree node.
type node struct {
	leaf    bool
	entries []entry
	parent  *node
}

// mbr returns the tight bounding rectangle of the node's entries.
func (n *node) mbr() geom.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Tree is an R-tree.
type Tree struct {
	opts   Options
	root   *node
	size   int
	height int // number of levels below the root; a leaf-root tree has 0
}

// New returns an empty R-tree.
func New(opts Options) (*Tree, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Tree{opts: opts, root: &node{leaf: true}}, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error.
func MustNew(opts Options) *Tree {
	t, err := New(opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels below the root.
func (t *Tree) Height() int { return t.height }

// Options returns the tree's configuration.
func (t *Tree) Options() Options { return t.opts }

// Bounds returns the MBR of all stored items; ok is false when empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.root.mbr(), true
}

// Insert adds obj with the given tuple ID.
func (t *Tree) Insert(obj geom.Spatial, id int) {
	e := entry{rect: obj.Bounds(), item: Item{Obj: obj, ID: id}}
	t.insertAtLeaf(e)
	t.size++
}

// insertAtLeaf implements Guttman's Insert: ChooseLeaf, add, split on
// overflow, AdjustTree.
func (t *Tree) insertAtLeaf(e entry) {
	leaf := t.chooseLeaf(e.rect)
	leaf.entries = append(leaf.entries, e)
	t.adjustTree(leaf)
}

// chooseLeaf descends to the leaf whose MBR needs the least enlargement to
// include r, breaking ties by smallest area (Guttman's CL3).
func (t *Tree) chooseLeaf(r geom.Rect) *node {
	n := t.root
	for !n.leaf {
		best := -1
		var bestEnl, bestArea float64
		for i, e := range n.entries {
			enl := e.rect.Enlargement(r)
			area := e.rect.Area()
			if best < 0 || enl < bestEnl || (geom.SameCoord(enl, bestEnl) && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[best].child
	}
	return n
}

// adjustTree propagates MBR updates and splits from n up to the root.
func (t *Tree) adjustTree(n *node) {
	for {
		var split *node
		if len(n.entries) > t.opts.MaxEntries {
			split = t.splitNode(n)
		}
		if n == t.root {
			if split != nil {
				// Grow a new root over the two halves.
				newRoot := &node{leaf: false}
				n.parent, split.parent = newRoot, newRoot
				newRoot.entries = []entry{
					{rect: n.mbr(), child: n},
					{rect: split.mbr(), child: split},
				}
				t.root = newRoot
				t.height++
			}
			return
		}
		p := n.parent
		// Refresh n's MBR in its parent.
		for i := range p.entries {
			if p.entries[i].child == n {
				p.entries[i].rect = n.mbr()
				break
			}
		}
		if split != nil {
			split.parent = p
			p.entries = append(p.entries, entry{rect: split.mbr(), child: split})
		}
		n = p
	}
}

// Search calls f for every item whose rectangle intersects r, stopping early
// when f returns false. It reports the number of nodes visited, the measure
// the paper's index-supported strategies are charged by.
func (t *Tree) Search(r geom.Rect, f func(Item) bool) (nodesVisited int) {
	if t.size == 0 {
		return 0
	}
	stop := false
	t.search(t.root, r, f, &nodesVisited, &stop)
	return nodesVisited
}

func (t *Tree) search(n *node, r geom.Rect, f func(Item) bool, visited *int, stop *bool) {
	*visited++
	for _, e := range n.entries {
		if *stop {
			return
		}
		if !e.rect.Intersects(r) {
			continue
		}
		if n.leaf {
			if !f(e.item) {
				*stop = true
				return
			}
		} else {
			t.search(e.child, r, f, visited, stop)
		}
	}
}

// All calls f for every stored item.
func (t *Tree) All(f func(Item) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		for _, e := range n.entries {
			if n.leaf {
				if !f(e.item) {
					return false
				}
			} else if !walk(e.child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Validate checks the R-tree invariants: parent rectangles tightly cover
// their children, entry counts respect m and M (root excepted), all leaves
// are at the same depth, and the item count matches Len().
func (t *Tree) Validate() error {
	leafDepth := -1
	items := 0
	var walk func(n *node, depth int, isRoot bool) error
	walk = func(n *node, depth int, isRoot bool) error {
		if !isRoot && len(n.entries) < t.opts.MinEntries {
			return fmt.Errorf("rtree: node at depth %d underfull: %d < %d",
				depth, len(n.entries), t.opts.MinEntries)
		}
		if len(n.entries) > t.opts.MaxEntries {
			return fmt.Errorf("rtree: node at depth %d overfull: %d > %d",
				depth, len(n.entries), t.opts.MaxEntries)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			items += len(n.entries)
			return nil
		}
		for i, e := range n.entries {
			if e.child == nil {
				return fmt.Errorf("rtree: interior entry %d at depth %d has no child", i, depth)
			}
			if e.child.parent != n {
				return fmt.Errorf("rtree: parent pointer broken at depth %d entry %d", depth, i)
			}
			if got := e.child.mbr(); !geom.SameRect(got, e.rect) {
				return fmt.Errorf("rtree: stale MBR at depth %d entry %d: stored %v, actual %v",
					depth, i, e.rect, got)
			}
			if !e.rect.ContainsRect(e.child.mbr()) {
				return fmt.Errorf("rtree: child escapes parent rect at depth %d entry %d", depth, i)
			}
			if err := walk(e.child, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if t.size == 0 {
		if !t.root.leaf || len(t.root.entries) != 0 {
			return fmt.Errorf("rtree: empty tree with non-empty root")
		}
		return nil
	}
	if err := walk(t.root, 0, true); err != nil {
		return err
	}
	if items != t.size {
		return fmt.Errorf("rtree: item count %d != Len() %d", items, t.size)
	}
	if leafDepth != t.height {
		return fmt.Errorf("rtree: leaf depth %d != Height() %d", leafDepth, t.height)
	}
	return nil
}
