package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/geom"
)

func randomItems(seed int64, n int) []Item {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Item, n)
	for i := range out {
		r := randRect(rng, 1000)
		out[i] = Item{Obj: r, ID: i}
	}
	return out
}

func TestBulkLoadEmptyAndSingle(t *testing.T) {
	tr, err := BulkLoad(DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty bulk load must give an empty tree")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err = BulkLoad(DefaultOptions(), randomItems(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Height() != 0 {
		t.Fatalf("single item: len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadInvalidOptions(t *testing.T) {
	if _, err := BulkLoad(Options{MinEntries: 0, MaxEntries: 4}, nil); err == nil {
		t.Fatal("invalid options must fail")
	}
}

func TestBulkLoadInvariantsAcrossSizes(t *testing.T) {
	for _, n := range []int{2, 5, 8, 9, 17, 64, 65, 100, 500, 1234} {
		tr, err := BulkLoad(Options{MinEntries: 4, MaxEntries: 8}, randomItems(int64(n), n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: len=%d", n, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkLoadSearchMatchesBruteForce(t *testing.T) {
	items := randomItems(3, 400)
	tr, err := BulkLoad(Options{MinEntries: 3, MaxEntries: 7}, items)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 40; q++ {
		query := randRect(rng, 1000).Expand(rng.Float64() * 50)
		var want []int
		for _, it := range items {
			if it.Obj.Bounds().Intersects(query) {
				want = append(want, it.ID)
			}
		}
		var got []int
		tr.Search(query, func(it Item) bool { got = append(got, it.ID); return true })
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: mismatch at %d", q, i)
			}
		}
	}
}

func TestBulkLoadedTreeAcceptsInsertsAndDeletes(t *testing.T) {
	items := randomItems(5, 200)
	tr, err := BulkLoad(Options{MinEntries: 2, MaxEntries: 6}, items)
	if err != nil {
		t.Fatal(err)
	}
	// Mutations must keep all invariants.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		tr.Insert(randRect(rng, 1000), 1000+i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(items[i].Obj, items[i].ID) {
			t.Fatalf("delete of bulk-loaded item %d failed", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
	if tr.Len() != 200+100-50 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestBulkLoadPacksTighterThanInsertion(t *testing.T) {
	items := randomItems(7, 1000)
	opts := Options{MinEntries: 4, MaxEntries: 8}
	packed, err := BulkLoad(opts, items)
	if err != nil {
		t.Fatal(err)
	}
	inserted := MustNew(opts)
	for _, it := range items {
		inserted.Insert(it.Obj, it.ID)
	}
	// Packed trees answer the same query visiting no more nodes than
	// insertion-built ones (usually far fewer).
	var packedVisits, insertedVisits int
	for q := 0; q < 20; q++ {
		query := geom.NewRect(float64(q)*40, float64(q)*40, float64(q)*40+150, float64(q)*40+150)
		packedVisits += packed.Search(query, func(Item) bool { return true })
		insertedVisits += inserted.Search(query, func(Item) bool { return true })
	}
	if packedVisits > insertedVisits {
		t.Fatalf("bulk-loaded tree visits more nodes (%d) than insertion-built (%d)",
			packedVisits, insertedVisits)
	}
	// And the packed tree cannot be taller.
	if packed.Height() > inserted.Height() {
		t.Fatalf("packed height %d > inserted height %d", packed.Height(), inserted.Height())
	}
}

func TestBulkLoadGeneralizationAdapter(t *testing.T) {
	items := randomItems(8, 150)
	tr, err := BulkLoad(DefaultOptions(), items)
	if err != nil {
		t.Fatal(err)
	}
	gt := tr.Generalization()
	count := 0
	seen := map[int]bool{}
	// The adapter walk itself is covered by adapter_test.go; here confirm
	// the bulk-loaded tree exposes a root covering everything and all items
	// survive the load.
	root := gt.Root()
	if root == nil {
		t.Fatal("adapter root nil")
	}
	b, _ := tr.Bounds()
	if root.Bounds() != b {
		t.Fatalf("adapter root bounds %v != tree bounds %v", root.Bounds(), b)
	}
	tr.All(func(it Item) bool {
		seen[it.ID] = true
		count++
		return true
	})
	if count != 150 {
		t.Fatalf("All saw %d items", count)
	}
}
