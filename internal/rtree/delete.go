package rtree

import (
	"spatialjoin/internal/geom"
)

// Delete removes the item with the given geometry bounds and ID. It returns
// false when no such item is stored. Underfull nodes are condensed per
// Guttman's CondenseTree, with orphaned items re-inserted.
func (t *Tree) Delete(obj geom.Spatial, id int) bool {
	r := obj.Bounds()
	leaf, idx := t.findLeaf(t.root, r, id)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condenseTree(leaf)
	// D4: if the root is an interior node with a single child, shorten the
	// tree.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
		t.height--
	}
	return true
}

// findLeaf locates the leaf and entry index holding (r, id), descending only
// into subtrees whose rectangles contain r.
func (t *Tree) findLeaf(n *node, r geom.Rect, id int) (*node, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.item.ID == id && geom.SameRect(e.rect, r) {
				return n, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if !e.rect.ContainsRect(r) {
			continue
		}
		if leaf, i := t.findLeaf(e.child, r, id); leaf != nil {
			return leaf, i
		}
	}
	return nil, 0
}

// condenseTree walks from leaf to root, removing underfull nodes and
// collecting their orphaned leaf items for re-insertion, refreshing MBRs
// along the way.
func (t *Tree) condenseTree(n *node) {
	var orphans []entry
	for n != t.root {
		p := n.parent
		if len(n.entries) < t.opts.MinEntries {
			// Remove n from its parent and queue its items.
			for i := range p.entries {
				if p.entries[i].child == n {
					p.entries = append(p.entries[:i], p.entries[i+1:]...)
					break
				}
			}
			collectItems(n, &orphans)
		} else {
			// Refresh n's MBR in its parent.
			for i := range p.entries {
				if p.entries[i].child == n {
					p.entries[i].rect = n.mbr()
					break
				}
			}
		}
		n = p
	}
	// If the whole tree emptied out, reset to a fresh leaf root.
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
		t.height = 0
	}
	if t.root.leaf && len(t.root.entries) == 0 {
		t.height = 0
	}
	// Re-insert orphaned items. Re-inserting at leaf level (rather than at
	// the orphan's original level) is a standard simplification that
	// preserves all invariants.
	for _, e := range orphans {
		t.insertAtLeaf(e)
	}
}

// collectItems appends every leaf item under n to out.
func collectItems(n *node, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, e := range n.entries {
		collectItems(e.child, out)
	}
}
