package obs

import (
	"strings"
	"testing"
	"time"
)

// buildRemoteTrace makes a trace shaped like a server-side query:
// root ⊃ {admission, work ⊃ level, stream(open)}.
func buildRemoteTrace() *Trace {
	tr := NewTrace()
	root := tr.Begin(0, "server")
	adm := tr.Begin(root, "admission")
	tr.End(adm)
	work := tr.Begin(root, "work")
	lvl := tr.Begin(work, "level")
	tr.End(lvl, Int("reads", 7))
	tr.End(work, Int("page_reads", 7), Str("strategy", "tree"))
	//sjlint:ignore spanclose the open span IS the fixture — Export must keep Dur 0
	tr.Begin(root, "stream")
	tr.End(root)
	return tr
}

func TestExportShape(t *testing.T) {
	tr := buildRemoteTrace()
	out := tr.Export()
	if len(out) != 5 {
		t.Fatalf("%d exported spans, want 5", len(out))
	}
	if out[0].Name != "server" || out[0].Parent != -1 {
		t.Fatalf("root: %+v", out[0])
	}
	for i, rs := range out[1:] {
		if rs.Parent < 0 || int(rs.Parent) > i {
			t.Fatalf("span %d: parent %d does not precede it", i+1, rs.Parent)
		}
	}
	// work is index 2, child of root; level index 3, child of work.
	if out[2].Name != "work" || out[2].Parent != 0 {
		t.Fatalf("work: %+v", out[2])
	}
	if out[3].Name != "level" || out[3].Parent != 2 {
		t.Fatalf("level: %+v", out[3])
	}
	// Attrs ride along.
	if len(out[2].Attrs) != 2 || out[2].Attrs[0].Key != "page_reads" || out[2].Attrs[0].Int != 7 {
		t.Fatalf("work attrs: %+v", out[2].Attrs)
	}
	if !out[2].Attrs[1].IsString() || out[2].Attrs[1].Str != "tree" {
		t.Fatalf("work str attr: %+v", out[2].Attrs[1])
	}
	// Closed spans have positive Dur; the open stream span keeps Dur 0.
	for i, rs := range out {
		if rs.Name == "stream" {
			if rs.Dur != 0 {
				t.Fatalf("open span exported Dur %v", rs.Dur)
			}
		} else if rs.Dur <= 0 {
			t.Fatalf("closed span %d exported Dur %v", i, rs.Dur)
		}
	}
}

func TestExportEmpty(t *testing.T) {
	if out := NewTrace().Export(); out != nil {
		t.Fatalf("empty trace exported %d spans", len(out))
	}
}

func TestGraftPreservesStructure(t *testing.T) {
	remote := buildRemoteTrace().Export()

	local := NewTrace()
	call := local.Begin(0, "wire.join")
	local.Graft(call, remote)
	local.End(call)

	spans := local.Spans()
	if len(spans) != 1+5 {
		t.Fatalf("%d spans after graft, want 6", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["server"].Parent != call {
		t.Errorf("server grafted under %d, want the call span %d", byName["server"].Parent, call)
	}
	if byName["admission"].Parent != byName["server"].ID {
		t.Errorf("admission grafted under %d, want server", byName["admission"].Parent)
	}
	if byName["level"].Parent != byName["work"].ID {
		t.Errorf("level grafted under %d, want work", byName["level"].Parent)
	}
	if v, ok := byName["level"].IntAttr("reads"); !ok || v != 7 {
		t.Errorf("level attrs lost in graft: %+v", byName["level"].Attrs)
	}
	// The open remote span stays open after grafting.
	if byName["stream"].End != 0 {
		t.Errorf("open remote span grafted closed: %+v", byName["stream"])
	}
	// Grafted spans are rebased onto the call span's start: every grafted
	// start is at or after it.
	for _, s := range spans {
		if s.ID == call {
			continue
		}
		if s.Start < byName["wire.join"].Start {
			t.Errorf("%s starts %v before the call span %v", s.Name, s.Start, byName["wire.join"].Start)
		}
	}
}

func TestGraftMalformedParentDegrades(t *testing.T) {
	local := NewTrace()
	call := local.Begin(0, "call")
	local.Graft(call, []RemoteSpan{
		{Parent: 5, Name: "forward-ref", Start: 1, Dur: 1}, // points past itself
		{Parent: -7, Name: "weird-root", Start: 1, Dur: 1}, // nonsense negative
	})
	for _, s := range local.Spans()[1:] {
		if s.Parent != call {
			t.Errorf("%s degraded to parent %d, want the graft point %d", s.Name, s.Parent, call)
		}
	}
}

func TestGraftNilSafe(t *testing.T) {
	var tr *Trace
	tr.Graft(0, []RemoteSpan{{Name: "x"}}) // must not panic
	live := NewTrace()
	live.Graft(1, nil) // no-op
	if n := len(live.Spans()); n != 0 {
		t.Fatalf("nil graft appended %d spans", n)
	}
}

func TestExportGraftRoundTripRendersOneTree(t *testing.T) {
	remote := buildRemoteTrace()
	local := NewTrace()
	call := local.Begin(0, "wire.select")
	time.Sleep(time.Microsecond)
	local.Graft(call, remote.Export())
	local.End(call)
	// WriteTree must walk the merged tree without losing spans; a cheap
	// proxy: every span name renders.
	var sb strings.Builder
	if err := local.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"wire.select", "server", "admission", "work", "level", "stream"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("merged tree render is missing %q:\n%s", name, sb.String())
		}
	}
}
