package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a Trace. The zero SpanID is "no span":
// it is the parent of root spans and the value every recording method
// returns when tracing is off, so span handles can be threaded through
// untraced code without branches.
type SpanID int32

// Attr is one key/value annotation on a span or event. Values are either
// int64 or string; the integer form covers the cost-model units (evals,
// reads, qualpairs) without boxing.
type Attr struct {
	Key string
	Str string
	Int int64
	str bool
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Str: value, str: true} }

// IsString reports whether the attribute carries its string value (Str)
// rather than its integer value (Int) — the discriminator wire codecs need.
func (a Attr) IsString() bool { return a.str }

// value renders the attribute's value.
func (a Attr) value() any {
	if a.str {
		return a.Str
	}
	return a.Int
}

// String renders key=value.
func (a Attr) String() string {
	if a.str {
		return a.Key + "=" + a.Str
	}
	return fmt.Sprintf("%s=%d", a.Key, a.Int)
}

// Span is one completed (or still-open) operation of a trace: a query, a
// strategy attempt, an index scrub, or one level of a synchronized descent.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	// Start and End are offsets from the trace's start. End is zero while
	// the span is open; error paths that abandon a span leave it open and
	// the renderers mark it "unfinished".
	Start, End time.Duration
	Attrs      []Attr
}

// Dur returns the span's duration (0 while open).
func (s Span) Dur() time.Duration {
	if s.End == 0 {
		return 0
	}
	return s.End - s.Start
}

// IntAttr returns the span's integer attribute by key.
func (s Span) IntAttr(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key && !a.str {
			return a.Int, true
		}
	}
	return 0, false
}

// StrAttr returns the span's string attribute by key.
func (s Span) StrAttr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key && a.str {
			return a.Str, true
		}
	}
	return "", false
}

// Event is one instantaneous annotation (a downgrade, a failure) attached
// to a span.
type Event struct {
	Span  SpanID
	Time  time.Duration
	Name  string
	Attrs []Attr
}

// Trace records the spans and events of one query. A Trace is created with
// WithTrace and travels in the context; every recording method is safe for
// concurrent use (parallel workers annotate the same trace) and safe on a
// nil receiver, so instrumented code pays one nil check when tracing is
// off — the allocation-free fast path the hot loops rely on.
type Trace struct {
	start time.Time
	id    atomic.Uint64

	mu     sync.Mutex
	spans  []Span
	events []Event
}

// traceIDs feeds NewTrace: a time-seeded counter advanced by a large odd
// constant (the 64-bit golden-ratio increment), so IDs are unique within a
// process and collide across processes only by birthday accident.
var traceIDs atomic.Uint64

func init() { traceIDs.Store(uint64(time.Now().UnixNano())) }

// NewTrace returns an empty trace whose clock starts now, carrying a fresh
// process-unique trace ID.
func NewTrace() *Trace {
	t := &Trace{start: time.Now()}
	t.id.Store(traceIDs.Add(0x9E3779B97F4A7C15))
	return t
}

// ID returns the trace's identity — the value propagated across process
// boundaries so client and server spans of one query correlate. Zero on a
// nil trace.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id.Load()
}

// SetID overrides the trace's identity. A server adopting a client's
// propagated trace context calls this so its spans and flight-recorder
// events carry the caller's ID.
func (t *Trace) SetID(id uint64) {
	if t == nil {
		return
	}
	t.id.Store(id)
}

// traceKey is the context key under which the trace travels.
type traceKey struct{}

// spanKey is the context key carrying the current parent SpanID.
type spanKey struct{}

// WithTrace arms tracing on the context: the returned context carries a
// fresh Trace that instrumented layers discover with TraceFrom.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	tr := NewTrace()
	return context.WithValue(ctx, traceKey{}, tr), tr
}

// ContextWithTrace arms an existing trace on the context — the server-side
// counterpart of WithTrace, used when the trace was created to adopt a
// propagated wire trace context rather than freshly at the call site.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the context's trace, or nil when tracing is off. The
// nil result is usable: every Trace method no-ops on a nil receiver.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// ContextWithSpan marks id as the current parent span, so spans begun by
// deeper layers nest under it.
func ContextWithSpan(ctx context.Context, id SpanID) context.Context {
	return context.WithValue(ctx, spanKey{}, id)
}

// SpanFromContext returns the current parent span, or 0 at the root.
func SpanFromContext(ctx context.Context) SpanID {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(spanKey{}).(SpanID)
	return id
}

// now returns the trace-relative clock, floored to 1ns so a recorded
// offset is never the zero "still open" sentinel.
func (t *Trace) now() time.Duration {
	d := time.Since(t.start)
	if d <= 0 {
		d = 1
	}
	return d
}

// Begin opens a span under parent (0 = root) and returns its ID. On a nil
// trace it records nothing and returns 0.
func (t *Trace) Begin(parent SpanID, name string) SpanID {
	if t == nil {
		return 0
	}
	start := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: start})
	return id
}

// End closes the span and appends attrs to it. Ending SpanID 0 or an
// already-closed span is a no-op, so error paths may End defensively.
func (t *Trace) End(id SpanID, attrs ...Attr) {
	if t == nil || id == 0 {
		return
	}
	end := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	i := int(id) - 1
	if i < 0 || i >= len(t.spans) || t.spans[i].End != 0 {
		return
	}
	t.spans[i].End = end
	t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
}

// Annotate appends attrs to an open or closed span.
func (t *Trace) Annotate(id SpanID, attrs ...Attr) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i := int(id) - 1
	if i < 0 || i >= len(t.spans) {
		return
	}
	t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
}

// Event records an instantaneous annotation on the span (0 = trace level).
func (t *Trace) Event(span SpanID, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	at := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{Span: span, Time: at, Name: name, Attrs: attrs})
}

// Spans returns a snapshot of all recorded spans in creation order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Events returns a snapshot of all recorded events in creation order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// SpansNamed returns the spans with the given name, in creation order.
func (t *Trace) SpansNamed(name string) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// WriteTree renders the trace as an indented tree: each span with its
// duration and attributes, events inlined under their span, children in
// start order. Safe on a nil trace (writes a placeholder line).
func (t *Trace) WriteTree(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "(no trace)")
		return err
	}
	spans, events := t.Spans(), t.Events()
	kids := make(map[SpanID][]Span)
	for _, s := range spans {
		kids[s.Parent] = append(kids[s.Parent], s)
	}
	for _, k := range kids {
		sort.Slice(k, func(i, j int) bool {
			if k[i].Start != k[j].Start {
				return k[i].Start < k[j].Start
			}
			return k[i].ID < k[j].ID
		})
	}
	evs := make(map[SpanID][]Event)
	for _, e := range events {
		evs[e.Span] = append(evs[e.Span], e)
	}
	var render func(id SpanID, depth int) error
	render = func(id SpanID, depth int) error {
		for _, s := range kids[id] {
			dur := "unfinished"
			if s.End != 0 {
				dur = s.Dur().String()
			}
			attrs := ""
			if len(s.Attrs) > 0 {
				parts := make([]string, len(s.Attrs))
				for i, a := range s.Attrs {
					parts[i] = a.String()
				}
				attrs = " " + strings.Join(parts, " ")
			}
			if _, err := fmt.Fprintf(w, "%s%s%s (%s)\n",
				strings.Repeat("  ", depth), s.Name, attrs, dur); err != nil {
				return err
			}
			for _, e := range evs[s.ID] {
				parts := make([]string, len(e.Attrs))
				for i, a := range e.Attrs {
					parts[i] = a.String()
				}
				ann := ""
				if len(parts) > 0 {
					ann = " " + strings.Join(parts, " ")
				}
				if _, err := fmt.Fprintf(w, "%s! %s%s (@%s)\n",
					strings.Repeat("  ", depth+1), e.Name, ann, e.Time); err != nil {
					return err
				}
			}
			if err := render(s.ID, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return render(0, 0)
}

// chromeEvent is one entry of the Chrome trace_event JSON array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace in the Chrome trace_event JSON array
// format (load it at chrome://tracing or in Perfetto). Spans become "X"
// complete events; still-open spans are extended to the trace's current
// clock. Events become "i" instants.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	nowD := t.now()
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	var out []chromeEvent
	for _, s := range t.Spans() {
		end := s.End
		if end == 0 {
			end = nowD
		}
		args := make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			args[a.Key] = a.value()
		}
		out = append(out, chromeEvent{
			Name: s.Name, Phase: "X", TS: us(s.Start), Dur: us(end - s.Start),
			PID: 1, TID: 1, Args: args,
		})
	}
	for _, e := range t.Events() {
		args := make(map[string]any, len(e.Attrs))
		for _, a := range e.Attrs {
			args[a.Key] = a.value()
		}
		out = append(out, chromeEvent{
			Name: e.Name, Phase: "i", TS: us(e.Time), PID: 1, TID: 1,
			Scope: "t", Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
