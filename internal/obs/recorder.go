package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// RecKind classifies one flight-recorder event.
type RecKind uint8

// Event kinds. The recorder stores only fixed-size integers — kinds and
// codes map to names at dump time, never on the recording path.
const (
	// RecQueryStart: a query entered the engine. Code: query kind
	// (RecCodeSelect/RecCodeJoin). Trace: the query's trace ID (0 when
	// untraced). A: strategy code.
	RecQueryStart RecKind = 1 + iota
	// RecQueryFinish: a query left the engine. Code: outcome
	// (RecCodeOK..RecCodeError). A: latency in nanoseconds. B: page reads.
	RecQueryFinish
	// RecSlowQuery: a finished query exceeded the configured slow-query
	// threshold. Code: outcome. A: latency in nanoseconds. B: threshold in
	// nanoseconds.
	RecSlowQuery
	// RecCheckpointBegin: a fuzzy checkpoint started. A: begin LSN.
	RecCheckpointBegin
	// RecCheckpointEnd: a fuzzy checkpoint completed. A: pages flushed.
	// B: duration in nanoseconds.
	RecCheckpointEnd
	// RecReplState: the replication follower changed state. Code: the new
	// state (RecCodeSeeding..RecCodeStalled). A: the previous state code.
	RecReplState
	// RecReplGone: the primary answered GONE — the WAL tail the follower
	// asked for was truncated away; a delta resync follows. A: the LSN the
	// follower asked from.
	RecReplGone
	// RecReplStale: a read was refused under the staleness bound. A: lag
	// in bytes. B: lag in nanoseconds.
	RecReplStale
	// RecFaultRetry: the buffer pool retried a physical page transfer
	// after a transient fault. Code: RecCodeRead or RecCodeWrite. A: file
	// ID. B: page number.
	RecFaultRetry
	// RecAdmissionShed: the server refused a query without executing it.
	// Code: RecCodeBusy or RecCodeShuttingDown. Trace: the propagated
	// trace ID, when the shed request carried one.
	RecAdmissionShed
)

// String names the kind for dumps.
func (k RecKind) String() string {
	switch k {
	case RecQueryStart:
		return "query_start"
	case RecQueryFinish:
		return "query_finish"
	case RecSlowQuery:
		return "slow_query"
	case RecCheckpointBegin:
		return "checkpoint_begin"
	case RecCheckpointEnd:
		return "checkpoint_end"
	case RecReplState:
		return "repl_state"
	case RecReplGone:
		return "repl_gone"
	case RecReplStale:
		return "repl_stale"
	case RecFaultRetry:
		return "fault_retry"
	case RecAdmissionShed:
		return "admission_shed"
	default:
		return fmt.Sprintf("kind_%d", uint8(k))
	}
}

// Codes, interpreted per kind (see the kind constants).
const (
	// Query kinds (RecQueryStart).
	RecCodeSelect uint8 = 0
	RecCodeJoin   uint8 = 1
	// Outcomes (RecQueryFinish, RecSlowQuery).
	RecCodeOK       uint8 = 0
	RecCodeDegraded uint8 = 1
	RecCodeTimeout  uint8 = 2
	RecCodeError    uint8 = 3
	// Follower states (RecReplState), matching repl's state machine order.
	RecCodeSeeding    uint8 = 0
	RecCodeCatchingUp uint8 = 1
	RecCodeStreaming  uint8 = 2
	RecCodeStalled    uint8 = 3
	// Transfer direction (RecFaultRetry).
	RecCodeRead  uint8 = 0
	RecCodeWrite uint8 = 1
	// Shed reasons (RecAdmissionShed).
	RecCodeBusy         uint8 = 0
	RecCodeShuttingDown uint8 = 1
)

// CodeLabel renders a code under its kind's namespace for dumps; unknown
// combinations render numerically rather than failing.
func CodeLabel(k RecKind, c uint8) string {
	type kc struct {
		k RecKind
		c uint8
	}
	labels := map[kc]string{
		{RecQueryStart, RecCodeSelect}:          "select",
		{RecQueryStart, RecCodeJoin}:            "join",
		{RecReplState, RecCodeSeeding}:          "seeding",
		{RecReplState, RecCodeCatchingUp}:       "catching_up",
		{RecReplState, RecCodeStreaming}:        "streaming",
		{RecReplState, RecCodeStalled}:          "stalled",
		{RecFaultRetry, RecCodeRead}:            "read",
		{RecFaultRetry, RecCodeWrite}:           "write",
		{RecAdmissionShed, RecCodeBusy}:         "server_busy",
		{RecAdmissionShed, RecCodeShuttingDown}: "shutting_down",
	}
	outcomes := map[uint8]string{
		RecCodeOK: "ok", RecCodeDegraded: "degraded",
		RecCodeTimeout: "timeout", RecCodeError: "error",
	}
	if k == RecQueryFinish || k == RecSlowQuery {
		if s, ok := outcomes[c]; ok {
			return s
		}
	}
	if s, ok := labels[kc{k, c}]; ok {
		return s
	}
	return fmt.Sprintf("%d", c)
}

// RecEvent is one flight-recorder entry: fixed-size integers only, so
// recording never allocates and a dump never races string interiors. Trace
// carries the query's trace ID where one applies (0 otherwise), which is
// how post-incident dumps correlate with client-side span trees. A and B
// are kind-specific payloads (see the kind constants).
type RecEvent struct {
	Seq   uint64
	Time  int64 // UnixNano
	Kind  RecKind
	Code  uint8
	Trace uint64
	A, B  int64
}

// recSlot is one ring entry. Every field is atomic and seq is stored last
// (and zeroed first), so a reader that sees the same non-zero seq before
// and after reading the payload fields got a consistent event; anything
// else is a torn slot the reader skips. All accesses are atomic, so the
// discipline is race-detector-clean without a lock.
type recSlot struct {
	seq   atomic.Uint64 // the event's Seq; 0 while the slot is being written
	time  atomic.Int64
	kc    atomic.Uint32 // Kind<<8 | Code
	trace atomic.Uint64
	a, b  atomic.Int64
}

// Recorder is the always-on flight recorder: a fixed-size lock-free ring
// of structured events. Record is wait-free (a counter increment plus six
// atomic stores, no allocation) so it can stay armed in production at all
// times; readers snapshot whatever survives in the ring, skipping entries
// torn by concurrent writers. Nil-safe throughout.
type Recorder struct {
	mask  uint64
	next  atomic.Uint64
	slots []recSlot
}

// NewRecorder returns a recorder holding the most recent `size` events
// (rounded up to a power of two, minimum 16).
func NewRecorder(size int) *Recorder {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Recorder{mask: uint64(n - 1), slots: make([]recSlot, n)}
}

// Record appends one event, overwriting the oldest when the ring is full.
func (r *Recorder) Record(kind RecKind, code uint8, trace uint64, a, b int64) {
	if r == nil {
		return
	}
	seq := r.next.Add(1)
	sl := &r.slots[(seq-1)&r.mask]
	sl.seq.Store(0) // torn until the payload below is complete
	sl.time.Store(time.Now().UnixNano())
	sl.kc.Store(uint32(kind)<<8 | uint32(code))
	sl.trace.Store(trace)
	sl.a.Store(a)
	sl.b.Store(b)
	sl.seq.Store(seq)
}

// Events snapshots the ring in sequence order, oldest first. Slots torn by
// concurrent writers are skipped — a dump taken during a write burst loses
// at most the entries being overwritten at that instant.
func (r *Recorder) Events() []RecEvent {
	if r == nil {
		return nil
	}
	out := make([]RecEvent, 0, len(r.slots))
	for i := range r.slots {
		sl := &r.slots[i]
		seq := sl.seq.Load()
		if seq == 0 {
			continue
		}
		ev := RecEvent{
			Seq:   seq,
			Time:  sl.time.Load(),
			Trace: sl.trace.Load(),
			A:     sl.a.Load(),
			B:     sl.b.Load(),
		}
		kc := sl.kc.Load()
		ev.Kind, ev.Code = RecKind(kc>>8), uint8(kc)
		if sl.seq.Load() != seq {
			continue // overwritten while we read it
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSON dumps the ring as a JSON array, oldest event first: seq, an
// RFC3339Nano timestamp, the kind and code by name, the trace ID as 16 hex
// digits (the same rendering the client CLIs print), and the kind-specific
// a/b payloads.
func (r *Recorder) WriteJSON(w io.Writer) error {
	evs := r.Events()
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, e := range evs {
		sep := ","
		if i == len(evs)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			"  {\"seq\":%d,\"time\":%q,\"kind\":%q,\"code\":%q,\"trace\":\"%016x\",\"a\":%d,\"b\":%d}%s\n",
			e.Seq, time.Unix(0, e.Time).UTC().Format(time.RFC3339Nano),
			e.Kind.String(), CodeLabel(e.Kind, e.Code), e.Trace, e.A, e.B, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// defaultRecorder is the process-wide always-on recorder every layer
// records into; /debug/events and the SIGQUIT dump read it.
var defaultRecorder = NewRecorder(4096)

// Record appends one event to the process-wide recorder.
func Record(kind RecKind, code uint8, trace uint64, a, b int64) {
	defaultRecorder.Record(kind, code, trace, a, b)
}

// Events snapshots the process-wide recorder.
func Events() []RecEvent { return defaultRecorder.Events() }

// WriteEventsJSON dumps the process-wide recorder as JSON.
func WriteEventsJSON(w io.Writer) error { return defaultRecorder.WriteJSON(w) }
