package obs

import "time"

// RemoteSpan is one span flattened for transport: the process-independent
// projection of a Span that a server serializes into a DONE verdict and a
// client grafts back under its own call span, reconstructing one
// end-to-end tree for a query that crossed a process boundary.
//
// Parent indexes into the same slice (-1 marks a root of the remote
// trace); Start is the offset from the remote trace's start and Dur is the
// span's duration (0 while the remote span was still open when exported).
type RemoteSpan struct {
	Parent     int32
	Name       string
	Start, Dur time.Duration
	Attrs      []Attr
}

// Export flattens the trace's spans for transport. Span IDs become slice
// indices (parents always precede children, because Begin assigns IDs in
// creation order), so the result is self-contained and Graft on the far
// side needs no ID translation. Nil-safe.
func (t *Trace) Export() []RemoteSpan {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make([]RemoteSpan, len(spans))
	for i, s := range spans {
		rs := RemoteSpan{Parent: int32(s.Parent) - 1, Name: s.Name, Start: s.Start}
		if s.End != 0 {
			// Floor a closed span to 1ns so Dur 0 stays the "still open"
			// sentinel on the far side.
			if rs.Dur = s.End - s.Start; rs.Dur <= 0 {
				rs.Dur = 1
			}
		}
		if len(s.Attrs) > 0 {
			rs.Attrs = append([]Attr(nil), s.Attrs...)
		}
		out[i] = rs
	}
	return out
}

// Graft splices a remote trace's exported spans into this trace as
// children of under (0 = root): remote roots become children of under and
// remote parent/child edges are preserved. Remote clocks are not
// synchronized with ours, so remote offsets are rebased onto the under
// span's start — the grafted subtree lands inside the client span that
// covered the remote call, which is where it belongs causally even if the
// two clocks disagree. Nil-safe; malformed parent indices degrade to
// children of under rather than corrupting the tree.
func (t *Trace) Graft(under SpanID, remote []RemoteSpan) {
	if t == nil || len(remote) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var off time.Duration
	if i := int(under) - 1; i >= 0 && i < len(t.spans) {
		off = t.spans[i].Start
	}
	base := len(t.spans)
	for i, rs := range remote {
		parent := under
		if rs.Parent >= 0 && int(rs.Parent) < i {
			parent = SpanID(base + int(rs.Parent) + 1)
		}
		start := off + rs.Start
		if start <= 0 {
			start = 1
		}
		var end time.Duration
		if rs.Dur > 0 {
			end = start + rs.Dur
		}
		t.spans = append(t.spans, Span{
			ID:     SpanID(len(t.spans) + 1),
			Parent: parent,
			Name:   rs.Name,
			Start:  start,
			End:    end,
			Attrs:  append([]Attr(nil), rs.Attrs...),
		})
	}
}
