package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceSpansAndEvents(t *testing.T) {
	tr := NewTrace()
	q := tr.Begin(0, "query")
	lvl0 := tr.Begin(q, "level")
	tr.End(lvl0, Int("qualpairs", 1), Int("reads", 4))
	lvl1 := tr.Begin(q, "level")
	tr.Event(lvl1, "downgrade", Str("reason", "index missing"))
	tr.End(lvl1, Int("qualpairs", 9), Int("reads", 12))
	tr.End(q, Str("strategy", "tree"))

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "query" || spans[0].Parent != 0 {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	for _, s := range spans[1:] {
		if s.Parent != q {
			t.Fatalf("level span not parented to query: %+v", s)
		}
		if s.End == 0 || s.Dur() <= 0 {
			t.Fatalf("span not closed: %+v", s)
		}
	}
	if v, ok := spans[2].IntAttr("reads"); !ok || v != 12 {
		t.Fatalf("IntAttr reads = %d,%v", v, ok)
	}
	if v, ok := spans[0].StrAttr("strategy"); !ok || v != "tree" {
		t.Fatalf("StrAttr strategy = %q,%v", v, ok)
	}
	if _, ok := spans[0].IntAttr("strategy"); ok {
		t.Fatal("IntAttr must not match a string attr")
	}
	levels := tr.SpansNamed("level")
	if len(levels) != 2 {
		t.Fatalf("SpansNamed(level) = %d, want 2", len(levels))
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Span != lvl1 || evs[0].Name != "downgrade" {
		t.Fatalf("events wrong: %+v", evs)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if id := tr.Begin(0, "x"); id != 0 {
		t.Fatalf("nil Begin = %d, want 0", id)
	}
	tr.End(1)
	tr.Annotate(1, Int("a", 1))
	tr.Event(0, "e")
	if tr.Spans() != nil || tr.Events() != nil {
		t.Fatal("nil trace snapshots must be nil")
	}
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil || !strings.Contains(buf.String(), "no trace") {
		t.Fatalf("nil WriteTree: err=%v out=%q", err, buf.String())
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil || strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil WriteChromeTrace: err=%v out=%q", err, buf.String())
	}
}

func TestTraceEndIsIdempotent(t *testing.T) {
	tr := NewTrace()
	id := tr.Begin(0, "s")
	tr.End(id, Int("a", 1))
	first := tr.Spans()[0]
	tr.End(id, Int("a", 2)) // second End must not move End or append attrs
	again := tr.Spans()[0]
	if again.End != first.End || len(again.Attrs) != 1 {
		t.Fatalf("double End mutated span: %+v vs %+v", again, first)
	}
	tr.End(0)   // no-op
	tr.End(999) // out of range: no-op
	tr.Annotate(id, Str("k", "v"))
	if n := len(tr.Spans()[0].Attrs); n != 2 {
		t.Fatalf("Annotate after End: %d attrs, want 2", n)
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("background context must carry no trace")
	}
	if TraceFrom(nil) != nil || SpanFromContext(nil) != 0 {
		t.Fatal("nil context must be safe")
	}
	ctx, tr := WithTrace(context.Background())
	if tr == nil || TraceFrom(ctx) != tr {
		t.Fatal("WithTrace must store the trace it returns")
	}
	if SpanFromContext(ctx) != 0 {
		t.Fatal("fresh context has no current span")
	}
	id := tr.Begin(0, "root")
	defer tr.End(id)
	ctx2 := ContextWithSpan(ctx, id)
	if SpanFromContext(ctx2) != id {
		t.Fatal("ContextWithSpan lost the span")
	}
	if TraceFrom(ctx2) != tr {
		t.Fatal("span context must still carry the trace")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	root := tr.Begin(0, "root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := tr.Begin(root, "work")
				tr.Event(id, "tick", Int("w", int64(w)))
				tr.End(id, Int("i", int64(i)))
			}
		}(w)
	}
	wg.Wait()
	tr.End(root)
	if got := len(tr.Spans()); got != 1+8*100 {
		t.Fatalf("spans = %d, want %d", got, 1+8*100)
	}
	if got := len(tr.Events()); got != 8*100 {
		t.Fatalf("events = %d, want %d", got, 8*100)
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTrace()
	q := tr.Begin(0, "join")
	lvl := tr.Begin(q, "level")
	tr.Event(lvl, "downgrade", Str("to", "scan"))
	tr.End(lvl, Int("qualpairs", 3))
	open := tr.Begin(q, "abandoned")
	_ = open // left unfinished on purpose
	tr.End(q)

	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("tree has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "join (") {
		t.Errorf("line 0: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  level qualpairs=3 (") {
		t.Errorf("line 1: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    ! downgrade to=scan (@") {
		t.Errorf("line 2: %q", lines[2])
	}
	if !strings.Contains(lines[3], "abandoned (unfinished)") {
		t.Errorf("line 3: %q", lines[3])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTrace()
	q := tr.Begin(0, "join")
	lvl := tr.Begin(q, "level")
	tr.End(lvl, Int("qualpairs", 3), Str("phase", "filter"))
	tr.Event(q, "done")
	tr.End(q)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	var complete, instant int
	for _, e := range evs {
		switch e["ph"] {
		case "X":
			complete++
			if e["dur"] == nil {
				t.Errorf("complete event missing dur: %v", e)
			}
		case "i":
			instant++
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if complete != 2 || instant != 1 {
		t.Fatalf("phases: %d complete, %d instant", complete, instant)
	}
	for _, e := range evs {
		if e["name"] == "level" {
			args := e["args"].(map[string]any)
			if args["qualpairs"] != float64(3) || args["phase"] != "filter" {
				t.Errorf("level args wrong: %v", args)
			}
		}
	}
}
