package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value for the Prometheus text format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelString renders {k="v",...}, with extra labels (a histogram's le)
// appended; empty when there are no labels at all.
func labelString(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a histogram le bound.
func formatBound(v float64) string { return formatFloat(v) }

// WritePrometheus renders every family in the Prometheus text exposition
// format, with families sorted by name and children sorted by label values,
// so the output is stable for golden-file comparison. Safe on a nil
// registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType()); err != nil {
			return err
		}
		for _, c := range f.kids {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeChild renders one labeled instrument's sample lines.
func writeChild(w io.Writer, f famSnap, c *child) error {
	ls := labelString(c.labels)
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, c.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, c.gauge.Value())
		return err
	case kindCounterFunc, kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(c.sample()))
		return err
	case kindHistogram:
		bounds, cum := c.hist.Buckets()
		for i, b := range bounds {
			bl := labelString(c.labels, L("le", formatBound(b)))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bl, cum[i]); err != nil {
				return err
			}
		}
		bl := labelString(c.labels, L("le", "+Inf"))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bl, cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(c.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, c.hist.Count())
		return err
	}
	return nil
}

// Expvar returns the registry as an expvar.Func rendering a JSON object:
// one entry per family; unlabeled scalars render as their value, labeled
// families as an object keyed by `k=v,...`, and histograms as
// {count, sum, buckets}. Safe on a nil registry.
func (r *Registry) Expvar() expvar.Func {
	return func() any {
		if r == nil {
			return map[string]any{}
		}
		out := make(map[string]any)
		for _, f := range r.snapshot() {
			if len(f.keys) == 0 {
				for _, c := range f.kids {
					out[f.name] = childValue(f, c)
				}
				continue
			}
			m := make(map[string]any, len(f.kids))
			for _, c := range f.kids {
				parts := make([]string, len(c.labels))
				for i, l := range c.labels {
					parts[i] = l.Key + "=" + l.Value
				}
				m[strings.Join(parts, ",")] = childValue(f, c)
			}
			out[f.name] = m
		}
		return out
	}
}

// childValue renders one instrument's current value for expvar.
func childValue(f famSnap, c *child) any {
	switch f.kind {
	case kindCounter:
		return c.counter.Value()
	case kindGauge:
		return c.gauge.Value()
	case kindCounterFunc, kindGaugeFunc:
		return c.sample()
	case kindHistogram:
		bounds, cum := c.hist.Buckets()
		buckets := make(map[string]int64, len(cum))
		for i, b := range bounds {
			buckets[formatBound(b)] = cum[i]
		}
		buckets["+Inf"] = cum[len(cum)-1]
		return map[string]any{
			"count":   c.hist.Count(),
			"sum":     c.hist.Sum(),
			"buckets": buckets,
		}
	}
	return nil
}

// PublishExpvar publishes the registry under the given name in the
// process-global expvar namespace (idempotent: a second call with the same
// name is a no-op rather than the panic expvar.Publish raises). Safe on a
// nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r.Expvar())
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// EventsHandler serves the process-wide flight recorder as a JSON array —
// the /debug/events endpoint.
func EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteEventsJSON(w)
	})
}

// NewMux returns the observability endpoint surface: /metrics (Prometheus
// text), /debug/vars (expvar, including the registry published as
// "spatialjoin"), /debug/events (the flight recorder's ring as JSON), and
// the stdlib pprof endpoints under /debug/pprof/.
func NewMux(r *Registry) *http.ServeMux {
	r.PublishExpvar("spatialjoin")
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/events", EventsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
