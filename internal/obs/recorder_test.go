package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderBasicOrder(t *testing.T) {
	r := NewRecorder(64)
	for i := int64(1); i <= 10; i++ {
		r.Record(RecQueryFinish, RecCodeOK, uint64(i), i*100, i)
	}
	evs := r.Events()
	if len(evs) != 10 {
		t.Fatalf("%d events, want 10", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Kind != RecQueryFinish || e.Code != RecCodeOK {
			t.Fatalf("event %d: kind %v code %d", i, e.Kind, e.Code)
		}
		if e.Trace != uint64(i+1) || e.A != int64(i+1)*100 || e.B != int64(i+1) {
			t.Fatalf("event %d payload: %+v", i, e)
		}
		if e.Time == 0 {
			t.Fatalf("event %d has zero timestamp", i)
		}
	}
}

func TestRecorderWraparoundKeepsNewest(t *testing.T) {
	r := NewRecorder(16) // exactly 16 slots
	for i := int64(1); i <= 100; i++ {
		r.Record(RecFaultRetry, RecCodeRead, 0, i, 0)
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("%d events after wrap, want 16", len(evs))
	}
	if evs[0].Seq != 85 || evs[15].Seq != 100 {
		t.Fatalf("wrap kept seqs %d..%d, want 85..100", evs[0].Seq, evs[15].Seq)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(RecQueryStart, 0, 0, 0, 0) // must not panic
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil recorder returned events: %v", evs)
	}
}

func TestRecorderSizing(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {100, 128}, {4096, 4096},
	} {
		if r := NewRecorder(tc.ask); len(r.slots) != tc.want {
			t.Errorf("NewRecorder(%d): %d slots, want %d", tc.ask, len(r.slots), tc.want)
		}
	}
}

// TestRecorderRecordDoesNotAllocate is the always-on budget: recording an
// event allocates nothing, so the recorder can stay armed in production.
func TestRecorderRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(1024)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(RecQueryFinish, RecCodeOK, 42, 1000, 10)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}

// TestRecorderConcurrentHammer runs writers against dumpers with no
// synchronization beyond the ring's own discipline. Run under -race this
// is the proof the seqlock scheme is data-race-free; the assertions prove
// every event a dump does return is internally consistent (never torn
// across two writes).
func TestRecorderConcurrentHammer(t *testing.T) {
	r := NewRecorder(64) // small ring: constant overwriting
	const writers = 8
	const perWriter = 5000
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				// Payload fields are all derived from the writer id, so a
				// torn read that mixed two writers' fields is detectable.
				id := int64(w)
				r.Record(RecQueryFinish, RecCodeOK, uint64(w), id*1_000_000, id*7)
			}
		}(w)
	}
	dumps := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-start:
			default:
			}
			evs := r.Events()
			for _, e := range evs {
				w := int64(e.Trace)
				if e.A != w*1_000_000 || e.B != w*7 {
					t.Errorf("torn event surfaced: %+v", e)
				}
			}
			dumps++
			if dumps > 200 {
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	<-done

	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("%d events after hammer, want a full ring of 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("dump out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	// The final dump, quiesced, holds exactly the newest 64 sequence
	// numbers of the writers*perWriter total.
	if min := evs[0].Seq; min != writers*perWriter-64+1 {
		t.Fatalf("oldest surviving seq %d, want %d", min, writers*perWriter-64+1)
	}
}

// TestRecorderHammerLeaksNoGoroutines pins that recording and dumping
// spin up nothing that outlives the calls.
func TestRecorderHammerLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRecorder(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(RecCheckpointEnd, 0, 0, int64(i), 0)
				if i%100 == 0 {
					_ = r.Events()
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
}

func TestRecorderWriteJSON(t *testing.T) {
	r := NewRecorder(16)
	r.Record(RecQueryStart, RecCodeJoin, 0xDEADBEEF, 1, 0)
	r.Record(RecSlowQuery, RecCodeDegraded, 0xDEADBEEF, 2_000_000, 1_000_000)
	r.Record(RecReplState, RecCodeStreaming, 0, int64(RecCodeCatchingUp), 0)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var evs []struct {
		Seq   uint64 `json:"seq"`
		Time  string `json:"time"`
		Kind  string `json:"kind"`
		Code  string `json:"code"`
		Trace string `json:"trace"`
		A     int64  `json:"a"`
		B     int64  `json:"b"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &evs); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(evs) != 3 {
		t.Fatalf("%d events in dump, want 3", len(evs))
	}
	if evs[0].Kind != "query_start" || evs[0].Code != "join" {
		t.Errorf("event 0: kind %q code %q", evs[0].Kind, evs[0].Code)
	}
	if evs[0].Trace != "00000000deadbeef" {
		t.Errorf("trace rendered %q, want 16 hex digits", evs[0].Trace)
	}
	if evs[1].Kind != "slow_query" || evs[1].Code != "degraded" || evs[1].A != 2_000_000 {
		t.Errorf("event 1: %+v", evs[1])
	}
	if evs[2].Kind != "repl_state" || evs[2].Code != "streaming" {
		t.Errorf("event 2: kind %q code %q", evs[2].Kind, evs[2].Code)
	}
	if _, err := time.Parse(time.RFC3339Nano, evs[0].Time); err != nil {
		t.Errorf("timestamp %q is not RFC3339Nano: %v", evs[0].Time, err)
	}
}

func TestRecorderWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewRecorder(16).WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var evs []any
	if err := json.Unmarshal([]byte(sb.String()), &evs); err != nil {
		t.Fatalf("empty dump is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(evs) != 0 {
		t.Fatalf("empty recorder dumped %d events", len(evs))
	}
}

func TestCodeLabels(t *testing.T) {
	cases := []struct {
		k    RecKind
		c    uint8
		want string
	}{
		{RecQueryStart, RecCodeSelect, "select"},
		{RecQueryStart, RecCodeJoin, "join"},
		{RecQueryFinish, RecCodeOK, "ok"},
		{RecQueryFinish, RecCodeTimeout, "timeout"},
		{RecSlowQuery, RecCodeError, "error"},
		{RecReplState, RecCodeSeeding, "seeding"},
		{RecReplState, RecCodeStalled, "stalled"},
		{RecFaultRetry, RecCodeWrite, "write"},
		{RecAdmissionShed, RecCodeBusy, "server_busy"},
		{RecAdmissionShed, RecCodeShuttingDown, "shutting_down"},
		{RecCheckpointBegin, 0, "0"}, // no namespace: numeric
		{RecQueryFinish, 99, "99"},   // unknown outcome: numeric
	}
	for _, tc := range cases {
		if got := CodeLabel(tc.k, tc.c); got != tc.want {
			t.Errorf("CodeLabel(%v, %d) = %q, want %q", tc.k, tc.c, got, tc.want)
		}
	}
}

// TestDebugEventsEndpoint drives the obs mux route the daemon exposes.
func TestDebugEventsEndpoint(t *testing.T) {
	Record(RecCheckpointBegin, 0, 0, 123, 0)
	srv := httptest.NewServer(NewMux(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type %q", ct)
	}
	var evs []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatalf("endpoint body is not JSON: %v", err)
	}
	found := false
	for _, e := range evs {
		if e["kind"] == "checkpoint_begin" && e["a"] == float64(123) {
			found = true
		}
	}
	if !found {
		t.Error("recorded checkpoint_begin event missing from /debug/events")
	}
}
