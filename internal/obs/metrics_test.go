package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialjoin/internal/parallel"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the fixed registry the exposition golden test
// renders: every kind, labeled and unlabeled children, and a label value
// exercising all three escape sequences.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.", L("strategy", "tree"), L("kind", "filter")).Add(3)
	r.Counter("test_requests_total", "Total requests.", L("strategy", "nested"), L("kind", "refine")).Add(5)
	r.Gauge("test_queue_depth", "Current queue depth.").Set(7)
	h := r.Histogram("test_latency_seconds", "Latency of requests.", []float64{0.5, 1, 10})
	for _, v := range []float64{0.25, 0.5, 5, 100} {
		h.Observe(v)
	}
	r.CounterFunc("test_sampled_total", "Sampled from an external atomic.", func() float64 { return 42 })
	r.Gauge("test_weird_gauge", "Help with \\ backslash and\n newline.", L("v", "a\\b\"c\nd")).Set(1)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("Prometheus output differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestWritePrometheusStable re-renders the same registry several times:
// map iteration must not leak into the exposition order.
func TestWritePrometheusStable(t *testing.T) {
	r := goldenRegistry()
	var first bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := r.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("render %d differs from first:\n%s\nvs\n%s", i, again.String(), first.String())
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"all\\\"\n", `all\\\"\n`},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := escapeHelp("a\\b\"c\nd"); got != "a\\\\b\"c\\nd" {
		t.Errorf("escapeHelp: got %q", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h", "", []float64{1, 2, 4})
	// A sample exactly on a bound belongs to that bucket (le semantics),
	// below the first bound to the first, above the last to +Inf only.
	for _, v := range []float64{-3, 0, 1, 1.5, 2, 2.0001, 4, 5} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if want := []float64{1, 2, 4}; fmt.Sprint(bounds) != fmt.Sprint(want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	// le=1: {-3,0,1}=3; le=2: +{1.5,2}=5; le=4: +{2.0001,4}=7; +Inf: +{5}=8.
	if want := []int64{3, 5, 7, 8}; fmt.Sprint(cum) != fmt.Sprint(want) {
		t.Fatalf("cumulative = %v, want %v", cum, want)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), -3+0+1+1.5+2+2.0001+4+5.0; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: expected panic", bounds)
				}
			}()
			NewRegistry().Histogram("test_h", "", bounds)
		}()
	}
}

func TestRegistryPanicsOnInconsistentRegistration(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("test_a_total", "")
	mustPanic("kind change", func() { r.Gauge("test_a_total", "") })
	r.Counter("test_b_total", "", L("x", "1"))
	mustPanic("label keys change", func() { r.Counter("test_b_total", "", L("y", "1")) })
	mustPanic("label arity change", func() { r.Counter("test_b_total", "") })
	mustPanic("bad metric name", func() { r.Counter("bad name", "") })
	mustPanic("bad label name", func() { r.Counter("test_c_total", "", L("bad key", "v")) })
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	g := r.Gauge("x", "")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	h := r.Histogram("x", "", []float64{1})
	h.Observe(2)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	if b, c := h.Buckets(); b != nil || c != nil {
		t.Fatal("nil histogram buckets should be nil")
	}
	r.CounterFunc("x", "", func() float64 { return 1 })
	r.GaugeFunc("x", "", func() float64 { return 1 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v len=%d", err, buf.Len())
	}
	if got := r.Expvar()(); len(got.(map[string]any)) != 0 {
		t.Fatalf("nil registry expvar: %v", got)
	}
	r.PublishExpvar("test_nil_registry")
}

// TestRegistryRace hammers one registry from the parallel worker pool —
// the same pool the join strategies use — while a scraper renders it
// concurrently. Run under -race this is the data-race gate for the whole
// metrics plane.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			_ = r.Expvar()()
		}
	}()
	err := parallel.Run(8, 512, func(i int) error {
		strategy := []string{"tree", "nested", "index"}[i%3]
		r.Counter("race_queries_total", "q", L("strategy", strategy)).Inc()
		r.Gauge("race_depth", "d").Set(int64(i))
		r.Histogram("race_latency", "l", []float64{1, 10, 100}).Observe(float64(i % 200))
		r.CounterFunc("race_sampled_total", "s", func() float64 { return float64(i) })
		return nil
	})
	close(stop)
	<-scraped
	if err != nil {
		t.Fatalf("parallel.Run: %v", err)
	}
	total := int64(0)
	for _, s := range []string{"tree", "nested", "index"} {
		total += r.Counter("race_queries_total", "q", L("strategy", s)).Value()
	}
	if total != 512 {
		t.Fatalf("counter lost updates: %d, want 512", total)
	}
	if h := r.Histogram("race_latency", "l", []float64{1, 10, 100}); h.Count() != 512 {
		t.Fatalf("histogram lost updates: %d, want 512", h.Count())
	}
}

func TestExpvarShape(t *testing.T) {
	r := goldenRegistry()
	v := r.Expvar()()
	// Round-trip through JSON the way expvar serves it.
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := m["test_queue_depth"]; got != float64(7) {
		t.Errorf("unlabeled gauge = %v, want 7", got)
	}
	reqs, ok := m["test_requests_total"].(map[string]any)
	if !ok {
		t.Fatalf("labeled counter not a map: %v", m["test_requests_total"])
	}
	if got := reqs["strategy=tree,kind=filter"]; got != float64(3) {
		t.Errorf("labeled child = %v, want 3", got)
	}
	hist, ok := m["test_latency_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram not a map: %v", m["test_latency_seconds"])
	}
	if got := hist["count"]; got != float64(4) {
		t.Errorf("histogram count = %v, want 4", got)
	}
}

func TestHandlerAndMux(t *testing.T) {
	r := goldenRegistry()
	mux := NewMux(r)
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Errorf("GET %s: status %d", path, rec.Code)
		}
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_requests_total{") {
		t.Errorf("/metrics body missing counter:\n%s", rec.Body.String())
	}
}
