// Package obs is the stdlib-only observability layer of the engine: a
// metrics registry (atomic counters, gauges, and fixed-bucket histograms
// with labels, exported in Prometheus text format and through expvar) and a
// cheap per-query tracer keyed off context.Context that records the
// level-order descent of the JOIN/SELECT algorithms as spans.
//
// The package sits at the bottom of the dependency graph — it imports
// nothing from the repository — so every layer (storage, wal, parallel,
// core, join, the query layer) can feed it without cycles. All instruments
// are safe for concurrent use, and every instrument method is safe on a nil
// receiver: code paths hold possibly-nil instrument pointers and pay only a
// nil check when observability is off.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n (n must be non-negative for the exported
// value to stay monotone). Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (negative allowed). Safe on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed cumulative-style buckets. The
// bucket layout is immutable after construction; observation is lock-free
// (one atomic add per bucket count plus a CAS loop for the float sum).
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets,
	// strictly ascending; an implicit +Inf bucket follows.
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// newHistogram validates and copies the bucket bounds.
func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not strictly ascending at %g <= %g", bs[i], bs[i-1])
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}, nil
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le-style bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(nw)) {
			return
		}
	}
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bucket upper bounds and their cumulative counts
// (the last count, for the implicit +Inf bound, equals Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// Label is one name=value metric dimension.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the families a Registry holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// promType returns the Prometheus TYPE keyword for the kind.
func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instrument of a family. Exactly one of the value
// fields is populated, matching the family's kind. fn holds a
// func() float64 and is atomic because CounterFunc/GaugeFunc may
// re-register while a scraper samples it.
type child struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      atomic.Value
}

// sample invokes the child's registered func, or returns 0.
func (c *child) sample() float64 {
	if f, ok := c.fn.Load().(func() float64); ok && f != nil {
		return f()
	}
	return 0
}

// family is one named metric with a fixed kind and label-key set.
type family struct {
	name     string
	help     string
	kind     metricKind
	keys     []string // label keys in registration order
	bounds   []float64
	children map[string]*child // keyed by joined label values
}

// Registry holds metric families and renders them for exposition. The nil
// *Registry is valid: every lookup returns a nil instrument, whose methods
// are no-ops, so metrics can be plumbed unconditionally and enabled by
// supplying a registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// metricNameRe matches the Prometheus metric and label-name charset.
var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// lookup returns (creating on first use) the family's child for the given
// labels, enforcing that the name keeps one kind, help string, and label-key
// set for the registry's lifetime. Registration inconsistencies are
// programming errors and panic.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *child {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	keys := make([]string, len(labels))
	vals := make([]string, len(labels))
	for i, l := range labels {
		if !metricNameRe.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
		keys[i] = l.Key
		vals[i] = l.Value
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, keys: keys,
			bounds: bounds, children: make(map[string]*child)}
		r.families[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind.promType(), f.kind.promType()))
		}
		if len(f.keys) != len(keys) {
			panic(fmt.Sprintf("obs: metric %q re-registered with label keys %v, was %v", name, keys, f.keys))
		}
		for i := range keys {
			if f.keys[i] != keys[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with label keys %v, was %v", name, keys, f.keys))
			}
		}
	}
	ck := strings.Join(vals, "\xff")
	c, ok := f.children[ck]
	if !ok {
		c = &child{labels: append([]Label(nil), labels...)}
		switch kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHistogram:
			h, err := newHistogram(bounds)
			if err != nil {
				panic(err.Error())
			}
			c.hist = h
		}
		f.children[ck] = c
	}
	return c
}

// Counter returns the counter with the given name and labels, registering
// it on first use. Safe on a nil registry (returns a nil, no-op counter).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, labels).counter
}

// Gauge returns the gauge with the given name and labels, registering it on
// first use. Safe on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, labels).gauge
}

// Histogram returns the histogram with the given name, bucket upper bounds,
// and labels, registering it on first use. Safe on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, bounds, labels).hist
}

// CounterFunc registers a counter whose value is sampled from fn at
// exposition time — the zero-hot-path-cost bridge for layers that already
// maintain their own atomic counters (the buffer pool, the disk, the WAL).
// fn must be safe for concurrent use. Safe on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindCounterFunc, nil, labels).fn.Store(fn)
}

// GaugeFunc registers a gauge sampled from fn at exposition time. fn must
// be safe for concurrent use. Safe on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindGaugeFunc, nil, labels).fn.Store(fn)
}

// famSnap is a point-in-time view of one family for exposition: the
// family's immutable metadata plus its children copied out under the
// registry lock (the children map mutates as new label sets register).
type famSnap struct {
	*family
	kids []*child
}

// snapshot returns the families sorted by name and each family's children
// sorted by label values, for deterministic exposition. The child slices
// are copied under the lock so scraping never races with registration.
func (r *Registry) snapshot() []famSnap {
	r.mu.Lock()
	out := make([]famSnap, 0, len(r.families))
	for _, f := range r.families {
		kids := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			kids = append(kids, c)
		}
		out = append(out, famSnap{family: f, kids: kids})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, f := range out {
		kids := f.kids
		sort.Slice(kids, func(i, j int) bool {
			a, b := kids[i].labels, kids[j].labels
			for k := range a {
				if a[k].Value != b[k].Value {
					return a[k].Value < b[k].Value
				}
			}
			return false
		})
	}
	return out
}
