// Package pred implements the spatial θ-operators of Günther's spatial-join
// framework together with their Θ filter counterparts (Table 1 of the
// paper).
//
// A θ-operator is the exact predicate a spatial join is defined over, e.g.
// "a overlaps b" or "a within 10 km of b (between centerpoints)". Its
// Θ-operator is the conservative filter evaluated on the minimum bounding
// rectangles of interior tree nodes: o₁′ Θ o₂′ must be true whenever o₁′ and
// o₂′ *may* have subobjects o₁ ⊆ o₁′, o₂ ⊆ o₂′ with o₁ θ o₂. In particular
// θ(a, b) ⇒ Θ(mbr(a), mbr(b)) for all objects (each object is its own
// subobject) — the soundness property the package's tests verify.
package pred

import (
	"fmt"

	"spatialjoin/internal/geom"
)

// Operator is a spatial θ-operator paired with its Θ filter.
//
// Eval is the exact predicate over concrete geometries (points, rectangles,
// segments, simple polygons). Filter is the Θ-operator over MBRs; it may
// return false positives but never false negatives with respect to the
// subobject condition above.
type Operator interface {
	// Name returns a stable identifier such as "overlaps" or
	// "within_distance(10)".
	Name() string

	// Eval reports whether a θ b holds exactly.
	Eval(a, b geom.Spatial) bool

	// Filter reports whether the MBRs a and b may enclose matching
	// subobjects (the Θ-operator).
	Filter(a, b geom.Rect) bool
}

// WithinDistance is the paper's "o₁ within distance d from o₂" operator,
// measured between centerpoints (θ). Its Θ filter measures between closest
// points of the MBRs, which is the sound relaxation from Table 1.
type WithinDistance struct {
	// D is the distance threshold in coordinate units.
	D float64
}

// Name implements Operator.
func (w WithinDistance) Name() string { return fmt.Sprintf("within_distance(%g)", w.D) }

// Eval implements Operator: centerpoint distance ≤ D.
func (w WithinDistance) Eval(a, b geom.Spatial) bool {
	return geom.CenterOf(a).DistanceTo(geom.CenterOf(b)) <= w.D
}

// Filter implements Operator: closest-point distance between MBRs ≤ D.
// Sound because any subobject's centerpoint lies inside its ancestor's MBR,
// so the centerpoint distance of any subobject pair is at least the MBR
// closest-point distance.
func (w WithinDistance) Filter(a, b geom.Rect) bool {
	return a.MinDistance(b) <= w.D
}

// DistanceBand is the two-sided distance operator behind the paper's NO-LOC
// motivating example "between 50 and 100 kilometers from": the centerpoint
// distance must fall in [Lo, Hi]. Its Θ filter brackets all candidate
// centerpoint distances between the MBRs' closest-point and farthest-point
// distances.
type DistanceBand struct {
	// Lo and Hi are the inclusive distance bounds, 0 ≤ Lo ≤ Hi.
	Lo, Hi float64
}

// Name implements Operator.
func (d DistanceBand) Name() string { return fmt.Sprintf("distance_band(%g,%g)", d.Lo, d.Hi) }

// Eval implements Operator: Lo ≤ centerpoint distance ≤ Hi.
func (d DistanceBand) Eval(a, b geom.Spatial) bool {
	dist := geom.CenterOf(a).DistanceTo(geom.CenterOf(b))
	return dist >= d.Lo && dist <= d.Hi
}

// Filter implements Operator. Any subobject centerpoints lie inside the
// ancestor MBRs, so their distance is bracketed by MinDistance and
// MaxDistance of the MBRs; the band can only be hit when the bracket
// overlaps [Lo, Hi].
func (d DistanceBand) Filter(a, b geom.Rect) bool {
	return a.MinDistance(b) <= d.Hi && a.MaxDistance(b) >= d.Lo
}

// Overlaps is the "o₁ overlaps o₂" operator: the geometries share at least
// one point. Its Θ filter is MBR overlap.
type Overlaps struct{}

// Name implements Operator.
func (Overlaps) Name() string { return "overlaps" }

// Eval implements Operator.
func (Overlaps) Eval(a, b geom.Spatial) bool { return exactIntersects(a, b) }

// Filter implements Operator: subobjects live inside their ancestors' MBRs,
// so overlapping subobjects force overlapping MBRs.
func (Overlaps) Filter(a, b geom.Rect) bool { return a.Intersects(b) }

// Includes is the "o₁ includes o₂" operator: the geometry of b lies entirely
// inside the geometry of a. Per Table 1 (and Figure 4) the Θ filter is plain
// MBR overlap — an ancestor pair that merely overlaps may still hold an
// including subobject pair.
type Includes struct{}

// Name implements Operator.
func (Includes) Name() string { return "includes" }

// Eval implements Operator.
func (Includes) Eval(a, b geom.Spatial) bool { return exactContains(a, b) }

// Filter implements Operator.
func (Includes) Filter(a, b geom.Rect) bool { return a.Intersects(b) }

// ContainedIn is the converse of Includes: o₁ lies inside o₂. Θ is again MBR
// overlap (Table 1).
type ContainedIn struct{}

// Name implements Operator.
func (ContainedIn) Name() string { return "contained_in" }

// Eval implements Operator.
func (ContainedIn) Eval(a, b geom.Spatial) bool { return exactContains(b, a) }

// Filter implements Operator.
func (ContainedIn) Filter(a, b geom.Rect) bool { return a.Intersects(b) }

// NorthwestOf is the "o₁ to the Northwest of o₂" operator, measured between
// centerpoints: strictly smaller X and strictly larger Y. Its Θ filter tests
// whether o₁'s MBR overlaps the northwest quadrant formed by the right
// vertical and the lower horizontal tangent on o₂'s MBR (Figure 5).
type NorthwestOf struct{}

// Name implements Operator.
func (NorthwestOf) Name() string { return "northwest_of" }

// Eval implements Operator.
func (NorthwestOf) Eval(a, b geom.Spatial) bool {
	return geom.CenterOf(a).NorthwestOf(geom.CenterOf(b))
}

// Filter implements Operator.
func (NorthwestOf) Filter(a, b geom.Rect) bool {
	return b.NorthwestQuadrant().Intersects(a)
}

// ReachableWithin is the paper's "o₁ reachable from o₂ in x minutes"
// operator. The paper's setting presumes a travel-time buffer (an isochrone
// over a road network); as a faithful synthetic substitute we use a
// constant-speed Euclidean buffer: reachable ⇔ the closest-point distance is
// at most Minutes·Speed. The Θ filter, per Table 1, checks whether o₁'s MBR
// overlaps the x-minute buffer of o₂'s MBR.
type ReachableWithin struct {
	// Minutes is the travel-time budget.
	Minutes float64
	// Speed is the (constant) travel speed in coordinate units per minute.
	Speed float64
}

// Radius returns the buffer radius Minutes·Speed.
func (r ReachableWithin) Radius() float64 { return r.Minutes * r.Speed }

// Name implements Operator.
func (r ReachableWithin) Name() string {
	return fmt.Sprintf("reachable_within(%gmin@%g)", r.Minutes, r.Speed)
}

// Eval implements Operator.
func (r ReachableWithin) Eval(a, b geom.Spatial) bool {
	return exactMinDistance(a, b) <= r.Radius()
}

// Filter implements Operator: a overlaps the buffered MBR of b. Equivalent
// to MinDistance(a, b) ≤ radius for axis-aligned buffers.
func (r ReachableWithin) Filter(a, b geom.Rect) bool {
	return a.Intersects(b.Expand(r.Radius()))
}

// Table1 returns one instance of every operator pair from Table 1 of the
// paper, with representative parameters. Useful for exhaustive soundness
// tests and the Table 1 benchmark.
func Table1() []Operator {
	return []Operator{
		WithinDistance{D: 10},
		Overlaps{},
		Includes{},
		ContainedIn{},
		NorthwestOf{},
		ReachableWithin{Minutes: 10, Speed: 1},
	}
}
