package pred

import (
	"testing"

	"spatialjoin/internal/geom"
)

func TestDirectionString(t *testing.T) {
	names := map[Direction]string{
		Northwest: "northwest", Northeast: "northeast",
		Southwest: "southwest", Southeast: "southeast",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
	if Direction(9).String() != "Direction(9)" {
		t.Error("unknown direction string wrong")
	}
}

func TestDirectionOfEvalAllQuadrants(t *testing.T) {
	center := geom.NewRect(4, 4, 6, 6) // center (5,5)
	probes := map[Direction]geom.Rect{
		Northwest: geom.NewRect(0, 8, 2, 10), // center (1,9)
		Northeast: geom.NewRect(8, 8, 10, 10),
		Southwest: geom.NewRect(0, 0, 2, 2),
		Southeast: geom.NewRect(8, 0, 10, 2),
	}
	for dir, probe := range probes {
		op := DirectionOf{Dir: dir}
		if !op.Eval(probe, center) {
			t.Errorf("%s: probe should be %s of center", op.Name(), dir)
		}
		// The probe is in exactly one quadrant relative to the center.
		for other := range probes {
			if other == dir {
				continue
			}
			if (DirectionOf{Dir: other}).Eval(probe, center) {
				t.Errorf("probe for %s also matched %s", dir, other)
			}
		}
		// Same-axis alignment must not match (strict comparisons).
		if op.Eval(center, center) {
			t.Errorf("%s: an object is not in any direction of itself", dir)
		}
	}
}

func TestDirectionOfMatchesNorthwestOf(t *testing.T) {
	gen := DirectionOf{Dir: Northwest}
	named := NorthwestOf{}
	cases := [][2]geom.Rect{
		{geom.NewRect(0, 8, 2, 10), geom.NewRect(5, 0, 7, 2)},
		{geom.NewRect(5, 0, 7, 2), geom.NewRect(0, 8, 2, 10)},
		{geom.NewRect(0, 0, 2, 2), geom.NewRect(0, 0, 2, 2)},
	}
	for i, c := range cases {
		if gen.Eval(c[0], c[1]) != named.Eval(c[0], c[1]) {
			t.Fatalf("case %d: Eval disagrees with NorthwestOf", i)
		}
		if gen.Filter(c[0], c[1]) != named.Filter(c[0], c[1]) {
			t.Fatalf("case %d: Filter disagrees with NorthwestOf", i)
		}
	}
}

func TestDirectionFilterRejectsOppositeQuadrant(t *testing.T) {
	b := geom.NewRect(40, 40, 60, 60)
	opposites := map[Direction]geom.Rect{
		Northwest: geom.NewRect(80, 0, 90, 10),  // strictly SE of b
		Northeast: geom.NewRect(0, 0, 10, 10),   // strictly SW
		Southwest: geom.NewRect(80, 80, 90, 90), // strictly NE
		Southeast: geom.NewRect(0, 80, 10, 90),  // strictly NW
	}
	for dir, a := range opposites {
		op := DirectionOf{Dir: dir}
		if op.Filter(a, b) {
			t.Errorf("%s: filter must reject the opposite quadrant", op.Name())
		}
	}
}

func TestExtendedOperatorSet(t *testing.T) {
	ext := Extended()
	if len(ext) != len(Table1())+4 {
		t.Fatalf("Extended has %d operators", len(ext))
	}
	names := map[string]bool{}
	for _, op := range ext {
		if names[op.Name()] {
			t.Fatalf("duplicate operator %s", op.Name())
		}
		names[op.Name()] = true
	}
	for _, want := range []string{"northeast_of", "southwest_of", "southeast_of", "distance_band(15,40)"} {
		if !names[want] {
			t.Fatalf("Extended missing %s", want)
		}
	}
}
