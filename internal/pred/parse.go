package pred

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseName is the inverse of Operator.Name: it reconstructs an operator
// from its stable identifier. Recovery uses it to reattach persisted join
// indices, whose log records carry only the operator name, so every
// operator the package registers must round-trip through it.
func ParseName(name string) (Operator, error) {
	switch name {
	case "overlaps":
		return Overlaps{}, nil
	case "includes":
		return Includes{}, nil
	case "contained_in":
		return ContainedIn{}, nil
	case Northwest.String() + "_of":
		return NorthwestOf{}, nil
	case Northeast.String() + "_of":
		return DirectionOf{Dir: Northeast}, nil
	case Southwest.String() + "_of":
		return DirectionOf{Dir: Southwest}, nil
	case Southeast.String() + "_of":
		return DirectionOf{Dir: Southeast}, nil
	}
	if args, ok := callArgs(name, "within_distance"); ok {
		if len(args) != 1 {
			return nil, fmt.Errorf("pred: within_distance takes 1 parameter, got %q", name)
		}
		d, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return nil, fmt.Errorf("pred: parsing %q: %w", name, err)
		}
		return WithinDistance{D: d}, nil
	}
	if args, ok := callArgs(name, "distance_band"); ok {
		if len(args) != 2 {
			return nil, fmt.Errorf("pred: distance_band takes 2 parameters, got %q", name)
		}
		lo, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return nil, fmt.Errorf("pred: parsing %q: %w", name, err)
		}
		hi, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return nil, fmt.Errorf("pred: parsing %q: %w", name, err)
		}
		return DistanceBand{Lo: lo, Hi: hi}, nil
	}
	if args, ok := callArgs(name, "reachable_within"); ok {
		// Encoded as "reachable_within(<minutes>min@<speed>)".
		if len(args) == 1 {
			if min, speed, ok := strings.Cut(args[0], "min@"); ok {
				m, err1 := strconv.ParseFloat(min, 64)
				s, err2 := strconv.ParseFloat(speed, 64)
				if err1 == nil && err2 == nil {
					return ReachableWithin{Minutes: m, Speed: s}, nil
				}
			}
		}
		return nil, fmt.Errorf("pred: malformed reachable_within name %q", name)
	}
	return nil, fmt.Errorf("pred: unknown operator name %q", name)
}

// callArgs splits "fn(a,b)" into its comma-separated arguments when name
// has the given function form.
func callArgs(name, fn string) ([]string, bool) {
	rest, ok := strings.CutPrefix(name, fn+"(")
	if !ok {
		return nil, false
	}
	rest, ok = strings.CutSuffix(rest, ")")
	if !ok {
		return nil, false
	}
	return strings.Split(rest, ","), true
}
