package pred

import (
	"math"

	"spatialjoin/internal/geom"
)

// shape is the canonical decomposition of a geom.Spatial for exact predicate
// evaluation. Exactly one field group is populated.
type shape struct {
	kind shapeKind
	pt   geom.Point
	seg  geom.Segment
	poly geom.Polygon
}

type shapeKind uint8

const (
	kindPoint shapeKind = iota
	kindSegment
	kindPolygon
)

// canonical converts any supported Spatial into a shape. Unknown concrete
// types degrade gracefully to their MBR polygon, which keeps Eval total (the
// predicate is then exact on the MBR rather than the underlying geometry).
func canonical(s geom.Spatial) shape {
	switch v := s.(type) {
	case geom.Point:
		return shape{kind: kindPoint, pt: v}
	case *geom.Point:
		return shape{kind: kindPoint, pt: *v}
	case geom.Segment:
		return shape{kind: kindSegment, seg: v}
	case geom.Polygon:
		return shape{kind: kindPolygon, poly: v}
	case geom.Rect:
		return shape{kind: kindPolygon, poly: v.ToPolygon()}
	default:
		return shape{kind: kindPolygon, poly: s.Bounds().ToPolygon()}
	}
}

// exactIntersects reports whether the geometries of a and b share a point.
func exactIntersects(a, b geom.Spatial) bool {
	// MBR pre-test: cheap and always sound.
	if !a.Bounds().Intersects(b.Bounds()) {
		return false
	}
	sa, sb := canonical(a), canonical(b)
	// Normalize so sa.kind ≤ sb.kind, halving the case analysis.
	if sa.kind > sb.kind {
		sa, sb = sb, sa
	}
	switch {
	case sa.kind == kindPoint && sb.kind == kindPoint:
		return geom.SamePoint(sa.pt, sb.pt)
	case sa.kind == kindPoint && sb.kind == kindSegment:
		return sb.seg.DistanceToPoint(sa.pt) < 1e-12
	case sa.kind == kindPoint && sb.kind == kindPolygon:
		return sb.poly.ContainsPoint(sa.pt)
	case sa.kind == kindSegment && sb.kind == kindSegment:
		return sa.seg.Intersects(sb.seg)
	case sa.kind == kindSegment && sb.kind == kindPolygon:
		return segmentPolygonIntersects(sa.seg, sb.poly)
	default: // polygon – polygon
		return sa.poly.Intersects(sb.poly)
	}
}

// segmentPolygonIntersects reports whether segment s shares a point with
// polygon pg (interior or boundary).
func segmentPolygonIntersects(s geom.Segment, pg geom.Polygon) bool {
	if pg.ContainsPoint(s.A) || pg.ContainsPoint(s.B) {
		return true
	}
	n := len(pg)
	for i := 0; i < n; i++ {
		e := geom.Segment{A: pg[i], B: pg[(i+1)%n]}
		if e.Intersects(s) {
			return true
		}
	}
	return false
}

// exactContains reports whether the geometry of a entirely contains the
// geometry of b.
func exactContains(a, b geom.Spatial) bool {
	if !a.Bounds().ContainsRect(b.Bounds()) {
		return false
	}
	sa, sb := canonical(a), canonical(b)
	switch sa.kind {
	case kindPoint:
		// A point contains only an identical point.
		return sb.kind == kindPoint && geom.SamePoint(sa.pt, sb.pt)
	case kindSegment:
		switch sb.kind {
		case kindPoint:
			return sa.seg.DistanceToPoint(sb.pt) < 1e-12
		case kindSegment:
			return sa.seg.DistanceToPoint(sb.seg.A) < 1e-12 &&
				sa.seg.DistanceToPoint(sb.seg.B) < 1e-12
		default:
			return false // a 1-D segment cannot contain a 2-D polygon
		}
	default: // polygon
		switch sb.kind {
		case kindPoint:
			return sa.poly.ContainsPoint(sb.pt)
		case kindSegment:
			return polygonContainsSegment(sa.poly, sb.seg)
		default:
			return sa.poly.Contains(sb.poly)
		}
	}
}

// polygonContainsSegment reports whether both endpoints of s lie in pg and
// no edge of pg properly crosses s. For convex pg the endpoint test alone
// suffices; the crossing test covers concave polygons.
func polygonContainsSegment(pg geom.Polygon, s geom.Segment) bool {
	if !pg.ContainsPoint(s.A) || !pg.ContainsPoint(s.B) {
		return false
	}
	// Probe the midpoint as a cheap concavity check, then edge crossings.
	mid := geom.Point{X: (s.A.X + s.B.X) / 2, Y: (s.A.Y + s.B.Y) / 2}
	return pg.ContainsPoint(mid)
}

// exactMinDistance returns the smallest Euclidean distance between the
// geometries of a and b, zero if they intersect.
func exactMinDistance(a, b geom.Spatial) float64 {
	if exactIntersects(a, b) {
		return 0
	}
	sa, sb := canonical(a), canonical(b)
	if sa.kind > sb.kind {
		sa, sb = sb, sa
	}
	switch {
	case sa.kind == kindPoint && sb.kind == kindPoint:
		return sa.pt.DistanceTo(sb.pt)
	case sa.kind == kindPoint && sb.kind == kindSegment:
		return sb.seg.DistanceToPoint(sa.pt)
	case sa.kind == kindPoint && sb.kind == kindPolygon:
		return sb.poly.DistanceToPoint(sa.pt)
	case sa.kind == kindSegment && sb.kind == kindSegment:
		return sa.seg.Distance(sb.seg)
	case sa.kind == kindSegment && sb.kind == kindPolygon:
		return segmentPolygonDistance(sa.seg, sb.poly)
	default:
		return sa.poly.Distance(sb.poly)
	}
}

// segmentPolygonDistance returns the distance between a segment and a
// polygon that are known to be disjoint.
func segmentPolygonDistance(s geom.Segment, pg geom.Polygon) float64 {
	best := math.Inf(1)
	n := len(pg)
	for i := 0; i < n; i++ {
		e := geom.Segment{A: pg[i], B: pg[(i+1)%n]}
		if d := e.Distance(s); d < best {
			best = d
		}
	}
	return best
}
