package pred

import (
	"math"
	"testing"

	"spatialjoin/internal/geom"
)

func TestWithinDistanceEval(t *testing.T) {
	op := WithinDistance{D: 5}
	a := geom.NewRect(0, 0, 2, 2) // center (1,1)
	b := geom.NewRect(4, 4, 6, 6) // center (5,5): distance √32 ≈ 5.66
	c := geom.NewRect(3, 1, 5, 1) // center (4,1): distance 3
	if op.Eval(a, b) {
		t.Error("centers 5.66 apart should not match d=5")
	}
	if !op.Eval(a, c) {
		t.Error("centers 3 apart should match d=5")
	}
}

func TestWithinDistanceFilterUsesClosestPoints(t *testing.T) {
	op := WithinDistance{D: 5}
	// MBRs whose closest points are 1 apart but centers are ~10 apart: the
	// filter must pass (subobjects near the facing edges could match).
	a := geom.NewRect(0, 0, 4, 4)
	b := geom.NewRect(5, 0, 15, 4)
	if !op.Filter(a, b) {
		t.Error("filter must use closest-point distance")
	}
	far := geom.NewRect(20, 0, 21, 1)
	if op.Filter(a, far) {
		t.Error("gap of 16 must fail filter with d=5")
	}
}

func TestOverlapsEvalRects(t *testing.T) {
	op := Overlaps{}
	if !op.Eval(geom.NewRect(0, 0, 2, 2), geom.NewRect(1, 1, 3, 3)) {
		t.Error("overlapping rects must match")
	}
	if op.Eval(geom.NewRect(0, 0, 1, 1), geom.NewRect(2, 2, 3, 3)) {
		t.Error("disjoint rects must not match")
	}
}

func TestOverlapsEvalPolygons(t *testing.T) {
	op := Overlaps{}
	// Two diamonds whose MBRs overlap but whose geometries do not: Eval
	// must be exact (false) while Filter passes (conservative).
	d1 := geom.RegularPolygon(geom.Pt(0, 0), 1, 4)
	d2 := geom.RegularPolygon(geom.Pt(1.9, 1.9), 1, 4)
	if op.Eval(d1, d2) {
		t.Error("disjoint diamonds must not overlap exactly")
	}
	if !op.Filter(d1.Bounds(), d2.Bounds()) {
		t.Error("their MBRs do overlap, so the filter must pass")
	}
}

func TestIncludesEvalAndFigure4(t *testing.T) {
	op := Includes{}
	outer := geom.NewRect(0, 0, 10, 10)
	inner := geom.NewRect(2, 2, 4, 4)
	if !op.Eval(outer, inner) {
		t.Error("outer includes inner")
	}
	if op.Eval(inner, outer) {
		t.Error("inner does not include outer")
	}
	// Figure 4: ancestors o₁′ and o₂′ merely overlap while subobjects
	// satisfy o₁ includes o₂ — so Θ(includes) must be plain overlap.
	o1p := geom.NewRect(0, 0, 6, 6)
	o2p := geom.NewRect(4, 4, 12, 12)
	o1 := geom.NewRect(4, 4, 6, 6)         // ⊆ o₁′
	o2 := geom.NewRect(4.5, 4.5, 5.5, 5.5) // ⊆ o₂′ and ⊆ o₁
	if !op.Eval(o1, o2) {
		t.Fatal("setup: o1 must include o2")
	}
	if !op.Filter(o1p, o2p) {
		t.Fatal("Θ(includes) rejected the Figure 4 configuration")
	}
}

func TestContainedInIsConverseOfIncludes(t *testing.T) {
	in, inc := ContainedIn{}, Includes{}
	a := geom.NewRect(1, 1, 2, 2)
	b := geom.NewRect(0, 0, 3, 3)
	if !in.Eval(a, b) || in.Eval(b, a) {
		t.Error("ContainedIn direction wrong")
	}
	if in.Eval(a, b) != inc.Eval(b, a) {
		t.Error("ContainedIn must be the converse of Includes")
	}
}

func TestNorthwestOfEvalAndFigure5(t *testing.T) {
	op := NorthwestOf{}
	a := geom.NewRect(0, 8, 2, 10) // center (1,9)
	b := geom.NewRect(5, 0, 7, 2)  // center (6,1)
	if !op.Eval(a, b) {
		t.Error("a is northwest of b")
	}
	if op.Eval(b, a) {
		t.Error("NW is not symmetric")
	}
	// Figure 5: the filter admits any o₁′ that pokes into the quadrant left
	// of b's right tangent and above b's lower tangent.
	edgeCase := geom.NewRect(6, 1.5, 20, 30) // overlaps quadrant though center is NE
	if !op.Filter(edgeCase, b.Bounds()) {
		t.Error("MBR overlapping the NW quadrant must pass the filter")
	}
	se := geom.NewRect(8, -5, 9, -4)
	if op.Filter(se, b.Bounds()) {
		t.Error("strictly-SE MBR must fail the filter")
	}
}

func TestReachableWithinEvalUsesBuffer(t *testing.T) {
	op := ReachableWithin{Minutes: 10, Speed: 2} // radius 20
	a := geom.NewRect(0, 0, 1, 1)
	b := geom.NewRect(15, 0, 16, 1) // gap 14 ≤ 20
	c := geom.NewRect(30, 0, 31, 1) // gap 29 > 20
	if !op.Eval(a, b) {
		t.Error("object inside the travel buffer must match")
	}
	if op.Eval(a, c) {
		t.Error("object beyond the travel buffer must not match")
	}
	if op.Radius() != 20 {
		t.Errorf("radius = %g", op.Radius())
	}
}

func TestReachableFilterMatchesBufferedOverlap(t *testing.T) {
	op := ReachableWithin{Minutes: 5, Speed: 1}
	a := geom.NewRect(0, 0, 1, 1)
	b := geom.NewRect(4, 0, 5, 1) // gap 3 < 5
	if !op.Filter(a.Bounds(), b.Bounds()) {
		t.Error("buffered MBRs overlap; filter must pass")
	}
	far := geom.NewRect(10, 0, 11, 1) // gap 9 > 5
	if op.Filter(a.Bounds(), far.Bounds()) {
		t.Error("filter must reject beyond the buffer")
	}
}

func TestOperatorNames(t *testing.T) {
	want := map[string]bool{
		"within_distance(10)":       true,
		"overlaps":                  true,
		"includes":                  true,
		"contained_in":              true,
		"northwest_of":              true,
		"reachable_within(10min@1)": true,
	}
	ops := Table1()
	if len(ops) != 6 {
		t.Fatalf("Table1 has %d operators, want 6", len(ops))
	}
	for _, op := range ops {
		if !want[op.Name()] {
			t.Errorf("unexpected operator name %q", op.Name())
		}
	}
}

func TestEvalImpliesFilterOnOwnMBRs(t *testing.T) {
	// θ(a,b) ⇒ Θ(mbr(a), mbr(b)): each object is its own subobject.
	objs := []geom.Spatial{
		geom.NewRect(0, 0, 2, 2),
		geom.NewRect(1, 1, 3, 3),
		geom.NewRect(10, 10, 12, 12),
		geom.Pt(1.5, 1.5),
		geom.RegularPolygon(geom.Pt(2, 2), 1.5, 6),
		geom.Segment{A: geom.Pt(0, 0), B: geom.Pt(4, 4)},
	}
	for _, op := range Table1() {
		for _, a := range objs {
			for _, b := range objs {
				if op.Eval(a, b) && !op.Filter(a.Bounds(), b.Bounds()) {
					t.Errorf("%s: Eval true but Filter false for %v, %v",
						op.Name(), a.Bounds(), b.Bounds())
				}
			}
		}
	}
}

func TestExactIntersectsMixedTypes(t *testing.T) {
	poly := geom.RegularPolygon(geom.Pt(0, 0), 2, 8)
	if !exactIntersects(geom.Pt(0, 0), poly) {
		t.Error("center point intersects polygon")
	}
	if exactIntersects(geom.Pt(5, 5), poly) {
		t.Error("far point does not intersect polygon")
	}
	seg := geom.Segment{A: geom.Pt(-5, 0), B: geom.Pt(5, 0)}
	if !exactIntersects(seg, poly) {
		t.Error("crossing segment intersects polygon")
	}
	out := geom.Segment{A: geom.Pt(-5, 5), B: geom.Pt(5, 5)}
	if exactIntersects(out, poly) {
		t.Error("segment above polygon does not intersect")
	}
	if !exactIntersects(geom.Pt(1, 1), geom.Pt(1, 1)) {
		t.Error("identical points intersect")
	}
	if exactIntersects(geom.Pt(1, 1), geom.Pt(1, 1.5)) {
		t.Error("distinct points do not intersect")
	}
}

func TestExactContainsMixedTypes(t *testing.T) {
	poly := geom.NewRect(0, 0, 10, 10).ToPolygon()
	if !exactContains(poly, geom.Pt(5, 5)) {
		t.Error("polygon contains interior point")
	}
	if exactContains(poly, geom.Pt(11, 5)) {
		t.Error("polygon does not contain outside point")
	}
	seg := geom.Segment{A: geom.Pt(1, 1), B: geom.Pt(9, 9)}
	if !exactContains(poly, seg) {
		t.Error("polygon contains inner segment")
	}
	crossing := geom.Segment{A: geom.Pt(5, 5), B: geom.Pt(15, 5)}
	if exactContains(poly, crossing) {
		t.Error("polygon does not contain escaping segment")
	}
	if exactContains(geom.Pt(1, 1), poly) {
		t.Error("a point cannot contain a polygon")
	}
	if !exactContains(seg, geom.Pt(5, 5)) {
		t.Error("segment contains its midpoint")
	}
	sub := geom.Segment{A: geom.Pt(2, 2), B: geom.Pt(4, 4)}
	if !exactContains(seg, sub) {
		t.Error("segment contains collinear subsegment")
	}
	if exactContains(seg, poly) {
		t.Error("a segment cannot contain a polygon")
	}
}

func TestExactMinDistanceMixedTypes(t *testing.T) {
	a := geom.NewRect(0, 0, 1, 1)
	b := geom.NewRect(4, 0, 5, 1)
	if d := exactMinDistance(a, b); math.Abs(d-3) > 1e-9 {
		t.Errorf("rect distance = %g, want 3", d)
	}
	if d := exactMinDistance(geom.Pt(0, 0), geom.Pt(3, 4)); math.Abs(d-5) > 1e-9 {
		t.Errorf("point distance = %g, want 5", d)
	}
	poly := geom.NewRect(0, 0, 2, 2).ToPolygon()
	if d := exactMinDistance(geom.Pt(5, 1), poly); math.Abs(d-3) > 1e-9 {
		t.Errorf("point-polygon distance = %g, want 3", d)
	}
	if d := exactMinDistance(poly, poly); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	seg := geom.Segment{A: geom.Pt(5, 0), B: geom.Pt(5, 2)}
	if d := exactMinDistance(seg, poly); math.Abs(d-3) > 1e-9 {
		t.Errorf("segment-polygon distance = %g, want 3", d)
	}
}

func TestCanonicalFallbackUsesMBR(t *testing.T) {
	// An unknown Spatial type degrades to its MBR polygon.
	u := unknownShape{r: geom.NewRect(0, 0, 2, 2)}
	if !exactIntersects(u, geom.Pt(1, 1)) {
		t.Error("fallback MBR should contain its center")
	}
	if exactIntersects(u, geom.Pt(9, 9)) {
		t.Error("fallback MBR should not contain far point")
	}
}

type unknownShape struct{ r geom.Rect }

func (u unknownShape) Bounds() geom.Rect { return u.r }

func TestDistanceBandEval(t *testing.T) {
	op := DistanceBand{Lo: 5, Hi: 10}
	a := geom.NewRect(0, 0, 2, 2) // center (1,1)
	cases := []struct {
		b    geom.Rect
		want bool
	}{
		{geom.NewRect(7, 0, 9, 2), true},    // center (8,1): distance 7 ∈ [5,10]
		{geom.NewRect(3, 0, 5, 2), false},   // distance 3 < 5
		{geom.NewRect(14, 0, 16, 2), false}, // distance 14 > 10
		{geom.NewRect(5, 0, 7, 2), true},    // distance 5, inclusive lower bound
		{geom.NewRect(10, 0, 12, 2), true},  // distance 10, inclusive upper bound
	}
	for i, c := range cases {
		if got := op.Eval(a, c.b); got != c.want {
			t.Errorf("case %d: Eval = %t, want %t", i, got, c.want)
		}
	}
	if op.Name() != "distance_band(5,10)" {
		t.Errorf("name = %q", op.Name())
	}
}

func TestDistanceBandFilterTwoSided(t *testing.T) {
	op := DistanceBand{Lo: 50, Hi: 60}
	a := geom.NewRect(0, 0, 4, 4)
	// Closest points far beyond Hi: reject.
	if op.Filter(a, geom.NewRect(100, 0, 104, 4)) {
		t.Error("beyond Hi must fail")
	}
	// Even the farthest corners are below Lo: reject (the two-sided part).
	if op.Filter(a, geom.NewRect(5, 0, 9, 4)) {
		t.Error("entirely below Lo must fail")
	}
	// Bracket straddles the band: accept.
	if !op.Filter(a, geom.NewRect(52, 0, 56, 4)) {
		t.Error("band-straddling pair must pass")
	}
}
