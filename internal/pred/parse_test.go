package pred

import "testing"

// TestParseNameRoundTrip checks that every registered operator's Name
// reconstructs an operator with the identical name — the property recovery
// relies on to reattach persisted join indices.
func TestParseNameRoundTrip(t *testing.T) {
	for _, op := range Extended() {
		got, err := ParseName(op.Name())
		if err != nil {
			t.Errorf("ParseName(%q): %v", op.Name(), err)
			continue
		}
		if got.Name() != op.Name() {
			t.Errorf("ParseName(%q).Name() = %q", op.Name(), got.Name())
		}
	}
}

// TestParseNameParameters checks the parameterized forms carry their values
// through, not just their names.
func TestParseNameParameters(t *testing.T) {
	op, err := ParseName("within_distance(12.5)")
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := op.(WithinDistance); !ok || w.D != 12.5 {
		t.Errorf("within_distance(12.5) parsed as %#v", op)
	}
	op, err = ParseName("distance_band(15,40)")
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := op.(DistanceBand); !ok || d.Lo != 15 || d.Hi != 40 {
		t.Errorf("distance_band(15,40) parsed as %#v", op)
	}
	op, err = ParseName("reachable_within(10min@1.5)")
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := op.(ReachableWithin); !ok || r.Minutes != 10 || r.Speed != 1.5 {
		t.Errorf("reachable_within(10min@1.5) parsed as %#v", op)
	}
}

// TestParseNameRejectsGarbage checks malformed names fail loudly instead of
// silently mapping to some operator.
func TestParseNameRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "overlapss", "within_distance()", "within_distance(x)",
		"distance_band(1)", "reachable_within(3)", "north_of"} {
		if op, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q) = %v, want error", bad, op)
		}
	}
}
