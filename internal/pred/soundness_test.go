package pred

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

// randRectIn returns a random rectangle contained in parent.
func randRectIn(rng *rand.Rand, parent geom.Rect) geom.Rect {
	w, h := parent.Width(), parent.Height()
	x1 := parent.MinX + rng.Float64()*w
	x2 := parent.MinX + rng.Float64()*w
	y1 := parent.MinY + rng.Float64()*h
	y2 := parent.MinY + rng.Float64()*h
	return geom.NewRect(x1, y1, x2, y2)
}

// TestThetaFilterSoundness is the central property of Table 1: for every
// operator, whenever subobjects a ⊆ A′ and b ⊆ B′ satisfy a θ b, the filter
// must accept the ancestor MBRs: Θ(A′, B′). A single counterexample means
// the hierarchical SELECT/JOIN algorithms would silently lose results.
func TestThetaFilterSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	ops := Extended()
	const trials = 4000
	for _, op := range ops {
		misses := 0
		for i := 0; i < trials; i++ {
			parentA := geom.NewRect(rng.Float64()*100, rng.Float64()*100,
				rng.Float64()*100, rng.Float64()*100)
			parentB := geom.NewRect(rng.Float64()*100, rng.Float64()*100,
				rng.Float64()*100, rng.Float64()*100)
			a := randRectIn(rng, parentA)
			b := randRectIn(rng, parentB)
			if op.Eval(a, b) {
				if !op.Filter(parentA, parentB) {
					t.Fatalf("%s: unsound filter: a=%v ⊆ A'=%v, b=%v ⊆ B'=%v match but filter rejects",
						op.Name(), a, parentA, b, parentB)
				}
				misses++
			}
		}
		if misses == 0 {
			t.Logf("%s: no θ matches drawn in %d trials (filter vacuously sound)", op.Name(), trials)
		}
	}
}

// TestThetaFilterSoundnessPolygons repeats the soundness property with
// polygon subobjects, which exercise the exact-geometry evaluation paths.
func TestThetaFilterSoundnessPolygons(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ops := Extended()
	const trials = 1500
	for _, op := range ops {
		for i := 0; i < trials; i++ {
			parentA := geom.NewRect(rng.Float64()*60, rng.Float64()*60,
				rng.Float64()*60, rng.Float64()*60).Expand(5)
			parentB := geom.NewRect(rng.Float64()*60, rng.Float64()*60,
				rng.Float64()*60, rng.Float64()*60).Expand(5)
			a := polyIn(rng, parentA)
			b := polyIn(rng, parentB)
			if op.Eval(a, b) && !op.Filter(parentA, parentB) {
				t.Fatalf("%s: unsound for polygons: A'=%v B'=%v", op.Name(), parentA, parentB)
			}
		}
	}
}

// polyIn returns a small regular polygon whose MBR is inside parent.
func polyIn(rng *rand.Rand, parent geom.Rect) geom.Polygon {
	maxR := 0.25 * min64(parent.Width(), parent.Height())
	if maxR <= 0 {
		return geom.RegularPolygon(parent.Center(), 1e-9, 3)
	}
	r := maxR * (0.2 + 0.8*rng.Float64())
	cx := parent.MinX + r + rng.Float64()*(parent.Width()-2*r)
	cy := parent.MinY + r + rng.Float64()*(parent.Height()-2*r)
	return geom.RegularPolygon(geom.Pt(cx, cy), r, 3+rng.Intn(7))
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// TestFilterReflexivity: since every object is its own subobject, θ(a,b)
// directly implies Θ(mbr(a), mbr(b)) — checked over random rect pairs for
// every operator.
func TestFilterReflexivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, op := range Extended() {
		for i := 0; i < 3000; i++ {
			a := geom.NewRect(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, rng.Float64()*50)
			b := geom.NewRect(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, rng.Float64()*50)
			if op.Eval(a, b) && !op.Filter(a.Bounds(), b.Bounds()) {
				t.Fatalf("%s: θ(a,b) without Θ(a,b) for a=%v b=%v", op.Name(), a, b)
			}
		}
	}
}

// TestFilterMonotoneUnderGrowth: enlarging either MBR never turns an
// accepting filter into a rejecting one. The hierarchical algorithms rely on
// this when ancestors higher in the tree have larger MBRs.
func TestFilterMonotoneUnderGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, op := range Extended() {
		for i := 0; i < 2000; i++ {
			a := geom.NewRect(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, rng.Float64()*50)
			b := geom.NewRect(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, rng.Float64()*50)
			if !op.Filter(a, b) {
				continue
			}
			ga := a.Expand(rng.Float64() * 10)
			gb := b.Expand(rng.Float64() * 10)
			if !op.Filter(ga, gb) {
				t.Fatalf("%s: filter not monotone: %v,%v pass but grown %v,%v fail",
					op.Name(), a, b, ga, gb)
			}
		}
	}
}
