package pred

import (
	"fmt"
	"math"

	"spatialjoin/internal/geom"
)

// Direction identifies a compass quadrant for the directional operators.
// The paper defines "to the Northwest of" (Table 1, Figure 5) and notes the
// construction generalizes; DirectionOf provides all four quadrants with
// the analogous tangent-based Θ filters.
type Direction uint8

// Compass quadrants.
const (
	Northwest Direction = iota
	Northeast
	Southwest
	Southeast
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Northwest:
		return "northwest"
	case Northeast:
		return "northeast"
	case Southwest:
		return "southwest"
	case Southeast:
		return "southeast"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// DirectionOf is the generalized "o₁ to the <direction> of o₂" operator,
// measured between centerpoints. DirectionOf{Northwest} is exactly the
// paper's operator (and NorthwestOf remains as the named form).
type DirectionOf struct {
	Dir Direction
}

// Name implements Operator.
func (d DirectionOf) Name() string { return d.Dir.String() + "_of" }

// Eval implements Operator: strict centerpoint comparison on both axes.
func (d DirectionOf) Eval(a, b geom.Spatial) bool {
	ca, cb := geom.CenterOf(a), geom.CenterOf(b)
	switch d.Dir {
	case Northwest:
		return ca.X < cb.X && ca.Y > cb.Y
	case Northeast:
		return ca.X > cb.X && ca.Y > cb.Y
	case Southwest:
		return ca.X < cb.X && ca.Y < cb.Y
	case Southeast:
		return ca.X > cb.X && ca.Y < cb.Y
	default:
		return false
	}
}

// Filter implements Operator: o₁'s MBR must overlap the quadrant formed by
// the two tangents of o₂'s MBR facing away from the direction — the
// Figure 5 construction rotated to each quadrant.
func (d DirectionOf) Filter(a, b geom.Rect) bool {
	return quadrant(d.Dir, b).Intersects(a)
}

// quadrant returns the unbounded quadrant of candidate centerpoints for the
// given direction relative to r.
func quadrant(dir Direction, r geom.Rect) geom.Rect {
	inf := math.Inf(1)
	switch dir {
	case Northwest:
		// Left of the right tangent, above the lower tangent.
		return geom.Rect{MinX: -inf, MinY: r.MinY, MaxX: r.MaxX, MaxY: inf}
	case Northeast:
		return geom.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: inf, MaxY: inf}
	case Southwest:
		return geom.Rect{MinX: -inf, MinY: -inf, MaxX: r.MaxX, MaxY: r.MaxY}
	case Southeast:
		return geom.Rect{MinX: r.MinX, MinY: -inf, MaxX: inf, MaxY: r.MaxY}
	default:
		return geom.Rect{MinX: -inf, MinY: -inf, MaxX: inf, MaxY: inf}
	}
}

// Extended returns Table1 plus the operators the paper's constructions
// generalize to: the remaining three compass directions (Figure 5 rotated)
// and the NO-LOC motivating distance band. Soundness property tests run
// over this full set.
func Extended() []Operator {
	return append(Table1(),
		DirectionOf{Dir: Northeast},
		DirectionOf{Dir: Southwest},
		DirectionOf{Dir: Southeast},
		DistanceBand{Lo: 15, Hi: 40},
	)
}
