package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// boundedRect builds a valid rectangle from four arbitrary float64 values,
// clamping to a finite range so area arithmetic stays well-conditioned.
func boundedRect(a, b, c, d float64) Rect {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1000)
	}
	return NewRect(clamp(a), clamp(b), clamp(c), clamp(d))
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		a := boundedRect(a1, a2, a3, a4)
		b := boundedRect(b1, b2, b3, b4)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectionInsideBoth(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		a := boundedRect(a1, a2, a3, a4)
		b := boundedRect(b1, b2, b3, b4)
		i, ok := a.Intersection(b)
		if !ok {
			// Disjoint: the min distance must then be positive or zero with
			// touching — but Intersects already returned false, so distance
			// must be strictly positive or the rects only touch, which
			// Intersects counts as true. Hence distance > 0.
			return a.MinDistance(b) > 0
		}
		return a.ContainsRect(i) && b.ContainsRect(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectsSymmetricAndConsistent(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		a := boundedRect(a1, a2, a3, a4)
		b := boundedRect(b1, b2, b3, b4)
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		// Intersects ⇔ MinDistance == 0.
		return a.Intersects(b) == (a.MinDistance(b) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExpandMonotone(t *testing.T) {
	f := func(a1, a2, a3, a4 float64, duint uint8) bool {
		a := boundedRect(a1, a2, a3, a4)
		d := float64(duint)
		e := a.Expand(d)
		return e.ContainsRect(a) && e.Area() >= a.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEnlargementNonNegative(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		a := boundedRect(a1, a2, a3, a4)
		b := boundedRect(b1, b2, b3, b4)
		return a.Enlargement(b) >= -1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinDistanceTriangleLike(t *testing.T) {
	// MinDistance between rects never exceeds center distance.
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		a := boundedRect(a1, a2, a3, a4)
		b := boundedRect(b1, b2, b3, b4)
		return a.MinDistance(b) <= a.Center().DistanceTo(b.Center())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickContainmentImpliesIntersection(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		a := boundedRect(a1, a2, a3, a4)
		b := boundedRect(b1, b2, b3, b4)
		if a.ContainsRect(b) && !a.Intersects(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPolygonAreaMatchesMBRBound(t *testing.T) {
	// A polygon's area never exceeds the area of its MBR.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		c := Pt(rng.Float64()*100, rng.Float64()*100)
		pg := RegularPolygon(c, 1+rng.Float64()*10, 3+rng.Intn(9))
		if pg.Area() > pg.Bounds().Area()+1e-9 {
			t.Fatalf("polygon area %g exceeds MBR area %g", pg.Area(), pg.Bounds().Area())
		}
	}
}

func TestQuickPolygonCentroidInsideConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		c := Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		pg := RegularPolygon(c, 0.5+rng.Float64()*20, 3+rng.Intn(10))
		if !pg.ContainsPoint(pg.Centroid()) {
			t.Fatalf("centroid of convex polygon %v not inside", pg.Centroid())
		}
	}
}

func TestQuickPointInPolygonAgreesWithMBR(t *testing.T) {
	// inside polygon ⇒ inside MBR (never the other way is required).
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		pg := RegularPolygon(Pt(0, 0), 5, 3+rng.Intn(8))
		p := Pt(rng.Float64()*12-6, rng.Float64()*12-6)
		if pg.ContainsPoint(p) && !pg.Bounds().Contains(p) {
			t.Fatalf("point %v inside polygon but outside MBR", p)
		}
	}
}

func TestQuickSegmentDistanceZeroIffIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		s := Segment{Pt(rng.Float64()*10, rng.Float64()*10), Pt(rng.Float64()*10, rng.Float64()*10)}
		u := Segment{Pt(rng.Float64()*10, rng.Float64()*10), Pt(rng.Float64()*10, rng.Float64()*10)}
		d := s.Distance(u)
		if s.Intersects(u) != (d == 0) {
			t.Fatalf("Intersects=%t but Distance=%g for %v %v", s.Intersects(u), d, s, u)
		}
	}
}
