// Package geom provides the planar geometry substrate used throughout the
// spatial-join library: points, axis-aligned rectangles (minimum bounding
// rectangles, MBRs), line segments and simple polygons, together with the
// predicates and constructions the θ/Θ-operators of Günther's spatial-join
// framework are built from.
//
// All coordinates are float64 in an arbitrary Cartesian plane. Distances are
// Euclidean. The package is purely computational and allocation-light; it has
// no dependency on the storage or index layers.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// DistanceTo returns the Euclidean distance between p and q.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Cross returns the z component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// NorthwestOf reports whether p lies strictly to the northwest of q,
// i.e. strictly smaller X (west) and strictly larger Y (north). This is the
// centerpoint semantics of the paper's "to the Northwest of" θ-operator.
func (p Point) NorthwestOf(q Point) bool { return p.X < q.X && p.Y > q.Y }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, the MBR type of the library. A Rect is
// valid when MinX ≤ MaxX and MinY ≤ MaxY; degenerate rectangles (zero width
// or height) are valid and represent segments or points.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2),
		MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2),
		MaxY: math.Max(y1, y2),
	}
}

// RectFromPoints returns the MBR of the given points. It panics if no points
// are supplied, since an empty MBR has no meaningful representation.
func RectFromPoints(pts ...Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectFromPoints requires at least one point")
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect { return Rect{p.X, p.Y, p.X, p.Y} }

// Valid reports whether r is a well-formed rectangle.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY &&
		!math.IsNaN(r.MinX) && !math.IsNaN(r.MinY) &&
		!math.IsNaN(r.MaxX) && !math.IsNaN(r.MaxY)
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns the half-perimeter of r, used by some R-tree split
// heuristics.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the centerpoint of r. The paper's centerpoint-based
// operators (NorthwestOf, WithinDistance) use this as the object's
// representative point.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether o lies entirely inside r (boundary
// inclusive).
func (r Rect) ContainsRect(o Rect) bool {
	return o.MinX >= r.MinX && o.MaxX <= r.MaxX &&
		o.MinY >= r.MinY && o.MaxY <= r.MaxY
}

// Intersects reports whether r and o share at least one point (boundary
// touching counts as intersection, matching the paper's "overlaps" filter
// semantics for MBRs).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX &&
		r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Intersection returns the common region of r and o. ok is false when the
// rectangles are disjoint.
func (r Rect) Intersection(o Rect) (out Rect, ok bool) {
	if !r.Intersects(o) {
		return Rect{}, false
	}
	return Rect{
		MinX: math.Max(r.MinX, o.MinX),
		MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX),
		MaxY: math.Min(r.MaxY, o.MaxY),
	}, true
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle covering both r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X),
		MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X),
		MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Expand returns r grown by d on every side: the Minkowski sum of r with a
// square of half-width d. It is the rectangular buffer used by the
// within-distance and reachability Θ-filters; for d < 0 it shrinks r (the
// result may become invalid).
func (r Rect) Expand(d float64) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// Enlargement returns the increase in area needed for r to cover o. It is
// the quantity minimized by Guttman's ChooseLeaf.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// MinDistance returns the smallest Euclidean distance between any point of r
// and any point of o ("measured between closest points"). It is zero when
// the rectangles intersect.
func (r Rect) MinDistance(o Rect) float64 {
	dx := axisGap(r.MinX, r.MaxX, o.MinX, o.MaxX)
	dy := axisGap(r.MinY, r.MaxY, o.MinY, o.MaxY)
	return math.Hypot(dx, dy)
}

// MaxDistance returns the largest Euclidean distance between any point of r
// and any point of o — realized by a pair of opposite corners. Together
// with MinDistance it brackets every point-pair distance between the two
// regions, which distance-band filters rely on.
func (r Rect) MaxDistance(o Rect) float64 {
	dx := math.Max(o.MaxX-r.MinX, r.MaxX-o.MinX)
	dy := math.Max(o.MaxY-r.MinY, r.MaxY-o.MinY)
	return math.Hypot(dx, dy)
}

// MinDistanceToPoint returns the smallest distance from any point of r to p.
func (r Rect) MinDistanceToPoint(p Point) float64 {
	dx := axisGap(r.MinX, r.MaxX, p.X, p.X)
	dy := axisGap(r.MinY, r.MaxY, p.Y, p.Y)
	return math.Hypot(dx, dy)
}

// axisGap returns the gap between intervals [a1,a2] and [b1,b2] on one axis,
// zero if they overlap.
func axisGap(a1, a2, b1, b2 float64) float64 {
	switch {
	case b1 > a2:
		return b1 - a2
	case a1 > b2:
		return a1 - b2
	default:
		return 0
	}
}

// NorthwestQuadrant returns the (half-open, unbounded) region to the
// northwest of r as used by the paper's Θ-filter for "to the Northwest of"
// (Figure 5): the quadrant formed by the right vertical tangent (x = MaxX)
// and the lower horizontal tangent (y = MinY) of r. Any object whose MBR
// misses this region cannot contain a subobject whose centerpoint is
// northwest of a centerpoint inside r.
func (r Rect) NorthwestQuadrant() Rect {
	return Rect{
		MinX: math.Inf(-1),
		MinY: r.MinY,
		MaxX: r.MaxX,
		MaxY: math.Inf(1),
	}
}

// Vertices returns the four corners of r in counterclockwise order starting
// at (MinX, MinY).
func (r Rect) Vertices() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

// ToPolygon converts r to a four-vertex polygon.
func (r Rect) ToPolygon() Polygon {
	v := r.Vertices()
	return Polygon{v[0], v[1], v[2], v[3]}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Bounds implements Spatial; a rectangle is its own MBR.
func (r Rect) Bounds() Rect { return r }

// Spatial is the minimal view the index and operator layers need of a
// spatial value: its minimum bounding rectangle. The representative
// centerpoint of a Spatial is Bounds().Center() unless the concrete type
// also implements Centered.
type Spatial interface {
	Bounds() Rect
}

// Centered is implemented by spatial values that carry an explicit
// centerpoint (the paper notes cartographic applications often define one by
// hand, distinct from the center of gravity).
type Centered interface {
	Centerpoint() Point
}

// CenterOf returns the representative centerpoint of s: the explicit
// centerpoint when s implements Centered, the MBR center otherwise.
func CenterOf(s Spatial) Point {
	if c, ok := s.(Centered); ok {
		return c.Centerpoint()
	}
	return s.Bounds().Center()
}

// Bounds implements Spatial for a bare point.
func (p Point) Bounds() Rect { return PointRect(p) }
