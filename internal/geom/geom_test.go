package geom

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDistance(t *testing.T) {
	if d := Pt(0, 0).DistanceTo(Pt(3, 4)); !almostEq(d, 5) {
		t.Fatalf("distance = %g, want 5", d)
	}
}

func TestPointDistanceSymmetric(t *testing.T) {
	p, q := Pt(-1.5, 2), Pt(7, -3.25)
	if p.DistanceTo(q) != q.DistanceTo(p) {
		t.Fatal("distance not symmetric")
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2).Add(Pt(3, 4))
	if p != Pt(4, 6) {
		t.Fatalf("Add = %v", p)
	}
	q := Pt(4, 6).Sub(Pt(1, 2))
	if q != Pt(3, 4) {
		t.Fatalf("Sub = %v", q)
	}
	s := Pt(2, -3).Scale(2)
	if s != Pt(4, -6) {
		t.Fatalf("Scale = %v", s)
	}
}

func TestPointCrossDot(t *testing.T) {
	if c := Pt(1, 0).Cross(Pt(0, 1)); !almostEq(c, 1) {
		t.Fatalf("cross = %g", c)
	}
	if d := Pt(1, 2).Dot(Pt(3, 4)); !almostEq(d, 11) {
		t.Fatalf("dot = %g", d)
	}
}

func TestPointNorthwestOf(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Pt(0, 1), Pt(1, 0), true},   // west and north
		{Pt(1, 1), Pt(1, 0), false},  // same X
		{Pt(0, 0), Pt(1, 0), false},  // same Y
		{Pt(2, 2), Pt(1, 1), false},  // northeast
		{Pt(-5, 9), Pt(0, 0), true},  // far northwest
		{Pt(0, -1), Pt(1, 0), false}, // southwest
	}
	for i, c := range cases {
		if got := c.p.NorthwestOf(c.q); got != c.want {
			t.Errorf("case %d: %v NW of %v = %t, want %t", i, c.p, c.q, got, c.want)
		}
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{1, 2, 5, 7}
	if r != want {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatal("normalized rect should be valid")
	}
}

func TestRectValid(t *testing.T) {
	if (Rect{1, 1, 0, 2}).Valid() {
		t.Error("MinX > MaxX should be invalid")
	}
	if (Rect{0, 2, 1, 1}).Valid() {
		t.Error("MinY > MaxY should be invalid")
	}
	if !(Rect{1, 1, 1, 1}).Valid() {
		t.Error("degenerate point rect should be valid")
	}
	if (Rect{math.NaN(), 0, 1, 1}).Valid() {
		t.Error("NaN rect should be invalid")
	}
}

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints(Pt(1, 5), Pt(-2, 3), Pt(4, -1))
	want := Rect{-2, -1, 4, 5}
	if r != want {
		t.Fatalf("RectFromPoints = %v, want %v", r, want)
	}
}

func TestRectFromPointsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty point list")
		}
	}()
	RectFromPoints()
}

func TestRectMetrics(t *testing.T) {
	r := Rect{0, 0, 4, 3}
	if r.Width() != 4 || r.Height() != 3 {
		t.Fatalf("dims = %g x %g", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Fatalf("area = %g", r.Area())
	}
	if r.Margin() != 7 {
		t.Fatalf("margin = %g", r.Margin())
	}
	if r.Center() != Pt(2, 1.5) {
		t.Fatalf("center = %v", r.Center())
	}
}

func TestRectContainsPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	for _, p := range []Point{Pt(1, 1), Pt(0, 0), Pt(2, 2), Pt(0, 2)} {
		if !r.Contains(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range []Point{Pt(-0.1, 1), Pt(1, 2.1), Pt(3, 3)} {
		if r.Contains(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.ContainsRect(Rect{1, 1, 9, 9}) {
		t.Error("strict containment failed")
	}
	if !r.ContainsRect(r) {
		t.Error("a rect contains itself")
	}
	if r.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Error("overhanging rect is not contained")
	}
	if r.ContainsRect(Rect{20, 20, 30, 30}) {
		t.Error("disjoint rect is not contained")
	}
}

func TestRectIntersects(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	cases := []struct {
		o    Rect
		want bool
	}{
		{Rect{1, 1, 3, 3}, true},                                                // corner overlap
		{Rect{2, 2, 3, 3}, true},                                                // touching corner counts
		{Rect{2.1, 0, 3, 2}, false} /* gap */, {Rect{0.5, 0.5, 1.5, 1.5}, true}, // contained
		{Rect{-1, -1, 3, 3}, true}, // containing
		{Rect{0, 3, 2, 4}, false},  // above
	}
	for i, c := range cases {
		if got := r.Intersects(c.o); got != c.want {
			t.Errorf("case %d: Intersects(%v) = %t, want %t", i, c.o, got, c.want)
		}
		if got := c.o.Intersects(r); got != c.want {
			t.Errorf("case %d: intersection must be symmetric", i)
		}
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	got, ok := a.Intersection(b)
	if !ok || got != (Rect{2, 2, 4, 4}) {
		t.Fatalf("Intersection = %v, %t", got, ok)
	}
	if _, ok := a.Intersection(Rect{5, 5, 6, 6}); ok {
		t.Fatal("disjoint rects must report ok=false")
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, -1, 3, 0.5}
	got := a.Union(b)
	want := Rect{0, -1, 3, 1}
	if got != want {
		t.Fatalf("Union = %v, want %v", got, want)
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{0, 0, 2, 2}.Expand(1)
	if r != (Rect{-1, -1, 3, 3}) {
		t.Fatalf("Expand = %v", r)
	}
	if got := (Rect{0, 0, 4, 4}).Expand(-1); got != (Rect{1, 1, 3, 3}) {
		t.Fatalf("negative Expand = %v", got)
	}
}

func TestRectEnlargement(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if e := r.Enlargement(Rect{1, 1, 2, 2}); !almostEq(e, 0) {
		t.Fatalf("no growth expected, got %g", e)
	}
	if e := r.Enlargement(Rect{0, 0, 4, 2}); !almostEq(e, 4) {
		t.Fatalf("Enlargement = %g, want 4", e)
	}
}

func TestRectMinDistance(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{0.5, 0.5, 2, 2}, 0},            // overlapping
		{Rect{3, 0, 4, 1}, 2},                // horizontal gap
		{Rect{0, 4, 1, 5}, 3},                // vertical gap
		{Rect{4, 5, 6, 7}, math.Hypot(3, 4)}, // diagonal gap
		{Rect{1, 1, 2, 2}, 0},                // touching corner
	}
	for i, c := range cases {
		if d := a.MinDistance(c.b); !almostEq(d, c.want) {
			t.Errorf("case %d: MinDistance = %g, want %g", i, d, c.want)
		}
		if d := c.b.MinDistance(a); !almostEq(d, c.want) {
			t.Errorf("case %d: MinDistance not symmetric", i)
		}
	}
}

func TestRectMinDistanceToPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if d := r.MinDistanceToPoint(Pt(1, 1)); d != 0 {
		t.Fatalf("inside point distance = %g", d)
	}
	if d := r.MinDistanceToPoint(Pt(5, 6)); !almostEq(d, 5) {
		t.Fatalf("outside distance = %g, want 5", d)
	}
}

func TestNorthwestQuadrant(t *testing.T) {
	r := Rect{2, 2, 4, 4}
	q := r.NorthwestQuadrant()
	// The quadrant reaches left and up without bound, and is delimited by
	// the right tangent x=4 and the lower tangent y=2 (Figure 5).
	if !math.IsInf(q.MinX, -1) || !math.IsInf(q.MaxY, 1) {
		t.Fatalf("quadrant should be unbounded NW: %v", q)
	}
	if q.MaxX != 4 || q.MinY != 2 {
		t.Fatalf("quadrant tangents wrong: %v", q)
	}
	// An object strictly southeast of r must miss the quadrant.
	if q.Intersects(Rect{5, 0, 6, 1}) {
		t.Error("SE rect should not intersect NW quadrant")
	}
	// An object overlapping r's NW corner must hit it.
	if !q.Intersects(Rect{0, 5, 1, 6}) {
		t.Error("NW rect should intersect NW quadrant")
	}
}

func TestNWQuadrantIsSoundFilter(t *testing.T) {
	// Whenever the centerpoint of a is NW of the centerpoint of b, the MBR
	// of a must intersect the NW quadrant of the MBR of b. This is the
	// soundness condition Table 1 relies on.
	a := Rect{0, 8, 1, 9}
	b := Rect{5, 0, 7, 2}
	if !a.Center().NorthwestOf(b.Center()) {
		t.Fatal("test setup: expected NW relation")
	}
	if !b.NorthwestQuadrant().Intersects(a) {
		t.Fatal("Θ filter rejected a genuine θ match")
	}
}

func TestRectVerticesAndPolygon(t *testing.T) {
	r := Rect{0, 0, 2, 1}
	v := r.Vertices()
	if v[0] != Pt(0, 0) || v[2] != Pt(2, 1) {
		t.Fatalf("vertices = %v", v)
	}
	pg := r.ToPolygon()
	if !almostEq(pg.Area(), 2) {
		t.Fatalf("polygon area = %g, want 2", pg.Area())
	}
	if pg.SignedArea() <= 0 {
		t.Fatal("ToPolygon should be counterclockwise")
	}
}

func TestCenterOf(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if CenterOf(r) != Pt(1, 1) {
		t.Fatalf("CenterOf rect = %v", CenterOf(r))
	}
	c := centeredRect{Rect: r, c: Pt(0.25, 0.25)}
	if CenterOf(c) != Pt(0.25, 0.25) {
		t.Fatal("explicit centerpoint should win")
	}
}

// centeredRect gives a Rect an explicit, off-center centerpoint.
type centeredRect struct {
	Rect
	c Point
}

func (c centeredRect) Centerpoint() Point { return c.c }

func TestPointBounds(t *testing.T) {
	p := Pt(3, 4)
	if p.Bounds() != (Rect{3, 4, 3, 4}) {
		t.Fatalf("point bounds = %v", p.Bounds())
	}
	if p.Bounds().Area() != 0 {
		t.Fatal("point MBR must have zero area")
	}
}

func TestStringers(t *testing.T) {
	if s := Pt(1, 2).String(); s != "(1, 2)" {
		t.Errorf("Point.String = %q", s)
	}
	if s := (Rect{0, 1, 2, 3}).String(); s != "[0,2]x[1,3]" {
		t.Errorf("Rect.String = %q", s)
	}
}

func TestRectMaxDistance(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	// Identical unit squares: farthest corners are the diagonal √2.
	if d := a.MaxDistance(a); !almostEq(d, math.Sqrt2) {
		t.Fatalf("self MaxDistance = %g", d)
	}
	b := Rect{3, 0, 4, 1}
	// Farthest pair: (0,0)/(0,1) to (4,1)/(4,0) → hypot(4,1).
	if d := a.MaxDistance(b); !almostEq(d, math.Hypot(4, 1)) {
		t.Fatalf("MaxDistance = %g, want %g", d, math.Hypot(4, 1))
	}
	if a.MaxDistance(b) != b.MaxDistance(a) {
		t.Fatal("MaxDistance must be symmetric")
	}
	// MaxDistance always dominates MinDistance.
	if a.MaxDistance(b) < a.MinDistance(b) {
		t.Fatal("MaxDistance < MinDistance")
	}
}
