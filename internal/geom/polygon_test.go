package geom

import (
	"math"
	"testing"
)

// unitSquare is the counterclockwise unit square.
var unitSquare = Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}

func TestSegmentLength(t *testing.T) {
	if l := (Segment{Pt(0, 0), Pt(3, 4)}).Length(); !almostEq(l, 5) {
		t.Fatalf("length = %g", l)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
	}{
		{Segment{Pt(0, 0), Pt(2, 2)}, Segment{Pt(0, 2), Pt(2, 0)}, true},      // X crossing
		{Segment{Pt(0, 0), Pt(1, 0)}, Segment{Pt(2, 0), Pt(3, 0)}, false},     // collinear, disjoint
		{Segment{Pt(0, 0), Pt(2, 0)}, Segment{Pt(1, 0), Pt(3, 0)}, true},      // collinear, overlap
		{Segment{Pt(0, 0), Pt(1, 1)}, Segment{Pt(1, 1), Pt(2, 0)}, true},      // shared endpoint
		{Segment{Pt(0, 0), Pt(1, 1)}, Segment{Pt(0, 1), Pt(0.4, 0.6)}, false}, // near miss
		{Segment{Pt(0, 0), Pt(4, 0)}, Segment{Pt(2, -1), Pt(2, 1)}, true},     // T crossing
		{Segment{Pt(0, 0), Pt(4, 0)}, Segment{Pt(2, 0), Pt(2, 1)}, true},      // touch mid-edge
	}
	for i, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("case %d: got %t, want %t", i, got, c.want)
		}
		if got := c.u.Intersects(c.s); got != c.want {
			t.Errorf("case %d: intersection must be symmetric", i)
		}
	}
}

func TestSegmentDistanceToPoint(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 0)}
	if d := s.DistanceToPoint(Pt(2, 3)); !almostEq(d, 3) {
		t.Fatalf("perpendicular distance = %g", d)
	}
	if d := s.DistanceToPoint(Pt(7, 4)); !almostEq(d, 5) {
		t.Fatalf("beyond-endpoint distance = %g", d)
	}
	if d := s.DistanceToPoint(Pt(1, 0)); d != 0 {
		t.Fatalf("on-segment distance = %g", d)
	}
	zero := Segment{Pt(1, 1), Pt(1, 1)}
	if d := zero.DistanceToPoint(Pt(4, 5)); !almostEq(d, 5) {
		t.Fatalf("degenerate segment distance = %g", d)
	}
}

func TestSegmentDistance(t *testing.T) {
	a := Segment{Pt(0, 0), Pt(1, 0)}
	b := Segment{Pt(0, 2), Pt(1, 2)}
	if d := a.Distance(b); !almostEq(d, 2) {
		t.Fatalf("parallel distance = %g", d)
	}
	c := Segment{Pt(0.5, -1), Pt(0.5, 1)}
	if d := a.Distance(c); d != 0 {
		t.Fatalf("crossing distance = %g", d)
	}
}

func TestPolygonValidate(t *testing.T) {
	if err := unitSquare.Validate(); err != nil {
		t.Fatalf("unit square should validate: %v", err)
	}
	if err := (Polygon{Pt(0, 0), Pt(1, 1)}).Validate(); err == nil {
		t.Error("2-vertex polygon must fail")
	}
	if err := (Polygon{Pt(0, 0), Pt(0, 0), Pt(1, 1)}).Validate(); err == nil {
		t.Error("repeated vertex must fail")
	}
	bowtie := Polygon{Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)}
	if err := bowtie.Validate(); err == nil {
		t.Error("self-intersecting polygon must fail")
	}
}

func TestPolygonArea(t *testing.T) {
	if a := unitSquare.Area(); !almostEq(a, 1) {
		t.Fatalf("area = %g", a)
	}
	cw := Polygon{Pt(0, 0), Pt(0, 1), Pt(1, 1), Pt(1, 0)}
	if sa := cw.SignedArea(); sa >= 0 {
		t.Fatalf("clockwise signed area should be negative, got %g", sa)
	}
	if a := cw.Area(); !almostEq(a, 1) {
		t.Fatalf("unsigned area = %g", a)
	}
	tri := Polygon{Pt(0, 0), Pt(4, 0), Pt(0, 3)}
	if a := tri.Area(); !almostEq(a, 6) {
		t.Fatalf("triangle area = %g", a)
	}
}

func TestPolygonCentroid(t *testing.T) {
	if c := unitSquare.Centroid(); !almostEq(c.X, 0.5) || !almostEq(c.Y, 0.5) {
		t.Fatalf("centroid = %v", c)
	}
	tri := Polygon{Pt(0, 0), Pt(3, 0), Pt(0, 3)}
	if c := tri.Centroid(); !almostEq(c.X, 1) || !almostEq(c.Y, 1) {
		t.Fatalf("triangle centroid = %v", c)
	}
}

func TestPolygonBounds(t *testing.T) {
	tri := Polygon{Pt(-1, 0), Pt(3, -2), Pt(0, 5)}
	if b := tri.Bounds(); b != (Rect{-1, -2, 3, 5}) {
		t.Fatalf("bounds = %v", b)
	}
	if b := (Polygon{}).Bounds(); b != (Rect{}) {
		t.Fatalf("empty polygon bounds = %v", b)
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	if !unitSquare.ContainsPoint(Pt(0.5, 0.5)) {
		t.Error("interior point should be inside")
	}
	if !unitSquare.ContainsPoint(Pt(0, 0.5)) {
		t.Error("boundary point should be inside")
	}
	if !unitSquare.ContainsPoint(Pt(1, 1)) {
		t.Error("vertex should be inside")
	}
	if unitSquare.ContainsPoint(Pt(1.5, 0.5)) {
		t.Error("outside point should be outside")
	}
	// Concave polygon: a U shape; the notch interior is outside.
	u := Polygon{Pt(0, 0), Pt(3, 0), Pt(3, 3), Pt(2, 3), Pt(2, 1), Pt(1, 1), Pt(1, 3), Pt(0, 3)}
	if u.ContainsPoint(Pt(1.5, 2)) {
		t.Error("notch interior should be outside the U")
	}
	if !u.ContainsPoint(Pt(0.5, 2)) {
		t.Error("left arm interior should be inside the U")
	}
}

func TestPolygonIntersects(t *testing.T) {
	shifted := Polygon{Pt(0.5, 0.5), Pt(1.5, 0.5), Pt(1.5, 1.5), Pt(0.5, 1.5)}
	if !unitSquare.Intersects(shifted) {
		t.Error("overlapping squares must intersect")
	}
	far := Polygon{Pt(5, 5), Pt(6, 5), Pt(6, 6), Pt(5, 6)}
	if unitSquare.Intersects(far) {
		t.Error("distant squares must not intersect")
	}
	inner := Polygon{Pt(0.25, 0.25), Pt(0.75, 0.25), Pt(0.75, 0.75), Pt(0.25, 0.75)}
	if !unitSquare.Intersects(inner) {
		t.Error("containment counts as intersection")
	}
	if !inner.Intersects(unitSquare) {
		t.Error("containment intersection must be symmetric")
	}
}

func TestPolygonContains(t *testing.T) {
	inner := Polygon{Pt(0.25, 0.25), Pt(0.75, 0.25), Pt(0.75, 0.75), Pt(0.25, 0.75)}
	if !unitSquare.Contains(inner) {
		t.Error("unit square should contain inner square")
	}
	if inner.Contains(unitSquare) {
		t.Error("inner square cannot contain the unit square")
	}
	overlap := Polygon{Pt(0.5, 0.5), Pt(1.5, 0.5), Pt(1.5, 1.5), Pt(0.5, 1.5)}
	if unitSquare.Contains(overlap) {
		t.Error("partially-overlapping square is not contained")
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// All four vertices of the probe are inside the U's MBR and inside the
	// U's arms, but the probe spans the notch, so it is NOT contained.
	u := Polygon{Pt(0, 0), Pt(5, 0), Pt(5, 5), Pt(4, 5), Pt(4, 1), Pt(1, 1), Pt(1, 5), Pt(0, 5)}
	probe := Polygon{Pt(0.5, 0.2), Pt(4.5, 0.2), Pt(4.5, 4), Pt(0.5, 4)}
	if u.Contains(probe) {
		t.Fatal("probe spanning the notch must not be contained")
	}
}

func TestPolygonDistanceToPoint(t *testing.T) {
	if d := unitSquare.DistanceToPoint(Pt(0.5, 0.5)); d != 0 {
		t.Fatalf("inside distance = %g", d)
	}
	if d := unitSquare.DistanceToPoint(Pt(3, 1)); !almostEq(d, 2) {
		t.Fatalf("edge distance = %g", d)
	}
	if d := unitSquare.DistanceToPoint(Pt(4, 5)); !almostEq(d, 5) {
		t.Fatalf("corner distance = %g", d)
	}
}

func TestPolygonDistance(t *testing.T) {
	right := Polygon{Pt(3, 0), Pt(4, 0), Pt(4, 1), Pt(3, 1)}
	if d := unitSquare.Distance(right); !almostEq(d, 2) {
		t.Fatalf("distance = %g, want 2", d)
	}
	if d := unitSquare.Distance(unitSquare); d != 0 {
		t.Fatalf("self distance = %g", d)
	}
}

func TestRegularPolygon(t *testing.T) {
	hex := RegularPolygon(Pt(2, 3), 1, 6)
	if len(hex) != 6 {
		t.Fatalf("vertex count = %d", len(hex))
	}
	c := hex.Centroid()
	if !almostEq(c.X, 2) || !almostEq(c.Y, 3) {
		t.Fatalf("hexagon centroid = %v", c)
	}
	// Area of regular hexagon with circumradius 1 is 3√3/2.
	want := 3 * math.Sqrt(3) / 2
	if a := hex.Area(); !almostEq(a, want) {
		t.Fatalf("hexagon area = %g, want %g", a, want)
	}
	if err := hex.Validate(); err != nil {
		t.Fatalf("regular polygon should validate: %v", err)
	}
}

func TestRegularPolygonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for v < 3")
		}
	}()
	RegularPolygon(Pt(0, 0), 1, 2)
}

func TestPolygonSpatialInterface(t *testing.T) {
	var s Spatial = unitSquare
	if s.Bounds() != (Rect{0, 0, 1, 1}) {
		t.Fatalf("bounds via interface = %v", s.Bounds())
	}
	var seg Spatial = Segment{Pt(0, 0), Pt(2, 2)}
	if seg.Bounds() != (Rect{0, 0, 2, 2}) {
		t.Fatalf("segment bounds = %v", seg.Bounds())
	}
}
