package geom

import "math"

// This file is the single audited home of floating-point comparison in the
// library. The sjlint floateq analyzer forbids raw == / != on float values
// everywhere else, so every comparison states its semantics by choosing a
// helper: ApproxEqual / ApproxZero when rounding error must be tolerated,
// SameCoord / SamePoint when exact bit-level agreement is the point (grid
// scale lookups, degenerate-geometry guards, sentinel checks).

// Eps is the default comparison tolerance. Coordinates in the test
// workloads live in [0, 1]²-scaled spaces, where 1e-9 is far below any
// meaningful geometric distinction but far above accumulated rounding
// from the short arithmetic chains the predicates use.
const Eps = 1e-9

// ApproxEqual reports whether a and b agree within Eps, scaled to their
// magnitude: |a-b| ≤ Eps·max(1, |a|, |b|). It is symmetric and tolerates
// the rounding of short arithmetic chains on coordinates.
func ApproxEqual(a, b float64) bool {
	if a == b {
		return true // fast path; also handles ±Inf
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= Eps*scale
}

// ApproxZero reports whether x is within Eps of zero.
func ApproxZero(x float64) bool { return math.Abs(x) <= Eps }

// SameCoord reports whether a and b are exactly the same coordinate value.
// It exists so that deliberate exact comparison — partitioning boundaries,
// degenerate-geometry guards, sentinel values — reads differently from an
// accidental raw ==, and so the floateq analyzer can tell them apart.
func SameCoord(a, b float64) bool { return a == b }

// SamePoint reports whether p and q have exactly equal coordinates.
func SamePoint(p, q Point) bool { return p.X == q.X && p.Y == q.Y }

// SameRect reports whether a and b have exactly equal bounds.
func SameRect(a, b Rect) bool {
	return a.MinX == b.MinX && a.MinY == b.MinY && a.MaxX == b.MaxX && a.MaxY == b.MaxY
}
