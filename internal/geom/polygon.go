package geom

import (
	"fmt"
	"math"
)

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.DistanceTo(s.B) }

// Bounds implements Spatial.
func (s Segment) Bounds() Rect { return RectFromPoints(s.A, s.B) }

// orientation classifies the turn a→b→c: +1 counterclockwise, -1 clockwise,
// 0 collinear (within a small epsilon scaled to the magnitudes involved).
func orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	eps := 1e-12 * (math.Abs(b.X-a.X) + math.Abs(b.Y-a.Y) + math.Abs(c.X-a.X) + math.Abs(c.Y-a.Y))
	switch {
	case v > eps:
		return 1
	case v < -eps:
		return -1
	default:
		return 0
	}
}

// onSegment reports whether collinear point p lies on segment s.
func onSegment(s Segment, p Point) bool {
	return p.X >= math.Min(s.A.X, s.B.X)-1e-12 && p.X <= math.Max(s.A.X, s.B.X)+1e-12 &&
		p.Y >= math.Min(s.A.Y, s.B.Y)-1e-12 && p.Y <= math.Max(s.A.Y, s.B.Y)+1e-12
}

// Intersects reports whether segments s and t share at least one point,
// including endpoint touching and collinear overlap.
func (s Segment) Intersects(t Segment) bool {
	o1 := orientation(s.A, s.B, t.A)
	o2 := orientation(s.A, s.B, t.B)
	o3 := orientation(t.A, t.B, s.A)
	o4 := orientation(t.A, t.B, s.B)
	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear special cases.
	if o1 == 0 && onSegment(s, t.A) {
		return true
	}
	if o2 == 0 && onSegment(s, t.B) {
		return true
	}
	if o3 == 0 && onSegment(t, s.A) {
		return true
	}
	if o4 == 0 && onSegment(t, s.B) {
		return true
	}
	return false
}

// DistanceToPoint returns the smallest distance from p to any point of s.
func (s Segment) DistanceToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if SameCoord(l2, 0) {
		return p.DistanceTo(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	proj := s.A.Add(d.Scale(t))
	return p.DistanceTo(proj)
}

// Distance returns the smallest distance between any point of s and any
// point of t; zero if they intersect.
func (s Segment) Distance(t Segment) float64 {
	if s.Intersects(t) {
		return 0
	}
	return math.Min(
		math.Min(s.DistanceToPoint(t.A), s.DistanceToPoint(t.B)),
		math.Min(t.DistanceToPoint(s.A), t.DistanceToPoint(s.B)),
	)
}

// Polygon is a simple polygon given as a ring of vertices; the closing edge
// from the last vertex back to the first is implicit. Vertex order may be
// clockwise or counterclockwise. A Polygon with fewer than 3 vertices is
// degenerate; predicates treat it as empty.
type Polygon []Point

// Validate returns an error when pg is not a usable simple polygon: fewer
// than three vertices, repeated consecutive vertices, or self-intersecting
// edges. Validation is O(v²) and intended for ingest paths, not inner loops.
func (pg Polygon) Validate() error {
	if len(pg) < 3 {
		return fmt.Errorf("geom: polygon needs at least 3 vertices, got %d", len(pg))
	}
	n := len(pg)
	for i := 0; i < n; i++ {
		if SamePoint(pg[i], pg[(i+1)%n]) {
			return fmt.Errorf("geom: polygon has repeated consecutive vertex at index %d", i)
		}
	}
	for i := 0; i < n; i++ {
		ei := Segment{pg[i], pg[(i+1)%n]}
		for j := i + 1; j < n; j++ {
			// Skip adjacent edges, which legitimately share a vertex.
			if j == i || (j+1)%n == i || (i+1)%n == j {
				continue
			}
			ej := Segment{pg[j], pg[(j+1)%n]}
			if ei.Intersects(ej) {
				return fmt.Errorf("geom: polygon edges %d and %d intersect", i, j)
			}
		}
	}
	return nil
}

// edges calls f for every edge of pg, stopping early when f returns false.
func (pg Polygon) edges(f func(Segment) bool) {
	n := len(pg)
	for i := 0; i < n; i++ {
		if !f(Segment{pg[i], pg[(i+1)%n]}) {
			return
		}
	}
}

// Bounds implements Spatial, returning the MBR of the polygon. Degenerate
// polygons yield a zero rectangle.
func (pg Polygon) Bounds() Rect {
	if len(pg) == 0 {
		return Rect{}
	}
	return RectFromPoints(pg...)
}

// SignedArea returns the signed area of pg: positive for counterclockwise
// vertex order, negative for clockwise.
func (pg Polygon) SignedArea() float64 {
	if len(pg) < 3 {
		return 0
	}
	var a float64
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += pg[i].Cross(pg[j])
	}
	return a / 2
}

// Area returns the (unsigned) area of pg.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// Centroid returns the center of gravity of pg. For degenerate polygons it
// falls back to the mean of the vertices.
func (pg Polygon) Centroid() Point {
	a := pg.SignedArea()
	if SameCoord(a, 0) {
		var c Point
		if len(pg) == 0 {
			return c
		}
		for _, p := range pg {
			c = c.Add(p)
		}
		return c.Scale(1 / float64(len(pg)))
	}
	var cx, cy float64
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		f := pg[i].Cross(pg[j])
		cx += (pg[i].X + pg[j].X) * f
		cy += (pg[i].Y + pg[j].Y) * f
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// ContainsPoint reports whether p lies inside pg (boundary inclusive), using
// the even-odd ray-casting rule.
func (pg Polygon) ContainsPoint(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	// Boundary check first so edge points are deterministically inside.
	onBoundary := false
	pg.edges(func(e Segment) bool {
		if e.DistanceToPoint(p) < 1e-12 {
			onBoundary = true
			return false
		}
		return true
	})
	if onBoundary {
		return true
	}
	inside := false
	n := len(pg)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := pg[i], pg[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Intersects reports whether pg and other share at least one point: an edge
// crossing, or full containment of one polygon in the other.
func (pg Polygon) Intersects(other Polygon) bool {
	if len(pg) < 3 || len(other) < 3 {
		return false
	}
	if !pg.Bounds().Intersects(other.Bounds()) {
		return false
	}
	cross := false
	pg.edges(func(e Segment) bool {
		other.edges(func(f Segment) bool {
			if e.Intersects(f) {
				cross = true
				return false
			}
			return true
		})
		return !cross
	})
	if cross {
		return true
	}
	return pg.ContainsPoint(other[0]) || other.ContainsPoint(pg[0])
}

// Contains reports whether other lies entirely inside pg.
func (pg Polygon) Contains(other Polygon) bool {
	if len(pg) < 3 || len(other) < 3 {
		return false
	}
	if !pg.Bounds().ContainsRect(other.Bounds()) {
		return false
	}
	for _, p := range other {
		if !pg.ContainsPoint(p) {
			return false
		}
	}
	// No edge of other may cross an edge of pg; vertex containment alone is
	// not sufficient for non-convex pg.
	crossing := false
	pg.edges(func(e Segment) bool {
		other.edges(func(f Segment) bool {
			if e.Intersects(f) && orientation(e.A, e.B, f.A) != 0 && orientation(e.A, e.B, f.B) != 0 {
				crossing = true
				return false
			}
			return true
		})
		return !crossing
	})
	return !crossing
}

// DistanceToPoint returns the smallest distance from p to pg: zero when p is
// inside, the distance to the nearest edge otherwise.
func (pg Polygon) DistanceToPoint(p Point) float64 {
	if pg.ContainsPoint(p) {
		return 0
	}
	best := math.Inf(1)
	pg.edges(func(e Segment) bool {
		if d := e.DistanceToPoint(p); d < best {
			best = d
		}
		return true
	})
	return best
}

// Distance returns the smallest distance between any point of pg and any
// point of other; zero when they intersect.
func (pg Polygon) Distance(other Polygon) float64 {
	if pg.Intersects(other) {
		return 0
	}
	best := math.Inf(1)
	pg.edges(func(e Segment) bool {
		other.edges(func(f Segment) bool {
			if d := e.Distance(f); d < best {
				best = d
			}
			return true
		})
		return true
	})
	return best
}

// RegularPolygon returns a v-vertex regular polygon centered at c with
// circumradius r, counterclockwise. It is a convenient generator for tests
// and synthetic workloads. It panics if v < 3.
func RegularPolygon(c Point, r float64, v int) Polygon {
	if v < 3 {
		panic("geom: RegularPolygon requires at least 3 vertices")
	}
	pg := make(Polygon, v)
	for i := 0; i < v; i++ {
		a := 2 * math.Pi * float64(i) / float64(v)
		pg[i] = Point{c.X + r*math.Cos(a), c.Y + r*math.Sin(a)}
	}
	return pg
}
