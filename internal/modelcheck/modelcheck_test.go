package modelcheck

import (
	"math"
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/costmodel"
)

// smallParams returns a laptop-scale model configuration: k=4, n=4 (341
// nodes), selector at leaf level.
func smallParams() costmodel.Params {
	prm := costmodel.PaperParams()
	prm.K = 4
	prm.Nlevels = 4
	prm.H = 4
	prm.T = 341
	return prm
}

func TestIDTreeShape(t *testing.T) {
	tree, n := IDTree(3, 3)
	if n != 40 { // (3^4-1)/2
		t.Fatalf("nodes = %d, want 40", n)
	}
	if tree.Height() != 3 {
		t.Fatalf("height = %d", tree.Height())
	}
	// BFS ids, levels encoded consistently.
	core.Walk(tree, func(nd core.Node, level int) bool {
		id, ok := nd.Tuple()
		if !ok {
			t.Fatal("every node must carry a tuple (S2)")
		}
		gotID, gotLevel := decode(nd.Bounds())
		if gotID != id || gotLevel != level {
			t.Fatalf("encoding broken: node %d level %d decodes to %d/%d",
				id, level, gotID, gotLevel)
		}
		return true
	})
}

func TestIDTreePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IDTree(1, 3)
}

func TestParentIDAndLCA(t *testing.T) {
	// k=3: level 0 = {0}, level 1 = {1,2,3}, level 2 = {4..12}.
	if got := parentID(4, 2, 3); got != 1 {
		t.Fatalf("parent of 4 = %d", got)
	}
	if got := parentID(12, 2, 3); got != 3 {
		t.Fatalf("parent of 12 = %d", got)
	}
	if got := parentID(0, 0, 3); got != 0 {
		t.Fatalf("parent of root = %d", got)
	}
	// LCA of two children of node 1 (ids 4 and 5) is node 1 at level 1.
	if got := lcaLevel(4, 2, 5, 2, 3); got != 1 {
		t.Fatalf("lca(4,5) level = %d", got)
	}
	// LCA of nodes under different level-1 parents is the root.
	if got := lcaLevel(4, 2, 12, 2, 3); got != 0 {
		t.Fatalf("lca(4,12) level = %d", got)
	}
	// LCA with an ancestor is the ancestor's level.
	if got := lcaLevel(1, 1, 4, 2, 3); got != 1 {
		t.Fatalf("lca(1, 4) level = %d", got)
	}
	// firstIDAtLevel sanity.
	if firstIDAtLevel(0, 3) != 0 || firstIDAtLevel(1, 3) != 1 || firstIDAtLevel(2, 3) != 4 {
		t.Fatal("firstIDAtLevel wrong")
	}
}

func TestOpDeterministicAndCalibrated(t *testing.T) {
	m := costmodel.MustModel(smallParams(), costmodel.Uniform, 0.3)
	op1 := NewOp(m, 7, true)
	op2 := NewOp(m, 7, true)
	a := idRect(5, 2)
	b := idRect(9, 2)
	if op1.Filter(a.Bounds(), b.Bounds()) != op2.Filter(a.Bounds(), b.Bounds()) {
		t.Fatal("same seed must give same draw")
	}
	if op1.Eval(a, b) != op1.Filter(a.Bounds(), b.Bounds()) {
		t.Fatal("S3 requires Eval ⇔ Filter")
	}
	// The empirical match rate over many pairs approaches p.
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if op1.Filter(idRect(i, 2).Bounds(), idRect(i+100000, 3).Bounds()) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("empirical match rate %g, want ≈ 0.3", rate)
	}
}

func TestOpHiLocRequiresSameTree(t *testing.T) {
	m := costmodel.MustModel(smallParams(), costmodel.HiLoc, 0.3)
	defer func() {
		if recover() == nil {
			t.Fatal("HI-LOC with sameTree=false must panic")
		}
	}()
	NewOp(m, 1, false)
}

func TestOpHiLocAncestorsAlwaysMatch(t *testing.T) {
	m := costmodel.MustModel(smallParams(), costmodel.HiLoc, 0.05)
	op := NewOp(m, 3, true)
	// Root (id 0) is everyone's ancestor: ρ = p⁰ = 1, always a match.
	// Valid BFS ids for k=4: level 2 starts at 5, level 3 at 21, level 4 at 85.
	for _, probe := range []struct{ id, level int }{{0, 0}, {1, 1}, {5, 2}, {21, 3}, {85, 4}} {
		if !op.Filter(idRect(probe.id, probe.level).Bounds(), idRect(0, 0).Bounds()) {
			t.Fatalf("node %d must match the root with certainty", probe.id)
		}
	}
}

func TestOpName(t *testing.T) {
	m := costmodel.MustModel(smallParams(), costmodel.NoLoc, 0.25)
	op := NewOp(m, 1, true)
	if op.Name() != "synthetic(NO-LOC,p=0.25)" {
		t.Fatalf("name = %q", op.Name())
	}
}

func TestMeasureSelectMatchesModel(t *testing.T) {
	// The measured Θ-evaluation count of SELECT must track C_II^Θ(h)
	// closely: the formula is exact in expectation under S1–S3.
	for _, dist := range costmodel.Distributions() {
		for _, p := range []float64{0.05, 0.2, 0.5, 1} {
			m := costmodel.MustModel(smallParams(), dist, p)
			res, err := MeasureSelect(m, 80)
			if err != nil {
				t.Fatal(err)
			}
			// Draws are deterministic per seed, so these bounds are stable;
			// small p has all-or-nothing variance under UNIFORM coupling,
			// hence the wider band there.
			lo, hi := 0.8, 1.25
			if p < 0.2 {
				lo, hi = 0.5, 1.6
			}
			if p == 1 {
				lo, hi = 0.999, 1.001 // deterministic at p = 1
			}
			if r := res.Ratio(); r < lo || r > hi {
				t.Fatalf("%v p=%g: measured/predicted = %.3f (measured %.1f, predicted %.1f)",
					dist, p, r, res.Measured, res.Predicted)
			}
		}
	}
}

func TestMeasureJoinBoundedByModel(t *testing.T) {
	// D_II^Θ is an acknowledged overestimate (correlation assumption), so
	// the measured join work must not exceed it by more than noise — and at
	// p = 1 the two must agree exactly.
	for _, dist := range costmodel.Distributions() {
		for _, p := range []float64{0.1, 0.5, 1} {
			m := costmodel.MustModel(smallParams(), dist, p)
			res, err := MeasureJoin(m, 10)
			if err != nil {
				t.Fatal(err)
			}
			if res.Measured > res.Predicted*1.1 {
				t.Fatalf("%v p=%g: measured %.1f exceeds prediction %.1f",
					dist, p, res.Measured, res.Predicted)
			}
			if p == 1 {
				if r := res.Ratio(); math.Abs(r-1) > 0.01 {
					t.Fatalf("%v p=1: ratio = %.4f, want exact agreement", dist, r)
				}
			}
		}
	}
}

func TestResultRatioZeroPrediction(t *testing.T) {
	if (Result{Predicted: 0, Measured: 5}).Ratio() != 0 {
		t.Fatal("zero prediction must give ratio 0")
	}
}
