// Package modelcheck validates the analytical cost model (§4) against the
// executable algorithms by constructing the exact world the model assumes:
// a balanced k-ary generalization tree (S1) whose every node is a tuple
// (S2), and a synthetic θ-operator for which Θ ⇔ θ (S3) with pairwise match
// probabilities drawn per the UNIFORM / NO-LOC / HI-LOC distributions.
// Running SELECT and JOIN over this world counts actual Θ evaluations,
// which can be compared with the model's computation-cost formulas
// C_II^Θ(h) and D_II^Θ.
//
// The synthetic operator identifies nodes through their MBRs: node IDs and
// levels are encoded in degenerate rectangles (the algorithms never inspect
// coordinates beyond passing them to the operator, and S3 makes geometric
// containment irrelevant — matching is probabilistic by fiat, exactly as in
// the model).
package modelcheck

import (
	"fmt"
	"math"

	"spatialjoin/internal/core"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/geom"
)

// IDTree builds the model's idealized tree: balanced k-ary, height n
// (root = level 0), node IDs assigned in BFS order, every node a tuple.
// Node i at level l carries the identifying MBR Rect{i, l, i, l}.
func IDTree(k, n int) (*core.BasicTree, int) {
	if k < 2 || n < 0 {
		panic(fmt.Sprintf("modelcheck: bad tree shape k=%d n=%d", k, n))
	}
	id := 0
	mk := func(level int) *core.BasicNode {
		node := core.NewBasicNode(idRect(id, level), id)
		id++
		return node
	}
	root := mk(0)
	level := []*core.BasicNode{root}
	for depth := 0; depth < n; depth++ {
		var next []*core.BasicNode
		for _, parent := range level {
			for c := 0; c < k; c++ {
				child := mk(depth + 1)
				parent.AddChild(child)
				next = append(next, child)
			}
		}
		level = next
	}
	return core.NewBasicTree(root), id
}

// idRect encodes a node identity as a degenerate rectangle.
func idRect(id, level int) geom.Rect {
	return geom.Rect{
		MinX: float64(id), MinY: float64(level),
		MaxX: float64(id), MaxY: float64(level),
	}
}

// decode recovers the node identity from an encoded rectangle.
func decode(r geom.Rect) (id, level int) {
	return int(r.MinX), int(r.MinY)
}

// Op is the synthetic θ-operator of assumption S3: Filter and Eval are the
// same deterministic pseudo-random draw, with P(match) given by the chosen
// distribution at the operand nodes' levels.
//
// Two drawing modes exist because the model implicitly assumes Θ-soundness
// (a match with a node implies a match with every ancestor — otherwise the
// hierarchical search could never find it):
//
//   - Coupled draws realize exactly that world for a fixed left operand:
//     the right operand matches only if its parent matches, with the
//     conditional probability ρ(node)/ρ(parent), so marginals telescope to
//     the distribution's ρ while matches are nested along root paths. This
//     is the mode for validating SELECT, whose formula is then exact in
//     expectation.
//   - Independent draws give each ordered pair its own Bernoulli draw. The
//     JOIN formula D_II^Θ prices pair survival with the correlated
//     single-π approximation the paper spells out, so it upper-bounds the
//     measured work in this mode (with equality at p = 1).
type Op struct {
	// Model supplies the distribution, p and tree shape.
	Model costmodel.Model
	// Seed varies the pseudo-random draws across experiment repetitions.
	Seed uint64
	// SameTree treats operands as nodes of one shared tree (required for
	// HI-LOC, where matching depends on the lowest common ancestor).
	SameTree bool
	// Coupled selects the nested-along-paths drawing mode.
	Coupled bool
}

// NewOp returns a synthetic operator for the model.
func NewOp(m costmodel.Model, seed uint64, sameTree bool) *Op {
	if m.Dist == costmodel.HiLoc && !sameTree {
		panic("modelcheck: HI-LOC requires sameTree (the paper restricts it to one tree)")
	}
	return &Op{Model: m, Seed: seed, SameTree: sameTree}
}

// NewCoupledOp returns a synthetic operator with Θ-sound nested draws.
func NewCoupledOp(m costmodel.Model, seed uint64, sameTree bool) *Op {
	op := NewOp(m, seed, sameTree)
	op.Coupled = true
	return op
}

// Name implements pred.Operator.
func (o *Op) Name() string {
	return fmt.Sprintf("synthetic(%v,p=%g)", o.Model.Dist, o.Model.P)
}

// Eval implements pred.Operator; by S3 it is identical to Filter.
func (o *Op) Eval(a, b geom.Spatial) bool {
	return o.Filter(a.Bounds(), b.Bounds())
}

// Filter implements pred.Operator: a Bernoulli draw with the distribution's
// probability for the operand levels, deterministic in (Seed, idA, idB).
func (o *Op) Filter(a, b geom.Rect) bool {
	idA, lvlA := decode(a)
	idB, lvlB := decode(b)
	if o.Coupled {
		return o.coupledMatch(idA, lvlA, idB, lvlB)
	}
	return o.draw(idA, idB) < o.rho(idA, lvlA, idB, lvlB)
}

// rho returns the per-pair match probability.
func (o *Op) rho(idA, lvlA, idB, lvlB int) float64 {
	if o.SameTree {
		return o.rhoSameTree(idA, lvlA, idB, lvlB)
	}
	return o.Model.Pi(lvlA, lvlB)
}

// coupledMatch draws Θ-soundly: the pair (a, b) matches only if
// (a, parent(b)) matches, with conditional probability ρ(a,b)/ρ(a,parent).
// Marginals telescope to ρ(a,b) and matches nest along b's root path, which
// is exactly the world a sound Θ filter produces for a fixed selector a.
func (o *Op) coupledMatch(idA, lvlA, idB, lvlB int) bool {
	prob := o.rho(idA, lvlA, idB, lvlB)
	if lvlB == 0 {
		return o.draw(idA, idB) < prob
	}
	pid := parentID(idB, lvlB, o.Model.Prm.K)
	parentProb := o.rho(idA, lvlA, pid, lvlB-1)
	if !o.coupledMatch(idA, lvlA, pid, lvlB-1) {
		return false
	}
	cond := 1.0
	if parentProb > 0 {
		cond = prob / parentProb
	}
	return o.draw(idA, idB) < cond
}

// rhoSameTree evaluates ρ for two nodes of one tree: exact for HI-LOC
// (p^min(d₁,d₂) via the true LCA of the BFS ids), the level-based π for the
// other distributions.
func (o *Op) rhoSameTree(idA, lvlA, idB, lvlB int) float64 {
	if o.Model.Dist != costmodel.HiLoc {
		return o.Model.Pi(lvlA, lvlB)
	}
	l := lcaLevel(idA, lvlA, idB, lvlB, o.Model.Prm.K)
	d1 := lvlA - l
	d2 := lvlB - l
	if d2 < d1 {
		d1 = d2
	}
	return math.Pow(o.Model.P, float64(d1))
}

// lcaLevel returns the level of the lowest common ancestor of two nodes
// identified by BFS ids in a complete k-ary tree.
func lcaLevel(idA, lvlA, idB, lvlB, k int) int {
	for lvlA > lvlB {
		idA = parentID(idA, lvlA, k)
		lvlA--
	}
	for lvlB > lvlA {
		idB = parentID(idB, lvlB, k)
		lvlB--
	}
	for idA != idB {
		idA = parentID(idA, lvlA, k)
		idB = parentID(idB, lvlB, k)
		lvlA--
		lvlB--
	}
	return lvlA
}

// parentID maps a BFS id at the given level to its parent's BFS id.
func parentID(id, level, k int) int {
	if level == 0 {
		return id
	}
	first := firstIDAtLevel(level, k)
	offset := id - first
	return firstIDAtLevel(level-1, k) + offset/k
}

// firstIDAtLevel returns the BFS id of the leftmost node at a level:
// (k^level − 1)/(k − 1).
func firstIDAtLevel(level, k int) int {
	n := 0
	p := 1
	for i := 0; i < level; i++ {
		n += p
		p *= k
	}
	return n
}

// draw returns a deterministic uniform value in [0, 1) for the ordered
// pair, via two rounds of the splitmix64 finalizer so repeated experiments
// are exactly reproducible.
func (o *Op) draw(idA, idB int) float64 {
	x := mix64(o.Seed + 0x9E3779B97F4A7C15*uint64(idA+1))
	x = mix64(x ^ 0xD1B54A32D192ED03*uint64(idB+1))
	return float64(x>>11) / float64(1<<53)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Result is one model-vs-measured comparison point.
type Result struct {
	// Predicted is the model's Θ-evaluation count (the computation cost
	// divided by C_Θ).
	Predicted float64
	// Measured is the mean Θ-evaluation count of the live algorithm over
	// the repetitions.
	Measured float64
	// Repetitions is the number of independent draws averaged.
	Repetitions int
}

// Ratio returns measured / predicted.
func (r Result) Ratio() float64 {
	if geom.SameCoord(r.Predicted, 0) {
		return 0
	}
	return r.Measured / r.Predicted
}

// MeasureSelect runs algorithm SELECT over the idealized tree with the
// synthetic operator and compares the measured Θ evaluations against
// C_II^Θ(h)/C_Θ. The selector is the leftmost node at level h of the same
// tree (as the model's HI-LOC analysis requires).
func MeasureSelect(m costmodel.Model, reps int) (Result, error) {
	k, n, h := m.Prm.K, m.Prm.Nlevels, m.Prm.H
	tree, _ := IDTree(k, n)
	selector := idRect(firstIDAtLevel(h, k), h)

	var total int64
	for rep := 0; rep < reps; rep++ {
		op := NewCoupledOp(m, uint64(rep+1), true)
		res, err := core.Select(tree, selector, op, nil)
		if err != nil {
			return Result{}, err
		}
		total += res.Stats.FilterEvals
	}
	predicted := m.SelectCosts(h).CIITheta / m.Prm.CTheta
	return Result{
		Predicted:   predicted,
		Measured:    float64(total) / float64(reps),
		Repetitions: reps,
	}, nil
}

// MeasureJoin runs algorithm JOIN (a self-join of the idealized tree, so
// HI-LOC is well-defined) and compares measured Θ evaluations against
// D_II^Θ/C_Θ. The paper notes D_II^Θ deliberately overestimates (it prices
// pair survival at π_{i,i−1} instead of a product), so measured values at
// small p land below the prediction.
func MeasureJoin(m costmodel.Model, reps int) (Result, error) {
	k, n := m.Prm.K, m.Prm.Nlevels
	tree, _ := IDTree(k, n)

	var total int64
	for rep := 0; rep < reps; rep++ {
		op := NewOp(m, uint64(rep+1), true)
		res, err := core.Join(tree, tree, op, nil)
		if err != nil {
			return Result{}, err
		}
		total += res.Stats.FilterEvals
	}
	predicted := m.JoinCosts().DIITheta / m.Prm.CTheta
	return Result{
		Predicted:   predicted,
		Measured:    float64(total) / float64(reps),
		Repetitions: reps,
	}, nil
}
