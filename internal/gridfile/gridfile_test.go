package gridfile

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
)

var world = geom.NewRect(0, 0, 1000, 1000)

func newGrid(t *testing.T, capacity int) *Grid {
	t.Helper()
	g, err := New(world, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.Rect{}, 4); err == nil {
		t.Error("zero-area world must fail")
	}
	if _, err := New(world, 0); err == nil {
		t.Error("capacity 0 must fail")
	}
}

func TestInsertRejectsOutsideWorld(t *testing.T) {
	g := newGrid(t, 4)
	if err := g.Insert(geom.Pt(-5, 10), 1); err == nil {
		t.Fatal("outside centerpoint must be rejected")
	}
	if g.Len() != 0 {
		t.Fatal("failed insert must not change size")
	}
}

func TestInsertSplitsAndValidates(t *testing.T) {
	g := newGrid(t, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		x, y := rng.Float64()*990, rng.Float64()*990
		if err := g.Insert(geom.NewRect(x, y, x+5, y+5), i); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := g.Validate(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if g.Len() != 500 {
		t.Fatalf("len = %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cols, rows := g.DirectorySize()
	if cols < 4 || rows < 4 {
		t.Fatalf("directory barely grew: %d×%d", cols, rows)
	}
	if g.Buckets() < 500/4 {
		t.Fatalf("too few buckets: %d", g.Buckets())
	}
}

func TestCoincidentCenterpointsOverflowGracefully(t *testing.T) {
	// All objects share one centerpoint: splitting cannot help, the bucket
	// must grow instead of looping forever.
	g := newGrid(t, 3)
	for i := 0; i < 50; i++ {
		if err := g.Insert(geom.Pt(500, 500), i); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 50 {
		t.Fatalf("len = %d", g.Len())
	}
	found := 0
	g.Search(geom.NewRect(499, 499, 501, 501), func(Entry) bool { found++; return true })
	if found != 50 {
		t.Fatalf("found %d of 50 coincident objects", found)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	g := newGrid(t, 6)
	rng := rand.New(rand.NewSource(2))
	rects := datagen.UniformRects(rng, 400, world, 2, 30)
	for i, r := range rects {
		if err := g.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 50; q++ {
		x, y := rng.Float64()*900, rng.Float64()*900
		query := geom.NewRect(x, y, x+rng.Float64()*150, y+rng.Float64()*150)
		var want []int
		for i, r := range rects {
			if r.Intersects(query) {
				want = append(want, i)
			}
		}
		var got []int
		g.Search(query, func(e Entry) bool { got = append(got, e.ID); return true })
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: hit mismatch", q)
			}
		}
	}
}

func TestSearchPrunesBuckets(t *testing.T) {
	g := newGrid(t, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 600; i++ {
		x, y := rng.Float64()*990, rng.Float64()*990
		g.Insert(geom.NewRect(x, y, x+3, y+3), i)
	}
	visited := g.Search(geom.NewRect(10, 10, 40, 40), func(Entry) bool { return true })
	if visited >= g.Buckets() {
		t.Fatalf("small query visited all %d buckets", visited)
	}
	if visited == 0 {
		t.Fatal("query must visit at least one bucket")
	}
}

func TestSearchEarlyStop(t *testing.T) {
	g := newGrid(t, 4)
	for i := 0; i < 30; i++ {
		g.Insert(geom.Pt(float64(i)*3+1, 500), i)
	}
	n := 0
	g.Search(world, func(Entry) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestAllVisitsEverythingOnce(t *testing.T) {
	g := newGrid(t, 5)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		g.Insert(geom.Pt(rng.Float64()*999, rng.Float64()*999), i)
	}
	seen := map[int]int{}
	g.All(func(e Entry) bool { seen[e.ID]++; return true })
	if len(seen) != 200 {
		t.Fatalf("All saw %d entries", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("entry %d visited %d times", id, c)
		}
	}
	n := 0
	g.All(func(Entry) bool { n++; return false })
	if n != 1 {
		t.Fatal("All early stop broken")
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := datagen.UniformRects(rng, 150, world, 2, 40)
	ss := datagen.UniformRects(rng, 150, world, 2, 40)
	gr := newGrid(t, 6)
	gs := newGrid(t, 6)
	for i, r := range rs {
		gr.Insert(r, i)
	}
	for i, s := range ss {
		gs.Insert(s, i)
	}
	for _, op := range []pred.Operator{
		pred.Overlaps{},
		pred.WithinDistance{D: 100},
		pred.NorthwestOf{},
		pred.ReachableWithin{Minutes: 30, Speed: 1},
	} {
		got, stats, err := Join(gr, gs, op)
		if err != nil {
			t.Fatal(err)
		}
		var want [][2]int
		for i, r := range rs {
			for j, s := range ss {
				if op.Eval(r, s) {
					want = append(want, [2]int{i, j})
				}
			}
		}
		sortPairs(got)
		sortPairs(want)
		if len(got) != len(want) {
			t.Fatalf("%s: %d pairs, brute force %d", op.Name(), len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: pair mismatch at %d", op.Name(), i)
			}
		}
		if stats.BucketPairs == 0 {
			t.Fatal("stats unpopulated")
		}
		// The region filter must prune something on a selective operator.
		if op.Name() == "overlaps" && stats.FilterPassed >= stats.BucketPairs {
			t.Fatal("overlaps join pruned nothing")
		}
		// And save exact evaluations compared to nested loop.
		if op.Name() == "overlaps" && stats.ExactEvals >= int64(len(rs)*len(ss)) {
			t.Fatalf("grid join evaluated %d pairs — no better than nested loop", stats.ExactEvals)
		}
	}
}

func sortPairs(ps [][2]int) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

func TestJoinValidation(t *testing.T) {
	g := newGrid(t, 4)
	if _, _, err := Join(nil, g, pred.Overlaps{}); err == nil {
		t.Error("nil grid must fail")
	}
	if _, _, err := Join(g, g, nil); err == nil {
		t.Error("nil operator must fail")
	}
}

func TestJoinEmptyGrids(t *testing.T) {
	gr := newGrid(t, 4)
	gs := newGrid(t, 4)
	got, _, err := Join(gr, gs, pred.Overlaps{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty join must be empty")
	}
}

func TestJoinSkewedData(t *testing.T) {
	// Heavy clustering stresses the unshare/split machinery; results must
	// stay exact.
	rng := rand.New(rand.NewSource(6))
	rs := datagen.ClusteredRects(rng, 300, 2, world, 8, 5)
	ss := datagen.ClusteredRects(rng, 300, 2, world, 8, 5)
	gr := newGrid(t, 4)
	gs := newGrid(t, 4)
	for i, r := range rs {
		if err := gr.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range ss {
		if err := gs.Insert(s, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := gr.Validate(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Join(gr, gs, pred.Overlaps{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rs {
		for _, s := range ss {
			if r.Intersects(s) {
				want++
			}
		}
	}
	if len(got) != want {
		t.Fatalf("skewed join: %d pairs, want %d", len(got), want)
	}
}
