// Package gridfile implements the grid file of Nievergelt, Hinterberger and
// Sevcik [Niev84] and a grid-partition spatial join in the spirit of Rotem
// [Rote91] — the index-supported join approach the paper credits as the
// address-computation counterpart of its tree-based strategy (§2.2: "Rotem
// has demonstrated the potential of this approach for the case of the grid
// file").
//
// The structure indexes objects by their centerpoints: two orthogonal
// linear scales partition the plane into a directory of cells, each mapping
// to a bucket of bounded capacity. Overflowing buckets split by refining
// one scale (cyclically alternating axes); cells can share buckets until
// they split. Range searches touch only the directory cells overlapping the
// query region.
//
// The grid join pairs buckets whose regions pass the operator's Θ filter —
// regions are expanded by each grid's maximum object half-extent, so
// geometry that protrudes beyond its centerpoint's cell is never missed —
// and evaluates θ exactly within qualifying bucket pairs.
package gridfile

import (
	"fmt"
	"sort"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
)

// Entry is one indexed object.
type Entry struct {
	// Obj is the exact geometry; the index key is its centerpoint.
	Obj geom.Spatial
	// ID is the tuple the object belongs to.
	ID int
}

// bucket holds the entries of one or more directory cells.
type bucket struct {
	entries []Entry
}

// Grid is a grid file over a fixed world rectangle.
type Grid struct {
	world    geom.Rect
	capacity int
	// xs and ys are the interior split points of the linear scales, sorted
	// ascending. With len(xs) = a and len(ys) = b the directory is
	// (a+1) × (b+1) cells.
	xs, ys []float64
	// dir maps cell (i, j) → bucket; multiple cells may share a bucket.
	dir [][]*bucket
	// splitX alternates the split axis.
	splitX bool
	size   int
	// maxHalfW and maxHalfH track the largest object half-extents, for
	// sound region expansion in joins and searches.
	maxHalfW, maxHalfH float64
}

// New returns an empty grid file over world with the given bucket capacity.
func New(world geom.Rect, capacity int) (*Grid, error) {
	if !world.Valid() || world.Area() <= 0 {
		return nil, fmt.Errorf("gridfile: invalid world %v", world)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("gridfile: capacity %d < 1", capacity)
	}
	b := &bucket{}
	return &Grid{
		world:    world,
		capacity: capacity,
		dir:      [][]*bucket{{b}},
		splitX:   true,
	}, nil
}

// Len returns the number of stored entries.
func (g *Grid) Len() int { return g.size }

// DirectorySize returns the directory dimensions (columns, rows).
func (g *Grid) DirectorySize() (int, int) { return len(g.xs) + 1, len(g.ys) + 1 }

// Buckets returns the number of distinct buckets.
func (g *Grid) Buckets() int {
	seen := make(map[*bucket]bool)
	for _, col := range g.dir {
		for _, b := range col {
			seen[b] = true
		}
	}
	return len(seen)
}

// cellOf returns the directory indices of the cell containing p (clamped to
// the world).
func (g *Grid) cellOf(p geom.Point) (int, int) {
	return upperBound(g.xs, p.X), upperBound(g.ys, p.Y)
}

// upperBound returns the number of split points ≤ v, i.e. the cell index
// along one scale.
func upperBound(scale []float64, v float64) int {
	return sort.Search(len(scale), func(i int) bool { return scale[i] > v })
}

// cellRegion returns the world-space rectangle of cell (i, j).
func (g *Grid) cellRegion(i, j int) geom.Rect {
	lo := func(scale []float64, idx int, min float64) float64 {
		if idx == 0 {
			return min
		}
		return scale[idx-1]
	}
	hi := func(scale []float64, idx int, max float64) float64 {
		if idx == len(scale) {
			return max
		}
		return scale[idx]
	}
	return geom.Rect{
		MinX: lo(g.xs, i, g.world.MinX),
		MinY: lo(g.ys, j, g.world.MinY),
		MaxX: hi(g.xs, i, g.world.MaxX),
		MaxY: hi(g.ys, j, g.world.MaxY),
	}
}

// Insert stores the object under its centerpoint. Objects whose centerpoint
// lies outside the world are rejected.
func (g *Grid) Insert(obj geom.Spatial, id int) error {
	c := geom.CenterOf(obj)
	if !g.world.Contains(c) {
		return fmt.Errorf("gridfile: centerpoint %v outside world %v", c, g.world)
	}
	b := obj.Bounds()
	if hw := b.Width() / 2; hw > g.maxHalfW {
		g.maxHalfW = hw
	}
	if hh := b.Height() / 2; hh > g.maxHalfH {
		g.maxHalfH = hh
	}
	for {
		i, j := g.cellOf(c)
		bk := g.dir[i][j]
		if len(bk.entries) < g.capacity {
			bk.entries = append(bk.entries, Entry{Obj: obj, ID: id})
			g.size++
			return nil
		}
		if !g.split(i, j) {
			// The bucket cannot be split further (all centerpoints
			// coincide); grow it beyond capacity rather than fail.
			bk.entries = append(bk.entries, Entry{Obj: obj, ID: id})
			g.size++
			return nil
		}
	}
}

// split refines the grid to relieve the bucket of cell (i, j). It first
// tries to unshare the bucket within the existing directory; otherwise it
// adds a split point on the alternating axis. It reports whether any
// progress was made.
func (g *Grid) split(i, j int) bool {
	bk := g.dir[i][j]
	// If the bucket is shared by several cells, splitting means giving this
	// region its own buckets along the sharing cells.
	if g.unshare(bk) {
		return true
	}
	// The bucket owns exactly one cell: refine the scales through its
	// region's midpoint, alternating axes; fall back to the other axis when
	// one is degenerate.
	region := g.cellRegion(i, j)
	for attempt := 0; attempt < 2; attempt++ {
		useX := g.splitX
		g.splitX = !g.splitX
		if useX {
			mid := (region.MinX + region.MaxX) / 2
			if mid > region.MinX && mid < region.MaxX && g.addSplitX(mid, bk) {
				return true
			}
		} else {
			mid := (region.MinY + region.MaxY) / 2
			if mid > region.MinY && mid < region.MaxY && g.addSplitY(mid, bk) {
				return true
			}
		}
	}
	return false
}

// unshare gives each cell currently mapped to bk its own bucket,
// repartitioning the entries. It reports whether bk was shared at all.
func (g *Grid) unshare(bk *bucket) bool {
	var cells [][2]int
	for i, col := range g.dir {
		for j, b := range col {
			if b == bk {
				cells = append(cells, [2]int{i, j})
			}
		}
	}
	if len(cells) < 2 {
		return false
	}
	fresh := make(map[[2]int]*bucket, len(cells))
	for _, c := range cells {
		fresh[c] = &bucket{}
		g.dir[c[0]][c[1]] = fresh[c]
	}
	for _, e := range bk.entries {
		i, j := g.cellOf(geom.CenterOf(e.Obj))
		g.dir[i][j].entries = append(g.dir[i][j].entries, e)
	}
	return true
}

// addSplitX inserts a vertical split point, duplicating the directory
// column; only the overflowing bucket is repartitioned (other cells keep
// sharing their bucket across the new boundary, the grid file's hallmark).
func (g *Grid) addSplitX(x float64, overflow *bucket) bool {
	idx := upperBound(g.xs, x)
	if idx < len(g.xs) && geom.SameCoord(g.xs[idx], x) {
		return false
	}
	g.xs = append(g.xs, 0)
	copy(g.xs[idx+1:], g.xs[idx:])
	g.xs[idx] = x
	// Duplicate column idx.
	col := g.dir[idx]
	newCol := make([]*bucket, len(col))
	copy(newCol, col)
	g.dir = append(g.dir, nil)
	copy(g.dir[idx+1:], g.dir[idx:])
	g.dir[idx+1] = newCol
	g.repartition(overflow)
	return true
}

// addSplitY inserts a horizontal split point, duplicating the directory
// row.
func (g *Grid) addSplitY(y float64, overflow *bucket) bool {
	idx := upperBound(g.ys, y)
	if idx < len(g.ys) && geom.SameCoord(g.ys[idx], y) {
		return false
	}
	g.ys = append(g.ys, 0)
	copy(g.ys[idx+1:], g.ys[idx:])
	g.ys[idx] = y
	for i, col := range g.dir {
		col = append(col, nil)
		copy(col[idx+1:], col[idx:])
		col[idx+1] = col[idx]
		g.dir[i] = col
	}
	g.repartition(overflow)
	return true
}

// repartition splits the overflowing bucket's entries across the (now
// refined) cells that map to it.
func (g *Grid) repartition(bk *bucket) {
	var cells [][2]int
	for i, col := range g.dir {
		for j, b := range col {
			if b == bk {
				cells = append(cells, [2]int{i, j})
			}
		}
	}
	if len(cells) < 2 {
		return
	}
	for _, c := range cells {
		g.dir[c[0]][c[1]] = &bucket{}
	}
	for _, e := range bk.entries {
		i, j := g.cellOf(geom.CenterOf(e.Obj))
		g.dir[i][j].entries = append(g.dir[i][j].entries, e)
	}
}

// Search calls f for every entry whose exact geometry intersects query,
// visiting only directory cells whose (extent-expanded) regions overlap it.
// It returns the number of buckets inspected.
func (g *Grid) Search(query geom.Rect, f func(Entry) bool) (bucketsVisited int) {
	expanded := geom.Rect{
		MinX: query.MinX - g.maxHalfW,
		MinY: query.MinY - g.maxHalfH,
		MaxX: query.MaxX + g.maxHalfW,
		MaxY: query.MaxY + g.maxHalfH,
	}
	iLo := upperBound(g.xs, expanded.MinX)
	iHi := upperBound(g.xs, expanded.MaxX)
	jLo := upperBound(g.ys, expanded.MinY)
	jHi := upperBound(g.ys, expanded.MaxY)
	seen := make(map[*bucket]bool)
	for i := iLo; i <= iHi && i < len(g.dir); i++ {
		for j := jLo; j <= jHi && j < len(g.dir[i]); j++ {
			bk := g.dir[i][j]
			if seen[bk] {
				continue
			}
			seen[bk] = true
			bucketsVisited++
			for _, e := range bk.entries {
				if e.Obj.Bounds().Intersects(query) {
					if !f(e) {
						return bucketsVisited
					}
				}
			}
		}
	}
	return bucketsVisited
}

// All calls f for every stored entry.
func (g *Grid) All(f func(Entry) bool) {
	seen := make(map[*bucket]bool)
	for _, col := range g.dir {
		for _, bk := range col {
			if seen[bk] {
				continue
			}
			seen[bk] = true
			for _, e := range bk.entries {
				if !f(e) {
					return
				}
			}
		}
	}
}

// Validate checks the grid-file invariants: every entry's centerpoint lies
// in a cell mapped to its bucket, directory dimensions match the scales,
// scales are strictly sorted, and the entry count matches Len().
func (g *Grid) Validate() error {
	if len(g.dir) != len(g.xs)+1 {
		return fmt.Errorf("gridfile: %d columns for %d x-splits", len(g.dir), len(g.xs))
	}
	for i := 1; i < len(g.xs); i++ {
		if g.xs[i-1] >= g.xs[i] {
			return fmt.Errorf("gridfile: x scale not strictly sorted")
		}
	}
	for i := 1; i < len(g.ys); i++ {
		if g.ys[i-1] >= g.ys[i] {
			return fmt.Errorf("gridfile: y scale not strictly sorted")
		}
	}
	count := 0
	seen := make(map[*bucket]bool)
	for i, col := range g.dir {
		if len(col) != len(g.ys)+1 {
			return fmt.Errorf("gridfile: column %d has %d rows for %d y-splits", i, len(col), len(g.ys))
		}
		for j, bk := range col {
			if bk == nil {
				return fmt.Errorf("gridfile: nil bucket at (%d,%d)", i, j)
			}
			if seen[bk] {
				continue
			}
			seen[bk] = true
			count += len(bk.entries)
			for _, e := range bk.entries {
				ci, cj := g.cellOf(geom.CenterOf(e.Obj))
				if g.dir[ci][cj] != bk {
					return fmt.Errorf("gridfile: entry %d stored in wrong bucket", e.ID)
				}
			}
		}
	}
	if count != g.size {
		return fmt.Errorf("gridfile: %d entries counted, Len() = %d", count, g.size)
	}
	return nil
}

// JoinStats reports the work of a grid join.
type JoinStats struct {
	// BucketPairs counts bucket-region pairs whose Θ filter was evaluated.
	BucketPairs int64
	// FilterPassed counts pairs that survived the region filter.
	FilterPassed int64
	// ExactEvals counts θ evaluations on object pairs.
	ExactEvals int64
}

// Join computes R ⋈θ S over two grid files by pairing buckets whose
// expanded regions pass the operator's Θ filter and evaluating θ exactly
// within qualifying pairs — Rotem-style address-computation join. Regions
// are expanded by each grid's maximum half-extent so protruding geometry is
// never missed (soundness mirrors the Θ-filter property of the tree join).
func Join(r, s *Grid, op pred.Operator) ([][2]int, JoinStats, error) {
	if r == nil || s == nil || op == nil {
		return nil, JoinStats{}, fmt.Errorf("gridfile: nil join argument")
	}
	var stats JoinStats
	var out [][2]int

	type region struct {
		rect geom.Rect
		bk   *bucket
	}
	collect := func(g *Grid) []region {
		var regions []region
		owner := make(map[*bucket]geom.Rect)
		for i, col := range g.dir {
			for j, bk := range col {
				if len(bk.entries) == 0 {
					continue
				}
				cell := g.cellRegion(i, j)
				if prev, ok := owner[bk]; ok {
					owner[bk] = prev.Union(cell)
				} else {
					owner[bk] = cell
				}
			}
		}
		for bk, rect := range owner {
			regions = append(regions, region{
				rect: rect.Expand(maxf(g.maxHalfW, g.maxHalfH)),
				bk:   bk,
			})
		}
		return regions
	}
	rRegions := collect(r)
	sRegions := collect(s)
	for _, ra := range rRegions {
		for _, sb := range sRegions {
			stats.BucketPairs++
			if !op.Filter(ra.rect, sb.rect) {
				continue
			}
			stats.FilterPassed++
			for _, ea := range ra.bk.entries {
				for _, eb := range sb.bk.entries {
					stats.ExactEvals++
					if op.Eval(ea.Obj, eb.Obj) {
						out = append(out, [2]int{ea.ID, eb.ID})
					}
				}
			}
		}
	}
	return out, stats, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
