package storage

import (
	"sort"
	"sync"
	"testing"
)

// orderDevice records the order of successful page writes.
type orderDevice struct {
	Device
	mu     sync.Mutex
	writes []PageID
}

func (d *orderDevice) WritePage(id PageID, buf []byte) error {
	if err := d.Device.WritePage(id, buf); err != nil {
		return err
	}
	d.mu.Lock()
	d.writes = append(d.writes, id)
	d.mu.Unlock()
	return nil
}

// fakeWAL implements the WAL interface with a controllable durability
// horizon.
type fakeWAL struct {
	mu      sync.Mutex
	durable int64
	syncs   int
	syncTo  int64 // durable LSN after the next Sync
}

func (w *fakeWAL) DurableLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

func (w *fakeWAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncs++
	w.durable = w.syncTo
	return nil
}

// dirtyPages allocates n pages in one file and dirties them in the given
// order.
func dirtyPages(t *testing.T, bp *BufferPool, dev Device, order []int) []PageID {
	t.Helper()
	f := dev.CreateFile()
	ids := make([]PageID, len(order))
	for i := range order {
		id, err := dev.AllocPage(f)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, i := range order {
		if _, err := bp.Fetch(ids[i]); err != nil {
			t.Fatal(err)
		}
		if err := bp.MarkDirty(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

// TestFlushAscendingPageOrder checks Flush writes dirty frames in ascending
// PageID order regardless of dirtying order — the elevator schedule the
// paper's sequential-I/O cost model assumes.
func TestFlushAscendingPageOrder(t *testing.T) {
	dev := &orderDevice{Device: NewDisk(64)}
	bp, err := NewBufferPool(dev, 16)
	if err != nil {
		t.Fatal(err)
	}
	dirtyPages(t, bp, dev, []int{5, 0, 3, 7, 1, 6, 2, 4})
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(dev.writes) != 8 {
		t.Fatalf("flushed %d pages, want 8", len(dev.writes))
	}
	if !sort.SliceIsSorted(dev.writes, func(i, j int) bool {
		return pageIDLess(dev.writes[i], dev.writes[j])
	}) {
		t.Errorf("flush order not ascending: %v", dev.writes)
	}
}

// TestUnloggedDirtyBlocksFlushAndEviction checks the no-steal discipline: a
// frame dirtied under a WAL but not yet covered by a durable LSN can be
// neither flushed nor evicted.
func TestUnloggedDirtyBlocksFlushAndEviction(t *testing.T) {
	dev := NewDisk(64)
	bp, err := NewBufferPool(dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := &fakeWAL{}
	bp.SetWAL(w)
	f := dev.CreateFile()
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, err := dev.AllocPage(f)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := bp.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := bp.MarkDirty(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := bp.UnloggedDirtyPages(); len(got) != 1 || got[0] != ids[0] {
		t.Fatalf("UnloggedDirtyPages = %v", got)
	}
	if err := bp.Flush(); err == nil {
		t.Fatal("Flush persisted an unlogged dirty frame")
	}
	// Fill the pool; eviction must pass over the unlogged frame.
	if _, err := bp.Fetch(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Fetch(ids[2]); err != nil {
		t.Fatal(err)
	}
	if !bp.Resident(ids[0]) {
		t.Fatal("eviction stole an unlogged dirty frame")
	}
	if dev.Stats().Writes != 0 {
		t.Fatalf("device saw %d writes before commit", dev.Stats().Writes)
	}

	// Commit: cover the frame with an LSN the WAL will report durable.
	w.syncTo = 100
	if err := bp.SetPageLSN(ids[0], 100, 40); err != nil {
		t.Fatal(err)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 1 {
		t.Errorf("flush forced %d WAL syncs, want 1", w.syncs)
	}
	if got := bp.Stats().WALSyncs; got != 1 {
		t.Errorf("WALSyncs stat = %d, want 1", got)
	}
	if dev.Stats().Writes != 1 {
		t.Errorf("device writes after flush = %d, want 1", dev.Stats().Writes)
	}
}

// TestFlushSkipsWALSyncWhenAlreadyDurable checks write-back does not force a
// redundant sync when the covering LSN is already durable.
func TestFlushSkipsWALSyncWhenAlreadyDurable(t *testing.T) {
	dev := NewDisk(64)
	bp, err := NewBufferPool(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := &fakeWAL{durable: 500}
	bp.SetWAL(w)
	f := dev.CreateFile()
	id, err := dev.AllocPage(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Fetch(id); err != nil {
		t.Fatal(err)
	}
	if err := bp.MarkDirty(id); err != nil {
		t.Fatal(err)
	}
	if err := bp.SetPageLSN(id, 400, 350); err != nil {
		t.Fatal(err)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 0 {
		t.Errorf("flush forced %d WAL syncs for an already-durable LSN", w.syncs)
	}
}

// TestCloseSyncsGroupCommitBuffer is the regression test for a clean-
// shutdown durability hole: with a group-commit policy batching several
// commits per sync, a Close that only flushed dirty frames could find none
// (all already written back) and never force the log, silently dropping
// the buffered tail of committed transactions. Close must sync the WAL
// unconditionally.
func TestCloseSyncsGroupCommitBuffer(t *testing.T) {
	dev := NewDisk(64)
	bp, err := NewBufferPool(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := &fakeWAL{syncTo: 700}
	bp.SetWAL(w)
	// No dirty frame anywhere: the only thing Close has to do is force the
	// log's buffered commits durable.
	if err := bp.Close(); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 1 {
		t.Fatalf("Close forced %d WAL syncs with no dirty frames, want 1", w.syncs)
	}
	if w.DurableLSN() != 700 {
		t.Fatalf("durable LSN after Close = %d, want 700", w.DurableLSN())
	}
	// Idempotent: a second Close syncs again harmlessly and still succeeds.
	if err := bp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDirtyPageTable checks the DPT reports exactly the committed-dirty
// frames, with their redo floors, in ascending PageID order — and that a
// frame re-dirtied across transactions keeps the earliest floor.
func TestDirtyPageTable(t *testing.T) {
	dev := NewDisk(64)
	bp, err := NewBufferPool(dev, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := &fakeWAL{durable: 1 << 30}
	bp.SetWAL(w)
	ids := dirtyPages(t, bp, dev, []int{2, 0, 1, 3})
	// Pages 0..2 committed with distinct floors; page 3 stays unlogged
	// (open transaction) and must not appear.
	if err := bp.SetPageLSN(ids[0], 100, 90); err != nil {
		t.Fatal(err)
	}
	if err := bp.SetPageLSN(ids[1], 200, 150); err != nil {
		t.Fatal(err)
	}
	if err := bp.SetPageLSN(ids[2], 300, 250); err != nil {
		t.Fatal(err)
	}
	dpt := bp.DirtyPageTable()
	if len(dpt) != 3 {
		t.Fatalf("DPT has %d entries, want 3: %v", len(dpt), dpt)
	}
	wantFloor := []int64{90, 150, 250}
	for i, d := range dpt {
		if d.ID != ids[i] || d.RedoLSN != wantFloor[i] {
			t.Errorf("DPT[%d] = {%v %d}, want {%v %d}", i, d.ID, d.RedoLSN, ids[i], wantFloor[i])
		}
	}
	// Re-dirty page 0 under a later transaction: the floor must not rise.
	if err := bp.MarkDirty(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := bp.SetPageLSN(ids[0], 900, 850); err != nil {
		t.Fatal(err)
	}
	if got := bp.DirtyPageTable()[0].RedoLSN; got != 90 {
		t.Errorf("re-dirtied frame's redo floor = %d, want the original 90", got)
	}
}

// TestFlushOneDirty checks the incremental checkpoint flush: ascending
// PageID order one frame per call, unlogged frames skipped and left dirty,
// and termination once nothing above the cursor remains.
func TestFlushOneDirty(t *testing.T) {
	dev := &orderDevice{Device: NewDisk(64)}
	bp, err := NewBufferPool(dev, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := &fakeWAL{durable: 1 << 30}
	bp.SetWAL(w)
	ids := dirtyPages(t, bp, dev, []int{4, 1, 3, 0, 2})
	for i, id := range ids {
		if i == 2 {
			continue // left unlogged: an open transaction holds it
		}
		if err := bp.SetPageLSN(id, int64(1000+i), int64(500+i)); err != nil {
			t.Fatal(err)
		}
	}
	prev := PageID{File: -1, Page: -1}
	var flushed []PageID
	for {
		id, ok, err := bp.FlushOneDirty(prev)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		flushed = append(flushed, id)
		prev = id
	}
	if len(flushed) != 4 {
		t.Fatalf("flushed %d frames, want 4 (unlogged frame must be skipped): %v", len(flushed), flushed)
	}
	if !sort.SliceIsSorted(flushed, func(i, j int) bool { return pageIDLess(flushed[i], flushed[j]) }) {
		t.Errorf("incremental flush order not ascending: %v", flushed)
	}
	dpt := bp.DirtyPageTable()
	if len(dpt) != 0 {
		t.Errorf("DPT after incremental flush = %v, want empty (open-txn frame has no committed image)", dpt)
	}
	if got := bp.UnloggedDirtyPages(); len(got) != 1 || got[0] != ids[2] {
		t.Errorf("UnloggedDirtyPages after flush = %v, want [%v]", got, ids[2])
	}
}

// TestOpenHeapFileSkipsUninitializedPages checks OpenHeapFile tolerates
// trailing zeroed pages, which recovery leaves behind when a crash lands
// after AllocPage but before the first image of the page commits.
func TestOpenHeapFileSkipsUninitializedPages(t *testing.T) {
	dev := NewDisk(256)
	bp, err := NewBufferPool(dev, 8)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := NewHeapFile(bp, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 10; i++ {
		rid, err := hf.Append([]byte("record-payload"))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	// Trailing allocated-but-never-written pages.
	for i := 0; i < 3; i++ {
		if _, err := dev.AllocPage(hf.File()); err != nil {
			t.Fatal(err)
		}
	}
	bp2, err := NewBufferPool(dev, 8)
	if err != nil {
		t.Fatal(err)
	}
	hf2, err := OpenHeapFile(bp2, hf.File(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if hf2.NumRecords() != len(rids) {
		t.Fatalf("reopened heap has %d records, want %d", hf2.NumRecords(), len(rids))
	}
	// New inserts must go to initialized territory and stay readable.
	if _, err := hf2.Append([]byte("post-reopen")); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := hf2.Scan(func(RID, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != len(rids)+1 {
		t.Errorf("scan after reopen saw %d records, want %d", n, len(rids)+1)
	}
}
