package storage

import (
	"sort"
	"sync"
	"testing"
)

// orderDevice records the order of successful page writes.
type orderDevice struct {
	Device
	mu     sync.Mutex
	writes []PageID
}

func (d *orderDevice) WritePage(id PageID, buf []byte) error {
	if err := d.Device.WritePage(id, buf); err != nil {
		return err
	}
	d.mu.Lock()
	d.writes = append(d.writes, id)
	d.mu.Unlock()
	return nil
}

// fakeWAL implements the WAL interface with a controllable durability
// horizon.
type fakeWAL struct {
	mu      sync.Mutex
	durable int64
	syncs   int
	syncTo  int64 // durable LSN after the next Sync
}

func (w *fakeWAL) DurableLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

func (w *fakeWAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncs++
	w.durable = w.syncTo
	return nil
}

// dirtyPages allocates n pages in one file and dirties them in the given
// order.
func dirtyPages(t *testing.T, bp *BufferPool, dev Device, order []int) []PageID {
	t.Helper()
	f := dev.CreateFile()
	ids := make([]PageID, len(order))
	for i := range order {
		id, err := dev.AllocPage(f)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, i := range order {
		if _, err := bp.Fetch(ids[i]); err != nil {
			t.Fatal(err)
		}
		if err := bp.MarkDirty(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

// TestFlushAscendingPageOrder checks Flush writes dirty frames in ascending
// PageID order regardless of dirtying order — the elevator schedule the
// paper's sequential-I/O cost model assumes.
func TestFlushAscendingPageOrder(t *testing.T) {
	dev := &orderDevice{Device: NewDisk(64)}
	bp, err := NewBufferPool(dev, 16)
	if err != nil {
		t.Fatal(err)
	}
	dirtyPages(t, bp, dev, []int{5, 0, 3, 7, 1, 6, 2, 4})
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(dev.writes) != 8 {
		t.Fatalf("flushed %d pages, want 8", len(dev.writes))
	}
	if !sort.SliceIsSorted(dev.writes, func(i, j int) bool {
		return pageIDLess(dev.writes[i], dev.writes[j])
	}) {
		t.Errorf("flush order not ascending: %v", dev.writes)
	}
}

// TestUnloggedDirtyBlocksFlushAndEviction checks the no-steal discipline: a
// frame dirtied under a WAL but not yet covered by a durable LSN can be
// neither flushed nor evicted.
func TestUnloggedDirtyBlocksFlushAndEviction(t *testing.T) {
	dev := NewDisk(64)
	bp, err := NewBufferPool(dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := &fakeWAL{}
	bp.SetWAL(w)
	f := dev.CreateFile()
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, err := dev.AllocPage(f)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := bp.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := bp.MarkDirty(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := bp.UnloggedDirtyPages(); len(got) != 1 || got[0] != ids[0] {
		t.Fatalf("UnloggedDirtyPages = %v", got)
	}
	if err := bp.Flush(); err == nil {
		t.Fatal("Flush persisted an unlogged dirty frame")
	}
	// Fill the pool; eviction must pass over the unlogged frame.
	if _, err := bp.Fetch(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Fetch(ids[2]); err != nil {
		t.Fatal(err)
	}
	if !bp.Resident(ids[0]) {
		t.Fatal("eviction stole an unlogged dirty frame")
	}
	if dev.Stats().Writes != 0 {
		t.Fatalf("device saw %d writes before commit", dev.Stats().Writes)
	}

	// Commit: cover the frame with an LSN the WAL will report durable.
	w.syncTo = 100
	if err := bp.SetPageLSN(ids[0], 100); err != nil {
		t.Fatal(err)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 1 {
		t.Errorf("flush forced %d WAL syncs, want 1", w.syncs)
	}
	if got := bp.Stats().WALSyncs; got != 1 {
		t.Errorf("WALSyncs stat = %d, want 1", got)
	}
	if dev.Stats().Writes != 1 {
		t.Errorf("device writes after flush = %d, want 1", dev.Stats().Writes)
	}
}

// TestFlushSkipsWALSyncWhenAlreadyDurable checks write-back does not force a
// redundant sync when the covering LSN is already durable.
func TestFlushSkipsWALSyncWhenAlreadyDurable(t *testing.T) {
	dev := NewDisk(64)
	bp, err := NewBufferPool(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := &fakeWAL{durable: 500}
	bp.SetWAL(w)
	f := dev.CreateFile()
	id, err := dev.AllocPage(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Fetch(id); err != nil {
		t.Fatal(err)
	}
	if err := bp.MarkDirty(id); err != nil {
		t.Fatal(err)
	}
	if err := bp.SetPageLSN(id, 400); err != nil {
		t.Fatal(err)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 0 {
		t.Errorf("flush forced %d WAL syncs for an already-durable LSN", w.syncs)
	}
}

// TestOpenHeapFileSkipsUninitializedPages checks OpenHeapFile tolerates
// trailing zeroed pages, which recovery leaves behind when a crash lands
// after AllocPage but before the first image of the page commits.
func TestOpenHeapFileSkipsUninitializedPages(t *testing.T) {
	dev := NewDisk(256)
	bp, err := NewBufferPool(dev, 8)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := NewHeapFile(bp, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 10; i++ {
		rid, err := hf.Append([]byte("record-payload"))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	// Trailing allocated-but-never-written pages.
	for i := 0; i < 3; i++ {
		if _, err := dev.AllocPage(hf.File()); err != nil {
			t.Fatal(err)
		}
	}
	bp2, err := NewBufferPool(dev, 8)
	if err != nil {
		t.Fatal(err)
	}
	hf2, err := OpenHeapFile(bp2, hf.File(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if hf2.NumRecords() != len(rids) {
		t.Fatalf("reopened heap has %d records, want %d", hf2.NumRecords(), len(rids))
	}
	// New inserts must go to initialized territory and stay readable.
	if _, err := hf2.Append([]byte("post-reopen")); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := hf2.Scan(func(RID, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != len(rids)+1 {
		t.Errorf("scan after reopen saw %d records, want %d", n, len(rids)+1)
	}
}
