package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// A device image is the raw page-for-page serialization of a simulated
// disk — the payload a snapshot export ships to seed a replica. It lives in
// the storage layer because it is physical I/O by definition: every page is
// read straight off the device (the rawdisk lint confines that to here),
// and the receiving side materializes a fresh healthy Disk before any
// buffer pool or recovery logic runs over it.
//
// Stream layout (all integers little-endian):
//
//	magic "SJDIMG1\n" | u32 pageSize | u32 files
//	per file: u32 numPages, then numPages raw pages of pageSize bytes
//	trailer: u32 CRC-32C (Castagnoli) of everything after the magic
//
// The trailer checksum makes a torn or truncated stream — a crash mid-
// export, a short copy — fail loudly at import instead of seeding a
// replica from a silent prefix.
var imageMagic = []byte("SJDIMG1\n")

// ErrNotAnImage reports that a stream does not begin with a device-image
// header.
var ErrNotAnImage = fmt.Errorf("storage: stream is not a device image")

// imageFiles is the enumeration hook WriteDeviceImage needs; both Disk and
// fault.Disk provide it.
type imageFiles interface {
	Files() int
}

// WriteDeviceImage streams every page of every file of dev to w. The
// device must expose its file count via Files() (storage.Disk and
// fault.Disk both do). Returns the number of pages streamed.
func WriteDeviceImage(w io.Writer, dev Device) (int, error) {
	fc, ok := dev.(imageFiles)
	if !ok {
		return 0, fmt.Errorf("storage: device %T cannot enumerate its files for imaging", dev)
	}
	files := fc.Files()
	crc := uint32(0)
	emit := func(buf []byte) error {
		crc = crc32.Update(crc, crcTable, buf)
		_, err := w.Write(buf)
		return err
	}
	if _, err := w.Write(imageMagic); err != nil {
		return 0, err
	}
	var u32 [4]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		return emit(u32[:])
	}
	if err := putU32(uint32(dev.PageSize())); err != nil {
		return 0, err
	}
	if err := putU32(uint32(files)); err != nil {
		return 0, err
	}
	pages := 0
	for f := 0; f < files; f++ {
		id := FileID(f)
		n := dev.NumPages(id)
		if err := putU32(uint32(n)); err != nil {
			return pages, err
		}
		for p := 0; p < n; p++ {
			buf, err := dev.ReadPage(PageID{File: id, Page: int32(p)})
			if err != nil {
				return pages, fmt.Errorf("storage: imaging page %d of file %d: %w", p, f, err)
			}
			if err := emit(buf); err != nil {
				return pages, err
			}
			pages++
		}
	}
	binary.LittleEndian.PutUint32(u32[:], crc)
	if _, err := w.Write(u32[:]); err != nil {
		return pages, err
	}
	return pages, nil
}

// ReadDeviceImage materializes a fresh healthy Disk from a device-image
// stream, verifying the trailer checksum before handing the disk over: a
// truncated or corrupted stream yields an error, never a partial replica.
func ReadDeviceImage(r io.Reader) (*Disk, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil || string(m[:]) != string(imageMagic) {
		return nil, ErrNotAnImage
	}
	crc := uint32(0)
	var u32 [4]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return 0, fmt.Errorf("storage: truncated device image: %w", err)
		}
		crc = crc32.Update(crc, crcTable, u32[:])
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	pageSize, err := getU32()
	if err != nil {
		return nil, err
	}
	if pageSize == 0 || pageSize > 1<<20 {
		return nil, fmt.Errorf("storage: device image page size %d out of range", pageSize)
	}
	files, err := getU32()
	if err != nil {
		return nil, err
	}
	disk := NewDisk(int(pageSize))
	buf := make([]byte, pageSize)
	for f := uint32(0); f < files; f++ {
		id := disk.CreateFile()
		n, err := getU32()
		if err != nil {
			return nil, err
		}
		for p := uint32(0); p < n; p++ {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("storage: truncated device image: %w", err)
			}
			crc = crc32.Update(crc, crcTable, buf)
			pid, err := disk.AllocPage(id)
			if err != nil {
				return nil, err
			}
			if err := disk.WritePage(pid, buf); err != nil {
				return nil, err
			}
		}
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("storage: device image missing trailer: %w", err)
	}
	if binary.LittleEndian.Uint32(u32[:]) != crc {
		return nil, fmt.Errorf("storage: device image checksum mismatch (torn or corrupted stream)")
	}
	return disk, nil
}
