package storage

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestNewPageRejectsTinySizes(t *testing.T) {
	if _, err := NewPage(16); err == nil {
		t.Fatal("expected error for tiny page")
	}
}

func TestPageInsertAndRecord(t *testing.T) {
	p, err := NewPage(256)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("alpha"), []byte("bravo-bravo"), []byte("c")}
	for i, r := range recs {
		slot, err := p.Insert(r)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if slot != i {
			t.Fatalf("slot = %d, want %d", slot, i)
		}
	}
	if p.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", p.NumRecords())
	}
	for i, want := range recs {
		got, err := p.Record(i)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d = %q, want %q", i, got, want)
		}
	}
}

func TestPageRecordOutOfRange(t *testing.T) {
	p, _ := NewPage(128)
	if _, err := p.Record(0); err == nil {
		t.Fatal("empty page should have no record 0")
	}
	p.Insert([]byte("x"))
	if _, err := p.Record(-1); err == nil {
		t.Fatal("negative slot must error")
	}
	if _, err := p.Record(1); err == nil {
		t.Fatal("slot past end must error")
	}
}

func TestPageFull(t *testing.T) {
	p, _ := NewPage(64)
	rec := make([]byte, 20)
	inserted := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if err != ErrPageFull {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		inserted++
	}
	// 64-byte page: 4 header + per record 20+4 = 24 → 2 records fit.
	if inserted != 2 {
		t.Fatalf("inserted %d records into a 64-byte page, want 2", inserted)
	}
}

func TestPageFreeSpaceDecreases(t *testing.T) {
	p, _ := NewPage(256)
	before := p.FreeSpace()
	p.Insert(make([]byte, 10))
	after := p.FreeSpace()
	if after != before-10-slotSize {
		t.Fatalf("free space went %d → %d, want decrease of %d", before, after, 10+slotSize)
	}
}

func TestPageSurvivesSerialization(t *testing.T) {
	p, _ := NewPage(128)
	p.Insert([]byte("persisted"))
	clone := pageFromBytes(append([]byte(nil), p.Bytes()...))
	got, err := clone.Record(0)
	if err != nil || string(got) != "persisted" {
		t.Fatalf("round trip failed: %q, %v", got, err)
	}
}

func TestDiskCreateAllocReadWrite(t *testing.T) {
	d := NewDisk(128)
	f := d.CreateFile()
	id, err := d.AllocPage(f)
	if err != nil {
		t.Fatal(err)
	}
	if id != (PageID{File: f, Page: 0}) {
		t.Fatalf("first page id = %v", id)
	}
	buf := make([]byte, 128)
	copy(buf, "hello disk")
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:10], []byte("hello disk")) {
		t.Fatalf("read back %q", got[:10])
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskInvalidAccess(t *testing.T) {
	d := NewDisk(128)
	if _, err := d.ReadPage(PageID{File: 99, Page: 0}); err == nil {
		t.Error("read of unknown file must fail")
	}
	f := d.CreateFile()
	if _, err := d.ReadPage(PageID{File: f, Page: 0}); err == nil {
		t.Error("read past end of file must fail")
	}
	if _, err := d.AllocPage(FileID(42)); err == nil {
		t.Error("alloc on unknown file must fail")
	}
	d.AllocPage(f)
	if err := d.WritePage(PageID{File: f, Page: 0}, make([]byte, 64)); err == nil {
		t.Error("short write must fail")
	}
}

func TestDiskReadReturnsCopy(t *testing.T) {
	d := NewDisk(128)
	f := d.CreateFile()
	id, _ := d.AllocPage(f)
	buf := make([]byte, 128)
	buf[0] = 7
	d.WritePage(id, buf)
	got, _ := d.ReadPage(id)
	got[0] = 99
	again, _ := d.ReadPage(id)
	if again[0] != 7 {
		t.Fatal("mutating a read buffer must not affect the disk")
	}
}

func TestDiskResetStats(t *testing.T) {
	d := NewDisk(128)
	f := d.CreateFile()
	id, _ := d.AllocPage(f)
	d.WritePage(id, make([]byte, 128))
	d.ResetStats()
	if s := d.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func newPoolT(t *testing.T, pageSize, capacity int) (*Disk, *BufferPool) {
	t.Helper()
	d := NewDisk(pageSize)
	bp, err := NewBufferPool(d, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return d, bp
}

// allocInit allocates a page and initializes it as an empty slotted page.
func allocInit(t *testing.T, d *Disk, f FileID) PageID {
	t.Helper()
	id, err := d.AllocPage(f)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewPage(d.PageSize())
	if err := d.WritePage(id, p.Bytes()); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestBufferPoolHitAndMiss(t *testing.T) {
	d, bp := newPoolT(t, 128, 4)
	f := d.CreateFile()
	id := allocInit(t, d, f)
	d.ResetStats()

	if _, err := bp.Fetch(id); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Fetch(id); err != nil {
		t.Fatal(err)
	}
	s := bp.Stats()
	if s.LogicalReads != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 logical / 1 miss", s)
	}
	if hr := s.HitRatio(); hr != 0.5 {
		t.Fatalf("hit ratio = %g", hr)
	}
	if ds := d.Stats(); ds.Reads != 1 {
		t.Fatalf("disk reads = %d, want 1", ds.Reads)
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	d, bp := newPoolT(t, 128, 2)
	f := d.CreateFile()
	a := allocInit(t, d, f)
	b := allocInit(t, d, f)
	c := allocInit(t, d, f)

	bp.Fetch(a)
	bp.Fetch(b)
	bp.Fetch(a) // a is now MRU; b is LRU
	bp.Fetch(c) // evicts b
	if bp.Resident(b) {
		t.Fatal("b should have been evicted (LRU)")
	}
	if !bp.Resident(a) || !bp.Resident(c) {
		t.Fatal("a and c should be resident")
	}
	if ev := bp.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d", ev)
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	d, bp := newPoolT(t, 128, 2)
	f := d.CreateFile()
	a := allocInit(t, d, f)
	b := allocInit(t, d, f)
	c := allocInit(t, d, f)

	if _, err := bp.Pin(a); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := bp.Unpin(a); err != nil {
			t.Error(err)
		}
	}()
	bp.Fetch(b)
	bp.Fetch(c) // must evict b, not pinned a
	if !bp.Resident(a) {
		t.Fatal("pinned page was evicted")
	}
	if bp.Resident(b) {
		t.Fatal("b should have been evicted instead")
	}
}

func TestBufferPoolAllPinnedFails(t *testing.T) {
	d, bp := newPoolT(t, 128, 1)
	f := d.CreateFile()
	a := allocInit(t, d, f)
	b := allocInit(t, d, f)
	//sjlint:ignore pinunpin the frame must stay pinned so Fetch has no victim; the pool is test-scoped
	bp.Pin(a)
	if _, err := bp.Fetch(b); err == nil {
		t.Fatal("fetch must fail when every frame is pinned")
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	d, bp := newPoolT(t, 128, 2)
	f := d.CreateFile()
	a := allocInit(t, d, f)
	if err := bp.Unpin(a); err == nil {
		t.Fatal("unpin of non-resident page must fail")
	}
	bp.Fetch(a)
	if err := bp.Unpin(a); err == nil {
		t.Fatal("unpin of unpinned page must fail")
	}
}

func TestBufferPoolDirtyWriteBackOnEviction(t *testing.T) {
	d, bp := newPoolT(t, 128, 1)
	f := d.CreateFile()
	a := allocInit(t, d, f)
	b := allocInit(t, d, f)

	p, _ := bp.Fetch(a)
	p.Insert([]byte("dirty"))
	bp.MarkDirty(a)
	bp.Fetch(b) // evicts a, must write it back

	buf, _ := d.ReadPage(a)
	rec, err := pageFromBytes(buf).Record(0)
	if err != nil || string(rec) != "dirty" {
		t.Fatalf("dirty page lost on eviction: %q, %v", rec, err)
	}
}

func TestBufferPoolFlush(t *testing.T) {
	d, bp := newPoolT(t, 128, 4)
	f := d.CreateFile()
	a := allocInit(t, d, f)
	p, _ := bp.Fetch(a)
	p.Insert([]byte("flushed"))
	bp.MarkDirty(a)
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	buf, _ := d.ReadPage(a)
	if rec, _ := pageFromBytes(buf).Record(0); string(rec) != "flushed" {
		t.Fatalf("flush did not persist: %q", rec)
	}
	if !bp.Resident(a) {
		t.Fatal("flush must keep pages resident")
	}
}

func TestBufferPoolDropAll(t *testing.T) {
	d, bp := newPoolT(t, 128, 4)
	f := d.CreateFile()
	a := allocInit(t, d, f)
	bp.Fetch(a)
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	if bp.Resident(a) {
		t.Fatal("page still resident after DropAll")
	}
	//sjlint:ignore pinunpin pin held deliberately so DropAll has a reason to refuse
	bp.Pin(a)
	if err := bp.DropAll(); err == nil {
		t.Fatal("DropAll must refuse with pinned pages")
	}
}

func TestBufferPoolMarkDirtyNonResident(t *testing.T) {
	d, bp := newPoolT(t, 128, 2)
	f := d.CreateFile()
	a := allocInit(t, d, f)
	if err := bp.MarkDirty(a); err == nil {
		t.Fatal("MarkDirty of non-resident page must fail")
	}
}

func TestNewBufferPoolRejectsZeroCapacity(t *testing.T) {
	if _, err := NewBufferPool(NewDisk(128), 0); err == nil {
		t.Fatal("capacity 0 must be rejected")
	}
}

func TestHeapFileAppendGet(t *testing.T) {
	d, bp := newPoolT(t, 256, 8)
	_ = d
	h, err := NewHeapFile(bp, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 50; i++ {
		rid, err := h.Append([]byte(fmt.Sprintf("record-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if h.NumRecords() != 50 {
		t.Fatalf("NumRecords = %d", h.NumRecords())
	}
	for i, rid := range rids {
		rec, err := h.Get(rid)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if want := fmt.Sprintf("record-%02d", i); string(rec) != want {
			t.Fatalf("record %d = %q, want %q", i, rec, want)
		}
	}
}

func TestHeapFileFillFactorControlsDensity(t *testing.T) {
	_, bp := newPoolT(t, 2000, 64)
	full, _ := NewHeapFile(bp, 1.0)
	sparse, _ := NewHeapFile(bp, 0.5)
	rec := make([]byte, 300) // the paper's tuple size v
	for i := 0; i < 100; i++ {
		if _, err := full.Append(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := sparse.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if full.NumPages() >= sparse.NumPages() {
		t.Fatalf("fill factor 0.5 should need more pages: full=%d sparse=%d",
			full.NumPages(), sparse.NumPages())
	}
	// v=300, s=2000, l≈0.75 gives the paper's m=5; check our l=1.0 packs 6
	// and l=0.5 packs 3 records per page (304 bytes incl. slot each).
	if got := 100.0 / float64(full.NumPages()); got > 6.5 || got < 5.5 {
		t.Errorf("records/page at l=1.0 = %g, want ≈6", got)
	}
	if got := 100.0 / float64(sparse.NumPages()); got > 3.5 || got < 2.5 {
		t.Errorf("records/page at l=0.5 = %g, want ≈3", got)
	}
}

func TestHeapFileRejectsOversizeRecord(t *testing.T) {
	_, bp := newPoolT(t, 256, 4)
	h, _ := NewHeapFile(bp, 1.0)
	if _, err := h.Append(make([]byte, 300)); err == nil {
		t.Fatal("oversize record must be rejected")
	}
}

func TestHeapFileRejectsBadFillFactor(t *testing.T) {
	_, bp := newPoolT(t, 256, 4)
	for _, ff := range []float64{0, -1, 1.5} {
		if _, err := NewHeapFile(bp, ff); err == nil {
			t.Fatalf("fill factor %g must be rejected", ff)
		}
	}
}

func TestHeapFileScanOrderAndEarlyStop(t *testing.T) {
	_, bp := newPoolT(t, 256, 8)
	h, _ := NewHeapFile(bp, 1.0)
	for i := 0; i < 30; i++ {
		h.Append([]byte{byte(i)})
	}
	var seen []byte
	h.Scan(func(_ RID, rec []byte) bool {
		seen = append(seen, rec[0])
		return len(seen) < 10
	})
	if len(seen) != 10 {
		t.Fatalf("early stop failed: saw %d", len(seen))
	}
	for i, v := range seen {
		if int(v) != i {
			t.Fatalf("scan order broken at %d: %d", i, v)
		}
	}
}

func TestHeapFileSurvivesEviction(t *testing.T) {
	// A 2-frame pool forces every page through eviction; data must persist.
	_, bp := newPoolT(t, 256, 2)
	h, _ := NewHeapFile(bp, 1.0)
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := h.Append([]byte(fmt.Sprintf("v%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		rec, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("v%03d", i); string(rec) != want {
			t.Fatalf("record %d = %q after eviction, want %q", i, rec, want)
		}
	}
}

func TestHeapFileScanCountsPageIO(t *testing.T) {
	_, bp := newPoolT(t, 256, 64)
	h, _ := NewHeapFile(bp, 1.0)
	for i := 0; i < 60; i++ {
		h.Append(make([]byte, 20))
	}
	bp.Flush()
	bp.DropAll()
	bp.ResetStats()
	h.Scan(func(RID, []byte) bool { return true })
	s := bp.Stats()
	if int(s.Misses) != h.NumPages() {
		t.Fatalf("cold scan misses = %d, want one per page (%d)", s.Misses, h.NumPages())
	}
}

func TestAccessors(t *testing.T) {
	d := NewDisk(0)
	if d.PageSize() != DefaultPageSize {
		t.Fatalf("default page size = %d", d.PageSize())
	}
	bp, _ := NewBufferPool(d, 7)
	if bp.Capacity() != 7 {
		t.Fatalf("capacity = %d", bp.Capacity())
	}
	if bp.Disk() != d {
		t.Fatal("Disk accessor broken")
	}
	if (PoolStats{}).HitRatio() != 0 {
		t.Fatal("empty pool hit ratio must be 0")
	}
	p, _ := NewPage(128)
	if p.Size() != 128 {
		t.Fatalf("page size = %d", p.Size())
	}
	h, _ := NewHeapFile(bp, 1.0)
	if h.File() != FileID(0) {
		t.Fatalf("heap file id = %d", h.File())
	}
}

func TestStringers(t *testing.T) {
	id := PageID{File: 2, Page: 5}
	if id.String() != "f2:p5" {
		t.Fatalf("PageID string = %q", id)
	}
	rid := RID{Page: id, Slot: 3}
	if rid.String() != "f2:p5:s3" {
		t.Fatalf("RID string = %q", rid)
	}
}

func TestPageOversizeRecordSlot(t *testing.T) {
	// A record larger than the uint16 slot length must be rejected by the
	// page even if the page were hypothetically large enough.
	p, err := NewPage(70000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(make([]byte, 66000)); err == nil {
		t.Fatal("oversize record must be rejected")
	}
}

// flakyDevice wraps a healthy Disk with scripted failures. It stands in for
// internal/fault, which cannot be imported here without a cycle; only the
// error classification contract (Transient/Permanent methods) is shared.
type flakyDevice struct {
	*Disk
	failReads  map[PageID]int  // remaining transient read failures per page
	failWrites map[PageID]int  // remaining transient write failures per page
	stuckWrite map[PageID]bool // writes fail permanently
	corrupt    map[PageID]int  // remaining reads with a flipped byte (-1: always)
}

func newFlaky(pageSize int) *flakyDevice {
	return &flakyDevice{
		Disk:       NewDisk(pageSize),
		failReads:  make(map[PageID]int),
		failWrites: make(map[PageID]int),
		stuckWrite: make(map[PageID]bool),
		corrupt:    make(map[PageID]int),
	}
}

type transientErr struct{}

func (transientErr) Error() string   { return "flaky: transient fault" }
func (transientErr) Transient() bool { return true }

type permanentErr struct{}

func (permanentErr) Error() string   { return "flaky: permanent fault" }
func (permanentErr) Transient() bool { return false }
func (permanentErr) Permanent() bool { return true }

func (d *flakyDevice) ReadPage(id PageID) ([]byte, error) {
	if d.failReads[id] > 0 {
		d.failReads[id]--
		return nil, transientErr{}
	}
	buf, err := d.Disk.ReadPage(id)
	if err != nil {
		return nil, err
	}
	if n := d.corrupt[id]; n != 0 {
		if n > 0 {
			d.corrupt[id]--
		}
		buf[0] ^= 0xff
	}
	return buf, nil
}

func (d *flakyDevice) WritePage(id PageID, buf []byte) error {
	if d.stuckWrite[id] {
		return permanentErr{}
	}
	if d.failWrites[id] > 0 {
		d.failWrites[id]--
		return transientErr{}
	}
	return d.Disk.WritePage(id, buf)
}

// newFlakyPool builds a pool over a flaky device with zero-delay retries so
// fault tests run at full speed.
func newFlakyPool(t *testing.T, capacity, attempts int) (*flakyDevice, *BufferPool) {
	t.Helper()
	d := newFlaky(128)
	bp, err := NewBufferPool(d, capacity)
	if err != nil {
		t.Fatal(err)
	}
	bp.SetRetryPolicy(RetryPolicy{MaxAttempts: attempts})
	return d, bp
}

func TestBufferPoolDoubleUnpinNeverGoesNegative(t *testing.T) {
	d, bp := newPoolT(t, 128, 2)
	f := d.CreateFile()
	a := allocInit(t, d, f)
	b := allocInit(t, d, f)
	c := allocInit(t, d, f)

	//sjlint:ignore pinunpin deliberately unbalanced: this test walks the pin count through every edge case
	bp.Pin(a)
	bp.Pin(a) // pin count 2
	if err := bp.Unpin(a); err != nil {
		t.Fatal(err)
	}
	// One pin remains: the page must still be unevictable.
	bp.Fetch(b)
	if _, err := bp.Fetch(c); err != nil {
		t.Fatal(err)
	}
	if !bp.Resident(a) {
		t.Fatal("page with a remaining pin was evicted after a partial unpin")
	}
	if err := bp.Unpin(a); err != nil {
		t.Fatal(err)
	}
	// Pin count is now 0; a further Unpin must error, not drive it to -1
	// (which would let a later Pin be cancelled by the stale unpin).
	if err := bp.Unpin(a); err == nil {
		t.Fatal("double unpin must fail")
	}
	//sjlint:ignore pinunpin final pin intentionally outlives the test to prove the count recovered
	if _, err := bp.Pin(a); err != nil {
		t.Fatal(err)
	}
	bp.Fetch(b)
	bp.Fetch(c)
	if !bp.Resident(a) {
		t.Fatal("double unpin corrupted the pin count: repinned page was evicted")
	}
}

func TestPoolRetriesTransientReadsThenSucceeds(t *testing.T) {
	d, bp := newFlakyPool(t, 4, 4)
	f := d.CreateFile()
	id := allocInit(t, d.Disk, f)
	d.failReads[id] = 2

	if _, err := bp.Fetch(id); err != nil {
		t.Fatalf("fetch with 2 transient faults and budget 4: %v", err)
	}
	if s := bp.Stats(); s.ReadRetries != 2 {
		t.Fatalf("ReadRetries = %d, want 2", s.ReadRetries)
	}
}

func TestPoolReadRetryBudgetExhausted(t *testing.T) {
	d, bp := newFlakyPool(t, 4, 3)
	f := d.CreateFile()
	id := allocInit(t, d.Disk, f)
	d.failReads[id] = 100

	_, err := bp.Fetch(id)
	if err == nil {
		t.Fatal("fetch must fail when faults outlast the budget")
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted-budget error lost its classification: %v", err)
	}
	if s := bp.Stats(); s.ReadRetries != 2 {
		t.Fatalf("ReadRetries = %d, want budget-1 = 2", s.ReadRetries)
	}
}

func TestPoolChecksumMismatchRetriedThenTyped(t *testing.T) {
	d, bp := newFlakyPool(t, 4, 3)
	f := d.CreateFile()
	id := allocInit(t, d.Disk, f)

	// One-shot in-flight corruption: the re-read returns clean bytes.
	d.corrupt[id] = 1
	if _, err := bp.Fetch(id); err != nil {
		t.Fatalf("one-shot corruption with retry budget: %v", err)
	}
	if s := bp.Stats(); s.ReadRetries != 1 {
		t.Fatalf("ReadRetries = %d, want 1", s.ReadRetries)
	}

	// Persistent corruption: every retry sees garbage; the typed checksum
	// error must surface rather than corrupt bytes.
	bp.DropAll()
	bp.ResetStats()
	d.corrupt[id] = -1
	_, err := bp.Fetch(id)
	if err == nil {
		t.Fatal("persistently corrupted page must not be served")
	}
	if !IsChecksum(err) {
		t.Fatalf("error is not a checksum mismatch: %v", err)
	}
	if IsTransient(err) {
		t.Fatalf("checksum error misclassified as transient: %v", err)
	}
	if s := bp.Stats(); s.ReadRetries != 2 {
		t.Fatalf("ReadRetries = %d, want budget-1 = 2", s.ReadRetries)
	}
}

func TestEvictionSkipsUnwritableVictim(t *testing.T) {
	d, bp := newFlakyPool(t, 2, 2)
	f := d.CreateFile()
	a := allocInit(t, d.Disk, f)
	b := allocInit(t, d.Disk, f)
	c := allocInit(t, d.Disk, f)

	pa, _ := bp.Fetch(a)
	pa.Insert([]byte("precious"))
	bp.MarkDirty(a)
	d.stuckWrite[a] = true
	bp.Fetch(b) // a is LRU and dirty but unwritable
	if _, err := bp.Fetch(c); err != nil {
		t.Fatalf("eviction must skip the unwritable victim and take b: %v", err)
	}
	if !bp.Resident(a) || !bp.Dirty(a) {
		t.Fatal("unwritable dirty victim must stay resident and dirty")
	}
	if bp.Resident(b) {
		t.Fatal("clean frame b should have been evicted instead")
	}

	// Once the device heals, the preserved modification must still flush.
	d.stuckWrite[a] = false
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	buf, _ := d.Disk.ReadPage(a)
	if rec, _ := pageFromBytes(buf).Record(0); string(rec) != "precious" {
		t.Fatalf("modification lost across failed eviction: %q", rec)
	}
}

func TestEvictionFailsTypedWhenNoVictimWritable(t *testing.T) {
	d, bp := newFlakyPool(t, 1, 2)
	f := d.CreateFile()
	a := allocInit(t, d.Disk, f)
	b := allocInit(t, d.Disk, f)

	pa, _ := bp.Fetch(a)
	pa.Insert([]byte("keep"))
	bp.MarkDirty(a)
	d.stuckWrite[a] = true
	_, err := bp.Fetch(b)
	if err == nil {
		t.Fatal("fetch must fail when the only victim is unwritable")
	}
	if IsTransient(err) {
		t.Fatalf("permanent write-back failure misclassified: %v", err)
	}
	if !bp.Resident(a) || !bp.Dirty(a) {
		t.Fatal("failed eviction must not lose the dirty frame")
	}
}

func TestFlushKeepsFailedFrameDirtyFlushesRest(t *testing.T) {
	d, bp := newFlakyPool(t, 4, 2)
	f := d.CreateFile()
	a := allocInit(t, d.Disk, f)
	b := allocInit(t, d.Disk, f)

	pa, _ := bp.Fetch(a)
	pa.Insert([]byte("stuck"))
	bp.MarkDirty(a)
	pb, _ := bp.Fetch(b)
	pb.Insert([]byte("fine"))
	bp.MarkDirty(b)

	d.stuckWrite[a] = true
	if err := bp.Flush(); err == nil {
		t.Fatal("flush with an unwritable frame must report the failure")
	}
	if !bp.Dirty(a) {
		t.Fatal("frame whose write-back failed must stay dirty")
	}
	if bp.Dirty(b) {
		t.Fatal("flush must still write the other dirty frames")
	}
	buf, _ := d.Disk.ReadPage(b)
	if rec, _ := pageFromBytes(buf).Record(0); string(rec) != "fine" {
		t.Fatalf("healthy frame not flushed: %q", rec)
	}

	d.stuckWrite[a] = false
	if err := bp.Flush(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	buf, _ = d.Disk.ReadPage(a)
	if rec, _ := pageFromBytes(buf).Record(0); string(rec) != "stuck" {
		t.Fatalf("retried flush lost the modification: %q", rec)
	}
}

func TestDropAllPartialFailureIsRetryable(t *testing.T) {
	d, bp := newFlakyPool(t, 4, 2)
	f := d.CreateFile()
	a := allocInit(t, d.Disk, f)
	b := allocInit(t, d.Disk, f)

	pa, _ := bp.Fetch(a)
	pa.Insert([]byte("held"))
	bp.MarkDirty(a)
	pb, _ := bp.Fetch(b)
	pb.Insert([]byte("safe"))
	bp.MarkDirty(b)

	d.stuckWrite[a] = true
	if err := bp.DropAll(); err == nil {
		t.Fatal("DropAll with an unwritable frame must fail")
	}
	// Nothing was dropped: the failed frame keeps its modification in
	// memory, and the flushed frame is clean but still resident.
	if !bp.Resident(a) || !bp.Resident(b) {
		t.Fatal("DropAll must not drop frames on a partial failure")
	}
	if !bp.Dirty(a) || bp.Dirty(b) {
		t.Fatalf("dirty bits wrong after partial DropAll: a=%v b=%v", bp.Dirty(a), bp.Dirty(b))
	}

	d.stuckWrite[a] = false
	if err := bp.DropAll(); err != nil {
		t.Fatalf("DropAll retry after heal: %v", err)
	}
	if bp.Resident(a) || bp.Resident(b) {
		t.Fatal("retried DropAll must empty the pool")
	}
	buf, _ := d.Disk.ReadPage(a)
	if rec, _ := pageFromBytes(buf).Record(0); string(rec) != "held" {
		t.Fatalf("modification lost across retried DropAll: %q", rec)
	}
}

func TestPoolWriteRetriesTransientOnly(t *testing.T) {
	d, bp := newFlakyPool(t, 4, 4)
	f := d.CreateFile()
	a := allocInit(t, d.Disk, f)
	pa, _ := bp.Fetch(a)
	pa.Insert([]byte("retried"))
	bp.MarkDirty(a)
	d.failWrites[a] = 2
	if err := bp.Flush(); err != nil {
		t.Fatalf("flush with 2 transient write faults and budget 4: %v", err)
	}
	if s := bp.Stats(); s.WriteRetries != 2 {
		t.Fatalf("WriteRetries = %d, want 2", s.WriteRetries)
	}
	buf, _ := d.Disk.ReadPage(a)
	if rec, _ := pageFromBytes(buf).Record(0); string(rec) != "retried" {
		t.Fatalf("retried write lost data: %q", rec)
	}
}

func TestRetryPolicyBackoffDeterministicAndBounded(t *testing.T) {
	record := func(seed int64) []time.Duration {
		var delays []time.Duration
		p := RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   100 * time.Microsecond,
			MaxDelay:    400 * time.Microsecond,
			Seed:        seed,
			sleep:       func(d time.Duration) { delays = append(delays, d) },
		}
		id := PageID{File: 3, Page: 9}
		for retry := 1; retry <= 5; retry++ {
			p.pause(retry, id)
		}
		return delays
	}
	a, b := record(42), record(42)
	if len(a) != 5 {
		t.Fatalf("recorded %d delays, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff not deterministic at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	// Jitter stays in [50%, 100%] of the doubled-then-capped backoff.
	want := []time.Duration{100, 200, 400, 400, 400} // microseconds, pre-jitter
	for i, d := range a {
		hi := want[i] * time.Microsecond
		lo := hi / 2
		if d < lo || d > hi {
			t.Fatalf("retry %d delay %v outside [%v, %v]", i+1, d, lo, hi)
		}
	}
	if c := record(43); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds should jitter differently")
	}
}
