// Package storage simulates the disk subsystem of the paper's cost model: a
// paged "disk", slotted pages, and an LRU buffer pool of M pages with
// physical-I/O accounting. The join strategies run on top of this layer so
// that the number of page accesses they incur can be measured and compared
// against the analytical model (parameters s, l, M, C_IO of Table 2).
//
// The simulation stores real bytes: records written through a HeapFile are
// durable on the simulated disk and survive buffer-pool eviction, which
// keeps the executors honest about what re-reading a page costs.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultPageSize is the paper's disk-page size s (Table 3: 2000 bytes).
const DefaultPageSize = 2000

// pageHeaderSize is the fixed header of a slotted page: record count (2) and
// free-space offset (2).
const pageHeaderSize = 4

// slotSize is the per-record slot entry: record offset (2) and length (2).
const slotSize = 4

// ErrPageFull is returned by Page.Insert when the record does not fit.
var ErrPageFull = errors.New("storage: page full")

// Page is a slotted data page. Records grow from the front of the payload
// area; the slot directory grows from the back. The layout is:
//
//	[count u16][free u16][record 0][record 1]... ...[slot 1][slot 0]
type Page struct {
	buf []byte
}

// NewPage returns an empty page of the given size. Sizes below 64 bytes are
// rejected to keep the header/slot arithmetic meaningful.
func NewPage(size int) (*Page, error) {
	if size < 64 {
		return nil, fmt.Errorf("storage: page size %d too small", size)
	}
	p := &Page{buf: make([]byte, size)}
	p.setCount(0)
	p.setFree(pageHeaderSize)
	return p, nil
}

// pageFromBytes wraps an existing buffer (e.g. read from disk) as a Page.
func pageFromBytes(buf []byte) *Page { return &Page{buf: buf} }

// Bytes returns the raw page image.
func (p *Page) Bytes() []byte { return p.buf }

// Size returns the page size in bytes.
func (p *Page) Size() int { return len(p.buf) }

func (p *Page) count() int      { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }
func (p *Page) setCount(n int)  { binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *Page) free() int       { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *Page) setFree(off int) { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(off)) }

// slotPos returns the byte offset of slot i's directory entry.
func (p *Page) slotPos(i int) int { return len(p.buf) - (i+1)*slotSize }

// NumRecords returns the number of records stored on the page.
func (p *Page) NumRecords() int { return p.count() }

// initialized reports whether the page has ever held a slotted-page header:
// NewPage sets free to pageHeaderSize even on an empty page, so an
// all-zero header identifies a page that was allocated on the device but
// never written back (e.g. because a crash landed first).
func (p *Page) initialized() bool { return p.count() != 0 || p.free() != 0 }

// FreeSpace returns the number of payload bytes still available for one more
// record including its slot entry.
func (p *Page) FreeSpace() int {
	return p.slotPos(p.count()-1) - p.free() - slotSize
}

// Insert stores rec on the page and returns its slot number.
func (p *Page) Insert(rec []byte) (slot int, err error) {
	if len(rec) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	if len(rec) > 0xFFFF {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds slot capacity", len(rec))
	}
	off := p.free()
	copy(p.buf[off:], rec)
	slot = p.count()
	sp := p.slotPos(slot)
	binary.LittleEndian.PutUint16(p.buf[sp:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[sp+2:], uint16(len(rec)))
	p.setFree(off + len(rec))
	p.setCount(slot + 1)
	return slot, nil
}

// Record returns the bytes of the record in the given slot. The returned
// slice aliases the page buffer; callers that retain it across page
// evictions must copy.
func (p *Page) Record(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.count() {
		return nil, fmt.Errorf("storage: slot %d out of range (page has %d records)", slot, p.count())
	}
	sp := p.slotPos(slot)
	off := int(binary.LittleEndian.Uint16(p.buf[sp:]))
	n := int(binary.LittleEndian.Uint16(p.buf[sp+2:]))
	return p.buf[off : off+n], nil
}
