package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// FileID identifies a simulated file on the Disk.
type FileID int32

// PageID addresses one page of one file.
type PageID struct {
	File FileID
	Page int32
}

// String implements fmt.Stringer.
func (id PageID) String() string { return fmt.Sprintf("f%d:p%d", id.File, id.Page) }

// DiskStats counts the physical page transfers the simulated disk performed.
type DiskStats struct {
	Reads  int64
	Writes int64
}

// Disk is the simulated persistent store: a collection of files, each an
// extendable array of fixed-size pages. All access goes through ReadPage /
// WritePage, which count physical transfers. Disk is safe for concurrent
// use; the transfer counters are atomics so statistics snapshots do not
// serialize against page I/O.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	files    map[FileID][][]byte
	nextFile FileID

	reads  atomic.Int64
	writes atomic.Int64
}

// NewDisk returns an empty disk with the given page size (DefaultPageSize
// when size ≤ 0).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{
		pageSize: pageSize,
		files:    make(map[FileID][][]byte),
	}
}

// PageSize returns the disk's page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// CreateFile allocates a new empty file and returns its id.
func (d *Disk) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextFile
	d.nextFile++
	d.files[id] = nil
	return id
}

// AllocPage appends a fresh zeroed page to the file and returns its id.
// Page allocation itself is not counted as I/O; the subsequent write is.
func (d *Disk) AllocPage(f FileID) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[f]
	if !ok {
		return PageID{}, fmt.Errorf("storage: unknown file %d", f)
	}
	d.files[f] = append(pages, make([]byte, d.pageSize))
	return PageID{File: f, Page: int32(len(pages))}, nil
}

// NumPages returns the number of pages in file f.
func (d *Disk) NumPages(f FileID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files[f])
}

// ReadPage copies the page's content into a fresh buffer and counts one
// physical read.
func (d *Disk) ReadPage(id PageID) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[id.File]
	if !ok || int(id.Page) < 0 || int(id.Page) >= len(pages) {
		return nil, fmt.Errorf("storage: read of invalid page %v", id)
	}
	d.reads.Add(1)
	buf := make([]byte, d.pageSize)
	copy(buf, pages[id.Page])
	return buf, nil
}

// WritePage stores buf as the page's content and counts one physical write.
func (d *Disk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[id.File]
	if !ok || int(id.Page) < 0 || int(id.Page) >= len(pages) {
		return fmt.Errorf("storage: write of invalid page %v", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: write of %d bytes to %d-byte page", len(buf), d.pageSize)
	}
	d.writes.Add(1)
	copy(pages[id.Page], buf)
	return nil
}

// Stats returns a snapshot of the physical I/O counters.
func (d *Disk) Stats() DiskStats {
	return DiskStats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// ResetStats zeroes the physical I/O counters.
func (d *Disk) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
}
