package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// FileID identifies a simulated file on the Disk.
type FileID int32

// PageID addresses one page of one file.
type PageID struct {
	File FileID
	Page int32
}

// String implements fmt.Stringer.
func (id PageID) String() string { return fmt.Sprintf("f%d:p%d", id.File, id.Page) }

// DiskStats counts the physical page transfers the simulated disk performed.
// Reads and Writes are successful transfers; ReadFaults and WriteFaults are
// failed or faulty physical attempts reported by a fault-injecting device
// (always zero on a healthy Disk). The total physical attempt count of a
// device is therefore Reads+ReadFaults and Writes+WriteFaults.
type DiskStats struct {
	Reads       int64
	Writes      int64
	ReadFaults  int64
	WriteFaults int64
}

// Device is the disk surface the buffer pool drives: a collection of files,
// each an extendable array of fixed-size pages, with per-page checksums and
// physical-transfer accounting. Disk is the healthy in-memory
// implementation; internal/fault wraps any Device with an injected fault
// schedule. All implementations must be safe for concurrent use.
type Device interface {
	// PageSize returns the page size in bytes.
	PageSize() int
	// CreateFile allocates a new empty file.
	CreateFile() FileID
	// AllocPage appends a fresh zeroed page to the file.
	AllocPage(f FileID) (PageID, error)
	// NumPages returns the number of pages in file f.
	NumPages(f FileID) int
	// ReadPage returns a fresh copy of the page's content.
	ReadPage(id PageID) ([]byte, error)
	// WritePage stores buf as the page's content.
	WritePage(id PageID, buf []byte) error
	// Checksum returns the expected CRC of the page's current content, as
	// recorded at the last successful write. The bool is false when the
	// page is unknown to the device.
	Checksum(id PageID) (uint32, bool)
	// Stats returns a snapshot of the physical transfer counters.
	Stats() DiskStats
	// ResetStats zeroes the physical transfer counters.
	ResetStats()
}

// crcTable is the polynomial used for page checksums (Castagnoli, the
// polynomial real storage engines use for its error-detection properties).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PageChecksum returns the CRC-32C of a page image.
func PageChecksum(buf []byte) uint32 { return crc32.Checksum(buf, crcTable) }

// ChecksumError reports that a page's content did not match the checksum
// recorded at its last write: the bytes were corrupted on the device or in
// flight. It classifies as permanent — the stored data cannot be trusted —
// though the buffer pool still retries reads once more in case the
// corruption happened in transit.
type ChecksumError struct {
	Page PageID
	Want uint32
	Got  uint32
}

// Error implements the error interface.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("storage: checksum mismatch on page %v: want %08x, got %08x",
		e.Page, e.Want, e.Got)
}

// Permanent reports that a checksum failure means lost data, not a retryable
// condition.
func (e *ChecksumError) Permanent() bool { return true }

// Transient reports false: corrupted bytes do not heal by waiting.
func (e *ChecksumError) Transient() bool { return false }

// IsTransient reports whether err (or anything it wraps) classifies itself
// as transient via a `Transient() bool` method — the contract implemented
// by internal/fault's injected errors. Transient failures are worth
// retrying; everything else is not.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// IsChecksum reports whether err wraps a page checksum mismatch.
func IsChecksum(err error) bool {
	var c *ChecksumError
	return errors.As(err, &c)
}

// Disk is the healthy simulated persistent store. All access goes through
// ReadPage / WritePage, which count physical transfers and maintain a
// CRC-32C per page, verified on every read. Disk is safe for concurrent
// use; the transfer counters are atomics so statistics snapshots do not
// serialize against page I/O.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	files    map[FileID][][]byte
	sums     map[PageID]uint32
	nextFile FileID
	zeroSum  uint32

	reads  atomic.Int64
	writes atomic.Int64
}

// NewDisk returns an empty disk with the given page size (DefaultPageSize
// when size ≤ 0).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{
		pageSize: pageSize,
		files:    make(map[FileID][][]byte),
		sums:     make(map[PageID]uint32),
		zeroSum:  PageChecksum(make([]byte, pageSize)),
	}
}

// PageSize returns the disk's page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// Files returns the number of files on the disk. File IDs are dense, so
// the files are exactly 0..Files()-1 — the enumeration a snapshot export
// walks to stream every page.
func (d *Disk) Files() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.nextFile)
}

// CreateFile allocates a new empty file and returns its id.
func (d *Disk) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextFile
	d.nextFile++
	d.files[id] = nil
	return id
}

// AllocPage appends a fresh zeroed page to the file and returns its id.
// Page allocation itself is not counted as I/O; the subsequent write is.
func (d *Disk) AllocPage(f FileID) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[f]
	if !ok {
		return PageID{}, fmt.Errorf("storage: unknown file %d", f)
	}
	d.files[f] = append(pages, make([]byte, d.pageSize))
	id := PageID{File: f, Page: int32(len(pages))}
	d.sums[id] = d.zeroSum
	return id, nil
}

// NumPages returns the number of pages in file f.
func (d *Disk) NumPages(f FileID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files[f])
}

// ReadPage copies the page's content into a fresh buffer, verifies it
// against the checksum recorded at the last write (the media scrub), and
// counts one physical read.
func (d *Disk) ReadPage(id PageID) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[id.File]
	if !ok || int(id.Page) < 0 || int(id.Page) >= len(pages) {
		return nil, fmt.Errorf("storage: read of invalid page %v", id)
	}
	d.reads.Add(1)
	buf := make([]byte, d.pageSize)
	copy(buf, pages[id.Page])
	if want, ok := d.sums[id]; ok {
		if got := PageChecksum(buf); got != want {
			return nil, &ChecksumError{Page: id, Want: want, Got: got}
		}
	}
	return buf, nil
}

// WritePage stores buf as the page's content, records its checksum, and
// counts one physical write.
func (d *Disk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[id.File]
	if !ok || int(id.Page) < 0 || int(id.Page) >= len(pages) {
		return fmt.Errorf("storage: write of invalid page %v", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: write of %d bytes to %d-byte page", len(buf), d.pageSize)
	}
	d.writes.Add(1)
	copy(pages[id.Page], buf)
	d.sums[id] = PageChecksum(buf)
	return nil
}

// Checksum returns the page's recorded CRC-32C.
func (d *Disk) Checksum(id PageID) (uint32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sum, ok := d.sums[id]
	return sum, ok
}

// Stats returns a snapshot of the physical I/O counters.
func (d *Disk) Stats() DiskStats {
	return DiskStats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// ResetStats zeroes the physical I/O counters.
func (d *Disk) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
}
