package storage

import (
	"time"
)

// RetryPolicy bounds how the buffer pool re-drives a failed physical page
// transfer: up to MaxAttempts total attempts per operation, separated by
// capped exponential backoff with deterministic jitter. Only transient
// failures (see IsTransient) and checksum mismatches — which may be
// in-flight corruption a re-read fixes — are retried; permanent faults
// abort immediately.
//
// The jitter is a pure function of (Seed, page, attempt), so a fixed fault
// schedule replays with identical timing decisions — the property the chaos
// harness relies on.
type RetryPolicy struct {
	// MaxAttempts is the total number of physical attempts per operation,
	// including the first. Values < 1 behave as 1 (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff. 0 means no cap.
	MaxDelay time.Duration
	// Seed drives the deterministic jitter.
	Seed int64

	// sleep overrides time.Sleep in tests; nil means time.Sleep.
	sleep func(time.Duration)
}

// DefaultRetryPolicy returns the pool's default policy: 4 attempts with
// 100µs base backoff capped at 2ms — small absolute delays, because the
// simulated disk's "latency" is an accounting fiction, while the attempt
// budget is the behavior under test.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond}
}

// attempts returns the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// pause sleeps the backoff before retry number `retry` (1-based) of an
// operation on page id.
func (p RetryPolicy) pause(retry int, id PageID) {
	if p.BaseDelay <= 0 {
		return
	}
	d := p.BaseDelay
	for i := 1; i < retry && (p.MaxDelay <= 0 || d < p.MaxDelay); i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Deterministic jitter in [50%, 100%] of the backoff: decorrelates
	// concurrent retries without a shared RNG.
	h := mix64(uint64(p.Seed) ^ uint64(id.File)<<40 ^ uint64(uint32(id.Page))<<8 ^ uint64(retry))
	frac := 0.5 + 0.5*float64(h>>11)/float64(1<<53)
	d = time.Duration(float64(d) * frac)
	if p.sleep != nil {
		p.sleep(d)
		return
	}
	time.Sleep(d)
}

// mix64 is the SplitMix64 finalizer, a cheap statistically strong mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
