package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// A page-set image is the sparse cousin of a device image: instead of every
// page of every file, it carries a chosen set of pages plus the full
// contents of a few "authoritative" files (the write-ahead log, for a
// replication delta). It lives here for the same reason the device image
// does — it is physical I/O by definition, reading pages straight off the
// device and writing them straight onto a raw Disk.
//
// Stream layout (all integers little-endian):
//
//	magic "SJDPGS1\n" | u32 pageSize | u32 files
//	per file: u32 targetPages | u8 authoritative
//	u32 entries
//	per entry, sorted by (file, page): u32 file | u32 page | raw page
//	trailer: u32 CRC-32C (Castagnoli) of everything after the magic
//
// targetPages is the file's page count on the source device; the applier
// grows the destination file to at least that many pages. An authoritative
// file is reproduced exactly: every one of its destination pages not
// carried by an entry is zeroed, including pages beyond targetPages that
// the destination grew on its own. Non-authoritative files keep their
// existing content outside the shipped entries.
var pageSetMagic = []byte("SJDPGS1\n")

// ErrNotAPageSet reports that a stream does not begin with a page-set
// image header.
var ErrNotAPageSet = fmt.Errorf("storage: stream is not a page-set image")

// WritePageSetImage streams the chosen pages of dev to w: every page in
// pages whose file is not authoritative, plus every non-zero page of each
// authoritative file (zero pages are implied by the applier's zeroing
// pass). Duplicate entries in pages are shipped once. Returns the shipped
// counts split into set pages and authoritative-file pages.
func WritePageSetImage(w io.Writer, dev Device, pages []PageID, authoritative []FileID) (int, int, error) {
	fc, ok := dev.(imageFiles)
	if !ok {
		return 0, 0, fmt.Errorf("storage: device %T cannot enumerate its files for imaging", dev)
	}
	files := fc.Files()
	auth := make(map[FileID]bool, len(authoritative))
	for _, f := range authoritative {
		if int(f) >= files {
			return 0, 0, fmt.Errorf("storage: authoritative file %d beyond device's %d files", f, files)
		}
		auth[f] = true
	}

	// Build the final sorted entry list up front: set pages outside
	// authoritative files, deduplicated, then the non-zero pages of each
	// authoritative file.
	set := make([]PageID, 0, len(pages))
	seen := make(map[PageID]bool, len(pages))
	for _, id := range pages {
		if auth[id.File] || seen[id] {
			continue
		}
		if int(id.File) >= files || id.Page < 0 || int(id.Page) >= dev.NumPages(id.File) {
			return 0, 0, fmt.Errorf("storage: page %v outside device bounds", id)
		}
		seen[id] = true
		set = append(set, id)
	}
	setPages := len(set)
	authPages := 0
	zero := make([]byte, dev.PageSize())
	for f := 0; f < files; f++ {
		id := FileID(f)
		if !auth[id] {
			continue
		}
		for p := 0; p < dev.NumPages(id); p++ {
			pid := PageID{File: id, Page: int32(p)}
			buf, err := dev.ReadPage(pid)
			if err != nil {
				return 0, 0, fmt.Errorf("storage: imaging page %v: %w", pid, err)
			}
			if bytes.Equal(buf, zero) {
				continue
			}
			set = append(set, pid)
			authPages++
		}
	}
	sort.Slice(set, func(i, j int) bool {
		if set[i].File != set[j].File {
			return set[i].File < set[j].File
		}
		return set[i].Page < set[j].Page
	})

	crc := uint32(0)
	emit := func(buf []byte) error {
		crc = crc32.Update(crc, crcTable, buf)
		_, err := w.Write(buf)
		return err
	}
	if _, err := w.Write(pageSetMagic); err != nil {
		return 0, 0, err
	}
	var u32 [4]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		return emit(u32[:])
	}
	if err := putU32(uint32(dev.PageSize())); err != nil {
		return 0, 0, err
	}
	if err := putU32(uint32(files)); err != nil {
		return 0, 0, err
	}
	for f := 0; f < files; f++ {
		if err := putU32(uint32(dev.NumPages(FileID(f)))); err != nil {
			return 0, 0, err
		}
		flag := []byte{0}
		if auth[FileID(f)] {
			flag[0] = 1
		}
		if err := emit(flag); err != nil {
			return 0, 0, err
		}
	}
	if err := putU32(uint32(len(set))); err != nil {
		return 0, 0, err
	}
	for _, pid := range set {
		if err := putU32(uint32(pid.File)); err != nil {
			return 0, 0, err
		}
		if err := putU32(uint32(pid.Page)); err != nil {
			return 0, 0, err
		}
		buf, err := dev.ReadPage(pid)
		if err != nil {
			return 0, 0, fmt.Errorf("storage: imaging page %v: %w", pid, err)
		}
		if err := emit(buf); err != nil {
			return 0, 0, err
		}
	}
	binary.LittleEndian.PutUint32(u32[:], crc)
	if _, err := w.Write(u32[:]); err != nil {
		return 0, 0, err
	}
	return setPages, authPages, nil
}

// ApplyPageSetImage patches disk in place from a page-set image stream:
// files are created and grown to the declared targets, every page of each
// authoritative file is zeroed (so unshipped pages read as empty rather
// than stale), and the shipped pages are written over the top. The trailer
// checksum is verified before the first byte is applied would be ideal, but
// the stream is applied as it is read for memory's sake — on checksum
// failure the disk must be discarded, and the error says so. Returns the
// shipped counts split into set pages and authoritative-file pages.
func ApplyPageSetImage(r io.Reader, disk *Disk) (int, int, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil || !bytes.Equal(m[:], pageSetMagic) {
		return 0, 0, ErrNotAPageSet
	}
	crc := uint32(0)
	var u32 [4]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return 0, fmt.Errorf("storage: truncated page-set image: %w", err)
		}
		crc = crc32.Update(crc, crcTable, u32[:])
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	pageSize, err := getU32()
	if err != nil {
		return 0, 0, err
	}
	if int(pageSize) != disk.PageSize() {
		return 0, 0, fmt.Errorf("storage: page-set image page size %d != device's %d", pageSize, disk.PageSize())
	}
	files, err := getU32()
	if err != nil {
		return 0, 0, err
	}
	if files > 1<<20 {
		return 0, 0, fmt.Errorf("storage: page-set image declares %d files", files)
	}
	targets := make([]uint32, files)
	authFlags := make([]bool, files)
	var flag [1]byte
	for f := range targets {
		if targets[f], err = getU32(); err != nil {
			return 0, 0, err
		}
		if _, err := io.ReadFull(r, flag[:]); err != nil {
			return 0, 0, fmt.Errorf("storage: truncated page-set image: %w", err)
		}
		crc = crc32.Update(crc, crcTable, flag[:])
		authFlags[f] = flag[0] != 0
	}
	// Grow the disk to cover the declared geometry, then blank the
	// authoritative files end to end — including any pages the destination
	// has beyond the target, which would otherwise survive as stale content.
	zero := make([]byte, pageSize)
	for f := range targets {
		id := FileID(f)
		for disk.Files() <= f {
			disk.CreateFile()
		}
		for disk.NumPages(id) < int(targets[f]) {
			if _, err := disk.AllocPage(id); err != nil {
				return 0, 0, err
			}
		}
		if !authFlags[f] {
			continue
		}
		for p := 0; p < disk.NumPages(id); p++ {
			if err := disk.WritePage(PageID{File: id, Page: int32(p)}, zero); err != nil {
				return 0, 0, err
			}
		}
	}
	entries, err := getU32()
	if err != nil {
		return 0, 0, err
	}
	buf := make([]byte, pageSize)
	setPages, authPages := 0, 0
	prev := PageID{File: -1, Page: -1}
	for i := uint32(0); i < entries; i++ {
		fv, err := getU32()
		if err != nil {
			return 0, 0, err
		}
		pv, err := getU32()
		if err != nil {
			return 0, 0, err
		}
		if fv >= files || pv >= uint32(disk.NumPages(FileID(fv))) {
			return 0, 0, fmt.Errorf("storage: page-set entry f%d:p%d outside declared geometry", fv, pv)
		}
		pid := PageID{File: FileID(fv), Page: int32(pv)}
		if pid.File < prev.File || (pid.File == prev.File && pid.Page <= prev.Page) {
			return 0, 0, fmt.Errorf("storage: page-set entries out of order at %v", pid)
		}
		prev = pid
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, 0, fmt.Errorf("storage: truncated page-set image: %w", err)
		}
		crc = crc32.Update(crc, crcTable, buf)
		if err := disk.WritePage(pid, buf); err != nil {
			return 0, 0, err
		}
		if authFlags[fv] {
			authPages++
		} else {
			setPages++
		}
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return 0, 0, fmt.Errorf("storage: page-set image missing trailer: %w", err)
	}
	if binary.LittleEndian.Uint32(u32[:]) != crc {
		return 0, 0, fmt.Errorf("storage: page-set image checksum mismatch (torn or corrupted stream; discard the device)")
	}
	return setPages, authPages, nil
}
