package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// PoolStats counts the buffer pool's activity. LogicalReads is every page
// request; Misses are the requests that went to disk. The paper's cost
// figures charge C_IO per physical access, i.e. per miss.
type PoolStats struct {
	LogicalReads int64
	Misses       int64
	Evictions    int64
}

// HitRatio returns the fraction of logical reads served from memory.
func (s PoolStats) HitRatio() float64 {
	if s.LogicalReads == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.LogicalReads)
}

// BufferPool caches up to Capacity pages in memory with LRU replacement.
// Pages can be pinned (the paper locks index roots in main memory); pinned
// pages are never evicted. BufferPool is safe for concurrent use: the frame
// table is guarded by a mutex, while the activity counters are atomics so
// concurrent readers can snapshot statistics without serializing on the
// frame lock.
type BufferPool struct {
	mu       sync.Mutex
	disk     *Disk
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used

	logicalReads atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
}

// frame is one cached page.
type frame struct {
	id    PageID
	page  *Page
	pins  int
	dirty bool
}

// NewBufferPool returns a pool of capacity pages over disk. Capacity must be
// at least 1.
func NewBufferPool(disk *Disk, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: buffer pool capacity %d < 1", capacity)
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*list.Element, capacity),
		lru:      list.New(),
	}, nil
}

// Capacity returns the pool size in pages (the model's parameter M).
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Disk returns the underlying simulated disk.
func (bp *BufferPool) Disk() *Disk { return bp.disk }

// Fetch returns the page with the given id, loading it from disk on a miss.
// The returned Page aliases the cached frame: mutations become durable only
// after MarkDirty + eviction or Flush.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.fetchLocked(id)
}

func (bp *BufferPool) fetchLocked(id PageID) (*Page, error) {
	bp.logicalReads.Add(1)
	if el, ok := bp.frames[id]; ok {
		bp.lru.MoveToFront(el)
		return el.Value.(*frame).page, nil
	}
	bp.misses.Add(1)
	buf, err := bp.disk.ReadPage(id)
	if err != nil {
		return nil, err
	}
	if err := bp.evictIfFullLocked(); err != nil {
		return nil, err
	}
	f := &frame{id: id, page: pageFromBytes(buf)}
	bp.frames[id] = bp.lru.PushFront(f)
	return f.page, nil
}

// evictIfFullLocked makes room for one more frame, writing back a dirty
// victim. It fails when every frame is pinned.
func (bp *BufferPool) evictIfFullLocked() error {
	if bp.lru.Len() < bp.capacity {
		return nil
	}
	for el := bp.lru.Back(); el != nil; el = el.Prev() {
		f := el.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := bp.disk.WritePage(f.id, f.page.Bytes()); err != nil {
				return err
			}
		}
		bp.lru.Remove(el)
		delete(bp.frames, f.id)
		bp.evictions.Add(1)
		return nil
	}
	return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.capacity)
}

// Pin fetches the page and marks it non-evictable until a matching Unpin.
func (bp *BufferPool) Pin(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	p, err := bp.fetchLocked(id)
	if err != nil {
		return nil, err
	}
	bp.frames[id].Value.(*frame).pins++
	return p, nil
}

// Unpin releases one pin on the page. Unpinning a page that is not resident
// or not pinned is an error.
func (bp *BufferPool) Unpin(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident page %v", id)
	}
	f := el.Value.(*frame)
	if f.pins == 0 {
		return fmt.Errorf("storage: unpin of unpinned page %v", id)
	}
	f.pins--
	return nil
}

// MarkDirty records that the cached copy of the page was modified, so it
// will be written back on eviction or Flush.
func (bp *BufferPool) MarkDirty(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: MarkDirty of non-resident page %v", id)
	}
	el.Value.(*frame).dirty = true
	return nil
}

// Flush writes every dirty frame back to disk, leaving the frames resident.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if !f.dirty {
			continue
		}
		if err := bp.disk.WritePage(f.id, f.page.Bytes()); err != nil {
			return err
		}
		f.dirty = false
	}
	return nil
}

// DropAll flushes and then empties the pool, so the next access to any page
// is a guaranteed miss. Experiments use it to start measurements cold.
// Pinned pages may not be dropped.
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*frame).pins > 0 {
			return fmt.Errorf("storage: DropAll with pinned page %v", el.Value.(*frame).id)
		}
	}
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if f.dirty {
			if err := bp.disk.WritePage(f.id, f.page.Bytes()); err != nil {
				return err
			}
		}
	}
	bp.frames = make(map[PageID]*list.Element, bp.capacity)
	bp.lru.Init()
	return nil
}

// Resident reports whether the page is currently cached.
func (bp *BufferPool) Resident(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.frames[id]
	return ok
}

// Stats returns a snapshot of the pool counters. It does not take the
// frame lock; under concurrent activity the three counters are each
// monotone but the snapshot as a whole is not a single linearization
// point.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		LogicalReads: bp.logicalReads.Load(),
		Misses:       bp.misses.Load(),
		Evictions:    bp.evictions.Load(),
	}
}

// ResetStats zeroes the pool counters (resident pages stay resident).
func (bp *BufferPool) ResetStats() {
	bp.logicalReads.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
}
