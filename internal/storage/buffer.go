package storage

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"spatialjoin/internal/obs"
)

// PoolStats counts the buffer pool's activity. LogicalReads is every page
// request; Misses are the requests that went to disk. The paper's cost
// figures charge C_IO per physical access, i.e. per miss. ReadRetries and
// WriteRetries are the physical attempts beyond the first that the pool's
// retry policy issued — they keep the accounting honest when the device
// underneath injects faults: physical attempts = Misses + ReadRetries on
// the read side, and analogously for write-backs.
type PoolStats struct {
	LogicalReads int64
	Misses       int64
	Evictions    int64
	ReadRetries  int64
	WriteRetries int64
	// WALSyncs counts the log syncs the pool forced before writing back a
	// dirty frame the durable log did not yet cover (the WAL-before-
	// write-back discipline).
	WALSyncs int64
}

// HitRatio returns the fraction of logical reads served from memory.
func (s PoolStats) HitRatio() float64 {
	if s.LogicalReads == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.LogicalReads)
}

// BufferPool caches up to Capacity pages in memory with LRU replacement.
// Pages can be pinned (the paper locks index roots in main memory); pinned
// pages are never evicted. BufferPool is safe for concurrent use: the frame
// table is guarded by a mutex, while the activity counters are atomics so
// concurrent readers can snapshot statistics without serializing on the
// frame lock.
//
// Every physical transfer is verified end-to-end: pages read from the
// device are checked against the device's recorded checksum, so a page
// corrupted on media or in flight is detected here — before any executor
// can join over garbage — and surfaces as a *ChecksumError after the retry
// budget is exhausted.
type BufferPool struct {
	mu       sync.Mutex
	disk     Device
	capacity int
	retry    RetryPolicy
	wal      WAL // nil = no write-ahead logging
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used

	logicalReads atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	readRetries  atomic.Int64
	writeRetries atomic.Int64
	walSyncs     atomic.Int64
}

// WAL is the hook through which the pool enforces write-ahead logging
// without importing the log's package: DurableLSN is the log offset below
// which every record is on disk, and Sync forces the log durable. Both must
// be safe to call while the pool holds its frame lock.
type WAL interface {
	DurableLSN() int64
	Sync() error
}

// recLSN sentinels. A frame's recLSN is 0 when clean or when the pool has
// no WAL, lsnUnlogged while the frame carries modifications the log has not
// been told about (an open transaction), and otherwise the LSN of the
// commit record covering the frame's latest image.
const lsnUnlogged = int64(-1)

// frame is one cached page. recLSN gates durability (write-back waits until
// the log is durable past it); redoLSN is the recovery floor — the begin
// LSN of the earliest transaction whose committed images this frame still
// holds back from the device. Recovery starting redo at min(redoLSN) over
// all dirty frames is guaranteed to see every image the device is missing,
// because a transaction's images always carry LSNs at or above its begin
// record.
type frame struct {
	id      PageID
	page    *Page
	pins    int
	dirty   bool
	recLSN  int64
	redoLSN int64
}

// NewBufferPool returns a pool of capacity pages over disk, with the
// default retry policy. Capacity must be at least 1.
func NewBufferPool(disk Device, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: buffer pool capacity %d < 1", capacity)
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		retry:    DefaultRetryPolicy(),
		frames:   make(map[PageID]*list.Element, capacity),
		lru:      list.New(),
	}, nil
}

// Capacity returns the pool size in pages (the model's parameter M).
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Disk returns the underlying device.
func (bp *BufferPool) Disk() Device { return bp.disk }

// SetRetryPolicy replaces the pool's retry policy. Not safe to call
// concurrently with pool operations.
func (bp *BufferPool) SetRetryPolicy(p RetryPolicy) { bp.retry = p }

// SetWAL puts the pool under write-ahead logging: from now on every dirty
// frame is held back from the device until the log covers it. Call it
// before any page is dirtied; it is not safe to call concurrently with pool
// operations.
func (bp *BufferPool) SetWAL(w WAL) { bp.wal = w }

// ensureLoggedLocked enforces WAL-before-write-back for one dirty frame:
// a frame the log has not been told about may not touch the device at all,
// and one covered by a not-yet-durable commit forces a log sync first.
func (bp *BufferPool) ensureLoggedLocked(f *frame) error {
	if bp.wal == nil {
		return nil
	}
	if f.recLSN == lsnUnlogged {
		return fmt.Errorf("storage: page %v is dirty inside an open transaction; write-back would break the WAL discipline", f.id)
	}
	if f.recLSN > bp.wal.DurableLSN() {
		bp.walSyncs.Add(1)
		if err := bp.wal.Sync(); err != nil {
			return fmt.Errorf("storage: WAL sync before write-back of %v: %w", f.id, err)
		}
	}
	return nil
}

// readPage drives one logical read against the device, retrying transient
// faults and checksum mismatches (in-flight corruption a re-read can fix)
// under the pool's retry policy. The returned error wraps the last attempt's
// failure, so errors.Is/As classification survives.
func (bp *BufferPool) readPage(id PageID) ([]byte, error) {
	var last error
	budget := bp.retry.attempts()
	for attempt := 1; attempt <= budget; attempt++ {
		if attempt > 1 {
			bp.readRetries.Add(1)
			obs.Record(obs.RecFaultRetry, obs.RecCodeRead, 0, int64(id.File), int64(id.Page))
			bp.retry.pause(attempt-1, id)
		}
		buf, err := bp.disk.ReadPage(id)
		if err == nil {
			if want, ok := bp.disk.Checksum(id); ok {
				if got := PageChecksum(buf); got != want {
					last = &ChecksumError{Page: id, Want: want, Got: got}
					continue
				}
			}
			return buf, nil
		}
		last = err
		if !IsTransient(err) && !IsChecksum(err) {
			break
		}
	}
	return nil, fmt.Errorf("storage: read of page %v gave up after retries: %w", id, last)
}

// writePage drives one write-back against the device under the retry
// policy, retrying transient faults only.
func (bp *BufferPool) writePage(id PageID, buf []byte) error {
	var last error
	budget := bp.retry.attempts()
	for attempt := 1; attempt <= budget; attempt++ {
		if attempt > 1 {
			bp.writeRetries.Add(1)
			obs.Record(obs.RecFaultRetry, obs.RecCodeWrite, 0, int64(id.File), int64(id.Page))
			bp.retry.pause(attempt-1, id)
		}
		err := bp.disk.WritePage(id, buf)
		if err == nil {
			return nil
		}
		last = err
		if !IsTransient(err) {
			break
		}
	}
	return fmt.Errorf("storage: write of page %v gave up after retries: %w", id, last)
}

// Fetch returns the page with the given id, loading it from disk on a miss.
// The returned Page aliases the cached frame: mutations become durable only
// after MarkDirty + eviction or Flush.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.fetchLocked(id)
}

func (bp *BufferPool) fetchLocked(id PageID) (*Page, error) {
	bp.logicalReads.Add(1)
	if el, ok := bp.frames[id]; ok {
		bp.lru.MoveToFront(el)
		return el.Value.(*frame).page, nil
	}
	bp.misses.Add(1)
	buf, err := bp.readPage(id)
	if err != nil {
		return nil, err
	}
	if err := bp.evictIfFullLocked(); err != nil {
		return nil, err
	}
	f := &frame{id: id, page: pageFromBytes(buf)}
	bp.frames[id] = bp.lru.PushFront(f)
	return f.page, nil
}

// evictIfFullLocked makes room for one more frame, writing back a dirty
// victim. A victim whose write-back fails permanently is skipped — it stays
// resident and dirty so the data is not lost — and the next least-recently
// used unpinned frame is tried instead. Under a WAL, frames dirtied by an
// open transaction are likewise skipped (no-steal: an uncommitted image
// must never reach the device), and committed frames force the log durable
// before the write-back. It fails when every frame is pinned or unwritable.
func (bp *BufferPool) evictIfFullLocked() error {
	if bp.lru.Len() < bp.capacity {
		return nil
	}
	var lastErr error
	for el := bp.lru.Back(); el != nil; el = el.Prev() {
		f := el.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty && bp.wal != nil && f.recLSN == lsnUnlogged {
			continue
		}
		if f.dirty {
			if err := bp.ensureLoggedLocked(f); err != nil {
				lastErr = err
				continue
			}
			if err := bp.writePage(f.id, f.page.Bytes()); err != nil {
				lastErr = err
				continue
			}
			f.dirty = false
			f.recLSN = 0
			f.redoLSN = 0
		}
		bp.lru.Remove(el)
		delete(bp.frames, f.id)
		bp.evictions.Add(1)
		return nil
	}
	if lastErr != nil {
		return fmt.Errorf("storage: buffer pool full and no victim writable: %w", lastErr)
	}
	return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned or held by an open transaction", bp.capacity)
}

// Pin fetches the page and marks it non-evictable until a matching Unpin.
func (bp *BufferPool) Pin(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	p, err := bp.fetchLocked(id)
	if err != nil {
		return nil, err
	}
	bp.frames[id].Value.(*frame).pins++
	return p, nil
}

// Unpin releases one pin on the page. Unpinning a page that is not resident
// or not pinned is an error, and never drives the pin count negative — a
// double Unpin cannot make a still-pinned page evictable.
func (bp *BufferPool) Unpin(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident page %v", id)
	}
	f := el.Value.(*frame)
	if f.pins == 0 {
		return fmt.Errorf("storage: unpin of unpinned page %v", id)
	}
	f.pins--
	return nil
}

// MarkDirty records that the cached copy of the page was modified, so it
// will be written back on eviction or Flush. Under a WAL the frame becomes
// unlogged-dirty: pinned in memory until the transaction layer logs its
// image and reports the covering commit LSN via SetPageLSN.
func (bp *BufferPool) MarkDirty(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: MarkDirty of non-resident page %v", id)
	}
	f := el.Value.(*frame)
	if bp.wal != nil {
		if !f.dirty {
			// First dirtying since the last write-back: no committed image
			// is pending yet, so the frame has no redo floor until the
			// covering transaction reports one via SetPageLSN.
			f.redoLSN = lsnUnlogged
		}
		f.recLSN = lsnUnlogged
	}
	f.dirty = true
	return nil
}

// UnloggedDirtyPages returns the pages dirtied since their last logged
// image, in ascending PageID order — the write set the transaction layer
// must log before committing.
func (bp *BufferPool) UnloggedDirtyPages() []PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var ids []PageID
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if f.dirty && f.recLSN == lsnUnlogged {
			ids = append(ids, f.id)
		}
	}
	sortPageIDs(ids)
	return ids
}

// SnapshotPage returns a copy of the resident page's current bytes without
// touching the logical-read counters: it is the transaction layer reading
// its own write set for logging, not query I/O.
func (bp *BufferPool) SnapshotPage(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	if !ok {
		return nil, fmt.Errorf("storage: snapshot of non-resident page %v", id)
	}
	src := el.Value.(*frame).page.Bytes()
	buf := make([]byte, len(src))
	copy(buf, src)
	return buf, nil
}

// SetPageLSN records that the log covers the frame's current content up to
// commitLSN, making it eligible for write-back once the log is durable past
// it. redoLSN is the begin LSN of the covering transaction: replaying the
// log from there reconstructs everything the frame holds back from the
// device. A frame dirtied across several transactions keeps the earliest
// redo floor until a write-back cleans it, so the checkpoint's dirty-page
// table never under-reports how far back recovery must start.
func (bp *BufferPool) SetPageLSN(id PageID, commitLSN, redoLSN int64) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: SetPageLSN of non-resident page %v", id)
	}
	f := el.Value.(*frame)
	f.recLSN = commitLSN
	if f.redoLSN <= 0 || redoLSN < f.redoLSN {
		f.redoLSN = redoLSN
	}
	return nil
}

// DirtyPage is one entry of the pool's dirty-page table: a resident page
// whose committed content has not reached the device, with the redo floor
// recovery must start at to reconstruct it.
type DirtyPage struct {
	ID      PageID
	RedoLSN int64
}

// DirtyPageTable snapshots the frames holding committed images back from
// the device, in ascending PageID order — the DPT a fuzzy checkpoint
// persists. Frames dirtied only by a still-open transaction are excluded:
// no committed image of theirs exists yet, and the checkpoint's active-
// transaction table covers them through the transaction's begin LSN.
func (bp *BufferPool) DirtyPageTable() []DirtyPage {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var dpt []DirtyPage
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if f.dirty && f.redoLSN > 0 {
			dpt = append(dpt, DirtyPage{ID: f.id, RedoLSN: f.redoLSN})
		}
	}
	sort.Slice(dpt, func(i, j int) bool { return pageIDLess(dpt[i].ID, dpt[j].ID) })
	return dpt
}

// FlushOneDirty writes back the lowest-PageID committed-dirty frame above
// prev and returns its id, releasing the frame lock between calls so the
// checkpointer can interleave with concurrent readers and writers instead
// of stalling them behind one long stop-the-world flush. Frames held by an
// open transaction are skipped (no-steal: their bytes may not touch the
// device), as are frames re-dirtied behind the cursor — the dirty-page
// table snapshot taken after the incremental pass accounts for both. ok is
// false when no eligible frame remains above prev.
func (bp *BufferPool) FlushOneDirty(prev PageID) (id PageID, ok bool, err error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var victim *frame
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if !f.dirty || f.recLSN == lsnUnlogged || !pageIDLess(prev, f.id) {
			continue
		}
		if victim == nil || pageIDLess(f.id, victim.id) {
			victim = f
		}
	}
	if victim == nil {
		return PageID{}, false, nil
	}
	if err := bp.ensureLoggedLocked(victim); err != nil {
		return victim.id, true, err
	}
	if err := bp.writePage(victim.id, victim.page.Bytes()); err != nil {
		return victim.id, true, err
	}
	victim.dirty = false
	victim.recLSN = 0
	victim.redoLSN = 0
	return victim.id, true, nil
}

// Close makes every committed change durable and is the orderly-shutdown
// counterpart of crash recovery: it forces the log durable even when no
// dirty frame would have demanded it — commits buffered by the group-commit
// policy would otherwise be silently dropped on a clean shutdown — and then
// writes back all committed dirty frames. The pool stays usable; Close is
// idempotent.
func (bp *BufferPool) Close() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.wal != nil {
		if err := bp.wal.Sync(); err != nil {
			return fmt.Errorf("storage: final WAL sync on close: %w", err)
		}
	}
	return bp.flushLocked()
}

// Flush writes every dirty frame back to disk in ascending PageID order,
// leaving the frames resident. The deterministic order — rather than LRU
// recency, which depends on access history and worker interleaving — makes
// crash schedules keyed to "the n-th physical write" reproducible across
// runs. On failure it still attempts the remaining dirty frames and returns
// the first error; a frame whose write-back failed stays dirty, so a later
// Flush retries it rather than silently dropping the modification. Under a
// WAL, a frame dirtied by an open transaction is an error: Flush promises
// durability, and an uncommitted image may not be made durable.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.flushLocked()
}

func (bp *BufferPool) flushLocked() error {
	dirty := make([]*frame, 0, len(bp.frames))
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		if f := el.Value.(*frame); f.dirty {
			dirty = append(dirty, f)
		}
	}
	sortFrames(dirty)
	var firstErr error
	for _, f := range dirty {
		if err := bp.ensureLoggedLocked(f); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := bp.writePage(f.id, f.page.Bytes()); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		f.dirty = false
		f.recLSN = 0
		f.redoLSN = 0
	}
	return firstErr
}

// sortFrames orders frames by ascending PageID (file, then page).
func sortFrames(fs []*frame) {
	sort.Slice(fs, func(i, j int) bool { return pageIDLess(fs[i].id, fs[j].id) })
}

// sortPageIDs orders ids ascending (file, then page).
func sortPageIDs(ids []PageID) {
	sort.Slice(ids, func(i, j int) bool { return pageIDLess(ids[i], ids[j]) })
}

func pageIDLess(a, b PageID) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	return a.Page < b.Page
}

// DropAll flushes and then empties the pool, so the next access to any page
// is a guaranteed miss. Experiments use it to start measurements cold.
// Pinned pages may not be dropped. When a write-back fails, frames whose
// pages were flushed are marked clean (they will not be double-written
// later), nothing is dropped, and the error is returned — DropAll after a
// partial failure is safe to retry.
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*frame).pins > 0 {
			return fmt.Errorf("storage: DropAll with pinned page %v", el.Value.(*frame).id)
		}
	}
	if err := bp.flushLocked(); err != nil {
		return err
	}
	bp.frames = make(map[PageID]*list.Element, bp.capacity)
	bp.lru.Init()
	return nil
}

// Resident reports whether the page is currently cached.
func (bp *BufferPool) Resident(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.frames[id]
	return ok
}

// Dirty reports whether the page is resident with unflushed modifications.
func (bp *BufferPool) Dirty(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	return ok && el.Value.(*frame).dirty
}

// Stats returns a snapshot of the pool counters. It does not take the
// frame lock; under concurrent activity the counters are each monotone but
// the snapshot as a whole is not a single linearization point.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		LogicalReads: bp.logicalReads.Load(),
		Misses:       bp.misses.Load(),
		Evictions:    bp.evictions.Load(),
		ReadRetries:  bp.readRetries.Load(),
		WriteRetries: bp.writeRetries.Load(),
		WALSyncs:     bp.walSyncs.Load(),
	}
}

// ResetStats zeroes the pool counters (resident pages stay resident).
func (bp *BufferPool) ResetStats() {
	bp.logicalReads.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.readRetries.Store(0)
	bp.writeRetries.Store(0)
	bp.walSyncs.Store(0)
}
