package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// PoolStats counts the buffer pool's activity. LogicalReads is every page
// request; Misses are the requests that went to disk. The paper's cost
// figures charge C_IO per physical access, i.e. per miss. ReadRetries and
// WriteRetries are the physical attempts beyond the first that the pool's
// retry policy issued — they keep the accounting honest when the device
// underneath injects faults: physical attempts = Misses + ReadRetries on
// the read side, and analogously for write-backs.
type PoolStats struct {
	LogicalReads int64
	Misses       int64
	Evictions    int64
	ReadRetries  int64
	WriteRetries int64
}

// HitRatio returns the fraction of logical reads served from memory.
func (s PoolStats) HitRatio() float64 {
	if s.LogicalReads == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.LogicalReads)
}

// BufferPool caches up to Capacity pages in memory with LRU replacement.
// Pages can be pinned (the paper locks index roots in main memory); pinned
// pages are never evicted. BufferPool is safe for concurrent use: the frame
// table is guarded by a mutex, while the activity counters are atomics so
// concurrent readers can snapshot statistics without serializing on the
// frame lock.
//
// Every physical transfer is verified end-to-end: pages read from the
// device are checked against the device's recorded checksum, so a page
// corrupted on media or in flight is detected here — before any executor
// can join over garbage — and surfaces as a *ChecksumError after the retry
// budget is exhausted.
type BufferPool struct {
	mu       sync.Mutex
	disk     Device
	capacity int
	retry    RetryPolicy
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used

	logicalReads atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	readRetries  atomic.Int64
	writeRetries atomic.Int64
}

// frame is one cached page.
type frame struct {
	id    PageID
	page  *Page
	pins  int
	dirty bool
}

// NewBufferPool returns a pool of capacity pages over disk, with the
// default retry policy. Capacity must be at least 1.
func NewBufferPool(disk Device, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: buffer pool capacity %d < 1", capacity)
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		retry:    DefaultRetryPolicy(),
		frames:   make(map[PageID]*list.Element, capacity),
		lru:      list.New(),
	}, nil
}

// Capacity returns the pool size in pages (the model's parameter M).
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Disk returns the underlying device.
func (bp *BufferPool) Disk() Device { return bp.disk }

// SetRetryPolicy replaces the pool's retry policy. Not safe to call
// concurrently with pool operations.
func (bp *BufferPool) SetRetryPolicy(p RetryPolicy) { bp.retry = p }

// readPage drives one logical read against the device, retrying transient
// faults and checksum mismatches (in-flight corruption a re-read can fix)
// under the pool's retry policy. The returned error wraps the last attempt's
// failure, so errors.Is/As classification survives.
func (bp *BufferPool) readPage(id PageID) ([]byte, error) {
	var last error
	budget := bp.retry.attempts()
	for attempt := 1; attempt <= budget; attempt++ {
		if attempt > 1 {
			bp.readRetries.Add(1)
			bp.retry.pause(attempt-1, id)
		}
		buf, err := bp.disk.ReadPage(id)
		if err == nil {
			if want, ok := bp.disk.Checksum(id); ok {
				if got := PageChecksum(buf); got != want {
					last = &ChecksumError{Page: id, Want: want, Got: got}
					continue
				}
			}
			return buf, nil
		}
		last = err
		if !IsTransient(err) && !IsChecksum(err) {
			break
		}
	}
	return nil, fmt.Errorf("storage: read of page %v gave up after retries: %w", id, last)
}

// writePage drives one write-back against the device under the retry
// policy, retrying transient faults only.
func (bp *BufferPool) writePage(id PageID, buf []byte) error {
	var last error
	budget := bp.retry.attempts()
	for attempt := 1; attempt <= budget; attempt++ {
		if attempt > 1 {
			bp.writeRetries.Add(1)
			bp.retry.pause(attempt-1, id)
		}
		err := bp.disk.WritePage(id, buf)
		if err == nil {
			return nil
		}
		last = err
		if !IsTransient(err) {
			break
		}
	}
	return fmt.Errorf("storage: write of page %v gave up after retries: %w", id, last)
}

// Fetch returns the page with the given id, loading it from disk on a miss.
// The returned Page aliases the cached frame: mutations become durable only
// after MarkDirty + eviction or Flush.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.fetchLocked(id)
}

func (bp *BufferPool) fetchLocked(id PageID) (*Page, error) {
	bp.logicalReads.Add(1)
	if el, ok := bp.frames[id]; ok {
		bp.lru.MoveToFront(el)
		return el.Value.(*frame).page, nil
	}
	bp.misses.Add(1)
	buf, err := bp.readPage(id)
	if err != nil {
		return nil, err
	}
	if err := bp.evictIfFullLocked(); err != nil {
		return nil, err
	}
	f := &frame{id: id, page: pageFromBytes(buf)}
	bp.frames[id] = bp.lru.PushFront(f)
	return f.page, nil
}

// evictIfFullLocked makes room for one more frame, writing back a dirty
// victim. A victim whose write-back fails permanently is skipped — it stays
// resident and dirty so the data is not lost — and the next least-recently
// used unpinned frame is tried instead. It fails when every frame is pinned
// or unwritable.
func (bp *BufferPool) evictIfFullLocked() error {
	if bp.lru.Len() < bp.capacity {
		return nil
	}
	var lastErr error
	for el := bp.lru.Back(); el != nil; el = el.Prev() {
		f := el.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := bp.writePage(f.id, f.page.Bytes()); err != nil {
				lastErr = err
				continue
			}
			f.dirty = false
		}
		bp.lru.Remove(el)
		delete(bp.frames, f.id)
		bp.evictions.Add(1)
		return nil
	}
	if lastErr != nil {
		return fmt.Errorf("storage: buffer pool full and no victim writable: %w", lastErr)
	}
	return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.capacity)
}

// Pin fetches the page and marks it non-evictable until a matching Unpin.
func (bp *BufferPool) Pin(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	p, err := bp.fetchLocked(id)
	if err != nil {
		return nil, err
	}
	bp.frames[id].Value.(*frame).pins++
	return p, nil
}

// Unpin releases one pin on the page. Unpinning a page that is not resident
// or not pinned is an error, and never drives the pin count negative — a
// double Unpin cannot make a still-pinned page evictable.
func (bp *BufferPool) Unpin(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident page %v", id)
	}
	f := el.Value.(*frame)
	if f.pins == 0 {
		return fmt.Errorf("storage: unpin of unpinned page %v", id)
	}
	f.pins--
	return nil
}

// MarkDirty records that the cached copy of the page was modified, so it
// will be written back on eviction or Flush.
func (bp *BufferPool) MarkDirty(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: MarkDirty of non-resident page %v", id)
	}
	el.Value.(*frame).dirty = true
	return nil
}

// Flush writes every dirty frame back to disk, leaving the frames resident.
// On failure it still attempts the remaining dirty frames and returns the
// first error; a frame whose write-back failed stays dirty, so a later
// Flush retries it rather than silently dropping the modification.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.flushLocked()
}

func (bp *BufferPool) flushLocked() error {
	var firstErr error
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if !f.dirty {
			continue
		}
		if err := bp.writePage(f.id, f.page.Bytes()); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		f.dirty = false
	}
	return firstErr
}

// DropAll flushes and then empties the pool, so the next access to any page
// is a guaranteed miss. Experiments use it to start measurements cold.
// Pinned pages may not be dropped. When a write-back fails, frames whose
// pages were flushed are marked clean (they will not be double-written
// later), nothing is dropped, and the error is returned — DropAll after a
// partial failure is safe to retry.
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*frame).pins > 0 {
			return fmt.Errorf("storage: DropAll with pinned page %v", el.Value.(*frame).id)
		}
	}
	if err := bp.flushLocked(); err != nil {
		return err
	}
	bp.frames = make(map[PageID]*list.Element, bp.capacity)
	bp.lru.Init()
	return nil
}

// Resident reports whether the page is currently cached.
func (bp *BufferPool) Resident(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.frames[id]
	return ok
}

// Dirty reports whether the page is resident with unflushed modifications.
func (bp *BufferPool) Dirty(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	el, ok := bp.frames[id]
	return ok && el.Value.(*frame).dirty
}

// Stats returns a snapshot of the pool counters. It does not take the
// frame lock; under concurrent activity the counters are each monotone but
// the snapshot as a whole is not a single linearization point.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		LogicalReads: bp.logicalReads.Load(),
		Misses:       bp.misses.Load(),
		Evictions:    bp.evictions.Load(),
		ReadRetries:  bp.readRetries.Load(),
		WriteRetries: bp.writeRetries.Load(),
	}
}

// ResetStats zeroes the pool counters (resident pages stay resident).
func (bp *BufferPool) ResetStats() {
	bp.logicalReads.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.readRetries.Store(0)
	bp.writeRetries.Store(0)
}
