package storage

import (
	"fmt"
)

// RID is a record identifier: the page and slot where the record lives.
type RID struct {
	Page PageID
	Slot int32
}

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("%v:s%d", r.Page, r.Slot) }

// HeapFile stores variable-length records in slotted pages of one file,
// appending to the last page and allocating a new page when a record does
// not fit. A fill factor below 1 reproduces the paper's average space
// utilization l (Table 3: 0.75) by capping how much of each page's payload
// may be used.
type HeapFile struct {
	pool       *BufferPool
	file       FileID
	fillFactor float64
	lastPage   PageID
	hasPage    bool
	numRecords int
}

// NewHeapFile creates an empty heap file on the pool's disk. fillFactor must
// be in (0, 1]; records are placed on a page only while the page's used
// payload stays below fillFactor × page size.
func NewHeapFile(pool *BufferPool, fillFactor float64) (*HeapFile, error) {
	if fillFactor <= 0 || fillFactor > 1 {
		return nil, fmt.Errorf("storage: fill factor %g out of (0,1]", fillFactor)
	}
	return &HeapFile{
		pool:       pool,
		file:       pool.Disk().CreateFile(),
		fillFactor: fillFactor,
	}, nil
}

// OpenHeapFile reattaches to an existing heap file after a restart,
// rebuilding the append state (last page, record count) from the pages on
// disk. A page whose header is all zeroes was allocated but never written
// back before a crash; it holds no committed records and appends resume on
// the last initialized page before it.
func OpenHeapFile(pool *BufferPool, file FileID, fillFactor float64) (*HeapFile, error) {
	if fillFactor <= 0 || fillFactor > 1 {
		return nil, fmt.Errorf("storage: fill factor %g out of (0,1]", fillFactor)
	}
	h := &HeapFile{pool: pool, file: file, fillFactor: fillFactor}
	n := pool.Disk().NumPages(file)
	for pg := 0; pg < n; pg++ {
		id := PageID{File: file, Page: int32(pg)}
		p, err := pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		if !p.initialized() {
			continue
		}
		h.lastPage, h.hasPage = id, true
		h.numRecords += p.NumRecords()
	}
	return h, nil
}

// File returns the underlying file id.
func (h *HeapFile) File() FileID { return h.file }

// NumRecords returns the number of records appended so far.
func (h *HeapFile) NumRecords() int { return h.numRecords }

// NumPages returns the number of pages the file occupies.
func (h *HeapFile) NumPages() int { return h.pool.Disk().NumPages(h.file) }

// budget returns the payload budget per page under the fill factor.
func (h *HeapFile) budget() int {
	return int(h.fillFactor * float64(h.pool.Disk().PageSize()-pageHeaderSize))
}

// Append stores rec and returns its RID. Records larger than the per-page
// budget are rejected.
func (h *HeapFile) Append(rec []byte) (RID, error) {
	if len(rec)+slotSize > h.budget() {
		return RID{}, fmt.Errorf("storage: record of %d bytes exceeds page budget %d", len(rec), h.budget())
	}
	if h.hasPage {
		p, err := h.pool.Fetch(h.lastPage)
		if err != nil {
			return RID{}, err
		}
		if h.usedPayload(p)+len(rec)+slotSize <= h.budget() && p.FreeSpace() >= len(rec) {
			slot, err := p.Insert(rec)
			if err == nil {
				if err := h.pool.MarkDirty(h.lastPage); err != nil {
					return RID{}, err
				}
				h.numRecords++
				return RID{Page: h.lastPage, Slot: int32(slot)}, nil
			}
			if err != ErrPageFull {
				return RID{}, err
			}
		}
	}
	id, err := h.pool.Disk().AllocPage(h.file)
	if err != nil {
		return RID{}, err
	}
	h.lastPage, h.hasPage = id, true
	p, err := h.pool.Fetch(id)
	if err != nil {
		return RID{}, err
	}
	// A freshly allocated page arrives zeroed; initialize its header.
	fresh, err := NewPage(h.pool.Disk().PageSize())
	if err != nil {
		return RID{}, err
	}
	copy(p.Bytes(), fresh.Bytes())
	slot, err := p.Insert(rec)
	if err != nil {
		return RID{}, err
	}
	if err := h.pool.MarkDirty(id); err != nil {
		return RID{}, err
	}
	h.numRecords++
	return RID{Page: id, Slot: int32(slot)}, nil
}

// usedPayload returns the bytes of payload (records + slots) in use on p.
func (h *HeapFile) usedPayload(p *Page) int {
	return (p.free() - pageHeaderSize) + p.NumRecords()*slotSize
}

// Get returns a copy of the record at rid, fetching its page through the
// buffer pool (and therefore charging I/O on a miss).
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	p, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, err := p.Record(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// Scan calls f for every record in file order. Scanning fetches each page
// once. f receives the RID and the raw record bytes (valid only during the
// call); returning false stops the scan.
func (h *HeapFile) Scan(f func(RID, []byte) bool) error {
	n := h.NumPages()
	for pg := 0; pg < n; pg++ {
		id := PageID{File: h.file, Page: int32(pg)}
		p, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		for s := 0; s < p.NumRecords(); s++ {
			rec, err := p.Record(s)
			if err != nil {
				return err
			}
			if !f(RID{Page: id, Slot: int32(s)}, rec) {
				return nil
			}
		}
	}
	return nil
}
