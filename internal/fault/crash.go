package fault

import (
	"errors"
	"fmt"
	"sync"

	"spatialjoin/internal/storage"
)

// errCrashed is the cause wrapped by every I/O error a crashed device
// returns until Reboot.
var errCrashed = errors.New("device crashed; reboot required")

// Crash is the panic value raised by a scheduled crash, simulating the
// process dying mid-update: the panic unwinds whatever update was in
// flight, all buffered state is lost, and only bytes already on the device
// survive. Harnesses catch it with recover and AsCrash, reboot the device,
// and reopen the database through recovery.
type Crash struct {
	Point  string         // named crash point, "" for write-count crashes
	Writes int64          // write-attempt ordinal that triggered a write-count crash
	Page   storage.PageID // page whose write was torn by a write-count crash
}

// Error implements the error interface so a recovered Crash can be
// reported, though a Crash is always raised as a panic, never returned.
func (c *Crash) Error() string {
	if c.Point != "" {
		return fmt.Sprintf("fault: injected crash at point %q", c.Point)
	}
	return fmt.Sprintf("fault: injected crash at write %d (page %v)", c.Writes, c.Page)
}

// AsCrash reports whether a recovered panic value is an injected crash.
func AsCrash(v any) (*Crash, bool) {
	c, ok := v.(*Crash)
	return c, ok
}

// SetCrashAfterWrites schedules a crash on the n-th write attempt from now
// (n >= 1). The doomed write tears its page instead of completing — the
// stored bytes no longer match the recorded checksum, like power loss
// mid-sector — marks the device crashed, and panics with a *Crash. n <= 0
// disarms the schedule.
func (d *Disk) SetCrashAfterWrites(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAt = n
	d.writeSeq = 0
}

// Crashed reports whether an injected crash has taken the device down.
// While crashed, every read and write fails with a Permanent error.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Reboot brings a crashed device back and disarms the write-count
// schedule. Torn pages stay torn: a reboot does not repair the sector the
// crash interrupted.
func (d *Disk) Reboot() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
	d.crashAt = 0
	d.writeSeq = 0
}

// Named crash points are code locations instrumented with CrashPoint calls
// (the WAL sync loop, the commit protocol). Arming one makes its k-th
// occurrence panic with a *Crash, which drives schedules keyed to protocol
// steps rather than physical write counts. The registry is process-global,
// so tests must disarm in a deferred call and not run armed sections in
// parallel.
var crashPoints struct {
	mu     sync.Mutex
	armed  string
	hit    int
	seen   int
	record map[string]int
}

// ArmCrashPoint makes the hit-th occurrence (1-based) of the named crash
// point panic with a *Crash.
func ArmCrashPoint(name string, hit int) {
	if hit < 1 {
		hit = 1
	}
	crashPoints.mu.Lock()
	defer crashPoints.mu.Unlock()
	crashPoints.armed = name
	crashPoints.hit = hit
	crashPoints.seen = 0
}

// DisarmCrashPoints clears any armed crash point and stops recording.
func DisarmCrashPoints() {
	crashPoints.mu.Lock()
	defer crashPoints.mu.Unlock()
	crashPoints.armed = ""
	crashPoints.hit = 0
	crashPoints.seen = 0
	crashPoints.record = nil
}

// StartCrashPointRecording begins counting crash-point occurrences instead
// of (or in addition to) crashing, so a harness can discover how many times
// each point fires in a workload before sweeping them.
func StartCrashPointRecording() {
	crashPoints.mu.Lock()
	defer crashPoints.mu.Unlock()
	crashPoints.record = make(map[string]int)
}

// RecordedCrashPoints returns a copy of the occurrence counts gathered
// since StartCrashPointRecording.
func RecordedCrashPoints() map[string]int {
	crashPoints.mu.Lock()
	defer crashPoints.mu.Unlock()
	out := make(map[string]int, len(crashPoints.record))
	for k, v := range crashPoints.record {
		out[k] = v
	}
	return out
}

// CrashPoint marks a crash-injectable code location. It is a cheap no-op
// unless a harness armed this name or turned on recording.
func CrashPoint(name string) {
	crashPoints.mu.Lock()
	if crashPoints.record != nil {
		crashPoints.record[name]++
	}
	if crashPoints.armed != name {
		crashPoints.mu.Unlock()
		return
	}
	crashPoints.seen++
	if crashPoints.seen < crashPoints.hit {
		crashPoints.mu.Unlock()
		return
	}
	crashPoints.armed = ""
	crashPoints.mu.Unlock()
	panic(&Crash{Point: name})
}
