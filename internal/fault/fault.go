// Package fault provides a deterministic fault-injecting wrapper around the
// storage layer's simulated disk, plus the typed errors it raises.
//
// The wrapper (Disk, built with Wrap) implements storage.Device and sits
// between the healthy storage.Disk and the BufferPool. A seed-driven
// schedule decides, per physical attempt, whether an operation fails
// transiently, returns corrupted bytes, or — for pages explicitly marked
// lost — fails permanently. The schedule is a pure function of
// (seed, page, attempt number), so any run replays exactly: the chaos
// harness relies on this to assert that every strategy returns either the
// byte-identical match set or a typed error under a fixed schedule.
//
// Errors carry their classification structurally: *Error implements
// Transient() / Permanent() methods, which storage.IsTransient (and this
// package's IsTransient / IsPermanent) discover through errors.As. That
// keeps the dependency one-way — fault imports storage, never the reverse.
package fault

import (
	"errors"
	"fmt"

	"spatialjoin/internal/storage"
)

// Kind classifies an injected fault.
type Kind int

const (
	// Transient marks a fault that a retry may clear (a timeout, a bus
	// glitch). The buffer pool retries these under its RetryPolicy.
	Transient Kind = iota + 1
	// Permanent marks a fault that no retry clears (a lost page). The
	// buffer pool gives up immediately and the executor may degrade.
	Permanent
	// Corruption marks an attempt whose data transferred but was damaged
	// in flight. The operation itself reports success; the damage is
	// detected by the buffer pool's end-to-end checksum verification, so
	// Corruption appears as an Error only in fault-layer accounting.
	Corruption
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Corruption:
		return "corruption"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Sentinel targets for errors.Is: classify an error chain without reaching
// for the concrete *Error.
var (
	// ErrTransient matches any *Error of Kind Transient.
	ErrTransient = errors.New("fault: transient storage fault")
	// ErrPermanent matches any *Error of Kind Permanent.
	ErrPermanent = errors.New("fault: permanent storage fault")
	// ErrCorruption matches any *Error of Kind Corruption.
	ErrCorruption = errors.New("fault: corrupted page transfer")
)

// Error is an injected storage fault. It records which operation on which
// page failed, on which physical attempt of the schedule, so test failures
// name the exact schedule point.
type Error struct {
	Op      string         // "read" or "write"
	Page    storage.PageID // the page the operation addressed
	Kind    Kind           // classification
	Attempt int64          // 1-based physical attempt number for this page+op
	Err     error          // optional underlying cause
}

// Error implements the error interface.
func (e *Error) Error() string {
	msg := fmt.Sprintf("fault: %s %s fault on page %v (attempt %d)", e.Kind, e.Op, e.Page, e.Attempt)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause, if any, to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the classification sentinels, so
// errors.Is(err, fault.ErrPermanent) works across wrapping.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrTransient:
		return e.Kind == Transient
	case ErrPermanent:
		return e.Kind == Permanent
	case ErrCorruption:
		return e.Kind == Corruption
	}
	return false
}

// Transient reports whether a retry may clear the fault. This is the
// structural contract storage.IsTransient checks via errors.As.
func (e *Error) Transient() bool { return e.Kind == Transient }

// Permanent reports whether no retry can clear the fault.
func (e *Error) Permanent() bool { return e.Kind == Permanent || e.Kind == Corruption }

// IsTransient reports whether err (or anything it wraps) is a transient
// fault worth retrying.
func IsTransient(err error) bool { return storage.IsTransient(err) }

// IsPermanent reports whether err (or anything it wraps) classifies itself
// as permanent — an injected permanent fault or a checksum mismatch. The
// executor's degradation path triggers on this.
func IsPermanent(err error) bool {
	var p interface{ Permanent() bool }
	return errors.As(err, &p) && p.Permanent()
}
