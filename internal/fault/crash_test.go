package fault

import (
	"testing"

	"spatialjoin/internal/storage"
)

// TestCrashAfterWrites checks the nth write panics with *Crash, tears the
// doomed page, and refuses all I/O until Reboot.
func TestCrashAfterWrites(t *testing.T) {
	d := Wrap(storage.NewDisk(64), Options{Seed: 1})
	f := d.CreateFile()
	var ids []storage.PageID
	for i := 0; i < 3; i++ {
		id, err := d.AllocPage(f)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	buf := make([]byte, 64)
	d.SetCrashAfterWrites(3)
	if err := d.WritePage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(ids[1], buf); err != nil {
		t.Fatal(err)
	}

	func() {
		defer func() {
			c, ok := AsCrash(recover())
			if !ok {
				t.Fatal("third write did not panic with *Crash")
			}
			if c.Writes != 3 || c.Page != ids[2] {
				t.Errorf("crash = %+v", c)
			}
		}()
		d.WritePage(ids[2], buf)
	}()

	if !d.Crashed() {
		t.Fatal("device not marked crashed")
	}
	if _, err := d.ReadPage(ids[0]); err == nil {
		t.Error("read succeeded on a crashed device")
	}
	if err := d.WritePage(ids[0], buf); err == nil {
		t.Error("write succeeded on a crashed device")
	}

	d.Reboot()
	if d.Crashed() {
		t.Fatal("Reboot did not clear the crashed flag")
	}
	// The doomed page was torn mid-write: its bytes no longer match the
	// recorded checksum...
	if checksumOK(t, d, ids[2]) {
		t.Error("torn page passes checksum after reboot")
	}
	// ...until a successful rewrite heals it.
	if err := d.WritePage(ids[2], buf); err != nil {
		t.Fatal(err)
	}
	if !checksumOK(t, d, ids[2]) {
		t.Error("rewritten page still torn")
	}
	// Pages untouched by the crash survive.
	if !checksumOK(t, d, ids[0]) {
		t.Error("unrelated page corrupted across crash")
	}
}

// checksumOK reads a page raw and verifies it against the device's recorded
// checksum, the way the buffer pool and the WAL scanner detect torn pages.
func checksumOK(t *testing.T, d *Disk, id storage.PageID) bool {
	t.Helper()
	buf, err := d.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := d.Checksum(id)
	if !ok {
		t.Fatalf("no checksum recorded for %v", id)
	}
	return storage.PageChecksum(buf) == want
}

// TestCrashPointArming checks named crash points fire on the requested
// occurrence and disarm themselves.
func TestCrashPointArming(t *testing.T) {
	defer DisarmCrashPoints()
	ArmCrashPoint("txn.commit", 2)
	CrashPoint("txn.begin")  // different name: no panic
	CrashPoint("txn.commit") // first hit: no panic
	fired := false
	func() {
		defer func() {
			c, ok := AsCrash(recover())
			fired = ok
			if ok && c.Point != "txn.commit" {
				t.Errorf("crash point = %q", c.Point)
			}
		}()
		CrashPoint("txn.commit")
	}()
	if !fired {
		t.Fatal("second hit did not fire")
	}
	CrashPoint("txn.commit") // disarmed after firing: no panic
}

// TestCrashPointRecording checks the dry-run mode used by the sweep harness
// to enumerate injectable points.
func TestCrashPointRecording(t *testing.T) {
	defer DisarmCrashPoints()
	StartCrashPointRecording()
	CrashPoint("a")
	CrashPoint("a")
	CrashPoint("b")
	got := RecordedCrashPoints()
	if got["a"] != 2 || got["b"] != 1 {
		t.Errorf("recorded = %v", got)
	}
	// Recording must never fire.
	CrashPoint("a")
}
