package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"spatialjoin/internal/storage"
)

// newDisk returns a healthy disk with one file of n written pages, plus the
// page ids.
func newDisk(t *testing.T, n int) (*storage.Disk, []storage.PageID) {
	t.Helper()
	d := storage.NewDisk(256)
	f := d.CreateFile()
	ids := make([]storage.PageID, n)
	for i := range ids {
		id, err := d.AllocPage(f)
		if err != nil {
			t.Fatalf("AllocPage: %v", err)
		}
		buf := make([]byte, d.PageSize())
		for j := range buf {
			buf[j] = byte(i + j)
		}
		if err := d.WritePage(id, buf); err != nil {
			t.Fatalf("WritePage: %v", err)
		}
		ids[i] = id
	}
	return d, ids
}

func TestScheduleIsDeterministic(t *testing.T) {
	trace := func() []bool {
		inner, ids := newDisk(t, 8)
		fd := Wrap(inner, Options{Seed: 42, TransientReadRate: 0.5})
		var out []bool
		for round := 0; round < 10; round++ {
			for _, id := range ids {
				_, err := fd.ReadPage(id)
				out = append(out, err != nil)
			}
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at attempt %d: %v vs %v", i, a[i], b[i])
		}
	}
	var faults int
	for _, f := range a {
		if f {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("rate 0.5 schedule gave %d/%d faults; want a mix", faults, len(a))
	}
}

func TestSeedsGiveDifferentSchedules(t *testing.T) {
	trace := func(seed int64) []bool {
		inner, ids := newDisk(t, 8)
		fd := Wrap(inner, Options{Seed: seed, TransientReadRate: 0.5})
		var out []bool
		for round := 0; round < 10; round++ {
			for _, id := range ids {
				_, err := fd.ReadPage(id)
				out = append(out, err != nil)
			}
		}
		return out
	}
	a, b := trace(1), trace(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestErrorClassification(t *testing.T) {
	tr := &Error{Op: "read", Page: storage.PageID{File: 0, Page: 3}, Kind: Transient, Attempt: 7}
	pe := &Error{Op: "write", Page: storage.PageID{File: 1, Page: 0}, Kind: Permanent, Attempt: 1}

	if !errors.Is(tr, ErrTransient) || errors.Is(tr, ErrPermanent) {
		t.Errorf("transient error misclassified by errors.Is: %v", tr)
	}
	if !errors.Is(pe, ErrPermanent) || errors.Is(pe, ErrTransient) {
		t.Errorf("permanent error misclassified by errors.Is: %v", pe)
	}
	if !storage.IsTransient(tr) || storage.IsTransient(pe) {
		t.Error("storage.IsTransient disagrees with fault classification")
	}
	if !IsPermanent(pe) || IsPermanent(tr) {
		t.Error("IsPermanent disagrees with fault classification")
	}

	// Classification must survive fmt.Errorf("%w") wrapping.
	wrapped := errors.Join(errors.New("context"), tr)
	if !errors.Is(wrapped, ErrTransient) || !storage.IsTransient(wrapped) {
		t.Error("classification lost through wrapping")
	}
	var fe *Error
	if !errors.As(wrapped, &fe) || fe.Attempt != 7 {
		t.Error("errors.As failed to recover *Error through wrapping")
	}
}

func TestLoseAndHealPage(t *testing.T) {
	inner, ids := newDisk(t, 2)
	fd := Wrap(inner, Options{Seed: 1})

	fd.LosePage(ids[0])
	if _, err := fd.ReadPage(ids[0]); !errors.Is(err, ErrPermanent) {
		t.Fatalf("read of lost page: got %v, want ErrPermanent", err)
	}
	if err := fd.WritePage(ids[0], make([]byte, inner.PageSize())); !errors.Is(err, ErrPermanent) {
		t.Fatalf("write of lost page: got %v, want ErrPermanent", err)
	}
	if _, err := fd.ReadPage(ids[1]); err != nil {
		t.Fatalf("read of healthy page alongside lost one: %v", err)
	}

	fd.HealPage(ids[0])
	if _, err := fd.ReadPage(ids[0]); err != nil {
		t.Fatalf("read after HealPage: %v", err)
	}
	if fd.Stats().ReadFaults == 0 || fd.Stats().WriteFaults == 0 {
		t.Errorf("lost-page faults not counted: %+v", fd.Stats())
	}
}

func TestTearPageCorruptsEveryRead(t *testing.T) {
	inner, ids := newDisk(t, 1)
	fd := Wrap(inner, Options{Seed: 1})
	clean, err := fd.ReadPage(ids[0])
	if err != nil {
		t.Fatalf("clean read: %v", err)
	}

	fd.TearPage(ids[0])
	for i := 0; i < 3; i++ {
		buf, err := fd.ReadPage(ids[0])
		if err != nil {
			t.Fatalf("torn read %d: %v", i, err)
		}
		if bytes.Equal(buf, clean) {
			t.Fatalf("torn read %d returned clean bytes", i)
		}
		want, ok := fd.Checksum(ids[0])
		if !ok || storage.PageChecksum(buf) == want {
			t.Fatalf("torn read %d passes checksum verification", i)
		}
	}

	fd.MendPage(ids[0])
	buf, err := fd.ReadPage(ids[0])
	if err != nil || !bytes.Equal(buf, clean) {
		t.Fatalf("read after MendPage: err=%v, clean=%v", err, bytes.Equal(buf, clean))
	}
}

func TestCorruptRateFlipsBitsSilently(t *testing.T) {
	inner, ids := newDisk(t, 1)
	fd := Wrap(inner, Options{Seed: 9, CorruptRate: 1})
	buf, err := fd.ReadPage(ids[0])
	if err != nil {
		t.Fatalf("corrupted read should report success: %v", err)
	}
	want, ok := fd.Checksum(ids[0])
	if !ok {
		t.Fatal("no recorded checksum")
	}
	if storage.PageChecksum(buf) == want {
		t.Fatal("CorruptRate=1 read passed checksum verification")
	}
	if fd.Stats().ReadFaults == 0 {
		t.Error("corruption not counted in ReadFaults")
	}
}

func TestLatencyInjection(t *testing.T) {
	inner, ids := newDisk(t, 1)
	var slept time.Duration
	opts := Options{Seed: 1, ReadLatency: 3 * time.Millisecond, sleep: func(d time.Duration) { slept += d }}
	fd := Wrap(inner, opts)
	for i := 0; i < 4; i++ {
		if _, err := fd.ReadPage(ids[0]); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	if want := 12 * time.Millisecond; slept != want {
		t.Fatalf("injected latency = %v, want %v", slept, want)
	}
}

// TestPoolRecoversFromTransients drives a buffer pool over a flaky device:
// with a retry budget that comfortably exceeds the fault streaks in this
// seed's schedule, every fetch succeeds, and both the retries and the
// injected faults are visible in the statistics.
func TestPoolRecoversFromTransients(t *testing.T) {
	inner, ids := newDisk(t, 8)
	fd := Wrap(inner, Options{Seed: 7, TransientReadRate: 0.5})
	pool, err := storage.NewBufferPool(fd, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool.SetRetryPolicy(storage.RetryPolicy{MaxAttempts: 20})

	for round := 0; round < 4; round++ {
		for _, id := range ids {
			if _, err := pool.Fetch(id); err != nil {
				t.Fatalf("fetch %v round %d: %v", id, round, err)
			}
		}
		if err := pool.DropAll(); err != nil {
			t.Fatalf("DropAll: %v", err)
		}
	}

	ps, ds := pool.Stats(), fd.Stats()
	if ps.ReadRetries == 0 {
		t.Errorf("no read retries recorded: %+v", ps)
	}
	if ds.ReadFaults == 0 {
		t.Errorf("no read faults recorded: %+v", ds)
	}
	if ps.Misses+ps.ReadRetries != ds.Reads+ds.ReadFaults {
		t.Errorf("attempt accounting: pool %d+%d physical attempts, device saw %d+%d",
			ps.Misses, ps.ReadRetries, ds.Reads, ds.ReadFaults)
	}
}

// TestPoolSurfacesPermanentLoss checks the pool gives up immediately on a
// lost page and the typed classification survives its error wrapping.
func TestPoolSurfacesPermanentLoss(t *testing.T) {
	inner, ids := newDisk(t, 2)
	fd := Wrap(inner, Options{Seed: 7})
	pool, err := storage.NewBufferPool(fd, 2)
	if err != nil {
		t.Fatal(err)
	}

	fd.LosePage(ids[1])
	_, err = pool.Fetch(ids[1])
	if err == nil {
		t.Fatal("fetch of lost page succeeded")
	}
	if !errors.Is(err, ErrPermanent) || !IsPermanent(err) {
		t.Fatalf("lost-page fetch error lost its classification: %v", err)
	}
	if storage.IsTransient(err) {
		t.Fatalf("lost-page fetch error claims to be transient: %v", err)
	}
	if retries := pool.Stats().ReadRetries; retries != 0 {
		t.Errorf("pool retried a permanent fault %d times", retries)
	}
}

// TestPoolDetectsTornPage checks that at-rest corruption is caught by the
// pool's end-to-end verification and classified permanent after the retry
// budget is exhausted — never returned as data.
func TestPoolDetectsTornPage(t *testing.T) {
	inner, ids := newDisk(t, 1)
	fd := Wrap(inner, Options{Seed: 7})
	pool, err := storage.NewBufferPool(fd, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.SetRetryPolicy(storage.RetryPolicy{MaxAttempts: 3})

	fd.TearPage(ids[0])
	_, err = pool.Fetch(ids[0])
	if err == nil {
		t.Fatal("fetch of torn page succeeded")
	}
	if !storage.IsChecksum(err) {
		t.Fatalf("torn-page fetch error is not a checksum error: %v", err)
	}
	if !IsPermanent(err) {
		t.Fatalf("torn-page fetch error not classified permanent: %v", err)
	}
	if retries := pool.Stats().ReadRetries; retries != 2 {
		t.Errorf("torn page retried %d times, want 2 (budget 3)", retries)
	}
}
