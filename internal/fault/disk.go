package fault

import (
	"sync"
	"sync/atomic"
	"time"

	"spatialjoin/internal/storage"
)

// Options configures a fault schedule. Rates are probabilities in [0, 1]
// evaluated independently per physical attempt, derived deterministically
// from Seed — two devices with the same Options replay the same schedule.
type Options struct {
	// Seed drives every schedule decision. Different seeds give
	// statistically independent schedules at the same rates.
	Seed int64
	// TransientReadRate is the probability a physical read attempt fails
	// with a retryable fault before touching the device.
	TransientReadRate float64
	// TransientWriteRate is the same for write attempts.
	TransientWriteRate float64
	// CorruptRate is the probability a successful read transfer is damaged
	// in flight: the call returns corrupted bytes and a nil error, and the
	// buffer pool's checksum verification must catch it.
	CorruptRate float64
	// ReadLatency is injected before every physical read attempt.
	ReadLatency time.Duration
	// WriteLatency is injected before every physical write attempt.
	WriteLatency time.Duration

	// sleep overrides time.Sleep in tests; nil means time.Sleep.
	sleep func(time.Duration)
}

// Disk wraps a storage.Device with the fault schedule described by Options,
// plus dynamically injected page states (lost, torn). It implements
// storage.Device and is safe for concurrent use.
//
// Fault accounting: injected failures count in DiskStats.ReadFaults /
// WriteFaults. A transiently failed attempt never reaches the inner device,
// so physical reads that moved data = inner Reads; total attempts =
// Reads + ReadFaults. A corrupted read did move data, so it counts in both
// Reads and ReadFaults.
type Disk struct {
	inner storage.Device
	opts  Options

	mu           sync.Mutex
	lost         map[storage.PageID]bool
	torn         map[storage.PageID]bool
	readAttempts map[storage.PageID]int64
	writeAttempt map[storage.PageID]int64
	crashAt      int64 // crash on this write-attempt ordinal; 0 = disarmed
	writeSeq     int64 // write attempts since the schedule was armed
	crashed      bool  // device is down until Reboot

	readFaults  atomic.Int64
	writeFaults atomic.Int64
}

var _ storage.Device = (*Disk)(nil)

// Salts decorrelate the independent decision streams drawn from one seed.
const (
	saltRead    = 0x72656164 // "read"
	saltWrite   = 0x77726974 // "writ"
	saltCorrupt = 0x636f7272 // "corr"
	saltBit     = 0x62697421 // "bit!"
)

// Wrap returns a fault-injecting view of inner under the given schedule.
func Wrap(inner storage.Device, opts Options) *Disk {
	return &Disk{
		inner:        inner,
		opts:         opts,
		lost:         make(map[storage.PageID]bool),
		torn:         make(map[storage.PageID]bool),
		readAttempts: make(map[storage.PageID]int64),
		writeAttempt: make(map[storage.PageID]int64),
	}
}

// Inner returns the wrapped device.
func (d *Disk) Inner() storage.Device { return d.inner }

// LosePage marks a page permanently lost: every subsequent read or write
// fails with a Permanent *Error until HealPage.
func (d *Disk) LosePage(id storage.PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lost[id] = true
}

// HealPage clears a LosePage mark.
func (d *Disk) HealPage(id storage.PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.lost, id)
}

// TearPage marks a page torn: every subsequent read transfers with the same
// bit flipped, so checksum verification fails deterministically on each
// retry — the signature of data corrupted at rest rather than in flight.
func (d *Disk) TearPage(id storage.PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.torn[id] = true
}

// MendPage clears a TearPage mark.
func (d *Disk) MendPage(id storage.PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.torn, id)
}

// PageSize returns the inner device's page size.
func (d *Disk) PageSize() int { return d.inner.PageSize() }

// CreateFile allocates a file on the inner device.
func (d *Disk) CreateFile() storage.FileID { return d.inner.CreateFile() }

// AllocPage allocates a page on the inner device. Allocation is metadata,
// not a transfer; the schedule does not touch it.
func (d *Disk) AllocPage(f storage.FileID) (storage.PageID, error) { return d.inner.AllocPage(f) }

// NumPages returns the inner device's page count for f.
func (d *Disk) NumPages(f storage.FileID) int { return d.inner.NumPages(f) }

// Files reports the inner device's file count when it exposes one, so a
// snapshot export can enumerate files through the fault wrapper.
func (d *Disk) Files() int {
	if fc, ok := d.inner.(interface{ Files() int }); ok {
		return fc.Files()
	}
	return 0
}

// Checksum returns the inner device's recorded checksum — the ground truth
// the buffer pool verifies transfers against, deliberately out of reach of
// the fault schedule.
func (d *Disk) Checksum(id storage.PageID) (uint32, bool) { return d.inner.Checksum(id) }

// ReadPage runs one physical read attempt through the schedule: injected
// latency, then possibly a transient failure (no transfer), a permanent
// failure (lost page), or a transfer with in-flight or at-rest corruption.
func (d *Disk) ReadPage(id storage.PageID) ([]byte, error) {
	d.pause(d.opts.ReadLatency)
	d.mu.Lock()
	d.readAttempts[id]++
	attempt := d.readAttempts[id]
	lost, torn := d.lost[id], d.torn[id]
	crashed := d.crashed
	d.mu.Unlock()

	if crashed {
		d.readFaults.Add(1)
		return nil, &Error{Op: "read", Page: id, Kind: Permanent, Attempt: attempt,
			Err: errCrashed}
	}
	if lost {
		d.readFaults.Add(1)
		return nil, &Error{Op: "read", Page: id, Kind: Permanent, Attempt: attempt}
	}
	if d.decide(saltRead, id, attempt, d.opts.TransientReadRate) {
		d.readFaults.Add(1)
		return nil, &Error{Op: "read", Page: id, Kind: Transient, Attempt: attempt}
	}
	buf, err := d.inner.ReadPage(id)
	if err != nil {
		return nil, err
	}
	if torn {
		d.readFaults.Add(1)
		flipBit(buf, 0) // same bit every read: corruption at rest
		return buf, nil
	}
	if d.decide(saltCorrupt, id, attempt, d.opts.CorruptRate) {
		d.readFaults.Add(1)
		h := d.hash(saltBit, id, attempt)
		flipBit(buf, int(h%uint64(len(buf)*8)))
		return buf, nil
	}
	return buf, nil
}

// WritePage runs one physical write attempt through the schedule. A
// successful write mends a torn page: fresh bytes replace the damaged
// sector, which is what lets recovery replay images over crash-torn pages.
func (d *Disk) WritePage(id storage.PageID, buf []byte) error {
	d.pause(d.opts.WriteLatency)
	d.mu.Lock()
	d.writeAttempt[id]++
	attempt := d.writeAttempt[id]
	lost := d.lost[id]
	if d.crashed {
		d.mu.Unlock()
		d.writeFaults.Add(1)
		return &Error{Op: "write", Page: id, Kind: Permanent, Attempt: attempt,
			Err: errCrashed}
	}
	if d.crashAt > 0 {
		d.writeSeq++
		if d.writeSeq >= d.crashAt {
			// The doomed write tears its page instead of completing and
			// takes the device down, simulating power loss mid-sector.
			d.torn[id] = true
			d.crashed = true
			n := d.writeSeq
			d.mu.Unlock()
			d.writeFaults.Add(1)
			panic(&Crash{Writes: n, Page: id})
		}
	}
	d.mu.Unlock()

	if lost {
		d.writeFaults.Add(1)
		return &Error{Op: "write", Page: id, Kind: Permanent, Attempt: attempt}
	}
	if d.decide(saltWrite, id, attempt, d.opts.TransientWriteRate) {
		d.writeFaults.Add(1)
		return &Error{Op: "write", Page: id, Kind: Transient, Attempt: attempt}
	}
	if err := d.inner.WritePage(id, buf); err != nil {
		return err
	}
	d.mu.Lock()
	delete(d.torn, id)
	d.mu.Unlock()
	return nil
}

// Stats merges the inner device's transfer counters with the injected
// fault counters.
func (d *Disk) Stats() storage.DiskStats {
	s := d.inner.Stats()
	s.ReadFaults += d.readFaults.Load()
	s.WriteFaults += d.writeFaults.Load()
	return s
}

// ResetStats zeroes both the inner counters and the fault counters. The
// per-page attempt indices are NOT reset: the schedule keeps advancing, so
// resetting statistics mid-run cannot replay the same faults.
func (d *Disk) ResetStats() {
	d.inner.ResetStats()
	d.readFaults.Store(0)
	d.writeFaults.Store(0)
}

// hash draws one 64-bit value from the (seed, salt, page, attempt) stream.
func (d *Disk) hash(salt uint64, id storage.PageID, attempt int64) uint64 {
	x := uint64(d.opts.Seed)
	x = mix64(x ^ salt)
	x = mix64(x ^ uint64(id.File)<<32 ^ uint64(uint32(id.Page)))
	x = mix64(x ^ uint64(attempt))
	return x
}

// decide reports whether this attempt is scheduled to fault at the given
// rate.
func (d *Disk) decide(salt uint64, id storage.PageID, attempt int64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := d.hash(salt, id, attempt)
	return float64(h>>11)/float64(1<<53) < rate
}

// pause injects device latency.
func (d *Disk) pause(t time.Duration) {
	if t <= 0 {
		return
	}
	if d.opts.sleep != nil {
		d.opts.sleep(t)
		return
	}
	time.Sleep(t)
}

// flipBit flips bit i (counting across the buffer) in place.
func flipBit(buf []byte, i int) {
	buf[i/8] ^= 1 << (i % 8)
}

// mix64 is the SplitMix64 finalizer, a cheap statistically strong mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
