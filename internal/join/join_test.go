package join

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/storage"
)

// fixture bundles a loaded relation, its generalization tree and the shared
// pool.
type fixture struct {
	pool  *storage.BufferPool
	table Table
	tree  core.Tree
	rects []geom.Rect
}

// newFixture loads n random rectangles into a relation (clustered by tree
// BFS order or shuffled) and builds the matching model generalization tree.
func newFixture(t *testing.T, pool *storage.BufferPool, seed int64, k, height int,
	placement relation.Placement) fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	world := geom.NewRect(0, 0, 1000, 1000)
	tree, n := datagen.ModelTree(rng, world, k, height)

	// The tree's node rectangles are the tuples' spatial values; collect in
	// tuple-ID order.
	rects := make([]geom.Rect, n)
	core.Walk(tree, func(nd core.Node, _ int) bool {
		if id, ok := nd.Tuple(); ok {
			rects[id] = nd.Bounds()
		}
		return true
	})
	sch, err := relation.NewSchema(
		relation.Column{Name: "id", Type: relation.TypeInt64},
		relation.Column{Name: "mbr", Type: relation.TypeRect},
	)
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{int64(i), rects[i]}
	}
	rel, err := relation.BulkLoad(pool, "objects", sch, tuples, placement, 0.75, seed)
	if err != nil {
		t.Fatal(err)
	}
	table, err := NewTable(rel, 1, pool)
	if err != nil {
		t.Fatal(err)
	}
	return fixture{pool: pool, table: table, tree: tree, rects: rects}
}

func newPool(t *testing.T, capacity int) *storage.BufferPool {
	t.Helper()
	bp, err := storage.NewBufferPool(storage.NewDisk(2000), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func sortMatches(ms []core.Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].R != ms[j].R {
			return ms[i].R < ms[j].R
		}
		return ms[i].S < ms[j].S
	})
}

func equalMatchSets(t *testing.T, label string, got, want []core.Match) {
	t.Helper()
	sortMatches(got)
	sortMatches(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestNewTableValidation(t *testing.T) {
	pool := newPool(t, 16)
	sch, _ := relation.NewSchema(
		relation.Column{Name: "id", Type: relation.TypeInt64},
		relation.Column{Name: "mbr", Type: relation.TypeRect},
	)
	rel, _ := relation.Create(pool, "r", sch, 0.75)
	if _, err := NewTable(rel, 0, pool); err == nil {
		t.Error("non-spatial column must fail")
	}
	if _, err := NewTable(rel, 5, pool); err == nil {
		t.Error("out-of-range column must fail")
	}
	if _, err := NewTable(rel, 1, nil); err == nil {
		t.Error("nil pool must fail")
	}
	if _, err := NewTable(rel, 1, pool); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}

func TestStatsCostAndAdd(t *testing.T) {
	s := Stats{FilterEvals: 2, ExactEvals: 3, PageReads: 4, IndexReads: 1}
	if got := s.Cost(1, 1000); got != 5+5000 {
		t.Fatalf("Cost = %g", got)
	}
	sum := s.Add(Stats{FilterEvals: 1, ExactEvals: 1, PageReads: 1, IndexReads: 1})
	if sum != (Stats{FilterEvals: 3, ExactEvals: 4, PageReads: 5, IndexReads: 2}) {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestAllJoinStrategiesAgree(t *testing.T) {
	pool := newPool(t, 64)
	fr := newFixture(t, pool, 1, 3, 3, relation.PlaceSequential)
	fs := newFixture(t, pool, 2, 3, 3, relation.PlaceShuffled)
	for _, op := range []pred.Operator{pred.Overlaps{}, pred.WithinDistance{D: 120}, pred.NorthwestOf{}} {
		nl, nlStats, err := NestedLoop(fr.table, fs.table, op)
		if err != nil {
			t.Fatal(err)
		}
		tj, tjStats, err := TreeJoin(fr.tree, fr.table, fs.tree, fs.table, op)
		if err != nil {
			t.Fatal(err)
		}
		ix, _, err := BuildIndex(fr.table, fs.table, op, 100)
		if err != nil {
			t.Fatal(err)
		}
		ij, ijStats, err := IndexJoin(ix, fr.table, fs.table)
		if err != nil {
			t.Fatal(err)
		}
		equalMatchSets(t, "tree vs nested "+op.Name(), tj, nl)
		equalMatchSets(t, "index vs nested "+op.Name(), ij, nl)
		if nlStats.ExactEvals != int64(fr.table.Rel.Len())*int64(fs.table.Rel.Len()) {
			t.Fatalf("nested loop must evaluate every pair, got %d", nlStats.ExactEvals)
		}
		if tjStats.FilterEvals == 0 {
			t.Fatal("tree join must report filter evals")
		}
		if ijStats.ExactEvals != 0 || ijStats.FilterEvals != 0 {
			t.Fatal("index join must not evaluate predicates")
		}
	}
}

func TestAllSelectStrategiesAgree(t *testing.T) {
	pool := newPool(t, 64)
	f := newFixture(t, pool, 3, 3, 3, relation.PlaceSequential)
	o := geom.NewRect(100, 100, 420, 380)
	for _, op := range []pred.Operator{pred.Overlaps{}, pred.WithinDistance{D: 150}} {
		ex, exStats, err := ExhaustiveSelect(f.table, o, op)
		if err != nil {
			t.Fatal(err)
		}
		tb, _, err := TreeSelect(f.tree, f.table, o, op, core.BreadthFirst)
		if err != nil {
			t.Fatal(err)
		}
		td, _, err := TreeSelect(f.tree, f.table, o, op, core.DepthFirst)
		if err != nil {
			t.Fatal(err)
		}
		sort.Ints(ex)
		sort.Ints(tb)
		sort.Ints(td)
		if len(ex) != len(tb) || len(ex) != len(td) {
			t.Fatalf("%s: exhaustive %d, BFS %d, DFS %d", op.Name(), len(ex), len(tb), len(td))
		}
		for i := range ex {
			if ex[i] != tb[i] || ex[i] != td[i] {
				t.Fatalf("%s: selection mismatch at %d", op.Name(), i)
			}
		}
		if exStats.ExactEvals != int64(f.table.Rel.Len()) {
			t.Fatalf("exhaustive select must test every tuple, got %d", exStats.ExactEvals)
		}
	}
}

func TestIndexSelectMatchesTreeSelect(t *testing.T) {
	pool := newPool(t, 64)
	fr := newFixture(t, pool, 4, 3, 2, relation.PlaceSequential)
	fs := newFixture(t, pool, 5, 3, 2, relation.PlaceSequential)
	op := pred.Overlaps{}
	ix, _, err := BuildIndex(fr.table, fs.table, op, 50)
	if err != nil {
		t.Fatal(err)
	}
	// For every R tuple, the index's answer must equal a fresh selection.
	for rid := 0; rid < fr.table.Rel.Len(); rid += 7 {
		obj, err := fr.table.Rel.Spatial(rid, fr.table.Col)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := TreeSelect(fs.tree, fs.table, obj, op, core.BreadthFirst)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := IndexSelect(ix, rid, fs.table)
		if err != nil {
			t.Fatal(err)
		}
		sort.Ints(want)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("rid %d: index %d matches, select %d", rid, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rid %d: mismatch at %d", rid, i)
			}
		}
		if len(got) > 0 && stats.IndexReads == 0 {
			t.Fatal("index select must charge index reads")
		}
	}
}

func TestClusteredLayoutReducesSelectIO(t *testing.T) {
	// The paper's IIa vs IIb comparison, measured: the same SELECT over the
	// same tree costs fewer page reads when tuples are clustered in BFS
	// order than when they are scattered. Small pool forces real I/O.
	mk := func(placement relation.Placement) int64 {
		pool := newPool(t, 12)
		f := newFixture(t, pool, 6, 4, 3, placement)
		pool.DropAll()
		pool.ResetStats()
		_, stats, err := TreeSelect(f.tree, f.table, geom.NewRect(0, 0, 400, 400),
			pred.Overlaps{}, core.BreadthFirst)
		if err != nil {
			t.Fatal(err)
		}
		return stats.PageReads
	}
	clustered := mk(relation.PlaceSequential)
	shuffled := mk(relation.PlaceShuffled)
	if clustered >= shuffled {
		t.Fatalf("clustered reads (%d) must be below unclustered (%d)", clustered, shuffled)
	}
}

func TestNestedLoopRequiresSharedPool(t *testing.T) {
	p1, p2 := newPool(t, 16), newPool(t, 16)
	f1 := newFixture(t, p1, 7, 2, 2, relation.PlaceSequential)
	f2 := newFixture(t, p2, 8, 2, 2, relation.PlaceSequential)
	if _, _, err := NestedLoop(f1.table, f2.table, pred.Overlaps{}); err == nil {
		t.Fatal("separate pools must be rejected")
	}
}

func TestTreeJoinSeparatePoolsCounted(t *testing.T) {
	p1, p2 := newPool(t, 12), newPool(t, 12)
	f1 := newFixture(t, p1, 9, 3, 2, relation.PlaceSequential)
	f2 := newFixture(t, p2, 10, 3, 2, relation.PlaceSequential)
	p1.DropAll()
	p2.DropAll()
	pairs, stats, err := TreeJoin(f1.tree, f1.table, f2.tree, f2.table, pred.Overlaps{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("trees over the same world must produce pairs")
	}
	if stats.PageReads == 0 {
		t.Fatal("cold-cache tree join must read pages from both pools")
	}
}

func TestIndexJoinChargesIndexPages(t *testing.T) {
	pool := newPool(t, 64)
	fr := newFixture(t, pool, 11, 3, 2, relation.PlaceSequential)
	fs := newFixture(t, pool, 12, 3, 2, relation.PlaceSequential)
	ix, buildStats, err := BuildIndex(fr.table, fs.table, pred.Overlaps{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if buildStats.ExactEvals == 0 {
		t.Fatal("build must evaluate pairs")
	}
	_, stats, err := IndexJoin(ix, fr.table, fs.table)
	if err != nil {
		t.Fatal(err)
	}
	wantPages := int64((ix.Len() + 9) / 10)
	if stats.IndexReads != wantPages {
		t.Fatalf("index reads = %d, want %d", stats.IndexReads, wantPages)
	}
}

func TestIndexJoinEmptyIndex(t *testing.T) {
	pool := newPool(t, 16)
	fr := newFixture(t, pool, 13, 2, 1, relation.PlaceSequential)
	fs := newFixture(t, pool, 14, 2, 1, relation.PlaceSequential)
	ix, _, err := BuildIndex(fr.table, fs.table, pred.WithinDistance{D: 0.000001}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A join of objects that essentially never match centerpoint-exactly.
	pairs, stats, err := IndexJoin(ix, fr.table, fs.table)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != ix.Len() {
		t.Fatalf("pairs = %d, index len = %d", len(pairs), ix.Len())
	}
	if ix.Len() == 0 && stats.IndexReads != 0 {
		t.Fatal("empty index must charge no index pages")
	}
}

func TestNestedLoopSmallPoolStillCorrect(t *testing.T) {
	// A pool barely above the minimum forces multiple blocks; results must
	// still be exact.
	pool := newPool(t, 12)
	fr := newFixture(t, pool, 15, 3, 2, relation.PlaceShuffled)
	fs := newFixture(t, pool, 16, 3, 2, relation.PlaceShuffled)
	nl, _, err := NestedLoop(fr.table, fs.table, pred.Overlaps{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference via big-pool run.
	pool2 := newPool(t, 256)
	fr2 := newFixture(t, pool2, 15, 3, 2, relation.PlaceShuffled)
	fs2 := newFixture(t, pool2, 16, 3, 2, relation.PlaceShuffled)
	ref, _, err := NestedLoop(fr2.table, fs2.table, pred.Overlaps{})
	if err != nil {
		t.Fatal(err)
	}
	equalMatchSets(t, "blocked vs reference", nl, ref)
}

func TestTreeJoinOverRTreesMatchesNestedLoop(t *testing.T) {
	// End-to-end: R-tree indices (technical interior nodes) as the
	// generalization trees over stored relations.
	pool := newPool(t, 64)
	rng := rand.New(rand.NewSource(17))
	world := geom.NewRect(0, 0, 500, 500)
	sch, _ := relation.NewSchema(
		relation.Column{Name: "id", Type: relation.TypeInt64},
		relation.Column{Name: "mbr", Type: relation.TypeRect},
	)
	mk := func(name string, n int) (Table, core.Tree) {
		rects := datagen.UniformRects(rng, n, world, 2, 30)
		tuples := make([]relation.Tuple, n)
		rt := rtree.MustNew(rtree.DefaultOptions())
		for i, r := range rects {
			tuples[i] = relation.Tuple{int64(i), r}
			rt.Insert(r, i)
		}
		rel, err := relation.BulkLoad(pool, name, sch, tuples, relation.PlaceSequential, 0.75, 1)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := NewTable(rel, 1, pool)
		if err != nil {
			t.Fatal(err)
		}
		return tab, rt.Generalization()
	}
	rTab, rTree := mk("r", 150)
	sTab, sTree := mk("s", 150)
	nl, _, err := NestedLoop(rTab, sTab, pred.Overlaps{})
	if err != nil {
		t.Fatal(err)
	}
	tj, _, err := TreeJoin(rTree, rTab, sTree, sTab, pred.Overlaps{})
	if err != nil {
		t.Fatal(err)
	}
	equalMatchSets(t, "rtree join vs nested loop", tj, nl)
}
