package join

import (
	"context"
	"fmt"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/joinindex"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/parallel"
	"spatialjoin/internal/pred"
	"spatialjoin/internal/storage"
)

// ctxStride is how many inner-loop iterations (tuple scans, index-pair
// probes) pass between context checks; it bounds cancellation latency
// without a per-iteration synchronized load.
const ctxStride = 256

// ctxStep returns the context's error on every ctxStride-th iteration.
func ctxStep(ctx context.Context, i int) error {
	if ctx == nil || i%ctxStride != 0 {
		return nil
	}
	return ctx.Err()
}

// execSpan opens a strategy's executor span from the context's trace and
// returns the trace, the span, and the context rewired so spans opened by
// deeper layers (the per-level descent) nest under it. With no trace armed
// it returns a nil trace and the context unchanged.
func execSpan(ctx context.Context, name string) (*obs.Trace, obs.SpanID, context.Context) {
	trace := obs.TraceFrom(ctx)
	if trace == nil {
		return nil, 0, ctx
	}
	span := trace.Begin(obs.SpanFromContext(ctx), name)
	return trace, span, obs.ContextWithSpan(ctx, span)
}

// endExec closes an executor span with the strategy's measured stats. A
// failed execution still closes its span — with an "error" event and the
// partial stats — so degraded queries keep complete traces.
func endExec(trace *obs.Trace, span obs.SpanID, stats Stats, err error) {
	if trace == nil {
		return
	}
	if err != nil {
		trace.Event(span, "error", obs.Str("error", err.Error()))
	}
	trace.End(span,
		obs.Int("filter_evals", stats.FilterEvals),
		obs.Int("exact_evals", stats.ExactEvals),
		obs.Int("page_reads", stats.PageReads),
		obs.Int("index_reads", stats.IndexReads),
	)
}

// NestedLoop computes R ⋈θ S by the paper's strategy I with the default
// single worker. See NestedLoopWorkers.
func NestedLoop(r, s Table, op pred.Operator) ([]core.Match, Stats, error) {
	return NestedLoopWorkers(r, s, op, 1)
}

// NestedLoopWorkers computes R ⋈θ S by the paper's strategy I: blocks of R
// filling most of main memory (M−10 pages worth of tuples), each scanned
// against the whole of S. Both tables must share one buffer pool.
//
// With workers > 1 (≤ 0 meaning GOMAXPROCS) each block's scan of S is split
// into contiguous tuple-ID chunks fanned out over a worker pool; per-worker
// matches and predicate counts merge back in chunk order, so the result and
// the evaluation counts are identical to the sequential run. Page reads are
// measured across the whole join on the shared pool; with concurrent
// workers the LRU interleaving — and therefore the exact miss count — can
// differ from the sequential schedule.
func NestedLoopWorkers(r, s Table, op pred.Operator, workers int) ([]core.Match, Stats, error) {
	return NestedLoopCtx(context.Background(), r, s, op, workers)
}

// NestedLoopCtx is NestedLoopWorkers bounded by a context, checked between
// blocks and every ctxStride S-tuples inside a scan.
func NestedLoopCtx(ctx context.Context, r, s Table, op pred.Operator, workers int) ([]core.Match, Stats, error) {
	if r.Pool != s.Pool {
		return nil, Stats{}, fmt.Errorf("join: nested loop requires a shared buffer pool")
	}
	trace, span, ctx := execSpan(ctx, "nestedloop")
	workers = parallel.Workers(workers)
	var stats Stats
	var out []core.Match

	blockPages := r.Pool.Capacity() - 10
	if blockPages < 1 {
		blockPages = 1
	}
	// Group R tuple IDs by their page so a block is a set of whole pages.
	type pageGroup struct {
		page int
		ids  []int
	}
	byPage := map[int][]int{}
	maxPage := 0
	for id := 0; id < r.Rel.Len(); id++ {
		pg, err := r.Rel.PageOf(id)
		if err != nil {
			return nil, stats, err
		}
		byPage[pg] = append(byPage[pg], id)
		if pg > maxPage {
			maxPage = pg
		}
	}
	var groups []pageGroup
	for pg := 0; pg <= maxPage; pg++ {
		if ids, ok := byPage[pg]; ok {
			groups = append(groups, pageGroup{page: pg, ids: ids})
		}
	}

	type rTuple struct {
		id  int
		obj geom.Spatial
	}
	reads, err := measure(r.Pool, func() error {
		runBlock := func(start, end int) error {
			// Load the block and decode its geometries once.
			var block []rTuple
			for _, g := range groups[start:end] {
				for _, id := range g.ids {
					obj, err := r.spatial(id)
					if err != nil {
						return err
					}
					block = append(block, rTuple{id: id, obj: obj})
				}
			}
			// One full scan of S per block, chunked over the workers.
			scan := func(lo, hi int) ([]core.Match, int64, error) {
				var found []core.Match
				var evals int64
				for sid := lo; sid < hi; sid++ {
					if err := ctxStep(ctx, sid); err != nil {
						return nil, evals, err
					}
					sobj, err := s.spatial(sid)
					if err != nil {
						return nil, evals, err
					}
					for _, rt := range block {
						evals++
						if op.Eval(rt.obj, sobj) {
							found = append(found, core.Match{R: rt.id, S: sid})
						}
					}
				}
				return found, evals, nil
			}
			if workers <= 1 {
				found, evals, err := scan(0, s.Rel.Len())
				if err != nil {
					return err
				}
				stats.ExactEvals += evals
				out = append(out, found...)
				return nil
			}
			chunks := parallel.Chunks(s.Rel.Len(), workers*4)
			founds := make([][]core.Match, len(chunks))
			evals := make([]int64, len(chunks))
			err := parallel.RunCtx(ctx, workers, len(chunks), func(ci int) error {
				f, e, err := scan(chunks[ci].Lo, chunks[ci].Hi)
				founds[ci], evals[ci] = f, e
				return err
			})
			if err != nil {
				return err
			}
			for ci := range chunks {
				stats.ExactEvals += evals[ci]
				out = append(out, founds[ci]...)
			}
			return nil
		}
		for start := 0; start < len(groups); start += blockPages {
			if err := ctx.Err(); err != nil {
				return err
			}
			end := start + blockPages
			if end > len(groups) {
				end = len(groups)
			}
			if trace == nil {
				if err := runBlock(start, end); err != nil {
					return err
				}
				continue
			}
			bspan := trace.Begin(span, "block")
			bReads := r.Pool.Stats().Misses
			bEvals := stats.ExactEvals
			err := runBlock(start, end)
			if err != nil {
				trace.Event(bspan, "error", obs.Str("error", err.Error()))
			}
			trace.End(bspan,
				obs.Int("block", int64(start/blockPages)),
				obs.Int("exact_evals", stats.ExactEvals-bEvals),
				obs.Int("reads", r.Pool.Stats().Misses-bReads),
			)
			if err != nil {
				return err
			}
		}
		return nil
	})
	stats.PageReads = reads
	core.SortMatches(out)
	endExec(trace, span, stats, err)
	return out, stats, err
}

// ExhaustiveSelect computes the spatial selection {a ∈ R | o θ a} by a full
// scan — the degenerate strategy I of §4.3.
func ExhaustiveSelect(r Table, o geom.Spatial, op pred.Operator) ([]int, Stats, error) {
	return ExhaustiveSelectCtx(context.Background(), r, o, op)
}

// ExhaustiveSelectCtx is ExhaustiveSelect bounded by a context, checked
// every ctxStride tuples.
func ExhaustiveSelectCtx(ctx context.Context, r Table, o geom.Spatial, op pred.Operator) ([]int, Stats, error) {
	trace, span, ctx := execSpan(ctx, "scan")
	var stats Stats
	var out []int
	reads, err := measure(r.Pool, func() error {
		for id := 0; id < r.Rel.Len(); id++ {
			if err := ctxStep(ctx, id); err != nil {
				return err
			}
			obj, err := r.spatial(id)
			if err != nil {
				return err
			}
			stats.ExactEvals++
			if op.Eval(o, obj) {
				out = append(out, id)
			}
		}
		return nil
	})
	stats.PageReads = reads
	endExec(trace, span, stats, err)
	return out, stats, err
}

// TreeSelect computes the spatial selection with algorithm SELECT over the
// generalization tree tr, charging one page access per tuple-bearing node
// examined (the tree nodes "contain the complete tuples", §4.1, so touching
// a node means reading its tuple's page). Technical index nodes are free.
func TreeSelect(tr core.Tree, r Table, o geom.Spatial, op pred.Operator,
	traversal core.Traversal) ([]int, Stats, error) {
	return TreeSelectCtx(context.Background(), tr, r, o, op, traversal)
}

// TreeSelectCtx is TreeSelect bounded by a context, checked during the
// descent per core.SelectOptions.Ctx.
func TreeSelectCtx(ctx context.Context, tr core.Tree, r Table, o geom.Spatial, op pred.Operator,
	traversal core.Traversal) ([]int, Stats, error) {

	trace, span, ctx := execSpan(ctx, "treeselect")
	var stats Stats
	var res *core.SelectResult
	reads, err := measure(r.Pool, func() error {
		opts := &core.SelectOptions{
			Traversal: traversal,
			Ctx:       ctx,
			Touch: func(n core.Node) error {
				id, ok := n.Tuple()
				if !ok {
					return nil
				}
				return r.touch(id)
			},
		}
		if trace != nil {
			opts.Trace, opts.TraceParent = trace, span
			opts.TraceReads = func() int64 { return r.Pool.Stats().Misses }
		}
		var err error
		res, err = core.Select(tr, o, op, opts)
		return err
	})
	if err != nil {
		st := stats
		st.PageReads = reads
		endExec(trace, span, st, err)
		return nil, stats, err
	}
	stats.FilterEvals = res.Stats.FilterEvals
	stats.ExactEvals = res.Stats.ExactEvals
	stats.PageReads = reads
	endExec(trace, span, stats, nil)
	return res.Tuples, stats, nil
}

// TreeJoin computes R ⋈θ S with algorithm JOIN over two generalization
// trees with the default single worker. See TreeJoinWorkers.
func TreeJoin(trR core.Tree, r Table, trS core.Tree, s Table,
	op pred.Operator) ([]core.Match, Stats, error) {
	return TreeJoinWorkers(trR, r, trS, s, op, 1)
}

// TreeJoinWorkers computes R ⋈θ S with algorithm JOIN over two
// generalization trees, charging page accesses for tuple-bearing node
// examinations on either side. With workers > 1 (≤ 0 meaning GOMAXPROCS)
// each QualPairs level of the synchronized descent is expanded by a worker
// pool; predicate counts and the match set are identical to the sequential
// descent, while measured page reads can differ slightly because
// concurrent workers interleave their fetches on the shared LRU pool.
func TreeJoinWorkers(trR core.Tree, r Table, trS core.Tree, s Table,
	op pred.Operator, workers int) ([]core.Match, Stats, error) {
	return TreeJoinCtx(context.Background(), trR, r, trS, s, op, workers)
}

// TreeJoinCtx is TreeJoinWorkers bounded by a context, checked during the
// synchronized descent per core.JoinOptions.Ctx.
func TreeJoinCtx(ctx context.Context, trR core.Tree, r Table, trS core.Tree, s Table,
	op pred.Operator, workers int) ([]core.Match, Stats, error) {

	trace, span, ctx := execSpan(ctx, "treejoin")
	var stats Stats
	var res *core.JoinResult
	touch := func(t Table) func(core.Node) error {
		return func(n core.Node) error {
			id, ok := n.Tuple()
			if !ok {
				return nil
			}
			return t.touch(id)
		}
	}
	// The two tables may share a pool or use separate ones; measure both
	// without double counting.
	pools := []*poolDelta{newPoolDelta(r.Pool)}
	if s.Pool != r.Pool {
		pools = append(pools, newPoolDelta(s.Pool))
	}
	opts := &core.JoinOptions{
		TouchR:  touch(r),
		TouchS:  touch(s),
		Workers: parallel.Workers(workers),
		Ctx:     ctx,
	}
	if trace != nil {
		opts.Trace, opts.TraceParent = trace, span
		// Sample the same monotone miss counters poolDelta measures, so
		// the per-level "reads" attrs sum exactly to Stats.PageReads.
		opts.TraceReads = func() int64 {
			var n int64
			for _, pd := range pools {
				n += pd.pool.Stats().Misses
			}
			return n
		}
	}
	var err error
	res, err = core.Join(trR, trS, op, opts)
	if err != nil {
		st := stats
		for _, pd := range pools {
			st.PageReads += pd.delta()
		}
		endExec(trace, span, st, err)
		return nil, stats, err
	}
	for _, pd := range pools {
		stats.PageReads += pd.delta()
	}
	stats.FilterEvals = res.Stats.FilterEvals
	stats.ExactEvals = res.Stats.ExactEvals
	core.SortMatches(res.Pairs)
	endExec(trace, span, stats, nil)
	return res.Pairs, stats, nil
}

// BuildIndex precomputes the Valduriez join index for R ⋈θ S by exhaustive
// evaluation — the expensive, update-hostile step strategy III amortizes.
// order is the B+-tree order (the paper's z).
func BuildIndex(r, s Table, op pred.Operator, order int) (*joinindex.Index, Stats, error) {
	ix, err := joinindex.New(order)
	if err != nil {
		return nil, Stats{}, err
	}
	var stats Stats
	reads, err := measure(r.Pool, func() error {
		for rid := 0; rid < r.Rel.Len(); rid++ {
			robj, err := r.spatial(rid)
			if err != nil {
				return err
			}
			for sid := 0; sid < s.Rel.Len(); sid++ {
				sobj, err := s.spatial(sid)
				if err != nil {
					return err
				}
				stats.ExactEvals++
				if op.Eval(robj, sobj) {
					if _, err := ix.Add(rid, sid); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	stats.PageReads = reads
	return ix, stats, err
}

// IndexJoin computes the join from a precomputed index with the default
// single worker. See IndexJoinWorkers.
func IndexJoin(ix *joinindex.Index, r, s Table) ([]core.Match, Stats, error) {
	return IndexJoinWorkers(ix, r, s, 1)
}

// IndexJoinWorkers computes the join from a precomputed index: read the
// pairs and fetch the corresponding tuples — no predicate evaluations at
// all. Index pages are charged per the B+-tree's fill (|J|/z), plus the
// tuple fetches through the buffer pool. With workers > 1 (≤ 0 meaning
// GOMAXPROCS) the pair list is read sequentially from the B+-tree and the
// tuple probes are fanned out over contiguous chunks of it; the pair list
// itself is already in canonical (R, S) order.
func IndexJoinWorkers(ix *joinindex.Index, r, s Table, workers int) ([]core.Match, Stats, error) {
	return IndexJoinCtx(context.Background(), ix, r, s, workers)
}

// IndexJoinCtx is IndexJoinWorkers bounded by a context, checked between
// probe chunks and every ctxStride pairs inside a chunk.
func IndexJoinCtx(ctx context.Context, ix *joinindex.Index, r, s Table, workers int) ([]core.Match, Stats, error) {
	trace, span, ctx := execSpan(ctx, "indexjoin")
	var stats Stats
	pools := []*poolDelta{newPoolDelta(r.Pool)}
	if s.Pool != r.Pool {
		pools = append(pools, newPoolDelta(s.Pool))
	}
	out := make([]core.Match, 0, ix.Len())
	ix.AllPairs(func(rid, sid int) bool {
		out = append(out, core.Match{R: rid, S: sid})
		return true
	})
	_, err := parallel.RunChunksCtx(ctx, workers, len(out), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := ctxStep(ctx, i); err != nil {
				return err
			}
			if err := r.touch(out[i].R); err != nil {
				return err
			}
			if err := s.touch(out[i].S); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		st := stats
		for _, pd := range pools {
			st.PageReads += pd.delta()
		}
		st.IndexReads = indexPages(ix)
		endExec(trace, span, st, err)
		return nil, stats, err
	}
	for _, pd := range pools {
		stats.PageReads += pd.delta()
	}
	stats.IndexReads = indexPages(ix)
	trace.Annotate(span, obs.Int("pairs", int64(len(out))))
	endExec(trace, span, stats, nil)
	return out, stats, nil
}

// IndexSelect answers a spatial selection for a selector that is tuple rID
// of R, using the join index: look up its matches and fetch the S tuples.
func IndexSelect(ix *joinindex.Index, rID int, s Table) ([]int, Stats, error) {
	var stats Stats
	var out []int
	var visits int
	reads, err := measure(s.Pool, func() error {
		var ferr error
		visits = ix.MatchesOfR(rID, func(sid int) bool {
			if err := s.touch(sid); err != nil {
				ferr = err
				return false
			}
			out = append(out, sid)
			return true
		})
		return ferr
	})
	if err != nil {
		return nil, stats, err
	}
	stats.PageReads = reads
	stats.IndexReads = int64(visits)
	return out, stats, nil
}

// indexPages estimates the pages a full scan of the join index touches:
// its leaves, ⌈|J|/z⌉ with z the tree order (matching the model's paging
// charge for strategy III).
func indexPages(ix *joinindex.Index) int64 {
	n := ix.Len()
	if n == 0 {
		return 0
	}
	z := ix.Order()
	return int64((n + z - 1) / z)
}

// poolDelta tracks a buffer pool's miss counter from a start point.
type poolDelta struct {
	pool  *storage.BufferPool
	start int64
}

func newPoolDelta(pool *storage.BufferPool) *poolDelta {
	return &poolDelta{pool: pool, start: pool.Stats().Misses}
}

// delta returns the physical reads since construction.
func (pd *poolDelta) delta() int64 { return pd.pool.Stats().Misses - pd.start }
