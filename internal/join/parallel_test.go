package join

import (
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/pred"
)

// TestParallelStrategiesMatchSequential checks the tentpole invariant of
// the execution engine: for every strategy, every worker count returns the
// exact sequential result — same matches, same predicate-evaluation
// counts. Only page reads may drift, since concurrent workers interleave
// on the shared LRU pool.
func TestParallelStrategiesMatchSequential(t *testing.T) {
	pool := newPool(t, 64)
	r := newFixture(t, pool, 21, 4, 3, 0)
	s := newFixture(t, pool, 22, 4, 3, 0)
	op := pred.Overlaps{}

	wantNL, nlStats, err := NestedLoopWorkers(r.table, s.table, op, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantTJ, tjStats, err := TreeJoinWorkers(r.tree, r.table, s.tree, s.table, op, 1)
	if err != nil {
		t.Fatal(err)
	}
	ix, _, err := BuildIndex(r.table, s.table, op, 50)
	if err != nil {
		t.Fatal(err)
	}
	wantIJ, _, err := IndexJoinWorkers(ix, r.table, s.table, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantNL) == 0 {
		t.Fatal("workload produced no matches")
	}
	equalMatchSets(t, "nested-loop vs tree", append([]core.Match(nil), wantNL...),
		append([]core.Match(nil), wantTJ...))

	for _, workers := range []int{2, 3, 8, 0} {
		got, stats, err := NestedLoopWorkers(r.table, s.table, op, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalMatchSets(t, "nested loop", got, wantNL)
		if stats.ExactEvals != nlStats.ExactEvals {
			t.Errorf("nested loop workers=%d: %d exact evals, want %d",
				workers, stats.ExactEvals, nlStats.ExactEvals)
		}
		for i := range got {
			if got[i] != wantNL[i] {
				t.Fatalf("nested loop workers=%d: result not canonically ordered at %d", workers, i)
			}
		}

		got, stats, err = TreeJoinWorkers(r.tree, r.table, s.tree, s.table, op, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalMatchSets(t, "tree join", got, wantTJ)
		if stats.FilterEvals != tjStats.FilterEvals || stats.ExactEvals != tjStats.ExactEvals {
			t.Errorf("tree join workers=%d: evals (%d,%d), want (%d,%d)", workers,
				stats.FilterEvals, stats.ExactEvals, tjStats.FilterEvals, tjStats.ExactEvals)
		}

		got, _, err = IndexJoinWorkers(ix, r.table, s.table, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalMatchSets(t, "index join", got, wantIJ)
	}
}

// TestParallelJoinSeparatePools exercises the two-pool path of the tree
// join under parallel expansion: each side measures its own pool.
func TestParallelJoinSeparatePools(t *testing.T) {
	r := newFixture(t, newPool(t, 32), 23, 3, 3, 0)
	s := newFixture(t, newPool(t, 32), 24, 3, 3, 0)
	r.table.Pool.DropAll()
	s.table.Pool.DropAll()
	op := pred.Overlaps{}
	want, wantStats, err := TreeJoinWorkers(r.tree, r.table, s.tree, s.table, op, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.PageReads == 0 {
		t.Error("cold tree join measured no page reads")
	}
	got, _, err := TreeJoinWorkers(r.tree, r.table, s.tree, s.table, op, 4)
	if err != nil {
		t.Fatal(err)
	}
	equalMatchSets(t, "separate pools", got, want)
}
