// Package join provides the executable spatial-join strategies, the
// measured counterparts of the paper's cost model: blocked nested loop
// (strategy I), generalization-tree SELECT and JOIN with page charging
// (strategies IIa/IIb, depending on how the underlying relation was laid
// out), and the precomputed join index (strategy III). Every strategy runs
// against relations stored on the simulated disk of internal/storage, so
// its page I/O and predicate evaluations can be measured and compared with
// the analytical formulas of internal/costmodel.
package join

import (
	"fmt"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/storage"
)

// Stats is the measured work of one strategy execution, in the units the
// cost model weights: Θ filter evaluations and exact θ evaluations (C_Θ
// each in the model's simplification S3), physical page reads (C_IO each),
// and join-index page reads for strategy III. Downgrades counts strategy
// fallbacks the executor performed after a permanent storage fault — zero
// on a healthy device.
type Stats struct {
	FilterEvals int64
	ExactEvals  int64
	PageReads   int64
	IndexReads  int64
	Downgrades  int64
}

// Cost collapses the stats into the model's time units.
func (s Stats) Cost(cTheta, cIO float64) float64 {
	return cTheta*float64(s.FilterEvals+s.ExactEvals) +
		cIO*float64(s.PageReads+s.IndexReads)
}

// Add returns the component-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		FilterEvals: s.FilterEvals + o.FilterEvals,
		ExactEvals:  s.ExactEvals + o.ExactEvals,
		PageReads:   s.PageReads + o.PageReads,
		IndexReads:  s.IndexReads + o.IndexReads,
		Downgrades:  s.Downgrades + o.Downgrades,
	}
}

// Table couples a stored relation with its spatial join column and the
// buffer pool that serves its pages.
type Table struct {
	Rel  *relation.Relation
	Col  int
	Pool *storage.BufferPool
}

// NewTable validates that col is a spatial column of rel.
func NewTable(rel *relation.Relation, col int, pool *storage.BufferPool) (Table, error) {
	sch := rel.Schema()
	if col < 0 || col >= len(sch.Columns) {
		return Table{}, fmt.Errorf("join: column %d out of range for %s", col, rel.Name())
	}
	if !sch.Columns[col].Type.Spatial() {
		return Table{}, fmt.Errorf("join: column %q of %s is not spatial", sch.Columns[col].Name, rel.Name())
	}
	if pool == nil {
		return Table{}, fmt.Errorf("join: nil buffer pool")
	}
	return Table{Rel: rel, Col: col, Pool: pool}, nil
}

// spatial fetches the tuple's spatial value (charging page I/O through the
// pool on a miss).
func (t Table) spatial(id int) (geom.Spatial, error) {
	return t.Rel.Spatial(id, t.Col)
}

// touch fetches the page holding the tuple without decoding it.
func (t Table) touch(id int) error {
	rid, err := t.Rel.RID(id)
	if err != nil {
		return err
	}
	_, err = t.Pool.Fetch(rid.Page)
	return err
}

// measure runs f and returns the physical-read delta it caused on pool.
func measure(pool *storage.BufferPool, f func() error) (int64, error) {
	before := pool.Stats().Misses
	err := f()
	return pool.Stats().Misses - before, err
}
