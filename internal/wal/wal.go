// Package wal implements the write-ahead log behind crash-consistent
// updates: a redo-only, CRC-32C-checksummed, LSN-ordered log persisted
// through its own append-only region of the simulated disk.
//
// The log owns the first file of the device (LogFileID) and treats it as an
// append-only page device: log pages are allocated and written exactly once,
// never rewritten, so any prefix of successfully written pages is durable no
// matter where a crash lands. Each page carries the logical stream offset of
// its first payload byte, which lets a reopened log resume after a torn tail
// without rewriting history: records appended after recovery carry offsets
// that supersede the discarded garbage, and the scanner reconciles the two
// on the next recovery.
//
// The redo discipline is full-page after-images under no-steal buffering:
// transactions mutate pages only in the buffer pool, the commit path appends
// one image per dirtied page followed by a commit record, and the pool
// refuses to write back any frame whose latest changes the log does not yet
// cover (storage.BufferPool's WAL hook). Recovery therefore never needs undo:
// it replays the images of committed transactions in LSN order and discards
// everything else.
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/storage"
)

// LSN is a log sequence number: the byte offset of a record in the logical
// log stream. It is an alias of int64 so the storage layer can hold
// recovery LSNs without importing this package.
type LSN = int64

// LogFileID is the device file the log owns. The log must be created before
// any other file so that a recovering process can find it without a
// catalog — the catalog itself lives in the log.
const LogFileID storage.FileID = 0

// RecordType tags one log record.
type RecordType uint8

const (
	// RecHeader is the first record of every log: it carries the magic
	// payload that identifies the file as a WAL.
	RecHeader RecordType = iota + 1
	// RecBegin opens a transaction.
	RecBegin
	// RecImage is a full after-image of one page, the redo unit.
	RecImage
	// RecCommit makes a transaction's preceding records redo-eligible.
	RecCommit
	// RecNewCollection registers a collection: name plus the heap and
	// index file it owns (see EncodeNewCollection).
	RecNewCollection
	// RecNewJoinIndex registers a precomputed join index: the two
	// collection names, the operator name, and the backing pair file.
	RecNewJoinIndex
	// RecAbort closes a transaction without committing it: its preceding
	// records are never redo-eligible. Recovery would discard them anyway
	// (no commit record), but the explicit abort lets the checkpoint's
	// active-transaction table stay exact and gives the transaction layer
	// a release point static analysis can verify.
	RecAbort
	// RecCheckpointBegin marks the LSN a fuzzy checkpoint started at.
	RecCheckpointBegin
	// RecCheckpointEnd carries the checkpoint payload: dirty-page table,
	// active-transaction table, and the catalog/index manifest (see
	// EncodeCheckpoint). A checkpoint counts only when its end record is
	// durable.
	RecCheckpointEnd
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecHeader:
		return "header"
	case RecBegin:
		return "begin"
	case RecImage:
		return "image"
	case RecCommit:
		return "commit"
	case RecNewCollection:
		return "newcollection"
	case RecNewJoinIndex:
		return "newjoinindex"
	case RecAbort:
		return "abort"
	case RecCheckpointBegin:
		return "checkpoint-begin"
	case RecCheckpointEnd:
		return "checkpoint-end"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// magic is the RecHeader payload; a first record that does not carry it
// means the file is not a log and recovery must not touch the device.
var magic = []byte("SJWAL1")

// Record is one decoded log record.
type Record struct {
	LSN  LSN
	Type RecordType
	Txn  uint64
	Page storage.PageID // meaningful for RecImage only
	Data []byte         // page image or catalog payload
}

// Page layout: [u32 used][u64 startLSN][u32 firstRec][payload ...]. used is
// the number of payload bytes; startLSN is the logical stream offset of the
// first payload byte; firstRec is the payload offset of the first record
// that *begins* in this page (noFirstRec when every byte continues a record
// started earlier). A page with used == 0 is an unwritten allocation and
// contributes nothing to the stream.
//
// firstRec exists for log truncation: a checkpoint zeroes whole pages below
// the redo floor, and the first surviving page may open mid-record — its
// head lost with the truncated pages. The scanner re-synchronizes at
// startLSN+firstRec, the first byte that starts a parseable record.
const (
	pageHeader = 16
	noFirstRec = ^uint32(0)
)

// Record layout within the stream:
// [u64 lsn][u8 type][u64 txn][i32 file][i32 page][u32 dataLen][data][u32 crc]
// where crc is the CRC-32C (the shared page codec) of every preceding byte
// of the record.
const (
	recHeaderSize = 8 + 1 + 8 + 4 + 4 + 4
	recTrailer    = 4
	// maxDataLen bounds a record payload during parsing; anything larger is
	// treated as a torn tail rather than trusted.
	maxDataLen = 1 << 24
)

// Stats counts the log's activity. PageWrites are physical page transfers
// to the device (they also appear in the device's DiskStats.Writes, keeping
// the I/O accounting exact); PaddingBytes is the page space wasted by the
// append-only discipline (each sync seals its final partial page).
type Stats struct {
	Records      int64
	Commits      int64
	Aborts       int64
	Syncs        int64
	PageWrites   int64
	BytesLogged  int64
	PaddingBytes int64
	// Checkpoints counts durable checkpoint end records;
	// TruncatedPages counts log pages zeroed below the redo floor.
	Checkpoints    int64
	TruncatedPages int64
}

// Log is the append-only write-ahead log. It is safe for concurrent use:
// the buffer pool calls Sync and DurableLSN from eviction paths while the
// update path appends.
type Log struct {
	mu       sync.Mutex
	dev      storage.Device
	pageSize int
	group    int // commits per sync; <= 1 means sync every commit

	tail      []byte // appended records not yet written to the device
	tailStart LSN    // stream offset of tail[0]
	durable   LSN    // everything below this offset is on the device
	pending   int    // commits appended since the last sync
	bounds    []LSN  // start LSNs of buffered records, for page firstRec
	truncFrom int32  // first log page the next TruncateBelow examines
	retain    LSN    // TruncateBelow keeps records at or above this pin

	stats    Stats
	observer func(batchCommits, pagesWritten int)
}

// Create makes a fresh log on dev, which must be empty: the log claims the
// device's first file so recovery can locate it. groupCommit is the number
// of commits batched per sync (values <= 1 sync on every commit).
func Create(dev storage.Device, groupCommit int) (*Log, error) {
	id := dev.CreateFile()
	if id != LogFileID {
		return nil, fmt.Errorf("wal: log must own file %d of the device, got %d (device not empty)", LogFileID, id)
	}
	l := newLog(dev, groupCommit)
	l.append(Record{Type: RecHeader, Data: magic})
	if err := l.Sync(); err != nil {
		return nil, fmt.Errorf("wal: writing log header: %w", err)
	}
	return l, nil
}

func newLog(dev storage.Device, groupCommit int) *Log {
	if groupCommit < 1 {
		groupCommit = 1
	}
	return &Log{dev: dev, pageSize: dev.PageSize(), group: groupCommit}
}

// payloadCap returns the payload bytes one log page holds.
func (l *Log) payloadCap() int { return l.pageSize - pageHeader }

// File returns the device file the log writes.
func (l *Log) File() storage.FileID { return LogFileID }

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// SetObserver registers a callback invoked after each successful sync with
// the number of commits the sync batched and the log pages it wrote — the
// bridge the metrics layer uses to feed a group-commit batch-size
// histogram. The callback runs with the log lock held, so it must be cheap
// and must not call back into the log.
func (l *Log) SetObserver(fn func(batchCommits, pagesWritten int)) {
	l.mu.Lock()
	l.observer = fn
	l.mu.Unlock()
}

// DurableLSN returns the stream offset below which every record is on the
// device. It implements the storage.WAL hook.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// append encodes rec at the current end of the stream and returns its LSN.
// The record stays buffered until the next Sync.
func (l *Log) append(rec Record) LSN {
	lsn := l.tailStart + LSN(len(l.tail))
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(lsn))
	hdr[8] = byte(rec.Type)
	binary.LittleEndian.PutUint64(hdr[9:], rec.Txn)
	binary.LittleEndian.PutUint32(hdr[17:], uint32(rec.Page.File))
	binary.LittleEndian.PutUint32(hdr[21:], uint32(rec.Page.Page))
	binary.LittleEndian.PutUint32(hdr[25:], uint32(len(rec.Data)))
	body := append(hdr[:], rec.Data...)
	var crc [recTrailer]byte
	binary.LittleEndian.PutUint32(crc[:], storage.PageChecksum(body))
	l.bounds = append(l.bounds, lsn)
	l.tail = append(l.tail, body...)
	l.tail = append(l.tail, crc[:]...)
	l.stats.Records++
	l.stats.BytesLogged += int64(len(body) + recTrailer)
	return lsn
}

// Begin appends a begin record for txn.
func (l *Log) Begin(txn uint64) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.append(Record{Type: RecBegin, Txn: txn})
}

// AppendImage appends a full after-image of page id for txn.
func (l *Log) AppendImage(txn uint64, id storage.PageID, image []byte) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	img := make([]byte, len(image))
	copy(img, image)
	return l.append(Record{Type: RecImage, Txn: txn, Page: id, Data: img})
}

// AppendCatalog appends a catalog record (RecNewCollection or
// RecNewJoinIndex) for txn.
func (l *Log) AppendCatalog(txn uint64, typ RecordType, payload []byte) (LSN, error) {
	if typ != RecNewCollection && typ != RecNewJoinIndex {
		return 0, fmt.Errorf("wal: %v is not a catalog record type", typ)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.append(Record{Type: typ, Txn: txn, Data: payload}), nil
}

// Commit appends the commit record for txn and, per the group-commit
// policy, forces the log durable. The returned LSN covers every record of
// the transaction: once the log is durable past it, the whole transaction
// is redo-eligible.
func (l *Log) Commit(txn uint64) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.append(Record{Type: RecCommit, Txn: txn})
	l.stats.Commits++
	l.pending++
	if l.pending >= l.group {
		if err := l.syncLocked(); err != nil {
			return lsn, err
		}
	}
	return lsn, nil
}

// Abort appends an abort record for txn, closing it without committing:
// none of its records will ever be redo-eligible. The transaction layer
// calls it on every failed update path so a checkpoint's active-transaction
// table holds only transactions that may still commit.
func (l *Log) Abort(txn uint64) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Aborts++
	return l.append(Record{Type: RecAbort, Txn: txn})
}

// Close forces every appended record durable — the orderly-shutdown sync
// that keeps group-commit-buffered transactions from being dropped. The
// log stays usable; Close is idempotent.
func (l *Log) Close() error { return l.Sync() }

// Sync forces every appended record onto the device. It implements the
// storage.WAL hook the buffer pool calls before writing back a dirty frame.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// syncLocked writes the buffered tail to freshly allocated log pages in
// ascending order. Pages are never rewritten: the remainder of the final
// partial page is sealed as padding, so a crash can tear only the page
// being written, and every earlier page stays durable.
func (l *Log) syncLocked() error {
	if len(l.tail) == 0 {
		l.pending = 0
		return nil
	}
	fault.CrashPoint("wal.sync")
	l.stats.Syncs++
	batch := l.pending
	pages := 0
	room := l.payloadCap()
	for len(l.tail) > 0 {
		n := len(l.tail)
		if n > room {
			n = room
		}
		id, err := l.dev.AllocPage(LogFileID)
		if err != nil {
			return fmt.Errorf("wal: extending log: %w", err)
		}
		// The first buffered record boundary inside this page's payload
		// window, so a scanner can re-synchronize here after truncation.
		// Boundaries are consumed only after the page write succeeds: a
		// failed write is retried onto a fresh page, which must carry the
		// same boundary.
		first := noFirstRec
		consumed := 0
		chunkEnd := l.tailStart + LSN(n)
		for consumed < len(l.bounds) && l.bounds[consumed] < chunkEnd {
			if first == noFirstRec {
				first = uint32(l.bounds[consumed] - l.tailStart)
			}
			consumed++
		}
		buf := make([]byte, l.pageSize)
		binary.LittleEndian.PutUint32(buf[0:], uint32(n))
		binary.LittleEndian.PutUint64(buf[4:], uint64(l.tailStart))
		binary.LittleEndian.PutUint32(buf[12:], first)
		copy(buf[pageHeader:], l.tail[:n])
		if err := l.dev.WritePage(id, buf); err != nil {
			// The failed page stays allocated with used == 0; the scanner
			// skips it and a retried sync allocates a fresh successor.
			return fmt.Errorf("wal: log append: %w", err)
		}
		l.bounds = l.bounds[consumed:]
		l.stats.PageWrites++
		pages++
		fault.CrashPoint("wal.sync.page")
		if n < room {
			l.stats.PaddingBytes += int64(room - n)
		}
		l.tailStart += LSN(n)
		l.tail = l.tail[n:]
	}
	l.durable = l.tailStart
	l.pending = 0
	if l.observer != nil {
		l.observer(batch, pages)
	}
	fault.CrashPoint("wal.synced")
	return nil
}
