package wal

import (
	"encoding/binary"
	"fmt"

	"spatialjoin/internal/storage"
)

// The catalog lives in the log: collection and join-index registrations are
// ordinary records inside the transaction that created the object, so a
// crash either preserves both the object's pages and its registration or
// neither. Payloads are length-prefixed strings followed by file IDs.

// NewCollection is the decoded payload of a RecNewCollection record.
type NewCollection struct {
	Name      string
	HeapFile  storage.FileID
	IndexFile storage.FileID
}

// NewJoinIndex is the decoded payload of a RecNewJoinIndex record.
type NewJoinIndex struct {
	R, S     string
	Operator string
	PairFile storage.FileID
}

func putString(buf []byte, s string) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	return append(append(buf, n[:]...), s...)
}

func getString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("wal: truncated catalog string")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n < 0 || len(buf)-4 < n {
		return "", nil, fmt.Errorf("wal: catalog string of %d bytes overruns payload", n)
	}
	return string(buf[4 : 4+n]), buf[4+n:], nil
}

func putFile(buf []byte, f storage.FileID) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(f))
	return append(buf, n[:]...)
}

func getFile(buf []byte) (storage.FileID, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("wal: truncated catalog file id")
	}
	return storage.FileID(binary.LittleEndian.Uint32(buf)), buf[4:], nil
}

// EncodeNewCollection serializes a collection registration.
func EncodeNewCollection(c NewCollection) []byte {
	buf := putString(nil, c.Name)
	buf = putFile(buf, c.HeapFile)
	return putFile(buf, c.IndexFile)
}

// DecodeNewCollection parses a RecNewCollection payload.
func DecodeNewCollection(data []byte) (NewCollection, error) {
	var c NewCollection
	var err error
	if c.Name, data, err = getString(data); err != nil {
		return c, err
	}
	if c.HeapFile, data, err = getFile(data); err != nil {
		return c, err
	}
	if c.IndexFile, _, err = getFile(data); err != nil {
		return c, err
	}
	return c, nil
}

// EncodeNewJoinIndex serializes a join-index registration.
func EncodeNewJoinIndex(j NewJoinIndex) []byte {
	buf := putString(nil, j.R)
	buf = putString(buf, j.S)
	buf = putString(buf, j.Operator)
	return putFile(buf, j.PairFile)
}

// DecodeNewJoinIndex parses a RecNewJoinIndex payload.
func DecodeNewJoinIndex(data []byte) (NewJoinIndex, error) {
	var j NewJoinIndex
	var err error
	if j.R, data, err = getString(data); err != nil {
		return j, err
	}
	if j.S, data, err = getString(data); err != nil {
		return j, err
	}
	if j.Operator, data, err = getString(data); err != nil {
		return j, err
	}
	if j.PairFile, _, err = getFile(data); err != nil {
		return j, err
	}
	return j, nil
}
