package wal

import (
	"encoding/binary"
	"fmt"

	"spatialjoin/internal/storage"
)

// A fuzzy checkpoint bounds recovery without stopping writers. The
// protocol, in LSN order:
//
//  1. RecCheckpointBegin is appended at LSN Lb.
//  2. The buffer pool's committed-dirty frames are flushed incrementally
//     (ascending PageID, one frame latch at a time), shrinking the
//     dirty-page table while transactions keep running.
//  3. RecCheckpointEnd is appended carrying the residual dirty-page table
//     (page → redo floor), the active-transaction table (txn → begin LSN),
//     the catalog manifest, and the next transaction id; then the log is
//     forced durable. Only a durable end record makes the checkpoint real.
//  4. Log pages wholly below min(DPT floor, Lb, oldest active begin) are
//     zeroed: nothing below that LSN can ever be needed for redo.
//
// Recovery replays a committed image at LSN L onto page P iff
// L ≥ min(Lb, oldest active begin) or P is in the DPT with DPT[P] ≤ L;
// everything else is provably already on the device and is skipped.
// In-flight transactions may straddle the boundary — the active table plus
// the no-steal pool make that safe: an uncommitted image is never on the
// device, and its eventual commit lies above the checkpoint's floor.

// DirtyPage is one dirty-page-table entry of a checkpoint: a page whose
// committed content had not reached the device, and the LSN redo must
// start at to reconstruct it.
type DirtyPage struct {
	Page   storage.PageID
	RecLSN LSN
}

// ActiveTxn is one active-transaction-table entry: a transaction that had
// begun but not yet finished (committed or aborted) when the checkpoint's
// tables were cut.
type ActiveTxn struct {
	Txn      uint64
	BeginLSN LSN
}

// ManifestCollection names one collection the checkpoint vouches for: its
// catalog registration plus the commit LSN its persisted files cover. A
// recovery that replays nothing newer onto the collection's files may load
// the R-tree straight from the persisted index file instead of rebuilding
// it from a heap scan.
type ManifestCollection struct {
	NewCollection
	CoveringLSN LSN
}

// ManifestJoinIndex names one join index the checkpoint vouches for.
type ManifestJoinIndex struct {
	NewJoinIndex
	CoveringLSN LSN
}

// Manifest is the catalog snapshot a checkpoint carries. Truncation
// destroys catalog records below the floor, so the manifest — not the
// record stream — is the authoritative list of pre-checkpoint objects;
// post-checkpoint registrations still arrive as ordinary records.
type Manifest struct {
	Collections []ManifestCollection
	JoinIndices []ManifestJoinIndex
}

// Checkpoint is the decoded payload of a RecCheckpointEnd record.
type Checkpoint struct {
	BeginLSN LSN
	NextTxn  uint64
	Active   []ActiveTxn
	DPT      []DirtyPage
	Manifest Manifest
}

// RedoFloor returns the LSN recovery redo must start at: the minimum over
// the checkpoint begin, every dirty page's recLSN, and every active
// transaction's begin LSN. Log pages wholly below it are dead.
func (cp *Checkpoint) RedoFloor() LSN {
	floor := cp.BeginLSN
	for _, d := range cp.DPT {
		if d.RecLSN < floor {
			floor = d.RecLSN
		}
	}
	for _, a := range cp.Active {
		if a.BeginLSN < floor {
			floor = a.BeginLSN
		}
	}
	return floor
}

// replayStart returns the LSN above which every committed image is
// replayed unconditionally: the checkpoint begin, lowered to the oldest
// straddling transaction's begin so a transaction whose images landed just
// below Lb is never clipped.
func (cp *Checkpoint) replayStart() LSN {
	start := cp.BeginLSN
	for _, a := range cp.Active {
		if a.BeginLSN < start {
			start = a.BeginLSN
		}
	}
	return start
}

func putU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

func getU64(buf []byte) (uint64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("wal: truncated checkpoint payload")
	}
	return binary.LittleEndian.Uint64(buf), buf[8:], nil
}

func putCount(buf []byte, n int) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(n))
	return append(buf, b[:]...)
}

func getCount(buf []byte) (int, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("wal: truncated checkpoint payload")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n > maxDataLen {
		return 0, nil, fmt.Errorf("wal: checkpoint table of %d entries overruns payload", n)
	}
	return n, buf[4:], nil
}

// EncodeCheckpoint serializes a checkpoint payload for RecCheckpointEnd.
func EncodeCheckpoint(cp Checkpoint) []byte {
	buf := putU64(nil, uint64(cp.BeginLSN))
	buf = putU64(buf, cp.NextTxn)
	buf = putCount(buf, len(cp.Active))
	for _, a := range cp.Active {
		buf = putU64(buf, a.Txn)
		buf = putU64(buf, uint64(a.BeginLSN))
	}
	buf = putCount(buf, len(cp.DPT))
	for _, d := range cp.DPT {
		buf = putFile(buf, d.Page.File)
		buf = putCount(buf, int(d.Page.Page))
		buf = putU64(buf, uint64(d.RecLSN))
	}
	buf = putCount(buf, len(cp.Manifest.Collections))
	for _, c := range cp.Manifest.Collections {
		buf = append(buf, EncodeNewCollection(c.NewCollection)...)
		buf = putU64(buf, uint64(c.CoveringLSN))
	}
	buf = putCount(buf, len(cp.Manifest.JoinIndices))
	for _, j := range cp.Manifest.JoinIndices {
		buf = append(buf, EncodeNewJoinIndex(j.NewJoinIndex)...)
		buf = putU64(buf, uint64(j.CoveringLSN))
	}
	return buf
}

// DecodeCheckpoint parses a RecCheckpointEnd payload.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	var cp Checkpoint
	var err error
	var v uint64
	if v, data, err = getU64(data); err != nil {
		return cp, err
	}
	cp.BeginLSN = LSN(v)
	if cp.NextTxn, data, err = getU64(data); err != nil {
		return cp, err
	}
	var n int
	if n, data, err = getCount(data); err != nil {
		return cp, err
	}
	for i := 0; i < n; i++ {
		var a ActiveTxn
		if a.Txn, data, err = getU64(data); err != nil {
			return cp, err
		}
		if v, data, err = getU64(data); err != nil {
			return cp, err
		}
		a.BeginLSN = LSN(v)
		cp.Active = append(cp.Active, a)
	}
	if n, data, err = getCount(data); err != nil {
		return cp, err
	}
	for i := 0; i < n; i++ {
		var d DirtyPage
		if d.Page.File, data, err = getFile(data); err != nil {
			return cp, err
		}
		var p int
		if p, data, err = getCount(data); err != nil {
			return cp, err
		}
		d.Page.Page = int32(p)
		if v, data, err = getU64(data); err != nil {
			return cp, err
		}
		d.RecLSN = LSN(v)
		cp.DPT = append(cp.DPT, d)
	}
	if n, data, err = getCount(data); err != nil {
		return cp, err
	}
	for i := 0; i < n; i++ {
		var c ManifestCollection
		if c.Name, data, err = getString(data); err != nil {
			return cp, err
		}
		if c.HeapFile, data, err = getFile(data); err != nil {
			return cp, err
		}
		if c.IndexFile, data, err = getFile(data); err != nil {
			return cp, err
		}
		if v, data, err = getU64(data); err != nil {
			return cp, err
		}
		c.CoveringLSN = LSN(v)
		cp.Manifest.Collections = append(cp.Manifest.Collections, c)
	}
	if n, data, err = getCount(data); err != nil {
		return cp, err
	}
	for i := 0; i < n; i++ {
		var j ManifestJoinIndex
		if j.R, data, err = getString(data); err != nil {
			return cp, err
		}
		if j.S, data, err = getString(data); err != nil {
			return cp, err
		}
		if j.Operator, data, err = getString(data); err != nil {
			return cp, err
		}
		if j.PairFile, data, err = getFile(data); err != nil {
			return cp, err
		}
		if v, data, err = getU64(data); err != nil {
			return cp, err
		}
		j.CoveringLSN = LSN(v)
		cp.Manifest.JoinIndices = append(cp.Manifest.JoinIndices, j)
	}
	return cp, nil
}

// AppendCheckpointBegin appends the begin marker of a fuzzy checkpoint and
// returns its LSN — the Lb every later skip decision is measured against.
func (l *Log) AppendCheckpointBegin() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.append(Record{Type: RecCheckpointBegin})
}

// AppendCheckpointEnd appends the checkpoint payload and forces the log
// durable: a checkpoint the recovery scanner may trust exists only once
// this returns nil.
func (l *Log) AppendCheckpointEnd(cp Checkpoint) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.append(Record{Type: RecCheckpointEnd, Data: EncodeCheckpoint(cp)})
	if err := l.syncLocked(); err != nil {
		return lsn, err
	}
	l.stats.Checkpoints++
	return lsn, nil
}

// TruncateBelow zeroes every log page whose payload lies wholly below keep,
// reclaiming the space bounded recovery no longer needs. Zeroed pages look
// like unwritten allocations to the scanner; the first surviving page's
// firstRec offset re-synchronizes parsing at a record boundary. The scan
// resumes where the previous truncation stopped, stops at the first page
// it must keep, and is conservative about anything unreadable — under-
// truncating is always safe.
func (l *Log) TruncateBelow(keep LSN) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.retain > 0 && l.retain < keep {
		keep = l.retain
	}
	n := l.dev.NumPages(LogFileID)
	zeroed := 0
	zero := make([]byte, l.pageSize)
	for p := l.truncFrom; int(p) < n; p++ {
		id := storage.PageID{File: LogFileID, Page: p}
		buf, err := l.dev.ReadPage(id)
		if err != nil {
			return zeroed, nil // unreadable: keep it and everything after
		}
		if want, ok := l.dev.Checksum(id); !ok || storage.PageChecksum(buf) != want {
			return zeroed, nil
		}
		used := int(binary.LittleEndian.Uint32(buf[0:]))
		if used == 0 {
			l.truncFrom = p + 1 // already dead (failed write or prior truncation)
			continue
		}
		if used > len(buf)-pageHeader {
			return zeroed, nil
		}
		start := LSN(binary.LittleEndian.Uint64(buf[4:]))
		if start+LSN(used) > keep {
			return zeroed, nil
		}
		if err := l.dev.WritePage(id, zero); err != nil {
			return zeroed, fmt.Errorf("wal: truncating log page %v: %w", id, err)
		}
		l.stats.PageWrites++
		l.stats.TruncatedPages++
		l.truncFrom = p + 1
		zeroed++
	}
	return zeroed, nil
}

// Retain pins truncation: TruncateBelow will not zero records at or above
// lsn until the pin moves or clears (lsn 0). A replication source holds the
// pin at its reader's position so checkpoint truncation cannot outrun it —
// the write-ahead-log cousin of a replication slot. An over-slow reader is
// the caller's problem: release the pin and let the reader fall back to a
// snapshot resync rather than retain the log forever.
func (l *Log) Retain(lsn LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retain = lsn
}
