package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spatialjoin/internal/storage"
)

// RecoveryStats summarizes one recovery pass.
type RecoveryStats struct {
	RecordsScanned  int64 // complete, checksum-valid records found in the log
	RecordsReplayed int64 // page images of committed transactions applied
	PagesRestored   int64 // distinct pages written during replay
	TxnsCommitted   int64 // transactions with a durable commit record
	TxnsDiscarded   int64 // transactions begun but never durably committed
	TornTailBytes   int64 // stream bytes after the last complete record
	TornPages       int64 // log pages whose checksum did not verify
	NextTxn         uint64
}

// ErrNotALog reports that the device's first file does not begin with a WAL
// header; recovery refuses to touch such a device.
var ErrNotALog = errors.New("wal: device file 0 does not start with a log header")

// Recover scans the log on dev, replays the page images of every committed
// transaction onto the device, and returns a Log positioned to append after
// the last complete record, the committed catalog records in LSN order for
// the caller to re-register, and the recovery counters.
//
// Torn tails are discarded, not erased: the log never rewrites a durable
// page, so the garbage bytes stay on the device and are superseded by the
// stream offsets of post-recovery appends (see the package comment).
func Recover(dev storage.Device, groupCommit int) (*Log, []Record, RecoveryStats, error) {
	var stats RecoveryStats
	stream, tornPages, err := scanStream(dev)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.TornPages = tornPages
	records, consumed := parseStream(stream)
	stats.RecordsScanned = int64(len(records))
	stats.TornTailBytes = int64(len(stream)) - consumed
	if len(records) == 0 || records[0].Type != RecHeader || string(records[0].Data) != string(magic) {
		return nil, nil, stats, ErrNotALog
	}

	committed := make(map[uint64]bool)
	begun := make(map[uint64]bool)
	var maxTxn uint64
	for _, r := range records {
		if r.Txn > maxTxn {
			maxTxn = r.Txn
		}
		switch r.Type {
		case RecBegin:
			begun[r.Txn] = true
		case RecCommit:
			committed[r.Txn] = true
		}
	}
	for txn := range begun {
		if committed[txn] {
			stats.TxnsCommitted++
		} else {
			stats.TxnsDiscarded++
		}
	}
	stats.NextTxn = maxTxn + 1

	var catalog []Record
	restored := make(map[storage.PageID]bool)
	for _, r := range records {
		if !committed[r.Txn] {
			continue
		}
		switch r.Type {
		case RecImage:
			if err := replayImage(dev, r); err != nil {
				return nil, nil, stats, err
			}
			stats.RecordsReplayed++
			if !restored[r.Page] {
				restored[r.Page] = true
				stats.PagesRestored++
			}
		case RecNewCollection, RecNewJoinIndex:
			catalog = append(catalog, r)
		}
	}

	l := newLog(dev, groupCommit)
	l.tailStart = consumed
	l.durable = consumed
	return l, catalog, stats, nil
}

// scanStream reads every log page in order and assembles the logical record
// stream. Pages that never made it to the device (zero-filled allocations)
// or arrive corrupted are skipped and reported; a page whose startLSN
// rewinds below the assembled length marks a post-recovery resume, so the
// superseded garbage is truncated away before appending its payload.
func scanStream(dev storage.Device) ([]byte, int64, error) {
	n := dev.NumPages(LogFileID)
	var stream []byte
	var torn int64
	for p := 0; p < n; p++ {
		id := storage.PageID{File: LogFileID, Page: int32(p)}
		buf, err := dev.ReadPage(id)
		if err != nil {
			if storage.IsChecksum(err) {
				// A page torn by the crash; everything it held is past the
				// last durable sync, so skipping it discards only tail bytes.
				torn++
				continue
			}
			return nil, 0, fmt.Errorf("wal: reading log page %v: %w", id, err)
		}
		// Verify against the recorded checksum explicitly: fault devices
		// return corrupted bytes rather than erroring (end-to-end
		// verification is the reader's job), and trusting a torn page's
		// header fields could truncate the stream at a garbage startLSN.
		if want, ok := dev.Checksum(id); !ok || storage.PageChecksum(buf) != want {
			torn++
			continue
		}
		used := int(binary.LittleEndian.Uint32(buf[0:]))
		if used == 0 {
			continue // allocated but never written
		}
		if used > len(buf)-pageHeader {
			torn++
			continue
		}
		start := LSN(binary.LittleEndian.Uint64(buf[4:]))
		switch {
		case start < LSN(len(stream)):
			stream = stream[:start]
		case start > LSN(len(stream)):
			// A gap means the pages between were lost wholesale; nothing
			// after them can be trusted to be contiguous.
			return stream, torn, nil
		}
		stream = append(stream, buf[pageHeader:pageHeader+used]...)
	}
	return stream, torn, nil
}

// parseStream decodes records until the stream ends or turns invalid,
// returning the records and the number of bytes consumed by complete,
// checksum-valid records. Everything past that point is a torn tail.
func parseStream(stream []byte) ([]Record, int64) {
	var records []Record
	off := 0
	for off+recHeaderSize+recTrailer <= len(stream) {
		hdr := stream[off:]
		lsn := LSN(binary.LittleEndian.Uint64(hdr[0:]))
		typ := RecordType(hdr[8])
		dataLen := int(binary.LittleEndian.Uint32(hdr[25:]))
		if lsn != LSN(off) || typ < RecHeader || typ > RecNewJoinIndex || dataLen > maxDataLen {
			break
		}
		end := off + recHeaderSize + dataLen + recTrailer
		if end > len(stream) {
			break
		}
		body := stream[off : end-recTrailer]
		want := binary.LittleEndian.Uint32(stream[end-recTrailer:])
		if storage.PageChecksum(body) != want {
			break
		}
		data := make([]byte, dataLen)
		copy(data, stream[off+recHeaderSize:end-recTrailer])
		records = append(records, Record{
			LSN:  lsn,
			Type: typ,
			Txn:  binary.LittleEndian.Uint64(hdr[9:]),
			Page: storage.PageID{
				File: storage.FileID(binary.LittleEndian.Uint32(hdr[17:])),
				Page: int32(binary.LittleEndian.Uint32(hdr[21:])),
			},
			Data: data,
		})
		off = end
	}
	return records, int64(off)
}

// replayImage writes one committed after-image back to the device, creating
// the file and allocating pages as needed: the crash may have landed before
// the first write-back ever materialized them.
func replayImage(dev storage.Device, r Record) error {
	if len(r.Data) != dev.PageSize() {
		return fmt.Errorf("wal: image for %v has %d bytes, device page size is %d",
			r.Page, len(r.Data), dev.PageSize())
	}
	for int(r.Page.Page) >= dev.NumPages(r.Page.File) {
		if _, err := dev.AllocPage(r.Page.File); err == nil {
			continue
		}
		// AllocPage rejects unknown files; file IDs are dense, so creating
		// files in order eventually materializes the target. Overshooting
		// it means the failure had another cause.
		if id := dev.CreateFile(); id > r.Page.File {
			return fmt.Errorf("wal: cannot materialize file %d for replay of %v", r.Page.File, r.Page)
		}
	}
	if err := dev.WritePage(r.Page, r.Data); err != nil {
		return fmt.Errorf("wal: replaying image onto %v: %w", r.Page, err)
	}
	return nil
}
