package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spatialjoin/internal/storage"
)

// RecoveryStats summarizes one recovery pass.
type RecoveryStats struct {
	RecordsScanned  int64 // complete, checksum-valid records found in the log
	RecordsReplayed int64 // page images of committed transactions applied
	RecordsSkipped  int64 // committed images the checkpoint proved already on the device
	PagesRestored   int64 // distinct pages written during replay
	TxnsCommitted   int64 // transactions with a durable commit record
	TxnsAborted     int64 // transactions closed by an explicit abort record
	TxnsDiscarded   int64 // transactions begun but never durably finished
	TornTailBytes   int64 // stream bytes after the last complete record
	TornPages       int64 // log pages whose checksum did not verify
	BaseLSN         LSN   // stream offset recovery scanned from (>0 after truncation)
	CheckpointLSN   LSN   // begin LSN of the checkpoint recovery bounded redo by; 0 = none
	// IndexRebuildsSkipped counts persisted indices the catalog layer
	// loaded from the checkpoint manifest instead of rebuilding from a
	// heap scan. The wal package never sets it — Reopen does.
	IndexRebuildsSkipped int64
	NextTxn              uint64
	// NextApplyFloor is the safe Options.ApplyFloor for the *next*
	// recovery of this device once everything scanned here has been
	// applied: the stream end, lowered to the begin LSN of the oldest
	// transaction still open at the end of the scan (its images are not
	// applied yet and must be replayed once its commit arrives). Full-page
	// redo is idempotent, so the lowering only ever re-replays.
	NextApplyFloor LSN
}

// ErrNotALog reports that the device's first file does not begin with a WAL
// header; recovery refuses to touch such a device.
var ErrNotALog = errors.New("wal: device file 0 does not start with a log header")

// Options configures RecoverWith.
type Options struct {
	// GroupCommit is the recovered log's commits-per-sync policy.
	GroupCommit int
	// IgnoreCheckpoints makes recovery replay every committed image from
	// the scanned base, as if no checkpoint existed. Harnesses use it to
	// assert that bounded and full recovery reconstruct identical state.
	// It cannot resurrect records a checkpoint already truncated away.
	IgnoreCheckpoints bool
	// ApplyFloor, when positive, replaces checkpoint-bounded redo with an
	// explicit cut: committed images below the floor are skipped
	// unconditionally and everything at or above it is replayed
	// unconditionally, never consulting the dirty-page table. Checkpoint
	// decoding (manifest, transaction table) is unaffected. Replication
	// followers need this because a shipped checkpoint's DPT describes the
	// *primary's* flush state — bounding a follower's redo by it would
	// skip images the follower never applied. A follower that has applied
	// everything below LSN n recovers with ApplyFloor = n; one whose
	// device state is unknown (fresh seed, delta resync) uses ApplyFloor = 1
	// to replay the whole surviving stream.
	ApplyFloor LSN
}

// Result is everything RecoverWith hands back to the catalog layer.
type Result struct {
	Log *Log
	// Catalog holds the committed RecNewCollection/RecNewJoinIndex records
	// found in the scanned stream, in LSN order. Objects registered before
	// a truncating checkpoint appear only in the checkpoint's manifest.
	Catalog []Record
	// Checkpoint is the last complete checkpoint, nil when none was found
	// (or checkpoints were ignored).
	Checkpoint *Checkpoint
	// TouchedFiles names every file replay wrote into — the files whose
	// persisted index state the manifest can no longer vouch for.
	TouchedFiles map[storage.FileID]bool
	Stats        RecoveryStats
}

// Recover scans the log on dev, replays the page images of every committed
// transaction onto the device, and returns a Log positioned to append after
// the last complete record, the committed catalog records in LSN order for
// the caller to re-register, and the recovery counters. It is the
// checkpoint-aware RecoverWith with the compatibility signature earlier
// callers used.
func Recover(dev storage.Device, groupCommit int) (*Log, []Record, RecoveryStats, error) {
	res, err := RecoverWith(dev, Options{GroupCommit: groupCommit})
	if err != nil {
		var stats RecoveryStats
		if res != nil {
			stats = res.Stats
		}
		return nil, nil, stats, err
	}
	return res.Log, res.Catalog, res.Stats, nil
}

// RecoverWith scans the log on dev and replays exactly the committed images
// the device is missing. With a checkpoint in the log, redo is bounded: an
// image below the checkpoint is replayed only when the dirty-page table
// says its page had not been flushed, or when a straddling transaction's
// begin LSN reaches down to it; everything else is counted as skipped.
//
// Torn tails are discarded, not erased: the log never rewrites a durable
// page, so the garbage bytes stay on the device and are superseded by the
// stream offsets of post-recovery appends (see the package comment).
func RecoverWith(dev storage.Device, opts Options) (*Result, error) {
	res := &Result{TouchedFiles: make(map[storage.FileID]bool)}
	stats := &res.Stats
	base, stream, tornPages, err := scanStream(dev)
	if err != nil {
		return res, err
	}
	stats.TornPages = tornPages
	stats.BaseLSN = base
	records, consumed := parseStream(base, stream)
	stats.RecordsScanned = int64(len(records))
	stats.TornTailBytes = int64(len(stream)) - consumed
	if len(records) == 0 {
		return res, ErrNotALog
	}
	if base == 0 && (records[0].Type != RecHeader || string(records[0].Data) != string(magic)) {
		return res, ErrNotALog
	}

	committed := make(map[uint64]bool)
	begun := make(map[uint64]LSN)
	aborted := make(map[uint64]bool)
	var maxTxn uint64
	for _, r := range records {
		if r.Txn > maxTxn {
			maxTxn = r.Txn
		}
		switch r.Type {
		case RecBegin:
			if _, dup := begun[r.Txn]; !dup {
				begun[r.Txn] = r.LSN
			}
		case RecCommit:
			committed[r.Txn] = true
		case RecAbort:
			aborted[r.Txn] = true
		}
	}
	for txn := range begun {
		switch {
		case committed[txn]:
			stats.TxnsCommitted++
		case aborted[txn]:
			stats.TxnsAborted++
		default:
			stats.TxnsDiscarded++
		}
	}
	stats.NextTxn = maxTxn + 1

	if !opts.IgnoreCheckpoints {
		for i := len(records) - 1; i >= 0; i-- {
			if records[i].Type != RecCheckpointEnd {
				continue
			}
			cp, err := DecodeCheckpoint(records[i].Data)
			if err != nil {
				// A checkpoint that does not decode is treated as absent;
				// an older one (or none) bounds redo instead.
				continue
			}
			res.Checkpoint = &cp
			break
		}
	}
	// The safe floor for the next bounded re-recovery: the stream end,
	// lowered to the oldest still-open transaction's begin (images of a
	// transaction that commits later must be replayed then). Checkpoint
	// Active entries cover straddlers whose begin record was truncated.
	floor := base + consumed
	for txn, beginLSN := range begun {
		if !committed[txn] && !aborted[txn] && beginLSN < floor {
			floor = beginLSN
		}
	}
	if cp := res.Checkpoint; cp != nil {
		for _, a := range cp.Active {
			if !committed[a.Txn] && !aborted[a.Txn] && a.BeginLSN < floor {
				floor = a.BeginLSN
			}
		}
	}
	stats.NextApplyFloor = floor

	replayStart := LSN(0)
	dpt := make(map[storage.PageID]LSN)
	if cp := res.Checkpoint; cp != nil {
		stats.CheckpointLSN = cp.BeginLSN
		if cp.NextTxn > stats.NextTxn {
			stats.NextTxn = cp.NextTxn
		}
		replayStart = cp.replayStart()
		for _, d := range cp.DPT {
			dpt[d.Page] = d.RecLSN
		}
	}

	restored := make(map[storage.PageID]bool)
	for _, r := range records {
		if !committed[r.Txn] {
			continue
		}
		switch r.Type {
		case RecImage:
			if opts.ApplyFloor > 0 {
				if r.LSN < opts.ApplyFloor {
					// The caller vouches the device holds this image.
					stats.RecordsSkipped++
					continue
				}
			} else if res.Checkpoint != nil && r.LSN < replayStart {
				if floor, inDPT := dpt[r.Page]; !inDPT || r.LSN < floor {
					// The checkpoint flushed this page past r.LSN: the
					// device already holds content at least this new.
					stats.RecordsSkipped++
					continue
				}
			}
			if err := replayImage(dev, r); err != nil {
				return res, err
			}
			stats.RecordsReplayed++
			res.TouchedFiles[r.Page.File] = true
			if !restored[r.Page] {
				restored[r.Page] = true
				stats.PagesRestored++
			}
		case RecNewCollection, RecNewJoinIndex:
			res.Catalog = append(res.Catalog, r)
		}
	}

	l := newLog(dev, opts.GroupCommit)
	l.tailStart = base + consumed
	l.durable = base + consumed
	res.Log = l
	return res, nil
}

// scanStream reads every log page in order and assembles the logical record
// stream, returning the stream's base LSN. In an untruncated log the base
// is 0; after checkpoint truncation the leading pages are zeroed and the
// first surviving page's firstRec offset re-synchronizes the scan at a
// record boundary. Pages that never made it to the device (zero-filled
// allocations) or arrive corrupted are skipped and reported; a page whose
// startLSN rewinds below the assembled length marks a post-recovery resume,
// so the superseded garbage is truncated away before appending its payload.
func scanStream(dev storage.Device) (LSN, []byte, int64, error) {
	n := dev.NumPages(LogFileID)
	base := LSN(-1)
	var stream []byte
	var torn int64
	for p := 0; p < n; p++ {
		id := storage.PageID{File: LogFileID, Page: int32(p)}
		buf, err := dev.ReadPage(id)
		if err != nil {
			if storage.IsChecksum(err) {
				// A page torn by the crash; everything it held is past the
				// last durable sync, so skipping it discards only tail bytes.
				torn++
				continue
			}
			return 0, nil, 0, fmt.Errorf("wal: reading log page %v: %w", id, err)
		}
		// Verify against the recorded checksum explicitly: fault devices
		// return corrupted bytes rather than erroring (end-to-end
		// verification is the reader's job), and trusting a torn page's
		// header fields could truncate the stream at a garbage startLSN.
		if want, ok := dev.Checksum(id); !ok || storage.PageChecksum(buf) != want {
			torn++
			continue
		}
		used := int(binary.LittleEndian.Uint32(buf[0:]))
		if used == 0 {
			continue // allocated but never written, or truncated away
		}
		if used > len(buf)-pageHeader {
			torn++
			continue
		}
		start := LSN(binary.LittleEndian.Uint64(buf[4:]))
		if base < 0 {
			// First surviving page: every byte before its first record
			// boundary is the tail of a record whose head was truncated
			// with the pages below — only parseable bytes join the stream.
			first := binary.LittleEndian.Uint32(buf[12:])
			if first == noFirstRec || int(first) >= used {
				continue
			}
			base = start + LSN(first)
			stream = append(stream, buf[pageHeader+first:pageHeader+uint32(used)]...)
			continue
		}
		switch {
		case start < base:
			// Below the resync point: stale garbage; trust nothing after.
			return base, stream, torn, nil
		case start < base+LSN(len(stream)):
			stream = stream[:start-base]
		case start > base+LSN(len(stream)):
			// A gap means the pages between were lost wholesale; nothing
			// after them can be trusted to be contiguous.
			return base, stream, torn, nil
		}
		stream = append(stream, buf[pageHeader:pageHeader+used]...)
	}
	if base < 0 {
		base = 0
	}
	return base, stream, torn, nil
}

// parseStream decodes records until the stream ends or turns invalid,
// returning the records and the number of stream bytes consumed by
// complete, checksum-valid records. Record LSNs are absolute: stream byte i
// sits at LSN base+i. Everything past the consumed point is a torn tail.
func parseStream(base LSN, stream []byte) ([]Record, int64) {
	var records []Record
	off := 0
	for off+recHeaderSize+recTrailer <= len(stream) {
		hdr := stream[off:]
		lsn := LSN(binary.LittleEndian.Uint64(hdr[0:]))
		typ := RecordType(hdr[8])
		dataLen := int(binary.LittleEndian.Uint32(hdr[25:]))
		if lsn != base+LSN(off) || typ < RecHeader || typ > RecCheckpointEnd || dataLen > maxDataLen {
			break
		}
		end := off + recHeaderSize + dataLen + recTrailer
		if end > len(stream) {
			break
		}
		body := stream[off : end-recTrailer]
		want := binary.LittleEndian.Uint32(stream[end-recTrailer:])
		if storage.PageChecksum(body) != want {
			break
		}
		data := make([]byte, dataLen)
		copy(data, stream[off+recHeaderSize:end-recTrailer])
		records = append(records, Record{
			LSN:  lsn,
			Type: typ,
			Txn:  binary.LittleEndian.Uint64(hdr[9:]),
			Page: storage.PageID{
				File: storage.FileID(binary.LittleEndian.Uint32(hdr[17:])),
				Page: int32(binary.LittleEndian.Uint32(hdr[21:])),
			},
			Data: data,
		})
		off = end
	}
	return records, int64(off)
}

// replayImage writes one committed after-image back to the device, creating
// the file and allocating pages as needed: the crash may have landed before
// the first write-back ever materialized them.
func replayImage(dev storage.Device, r Record) error {
	if len(r.Data) != dev.PageSize() {
		return fmt.Errorf("wal: image for %v has %d bytes, device page size is %d",
			r.Page, len(r.Data), dev.PageSize())
	}
	for int(r.Page.Page) >= dev.NumPages(r.Page.File) {
		if _, err := dev.AllocPage(r.Page.File); err == nil {
			continue
		}
		// AllocPage rejects unknown files; file IDs are dense, so creating
		// files in order eventually materializes the target. Overshooting
		// it means the failure had another cause.
		if id := dev.CreateFile(); id > r.Page.File {
			return fmt.Errorf("wal: cannot materialize file %d for replay of %v", r.Page.File, r.Page)
		}
	}
	if err := dev.WritePage(r.Page, r.Data); err != nil {
		return fmt.Errorf("wal: replaying image onto %v: %w", r.Page, err)
	}
	return nil
}
