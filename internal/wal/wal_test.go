package wal

import (
	"bytes"
	"testing"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/storage"
)

// newLogOnDisk creates a fresh disk with a log on it.
func newLogOnDisk(t *testing.T, group int) (*storage.Disk, *Log) {
	t.Helper()
	dev := storage.NewDisk(256)
	l, err := Create(dev, group)
	if err != nil {
		t.Fatal(err)
	}
	return dev, l
}

func TestCreateRejectsNonEmptyDevice(t *testing.T) {
	dev := storage.NewDisk(256)
	dev.CreateFile()
	if _, err := Create(dev, 1); err == nil {
		t.Fatal("Create on a non-empty device succeeded")
	}
}

func TestRecoverRejectsNonLog(t *testing.T) {
	dev := storage.NewDisk(256)
	f := dev.CreateFile()
	id, err := dev.AllocPage(f)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	copy(buf, []byte{12, 0, 0, 0}) // plausible "used" header, garbage payload
	if err := dev.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Recover(dev, 1); err == nil {
		t.Fatal("Recover of a non-log device succeeded")
	}
}

// TestCommitRoundTrip appends two committed transactions and checks Recover
// returns their records and stats.
func TestCommitRoundTrip(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	img := make([]byte, 256)
	for i := range img {
		img[i] = byte(i)
	}
	dataFile := dev.CreateFile()
	pid, err := dev.AllocPage(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	for txn := uint64(1); txn <= 2; txn++ {
		l.Begin(txn)
		l.AppendImage(txn, pid, img)
		if _, err := l.Commit(txn); err != nil {
			t.Fatalf("commit %d: %v", txn, err)
		}
	}
	if st := l.Stats(); st.Commits != 2 || st.Syncs < 2 {
		t.Errorf("stats after two fsync-every-commit txns: %+v", st)
	}

	_, catalog, rstats, err := Recover(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.TxnsCommitted != 2 || rstats.TxnsDiscarded != 0 {
		t.Errorf("recovery stats: %+v", rstats)
	}
	if rstats.RecordsReplayed != 2 || rstats.PagesRestored != 1 {
		t.Errorf("replay stats: %+v", rstats)
	}
	if rstats.TornTailBytes != 0 {
		t.Errorf("clean log reports %d torn tail bytes", rstats.TornTailBytes)
	}
	if len(catalog) != 0 {
		t.Errorf("unexpected catalog records: %v", catalog)
	}
	got, err := dev.ReadPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Error("replayed page does not match the logged image")
	}
	if rstats.NextTxn != 3 {
		t.Errorf("NextTxn = %d, want 3", rstats.NextTxn)
	}
}

// TestUncommittedTxnDiscarded checks a begun-but-never-committed
// transaction's images are not replayed.
func TestUncommittedTxnDiscarded(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	pid, err := dev.AllocPage(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{0xAB}, 256)
	//sjlint:ignore txnatomic deliberately left open: the test asserts recovery discards it
	l.Begin(7)
	l.AppendImage(7, pid, img)
	if err := l.Sync(); err != nil { // durable, but no commit record
		t.Fatal(err)
	}
	_, _, rstats, err := Recover(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.TxnsDiscarded != 1 || rstats.TxnsCommitted != 0 || rstats.RecordsReplayed != 0 {
		t.Errorf("recovery stats: %+v", rstats)
	}
	got, err := dev.ReadPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 256)) {
		t.Error("uncommitted image was replayed onto the device")
	}
}

// TestGroupCommitBuffers checks that with a group size of 4, commits stay
// buffered (not durable) until the group fills.
func TestGroupCommitBuffers(t *testing.T) {
	dev, l := newLogOnDisk(t, 4)
	for txn := uint64(1); txn <= 3; txn++ {
		l.Begin(txn)
		if _, err := l.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Syncs != 1 { // the Create header sync only
		t.Errorf("syncs before the group fills: %d, want 1", st.Syncs)
	}
	_, _, rstats, err := Recover(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.TxnsCommitted != 0 {
		t.Errorf("unsynced commits visible after crash: %+v", rstats)
	}

	dev2, l2 := newLogOnDisk(t, 4)
	for txn := uint64(1); txn <= 4; txn++ {
		l2.Begin(txn)
		if _, err := l2.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if st := l2.Stats(); st.Syncs != 2 {
		t.Errorf("syncs after the group fills: %d, want 2", st.Syncs)
	}
	_, _, rstats2, err := Recover(dev2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats2.TxnsCommitted != 4 {
		t.Errorf("full group not durable: %+v", rstats2)
	}
}

// TestTornTailPageDiscarded tears the final log page and checks recovery
// keeps everything before it and reports the loss.
func TestTornTailPageDiscarded(t *testing.T) {
	inner := storage.NewDisk(256)
	fd := fault.Wrap(inner, fault.Options{Seed: 1})
	l, err := Create(fd, 1)
	if err != nil {
		t.Fatal(err)
	}
	dataFile := fd.CreateFile()
	pid, err := fd.AllocPage(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{1}, 256)
	l.Begin(1)
	l.AppendImage(1, pid, img)
	if _, err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	l.Begin(2)
	l.AppendImage(2, pid, bytes.Repeat([]byte{2}, 256))
	if _, err := l.Commit(2); err != nil {
		t.Fatal(err)
	}
	// Tear every log page txn 2 occupies: all pages written after txn 1's
	// commit record landed.
	n := fd.NumPages(LogFileID)
	if n < 4 {
		t.Fatalf("log only has %d pages", n)
	}
	for p := n - 2; p < n; p++ {
		fd.TearPage(storage.PageID{File: LogFileID, Page: int32(p)})
	}
	_, _, rstats, err := Recover(fd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.TornPages == 0 {
		t.Error("torn log pages not counted")
	}
	if rstats.TxnsCommitted < 1 {
		t.Errorf("txn 1 lost: %+v", rstats)
	}
	got, err := fd.ReadPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Error("device page does not hold txn 1's image after recovery")
	}
}

// TestResumeAfterRecovery checks the startLSN rewind rule: a log recovered
// past a discarded tail accepts new appends, and a second recovery sees
// both the old and the new transactions.
func TestResumeAfterRecovery(t *testing.T) {
	inner := storage.NewDisk(256)
	fd := fault.Wrap(inner, fault.Options{Seed: 1})
	l, err := Create(fd, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Begin(1)
	if _, err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	// A torn final page leaves garbage the next generation must supersede.
	//sjlint:ignore txnatomic deliberately left open: the torn tail swallows it
	l.Begin(2)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	n := fd.NumPages(LogFileID)
	fd.TearPage(storage.PageID{File: LogFileID, Page: int32(n - 1)})

	l2, _, rstats, err := Recover(fd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.TxnsCommitted != 1 {
		t.Fatalf("first recovery: %+v", rstats)
	}
	l2.Begin(3)
	if _, err := l2.Commit(3); err != nil {
		t.Fatal(err)
	}

	_, _, rstats2, err := Recover(fd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats2.TxnsCommitted != 2 {
		t.Errorf("second recovery lost a generation: %+v", rstats2)
	}
	if rstats2.NextTxn != 4 {
		t.Errorf("NextTxn = %d, want 4", rstats2.NextTxn)
	}
}

// TestCatalogRoundTrip checks catalog payload encode/decode and that
// Recover returns committed catalog records in order.
func TestCatalogRoundTrip(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	nc := NewCollection{Name: "roads", HeapFile: 3, IndexFile: 4}
	nj := NewJoinIndex{R: "roads", S: "cities", Operator: "overlaps", PairFile: 9}
	//sjlint:ignore txnatomic t.Fatal exits abandon the test txn; only the committed path matters
	l.Begin(1)
	if _, err := l.AppendCatalog(1, RecNewCollection, EncodeNewCollection(nc)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCatalog(1, RecNewJoinIndex, EncodeNewJoinIndex(nj)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	_, catalog, _, err := Recover(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(catalog) != 2 {
		t.Fatalf("recovered %d catalog records, want 2", len(catalog))
	}
	gotNC, err := DecodeNewCollection(catalog[0].Data)
	if err != nil || gotNC != nc {
		t.Errorf("collection record: %+v, %v", gotNC, err)
	}
	gotNJ, err := DecodeNewJoinIndex(catalog[1].Data)
	if err != nil || gotNJ != nj {
		t.Errorf("join-index record: %+v, %v", gotNJ, err)
	}
	if _, err := l.AppendCatalog(1, RecBegin, nil); err == nil {
		t.Error("AppendCatalog accepted a non-catalog record type")
	}
}

// TestWALWritesCountInDiskStats checks the accounting contract: every log
// page write appears in the device's physical write counter.
func TestWALWritesCountInDiskStats(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	before := dev.Stats().Writes
	l.Begin(1)
	l.AppendImage(1, storage.PageID{File: 1, Page: 0}, make([]byte, 256))
	if _, err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	delta := dev.Stats().Writes - before
	pw := l.Stats().PageWrites
	if delta == 0 {
		t.Fatal("log sync caused no device writes")
	}
	// PageWrites includes the header page written at Create, before the
	// baseline snapshot.
	if pw-1 != delta {
		t.Errorf("device writes %d, log PageWrites since create %d", delta, pw-1)
	}
}
