// Log tailing and raw-record shipping, the WAL half of replication: a
// TailReader turns the primary's append-once log pages back into the
// logical record stream from any LSN, and AppendRaw grafts shipped stream
// bytes onto a follower's log as if they had been appended locally. Both
// ends validate every record's CRC, so a corrupt segment is rejected
// wholesale rather than entering either stream.

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spatialjoin/internal/storage"
)

// ErrTruncatedAway reports that a tail read could not resume at the
// requested LSN: the log's surviving pages begin above it (a checkpoint
// truncated the history the reader wanted) or continuity to it was lost.
// No amount of retrying brings the bytes back — a replication follower
// receiving it must fall back to a snapshot-delta resync.
var ErrTruncatedAway = errors.New("wal: requested LSN truncated from the log")

// TailReader streams the logical record stream of a live log straight from
// its device pages, starting at a caller-chosen LSN. It leans on the log's
// append-once discipline: a page that checksums is complete and immutable,
// so reading concurrently with the appender can race only with pages that
// are not yet durable — the reader revisits those on the next call instead
// of trusting them. Next emits only complete, CRC-valid records, which is
// exactly what Log.AppendRaw on another device accepts.
//
// A TailReader is not safe for concurrent use; each replication stream
// owns its own.
type TailReader struct {
	dev  storage.Device
	next int // first log page not yet confirmed consumed
	pos  LSN // stream offset of the next byte Next will emit
	// end is the stream offset the assembled prefix reaches; -1 until the
	// scan anchors at the first surviving record boundary. Bytes in
	// [pos, end) sit in carry; bytes below pos were either emitted or are
	// below the caller's starting LSN and were skipped without copying.
	end     LSN
	carry   []byte
	emitted bool
}

// OpenTail positions a reader over dev's log at LSN from, verifying the
// surviving pages still reach down to it. It returns ErrTruncatedAway when
// a checkpoint has truncated the log above from.
func OpenTail(dev storage.Device, from LSN) (*TailReader, error) {
	if from < 0 {
		return nil, fmt.Errorf("wal: cannot tail from negative LSN %d", from)
	}
	r := &TailReader{dev: dev, pos: from, end: -1}
	if err := r.scan(); err != nil {
		return nil, err
	}
	return r, nil
}

// Pos returns the stream offset of the next byte Next will emit.
func (r *TailReader) Pos() LSN { return r.pos }

// Next assembles newly durable log pages and returns the next run of
// complete, CRC-valid records: base is the stream offset of data[0]. The
// run stops at the first record boundary past max bytes (a single record
// may exceed max on its own). nil data with nil error means the reader is
// caught up with the durable log; call again after the appender syncs.
func (r *TailReader) Next(max int) (LSN, []byte, error) {
	if err := r.scan(); err != nil {
		return 0, nil, err
	}
	k := completePrefix(r.pos, r.carry, max)
	if k == 0 {
		return r.pos, nil, nil
	}
	base := r.pos
	data := make([]byte, k)
	copy(data, r.carry[:k])
	r.pos += LSN(k)
	r.carry = r.carry[k:]
	r.emitted = true
	return base, data, nil
}

// scan consumes durable log pages into carry, mirroring scanStream's
// reconciliation rules incrementally. Pages that fail their checksum or
// read as unwritten are not consumed: they may be mid-write by the
// appender, so the scan leaves next pointing at the first such page and
// revisits it. A later durable page proves the skipped ones dead (the
// appender seals pages in order), at which point next advances past them.
func (r *TailReader) scan() error {
	n := r.dev.NumPages(LogFileID)
	for p := r.next; p < n; p++ {
		id := storage.PageID{File: LogFileID, Page: int32(p)}
		buf, err := r.dev.ReadPage(id)
		if err != nil {
			if storage.IsChecksum(err) {
				continue // torn or in flight: revisit next scan
			}
			return fmt.Errorf("wal: tailing log page %v: %w", id, err)
		}
		if want, ok := r.dev.Checksum(id); !ok || storage.PageChecksum(buf) != want {
			continue // corrupted in transit: revisit next scan
		}
		used := int(binary.LittleEndian.Uint32(buf[0:]))
		if used == 0 || used > len(buf)-pageHeader {
			continue // unwritten allocation, possibly in flight: revisit
		}
		start := LSN(binary.LittleEndian.Uint64(buf[4:]))
		payload := buf[pageHeader : pageHeader+used]
		if r.end < 0 {
			// Anchoring: the first surviving page must open a record for
			// the stream to resynchronize; a pure continuation page lost
			// its head with the truncated pages below and is durable, so
			// it can be consumed for good.
			first := binary.LittleEndian.Uint32(buf[12:])
			if first == noFirstRec || int(first) >= used {
				r.next = p + 1
				continue
			}
			base := start + LSN(first)
			if r.pos < base {
				return ErrTruncatedAway
			}
			r.end = base
			start = base
			payload = payload[first:]
		}
		if err := r.absorb(start, payload); err != nil {
			return err
		}
		r.next = p + 1
	}
	return nil
}

// absorb reconciles one durable page's payload, covering stream bytes
// [start, start+len(payload)), against the assembled prefix.
func (r *TailReader) absorb(start LSN, payload []byte) error {
	switch {
	case start > r.end:
		// The pages between were lost wholesale (truncated under the
		// reader); nothing after them is contiguous with what we hold.
		return ErrTruncatedAway
	case start < r.end:
		// A post-crash resume superseded the tail above start. Emitted
		// bytes are never superseded — recovery keeps every complete
		// record — so a rewind below pos after emission means divergence.
		if start < r.pos {
			if r.emitted {
				return ErrTruncatedAway
			}
			r.carry = r.carry[:0]
		} else {
			r.carry = r.carry[:start-r.pos]
		}
		r.end = start
	}
	end := start + LSN(len(payload))
	if end <= r.pos {
		r.end = end // still below the caller's ask: skip without copying
		return nil
	}
	skip := 0
	if start < r.pos {
		skip = int(r.pos - start)
	}
	r.carry = append(r.carry, payload[skip:]...)
	r.end = end
	return nil
}

// completePrefix returns the length of the longest prefix of stream that
// parses as complete, checksum-valid records, stopping at the first record
// boundary past max bytes (0 disables the cap). It is parseStream's
// validation walk without the decode: the tail path re-validates bytes it
// never needs to materialize as Records.
func completePrefix(base LSN, stream []byte, max int) int {
	off := 0
	for off+recHeaderSize+recTrailer <= len(stream) {
		hdr := stream[off:]
		lsn := LSN(binary.LittleEndian.Uint64(hdr[0:]))
		typ := RecordType(hdr[8])
		dataLen := int(binary.LittleEndian.Uint32(hdr[25:]))
		if lsn != base+LSN(off) || typ < RecHeader || typ > RecCheckpointEnd || dataLen > maxDataLen {
			break
		}
		end := off + recHeaderSize + dataLen + recTrailer
		if end > len(stream) {
			break
		}
		body := stream[off : end-recTrailer]
		if storage.PageChecksum(body) != binary.LittleEndian.Uint32(stream[end-recTrailer:]) {
			break
		}
		if max > 0 && off > 0 && end > max {
			break
		}
		off = end
	}
	return off
}

// AppendRaw appends a chunk of pre-encoded records — the bytes a
// TailReader emitted on another device — to the log and forces them
// durable. from must be exactly the log's current stream end, and the
// chunk must parse entirely as complete, checksum-valid records; anything
// else is rejected wholesale and the log is left untouched, so a corrupt
// shipped segment can never enter the local stream. The parsed records are
// returned so the caller can see what the chunk carried (commits, catalog
// registrations, checkpoints) without re-parsing.
func (l *Log) AppendRaw(from LSN, data []byte) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	end := l.tailStart + LSN(len(l.tail))
	if from != end {
		return nil, fmt.Errorf("wal: raw append at LSN %d, log ends at %d", from, end)
	}
	records, consumed := parseStream(from, data)
	if consumed != int64(len(data)) {
		return nil, fmt.Errorf("wal: raw chunk at LSN %d: only %d of %d bytes parse as complete records",
			from, consumed, len(data))
	}
	for _, r := range records {
		l.bounds = append(l.bounds, r.LSN)
		l.stats.Records++
		switch r.Type {
		case RecCommit:
			l.stats.Commits++
		case RecAbort:
			l.stats.Aborts++
		case RecCheckpointEnd:
			l.stats.Checkpoints++
		}
	}
	l.tail = append(l.tail, data...)
	l.stats.BytesLogged += int64(len(data))
	if err := l.syncLocked(); err != nil {
		return nil, err
	}
	return records, nil
}

// ParseChunk parses a shipped chunk of complete records whose stream
// offset is base, requiring the chunk to parse exactly to its end — the
// contract TailReader.Next guarantees for what it emits. Replication
// sources use it to watch their own log for page-image records without
// touching the appender.
func ParseChunk(base LSN, data []byte) ([]Record, error) {
	records, consumed := parseStream(base, data)
	if consumed != int64(len(data)) {
		return nil, fmt.Errorf("wal: chunk at %d parses to %d of %d bytes", base, consumed, len(data))
	}
	return records, nil
}
