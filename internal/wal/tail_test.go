package wal

import (
	"bytes"
	"errors"
	"testing"

	"spatialjoin/internal/storage"
)

// appendTxns runs n committed single-image transactions against the log,
// each writing a distinct pattern onto a fresh page of dataFile.
func appendTxns(t *testing.T, dev *storage.Disk, l *Log, dataFile storage.FileID, firstTxn uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		txn := firstTxn + uint64(i)
		pid, err := dev.AllocPage(dataFile)
		if err != nil {
			t.Fatal(err)
		}
		img := make([]byte, dev.PageSize())
		for j := range img {
			img[j] = byte(int(txn) + j)
		}
		l.Begin(txn)
		l.AppendImage(txn, pid, img)
		if _, err := l.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
}

// streamOf reassembles a device's full logical record stream.
func streamOf(t *testing.T, dev storage.Device) (LSN, []Record) {
	t.Helper()
	base, stream, _, err := scanStream(dev)
	if err != nil {
		t.Fatal(err)
	}
	records, _ := parseStream(base, stream)
	return base, records
}

// assertSameRecords fails unless the two record slices are identical.
func assertSameRecords(t *testing.T, want, got []Record) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("record count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.LSN != g.LSN || w.Type != g.Type || w.Txn != g.Txn || w.Page != g.Page || !bytes.Equal(w.Data, g.Data) {
			t.Fatalf("record %d diverges: want %+v, got %+v", i, w, g)
		}
	}
}

// TestTailRoundTrip ships a primary's stream chunk by chunk into a fresh
// follower log and checks the two devices hold identical logical streams.
func TestTailRoundTrip(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	appendTxns(t, dev, l, dataFile, 1, 5)

	fdev, fl := newLogOnDisk(t, 1)
	// Create wrote the identical header record on both logs, so the
	// follower tails from its own durable end.
	r, err := OpenTail(dev, fl.DurableLSN())
	if err != nil {
		t.Fatal(err)
	}
	for {
		base, data, err := r.Next(64)
		if err != nil {
			t.Fatal(err)
		}
		if data == nil {
			break
		}
		if _, err := fl.AppendRaw(base, data); err != nil {
			t.Fatal(err)
		}
	}
	if fl.DurableLSN() != l.DurableLSN() {
		t.Fatalf("follower durable %d, primary durable %d", fl.DurableLSN(), l.DurableLSN())
	}
	_, want := streamOf(t, dev)
	_, got := streamOf(t, fdev)
	assertSameRecords(t, want, got)
}

// TestTailChunkBoundaries checks chunks respect max at record boundaries:
// concatenated chunks reproduce the stream exactly and every chunk but a
// lone oversized record stays under max.
func TestTailChunkBoundaries(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	appendTxns(t, dev, l, dataFile, 1, 4)

	const max = 100
	r, err := OpenTail(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	var shipped []byte
	start := LSN(-1)
	for {
		base, data, err := r.Next(max)
		if err != nil {
			t.Fatal(err)
		}
		if data == nil {
			break
		}
		if start < 0 {
			start = base
		} else if base != start+LSN(len(shipped)) {
			t.Fatalf("chunk at %d not contiguous with %d+%d", base, start, len(shipped))
		}
		// A chunk may exceed max only when its first record alone does.
		if len(data) > max {
			if n := completePrefix(base, data, 0); n != len(data) {
				t.Fatalf("oversized chunk is not complete records")
			}
			if first := completePrefix(base, data, 1); first != len(data) {
				t.Fatalf("oversized chunk of %d bytes holds more than one record (first ends at %d)", len(data), first)
			}
		}
		shipped = append(shipped, data...)
	}
	if start != 0 {
		t.Fatalf("stream started at %d, want 0", start)
	}
	base, stream, _, err := scanStream(dev)
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 || !bytes.Equal(shipped, stream) {
		t.Fatalf("shipped bytes diverge from the device stream (base %d, %d vs %d bytes)", base, len(shipped), len(stream))
	}
}

// TestTailIncremental checks a caught-up reader reports nil and picks up
// records appended after it drained.
func TestTailIncremental(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	appendTxns(t, dev, l, dataFile, 1, 2)

	r, err := OpenTail(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, data, err := r.Next(0); err != nil || data == nil {
		t.Fatalf("first drain: data=%v err=%v", data, err)
	}
	if _, data, err := r.Next(0); err != nil || data != nil {
		t.Fatalf("caught-up reader returned data=%v err=%v", data, err)
	}
	before := r.Pos()
	appendTxns(t, dev, l, dataFile, 3, 1)
	base, data, err := r.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	if base != before || data == nil {
		t.Fatalf("post-append read: base=%d want %d, data=%v", base, before, data)
	}
	records, consumed := parseStream(base, data)
	if int(consumed) != len(data) || len(records) != 3 {
		t.Fatalf("new chunk parsed to %d records / %d of %d bytes", len(records), consumed, len(data))
	}
}

// TestTailTruncatedAway checks a reader asking below the surviving base
// gets ErrTruncatedAway, while one asking at the follower's real position
// above the floor still works.
func TestTailTruncatedAway(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	appendTxns(t, dev, l, dataFile, 1, 6)
	begin := l.AppendCheckpointBegin()
	if _, err := l.AppendCheckpointEnd(Checkpoint{BeginLSN: begin, NextTxn: 7}); err != nil {
		t.Fatal(err)
	}
	zeroed, err := l.TruncateBelow(begin)
	if err != nil {
		t.Fatal(err)
	}
	if zeroed == 0 {
		t.Fatal("truncation zeroed nothing; the test needs a truncated prefix")
	}
	if _, err := OpenTail(dev, 0); !errors.Is(err, ErrTruncatedAway) {
		t.Fatalf("OpenTail(0) after truncation: err=%v, want ErrTruncatedAway", err)
	}
	r, err := OpenTail(dev, l.DurableLSN())
	if err != nil {
		t.Fatal(err)
	}
	if _, data, err := r.Next(0); err != nil || data != nil {
		t.Fatalf("tail at durable end: data=%v err=%v", data, err)
	}
	appendTxns(t, dev, l, dataFile, 7, 1)
	if _, data, err := r.Next(0); err != nil || data == nil {
		t.Fatalf("tail past truncation: data=%v err=%v", data, err)
	}
}

// TestTailInFlightAllocation checks the reader treats an allocated but
// unwritten log page as in-flight — caught up, no error — and resumes once
// the appender seals it.
func TestTailInFlightAllocation(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	appendTxns(t, dev, l, dataFile, 1, 1)

	r, err := OpenTail(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, data, err := r.Next(0); err != nil || data == nil {
		t.Fatalf("drain: data=%v err=%v", data, err)
	}
	// Simulate the appender's alloc-before-write window.
	if _, err := dev.AllocPage(LogFileID); err != nil {
		t.Fatal(err)
	}
	if _, data, err := r.Next(0); err != nil || data != nil {
		t.Fatalf("reader trusted an in-flight page: data=%v err=%v", data, err)
	}
}

// TestAppendRawRejects checks the follower-side validation: a chunk at the
// wrong offset and a corrupted chunk are both rejected without touching
// the log.
func TestAppendRawRejects(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	appendTxns(t, dev, l, dataFile, 1, 2)

	r, err := OpenTail(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, data, err := r.Next(0)
	if err != nil || data == nil {
		t.Fatal(err)
	}

	_, fl := newLogOnDisk(t, 1)
	end := fl.DurableLSN()
	if _, err := fl.AppendRaw(end+1, nil); err == nil {
		t.Fatal("AppendRaw at the wrong offset succeeded")
	}
	chunk := append([]byte(nil), data[int(end-base):]...)
	corrupt := append([]byte(nil), chunk...)
	corrupt[len(corrupt)/2] ^= 0xff
	if _, err := fl.AppendRaw(end, corrupt); err == nil {
		t.Fatal("AppendRaw of a corrupt chunk succeeded")
	}
	if got := fl.DurableLSN(); got != end {
		t.Fatalf("rejected chunk moved the log: durable %d, want %d", got, end)
	}
	recs, err := fl.AppendRaw(end, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("valid chunk parsed to no records")
	}
}

// copyLogTo clones the log file of src onto a fresh disk, leaving every
// data file behind — the shape of a follower that holds the stream but has
// applied none of it.
func copyLogTo(t *testing.T, src *storage.Disk) *storage.Disk {
	t.Helper()
	dst := storage.NewDisk(src.PageSize())
	if id := dst.CreateFile(); id != LogFileID {
		t.Fatalf("fresh disk created file %d", id)
	}
	for p := 0; p < src.NumPages(LogFileID); p++ {
		id := storage.PageID{File: LogFileID, Page: int32(p)}
		buf, err := src.ReadPage(id)
		if err != nil {
			t.Fatal(err)
		}
		did, err := dst.AllocPage(LogFileID)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.WritePage(did, buf); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestApplyFloorIgnoresDPT is the soundness case ApplyFloor exists for: a
// checkpoint whose DPT omits a page (the primary flushed it) must not stop
// a follower that never applied the image from replaying it.
func TestApplyFloorIgnoresDPT(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	appendTxns(t, dev, l, dataFile, 1, 1)
	// The checkpoint's empty DPT says every earlier image is on the
	// primary's device.
	begin := l.AppendCheckpointBegin()
	if _, err := l.AppendCheckpointEnd(Checkpoint{BeginLSN: begin, NextTxn: 2}); err != nil {
		t.Fatal(err)
	}

	target := storage.PageID{File: dataFile, Page: 0}
	bounded := copyLogTo(t, dev)
	res, err := RecoverWith(bounded, Options{GroupCommit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RecordsSkipped != 1 || res.Stats.RecordsReplayed != 0 {
		t.Fatalf("bounded recovery: skipped=%d replayed=%d, want 1/0",
			res.Stats.RecordsSkipped, res.Stats.RecordsReplayed)
	}

	floored := copyLogTo(t, dev)
	res, err = RecoverWith(floored, Options{GroupCommit: 1, ApplyFloor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RecordsReplayed != 1 {
		t.Fatalf("ApplyFloor=1 recovery replayed %d images, want 1", res.Stats.RecordsReplayed)
	}
	want := make([]byte, dev.PageSize())
	for j := range want {
		want[j] = byte(1 + j) // txn 1's image pattern from appendTxns
	}
	got, err := floored.ReadPage(target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("ApplyFloor replay did not reconstruct the page")
	}

	// And the floor side: a follower that already applied everything below
	// its durable end replays nothing when recovering at that floor.
	applied := copyLogTo(t, dev)
	res, err = RecoverWith(applied, Options{GroupCommit: 1, ApplyFloor: 1})
	if err != nil {
		t.Fatal(err)
	}
	floor := res.Log.DurableLSN()
	again, err := RecoverWith(applied, Options{GroupCommit: 1, ApplyFloor: floor})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.RecordsReplayed != 0 || again.Stats.RecordsSkipped != 1 {
		t.Fatalf("floored re-recovery: replayed=%d skipped=%d, want 0/1",
			again.Stats.RecordsReplayed, again.Stats.RecordsSkipped)
	}
}

// TestTailAcrossTruncationUnderReader checks truncation under live
// readers: one that drained the stream keeps streaming afterwards, and one
// that opened before the truncation still delivers the full pre-truncation
// stream it buffered — zeroing durable pages never corrupts a reader that
// already consumed them.
func TestTailAcrossTruncationUnderReader(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	appendTxns(t, dev, l, dataFile, 1, 4)

	ahead, err := OpenTail(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, data, err := ahead.Next(0); err != nil || data == nil {
		t.Fatalf("drain: data=%v err=%v", data, err)
	}
	behind, err := OpenTail(dev, 0)
	if err != nil {
		t.Fatal(err)
	}

	begin := l.AppendCheckpointBegin()
	if _, err := l.AppendCheckpointEnd(Checkpoint{BeginLSN: begin, NextTxn: 5}); err != nil {
		t.Fatal(err)
	}
	if zeroed, err := l.TruncateBelow(begin); err != nil || zeroed == 0 {
		t.Fatalf("truncation: zeroed=%d err=%v", zeroed, err)
	}
	appendTxns(t, dev, l, dataFile, 5, 1)

	if _, data, err := ahead.Next(0); err != nil || data == nil {
		t.Fatalf("caught-up reader after truncation: data=%v err=%v", data, err)
	}
	base, data, err := behind.Next(0)
	if err != nil || data == nil {
		t.Fatalf("buffered reader after truncation: data=%v err=%v", data, err)
	}
	if base != 0 {
		t.Fatalf("buffered reader lost its prefix: base=%d, want 0", base)
	}
}
