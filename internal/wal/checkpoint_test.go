package wal

import (
	"bytes"
	"reflect"
	"testing"

	"spatialjoin/internal/storage"
)

// TestCheckpointCodecRoundTrip checks the end-record payload carries every
// table through encode/decode unchanged.
func TestCheckpointCodecRoundTrip(t *testing.T) {
	cp := Checkpoint{
		BeginLSN: 12345,
		NextTxn:  42,
		Active: []ActiveTxn{
			{Txn: 7, BeginLSN: 11111},
			{Txn: 9, BeginLSN: 12000},
		},
		DPT: []DirtyPage{
			{Page: storage.PageID{File: 2, Page: 5}, RecLSN: 9000},
			{Page: storage.PageID{File: 3, Page: 0}, RecLSN: 10500},
		},
		Manifest: Manifest{
			Collections: []ManifestCollection{
				{NewCollection: NewCollection{Name: "roads", HeapFile: 1, IndexFile: 2}, CoveringLSN: 8000},
			},
			JoinIndices: []ManifestJoinIndex{
				{NewJoinIndex: NewJoinIndex{R: "roads", S: "cities", Operator: "overlaps", PairFile: 4}, CoveringLSN: 9500},
			},
		},
	}
	got, err := DecodeCheckpoint(EncodeCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, cp)
	}
	if _, err := DecodeCheckpoint(EncodeCheckpoint(cp)[:10]); err == nil {
		t.Error("truncated payload decoded without error")
	}
}

// TestCheckpointFloors checks RedoFloor and replayStart honor the DPT and
// active-transaction minima.
func TestCheckpointFloors(t *testing.T) {
	cp := Checkpoint{BeginLSN: 1000}
	if cp.RedoFloor() != 1000 || cp.replayStart() != 1000 {
		t.Fatalf("empty-table floors = %d/%d, want 1000/1000", cp.RedoFloor(), cp.replayStart())
	}
	cp.DPT = []DirtyPage{{Page: storage.PageID{File: 1, Page: 1}, RecLSN: 400}}
	cp.Active = []ActiveTxn{{Txn: 3, BeginLSN: 700}}
	if cp.RedoFloor() != 400 {
		t.Errorf("RedoFloor = %d, want 400 (DPT floor)", cp.RedoFloor())
	}
	if cp.replayStart() != 700 {
		t.Errorf("replayStart = %d, want 700 (oldest active begin, DPT does not lower it)", cp.replayStart())
	}
}

// commitImage logs one committed transaction writing img to pid.
func commitImage(t *testing.T, l *Log, txn uint64, pid storage.PageID, img []byte) LSN {
	t.Helper()
	l.Begin(txn)
	l.AppendImage(txn, pid, img)
	lsn, err := l.Commit(txn)
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

// TestCheckpointBoundsRedo builds a log with pre-checkpoint transactions
// already on the device, checkpoints with an empty DPT, and checks recovery
// skips everything below the begin marker — and still recovers the device
// to identical bytes.
func TestCheckpointBoundsRedo(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	pid, err := dev.AllocPage(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	imgA := bytes.Repeat([]byte{0xA1}, 256)
	imgB := bytes.Repeat([]byte{0xB2}, 256)
	commitImage(t, l, 1, pid, imgA)
	// The "flush": the committed content reaches the device before the
	// checkpoint cuts its tables, so the DPT is empty.
	if err := dev.WritePage(pid, imgA); err != nil {
		t.Fatal(err)
	}
	lb := l.AppendCheckpointBegin()
	if _, err := l.AppendCheckpointEnd(Checkpoint{BeginLSN: lb, NextTxn: 2}); err != nil {
		t.Fatal(err)
	}
	commitImage(t, l, 2, pid, imgB) // post-checkpoint: must replay

	res, err := RecoverWith(dev, Options{GroupCommit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint == nil || res.Checkpoint.BeginLSN != lb {
		t.Fatalf("recovery found checkpoint %+v, want begin %d", res.Checkpoint, lb)
	}
	if res.Stats.RecordsSkipped != 1 {
		t.Errorf("RecordsSkipped = %d, want 1 (the pre-checkpoint image)", res.Stats.RecordsSkipped)
	}
	if res.Stats.RecordsReplayed != 1 {
		t.Errorf("RecordsReplayed = %d, want 1 (the post-checkpoint image)", res.Stats.RecordsReplayed)
	}
	got, err := dev.ReadPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, imgB) {
		t.Error("device page does not hold the newest committed image after bounded recovery")
	}

	// Ignoring the checkpoint must replay everything and agree on state.
	res0, err := RecoverWith(dev, Options{GroupCommit: 1, IgnoreCheckpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	if res0.Checkpoint != nil || res0.Stats.RecordsSkipped != 0 || res0.Stats.RecordsReplayed != 2 {
		t.Errorf("full recovery stats: %+v", res0.Stats)
	}
}

// TestCheckpointDPTForcesReplay checks an image below the begin marker is
// still replayed when the DPT says its page never reached the device.
func TestCheckpointDPTForcesReplay(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	pid, err := dev.AllocPage(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{0xC3}, 256)
	begin := l.Begin(1)
	l.AppendImage(1, pid, img)
	if _, err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	// No device write: the page is still dirty at checkpoint time, so the
	// DPT carries it with the transaction's begin LSN as its redo floor.
	lb := l.AppendCheckpointBegin()
	cp := Checkpoint{
		BeginLSN: lb,
		NextTxn:  2,
		DPT:      []DirtyPage{{Page: pid, RecLSN: begin}},
	}
	if _, err := l.AppendCheckpointEnd(cp); err != nil {
		t.Fatal(err)
	}
	res, err := RecoverWith(dev, Options{GroupCommit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RecordsReplayed != 1 || res.Stats.RecordsSkipped != 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	got, err := dev.ReadPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Error("dirty-page-table image was not replayed")
	}
	if !res.TouchedFiles[pid.File] {
		t.Error("TouchedFiles does not name the replayed file")
	}
}

// TestActiveTxnStraddlesCheckpoint checks a transaction whose images land
// below the begin marker but whose commit lands above it is fully replayed:
// the active-transaction table lowers the replay start.
func TestActiveTxnStraddlesCheckpoint(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	pid, err := dev.AllocPage(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{0xD4}, 256)
	//sjlint:ignore txnatomic t.Fatal exits abandon the test txn; the committed path closes it
	begin := l.Begin(5)
	l.AppendImage(5, pid, img)
	lb := l.AppendCheckpointBegin()
	cp := Checkpoint{
		BeginLSN: lb,
		NextTxn:  6,
		Active:   []ActiveTxn{{Txn: 5, BeginLSN: begin}},
	}
	if _, err := l.AppendCheckpointEnd(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(5); err != nil {
		t.Fatal(err)
	}
	res, err := RecoverWith(dev, Options{GroupCommit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RecordsReplayed != 1 || res.Stats.RecordsSkipped != 0 {
		t.Fatalf("stats: %+v (straddling txn's image must not be skipped)", res.Stats)
	}
	got, err := dev.ReadPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Error("straddling transaction's image was not replayed")
	}
}

// TestTruncateBelowReclaimsAndResyncs checks truncation zeroes only pages
// wholly below the floor, recovery re-synchronizes at the first surviving
// page's record boundary, and post-truncation state matches.
func TestTruncateBelowReclaimsAndResyncs(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	pid, err := dev.AllocPage(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	// Enough committed traffic to span several 256-byte log pages.
	var img []byte
	for i := 0; i < 8; i++ {
		img = bytes.Repeat([]byte{byte(0x10 + i)}, 256)
		commitImage(t, l, uint64(i+1), pid, img)
	}
	if err := dev.WritePage(pid, img); err != nil {
		t.Fatal(err)
	}
	lb := l.AppendCheckpointBegin()
	if _, err := l.AppendCheckpointEnd(Checkpoint{BeginLSN: lb, NextTxn: 9}); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats().Writes
	n, err := l.TruncateBelow(lb)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("truncation reclaimed no pages despite several dead log pages")
	}
	if got := l.Stats().TruncatedPages; got != int64(n) {
		t.Errorf("TruncatedPages stat = %d, want %d", got, n)
	}
	if dev.Stats().Writes != before+int64(n) {
		t.Errorf("device writes during truncation = %d, want %d", dev.Stats().Writes-before, n)
	}

	res, err := RecoverWith(dev, Options{GroupCommit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BaseLSN == 0 {
		t.Error("BaseLSN = 0 after truncation, want the resynchronized boundary")
	}
	if res.Checkpoint == nil || res.Checkpoint.BeginLSN != lb {
		t.Fatalf("checkpoint lost by truncation: %+v", res.Checkpoint)
	}
	got, err := dev.ReadPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Error("device state wrong after truncated-log recovery")
	}
	// A second truncation resumes past the zeroed prefix without rework.
	if _, err := l.TruncateBelow(lb); err != nil {
		t.Fatal(err)
	}

	// The recovered log still accepts and recovers new transactions.
	l2 := res.Log
	img2 := bytes.Repeat([]byte{0xEE}, 256)
	commitImage(t, l2, 20, pid, img2)
	res2, err := RecoverWith(dev, Options{GroupCommit: 1})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := dev.ReadPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, img2) {
		t.Errorf("post-truncation append lost: %+v", res2.Stats)
	}
}

// TestAbortRecordClosesTxn checks an aborted transaction is classified as
// aborted — not discarded — and its images are never replayed.
func TestAbortRecordClosesTxn(t *testing.T) {
	dev, l := newLogOnDisk(t, 1)
	dataFile := dev.CreateFile()
	pid, err := dev.AllocPage(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	l.Begin(3)
	l.AppendImage(3, pid, bytes.Repeat([]byte{0xFF}, 256))
	l.Abort(3)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Aborts; got != 1 {
		t.Errorf("Aborts stat = %d, want 1", got)
	}
	_, _, rstats, err := Recover(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.TxnsAborted != 1 || rstats.TxnsDiscarded != 0 || rstats.RecordsReplayed != 0 {
		t.Errorf("recovery stats: %+v", rstats)
	}
}

// TestLogCloseForcesDurable checks Close drains the group-commit buffer: a
// commit batched under a large group size survives a clean shutdown.
func TestLogCloseForcesDurable(t *testing.T) {
	dev, l := newLogOnDisk(t, 64) // batch far more commits than we make
	dataFile := dev.CreateFile()
	pid, err := dev.AllocPage(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{0x77}, 256)
	l.Begin(1)
	l.AppendImage(1, pid, img)
	if _, err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, rstats, err := Recover(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.TxnsCommitted != 1 || rstats.RecordsReplayed != 1 {
		t.Errorf("commit lost across clean Close: %+v", rstats)
	}
}
