package zorder

import (
	"context"
	"sort"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/parallel"
)

// parallelMinInput is the combined input size below which tiling overhead
// outweighs the parallel win and ParallelOverlapJoin stays sequential.
const parallelMinInput = 256

// tilesPerWorker oversplits the world so skewed data still load-balances.
const tilesPerWorker = 4

// SortPairs orders pairs canonically by (R, S) ascending.
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].R != ps[j].R {
			return ps[i].R < ps[j].R
		}
		return ps[i].S < ps[j].S
	})
}

// ParallelOverlapJoin computes the same deduplicated, exactly-verified
// result set as OverlapJoin with {Dedup: true, Exact: true}, partitioned
// over a worker pool: the world is cut into vertical strips, each strip
// runs the sequential sort-merge on the rectangles that intersect it, and
// pairs straddling a strip boundary are suppressed everywhere except in
// the one strip owning the pair's reference point — the world-clamped
// min corner of the two rectangles' intersection. Each result pair is
// therefore reported by exactly one strip, with no cross-worker
// communication.
//
// workers ≤ 0 means runtime.GOMAXPROCS(0); with one worker (or a small
// input) the sequential algorithm runs directly. The returned pairs are
// sorted by (R, S); the sequential OverlapJoin reports discovery order, so
// callers comparing the two must sort. Decomposition and candidate counts
// in JoinStats are summed over strips, so a rectangle intersecting k
// strips contributes k decompositions — the duplicated boundary work the
// partitioning actually performs.
func (g *Grid) ParallelOverlapJoin(rs, ss []geom.Rect, workers int) ([]Pair, JoinStats) {
	pairs, stats, err := g.ParallelOverlapJoinCtx(context.Background(), rs, ss, workers)
	if err != nil {
		// A background context never fires and no task here fails otherwise.
		panic("zorder: unreachable parallel error: " + err.Error())
	}
	return pairs, stats
}

// ParallelOverlapJoinCtx is ParallelOverlapJoin bounded by a context: it is
// checked between strips (and in the sequential fallback, before the scan),
// and cancellation returns ctx.Err() with a nil pair set.
func (g *Grid) ParallelOverlapJoinCtx(ctx context.Context, rs, ss []geom.Rect, workers int) ([]Pair, JoinStats, error) {
	w := parallel.Workers(workers)
	if w <= 1 || len(rs)+len(ss) < parallelMinInput {
		if err := ctx.Err(); err != nil {
			return nil, JoinStats{}, err
		}
		pairs, stats := g.OverlapJoin(rs, ss, JoinOptions{Dedup: true, Exact: true})
		SortPairs(pairs)
		return pairs, stats, nil
	}

	// Strip boundaries, shared by membership and ownership decisions so a
	// pair's owning strip always also received both of its rectangles.
	tiles := w * tilesPerWorker
	bounds := make([]float64, tiles+1)
	for i := 0; i <= tiles; i++ {
		bounds[i] = g.world.MinX + float64(i)*g.world.Width()/float64(tiles)
	}
	bounds[tiles] = g.world.MaxX

	stripRect := func(i int) geom.Rect {
		return geom.Rect{MinX: bounds[i], MinY: g.world.MinY, MaxX: bounds[i+1], MaxY: g.world.MaxY}
	}
	// ownerOf returns the strip owning reference coordinate x: the last
	// strip whose left boundary is ≤ x, so bounds[o] ≤ x ≤ bounds[o+1] and
	// strip o's closed rectangle contains the reference point.
	ownerOf := func(x float64) int {
		o := sort.SearchFloat64s(bounds[1:tiles], x)
		if geom.SameCoord(x, bounds[o+1]) && o+1 < tiles {
			// A reference point exactly on a boundary belongs to the strip
			// on its right, matching the half-open reading of the strips.
			return o + 1
		}
		return o
	}

	type tileResult struct {
		pairs []Pair
		stats JoinStats
	}
	results := make([]tileResult, tiles)
	err := parallel.RunCtx(ctx, w, tiles, func(t int) error {
		strip := stripRect(t)
		var rsub, ssub []geom.Rect
		var rmap, smap []int
		for i, r := range rs {
			if r.Intersects(strip) {
				rsub = append(rsub, r)
				rmap = append(rmap, i)
			}
		}
		for j, s := range ss {
			if s.Intersects(strip) {
				ssub = append(ssub, s)
				smap = append(smap, j)
			}
		}
		if len(rsub) == 0 || len(ssub) == 0 {
			return nil
		}
		sub, stats := g.OverlapJoin(rsub, ssub, JoinOptions{Dedup: true, Exact: true})
		kept := sub[:0]
		for _, p := range sub {
			orig := Pair{R: rmap[p.R], S: smap[p.S]}
			iv, ok := rs[orig.R].Intersection(ss[orig.S])
			if !ok {
				continue // unreachable: Exact verified the intersection
			}
			ref := clampCoord(iv.MinX, g.world.MinX, g.world.MaxX)
			if ownerOf(ref) == t {
				kept = append(kept, orig)
			}
		}
		results[t] = tileResult{pairs: kept, stats: stats}
		return nil
	})
	if err != nil {
		// The only error source is cancellation: no task here fails.
		return nil, JoinStats{}, err
	}

	var out []Pair
	var stats JoinStats
	for _, tr := range results {
		out = append(out, tr.pairs...)
		stats.ElementsR += tr.stats.ElementsR
		stats.ElementsS += tr.stats.ElementsS
		stats.Candidates += tr.stats.Candidates
		stats.Duplicates += tr.stats.Duplicates
		stats.ExactTests += tr.stats.ExactTests
	}
	SortPairs(out)
	return out, stats, nil
}

// clampCoord clamps v into [lo, hi].
func clampCoord(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
