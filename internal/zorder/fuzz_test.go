package zorder

import (
	"math"
	"testing"

	"spatialjoin/internal/geom"
)

// FuzzZOverlapJoin fuzzes rectangle coordinates and the grid level,
// cross-checking the z-order sort-merge join (sequential and tiled
// parallel) against the brute-force reference and asserting that no
// duplicate pair escapes deduplication.
func FuzzZOverlapJoin(f *testing.F) {
	f.Add(uint(4), 10.0, 10.0, 30.0, 30.0, 20.0, 20.0, 50.0, 50.0)
	f.Add(uint(1), 0.0, 0.0, 100.0, 100.0, 0.0, 0.0, 100.0, 100.0)
	f.Add(uint(12), 99.9, 0.1, 100.0, 0.2, 99.95, 0.0, 150.0, 90.0)
	f.Add(uint(7), -20.0, -20.0, 5.0, 5.0, 0.0, 0.0, 3.0, 3.0)
	f.Add(uint(30), 50.0, 50.0, 50.0, 50.0, 50.0, 50.0, 50.0, 50.0)

	world := geom.NewRect(0, 0, 100, 100)
	f.Fuzz(func(t *testing.T, level uint,
		ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float64) {

		if level < 1 || level > MaxLevel {
			t.Skip()
		}
		// Fold deep levels into [1, 8]: decomposing hundreds of mid-size
		// rectangles on a 2^30 grid is quadratic in boundary cells and
		// would stall the fuzzer without testing anything new.
		level = 1 + (level-1)%8
		for _, v := range []float64{ax1, ay1, ax2, ay2, bx1, by1, bx2, by2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		clampIn := func(v float64) float64 {
			// Keep the fuzzed geometry inside the world: there the z-order
			// join is exactly equivalent to brute force. (Outside it, pairs
			// intersecting only beyond the world edge are legitimately
			// dropped by the grid clipping.)
			return clampCoord(v, world.MinX, world.MaxX)
		}
		a := geom.NewRect(clampIn(ax1), clampIn(ay1), clampIn(ax2), clampIn(ay2))
		b := geom.NewRect(clampIn(bx1), clampIn(by1), clampIn(bx2), clampIn(by2))
		// Grow the two seeds into small families so the join has real
		// merge work and duplicate candidates to suppress.
		shift := func(r geom.Rect, dx, dy float64) geom.Rect {
			return geom.Rect{
				MinX: clampIn(r.MinX + dx), MinY: clampIn(r.MinY + dy),
				MaxX: clampIn(r.MaxX + dx), MaxY: clampIn(r.MaxY + dy),
			}
		}
		// 2×140 rects also pushes the parallel join past its sequential
		// fallback threshold, so the tile partitioner really runs.
		var rs, ss []geom.Rect
		for i := 0; i < 140; i++ {
			dx, dy := float64(i%17)-8, float64(i%11)-5
			rs = append(rs, shift(a, dx, dy))
			ss = append(ss, shift(b, dy, dx))
		}

		g, err := NewGrid(world, level)
		if err != nil {
			t.Fatalf("NewGrid(level=%d): %v", level, err)
		}
		got, stats := g.OverlapJoin(rs, ss, JoinOptions{Dedup: true, Exact: true})
		want := BruteOverlapJoin(rs, ss)
		if pairKey(got) != pairKey(want) {
			t.Fatalf("level %d: z-order join %v != brute force %v", level, got, want)
		}
		// Dedup contract: every reported pair is unique.
		seen := make(map[Pair]bool, len(got))
		for _, p := range got {
			if seen[p] {
				t.Fatalf("duplicate pair %v escaped dedup (stats %+v)", p, stats)
			}
			seen[p] = true
		}
		// The tiled parallel join must agree pair-for-pair.
		par, _ := g.ParallelOverlapJoin(rs, ss, 4)
		if pairKey(par) != pairKey(want) {
			t.Fatalf("level %d: parallel join %v != brute force %v", level, par, want)
		}
	})
}
