// Package zorder implements Peano curves (z-ordering) and Orenstein's
// sort-merge spatial join over them.
//
// The paper uses z-ordering twice: Figure 1 demonstrates that no spatial
// total order preserves proximity (two adjacent cells can be arbitrarily far
// apart in the Peano sequence), and §2.2 notes the one exception where
// sort-merge does work for spatial data — the overlaps operator, computed by
// decomposing each object into z-order-aligned quadrants, sorting, and
// merging with a nesting stack [Oren86]. Both are implemented here, together
// with the duplicate-reporting behaviour the paper calls out ("any overlap
// is likely to be reported more than once ... once for each grid cell that
// the objects have in common"), plus optional de-duplication.
package zorder

import (
	"fmt"

	"spatialjoin/internal/geom"
)

// MaxLevel is the deepest supported decomposition level: a 2^30 × 2^30 grid
// whose interleaved indices fit in 60 bits of a uint64.
const MaxLevel = 30

// Interleave bit-interleaves x and y into a z-order index (x in the even
// bit positions, y in the odd).
func Interleave(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// Deinterleave recovers the x and y coordinates from a z-order index.
func Deinterleave(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread distributes the 32 bits of v into the even bit positions of a
// uint64.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact inverts spread.
func compact(z uint64) uint32 {
	x := z & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}

// Grid maps a world rectangle onto a 2^level × 2^level cell grid with
// z-order indexing.
type Grid struct {
	world geom.Rect
	level uint
	cells uint32 // per side
}

// NewGrid returns a grid over world at the given level. The world rectangle
// must be valid with positive area; level must be in [1, MaxLevel].
func NewGrid(world geom.Rect, level uint) (*Grid, error) {
	if !world.Valid() || world.Area() <= 0 {
		return nil, fmt.Errorf("zorder: invalid world rect %v", world)
	}
	if level < 1 || level > MaxLevel {
		return nil, fmt.Errorf("zorder: level %d out of [1, %d]", level, MaxLevel)
	}
	return &Grid{world: world, level: level, cells: 1 << level}, nil
}

// Level returns the grid's decomposition level.
func (g *Grid) Level() uint { return g.level }

// World returns the grid's world rectangle.
func (g *Grid) World() geom.Rect { return g.world }

// CellsPerSide returns 2^level.
func (g *Grid) CellsPerSide() uint32 { return g.cells }

// CellIndex returns the z-order index of the cell containing p. Points on
// the world's max edges land in the last cell; points outside the world are
// clamped.
func (g *Grid) CellIndex(p geom.Point) uint64 {
	return Interleave(g.coord(p.X, g.world.MinX, g.world.Width()),
		g.coord(p.Y, g.world.MinY, g.world.Height()))
}

// coord converts a world coordinate to a clamped cell coordinate.
func (g *Grid) coord(v, min, extent float64) uint32 {
	f := (v - min) / extent * float64(g.cells)
	if f < 0 {
		return 0
	}
	if f >= float64(g.cells) {
		return g.cells - 1
	}
	return uint32(f)
}

// CellRect returns the world rectangle of the cell with the given z index.
func (g *Grid) CellRect(z uint64) geom.Rect {
	x, y := Deinterleave(z)
	w := g.world.Width() / float64(g.cells)
	h := g.world.Height() / float64(g.cells)
	return geom.Rect{
		MinX: g.world.MinX + float64(x)*w,
		MinY: g.world.MinY + float64(y)*h,
		MaxX: g.world.MinX + float64(x+1)*w,
		MaxY: g.world.MinY + float64(y+1)*h,
	}
}

// Range is an inclusive interval of z-order indices at the grid's finest
// level. Ranges produced by Decompose are always quadrant-aligned, so two
// ranges either nest or are disjoint — the property Orenstein's merge
// exploits.
type Range struct {
	Lo, Hi uint64
}

// Contains reports whether o nests inside r.
func (r Range) Contains(o Range) bool { return r.Lo <= o.Lo && o.Hi <= r.Hi }

// Overlaps reports whether the intervals share any index.
func (r Range) Overlaps(o Range) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// Decompose expresses the part of the grid covered by rect as a minimal set
// of quadrant-aligned z ranges, recursing at most to the grid's level. The
// ranges are returned in ascending z order and are pairwise disjoint.
func (g *Grid) Decompose(rect geom.Rect) []Range {
	clipped, ok := rect.Intersection(g.world)
	if !ok {
		return nil
	}
	var out []Range
	g.decompose(clipped, 0, 0, g.world, &out)
	return out
}

// decompose recurses over the quadtree. prefix is the z index of the
// current quadrant's first cell at the finest level; depth its level.
func (g *Grid) decompose(rect geom.Rect, prefix uint64, depth uint, quad geom.Rect, out *[]Range) {
	if !rect.Intersects(quad) {
		return
	}
	cellsBelow := uint64(1) << (2 * (g.level - depth)) // finest cells in this quadrant
	if depth == g.level || rect.ContainsRect(quad) {
		r := Range{Lo: prefix, Hi: prefix + cellsBelow - 1}
		// Coalesce with the previous range when contiguous (keeps the
		// decomposition minimal along the curve).
		if n := len(*out); n > 0 && (*out)[n-1].Hi+1 == r.Lo {
			(*out)[n-1].Hi = r.Hi
			return
		}
		*out = append(*out, r)
		return
	}
	midX := (quad.MinX + quad.MaxX) / 2
	midY := (quad.MinY + quad.MaxY) / 2
	quarter := cellsBelow / 4
	// Children in z order: (low,low), (high,low), (low,high), (high,high)
	// — x is the even bit, so quadrant 1 is x-high.
	kids := [4]geom.Rect{
		{MinX: quad.MinX, MinY: quad.MinY, MaxX: midX, MaxY: midY},
		{MinX: midX, MinY: quad.MinY, MaxX: quad.MaxX, MaxY: midY},
		{MinX: quad.MinX, MinY: midY, MaxX: midX, MaxY: quad.MaxY},
		{MinX: midX, MinY: midY, MaxX: quad.MaxX, MaxY: quad.MaxY},
	}
	for i, k := range kids {
		g.decompose(rect, prefix+uint64(i)*quarter, depth+1, k, out)
	}
}
