package zorder

import (
	"fmt"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

// randRects returns n random rectangles inside (or, with slop > 0,
// spilling past) the world — boundary-crossing inputs exercise the
// clamped-reference ownership rule of the tile partitioner.
func randRects(rng *rand.Rand, n int, world geom.Rect, maxSide, slop float64) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		w := 0.5 + rng.Float64()*maxSide
		h := 0.5 + rng.Float64()*maxSide
		x := world.MinX - slop + rng.Float64()*(world.Width()+2*slop)
		y := world.MinY - slop + rng.Float64()*(world.Height()+2*slop)
		out[i] = geom.NewRect(x, y, x+w, y+h)
	}
	return out
}

func pairKey(ps []Pair) string {
	sorted := append([]Pair(nil), ps...)
	SortPairs(sorted)
	return fmt.Sprint(sorted)
}

func TestParallelOverlapJoinMatchesSequential(t *testing.T) {
	world := geom.NewRect(0, 0, 1024, 1024)
	for _, tc := range []struct {
		name  string
		level uint
		n     int
		slop  float64
	}{
		{"inside_world", 8, 700, 0},
		{"boundary_spill", 8, 700, 60},
		{"coarse_grid", 3, 500, 0},
		{"small_input_serial_fallback", 8, 40, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(tc.n) + int64(tc.level)))
			g, err := NewGrid(world, tc.level)
			if err != nil {
				t.Fatal(err)
			}
			rs := randRects(rng, tc.n, world, 30, tc.slop)
			ss := randRects(rng, tc.n, world, 30, tc.slop)
			want, _ := g.OverlapJoin(rs, ss, JoinOptions{Dedup: true, Exact: true})
			wantKey := pairKey(want)
			for _, workers := range []int{1, 2, 3, 8, 0} {
				got, _ := g.ParallelOverlapJoin(rs, ss, workers)
				if pairKey(got) != wantKey {
					t.Fatalf("workers=%d: %d pairs, sequential %d", workers, len(got), len(want))
				}
				// The parallel join's contract includes canonical order.
				for i := 1; i < len(got); i++ {
					if got[i-1].R > got[i].R ||
						(got[i-1].R == got[i].R && got[i-1].S >= got[i].S) {
						t.Fatalf("workers=%d: output not sorted at %d", workers, i)
					}
				}
			}
		})
	}
}

func TestParallelOverlapJoinSelfJoin(t *testing.T) {
	world := geom.NewRect(0, 0, 512, 512)
	g, err := NewGrid(world, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	rects := randRects(rng, 600, world, 20, 0)
	want := BruteOverlapJoin(rects, rects)
	got, _ := g.ParallelOverlapJoin(rects, rects, 8)
	if pairKey(got) != pairKey(want) {
		t.Fatalf("self join: %d pairs, brute force %d", len(got), len(want))
	}
}

func TestParallelOverlapJoinEmpty(t *testing.T) {
	g, err := NewGrid(geom.NewRect(0, 0, 100, 100), 6)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := g.ParallelOverlapJoin(nil, nil, 8); len(got) != 0 {
		t.Fatalf("empty inputs produced %d pairs", len(got))
	}
	rng := rand.New(rand.NewSource(1))
	rs := randRects(rng, 400, geom.NewRect(0, 0, 100, 100), 5, 0)
	if got, _ := g.ParallelOverlapJoin(rs, nil, 8); len(got) != 0 {
		t.Fatalf("one empty side produced %d pairs", len(got))
	}
}

// TestParallelOverlapJoinTouchingAtBoundary pins the ownership rule: two
// rectangles meeting exactly on a strip boundary are reported exactly
// once. The geometry is built so the shared edge lands on a tile boundary
// for the worker counts used.
func TestParallelOverlapJoinTouchingAtBoundary(t *testing.T) {
	world := geom.NewRect(0, 0, 1024, 1024)
	g, err := NewGrid(world, 8)
	if err != nil {
		t.Fatal(err)
	}
	var rs, ss []geom.Rect
	// Pairs touching at x = 512, 256, 128 — tile boundaries for 2/4/8-way
	// splits (and their ×4 oversplits).
	for i, x := range []float64{512, 256, 128, 64} {
		y := float64(i * 40)
		rs = append(rs, geom.NewRect(x-30, y, x, y+30))
		ss = append(ss, geom.NewRect(x, y, x+30, y+30))
	}
	// Pad the inputs past the serial-fallback threshold with far-away
	// non-matching rects.
	for i := 0; i < parallelMinInput; i++ {
		rs = append(rs, geom.NewRect(900, 900+float64(i%50), 901, 901+float64(i%50)))
	}
	want := BruteOverlapJoin(rs, ss)
	for _, workers := range []int{2, 4, 8} {
		got, _ := g.ParallelOverlapJoin(rs, ss, workers)
		if pairKey(got) != pairKey(want) {
			t.Fatalf("workers=%d: %d pairs, brute force %d", workers, len(got), len(want))
		}
	}
}
