package zorder

import (
	"sort"

	"spatialjoin/internal/geom"
)

// Side distinguishes the two inputs of the sort-merge join.
type Side uint8

// Join input sides.
const (
	SideR Side = iota
	SideS
)

// element is one z range of one object in the merged sequence.
type element struct {
	rng  Range
	side Side
	id   int
}

// Pair is one candidate or result pair of the sort-merge join.
type Pair struct {
	R, S int
}

// JoinStats reports the work of a sort-merge overlap join.
type JoinStats struct {
	// ElementsR / ElementsS are the z ranges generated per side.
	ElementsR, ElementsS int
	// Candidates counts candidate pairs produced by the merge, including
	// duplicates — the paper's "reported once for each grid cell the
	// objects have in common".
	Candidates int
	// Duplicates counts candidates that had already been reported.
	Duplicates int
	// ExactTests counts rectangle intersection tests on candidates.
	ExactTests int
}

// JoinOptions tunes the sort-merge overlap join.
type JoinOptions struct {
	// Dedup suppresses duplicate result pairs. With Dedup false the raw
	// duplicate-bearing stream is returned, reproducing the behaviour the
	// paper describes for the z-ordering implementation.
	Dedup bool
	// Exact filters candidates with an exact rectangle-intersection test.
	// Without it, results are cell-level candidates and may contain false
	// positives whose rectangles share a cell but not a point.
	Exact bool
}

// OverlapJoin computes {(i, j) | rs[i] overlaps ss[j]} by Orenstein's
// sort-merge: each rectangle is decomposed into quadrant-aligned z ranges,
// both element lists are sorted into one sequence, and a nesting stack pairs
// every element with the enclosing elements of the other side.
func (g *Grid) OverlapJoin(rs, ss []geom.Rect, opts JoinOptions) ([]Pair, JoinStats) {
	var stats JoinStats
	elems := make([]element, 0, len(rs)+len(ss))
	for i, r := range rs {
		for _, rng := range g.Decompose(r) {
			elems = append(elems, element{rng: rng, side: SideR, id: i})
			stats.ElementsR++
		}
	}
	for j, s := range ss {
		for _, rng := range g.Decompose(s) {
			elems = append(elems, element{rng: rng, side: SideS, id: j})
			stats.ElementsS++
		}
	}
	// Sort by Lo ascending; ties by Hi descending so enclosing ranges
	// precede their nested ranges and land deeper in the stack.
	sort.Slice(elems, func(i, j int) bool {
		if elems[i].rng.Lo != elems[j].rng.Lo {
			return elems[i].rng.Lo < elems[j].rng.Lo
		}
		return elems[i].rng.Hi > elems[j].rng.Hi
	})

	var out []Pair
	seen := make(map[Pair]bool)
	var stack []element
	emit := func(a, b element) {
		stats.Candidates++
		var p Pair
		if a.side == SideR {
			p = Pair{R: a.id, S: b.id}
		} else {
			p = Pair{R: b.id, S: a.id}
		}
		if seen[p] {
			stats.Duplicates++
			if opts.Dedup {
				return
			}
		} else {
			seen[p] = true
		}
		if opts.Exact {
			stats.ExactTests++
			if !rs[p.R].Intersects(ss[p.S]) {
				return
			}
		}
		out = append(out, p)
	}
	for _, e := range elems {
		// Pop ranges that end before e starts; aligned ranges either nest
		// or are disjoint, so anything remaining encloses e.
		for len(stack) > 0 && stack[len(stack)-1].rng.Hi < e.rng.Lo {
			stack = stack[:len(stack)-1]
		}
		// The stack is not sorted by Hi once Decompose has coalesced sibling
		// quadrants, so stale entries can survive below a long-lived one;
		// the explicit overlap check keeps candidates exact.
		for _, anc := range stack {
			if anc.side != e.side && anc.rng.Hi >= e.rng.Lo {
				emit(anc, e)
			}
		}
		stack = append(stack, e)
	}
	return out, stats
}

// BruteOverlapJoin is the quadratic reference implementation used by tests
// and as the nested-loop baseline for this operator.
func BruteOverlapJoin(rs, ss []geom.Rect) []Pair {
	var out []Pair
	for i, r := range rs {
		for j, s := range ss {
			if r.Intersects(s) {
				out = append(out, Pair{R: i, S: j})
			}
		}
	}
	return out
}
