package zorder

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spatialjoin/internal/geom"
)

func TestInterleaveKnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		z    uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
		{0xFFFFFFFF, 0, 0x5555555555555555},
		{0, 0xFFFFFFFF, 0xAAAAAAAAAAAAAAAA},
	}
	for _, c := range cases {
		if got := Interleave(c.x, c.y); got != c.z {
			t.Errorf("Interleave(%d,%d) = %#x, want %#x", c.x, c.y, got, c.z)
		}
	}
}

func TestQuickInterleaveRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Deinterleave(Interleave(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInterleaveMonotoneInQuadrant(t *testing.T) {
	// Within one quadrant prefix, z order follows the recursive pattern:
	// the z index of (x, y) with high bits fixed stays within the prefix
	// range.
	f := func(x, y uint16) bool {
		z := Interleave(uint32(x), uint32(y))
		return z < 1<<32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewGridValidation(t *testing.T) {
	world := geom.NewRect(0, 0, 8, 8)
	if _, err := NewGrid(world, 0); err == nil {
		t.Error("level 0 must fail")
	}
	if _, err := NewGrid(world, MaxLevel+1); err == nil {
		t.Error("level > MaxLevel must fail")
	}
	if _, err := NewGrid(geom.Rect{}, 3); err == nil {
		t.Error("zero-area world must fail")
	}
	g, err := NewGrid(world, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Level() != 3 || g.CellsPerSide() != 8 || g.World() != world {
		t.Fatal("grid accessors wrong")
	}
}

func TestCellIndexAndRect(t *testing.T) {
	g, _ := NewGrid(geom.NewRect(0, 0, 8, 8), 3)
	if z := g.CellIndex(geom.Pt(0.5, 0.5)); z != 0 {
		t.Fatalf("cell of origin = %d", z)
	}
	if z := g.CellIndex(geom.Pt(1.5, 0.5)); z != 1 {
		t.Fatalf("cell (1,0) = %d", z)
	}
	if z := g.CellIndex(geom.Pt(0.5, 1.5)); z != 2 {
		t.Fatalf("cell (0,1) = %d", z)
	}
	// Max-edge and out-of-world points clamp to the grid.
	if z := g.CellIndex(geom.Pt(8, 8)); z != Interleave(7, 7) {
		t.Fatalf("max corner cell = %d", z)
	}
	if z := g.CellIndex(geom.Pt(-5, 99)); z != Interleave(0, 7) {
		t.Fatalf("clamped cell = %d", z)
	}
	// CellRect inverts CellIndex for cell centers.
	for _, z := range []uint64{0, 5, 17, 63} {
		r := g.CellRect(z)
		if got := g.CellIndex(r.Center()); got != z {
			t.Fatalf("CellIndex(CellRect(%d).Center()) = %d", z, got)
		}
	}
}

// TestFigure1ProximityLoss reproduces the paper's Figure 1 argument: on an
// 8×8 Peano grid there exist spatially adjacent cells that are far apart in
// the z sequence — z-ordering does not preserve spatial proximity.
func TestFigure1ProximityLoss(t *testing.T) {
	g, _ := NewGrid(geom.NewRect(0, 0, 8, 8), 3)
	// Cells (0, 3) and (0, 4): physically adjacent across the grid's
	// horizontal midline, which is the top-level split of the curve.
	below := g.CellIndex(geom.Pt(0.5, 3.5)) // (0, 3)
	above := g.CellIndex(geom.Pt(0.5, 4.5)) // (0, 4)
	gap := int64(above) - int64(below)
	if gap < 0 {
		gap = -gap
	}
	// Adjacent cells, yet more than a third of the 64-cell curve apart.
	if gap < 22 {
		t.Fatalf("adjacent midline cells only %d apart in z order", gap)
	}
	// Meanwhile z-consecutive cells are spatially adjacent within a
	// quadrant pair but the converse fails — exactly the asymmetry the
	// paper exploits to rule out sort-merge.
}

func TestDecomposeFullAndSingleCell(t *testing.T) {
	g, _ := NewGrid(geom.NewRect(0, 0, 8, 8), 3)
	full := g.Decompose(geom.NewRect(0, 0, 8, 8))
	if len(full) != 1 || full[0] != (Range{0, 63}) {
		t.Fatalf("full-world decomposition = %v", full)
	}
	cell := g.Decompose(geom.NewRect(2.1, 4.1, 2.4, 4.4))
	if len(cell) != 1 {
		t.Fatalf("single-cell decomposition = %v", cell)
	}
	want := Interleave(2, 4)
	if cell[0].Lo > want || cell[0].Hi < want {
		t.Fatalf("cell range %v does not cover z=%d", cell[0], want)
	}
}

func TestDecomposeOutsideWorld(t *testing.T) {
	g, _ := NewGrid(geom.NewRect(0, 0, 8, 8), 3)
	if got := g.Decompose(geom.NewRect(100, 100, 101, 101)); got != nil {
		t.Fatalf("outside rect decomposed to %v", got)
	}
}

func TestDecomposeCoversExactCellSet(t *testing.T) {
	// The union of decomposed ranges must equal the set of cells whose
	// rectangles intersect the query.
	g, _ := NewGrid(geom.NewRect(0, 0, 16, 16), 4)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x1, y1 := rng.Float64()*16, rng.Float64()*16
		q := geom.NewRect(x1, y1, x1+rng.Float64()*6, y1+rng.Float64()*6)
		covered := make(map[uint64]bool)
		for _, r := range g.Decompose(q) {
			if r.Hi < r.Lo {
				t.Fatalf("inverted range %v", r)
			}
			for z := r.Lo; z <= r.Hi; z++ {
				if covered[z] {
					t.Fatalf("trial %d: cell %d covered twice", trial, z)
				}
				covered[z] = true
			}
		}
		for z := uint64(0); z < 256; z++ {
			want := g.CellRect(z).Intersects(q)
			if covered[z] != want {
				t.Fatalf("trial %d: cell %d covered=%t, want %t (q=%v)", trial, z, covered[z], want, q)
			}
		}
	}
}

func TestDecomposeRangesSortedDisjoint(t *testing.T) {
	g, _ := NewGrid(geom.NewRect(0, 0, 32, 32), 5)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		x, y := rng.Float64()*32, rng.Float64()*32
		q := geom.NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
		rs := g.Decompose(q)
		for i := 1; i < len(rs); i++ {
			if rs[i].Lo <= rs[i-1].Hi {
				t.Fatalf("ranges overlap or out of order: %v then %v", rs[i-1], rs[i])
			}
			if rs[i].Lo == rs[i-1].Hi+1 {
				t.Fatalf("uncoalesced adjacent ranges: %v then %v", rs[i-1], rs[i])
			}
		}
	}
}

func TestRangePredicates(t *testing.T) {
	a := Range{0, 15}
	b := Range{4, 7}
	c := Range{16, 31}
	if !a.Contains(b) || b.Contains(a) {
		t.Fatal("Contains wrong")
	}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Fatal("Overlaps wrong")
	}
	if !a.Contains(a) {
		t.Fatal("a range contains itself")
	}
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].R != ps[j].R {
			return ps[i].R < ps[j].R
		}
		return ps[i].S < ps[j].S
	})
}

func TestOverlapJoinMatchesBruteForce(t *testing.T) {
	g, _ := NewGrid(geom.NewRect(0, 0, 100, 100), 6)
	rng := rand.New(rand.NewSource(3))
	mk := func(n int) []geom.Rect {
		out := make([]geom.Rect, n)
		for i := range out {
			x, y := rng.Float64()*95, rng.Float64()*95
			out[i] = geom.NewRect(x, y, x+rng.Float64()*8, y+rng.Float64()*8)
		}
		return out
	}
	for trial := 0; trial < 10; trial++ {
		rs, ss := mk(60), mk(60)
		got, stats := g.OverlapJoin(rs, ss, JoinOptions{Dedup: true, Exact: true})
		want := BruteOverlapJoin(rs, ss)
		sortPairs(got)
		sortPairs(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pairs, brute force %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pair mismatch at %d", trial, i)
			}
		}
		if stats.ElementsR == 0 || stats.ElementsS == 0 {
			t.Fatal("stats unpopulated")
		}
	}
}

func TestOverlapJoinDuplicatesReported(t *testing.T) {
	// Two long overlapping rectangles share many cells: without dedup the
	// pair must be reported more than once — the behaviour the paper calls
	// out for the z-ordering implementation.
	g, _ := NewGrid(geom.NewRect(0, 0, 16, 16), 4)
	rs := []geom.Rect{geom.NewRect(0.1, 0.1, 15.5, 1.5)}
	ss := []geom.Rect{geom.NewRect(0.2, 0.4, 15.2, 1.2)}
	raw, stats := g.OverlapJoin(rs, ss, JoinOptions{Dedup: false, Exact: true})
	if len(raw) < 2 {
		t.Fatalf("expected duplicate reports, got %d", len(raw))
	}
	if stats.Duplicates == 0 {
		t.Fatal("duplicate counter must be positive")
	}
	dedup, _ := g.OverlapJoin(rs, ss, JoinOptions{Dedup: true, Exact: true})
	if len(dedup) != 1 {
		t.Fatalf("dedup join returned %d pairs, want 1", len(dedup))
	}
}

func TestOverlapJoinCandidatesWithoutExact(t *testing.T) {
	// Rects in the same cell but not intersecting: candidate without Exact,
	// filtered with Exact.
	g, _ := NewGrid(geom.NewRect(0, 0, 8, 8), 1) // 4 coarse cells
	rs := []geom.Rect{geom.NewRect(0.1, 0.1, 0.4, 0.4)}
	ss := []geom.Rect{geom.NewRect(3.1, 3.1, 3.4, 3.4)} // same quadrant, disjoint
	cand, _ := g.OverlapJoin(rs, ss, JoinOptions{Dedup: true, Exact: false})
	if len(cand) != 1 {
		t.Fatalf("expected 1 cell-level candidate, got %d", len(cand))
	}
	exact, stats := g.OverlapJoin(rs, ss, JoinOptions{Dedup: true, Exact: true})
	if len(exact) != 0 {
		t.Fatalf("exact join must filter the false candidate, got %d", len(exact))
	}
	if stats.ExactTests == 0 {
		t.Fatal("exact tests not counted")
	}
}

func TestOverlapJoinEmptyInputs(t *testing.T) {
	g, _ := NewGrid(geom.NewRect(0, 0, 8, 8), 3)
	if got, _ := g.OverlapJoin(nil, nil, JoinOptions{}); len(got) != 0 {
		t.Fatal("empty join must be empty")
	}
	rs := []geom.Rect{geom.NewRect(0, 0, 1, 1)}
	if got, _ := g.OverlapJoin(rs, nil, JoinOptions{}); len(got) != 0 {
		t.Fatal("half-empty join must be empty")
	}
}

func TestOverlapJoinSelfJoinStyle(t *testing.T) {
	// Same list on both sides: result must contain the diagonal.
	g, _ := NewGrid(geom.NewRect(0, 0, 50, 50), 5)
	rng := rand.New(rand.NewSource(4))
	var rects []geom.Rect
	for i := 0; i < 40; i++ {
		x, y := rng.Float64()*45, rng.Float64()*45
		rects = append(rects, geom.NewRect(x, y, x+3, y+3))
	}
	got, _ := g.OverlapJoin(rects, rects, JoinOptions{Dedup: true, Exact: true})
	diag := 0
	for _, p := range got {
		if p.R == p.S {
			diag++
		}
	}
	if diag != len(rects) {
		t.Fatalf("self join diagonal has %d of %d", diag, len(rects))
	}
}
