package relation

import (
	"fmt"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/storage"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(
		Column{"id", TypeInt64},
		Column{"name", TypeString},
		Column{"price", TypeFloat64},
		Column{"location", TypePoint},
		Column{"mbr", TypeRect},
		Column{"shape", TypePolygon},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testTuple(i int) Tuple {
	f := float64(i)
	return Tuple{
		int64(i),
		fmt.Sprintf("object-%d", i),
		f * 1.5,
		geom.Pt(f, f+1),
		geom.NewRect(f, f, f+2, f+2),
		geom.RegularPolygon(geom.Pt(f, f), 1, 5),
	}
}

func newPool(t *testing.T) *storage.BufferPool {
	t.Helper()
	bp, err := storage.NewBufferPool(storage.NewDisk(2000), 64)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := NewSchema(Column{"", TypeInt64}); err == nil {
		t.Error("empty column name must fail")
	}
	if _, err := NewSchema(Column{"a", TypeInt64}, Column{"a", TypeString}); err == nil {
		t.Error("duplicate column must fail")
	}
	if _, err := NewSchema(Column{"a", Type(99)}); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := testSchema(t)
	if i, ok := s.ColumnIndex("price"); !ok || i != 2 {
		t.Fatalf("ColumnIndex(price) = %d, %t", i, ok)
	}
	if _, ok := s.ColumnIndex("missing"); ok {
		t.Fatal("missing column found")
	}
	if i, ok := s.SpatialColumn(); !ok || i != 3 {
		t.Fatalf("SpatialColumn = %d, %t (want first spatial = location)", i, ok)
	}
}

func TestTypeStrings(t *testing.T) {
	names := map[Type]string{
		TypeInt64: "int64", TypeFloat64: "float64", TypeString: "string",
		TypePoint: "point", TypeRect: "rect", TypePolygon: "polygon",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%v.String() = %q", typ, typ.String())
		}
	}
	if Type(0).String() != "Type(0)" {
		t.Errorf("unknown type string = %q", Type(0).String())
	}
	if TypeInt64.Spatial() || !TypePolygon.Spatial() {
		t.Error("Spatial() classification wrong")
	}
}

func TestValidateTuple(t *testing.T) {
	s := testSchema(t)
	if err := s.Validate(testTuple(1)); err != nil {
		t.Fatalf("valid tuple rejected: %v", err)
	}
	if err := s.Validate(Tuple{int64(1)}); err == nil {
		t.Error("short tuple must fail")
	}
	bad := testTuple(1)
	bad[0] = "not an int"
	if err := s.Validate(bad); err == nil {
		t.Error("type mismatch must fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	for i := 0; i < 20; i++ {
		in := testTuple(i)
		rec, err := s.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
		if out[0].(int64) != in[0].(int64) || out[1].(string) != in[1].(string) {
			t.Fatalf("scalar round trip failed: %v vs %v", out, in)
		}
		if out[3].(geom.Point) != in[3].(geom.Point) {
			t.Fatal("point round trip failed")
		}
		if out[4].(geom.Rect) != in[4].(geom.Rect) {
			t.Fatal("rect round trip failed")
		}
		pin, pout := in[5].(geom.Polygon), out[5].(geom.Polygon)
		if len(pin) != len(pout) {
			t.Fatal("polygon length changed")
		}
		for j := range pin {
			if pin[j] != pout[j] {
				t.Fatal("polygon vertex changed")
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	s := testSchema(t)
	rec, _ := s.Encode(testTuple(3))
	if _, err := s.Decode(rec[:len(rec)-1]); err == nil {
		t.Error("truncated record must fail")
	}
	if _, err := s.Decode(append(rec, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestEncodeRejectsInvalidTuple(t *testing.T) {
	s := testSchema(t)
	if _, err := s.Encode(Tuple{int64(1)}); err == nil {
		t.Fatal("encode must validate")
	}
}

func TestRelationInsertGet(t *testing.T) {
	pool := newPool(t)
	r, err := Create(pool, "objects", testSchema(t), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		id, err := r.Insert(testTuple(i))
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("tuple id = %d, want %d", id, i)
		}
	}
	if r.Len() != 40 {
		t.Fatalf("Len = %d", r.Len())
	}
	tup, err := r.Get(17)
	if err != nil {
		t.Fatal(err)
	}
	if tup[1].(string) != "object-17" {
		t.Fatalf("Get(17) name = %v", tup[1])
	}
	if _, err := r.Get(40); err == nil {
		t.Error("out-of-range Get must fail")
	}
	if _, err := r.Get(-1); err == nil {
		t.Error("negative Get must fail")
	}
}

func TestRelationSpatialAccessor(t *testing.T) {
	pool := newPool(t)
	r, _ := Create(pool, "objects", testSchema(t), 0.75)
	r.Insert(testTuple(5))
	sp, err := r.Spatial(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Bounds() != geom.NewRect(5, 5, 7, 7) {
		t.Fatalf("spatial bounds = %v", sp.Bounds())
	}
	if _, err := r.Spatial(0, 0); err == nil {
		t.Error("non-spatial column must fail")
	}
}

func TestCreateValidation(t *testing.T) {
	pool := newPool(t)
	if _, err := Create(pool, "", testSchema(t), 0.75); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := Create(pool, "x", Schema{}, 0.75); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := Create(pool, "x", testSchema(t), 0); err == nil {
		t.Error("bad fill factor must fail")
	}
}

func TestBulkLoadSequentialKeepsPageOrder(t *testing.T) {
	pool := newPool(t)
	tuples := make([]Tuple, 60)
	for i := range tuples {
		tuples[i] = testTuple(i)
	}
	r, err := BulkLoad(pool, "seq", testSchema(t), tuples, PlaceSequential, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Page numbers must be non-decreasing in tuple-id order.
	prev := -1
	for i := 0; i < r.Len(); i++ {
		pg, err := r.PageOf(i)
		if err != nil {
			t.Fatal(err)
		}
		if pg < prev {
			t.Fatalf("sequential placement broke page order at tuple %d: %d < %d", i, pg, prev)
		}
		prev = pg
	}
}

func TestBulkLoadShuffledScattersButPreservesIDs(t *testing.T) {
	pool := newPool(t)
	tuples := make([]Tuple, 120)
	for i := range tuples {
		tuples[i] = testTuple(i)
	}
	r, err := BulkLoad(pool, "shuf", testSchema(t), tuples, PlaceShuffled, 0.75, 42)
	if err != nil {
		t.Fatal(err)
	}
	// IDs must still resolve to the right tuples.
	for _, id := range []int{0, 17, 63, 119} {
		tup, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if tup[0].(int64) != int64(id) {
			t.Fatalf("tuple %d resolved to id %v", id, tup[0])
		}
	}
	// And the physical order must differ from logical order somewhere.
	inOrder := true
	prev := -1
	for i := 0; i < r.Len(); i++ {
		pg, _ := r.PageOf(i)
		if pg < prev {
			inOrder = false
			break
		}
		prev = pg
	}
	if inOrder {
		t.Fatal("shuffled placement left tuples in page order — not shuffled")
	}
}

func TestBulkLoadShuffleDeterministic(t *testing.T) {
	tuples := make([]Tuple, 50)
	for i := range tuples {
		tuples[i] = testTuple(i)
	}
	r1, _ := BulkLoad(newPool(t), "a", testSchema(t), tuples, PlaceShuffled, 0.75, 7)
	r2, _ := BulkLoad(newPool(t), "b", testSchema(t), tuples, PlaceShuffled, 0.75, 7)
	for i := 0; i < 50; i++ {
		p1, _ := r1.PageOf(i)
		p2, _ := r2.PageOf(i)
		if p1 != p2 {
			t.Fatalf("same seed produced different layouts at tuple %d", i)
		}
	}
}

func TestRelationScanVisitsAllOnce(t *testing.T) {
	pool := newPool(t)
	tuples := make([]Tuple, 70)
	for i := range tuples {
		tuples[i] = testTuple(i)
	}
	r, _ := BulkLoad(pool, "scan", testSchema(t), tuples, PlaceShuffled, 0.75, 3)
	seen := make(map[int]bool)
	err := r.Scan(func(id int, tup Tuple) (bool, error) {
		if seen[id] {
			t.Fatalf("tuple %d visited twice", id)
		}
		seen[id] = true
		if tup[0].(int64) != int64(id) {
			t.Fatalf("tuple %d decoded wrong id %v", id, tup[0])
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 70 {
		t.Fatalf("scan saw %d tuples, want 70", len(seen))
	}
}

func TestRelationScanEarlyStop(t *testing.T) {
	pool := newPool(t)
	tuples := make([]Tuple, 30)
	for i := range tuples {
		tuples[i] = testTuple(i)
	}
	r, _ := BulkLoad(pool, "stop", testSchema(t), tuples, PlaceSequential, 0.75, 0)
	count := 0
	r.Scan(func(int, Tuple) (bool, error) {
		count++
		return count < 5, nil
	})
	if count != 5 {
		t.Fatalf("scan visited %d, want 5", count)
	}
}

func TestRelationScanPropagatesError(t *testing.T) {
	pool := newPool(t)
	r, _ := Create(pool, "err", testSchema(t), 0.75)
	r.Insert(testTuple(0))
	wantErr := fmt.Errorf("boom")
	err := r.Scan(func(int, Tuple) (bool, error) { return false, wantErr })
	if err == nil || err.Error() != "boom" {
		t.Fatalf("scan error = %v", err)
	}
}

// TestPaperTupleDensity checks that the Table 3 parameters (s=2000, v=300,
// l=0.75) yield the paper's m=5 tuples per page for a fixed-size record.
func TestPaperTupleDensity(t *testing.T) {
	pool := newPool(t)
	s, _ := NewSchema(Column{"mbr", TypeRect}, Column{"pad", TypeString})
	// Record of ~290 bytes + 4-byte slot ≈ the paper's v=300 tuple; the
	// page budget is l·(s−header) = 1497 bytes, so 5 tuples fit and 6 don't.
	pad := make([]byte, 290-32-4)
	tuples := make([]Tuple, 200)
	for i := range tuples {
		tuples[i] = Tuple{geom.NewRect(0, 0, 1, 1), string(pad)}
	}
	r, err := BulkLoad(pool, "dense", s, tuples, PlaceSequential, 0.75, 0)
	if err != nil {
		t.Fatal(err)
	}
	perPage := float64(r.Len()) / float64(r.NumPages())
	if perPage < 4.4 || perPage > 5.1 {
		t.Fatalf("tuples/page = %g, want ≈5 (paper's m)", perPage)
	}
}

func TestRelationAccessors(t *testing.T) {
	pool := newPool(t)
	sch := testSchema(t)
	r, _ := Create(pool, "objects", sch, 0.75)
	if r.Name() != "objects" {
		t.Fatalf("Name = %q", r.Name())
	}
	if len(r.Schema().Columns) != len(sch.Columns) {
		t.Fatal("Schema accessor broken")
	}
	if _, err := r.RID(0); err == nil {
		t.Fatal("RID of empty relation must fail")
	}
	r.Insert(testTuple(0))
	rid, err := r.RID(0)
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page.Page != 0 {
		t.Fatalf("first tuple on page %d", rid.Page.Page)
	}
}
