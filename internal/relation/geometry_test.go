package relation

import (
	"testing"

	"spatialjoin/internal/geom"
)

func geomSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(
		Column{"name", TypeString},
		Column{"shape", TypeGeometry},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeometryTypeIsSpatial(t *testing.T) {
	if !TypeGeometry.Spatial() {
		t.Fatal("TypeGeometry must be spatial")
	}
	if TypeGeometry.String() != "geometry" {
		t.Fatalf("name = %q", TypeGeometry.String())
	}
	s := geomSchema(t)
	if i, ok := s.SpatialColumn(); !ok || i != 1 {
		t.Fatalf("SpatialColumn = %d, %t", i, ok)
	}
}

func TestGeometryRoundTripAllKinds(t *testing.T) {
	s := geomSchema(t)
	shapes := []geom.Spatial{
		geom.Pt(3, 4),
		geom.NewRect(0, 1, 2, 3),
		geom.RegularPolygon(geom.Pt(5, 5), 2, 7),
		geom.Segment{A: geom.Pt(0, 0), B: geom.Pt(9, 9)},
	}
	for i, shape := range shapes {
		rec, err := s.Encode(Tuple{"obj", shape})
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		out, err := s.Decode(rec)
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		got, err := s.SpatialValue(out, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.Bounds() != shape.Bounds() {
			t.Fatalf("shape %d: bounds %v != %v", i, got.Bounds(), shape.Bounds())
		}
		// Concrete type must survive.
		switch shape.(type) {
		case geom.Point:
			if _, ok := got.(geom.Point); !ok {
				t.Fatalf("shape %d: type lost, got %T", i, got)
			}
		case geom.Rect:
			if _, ok := got.(geom.Rect); !ok {
				t.Fatalf("shape %d: type lost, got %T", i, got)
			}
		case geom.Polygon:
			if _, ok := got.(geom.Polygon); !ok {
				t.Fatalf("shape %d: type lost, got %T", i, got)
			}
		case geom.Segment:
			if _, ok := got.(geom.Segment); !ok {
				t.Fatalf("shape %d: type lost, got %T", i, got)
			}
		}
	}
}

func TestGeometryValidateRejectsNonSpatial(t *testing.T) {
	s := geomSchema(t)
	if err := s.Validate(Tuple{"x", "not a shape"}); err == nil {
		t.Fatal("string in geometry column must fail")
	}
}

func TestGeometryDecodeErrors(t *testing.T) {
	s := geomSchema(t)
	rec, _ := s.Encode(Tuple{"x", geom.RegularPolygon(geom.Pt(0, 0), 1, 5)})
	for cut := 1; cut < 20; cut += 4 {
		if _, err := s.Decode(rec[:len(rec)-cut]); err == nil {
			t.Fatalf("truncation by %d must fail", cut)
		}
	}
	// Corrupt the geometry tag (first byte after the string).
	bad := append([]byte(nil), rec...)
	bad[4+1] = 99
	if _, err := s.Decode(bad); err == nil {
		t.Fatal("unknown geometry tag must fail")
	}
}

func TestGeometryUnknownSpatialDegradesToMBR(t *testing.T) {
	buf := appendGeometry(nil, customSpatial{})
	v, n, err := decodeGeometry(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v, %d of %d", err, n, len(buf))
	}
	if v.Bounds() != geom.NewRect(1, 2, 3, 4) {
		t.Fatalf("MBR fallback = %v", v.Bounds())
	}
}

type customSpatial struct{}

func (customSpatial) Bounds() geom.Rect { return geom.NewRect(1, 2, 3, 4) }
