// Package relation provides the minimal extended-relational layer the paper
// assumes (§1: "a relational data model that is extended by spatial data
// types and operators", in the spirit of POSTGRES/DASDBS): schemas whose
// columns may hold spatial values, tuples encoded into slotted pages, and
// relations backed by the simulated disk of internal/storage.
package relation

import (
	"fmt"

	"spatialjoin/internal/geom"
)

// Type enumerates the column types the layer supports.
type Type uint8

// Supported column types. The spatial types carry geom values.
const (
	TypeInt64 Type = iota + 1
	TypeFloat64
	TypeString
	TypePoint
	TypeRect
	TypePolygon
	// TypeGeometry stores any geom.Spatial value (point, rect, polygon or
	// segment) with a per-value type tag, for relations whose objects mix
	// shapes — e.g. a cartographic layer of point cities and polygon lakes.
	TypeGeometry
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeString:
		return "string"
	case TypePoint:
		return "point"
	case TypeRect:
		return "rect"
	case TypePolygon:
		return "polygon"
	case TypeGeometry:
		return "geometry"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Spatial reports whether the type holds a spatial value.
func (t Type) Spatial() bool {
	return t == TypePoint || t == TypeRect || t == TypePolygon || t == TypeGeometry
}

// Column is one attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema describes the attributes of a relation.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from (name, type) pairs and validates it:
// non-empty, unique names, known types.
func NewSchema(cols ...Column) (Schema, error) {
	if len(cols) == 0 {
		return Schema{}, fmt.Errorf("relation: schema needs at least one column")
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return Schema{}, fmt.Errorf("relation: empty column name")
		}
		if seen[c.Name] {
			return Schema{}, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		if c.Type < TypeInt64 || c.Type > TypeGeometry {
			return Schema{}, fmt.Errorf("relation: column %q has unknown type %d", c.Name, c.Type)
		}
	}
	return Schema{Columns: cols}, nil
}

// ColumnIndex returns the position of the named column.
func (s Schema) ColumnIndex(name string) (int, bool) {
	for i, c := range s.Columns {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// SpatialColumn returns the index of the first spatial column, which most
// single-index relations use as their indexed attribute.
func (s Schema) SpatialColumn() (int, bool) {
	for i, c := range s.Columns {
		if c.Type.Spatial() {
			return i, true
		}
	}
	return 0, false
}

// Tuple is one row; values align positionally with the schema's columns.
// Value kinds by column type: int64, float64, string, geom.Point, geom.Rect,
// geom.Polygon.
type Tuple []any

// Validate checks t against the schema.
func (s Schema) Validate(t Tuple) error {
	if len(t) != len(s.Columns) {
		return fmt.Errorf("relation: tuple has %d values, schema has %d columns", len(t), len(s.Columns))
	}
	for i, c := range s.Columns {
		ok := false
		switch c.Type {
		case TypeInt64:
			_, ok = t[i].(int64)
		case TypeFloat64:
			_, ok = t[i].(float64)
		case TypeString:
			_, ok = t[i].(string)
		case TypePoint:
			_, ok = t[i].(geom.Point)
		case TypeRect:
			_, ok = t[i].(geom.Rect)
		case TypePolygon:
			_, ok = t[i].(geom.Polygon)
		case TypeGeometry:
			switch t[i].(type) {
			case geom.Point, geom.Rect, geom.Polygon, geom.Segment:
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("relation: column %q wants %s, got %T", c.Name, c.Type, t[i])
		}
	}
	return nil
}

// SpatialValue returns the value of column col as a geom.Spatial.
func (s Schema) SpatialValue(t Tuple, col int) (geom.Spatial, error) {
	if col < 0 || col >= len(s.Columns) {
		return nil, fmt.Errorf("relation: column %d out of range", col)
	}
	if !s.Columns[col].Type.Spatial() {
		return nil, fmt.Errorf("relation: column %q is not spatial", s.Columns[col].Name)
	}
	sp, ok := t[col].(geom.Spatial)
	if !ok {
		return nil, fmt.Errorf("relation: column %q holds %T, not a spatial value", s.Columns[col].Name, t[col])
	}
	return sp, nil
}
