package relation

import (
	"fmt"
	"math/rand"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/storage"
)

// Placement controls how tuples are laid out on pages when a relation is
// bulk-loaded. The paper's strategy IIb clusters tuples on the spatial
// attribute in breadth-first tree order; strategy IIa assumes no clustering
// at all (tuples randomly distributed in the file).
type Placement uint8

const (
	// PlaceSequential stores tuples in the order supplied by the caller.
	// Handing tuples over in BFS order of their generalization tree yields
	// the paper's clustered layout (IIb).
	PlaceSequential Placement = iota
	// PlaceShuffled stores tuples in a deterministic random permutation,
	// the paper's unclustered layout (IIa).
	PlaceShuffled
)

// Relation is a named collection of tuples with a fixed schema, stored in a
// heap file on the simulated disk. Tuples are addressed by a dense index
// 0..Len()-1 assigned at insert time; the physical position of a tuple is
// whatever the placement policy chose, so logical order and page order can
// differ (that difference is exactly what the IIa/IIb comparison measures).
type Relation struct {
	name   string
	schema Schema
	heap   *storage.HeapFile
	rids   []storage.RID
}

// Create makes an empty relation backed by a fresh heap file. fillFactor is
// the average page utilization l of the cost model.
func Create(pool *storage.BufferPool, name string, schema Schema, fillFactor float64) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("relation: schema has no columns")
	}
	h, err := storage.NewHeapFile(pool, fillFactor)
	if err != nil {
		return nil, err
	}
	return &Relation{name: name, schema: schema, heap: h}, nil
}

// BulkLoad creates a relation and loads tuples with the given placement.
// With PlaceShuffled, seed makes the permutation reproducible. The returned
// relation's tuple IDs are positions in the *input* slice regardless of
// placement.
func BulkLoad(pool *storage.BufferPool, name string, schema Schema,
	tuples []Tuple, placement Placement, fillFactor float64, seed int64) (*Relation, error) {

	r, err := Create(pool, name, schema, fillFactor)
	if err != nil {
		return nil, err
	}
	order := make([]int, len(tuples))
	for i := range order {
		order[i] = i
	}
	if placement == PlaceShuffled {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	r.rids = make([]storage.RID, len(tuples))
	for _, idx := range order {
		rec, err := schema.Encode(tuples[idx])
		if err != nil {
			return nil, fmt.Errorf("relation: encoding tuple %d: %w", idx, err)
		}
		rid, err := r.heap.Append(rec)
		if err != nil {
			return nil, fmt.Errorf("relation: loading tuple %d: %w", idx, err)
		}
		r.rids[idx] = rid
	}
	return r, nil
}

// Open reattaches to a relation's existing heap file after a restart,
// reassigning tuple IDs in physical scan order. For relations grown by
// sequential Insert — the database's collections — physical order equals
// the original insertion order, so IDs are stable across restarts.
func Open(pool *storage.BufferPool, name string, schema Schema,
	file storage.FileID, fillFactor float64) (*Relation, error) {

	h, err := storage.OpenHeapFile(pool, file, fillFactor)
	if err != nil {
		return nil, err
	}
	r := &Relation{name: name, schema: schema, heap: h}
	if err := h.Scan(func(rid storage.RID, _ []byte) bool {
		r.rids = append(r.rids, rid)
		return true
	}); err != nil {
		return nil, err
	}
	return r, nil
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// FileID returns the id of the heap file backing the relation.
func (r *Relation) FileID() storage.FileID { return r.heap.File() }

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rids) }

// NumPages returns the number of disk pages the relation occupies.
func (r *Relation) NumPages() int { return r.heap.NumPages() }

// Insert appends a tuple and returns its tuple ID.
func (r *Relation) Insert(t Tuple) (int, error) {
	rec, err := r.schema.Encode(t)
	if err != nil {
		return 0, err
	}
	rid, err := r.heap.Append(rec)
	if err != nil {
		return 0, err
	}
	r.rids = append(r.rids, rid)
	return len(r.rids) - 1, nil
}

// Get fetches the tuple with the given ID, touching its page through the
// buffer pool.
func (r *Relation) Get(id int) (Tuple, error) {
	if id < 0 || id >= len(r.rids) {
		return nil, fmt.Errorf("relation %s: tuple id %d out of range [0,%d)", r.name, id, len(r.rids))
	}
	rec, err := r.heap.Get(r.rids[id])
	if err != nil {
		return nil, err
	}
	return r.schema.Decode(rec)
}

// RID returns the physical record id of the tuple, letting callers reason
// about page co-location.
func (r *Relation) RID(id int) (storage.RID, error) {
	if id < 0 || id >= len(r.rids) {
		return storage.RID{}, fmt.Errorf("relation %s: tuple id %d out of range", r.name, id)
	}
	return r.rids[id], nil
}

// PageOf returns the page number holding the tuple.
func (r *Relation) PageOf(id int) (int, error) {
	rid, err := r.RID(id)
	if err != nil {
		return 0, err
	}
	return int(rid.Page.Page), nil
}

// Spatial returns the spatial value of the given column of the tuple.
func (r *Relation) Spatial(id, col int) (geom.Spatial, error) {
	t, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	return r.schema.SpatialValue(t, col)
}

// Scan calls f for every tuple in *physical* page order — the access
// pattern of a relation scan. f receives the tuple ID and the decoded
// tuple; returning false stops the scan.
func (r *Relation) Scan(f func(id int, t Tuple) (bool, error)) error {
	// Invert the rid table so physical order can report logical IDs.
	byRID := make(map[storage.RID]int, len(r.rids))
	for id, rid := range r.rids {
		byRID[rid] = id
	}
	var stop bool
	var ferr error
	err := r.heap.Scan(func(rid storage.RID, rec []byte) bool {
		id, ok := byRID[rid]
		if !ok {
			ferr = fmt.Errorf("relation %s: orphan record %v", r.name, rid)
			return false
		}
		t, err := r.schema.Decode(rec)
		if err != nil {
			ferr = err
			return false
		}
		cont, err := f(id, t)
		if err != nil {
			ferr = err
			return false
		}
		stop = !cont
		return cont
	})
	if err != nil {
		return err
	}
	_ = stop
	return ferr
}
