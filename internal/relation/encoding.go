package relation

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatialjoin/internal/geom"
)

// Encode serializes t (which must validate against s) into a compact binary
// record. The layout is positional per the schema, so no per-value type tags
// are needed; variable-length values are length-prefixed with uint32.
func (s Schema) Encode(t Tuple) ([]byte, error) {
	if err := s.Validate(t); err != nil {
		return nil, err
	}
	var buf []byte
	for i, c := range s.Columns {
		switch c.Type {
		case TypeInt64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t[i].(int64)))
		case TypeFloat64:
			buf = appendFloat(buf, t[i].(float64))
		case TypeString:
			v := t[i].(string)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
			buf = append(buf, v...)
		case TypePoint:
			p := t[i].(geom.Point)
			buf = appendFloat(buf, p.X)
			buf = appendFloat(buf, p.Y)
		case TypeRect:
			r := t[i].(geom.Rect)
			buf = appendFloat(buf, r.MinX)
			buf = appendFloat(buf, r.MinY)
			buf = appendFloat(buf, r.MaxX)
			buf = appendFloat(buf, r.MaxY)
		case TypePolygon:
			buf = appendPolygon(buf, t[i].(geom.Polygon))
		case TypeGeometry:
			buf = appendGeometry(buf, t[i].(geom.Spatial))
		}
	}
	return buf, nil
}

// Geometry tags for TypeGeometry values.
const (
	geomTagPoint   = 1
	geomTagRect    = 2
	geomTagPolygon = 3
	geomTagSegment = 4
)

func appendPolygon(buf []byte, pg geom.Polygon) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pg)))
	for _, p := range pg {
		buf = appendFloat(buf, p.X)
		buf = appendFloat(buf, p.Y)
	}
	return buf
}

func appendGeometry(buf []byte, s geom.Spatial) []byte {
	switch v := s.(type) {
	case geom.Point:
		buf = append(buf, geomTagPoint)
		buf = appendFloat(buf, v.X)
		return appendFloat(buf, v.Y)
	case geom.Rect:
		buf = append(buf, geomTagRect)
		buf = appendFloat(buf, v.MinX)
		buf = appendFloat(buf, v.MinY)
		buf = appendFloat(buf, v.MaxX)
		return appendFloat(buf, v.MaxY)
	case geom.Polygon:
		buf = append(buf, geomTagPolygon)
		return appendPolygon(buf, v)
	case geom.Segment:
		buf = append(buf, geomTagSegment)
		buf = appendFloat(buf, v.A.X)
		buf = appendFloat(buf, v.A.Y)
		buf = appendFloat(buf, v.B.X)
		return appendFloat(buf, v.B.Y)
	default:
		// Validate guarantees one of the cases above; keep Encode total by
		// degrading unknown implementations to their MBR.
		buf = append(buf, geomTagRect)
		r := s.Bounds()
		buf = appendFloat(buf, r.MinX)
		buf = appendFloat(buf, r.MinY)
		buf = appendFloat(buf, r.MaxX)
		return appendFloat(buf, r.MaxY)
	}
}

// Decode deserializes a record produced by Encode.
func (s Schema) Decode(rec []byte) (Tuple, error) {
	t := make(Tuple, len(s.Columns))
	off := 0
	need := func(n int) error {
		if off+n > len(rec) {
			return fmt.Errorf("relation: truncated record (need %d bytes at offset %d of %d)", n, off, len(rec))
		}
		return nil
	}
	for i, c := range s.Columns {
		switch c.Type {
		case TypeInt64:
			if err := need(8); err != nil {
				return nil, err
			}
			t[i] = int64(binary.LittleEndian.Uint64(rec[off:]))
			off += 8
		case TypeFloat64:
			if err := need(8); err != nil {
				return nil, err
			}
			t[i] = readFloat(rec[off:])
			off += 8
		case TypeString:
			if err := need(4); err != nil {
				return nil, err
			}
			n := int(binary.LittleEndian.Uint32(rec[off:]))
			off += 4
			if err := need(n); err != nil {
				return nil, err
			}
			t[i] = string(rec[off : off+n])
			off += n
		case TypePoint:
			if err := need(16); err != nil {
				return nil, err
			}
			t[i] = geom.Point{X: readFloat(rec[off:]), Y: readFloat(rec[off+8:])}
			off += 16
		case TypeRect:
			if err := need(32); err != nil {
				return nil, err
			}
			t[i] = geom.Rect{
				MinX: readFloat(rec[off:]),
				MinY: readFloat(rec[off+8:]),
				MaxX: readFloat(rec[off+16:]),
				MaxY: readFloat(rec[off+24:]),
			}
			off += 32
		case TypePolygon:
			pg, n, err := decodePolygon(rec[off:])
			if err != nil {
				return nil, err
			}
			t[i] = pg
			off += n
		case TypeGeometry:
			v, n, err := decodeGeometry(rec[off:])
			if err != nil {
				return nil, err
			}
			t[i] = v
			off += n
		}
	}
	if off != len(rec) {
		return nil, fmt.Errorf("relation: %d trailing bytes after decoding", len(rec)-off)
	}
	return t, nil
}

// decodePolygon reads a length-prefixed polygon, returning it and the bytes
// consumed.
func decodePolygon(rec []byte) (geom.Polygon, int, error) {
	if len(rec) < 4 {
		return nil, 0, fmt.Errorf("relation: truncated polygon header")
	}
	n := int(binary.LittleEndian.Uint32(rec))
	off := 4
	if len(rec) < off+16*n {
		return nil, 0, fmt.Errorf("relation: truncated polygon body (%d vertices)", n)
	}
	pg := make(geom.Polygon, n)
	for j := 0; j < n; j++ {
		pg[j] = geom.Point{X: readFloat(rec[off:]), Y: readFloat(rec[off+8:])}
		off += 16
	}
	return pg, off, nil
}

// decodeGeometry reads a tagged geometry value, returning it and the bytes
// consumed.
func decodeGeometry(rec []byte) (geom.Spatial, int, error) {
	if len(rec) < 1 {
		return nil, 0, fmt.Errorf("relation: truncated geometry tag")
	}
	tag := rec[0]
	body := rec[1:]
	switch tag {
	case geomTagPoint:
		if len(body) < 16 {
			return nil, 0, fmt.Errorf("relation: truncated point")
		}
		return geom.Point{X: readFloat(body), Y: readFloat(body[8:])}, 17, nil
	case geomTagRect:
		if len(body) < 32 {
			return nil, 0, fmt.Errorf("relation: truncated rect")
		}
		return geom.Rect{
			MinX: readFloat(body), MinY: readFloat(body[8:]),
			MaxX: readFloat(body[16:]), MaxY: readFloat(body[24:]),
		}, 33, nil
	case geomTagPolygon:
		pg, n, err := decodePolygon(body)
		if err != nil {
			return nil, 0, err
		}
		return pg, 1 + n, nil
	case geomTagSegment:
		if len(body) < 32 {
			return nil, 0, fmt.Errorf("relation: truncated segment")
		}
		return geom.Segment{
			A: geom.Point{X: readFloat(body), Y: readFloat(body[8:])},
			B: geom.Point{X: readFloat(body[16:]), Y: readFloat(body[24:])},
		}, 33, nil
	default:
		return nil, 0, fmt.Errorf("relation: unknown geometry tag %d", tag)
	}
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func readFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// EncodeGeometry appends the canonical tagged encoding of s — the same
// bytes a TypeGeometry column stores inside heap tuples. Persisted index
// files reuse it so a recovered R-tree can be reloaded from the exact
// shapes that were indexed, not a lossy MBR summary.
func EncodeGeometry(buf []byte, s geom.Spatial) []byte {
	return appendGeometry(buf, s)
}

// DecodeGeometry reads one tagged geometry value produced by
// EncodeGeometry, returning it and the bytes consumed.
func DecodeGeometry(rec []byte) (geom.Spatial, int, error) {
	return decodeGeometry(rec)
}
