package server_test

// Wire-level equivalence harness (the network counterpart of the root
// package's cross-strategy harness): N concurrent clients, each
// pipelining M JOIN and SELECT requests over one loopback connection,
// must every time receive the byte-identical canonical answer the
// in-process API returns — at worker counts 1 and 4, across all three
// strategies, with result streaming forced through multiple frames.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"spatialjoin"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/server"
	"spatialjoin/internal/wire"
)

func TestWireEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db, r, s := newServerDB(t, true, func(c *spatialjoin.Config) {
				c.Workers = workers
			})

			// In-process ground truth, canonical (R, S)-sorted.
			wantJoin, _, err := db.Join(r, s, spatialjoin.Overlaps(), spatialjoin.ScanStrategy)
			if err != nil {
				t.Fatal(err)
			}
			if len(wantJoin) == 0 {
				t.Fatal("workload produced no matches")
			}
			probe := geom.NewRect(100, 100, 450, 450)
			wantSel, _, err := db.Select(s, probe, spatialjoin.Overlaps(), spatialjoin.TreeStrategy)
			if err != nil {
				t.Fatal(err)
			}
			if len(wantSel) == 0 {
				t.Fatal("probe selected nothing")
			}

			reg := obs.NewRegistry()
			// BatchSize far below the result count forces every response
			// through multiple streamed frames. AdmitWait is generous: this
			// harness asserts equivalence, not shedding, so bursts beyond
			// MaxQueries must queue briefly instead of being refused.
			_, addr := startServer(t, db, server.Options{
				Metrics:   reg,
				BatchSize: 7,
				AdmitWait: 30 * time.Second,
			})

			strategies := []uint8{wire.StrategyScan, wire.StrategyTree, wire.StrategyIndex}
			const clients, perClient = 4, 8
			ctx := context.Background()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				cli := dialClient(t, addr)
				for q := 0; q < perClient; q++ {
					wg.Add(1)
					go func(c, q int, cli *wire.Client) {
						defer wg.Done()
						label := fmt.Sprintf("client %d query %d", c, q)
						if q%2 == 0 {
							res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), strategies[q%len(strategies)])
							if err != nil {
								t.Errorf("%s: %v", label, err)
								return
							}
							if res.Status != wire.StatusOK {
								t.Errorf("%s: status %s", label, res.Status)
								return
							}
							assertSameMatches(t, label, res.Matches, wantJoin)
						} else {
							res, err := cli.Select(ctx, "s", probe, wire.Overlaps(), wire.StrategyTree)
							if err != nil {
								t.Errorf("%s: %v", label, err)
								return
							}
							if res.Status != wire.StatusOK {
								t.Errorf("%s: status %s", label, res.Status)
								return
							}
							assertSameIDs(t, label, res.IDs, wantSel)
						}
					}(c, q, cli)
				}
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Exact outcome accounting: every query finished OK, nothing
			// was shed, and the latency histogram saw each one.
			total := int64(clients * perClient)
			joins := queriesTotal(reg, "join", wire.StatusOK)
			sels := queriesTotal(reg, "select", wire.StatusOK)
			if joins+sels != total {
				t.Errorf("queries_total ok: %d joins + %d selects, want %d", joins, sels, total)
			}
			if shed := reg.Counter("spatialjoin_server_queries_shed_total", "").Value(); shed != 0 {
				t.Errorf("queries_shed_total = %d, want 0", shed)
			}
			if n := reg.Histogram("spatialjoin_server_query_seconds", "", nil).Count(); n != total {
				t.Errorf("latency histogram count = %d, want %d", n, total)
			}
			if got := reg.Counter("spatialjoin_server_connections_total", "").Value(); got != clients {
				t.Errorf("connections_total = %d, want %d", got, clients)
			}
			if q := reg.Gauge("spatialjoin_server_active_queries", "").Value(); q != 0 {
				t.Errorf("active_queries settled at %d, want 0", q)
			}
		})
	}
}

// TestWirePipelinedOrderIndependence issues interleaved fast pings and
// slow joins on one connection and asserts every response is correlated
// to its request: the ping issued after a join must not be blocked by or
// confused with the join's streamed frames.
func TestWirePipelinedOrderIndependence(t *testing.T) {
	db, r, s := newServerDB(t, false, nil)
	wantJoin, _, err := db.Join(r, s, spatialjoin.Overlaps(), spatialjoin.ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, db, server.Options{BatchSize: 3, AdmitWait: 30 * time.Second})
	cli := dialClient(t, addr)
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyScan)
				if err != nil {
					t.Errorf("join %d: %v", i, err)
					return
				}
				if res.Status != wire.StatusOK {
					t.Errorf("join %d: status %s", i, res.Status)
					return
				}
				assertSameMatches(t, fmt.Sprintf("join %d", i), res.Matches, wantJoin)
			} else if err := cli.Ping(ctx); err != nil {
				t.Errorf("ping %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}
