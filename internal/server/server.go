// Package server is the network serving layer of the spatial query engine:
// a connection-handling server speaking the internal/wire framed protocol,
// with per-session contexts, pipelined query execution, graceful shutdown,
// and admission control that sheds load with typed SERVER_BUSY verdicts
// instead of queueing unboundedly.
//
// The server executes read-only queries (SELECT and JOIN) against one
// *spatialjoin.Database, whose read paths are safe for concurrent use; the
// dataset is loaded before Serve starts. Backpressure derives from the
// engine's existing hooks: Config.QueryTimeout bounds every query and
// surfaces as a TIMEOUT status, degradation (Stats.Downgrades) surfaces as
// DEGRADED with exact results, and the admission semaphore bounds
// concurrent engine work. Every accept/active/shed/latency figure is
// registered in the obs registry under the spatialjoin_server_* families.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spatialjoin"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/wal"
	"spatialjoin/internal/wire"
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("server: closed")

// Options configures the server's admission control and streaming.
type Options struct {
	// MaxConns bounds concurrent sessions. A connection beyond the bound
	// receives one Done frame (request ID 0, SERVER_BUSY, FlagShed) and is
	// closed. 0 means DefaultMaxConns.
	MaxConns int
	// MaxQueries bounds concurrently executing queries across all
	// sessions — the admission semaphore in front of the engine. A query
	// that cannot take a slot within AdmitWait is shed with SERVER_BUSY.
	// 0 means 4 × GOMAXPROCS.
	MaxQueries int
	// AdmitWait is how long an arriving query may wait for an admission
	// slot before being shed. 0 sheds immediately — the strictest, most
	// predictable policy, and the default.
	AdmitWait time.Duration
	// BatchSize is the number of results streamed per frame. 0 means
	// DefaultBatchSize.
	BatchSize int
	// Metrics, when non-nil, registers the server's counter families.
	// All instruments are nil-safe, so a nil registry costs only the
	// no-op calls.
	Metrics *obs.Registry
	// Repl, when non-nil, serves replication streams: REPL_TAIL and
	// SNAP_DELTA frames dispatch to it. A server without one answers those
	// frames with BAD_REQUEST.
	Repl ReplStreamer
	// DB, when non-nil, resolves the database for each query, with a
	// release the server invokes when the query finishes — a replica
	// server acquires its follower's current database this way, and a
	// *wire.StatusError from the resolver (STALE, for a replica beyond its
	// lag policy) becomes the query's typed verdict. Nil means every query
	// runs against the fixed database passed to New.
	DB func() (*spatialjoin.Database, func(), error)
}

// ReplStreamer is the primary-side replication source a server can front
// (repl.Source implements it). StreamTail ships WAL chunks from a record
// boundary until the context or connection ends; StreamSnap ships one
// snapshot or delta stream to completion and reports whether it was full.
type ReplStreamer interface {
	StreamTail(ctx context.Context, from wal.LSN, send func(wire.WALChunk) error) error
	StreamSnap(ctx context.Context, since wal.LSN, send func(wire.SnapChunk) error) (bool, error)
}

// Defaults for Options zero values.
const (
	DefaultMaxConns  = 256
	DefaultBatchSize = 512
)

// metrics holds the server's obs instruments; every field is nil-safe.
type metrics struct {
	accepted    *obs.Counter
	connShed    *obs.Counter
	activeConns *obs.Gauge
	activeQ     *obs.Gauge
	framesIn    *obs.Counter
	framesOut   *obs.Counter
	shed        *obs.Counter
	latency     *obs.Histogram
	replTails   *obs.Counter
	replSnaps   *obs.Counter
	reg         *obs.Registry
}

// serverLatencyBuckets bound the spatialjoin_server_query_seconds
// histogram: sub-millisecond warm selects through multi-second degraded
// scans.
var serverLatencyBuckets = []float64{
	1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 30,
}

// newMetrics registers the server families. The registry is get-or-create
// keyed by name, so tests can read the same counters back.
func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg: reg,
		accepted: reg.Counter("spatialjoin_server_connections_total",
			"Connections accepted, including ones shed at the connection limit."),
		connShed: reg.Counter("spatialjoin_server_connections_shed_total",
			"Connections rejected with SERVER_BUSY at the connection limit."),
		activeConns: reg.Gauge("spatialjoin_server_active_connections",
			"Sessions currently open."),
		activeQ: reg.Gauge("spatialjoin_server_active_queries",
			"Queries currently holding an admission slot."),
		framesIn: reg.Counter("spatialjoin_server_frames_read_total",
			"Protocol frames read from clients."),
		framesOut: reg.Counter("spatialjoin_server_frames_written_total",
			"Protocol frames written to clients."),
		shed: reg.Counter("spatialjoin_server_queries_shed_total",
			"Queries shed by admission control or during drain, without touching the engine."),
		latency: reg.Histogram("spatialjoin_server_query_seconds",
			"Admitted query wall time in seconds, accept-to-Done.", serverLatencyBuckets),
		replTails: reg.Counter("spatialjoin_server_repl_tail_streams_total",
			"WAL tail streams opened by replicas."),
		replSnaps: reg.Counter("spatialjoin_server_repl_snapshot_streams_total",
			"Snapshot and delta streams opened by replicas."),
	}
}

// queryOutcome feeds the per-outcome query counter.
func (m *metrics) queryOutcome(kind string, status wire.Status) {
	m.reg.Counter("spatialjoin_server_queries_total",
		"Queries finished, by kind and typed status.",
		obs.L("kind", kind), obs.L("status", status.Label())).Inc()
}

// Server serves the wire protocol over one database.
type Server struct {
	db   *spatialjoin.Database
	opts Options
	m    *metrics

	baseCtx context.Context
	cancel  context.CancelFunc

	admit chan struct{} // admission semaphore: one token per running query

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	sessions  map[*session]struct{}
	draining  atomic.Bool

	sessionWG sync.WaitGroup // one per live session loop

	// qmu guards the in-flight query count; queryBegin refuses once
	// draining is set, so after Shutdown samples a zero count no new query
	// can slip in (both sides hold qmu for the check-and-update).
	qmu      sync.Mutex
	inflight int
	idle     chan struct{} // closed when inflight drains to 0 during shutdown
}

// queryBegin records an admitted query; it refuses (and the caller sheds
// with SHUTTING_DOWN) once the server is draining.
func (s *Server) queryBegin() bool {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight++
	return true
}

// queryEnd retires an in-flight query and signals a draining Shutdown when
// the last one finishes.
func (s *Server) queryEnd() {
	s.qmu.Lock()
	s.inflight--
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.qmu.Unlock()
}

// New builds a server over db. The database's read paths must stay
// read-only for the server's lifetime (no concurrent Inserts). db may be
// nil when Options.DB resolves the database per query instead (a replica
// server fronting a Follower).
func New(db *spatialjoin.Database, opts Options) *Server {
	if opts.MaxConns <= 0 {
		opts.MaxConns = DefaultMaxConns
	}
	if opts.MaxQueries <= 0 {
		opts.MaxQueries = 4 * runtime.GOMAXPROCS(0)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.BatchSize > wire.MaxMatchesPerFrame {
		opts.BatchSize = wire.MaxMatchesPerFrame
	}
	if opts.DB == nil {
		fixed := db
		opts.DB = func() (*spatialjoin.Database, func(), error) {
			return fixed, func() {}, nil
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:        db,
		opts:      opts,
		m:         newMetrics(opts.Metrics),
		baseCtx:   ctx,
		cancel:    cancel,
		admit:     make(chan struct{}, opts.MaxQueries),
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[*session]struct{}),
	}
}

// Serve accepts connections on ln until Shutdown. It returns
// ErrServerClosed after a shutdown, or the first fatal Accept error.
// Multiple Serve calls on different listeners are allowed.
func (s *Server) Serve(ln net.Listener) error {
	if s.draining.Load() {
		return ErrServerClosed
	}
	s.mu.Lock()
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		s.m.accepted.Inc()
		s.mu.Lock()
		drain := s.draining.Load()
		over := !drain && len(s.sessions) >= s.opts.MaxConns
		var ss *session
		if !drain && !over {
			ss = newSession(s, conn)
			s.sessions[ss] = struct{}{}
			s.sessionWG.Add(1)
		}
		s.mu.Unlock()
		if drain {
			s.refuse(conn, wire.StatusShuttingDown)
			continue
		}
		if over {
			s.m.connShed.Inc()
			s.refuse(conn, wire.StatusServerBusy)
			continue
		}
		s.m.activeConns.Add(1)
		go ss.run()
	}
}

// refuse sends a connection-level Done verdict (request ID 0) and closes.
func (s *Server) refuse(conn net.Conn, status wire.Status) {
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	err := wire.WriteFrame(conn, wire.Frame{
		Type:    wire.TypeDone,
		Flags:   wire.FlagShed,
		Payload: wire.EncodeDone(wire.Done{Status: status, Message: "connection refused: " + status.String()}),
	})
	if err == nil {
		s.m.framesOut.Inc()
	}
	_ = conn.Close()
}

// removeSession drops a finished session from the registry.
func (s *Server) removeSession(ss *session) {
	s.mu.Lock()
	delete(s.sessions, ss)
	s.mu.Unlock()
	s.m.activeConns.Add(-1)
	s.sessionWG.Done()
}

// Shutdown drains the server: listeners close, new connections and new
// queries are refused with SHUTTING_DOWN, in-flight queries run to
// completion and stream their results, then every session's connection is
// closed. If ctx expires first, in-flight queries are cancelled (their
// sessions answer SHUTTING_DOWN / TIMEOUT as the engine surfaces the
// cancellation) and connections are closed immediately; Shutdown still
// waits for the session loops to unwind before returning ctx's error, so
// no goroutine outlives it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for ln := range s.listeners {
		_ = ln.Close()
	}
	s.mu.Unlock()

	s.qmu.Lock()
	drained := make(chan struct{})
	if s.inflight == 0 {
		close(drained)
	} else {
		s.idle = drained
	}
	s.qmu.Unlock()

	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // abort in-flight engine work; sessions still answer
	}

	// In-flight work is done (or aborted): close every session's
	// connection to unblock its read loop, then wait for the loops —
	// each session loop waits for its own query goroutines first, so
	// nothing outlives Shutdown.
	s.mu.Lock()
	for ss := range s.sessions {
		_ = ss.conn.Close()
	}
	s.mu.Unlock()
	s.sessionWG.Wait()
	s.cancel()
	return err
}

// statusOf maps an engine verdict to the wire status.
func statusOf(stats spatialjoin.Stats, err error, draining bool) wire.Status {
	switch {
	case err == nil && stats.Downgrades > 0:
		return wire.StatusDegraded
	case err == nil:
		return wire.StatusOK
	case errors.Is(err, context.DeadlineExceeded):
		return wire.StatusTimeout
	case errors.Is(err, context.Canceled):
		if draining {
			return wire.StatusShuttingDown
		}
		return wire.StatusTimeout
	default:
		return wire.StatusInternal
	}
}

// wireStrategy maps the protocol strategy byte onto the engine's, or fails
// for an unknown code.
func wireStrategy(b uint8) (spatialjoin.Strategy, error) {
	switch b {
	case wire.StrategyTree:
		return spatialjoin.TreeStrategy, nil
	case wire.StrategyScan:
		return spatialjoin.ScanStrategy, nil
	case wire.StrategyIndex:
		return spatialjoin.IndexStrategy, nil
	default:
		return 0, fmt.Errorf("unknown strategy code %d", b)
	}
}

// wireStats projects the engine's measured work onto the wire shape.
func wireStats(s spatialjoin.Stats) wire.QueryStats {
	return wire.QueryStats{
		FilterEvals: s.FilterEvals,
		ExactEvals:  s.ExactEvals,
		PageReads:   s.PageReads,
		IndexReads:  s.IndexReads,
		Downgrades:  s.Downgrades,
	}
}
