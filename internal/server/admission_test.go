package server_test

// Admission control and load shedding: excess queries are refused with
// typed SERVER_BUSY verdicts and the shed flag, never queued unboundedly;
// excess connections are refused with a connection-level verdict; and
// every refusal is visible in the obs counters exactly once.

import (
	"context"
	"errors"
	"testing"
	"time"

	"spatialjoin"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/server"
	"spatialjoin/internal/wire"
)

func TestAdmissionControlShedsExcessQueries(t *testing.T) {
	db, r, s := newServerDB(t, false, func(c *spatialjoin.Config) {
		c.Workers = 1
		c.Fault = &fault.Options{Seed: 4600, ReadLatency: 10 * time.Millisecond}
	})
	want, _, err := db.Join(r, s, spatialjoin.Overlaps(), spatialjoin.ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, addr := startServer(t, db, server.Options{MaxQueries: 1, Metrics: reg})
	cli := dialClient(t, addr)
	ctx := context.Background()

	// Occupy the single admission slot with a slow cold join.
	type joinReply struct {
		res *wire.Result
		err error
	}
	slowCh := make(chan joinReply, 1)
	go func() {
		res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyTree)
		slowCh <- joinReply{res, err}
	}()
	activeQ := reg.Gauge("spatialjoin_server_active_queries", "")
	waitFor(t, "slow join admitted", func() bool { return activeQ.Value() == 1 })

	// Every query that arrives while the slot is held is shed, fast, with
	// the typed verdict — pipelined on the same connection, so the shed
	// responses also prove the session keeps reading while a query runs.
	const excess = 4
	for i := 0; i < excess; i++ {
		start := time.Now()
		res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyScan)
		if err != nil {
			t.Fatalf("excess query %d: %v", i, err)
		}
		if res.Status != wire.StatusServerBusy {
			t.Fatalf("excess query %d: status %s, want server_busy", i, res.Status)
		}
		if res.Flags&wire.FlagShed == 0 {
			t.Errorf("excess query %d: shed flag missing", i)
		}
		var se *wire.StatusError
		if err := res.Err(); !errors.As(err, &se) || se.Status != wire.StatusServerBusy {
			t.Errorf("excess query %d: Err() = %v, want *StatusError{server_busy}", i, err)
		}
		// Shedding must be immediate refusal, not queueing behind the
		// ~100ms slow join.
		if took := time.Since(start); took > 2*time.Second {
			t.Errorf("excess query %d: shed verdict took %v", i, took)
		}
	}

	// The admitted query is undisturbed by the shedding around it.
	reply := <-slowCh
	if reply.err != nil {
		t.Fatal(reply.err)
	}
	if reply.res.Status != wire.StatusOK {
		t.Fatalf("slow join: status %s (%s), want ok", reply.res.Status, reply.res.Message)
	}
	assertSameMatches(t, "slow join", reply.res.Matches, want)

	if got := reg.Counter("spatialjoin_server_queries_shed_total", "").Value(); got != excess {
		t.Errorf("queries_shed_total = %d, want %d", got, excess)
	}
	if got := queriesTotal(reg, "join", wire.StatusServerBusy); got != excess {
		t.Errorf("queries_total{join,server_busy} = %d, want %d", got, excess)
	}
	if got := queriesTotal(reg, "join", wire.StatusOK); got != 1 {
		t.Errorf("queries_total{join,ok} = %d, want 1", got)
	}
	// Shed queries never reach the engine, so only the admitted one is in
	// the latency histogram.
	if n := reg.Histogram("spatialjoin_server_query_seconds", "", nil).Count(); n != 1 {
		t.Errorf("latency histogram count = %d, want 1", n)
	}

	// With the slot free the same connection is served again (cache is
	// warm now, so this is fast).
	waitFor(t, "slot released", func() bool { return activeQ.Value() == 0 })
	res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyScan)
	if err != nil || res.Status != wire.StatusOK {
		t.Fatalf("join after slot freed: %v, %+v", err, res)
	}
	assertSameMatches(t, "join after shed storm", res.Matches, want)
}

// TestAdmitWaitRidesOutShortBursts sets a generous AdmitWait: a query
// arriving while the slot is briefly held must wait and then execute,
// not shed.
func TestAdmitWaitRidesOutShortBursts(t *testing.T) {
	db, r, s := newServerDB(t, false, func(c *spatialjoin.Config) {
		c.Workers = 1
		c.Fault = &fault.Options{Seed: 4700, ReadLatency: 5 * time.Millisecond}
	})
	want, _, err := db.Join(r, s, spatialjoin.Overlaps(), spatialjoin.ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, addr := startServer(t, db, server.Options{
		MaxQueries: 1,
		AdmitWait:  30 * time.Second,
		Metrics:    reg,
	})
	cli := dialClient(t, addr)
	ctx := context.Background()

	type joinReply struct {
		res *wire.Result
		err error
	}
	replies := make(chan joinReply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyScan)
			replies <- joinReply{res, err}
		}()
	}
	for i := 0; i < 2; i++ {
		reply := <-replies
		if reply.err != nil {
			t.Fatalf("join %d: %v", i, reply.err)
		}
		if reply.res.Status != wire.StatusOK {
			t.Fatalf("join %d: status %s, want ok (AdmitWait should absorb the burst)", i, reply.res.Status)
		}
		assertSameMatches(t, "burst join", reply.res.Matches, want)
	}
	if got := reg.Counter("spatialjoin_server_queries_shed_total", "").Value(); got != 0 {
		t.Errorf("queries_shed_total = %d, want 0", got)
	}
}

func TestConnectionLimitSheds(t *testing.T) {
	db, _, _ := newServerDB(t, false, nil)
	reg := obs.NewRegistry()
	_, addr := startServer(t, db, server.Options{MaxConns: 1, Metrics: reg})
	ctx := context.Background()

	c1 := dialClient(t, addr)
	if err := c1.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	// The second connection is accepted at the TCP level, answered with a
	// single connection-level SERVER_BUSY verdict, and closed; every call
	// on it surfaces the typed status.
	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var se *wire.StatusError
	if err := c2.Ping(ctx); !errors.As(err, &se) || se.Status != wire.StatusServerBusy {
		t.Fatalf("ping on refused connection: %v, want *StatusError{server_busy}", err)
	}

	if got := reg.Counter("spatialjoin_server_connections_shed_total", "").Value(); got != 1 {
		t.Errorf("connections_shed_total = %d, want 1", got)
	}
	if got := reg.Counter("spatialjoin_server_connections_total", "").Value(); got != 2 {
		t.Errorf("connections_total = %d, want 2", got)
	}

	// The surviving session is unaffected...
	if err := c1.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	// ...and closing it frees the slot for a new connection.
	_ = c1.Close()
	activeConns := reg.Gauge("spatialjoin_server_active_connections", "")
	waitFor(t, "slot freed", func() bool { return activeConns.Value() == 0 })
	c3 := dialClient(t, addr)
	if err := c3.Ping(ctx); err != nil {
		t.Fatalf("connection after slot freed: %v", err)
	}
}
