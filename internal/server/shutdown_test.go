package server_test

// Graceful shutdown and goroutine hygiene: Shutdown must drain in-flight
// queries to completion (exact results over the wire), refuse new work
// with typed SHUTTING_DOWN verdicts, reject new connections, and leave
// zero goroutines behind — session loops, query goroutines, and the
// accept loop all accounted for by a runtime.NumGoroutine settle loop.

import (
	"context"
	"net"
	"testing"
	"time"

	"spatialjoin"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/server"
	"spatialjoin/internal/wire"
)

func TestShutdownDrainsInFlightAndLeaksNothing(t *testing.T) {
	before := settledGoroutines()

	db, r, s := newServerDB(t, false, func(c *spatialjoin.Config) {
		c.Workers = 1
		c.Fault = &fault.Options{Seed: 4400, ReadLatency: 10 * time.Millisecond}
	})
	// Ground truth while the cache is warm (reads never hit the slow
	// device), then drop it so the in-flight query is genuinely slow.
	want, _, err := db.Join(r, s, spatialjoin.Overlaps(), spatialjoin.ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Options{Metrics: reg})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	slow := dialClient(t, addr)
	idle := dialClient(t, addr)
	ctx := context.Background()
	if err := idle.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	// A cold tree join over the 4ms-latency device: slow enough that the
	// whole drain choreography below happens while it is in flight.
	type joinReply struct {
		res *wire.Result
		err error
	}
	slowCh := make(chan joinReply, 1)
	go func() {
		res, err := slow.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyTree)
		slowCh <- joinReply{res, err}
	}()
	activeQ := reg.Gauge("spatialjoin_server_active_queries", "")
	waitFor(t, "slow join admitted", func() bool { return activeQ.Value() == 1 })

	shutCh := make(chan error, 1)
	go func() { shutCh <- srv.Shutdown(context.Background()) }()

	// Shutdown closes the listeners after setting the draining flag, so
	// once a fresh dial fails we know draining is visible everywhere.
	waitFor(t, "listener closed", func() bool {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return true
		}
		_ = c.Close()
		return false
	})

	// New work on a surviving session is refused with a typed verdict and
	// the shed flag — it never touched the engine.
	res, err := idle.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyScan)
	if err != nil {
		t.Fatalf("query during drain: %v", err)
	}
	if res.Status != wire.StatusShuttingDown || res.Flags&wire.FlagShed == 0 {
		t.Fatalf("query during drain: status %s flags %#x, want shutting_down+shed", res.Status, res.Flags)
	}

	// The in-flight query drains to a complete, exact answer.
	reply := <-slowCh
	if reply.err != nil {
		t.Fatalf("in-flight join during drain: %v", reply.err)
	}
	if reply.res.Status != wire.StatusOK {
		t.Fatalf("in-flight join: status %s (%s), want ok", reply.res.Status, reply.res.Message)
	}
	assertSameMatches(t, "drained join", reply.res.Matches, want)

	if err := <-shutCh; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != server.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if n := reg.Gauge("spatialjoin_server_active_connections", "").Value(); n != 0 {
		t.Errorf("active_connections = %d after shutdown, want 0", n)
	}
	if n := activeQ.Value(); n != 0 {
		t.Errorf("active_queries = %d after shutdown, want 0", n)
	}

	// Second shutdown is a harmless no-op.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("repeated Shutdown: %v", err)
	}

	// The server closed both client connections, so their read loops are
	// gone too; everything the test started must have unwound.
	_ = slow.Close()
	_ = idle.Close()
	if after := settledGoroutines(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after shutdown", before, after)
	}
}

// TestShutdownDeadlineForcesExit wedges a query behind a long device
// latency and shuts down with an already-expiring context: Shutdown must
// return the context error promptly — cancelling the in-flight engine
// work rather than waiting out the full query — and still leave no
// goroutines behind.
func TestShutdownDeadlineForcesExit(t *testing.T) {
	before := settledGoroutines()

	db, _, _ := newServerDB(t, false, func(c *spatialjoin.Config) {
		c.Workers = 1
		c.Fault = &fault.Options{Seed: 4500, ReadLatency: 20 * time.Millisecond}
	})
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Options{Metrics: reg})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	cli := dialClient(t, ln.Addr().String())
	go func() {
		// The reply races the forced connection close; either a typed
		// non-OK verdict or a broken connection is acceptable.
		_, _ = cli.Join(context.Background(), "r", "s", wire.Overlaps(), wire.StrategyTree)
	}()
	activeQ := reg.Gauge("spatialjoin_server_active_queries", "")
	waitFor(t, "join admitted", func() bool { return activeQ.Value() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	// The wedged query would run for seconds; a forced exit must not.
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("forced shutdown took %v", took)
	}
	if err := <-serveDone; err != server.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	_ = cli.Close()
	if after := settledGoroutines(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after forced shutdown", before, after)
	}
}
