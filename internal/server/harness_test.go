package server_test

// Shared harness for the wire-level server tests: a fixed workload, a
// database loader mirroring the root package's test fixtures, a server
// started on an ephemeral loopback listener, and settle-loop helpers for
// the inherently asynchronous assertions (gauges, goroutine counts).

import (
	"context"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"spatialjoin"
	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/server"
	"spatialjoin/internal/wire"
)

// serverWorkload is the fixed dataset every server test loads: small
// enough that a healthy query finishes quickly, large enough that every
// strategy performs real page I/O.
func serverWorkload() (rs, ss []geom.Rect, world geom.Rect) {
	world = geom.NewRect(0, 0, 600, 600)
	rng := rand.New(rand.NewSource(2026))
	rs = datagen.UniformRects(rng, 100, world, 2, 30)
	ss = datagen.ClusteredRects(rng, 100, 5, world, 80, 20)
	return rs, ss, world
}

// newServerDB opens a database (cfg mutations applied), loads the server
// workload into collections "r" and "s", and optionally builds the
// overlaps join index so StrategyIndex works over the wire.
func newServerDB(t *testing.T, buildIndex bool, mutate func(*spatialjoin.Config)) (*spatialjoin.Database, *spatialjoin.Collection, *spatialjoin.Collection) {
	t.Helper()
	cfg := spatialjoin.DefaultConfig()
	cfg.BufferPages = 64
	if mutate != nil {
		mutate(&cfg)
	}
	db, err := spatialjoin.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, ss, _ := serverWorkload()
	load := func(name string, rects []geom.Rect) *spatialjoin.Collection {
		col, err := db.CreateCollection(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, rect := range rects {
			if _, err := col.Insert(rect, ""); err != nil {
				t.Fatal(err)
			}
		}
		return col
	}
	r := load("r", rs)
	s := load("s", ss)
	if buildIndex {
		if _, _, err := db.BuildJoinIndex(r, s, spatialjoin.Overlaps()); err != nil {
			t.Fatal(err)
		}
	}
	return db, r, s
}

// startServer serves db on an ephemeral loopback listener and registers a
// cleanup that shuts the server down and asserts Serve exited cleanly.
func startServer(t *testing.T, db *spatialjoin.Database, opts server.Options) (*server.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil && err != server.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// dialClient connects a wire client to addr with cleanup.
func dialClient(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// settledGoroutines samples runtime.NumGoroutine until the count stops
// shrinking, giving exiting goroutines time to unwind.
func settledGoroutines() int {
	best := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= best && i > 10 {
			return best
		}
		if n < best {
			best = n
		}
	}
	return best
}

// assertSameMatches requires got to be the byte-identical canonical match
// slice want, element for element.
func assertSameMatches(t *testing.T, label string, got, want []core.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d is %v, want %v", label, i, got[i], want[i])
		}
	}
}

// assertSameIDs requires got to equal want element for element.
func assertSameIDs(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ids, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: id %d is %d, want %d", label, i, got[i], want[i])
		}
	}
}
