package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"spatialjoin"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/wire"
)

// session is one client connection: a read loop decoding request frames,
// query goroutines executing admitted work against the engine, and a
// write mutex serializing the interleaved response frames of pipelined
// queries.
type session struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex     // serializes response frames
	wg  sync.WaitGroup // in-flight query goroutines of this session
}

// newSession wraps an accepted connection.
func newSession(srv *Server, conn net.Conn) *session {
	return &session{srv: srv, conn: conn}
}

// run is the session loop: it decodes frames until the connection dies or
// desynchronizes, dispatches requests, and on exit waits for the session's
// query goroutines before unregistering — Shutdown's sessionWG.Wait
// therefore transitively waits for every query goroutine.
func (ss *session) run() {
	defer func() {
		ss.wg.Wait()
		_ = ss.conn.Close()
		ss.srv.removeSession(ss)
	}()
	br := bufio.NewReader(ss.conn)
	for {
		f, err := wire.ReadFrame(br, wire.MaxPayload)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, wire.ErrTruncated) {
				// The stream carried garbage (bad magic, checksum, ...):
				// tell the client why before hanging up. Request ID 0
				// marks the verdict connection-level.
				ss.writeDone(0, wire.FlagShed, wire.Done{
					Status:  wire.StatusBadRequest,
					Message: err.Error(),
				})
			}
			return
		}
		ss.srv.m.framesIn.Inc()
		switch f.Type {
		case wire.TypePing:
			ss.writeFrame(wire.Frame{Type: wire.TypePong, Request: f.Request})
		case wire.TypeSelect, wire.TypeJoin:
			ss.dispatch(f)
		case wire.TypeReplTail, wire.TypeSnapDelta:
			ss.startRepl(f)
		default:
			// A response-typed frame from a client is a protocol error the
			// stream cannot recover from.
			ss.writeDone(0, wire.FlagShed, wire.Done{
				Status:  wire.StatusBadRequest,
				Message: "response-typed frame from client",
			})
			return
		}
	}
}

// writeFrame sends one frame under the session write lock.
func (ss *session) writeFrame(f wire.Frame) {
	ss.wmu.Lock()
	err := wire.WriteFrame(ss.conn, f)
	ss.wmu.Unlock()
	if err == nil {
		ss.srv.m.framesOut.Inc()
	}
	// A write error means the client is gone; the read loop will notice
	// the closed connection — nothing to do here.
}

// writeFrameErr sends one frame under the session write lock and reports
// the failure, so a streaming loop can stop instead of shipping into a dead
// connection. The plain writeFrame stays error-blind for response paths
// where the read loop notices the closed connection anyway.
func (ss *session) writeFrameErr(f wire.Frame) error {
	ss.wmu.Lock()
	err := wire.WriteFrame(ss.conn, f)
	ss.wmu.Unlock()
	if err == nil {
		ss.srv.m.framesOut.Inc()
	}
	return err
}

// writeDone sends a Done verdict for a request.
func (ss *session) writeDone(request uint64, flags uint16, d wire.Done) {
	ss.writeFrame(wire.Frame{
		Type:    wire.TypeDone,
		Flags:   flags,
		Request: request,
		Payload: wire.EncodeDone(d),
	})
}

// shed refuses a query without executing anything. The refusal lands in
// the flight recorder with the request's propagated trace ID (0 when
// untraced), so a post-incident dump shows which traced callers were
// turned away.
func (ss *session) shed(request uint64, kind string, status wire.Status, traceID uint64) {
	ss.srv.m.shed.Inc()
	ss.srv.m.queryOutcome(kind, status)
	code := obs.RecCodeBusy
	if status == wire.StatusShuttingDown {
		code = obs.RecCodeShuttingDown
	}
	obs.Record(obs.RecAdmissionShed, code, traceID, 0, 0)
	ss.writeDone(request, wire.FlagShed, wire.Done{
		Status:  status,
		Message: "query shed: " + status.String(),
	})
}

// queryTrace is the server-side trace of one traced query: the adopted
// obs.Trace (carrying the client's propagated ID) and its root span, under
// which admission, engine, and streaming spans nest. The zero value means
// the request carried no trace context and every method no-ops.
type queryTrace struct {
	tr   *obs.Trace
	root obs.SpanID
}

// adoptTrace builds the server-side trace for a request frame carrying a
// sampled trace context.
func adoptTrace(f wire.Frame) queryTrace {
	if f.Flags&wire.FlagTraceContext == 0 || f.Trace.Flags&wire.TraceFlagSampled == 0 {
		return queryTrace{}
	}
	tr := obs.NewTrace()
	tr.SetID(f.Trace.ID)
	return queryTrace{tr: tr, root: tr.Begin(0, "server")}
}

// ctx arms the trace on the engine context so engine spans (query, levels,
// scrubs) nest under the server root span.
func (qt queryTrace) ctx(base context.Context) context.Context {
	if qt.tr == nil {
		return base
	}
	return obs.ContextWithSpan(obs.ContextWithTrace(base, qt.tr), qt.root)
}

// export closes the root span and flattens the trace for the DONE verdict.
func (qt queryTrace) export() []obs.RemoteSpan {
	if qt.tr == nil {
		return nil
	}
	qt.tr.End(qt.root)
	return qt.tr.Export()
}

// dispatch runs admission control for one request frame and, when
// admitted, executes it in its own goroutine so the session keeps reading
// pipelined requests. A request carrying a sampled trace context gets a
// server-side trace adopted before admission, so the admission wait is the
// first server span of the merged tree.
func (ss *session) dispatch(f wire.Frame) {
	kind := "select"
	if f.Type == wire.TypeJoin {
		kind = "join"
	}
	if ss.srv.draining.Load() {
		ss.shed(f.Request, kind, wire.StatusShuttingDown, f.Trace.ID)
		return
	}
	qt := adoptTrace(f)
	admSpan := qt.tr.Begin(qt.root, "admission")
	// Admission: take a slot now, or within AdmitWait, or shed. The
	// semaphore bounds concurrent engine work; nothing queues beyond the
	// wait, so overload degrades into fast typed refusals instead of
	// unbounded latency.
	select {
	case ss.srv.admit <- struct{}{}:
	default:
		if ss.srv.opts.AdmitWait <= 0 {
			qt.tr.End(admSpan)
			ss.shed(f.Request, kind, wire.StatusServerBusy, f.Trace.ID)
			return
		}
		timer := time.NewTimer(ss.srv.opts.AdmitWait)
		select {
		case ss.srv.admit <- struct{}{}:
			timer.Stop()
		case <-timer.C:
			qt.tr.End(admSpan)
			ss.shed(f.Request, kind, wire.StatusServerBusy, f.Trace.ID)
			return
		case <-ss.srv.baseCtx.Done():
			timer.Stop()
			qt.tr.End(admSpan)
			ss.shed(f.Request, kind, wire.StatusShuttingDown, f.Trace.ID)
			return
		}
	}
	qt.tr.End(admSpan)
	if !ss.srv.queryBegin() {
		<-ss.srv.admit
		ss.shed(f.Request, kind, wire.StatusShuttingDown, f.Trace.ID)
		return
	}
	ss.srv.m.activeQ.Add(1)
	ss.wg.Add(1)
	go func() {
		defer func() {
			ss.srv.m.activeQ.Add(-1)
			<-ss.srv.admit
			ss.srv.queryEnd()
			ss.wg.Done()
		}()
		start := time.Now()
		if f.Type == wire.TypeJoin {
			ss.runJoin(f, qt)
		} else {
			ss.runSelect(f, qt)
		}
		ss.srv.m.latency.Observe(time.Since(start).Seconds())
	}()
}

// badRequest answers a request whose payload or naming failed validation.
func (ss *session) badRequest(request uint64, kind string, status wire.Status, msg string) {
	ss.srv.m.queryOutcome(kind, status)
	ss.writeDone(request, 0, wire.Done{Status: status, Message: msg})
}

// acquireDB resolves the database for one query through the provider,
// answering the typed verdict — STALE, for a replica beyond its lag
// policy — when the provider refuses.
func (ss *session) acquireDB(request uint64, kind string) (*spatialjoin.Database, func(), bool) {
	db, release, err := ss.srv.opts.DB()
	if err == nil {
		return db, release, true
	}
	status := wire.StatusInternal
	var se *wire.StatusError
	if errors.As(err, &se) {
		status = se.Status
	}
	ss.badRequest(request, kind, status, err.Error())
	return nil, nil, false
}

// runSelect executes an admitted SELECT and streams its result.
func (ss *session) runSelect(f wire.Frame, qt queryTrace) {
	q, err := wire.DecodeSelect(f.Payload)
	if err != nil {
		ss.badRequest(f.Request, "select", wire.StatusBadRequest, err.Error())
		return
	}
	db, release, ok := ss.acquireDB(f.Request, "select")
	if !ok {
		return
	}
	defer release()
	col, ok := db.Collection(q.Collection)
	if !ok {
		ss.badRequest(f.Request, "select", wire.StatusNotFound, "unknown collection "+q.Collection)
		return
	}
	op, err := q.Op.Operator()
	if err != nil {
		ss.badRequest(f.Request, "select", wire.StatusBadRequest, err.Error())
		return
	}
	strat, err := wireStrategy(q.Strategy)
	if err != nil {
		ss.badRequest(f.Request, "select", wire.StatusBadRequest, err.Error())
		return
	}
	ids, stats, err := db.SelectContext(qt.ctx(ss.srv.baseCtx), col, q.Selector, op, strat)
	status := statusOf(stats, err, ss.srv.draining.Load())
	ss.srv.m.queryOutcome("select", status)
	d := wire.Done{Status: status, Stats: wireStats(stats)}
	if err != nil {
		d.Message = err.Error()
		d.Spans = qt.export()
		ss.writeDone(f.Request, 0, d)
		return
	}
	stream := qt.tr.Begin(qt.root, "stream")
	batch := ss.srv.opts.BatchSize
	frames := int64(0)
	for off := 0; off < len(ids); off += batch {
		end := off + batch
		if end > len(ids) {
			end = len(ids)
		}
		ss.writeFrame(wire.Frame{
			Type:    wire.TypeIDs,
			Request: f.Request,
			Payload: wire.EncodeIDs(ids[off:end]),
		})
		frames++
	}
	qt.tr.End(stream, obs.Int("frames", frames), obs.Int("results", int64(len(ids))))
	d.Results = uint64(len(ids))
	d.Spans = qt.export()
	ss.writeDone(f.Request, 0, d)
}

// runJoin executes an admitted JOIN and streams its canonical match set.
func (ss *session) runJoin(f wire.Frame, qt queryTrace) {
	q, err := wire.DecodeJoin(f.Payload)
	if err != nil {
		ss.badRequest(f.Request, "join", wire.StatusBadRequest, err.Error())
		return
	}
	db, release, ok := ss.acquireDB(f.Request, "join")
	if !ok {
		return
	}
	defer release()
	r, ok := db.Collection(q.R)
	if !ok {
		ss.badRequest(f.Request, "join", wire.StatusNotFound, "unknown collection "+q.R)
		return
	}
	s, ok := db.Collection(q.S)
	if !ok {
		ss.badRequest(f.Request, "join", wire.StatusNotFound, "unknown collection "+q.S)
		return
	}
	op, err := q.Op.Operator()
	if err != nil {
		ss.badRequest(f.Request, "join", wire.StatusBadRequest, err.Error())
		return
	}
	strat, err := wireStrategy(q.Strategy)
	if err != nil {
		ss.badRequest(f.Request, "join", wire.StatusBadRequest, err.Error())
		return
	}
	ms, stats, err := db.JoinContext(qt.ctx(ss.srv.baseCtx), r, s, op, strat)
	status := statusOf(stats, err, ss.srv.draining.Load())
	ss.srv.m.queryOutcome("join", status)
	d := wire.Done{Status: status, Stats: wireStats(stats)}
	if err != nil {
		d.Message = err.Error()
		d.Spans = qt.export()
		ss.writeDone(f.Request, 0, d)
		return
	}
	stream := qt.tr.Begin(qt.root, "stream")
	batch := ss.srv.opts.BatchSize
	frames := int64(0)
	for off := 0; off < len(ms); off += batch {
		end := off + batch
		if end > len(ms) {
			end = len(ms)
		}
		ss.writeFrame(wire.Frame{
			Type:    wire.TypeMatches,
			Request: f.Request,
			Payload: wire.EncodeMatches(ms[off:end]),
		})
		frames++
	}
	qt.tr.End(stream, obs.Int("frames", frames), obs.Int("results", int64(len(ms))))
	d.Results = uint64(len(ms))
	d.Spans = qt.export()
	ss.writeDone(f.Request, 0, d)
}
