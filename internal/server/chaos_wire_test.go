package server_test

// Chaos over the wire: the fault-injection schedules the engine-level
// chaos harness runs, replayed through the server. The wire contract is
// stricter than "correct or typed error" — the client must see the exact
// typed status the schedule implies (OK after invisible transient
// recovery, DEGRADED with exact results after permanent index loss,
// TIMEOUT under a starved deadline), and the server's obs counters must
// account for every query exactly.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"spatialjoin"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/server"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wire"
)

// queriesTotal reads back one (kind, status) cell of the per-outcome
// counter family.
func queriesTotal(reg *obs.Registry, kind string, status wire.Status) int64 {
	return reg.Counter("spatialjoin_server_queries_total", "",
		obs.L("kind", kind), obs.L("status", status.Label())).Value()
}

// TestWireChaosTransientInvisible runs a transient-only schedule the
// retry budget always recovers from: every strategy over the wire must
// answer StatusOK with the exact baseline — the faults never surface to
// the client — while DiskStats proves they actually fired.
func TestWireChaosTransientInvisible(t *testing.T) {
	db, r, s := newServerDB(t, true, func(c *spatialjoin.Config) {
		c.Fault = &fault.Options{Seed: 4100, TransientReadRate: 0.08}
		c.Retry = &storage.RetryPolicy{MaxAttempts: 10, Seed: 4100}
	})
	want, _, err := db.Join(r, s, spatialjoin.Overlaps(), spatialjoin.ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DropCache(); err != nil {
		t.Fatal(err) // cold cache: wire queries do faulty physical reads
	}

	reg := obs.NewRegistry()
	_, addr := startServer(t, db, server.Options{Metrics: reg})
	cli := dialClient(t, addr)
	ctx := context.Background()
	for _, strat := range []uint8{wire.StrategyScan, wire.StrategyTree, wire.StrategyIndex} {
		res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), strat)
		if err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if res.Status != wire.StatusOK {
			t.Fatalf("strategy %d: status %s (%s), want ok", strat, res.Status, res.Message)
		}
		if res.Stats.Downgrades != 0 {
			t.Errorf("strategy %d: %d downgrades over transient faults", strat, res.Stats.Downgrades)
		}
		assertSameMatches(t, fmt.Sprintf("strategy %d", strat), res.Matches, want)
	}
	if got := queriesTotal(reg, "join", wire.StatusOK); got != 3 {
		t.Errorf("queries_total{join,ok} = %d, want 3", got)
	}
	if shed := reg.Counter("spatialjoin_server_queries_shed_total", "").Value(); shed != 0 {
		t.Errorf("queries_shed_total = %d, want 0", shed)
	}
	if ds := db.DiskStats(); ds.ReadFaults == 0 {
		t.Errorf("schedule injected no read faults: %+v", ds)
	}
}

// TestWireChaosIndexLossDegrades marks the outer collection's index
// backing page permanently lost: a tree join over the wire must answer
// StatusDegraded carrying the exact baseline (computed by fallback over
// the intact heaps) with the downgrade visible in the Done stats, while a
// scan join — which never touches the lost page — stays StatusOK.
func TestWireChaosIndexLossDegrades(t *testing.T) {
	db, r, s := newServerDB(t, false, func(c *spatialjoin.Config) {
		c.Fault = &fault.Options{Seed: 4200}
	})
	want, _, err := db.Join(r, s, spatialjoin.Overlaps(), spatialjoin.ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	db.FaultDisk().LosePage(storage.PageID{File: r.IndexFileID(), Page: 0})

	reg := obs.NewRegistry()
	_, addr := startServer(t, db, server.Options{Metrics: reg})
	cli := dialClient(t, addr)
	ctx := context.Background()

	res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyTree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != wire.StatusDegraded {
		t.Fatalf("tree join after index loss: status %s (%s), want degraded", res.Status, res.Message)
	}
	if res.Flags&wire.FlagShed != 0 {
		t.Error("degraded query carries FlagShed; it was executed")
	}
	if res.Stats.Downgrades != 1 {
		t.Errorf("Done stats report %d downgrades, want 1", res.Stats.Downgrades)
	}
	if res.Err() != nil {
		t.Errorf("degraded results are exact; Err() = %v, want nil", res.Err())
	}
	assertSameMatches(t, "degraded tree join", res.Matches, want)

	res, err = cli.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyScan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != wire.StatusOK || res.Stats.Downgrades != 0 {
		t.Fatalf("scan join after index loss: status %s, %d downgrades", res.Status, res.Stats.Downgrades)
	}
	assertSameMatches(t, "scan join", res.Matches, want)

	if got := queriesTotal(reg, "join", wire.StatusDegraded); got != 1 {
		t.Errorf("queries_total{join,degraded} = %d, want 1", got)
	}
	if got := queriesTotal(reg, "join", wire.StatusOK); got != 1 {
		t.Errorf("queries_total{join,ok} = %d, want 1", got)
	}
}

// TestWireChaosTimeout starves a cold tree join with a per-query deadline
// far below the injected device latency: the client must receive a typed
// StatusTimeout verdict (no results, Err() a *StatusError), accounted
// exactly once.
func TestWireChaosTimeout(t *testing.T) {
	db, _, _ := newServerDB(t, false, func(c *spatialjoin.Config) {
		c.Workers = 1
		c.QueryTimeout = 5 * time.Millisecond
		c.Fault = &fault.Options{Seed: 4300, ReadLatency: 2 * time.Millisecond}
	})
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, addr := startServer(t, db, server.Options{Metrics: reg})
	cli := dialClient(t, addr)

	res, err := cli.Join(context.Background(), "r", "s", wire.Overlaps(), wire.StrategyTree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != wire.StatusTimeout {
		t.Fatalf("status %s (%s), want timeout", res.Status, res.Message)
	}
	if len(res.Matches) != 0 {
		t.Errorf("timed-out query streamed %d matches", len(res.Matches))
	}
	var se *wire.StatusError
	if err := res.Err(); !errors.As(err, &se) || se.Status != wire.StatusTimeout {
		t.Errorf("Err() = %v, want *StatusError{timeout}", err)
	}
	if got := queriesTotal(reg, "join", wire.StatusTimeout); got != 1 {
		t.Errorf("queries_total{join,timeout} = %d, want 1", got)
	}
	if shed := reg.Counter("spatialjoin_server_queries_shed_total", "").Value(); shed != 0 {
		t.Errorf("timeout was shed-accounted: %d", shed)
	}
}

// TestWireBadRequestAndNotFound asserts malformed and misdirected
// requests get typed verdicts without poisoning the session: the same
// connection answers a good query afterwards.
func TestWireBadRequestAndNotFound(t *testing.T) {
	db, r, s := newServerDB(t, false, nil)
	want, _, err := db.Join(r, s, spatialjoin.Overlaps(), spatialjoin.ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	_, addr := startServer(t, db, server.Options{Metrics: reg})
	cli := dialClient(t, addr)
	ctx := context.Background()

	cases := []struct {
		name string
		run  func() (*wire.Result, error)
		want wire.Status
	}{
		{"unknown collection", func() (*wire.Result, error) {
			return cli.Join(ctx, "r", "nope", wire.Overlaps(), wire.StrategyScan)
		}, wire.StatusNotFound},
		{"unknown operator", func() (*wire.Result, error) {
			return cli.Join(ctx, "r", "s", wire.OpSpec{Code: 99}, wire.StrategyScan)
		}, wire.StatusBadRequest},
		{"unknown strategy", func() (*wire.Result, error) {
			return cli.Join(ctx, "r", "s", wire.Overlaps(), 9)
		}, wire.StatusBadRequest},
	}
	for _, tc := range cases {
		res, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Status != tc.want {
			t.Errorf("%s: status %s, want %s", tc.name, res.Status, tc.want)
		}
		var se *wire.StatusError
		if err := res.Err(); !errors.As(err, &se) || se.Status != tc.want {
			t.Errorf("%s: Err() = %v, want *StatusError{%s}", tc.name, err, tc.want)
		}
	}

	res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyScan)
	if err != nil || res.Status != wire.StatusOK {
		t.Fatalf("session did not survive bad requests: %v, %v", err, res)
	}
	assertSameMatches(t, "post-error join", res.Matches, want)
}
