package server

// Replication stream serving: a replica opens a stream with a REPL_TAIL or
// SNAP_DELTA frame and the session pumps the configured ReplStreamer's
// chunks back at it, closed by a typed Done verdict. Streams bypass query
// admission — they are long-lived, I/O-bound, and already bounded by
// MaxConns — but respect drain: a draining server refuses new streams, and
// Shutdown ends running ones by closing their connections.

import (
	"context"
	"errors"

	"spatialjoin/internal/wal"
	"spatialjoin/internal/wire"
)

// startRepl vets one replication stream request and serves it on its own
// session-tracked goroutine, so the read loop keeps decoding frames.
func (ss *session) startRepl(f wire.Frame) {
	if ss.srv.opts.Repl == nil {
		ss.writeDone(f.Request, 0, wire.Done{
			Status:  wire.StatusBadRequest,
			Message: "replication not served here",
		})
		return
	}
	if ss.srv.draining.Load() {
		ss.writeDone(f.Request, wire.FlagShed, wire.Done{
			Status:  wire.StatusShuttingDown,
			Message: "stream refused: " + wire.StatusShuttingDown.String(),
		})
		return
	}
	ss.wg.Add(1)
	go func() {
		defer ss.wg.Done()
		ss.runRepl(f)
	}()
}

// runRepl serves one tail or snapshot stream to completion and closes it
// with a Done frame: OK for a finished snapshot, GONE when the log no
// longer reaches the replica's tail ask (resync from a delta), and
// SHUTTING_DOWN when the primary drains mid-stream.
func (ss *session) runRepl(f wire.Frame) {
	var err error
	switch f.Type {
	case wire.TypeReplTail:
		q, derr := wire.DecodeReplTail(f.Payload)
		if derr != nil {
			ss.writeDone(f.Request, 0, wire.Done{Status: wire.StatusBadRequest, Message: derr.Error()})
			return
		}
		ss.srv.m.replTails.Inc()
		err = ss.srv.opts.Repl.StreamTail(ss.srv.baseCtx, wal.LSN(q.FromLSN), func(c wire.WALChunk) error {
			p, eerr := wire.EncodeWALChunk(c)
			if eerr != nil {
				return eerr
			}
			return ss.writeFrameErr(wire.Frame{Type: wire.TypeWALChunk, Request: f.Request, Payload: p})
		})
	case wire.TypeSnapDelta:
		q, derr := wire.DecodeSnapDelta(f.Payload)
		if derr != nil {
			ss.writeDone(f.Request, 0, wire.Done{Status: wire.StatusBadRequest, Message: derr.Error()})
			return
		}
		ss.srv.m.replSnaps.Inc()
		_, err = ss.srv.opts.Repl.StreamSnap(ss.srv.baseCtx, wal.LSN(q.SinceLSN), func(c wire.SnapChunk) error {
			p, eerr := wire.EncodeSnapChunk(c)
			if eerr != nil {
				return eerr
			}
			return ss.writeFrameErr(wire.Frame{Type: wire.TypeSnapChunk, Request: f.Request, Payload: p})
		})
	}
	switch {
	case err == nil:
		ss.writeDone(f.Request, 0, wire.Done{Status: wire.StatusOK})
	case errors.Is(err, wal.ErrTruncatedAway):
		ss.writeDone(f.Request, 0, wire.Done{Status: wire.StatusGone, Message: err.Error()})
	case errors.Is(err, context.Canceled) || ss.srv.draining.Load():
		ss.writeDone(f.Request, 0, wire.Done{Status: wire.StatusShuttingDown, Message: "primary draining"})
	default:
		// Send failures land here too; the Done write then fails the same
		// way, which is fine — the replica is gone either way.
		ss.writeDone(f.Request, 0, wire.Done{Status: wire.StatusInternal, Message: err.Error()})
	}
}
