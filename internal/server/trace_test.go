package server_test

// Wire-level trace propagation: a traced client query must come back as
// ONE merged span tree — the client's wire span with the server's spans
// (admission wait, engine execution with its per-level reads, result
// streaming) grafted underneath — and the grafted spans must carry the
// same I/O accounting the Done frame reports.

import (
	"context"
	"strings"
	"testing"
	"time"

	"spatialjoin"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/server"
	"spatialjoin/internal/wire"
)

// spanByName finds the unique span with the given name, failing on zero
// or many.
func spanByName(t *testing.T, tr *obs.Trace, name string) obs.Span {
	t.Helper()
	spans := tr.SpansNamed(name)
	if len(spans) != 1 {
		t.Fatalf("%d %q spans, want 1", len(spans), name)
	}
	return spans[0]
}

// isUnder reports whether span id's parent chain reaches ancestor.
func isUnder(spans []obs.Span, id, ancestor obs.SpanID) bool {
	byID := make(map[obs.SpanID]obs.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for cur, ok := byID[id]; ok; cur, ok = byID[cur.Parent] {
		if cur.Parent == ancestor {
			return true
		}
		if cur.Parent == cur.ID {
			return false
		}
	}
	return false
}

func TestWireTraceMergedTree(t *testing.T) {
	db, _, _ := newServerDB(t, false, nil)
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, db, server.Options{})
	c := dialClient(t, addr)

	ctx, tr := obs.WithTrace(context.Background())
	res, err := c.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || res.Stats.PageReads == 0 {
		t.Fatalf("workload too small: matches=%d reads=%d", len(res.Matches), res.Stats.PageReads)
	}
	if tr.ID() == 0 {
		t.Fatal("traced client call left trace ID zero")
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced Done carried no server spans")
	}

	// The merged tree: wire.join ⊃ server ⊃ {admission, join ⊃ level*, stream}.
	spans := tr.Spans()
	call := spanByName(t, tr, "wire.join")
	srv := spanByName(t, tr, "server")
	if srv.Parent != call.ID {
		t.Errorf("server span parent %d, want the wire.join span %d", srv.Parent, call.ID)
	}
	for _, name := range []string{"admission", "join", "stream"} {
		sp := spanByName(t, tr, name)
		if !isUnder(spans, sp.ID, call.ID) {
			t.Errorf("%q span is not under the client call span", name)
		}
		if sp.End == 0 {
			t.Errorf("%q span never closed", name)
		}
	}

	// The read-sum identity survives the wire: per-level reads in the
	// grafted spans telescope exactly to the Done frame's PageReads.
	levels := tr.SpansNamed("level")
	if len(levels) < 2 {
		t.Fatalf("only %d grafted level spans", len(levels))
	}
	var sum int64
	for _, sp := range levels {
		if !isUnder(spans, sp.ID, srv.ID) {
			t.Errorf("level span %d is not under the server span", sp.ID)
		}
		if v, ok := sp.IntAttr("reads"); ok {
			sum += v
		}
	}
	if sum != res.Stats.PageReads {
		t.Errorf("grafted level reads sum %d, Stats.PageReads %d", sum, res.Stats.PageReads)
	}
	if got, _ := spanByName(t, tr, "join").IntAttr("page_reads"); got != res.Stats.PageReads {
		t.Errorf("engine span page_reads %d, Stats.PageReads %d", got, res.Stats.PageReads)
	}

	// The tree renders as one tree, rooted at the client span.
	var sb strings.Builder
	if err := tr.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wire.join") || !strings.Contains(sb.String(), "server") {
		t.Errorf("rendered tree is missing merged spans:\n%s", sb.String())
	}
}

func TestWireTraceSelectMergedTree(t *testing.T) {
	db, _, _ := newServerDB(t, false, nil)
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, db, server.Options{})
	c := dialClient(t, addr)

	_, _, world := serverWorkload()
	ctx, tr := obs.WithTrace(context.Background())
	res, err := c.Select(ctx, "r", world, wire.Overlaps(), wire.StrategyTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	spanByName(t, tr, "wire.select")
	srv := spanByName(t, tr, "server")
	spanByName(t, tr, "select")
	var sum int64
	for _, sp := range tr.SpansNamed("level") {
		if !isUnder(tr.Spans(), sp.ID, srv.ID) {
			t.Errorf("level span %d is not under the server span", sp.ID)
		}
		if v, ok := sp.IntAttr("reads"); ok {
			sum += v
		}
	}
	if sum != res.Stats.PageReads {
		t.Errorf("grafted level reads sum %d, Stats.PageReads %d", sum, res.Stats.PageReads)
	}
}

// TestUntracedQueryCarriesNoSpans pins the compatibility contract: a
// query without a trace in its context produces version-1 frames and a
// span-free Done, byte-for-byte what an old client would see.
func TestUntracedQueryCarriesNoSpans(t *testing.T) {
	db, _, _ := newServerDB(t, false, nil)
	_, addr := startServer(t, db, server.Options{})
	c := dialClient(t, addr)

	res, err := c.Join(context.Background(), "r", "s", wire.Overlaps(), wire.StrategyTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Spans != nil {
		t.Fatalf("untraced query returned %d server spans", len(res.Spans))
	}
}

// TestTracedErrorStillExportsSpans asserts a traced query that fails in
// the engine — here, a starved deadline — still gets the server's spans
// back on the error Done, merged under the client span like any other.
func TestTracedErrorStillExportsSpans(t *testing.T) {
	db, _, _ := newServerDB(t, false, func(c *spatialjoin.Config) {
		c.Workers = 1
		c.QueryTimeout = 5 * time.Millisecond
		c.Fault = &fault.Options{Seed: 4300, ReadLatency: 2 * time.Millisecond}
	})
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, db, server.Options{})
	c := dialClient(t, addr)

	ctx, tr := obs.WithTrace(context.Background())
	res, err := c.Join(ctx, "r", "s", wire.Overlaps(), wire.StrategyTree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != wire.StatusTimeout {
		t.Fatalf("status %s (%s), want timeout", res.Status, res.Message)
	}
	srv := spanByName(t, tr, "server")
	if srv.End == 0 {
		t.Error("server span never closed on the error path")
	}
	call := spanByName(t, tr, "wire.join")
	if srv.Parent != call.ID {
		t.Errorf("error-path server span parent %d, want %d", srv.Parent, call.ID)
	}
	if call.End == 0 {
		t.Error("client span never closed on the error path")
	}
}

// TestTracedBadRequestClosesClientSpan pins the refusal path: a traced
// query answered before the engine runs (unknown collection) returns no
// server spans, but the client span still closes with the verdict.
func TestTracedBadRequestClosesClientSpan(t *testing.T) {
	db, _, _ := newServerDB(t, false, nil)
	_, addr := startServer(t, db, server.Options{})
	c := dialClient(t, addr)

	ctx, tr := obs.WithTrace(context.Background())
	res, err := c.Join(ctx, "r", "nonexistent", wire.Overlaps(), wire.StrategyTree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("join against missing collection succeeded")
	}
	if res.Spans != nil {
		t.Errorf("refused query returned %d server spans", len(res.Spans))
	}
	call := spanByName(t, tr, "wire.join")
	if call.End == 0 {
		t.Error("client span never closed on the refusal path")
	}
	if status, _ := call.StrAttr("status"); status != wire.StatusNotFound.Label() {
		t.Errorf("client span status %q, want %q", status, wire.StatusNotFound.Label())
	}
}
