// Package datagen generates deterministic synthetic spatial workloads: the
// data side of every measured experiment in this repository. The paper
// evaluates its model analytically; these generators provide the concrete
// relations, trees and maps the simulator runs the same strategies on.
package datagen

import (
	"fmt"
	"math/rand"

	"spatialjoin/internal/carto"
	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
)

// UniformRects returns n rectangles with corners uniform in world and edge
// lengths uniform in [minSide, maxSide] (clamped to the world).
func UniformRects(rng *rand.Rand, n int, world geom.Rect, minSide, maxSide float64) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		w := minSide + rng.Float64()*(maxSide-minSide)
		h := minSide + rng.Float64()*(maxSide-minSide)
		x := world.MinX + rng.Float64()*(world.Width()-w)
		y := world.MinY + rng.Float64()*(world.Height()-h)
		out[i] = geom.NewRect(x, y, x+w, y+h)
	}
	return out
}

// ClusteredRects returns n rectangles grouped around `clusters` random
// centers with Gaussian spread, modelling the skewed object distributions
// of real maps.
func ClusteredRects(rng *rand.Rand, n, clusters int, world geom.Rect, spread, side float64) []geom.Rect {
	if clusters < 1 {
		clusters = 1
	}
	centers := make([]geom.Point, clusters)
	for i := range centers {
		centers[i] = geom.Pt(
			world.MinX+rng.Float64()*world.Width(),
			world.MinY+rng.Float64()*world.Height(),
		)
	}
	out := make([]geom.Rect, n)
	for i := range out {
		c := centers[rng.Intn(clusters)]
		x := clamp(c.X+rng.NormFloat64()*spread, world.MinX, world.MaxX-side)
		y := clamp(c.Y+rng.NormFloat64()*spread, world.MinY, world.MaxY-side)
		out[i] = geom.NewRect(x, y, x+side, y+side)
	}
	return out
}

// UniformPoints returns n points uniform in world.
func UniformPoints(rng *rand.Rand, n int, world geom.Rect) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(
			world.MinX+rng.Float64()*world.Width(),
			world.MinY+rng.Float64()*world.Height(),
		)
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lake is a polygonal water body for the paper's motivating query.
type Lake struct {
	Name  string
	Shape geom.Polygon
}

// House is a point-located building for the paper's motivating query.
type House struct {
	Price    float64
	Location geom.Point
}

// LakesAndHouses generates the workload behind the paper's example (2):
// "Find all houses within 10 kilometers from a lake". Lakes are irregular
// polygons clustered in part of the world; houses are points, denser near
// lakes (as in reality) but present everywhere.
func LakesAndHouses(rng *rand.Rand, nLakes, nHouses int, world geom.Rect) ([]Lake, []House) {
	lakes := make([]Lake, nLakes)
	for i := range lakes {
		r := 1 + rng.Float64()*(world.Width()/40)
		cx := world.MinX + r + rng.Float64()*(world.Width()-2*r)
		cy := world.MinY + r + rng.Float64()*(world.Height()-2*r)
		// Irregular lake: a regular polygon with jittered radii.
		v := 6 + rng.Intn(7)
		base := geom.RegularPolygon(geom.Pt(cx, cy), r, v)
		for j := range base {
			d := base[j].Sub(geom.Pt(cx, cy)).Scale(0.7 + 0.3*rng.Float64())
			base[j] = geom.Pt(cx, cy).Add(d)
		}
		lakes[i] = Lake{Name: fmt.Sprintf("lake-%03d", i), Shape: base}
	}
	houses := make([]House, nHouses)
	for i := range houses {
		var loc geom.Point
		if len(lakes) > 0 && rng.Float64() < 0.5 {
			// Lakeside settlement.
			l := lakes[rng.Intn(len(lakes))]
			c := l.Shape.Centroid()
			loc = geom.Pt(
				clamp(c.X+rng.NormFloat64()*world.Width()/20, world.MinX, world.MaxX),
				clamp(c.Y+rng.NormFloat64()*world.Height()/20, world.MinY, world.MaxY),
			)
		} else {
			loc = geom.Pt(
				world.MinX+rng.Float64()*world.Width(),
				world.MinY+rng.Float64()*world.Height(),
			)
		}
		houses[i] = House{Price: 50000 + rng.Float64()*950000, Location: loc}
	}
	return lakes, houses
}

// ModelTree builds a balanced k-ary generalization tree of the given height
// whose node rectangles nest properly (each child a random subrectangle of
// its parent), with tuple IDs assigned in breadth-first order starting at 0
// — the synthetic counterpart of the cost model's idealized tree
// (assumptions S1 and S2). It returns the tree and the number of tuples.
func ModelTree(rng *rand.Rand, world geom.Rect, k, height int) (*core.BasicTree, int) {
	if k < 1 || height < 0 {
		panic(fmt.Sprintf("datagen: bad tree shape k=%d height=%d", k, height))
	}
	nextID := 0
	root := core.NewBasicNode(world, -1)
	level := []*core.BasicNode{root}
	for depth := 0; depth <= height; depth++ {
		var next []*core.BasicNode
		for _, n := range level {
			n.TupleID = nextID
			nextID++
			if depth == height {
				continue
			}
			for c := 0; c < k; c++ {
				n.AddChild(core.NewBasicNode(subRect(rng, n.Bounds()), -1))
			}
			next = append(next, n.Kids...)
		}
		level = next
	}
	return core.NewBasicTree(root), nextID
}

// subRect returns a random rectangle inside parent.
func subRect(rng *rand.Rand, parent geom.Rect) geom.Rect {
	w, h := parent.Width(), parent.Height()
	x1 := parent.MinX + rng.Float64()*w
	x2 := parent.MinX + rng.Float64()*w
	y1 := parent.MinY + rng.Float64()*h
	y2 := parent.MinY + rng.Float64()*h
	return geom.NewRect(x1, y1, x2, y2)
}

// MapSpec configures GenerateMap.
type MapSpec struct {
	// World is the map extent.
	World geom.Rect
	// Countries, StatesPerCountry and CitiesPerState set the fanout of the
	// three levels of Figure 3.
	Countries, StatesPerCountry, CitiesPerState int
	// FirstTupleID numbers the generated features' tuples consecutively in
	// BFS order starting here.
	FirstTupleID int
}

// GenerateMap builds a Figure 3-style cartographic hierarchy: the world is
// split into disjoint country boxes, each split into state boxes, each
// containing small city polygons. It returns the hierarchy and the features
// in BFS (tuple-ID) order.
func GenerateMap(rng *rand.Rand, spec MapSpec) (*carto.Hierarchy, []carto.Feature, error) {
	if spec.Countries < 1 || spec.StatesPerCountry < 1 || spec.CitiesPerState < 1 {
		return nil, nil, fmt.Errorf("datagen: map spec needs at least one feature per level")
	}
	id := spec.FirstTupleID
	world := carto.Feature{Name: "world", Kind: carto.KindWorld, Shape: spec.World, TupleID: id}
	id++
	h, err := carto.NewHierarchy(world)
	if err != nil {
		return nil, nil, err
	}
	feats := []carto.Feature{world}

	countries := splitRect(rng, spec.World, spec.Countries)
	type pending struct {
		name string
		rect geom.Rect
	}
	var states []pending
	for ci, cr := range countries {
		f := carto.Feature{
			Name:    fmt.Sprintf("country-%02d", ci),
			Kind:    carto.KindCountry,
			Shape:   cr,
			TupleID: id,
		}
		id++
		if err := h.Add("world", f); err != nil {
			return nil, nil, err
		}
		feats = append(feats, f)
		for si, sr := range splitRect(rng, cr, spec.StatesPerCountry) {
			states = append(states, pending{
				name: fmt.Sprintf("state-%02d-%02d", ci, si),
				rect: sr,
			})
			_ = si
		}
	}
	// Add states level (BFS order), then cities.
	for _, st := range states {
		f := carto.Feature{Name: st.name, Kind: carto.KindState, Shape: st.rect, TupleID: id}
		id++
		country := "country-" + st.name[6:8]
		if err := h.Add(country, f); err != nil {
			return nil, nil, err
		}
		feats = append(feats, f)
	}
	for _, st := range states {
		for ci := 0; ci < spec.CitiesPerState; ci++ {
			r := 0.05 * minf(st.rect.Width(), st.rect.Height())
			cx := st.rect.MinX + r + rng.Float64()*(st.rect.Width()-2*r)
			cy := st.rect.MinY + r + rng.Float64()*(st.rect.Height()-2*r)
			f := carto.Feature{
				Name:    fmt.Sprintf("city-%s-%02d", st.name[6:], ci),
				Kind:    carto.KindCity,
				Shape:   geom.RegularPolygon(geom.Pt(cx, cy), r, 5+rng.Intn(4)),
				TupleID: id,
			}
			id++
			if err := h.Add(st.name, f); err != nil {
				return nil, nil, err
			}
			feats = append(feats, f)
		}
	}
	return h, feats, nil
}

// splitRect partitions r into n disjoint boxes by recursive halving with a
// randomized split coordinate.
func splitRect(rng *rand.Rand, r geom.Rect, n int) []geom.Rect {
	if n <= 1 {
		return []geom.Rect{r}
	}
	nl := n / 2
	frac := 0.35 + 0.3*rng.Float64()
	var a, b geom.Rect
	if r.Width() >= r.Height() {
		mid := r.MinX + frac*r.Width()
		a = geom.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: mid, MaxY: r.MaxY}
		b = geom.Rect{MinX: mid, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
	} else {
		mid := r.MinY + frac*r.Height()
		a = geom.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: mid}
		b = geom.Rect{MinX: r.MinX, MinY: mid, MaxX: r.MaxX, MaxY: r.MaxY}
	}
	out := splitRect(rng, a, nl)
	return append(out, splitRect(rng, b, n-nl)...)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
