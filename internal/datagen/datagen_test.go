package datagen

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/carto"
	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
)

var world = geom.NewRect(0, 0, 1000, 1000)

func TestUniformRectsInWorld(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rects := UniformRects(rng, 500, world, 1, 20)
	if len(rects) != 500 {
		t.Fatalf("count = %d", len(rects))
	}
	for i, r := range rects {
		if !world.ContainsRect(r) {
			t.Fatalf("rect %d escapes world: %v", i, r)
		}
		if r.Width() < 1 || r.Width() > 20 || r.Height() < 1 || r.Height() > 20 {
			t.Fatalf("rect %d side out of range: %v", i, r)
		}
	}
}

func TestUniformRectsDeterministic(t *testing.T) {
	a := UniformRects(rand.New(rand.NewSource(7)), 50, world, 1, 5)
	b := UniformRects(rand.New(rand.NewSource(7)), 50, world, 1, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same data")
		}
	}
}

func TestClusteredRectsClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rects := ClusteredRects(rng, 1000, 3, world, 15, 4)
	if len(rects) != 1000 {
		t.Fatalf("count = %d", len(rects))
	}
	for i, r := range rects {
		if !world.Intersects(r) {
			t.Fatalf("rect %d outside world", i)
		}
	}
	// Clustered data occupies far less of the world than uniform data: the
	// average pairwise center distance must be well below the uniform
	// expectation (~521 for a 1000² world).
	sum, cnt := 0.0, 0
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			sum += rects[i].Center().DistanceTo(rects[j].Center())
			cnt++
		}
	}
	if avg := sum / float64(cnt); avg > 450 {
		t.Fatalf("avg pairwise distance %g — no clustering visible", avg)
	}
	// clusters < 1 is clamped, not fatal.
	_ = ClusteredRects(rng, 10, 0, world, 5, 2)
}

func TestUniformPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := UniformPoints(rng, 300, world)
	for i, p := range pts {
		if !world.Contains(p) {
			t.Fatalf("point %d outside world", i)
		}
	}
}

func TestLakesAndHouses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lakes, houses := LakesAndHouses(rng, 20, 500, world)
	if len(lakes) != 20 || len(houses) != 500 {
		t.Fatalf("counts = %d, %d", len(lakes), len(houses))
	}
	names := map[string]bool{}
	for _, l := range lakes {
		if names[l.Name] {
			t.Fatalf("duplicate lake name %s", l.Name)
		}
		names[l.Name] = true
		if err := l.Shape.Validate(); err != nil {
			t.Fatalf("lake %s invalid: %v", l.Name, err)
		}
		if !world.Intersects(l.Shape.Bounds()) {
			t.Fatalf("lake %s outside world", l.Name)
		}
	}
	for i, h := range houses {
		if !world.Contains(h.Location) {
			t.Fatalf("house %d outside world", i)
		}
		if h.Price <= 0 {
			t.Fatalf("house %d has price %g", i, h.Price)
		}
	}
}

func TestLakesAndHousesNoLakes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lakes, houses := LakesAndHouses(rng, 0, 100, world)
	if len(lakes) != 0 || len(houses) != 100 {
		t.Fatal("zero-lake workload must still produce houses")
	}
}

func TestModelTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tree, n := ModelTree(rng, world, 3, 4)
	// (3^5 - 1) / 2 = 121 nodes.
	if n != 121 {
		t.Fatalf("tuples = %d, want 121", n)
	}
	if got := core.CountNodes(tree); got != 121 {
		t.Fatalf("nodes = %d", got)
	}
	if tree.Height() != 4 {
		t.Fatalf("height = %d", tree.Height())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tuple IDs are dense, in BFS order.
	order := core.BFSOrder(tree)
	for i, id := range order {
		if id != i {
			t.Fatalf("BFS order broken at %d: %d", i, id)
		}
	}
}

func TestModelTreePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ModelTree(rand.New(rand.NewSource(1)), world, 0, 3)
}

func TestGenerateMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, feats, err := GenerateMap(rng, MapSpec{
		World:            world,
		Countries:        4,
		StatesPerCountry: 3,
		CitiesPerState:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 world + 4 countries + 12 states + 60 cities.
	if h.Len() != 77 || len(feats) != 77 {
		t.Fatalf("feature count = %d / %d, want 77", h.Len(), len(feats))
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tuple IDs are consecutive in BFS order.
	for i, f := range feats {
		if f.TupleID != i {
			t.Fatalf("feature %d has tuple %d", i, f.TupleID)
		}
	}
	// Kind histogram.
	kinds := map[carto.Kind]int{}
	h.Walk(func(f carto.Feature, _ int) bool {
		kinds[f.Kind]++
		return true
	})
	if kinds[carto.KindCountry] != 4 || kinds[carto.KindState] != 12 || kinds[carto.KindCity] != 60 {
		t.Fatalf("kind histogram = %v", kinds)
	}
	// Countries partition the world disjointly.
	var countries []geom.Rect
	h.Walk(func(f carto.Feature, _ int) bool {
		if f.Kind == carto.KindCountry {
			countries = append(countries, f.Shape.Bounds())
		}
		return true
	})
	var area float64
	for i, a := range countries {
		area += a.Area()
		for j := i + 1; j < len(countries); j++ {
			if inter, ok := a.Intersection(countries[j]); ok && inter.Area() > 1e-6 {
				t.Fatalf("countries %d and %d overlap", i, j)
			}
		}
	}
	if diff := area - world.Area(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("countries cover %g of %g", area, world.Area())
	}
}

func TestGenerateMapValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, _, err := GenerateMap(rng, MapSpec{World: world}); err == nil {
		t.Fatal("zero-feature spec must fail")
	}
}

func TestGenerateMapFirstTupleID(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	_, feats, err := GenerateMap(rng, MapSpec{
		World: world, Countries: 2, StatesPerCountry: 2, CitiesPerState: 2,
		FirstTupleID: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if feats[0].TupleID != 100 || feats[len(feats)-1].TupleID != 100+len(feats)-1 {
		t.Fatalf("tuple range = %d..%d", feats[0].TupleID, feats[len(feats)-1].TupleID)
	}
}

func TestSplitRectPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 3, 7, 16} {
		parts := splitRect(rng, world, n)
		if len(parts) != n {
			t.Fatalf("splitRect(%d) gave %d parts", n, len(parts))
		}
		var area float64
		for _, p := range parts {
			if !world.ContainsRect(p) {
				t.Fatalf("part escapes world")
			}
			area += p.Area()
		}
		if d := area - world.Area(); d > 1e-6 || d < -1e-6 {
			t.Fatalf("split of %d loses area: %g vs %g", n, area, world.Area())
		}
	}
}
