// Package joinindex implements Valduriez-style join indices (the paper's
// strategy III): the result of a join R ⋈θ S precomputed as a binary
// relation of matching tuple-ID pairs, stored in B+-trees (modeling
// assumption S4).
//
// Two trees are kept — forward (r, s) and reverse (s, r) — so matches can be
// enumerated from either side in logarithmic time. The paper's key
// observations about this strategy are directly visible in the API: lookups
// are cheap (Matches* walks a small key range), but maintenance is expensive
// because every inserted tuple must be checked against the entire other
// relation (MaintainInsert* take a full candidate enumeration).
package joinindex

import (
	"fmt"

	"spatialjoin/internal/btree"
)

// Index is a precomputed join index between two relations R and S for one
// fixed θ-operator.
type Index struct {
	forward *btree.Tree // keys (r, s)
	reverse *btree.Tree // keys (s, r)
}

// New returns an empty join index whose B+-trees have the given order (the
// paper's z, Table 3: 100).
func New(order int) (*Index, error) {
	fwd, err := btree.New(order)
	if err != nil {
		return nil, err
	}
	rev, err := btree.New(order)
	if err != nil {
		return nil, err
	}
	return &Index{forward: fwd, reverse: rev}, nil
}

// MustNew is New that panics on error.
func MustNew(order int) *Index {
	ix, err := New(order)
	if err != nil {
		panic(err)
	}
	return ix
}

// Len returns the number of stored pairs (the join cardinality |J|).
func (ix *Index) Len() int { return ix.forward.Len() }

// Order returns the underlying B+-trees' order (the paper's z).
func (ix *Index) Order() int { return ix.forward.Order() }

// Height returns the forward tree's height, the paper's parameter d minus
// one (the paper counts pages on a root-to-leaf path, with the root pinned
// in memory).
func (ix *Index) Height() int { return ix.forward.Height() }

// Add records that tuples r ∈ R and s ∈ S match. It reports whether the
// pair is new. Negative IDs are rejected.
func (ix *Index) Add(r, s int) (bool, error) {
	if r < 0 || s < 0 {
		return false, fmt.Errorf("joinindex: negative tuple id (%d, %d)", r, s)
	}
	added := ix.forward.Insert(btree.Key{Hi: uint64(r), Lo: uint64(s)})
	if added {
		ix.reverse.Insert(btree.Key{Hi: uint64(s), Lo: uint64(r)})
	}
	return added, nil
}

// Remove deletes the pair, reporting whether it was present.
func (ix *Index) Remove(r, s int) bool {
	if r < 0 || s < 0 {
		return false
	}
	removed := ix.forward.Delete(btree.Key{Hi: uint64(r), Lo: uint64(s)})
	if removed {
		ix.reverse.Delete(btree.Key{Hi: uint64(s), Lo: uint64(r)})
	}
	return removed
}

// Contains reports whether the pair is stored.
func (ix *Index) Contains(r, s int) bool {
	if r < 0 || s < 0 {
		return false
	}
	found, _ := ix.forward.Contains(btree.Key{Hi: uint64(r), Lo: uint64(s)})
	return found
}

// MatchesOfR calls f with every s matching r, in ascending order. It
// returns the number of index nodes visited (the unit the cost model
// charges for paging in the join index).
func (ix *Index) MatchesOfR(r int, f func(s int) bool) (visits int) {
	if r < 0 {
		return 0
	}
	return ix.forward.Range(
		btree.Key{Hi: uint64(r), Lo: 0},
		btree.Key{Hi: uint64(r), Lo: ^uint64(0)},
		func(k btree.Key) bool { return f(int(k.Lo)) },
	)
}

// MatchesOfS calls f with every r matching s, in ascending order, returning
// index-node visits.
func (ix *Index) MatchesOfS(s int, f func(r int) bool) (visits int) {
	if s < 0 {
		return 0
	}
	return ix.reverse.Range(
		btree.Key{Hi: uint64(s), Lo: 0},
		btree.Key{Hi: uint64(s), Lo: ^uint64(0)},
		func(k btree.Key) bool { return f(int(k.Lo)) },
	)
}

// AllPairs calls f for every stored pair in (r, s) order.
func (ix *Index) AllPairs(f func(r, s int) bool) {
	ix.forward.All(func(k btree.Key) bool { return f(int(k.Hi), int(k.Lo)) })
}

// DeleteR removes every pair involving tuple r of R (called when r is
// deleted from its relation). It returns the number of pairs removed.
func (ix *Index) DeleteR(r int) int {
	var ss []int
	ix.MatchesOfR(r, func(s int) bool { ss = append(ss, s); return true })
	for _, s := range ss {
		ix.Remove(r, s)
	}
	return len(ss)
}

// DeleteS removes every pair involving tuple s of S.
func (ix *Index) DeleteS(s int) int {
	var rs []int
	ix.MatchesOfS(s, func(r int) bool { rs = append(rs, r); return true })
	for _, r := range rs {
		ix.Remove(r, s)
	}
	return len(rs)
}

// MaintainCost describes the work a maintenance operation performed, in the
// paper's units: θ evaluations (C_U each in §4.2's update model) and pairs
// added.
type MaintainCost struct {
	Evaluations int
	PairsAdded  int
}

// MaintainInsertR updates the index after tuple r is inserted into R: match
// must report, for each existing tuple s of S (0..sCount-1), whether
// r θ s. This is the paper's U_III update path — note the full scan of the
// other relation.
func (ix *Index) MaintainInsertR(r, sCount int, match func(s int) (bool, error)) (MaintainCost, error) {
	var cost MaintainCost
	for s := 0; s < sCount; s++ {
		cost.Evaluations++
		ok, err := match(s)
		if err != nil {
			return cost, err
		}
		if ok {
			if _, err := ix.Add(r, s); err != nil {
				return cost, err
			}
			cost.PairsAdded++
		}
	}
	return cost, nil
}

// MaintainInsertS is the symmetric update path for an insert into S.
func (ix *Index) MaintainInsertS(s, rCount int, match func(r int) (bool, error)) (MaintainCost, error) {
	var cost MaintainCost
	for r := 0; r < rCount; r++ {
		cost.Evaluations++
		ok, err := match(r)
		if err != nil {
			return cost, err
		}
		if ok {
			if _, err := ix.Add(r, s); err != nil {
				return cost, err
			}
			cost.PairsAdded++
		}
	}
	return cost, nil
}

// Validate cross-checks the forward and reverse trees.
func (ix *Index) Validate() error {
	if err := ix.forward.Validate(); err != nil {
		return fmt.Errorf("joinindex forward: %w", err)
	}
	if err := ix.reverse.Validate(); err != nil {
		return fmt.Errorf("joinindex reverse: %w", err)
	}
	if ix.forward.Len() != ix.reverse.Len() {
		return fmt.Errorf("joinindex: forward has %d pairs, reverse %d",
			ix.forward.Len(), ix.reverse.Len())
	}
	ok := true
	ix.forward.All(func(k btree.Key) bool {
		found, _ := ix.reverse.Contains(btree.Key{Hi: k.Lo, Lo: k.Hi})
		if !found {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return fmt.Errorf("joinindex: forward pair missing from reverse tree")
	}
	return nil
}
