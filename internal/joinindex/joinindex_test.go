package joinindex

import (
	"math/rand"
	"testing"
)

func TestAddContainsRemove(t *testing.T) {
	ix := MustNew(4)
	added, err := ix.Add(1, 2)
	if err != nil || !added {
		t.Fatalf("Add = %t, %v", added, err)
	}
	if !ix.Contains(1, 2) {
		t.Fatal("pair missing after Add")
	}
	if ix.Contains(2, 1) {
		t.Fatal("pairs are directional")
	}
	added, _ = ix.Add(1, 2)
	if added {
		t.Fatal("duplicate Add must report false")
	}
	if ix.Len() != 1 {
		t.Fatalf("len = %d", ix.Len())
	}
	if !ix.Remove(1, 2) {
		t.Fatal("Remove of present pair failed")
	}
	if ix.Remove(1, 2) {
		t.Fatal("double Remove must fail")
	}
	if ix.Len() != 0 {
		t.Fatalf("len after remove = %d", ix.Len())
	}
}

func TestNegativeIDsRejected(t *testing.T) {
	ix := MustNew(4)
	if _, err := ix.Add(-1, 2); err == nil {
		t.Fatal("negative r must error")
	}
	if _, err := ix.Add(1, -2); err == nil {
		t.Fatal("negative s must error")
	}
	if ix.Remove(-1, 0) || ix.Contains(-1, 0) {
		t.Fatal("negative ids must be inert")
	}
	if ix.MatchesOfR(-1, func(int) bool { return true }) != 0 {
		t.Fatal("negative MatchesOfR must visit nothing")
	}
	if ix.MatchesOfS(-1, func(int) bool { return true }) != 0 {
		t.Fatal("negative MatchesOfS must visit nothing")
	}
}

func TestNewRejectsBadOrder(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Fatal("order 2 must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic")
		}
	}()
	MustNew(1)
}

func TestMatchesBothDirections(t *testing.T) {
	ix := MustNew(4)
	// r=3 matches s ∈ {1, 5, 9}; s=5 matches r ∈ {2, 3}.
	pairs := [][2]int{{3, 1}, {3, 5}, {3, 9}, {2, 5}}
	for _, p := range pairs {
		ix.Add(p[0], p[1])
	}
	var ss []int
	ix.MatchesOfR(3, func(s int) bool { ss = append(ss, s); return true })
	if len(ss) != 3 || ss[0] != 1 || ss[1] != 5 || ss[2] != 9 {
		t.Fatalf("MatchesOfR(3) = %v", ss)
	}
	var rs []int
	ix.MatchesOfS(5, func(r int) bool { rs = append(rs, r); return true })
	if len(rs) != 2 || rs[0] != 2 || rs[1] != 3 {
		t.Fatalf("MatchesOfS(5) = %v", rs)
	}
	// Early stop.
	n := 0
	ix.MatchesOfR(3, func(int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestAllPairsOrdered(t *testing.T) {
	ix := MustNew(4)
	rng := rand.New(rand.NewSource(1))
	want := make(map[[2]int]bool)
	for i := 0; i < 500; i++ {
		r, s := rng.Intn(40), rng.Intn(40)
		ix.Add(r, s)
		want[[2]int{r, s}] = true
	}
	var got [][2]int
	ix.AllPairs(func(r, s int) bool { got = append(got, [2]int{r, s}); return true })
	if len(got) != len(want) {
		t.Fatalf("AllPairs returned %d, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatal("AllPairs out of order")
		}
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("phantom pair %v", p)
		}
	}
}

func TestDeleteRAndS(t *testing.T) {
	ix := MustNew(4)
	for s := 0; s < 10; s++ {
		ix.Add(7, s)
	}
	for r := 0; r < 5; r++ {
		ix.Add(r, 3)
	}
	if n := ix.DeleteR(7); n != 10 {
		t.Fatalf("DeleteR removed %d, want 10", n)
	}
	if ix.Contains(7, 3) {
		t.Fatal("pair (7,3) survived DeleteR")
	}
	if !ix.Contains(2, 3) {
		t.Fatal("unrelated pair lost")
	}
	if n := ix.DeleteS(3); n != 5 {
		t.Fatalf("DeleteS removed %d, want 5", n)
	}
	if ix.Len() != 0 {
		t.Fatalf("len = %d after full cleanup", ix.Len())
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainInsertR(t *testing.T) {
	ix := MustNew(4)
	// New tuple r=5 matches even s only, among 100 S tuples.
	cost, err := ix.MaintainInsertR(5, 100, func(s int) (bool, error) {
		return s%2 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: maintenance costs a full scan of S.
	if cost.Evaluations != 100 {
		t.Fatalf("evaluations = %d, want 100", cost.Evaluations)
	}
	if cost.PairsAdded != 50 || ix.Len() != 50 {
		t.Fatalf("pairs added = %d, len = %d", cost.PairsAdded, ix.Len())
	}
	var ss []int
	ix.MatchesOfR(5, func(s int) bool { ss = append(ss, s); return true })
	if len(ss) != 50 || ss[0] != 0 || ss[49] != 98 {
		t.Fatalf("match set wrong: %d entries", len(ss))
	}
}

func TestMaintainInsertS(t *testing.T) {
	ix := MustNew(4)
	cost, err := ix.MaintainInsertS(9, 30, func(r int) (bool, error) {
		return r < 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Evaluations != 30 || cost.PairsAdded != 3 {
		t.Fatalf("cost = %+v", cost)
	}
	if !ix.Contains(0, 9) || !ix.Contains(2, 9) || ix.Contains(3, 9) {
		t.Fatal("maintained pairs wrong")
	}
}

func TestMaintainPropagatesError(t *testing.T) {
	ix := MustNew(4)
	calls := 0
	_, err := ix.MaintainInsertR(1, 10, func(s int) (bool, error) {
		calls++
		if s == 4 {
			return false, errBoom
		}
		return true, nil
	})
	if err == nil {
		t.Fatal("error must propagate")
	}
	if calls != 5 {
		t.Fatalf("maintenance continued after error: %d calls", calls)
	}
}

var errBoom = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestValidateDetectsConsistency(t *testing.T) {
	ix := MustNew(4)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		ix.Add(rng.Intn(100), rng.Intn(100))
	}
	for i := 0; i < 300; i++ {
		ix.Remove(rng.Intn(100), rng.Intn(100))
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesVisitCounts(t *testing.T) {
	ix := MustNew(100) // paper's z
	for r := 0; r < 200; r++ {
		for s := 0; s < 20; s++ {
			ix.Add(r, s)
		}
	}
	v := ix.MatchesOfR(50, func(int) bool { return true })
	// 20 matches in one key range: a root-to-leaf path plus at most a few
	// chained leaves.
	if v > ix.Height()+3 {
		t.Fatalf("visits = %d for a 20-match range at z=100 (height %d)", v, ix.Height())
	}
}

func TestOrderAccessor(t *testing.T) {
	ix := MustNew(42)
	if ix.Order() != 42 {
		t.Fatalf("Order = %d", ix.Order())
	}
}
